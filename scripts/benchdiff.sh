#!/bin/sh
# benchdiff.sh — the benchmark-regression gate: re-collect the tracked
# performance metrics and diff them against the newest committed
# BENCH_<n>.json, failing (exit 1) when any metric regresses past its
# tolerance (15% for deterministic metrics, 60% for wall-clock ones).
#
#   scripts/benchdiff.sh            # full comparison (all metrics)
#   scripts/benchdiff.sh -quick     # deterministic metrics only — safe
#                                   # on loaded/shared machines, used by
#                                   # scripts/check.sh
#
# Refresh the baseline after an intentional perf change with:
#   go run ./cmd/armci-bench -baseline
set -eu

cd "$(dirname "$0")/.."

quick=""
if [ "${1:-}" = "-quick" ]; then
    quick="-quick"
fi

latest=""
for f in BENCH_*.json; do
    [ -e "$f" ] && latest="$f"
done
if [ -z "$latest" ]; then
    echo "benchdiff: no BENCH_*.json baseline committed; create one with: go run ./cmd/armci-bench -baseline" >&2
    exit 2
fi

exec go run ./cmd/armci-bench -compare "$latest" $quick
