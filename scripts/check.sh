#!/bin/sh
# check.sh — the full local verification gate: vet, build, tests, and the
# race detector over the internal packages (where all the concurrency
# lives). CI and the tier-1 verify in ROADMAP.md run the same steps; use
# `make check` or run this directly before sending a change.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test ./...
# Race pass over every concurrency-bearing package: the internals, the
# GA and MP layers, and the conformance harness (-short trims its sweep
# to the sim-fabric matrix).
go test -race -short ./internal/... ./ga ./mp
# The reliability suite (loss, retransmission, crash, op deadlines) and
# the lease-lock recovery tests under the race detector; -short keeps the
# long soak out of this pass — run it with `make soak`.
go test -race -short -run 'Fault|Loss|Crash|Lease' .
# The async-completion layer under the race detector: Nb* handles,
# put-with-flag, and the per-destination coalescer, on the concurrent
# fabrics where handle state and batched frames cross goroutines.
go test -race -short -run 'Coalesc|Handle|Flag|Batch|Nb' .
# The generated workloads (internal/workload, covered by the internal
# race pass above) driven end-to-end: per-rank fingerprint parity of
# the generated programs across sim seeds and the concurrent fabrics,
# under the race detector.
go test -race -run 'WorkloadFingerprintParity' .
# The topology-aware collectives (k-nomial tree, hierarchical two-level
# barrier, NIC-offload fence) under the race detector: the tree
# constructions in internal/collective plus the end-to-end barrier
# parity tests on the concurrent fabrics.
go test -race -run 'Knomial|Hierarchical|Topology' ./internal/collective .
# The elastic subsystem under the race detector: membership views,
# Space replication, the deterministic recovery tests on the concurrent
# fabrics, and the rejoin-time lease restamp.
go test -race -run 'Elastic|RepairLeases' . ./internal/proc
# The multi-process smoke: a 4-rank smoke-sized Fig. 7 point through
# armci-run — real OS processes, rendezvous, routed puts, clean drain.
go run ./cmd/armci-run -n 4 -workload fig7-small
# The elastic smoke: the same 4-rank launch with one worker killed
# mid-epoch and recovered by respawn; the launcher verifies every rank's
# fingerprint (the respawned one included) against the pure-replay
# oracle, so a lost or duplicated op fails the gate.
go run ./cmd/armci-run -n 4 -workload elastic -elastic -faults crashrank=1@3
# The benchmark-regression gate against the committed BENCH_*.json
# baseline. -quick judges only the deterministic metrics (simulated
# virtual times, allocation budgets, sweep event counts), so this pass
# cannot flake on a loaded machine; run `make benchcheck` for the full
# comparison including wall-clock metrics.
sh scripts/benchdiff.sh -quick
