package armci_test

import (
	"bytes"
	"fmt"
	"testing"

	"armci"
)

// fabrics lists every execution fabric; most integration tests run on all.
var fabrics = []armci.FabricKind{armci.FabricSim, armci.FabricChan, armci.FabricTCP}

// TestPutBarrierGet checks the fundamental one-sided contract on every
// fabric: data put before the combined barrier is visible to every rank
// after it.
func TestPutBarrierGet(t *testing.T) {
	for _, fk := range fabrics {
		t.Run(fk.String(), func(t *testing.T) {
			const procs, chunk = 4, 64
			_, err := armci.Run(armci.Options{Procs: procs, Fabric: fk}, func(p *armci.Proc) {
				ptrs := p.Malloc(chunk * procs)
				// Every rank writes its signature into its slot in every
				// other rank's buffer.
				me := p.Rank()
				sig := bytes.Repeat([]byte{byte(me + 1)}, chunk)
				for r := 0; r < procs; r++ {
					p.Put(ptrs[r].Add(int64(me*chunk)), sig)
				}
				p.Barrier()
				// Now read everyone's slot from our own buffer directly
				// and from a remote buffer through the server.
				for r := 0; r < procs; r++ {
					got := p.Get(ptrs[(me+1)%procs].Add(int64(r*chunk)), chunk)
					want := bytes.Repeat([]byte{byte(r + 1)}, chunk)
					if !bytes.Equal(got, want) {
						panic(fmt.Sprintf("rank %d: slot %d = %v, want %v", me, r, got[0], want[0]))
					}
				}
				p.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSyncOldEquivalence checks the original AllFence+MPIBarrier path
// provides the same visibility guarantee.
func TestSyncOldEquivalence(t *testing.T) {
	for _, fk := range fabrics {
		t.Run(fk.String(), func(t *testing.T) {
			const procs = 4
			_, err := armci.Run(armci.Options{Procs: procs, Fabric: fk}, func(p *armci.Proc) {
				ptrs := p.MallocWords(procs)
				me := p.Rank()
				for r := 0; r < procs; r++ {
					if r != me {
						p.Store(ptrs[r].Add(int64(me)), int64(100+me))
					}
				}
				p.SyncOld()
				for r := 0; r < procs; r++ {
					if r == me {
						continue
					}
					got := p.Load(ptrs[me].Add(int64(r)))
					if got != int64(100+r) {
						panic(fmt.Sprintf("rank %d: word from %d = %d, want %d", me, r, got, 100+r))
					}
				}
				p.MPIBarrier()
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMutexMutualExclusion hammers a shared counter under every lock
// algorithm on every fabric; lost updates would reveal a mutual-exclusion
// violation.
func TestMutexMutualExclusion(t *testing.T) {
	algs := []armci.LockAlg{armci.LockHybrid, armci.LockQueue, armci.LockQueueNoCAS}
	for _, fk := range fabrics {
		for _, alg := range algs {
			t.Run(fmt.Sprintf("%v/%v", fk, alg), func(t *testing.T) {
				const procs, iters = 4, 25
				_, err := armci.Run(armci.Options{
					Procs: procs, Fabric: fk, NumMutexes: 1,
				}, func(p *armci.Proc) {
					counter := p.MallocWords(1)[0] // homed at rank 0
					mu := p.Mutex(0, alg)
					for i := 0; i < iters; i++ {
						mu.Lock()
						v := p.Load(counter)
						p.Store(counter, v+1)
						if p.NodeOf(0) != p.MyNode() {
							p.Fence(p.NodeOf(0)) // make the store visible before release
						}
						mu.Unlock()
					}
					p.Barrier()
					if p.Rank() == 0 {
						got := p.Load(counter)
						if got != int64(procs*iters) {
							panic(fmt.Sprintf("counter = %d, want %d", got, procs*iters))
						}
					}
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
