package ga_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"armci"
	"armci/ga"
)

// runGA executes body on every rank of a simulated cluster.
func runGA(t *testing.T, procs int, body func(p *armci.Proc)) {
	t.Helper()
	if _, err := armci.Run(armci.Options{Procs: procs, Fabric: armci.FabricSim}, body); err != nil {
		t.Fatal(err)
	}
}

// TestDistributionPartitions is the property test on the block
// decomposition: for random shapes and process counts, the per-rank
// blocks exactly tile the global index space with no overlap.
func TestDistributionPartitions(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		procs := 1 + r.Intn(12)
		rows := 1 + r.Intn(40)
		cols := 1 + r.Intn(40)
		ok := true
		runGA(t, procs, func(p *armci.Proc) {
			a, err := ga.Create(p, "part", rows, cols)
			if err != nil {
				panic(err)
			}
			if p.Rank() != 0 {
				return
			}
			covered := make([]int, rows*cols)
			for q := 0; q < procs; q++ {
				rlo, rhi, clo, chi := a.Distribution(q)
				if rlo < 0 || rhi > rows || clo < 0 || chi > cols || rlo > rhi || clo > chi {
					ok = false
					return
				}
				for i := rlo; i < rhi; i++ {
					for j := clo; j < chi; j++ {
						covered[i*cols+j]++
					}
				}
				// Owner agrees with Distribution on interior points.
				if rhi > rlo && chi > clo {
					if own := a.Owner(rlo, clo); own != q {
						ok = false
						return
					}
				}
			}
			for _, c := range covered {
				if c != 1 {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPutGetRoundTripRandomPatches writes random patches from random
// ranks and reads them back from other ranks after a sync.
func TestPutGetRoundTripRandomPatches(t *testing.T) {
	const procs, rows, cols = 4, 24, 18
	rng := rand.New(rand.NewSource(99))
	type patch struct{ rlo, rhi, clo, chi, writer int }
	var patches []patch
	for i := 0; i < 8; i++ {
		rlo, clo := rng.Intn(rows-2), rng.Intn(cols-2)
		patches = append(patches, patch{
			rlo: rlo, rhi: rlo + 1 + rng.Intn(rows-rlo-1),
			clo: clo, chi: clo + 1 + rng.Intn(cols-clo-1),
			writer: rng.Intn(procs),
		})
	}
	runGA(t, procs, func(p *armci.Proc) {
		a, err := ga.Create(p, "rt", rows, cols)
		if err != nil {
			panic(err)
		}
		a.Fill(0)
		// Patches are applied one at a time, synced between, so later
		// patches legitimately overwrite earlier ones.
		for pi, pt := range patches {
			if p.Rank() == pt.writer {
				buf := make([]float64, (pt.rhi-pt.rlo)*(pt.chi-pt.clo))
				for i := range buf {
					buf[i] = float64(pi*1000 + i)
				}
				a.Put(pt.rlo, pt.rhi, pt.clo, pt.chi, buf)
			}
			a.Sync()
			// Reader: rank (writer+1) mod procs verifies.
			if p.Rank() == (pt.writer+1)%procs {
				got := a.Get(pt.rlo, pt.rhi, pt.clo, pt.chi)
				for i, v := range got {
					if v != float64(pi*1000+i) {
						panic(fmt.Sprintf("patch %d element %d = %v", pi, i, v))
					}
				}
			}
			a.Sync()
		}
	})
}

// TestGetAssemblesAcrossBlocks reads a patch spanning all four blocks of
// a 2x2 grid and checks element-exact assembly.
func TestGetAssemblesAcrossBlocks(t *testing.T) {
	const procs, n = 4, 16
	runGA(t, procs, func(p *armci.Proc) {
		a, err := ga.Create(p, "asm", n, n)
		if err != nil {
			panic(err)
		}
		// Each rank fills its own block with rank-tagged coordinates.
		rlo, rhi, clo, chi := a.Distribution(p.Rank())
		buf := make([]float64, (rhi-rlo)*(chi-clo))
		k := 0
		for i := rlo; i < rhi; i++ {
			for j := clo; j < chi; j++ {
				buf[k] = float64(i*n + j)
				k++
			}
		}
		a.Put(rlo, rhi, clo, chi, buf)
		a.Sync()
		// Everyone reads the center patch spanning the block corners.
		got := a.Get(n/2-2, n/2+2, n/2-2, n/2+2)
		k = 0
		for i := n/2 - 2; i < n/2+2; i++ {
			for j := n/2 - 2; j < n/2+2; j++ {
				if got[k] != float64(i*n+j) {
					panic(fmt.Sprintf("element (%d,%d) = %v, want %d", i, j, got[k], i*n+j))
				}
				k++
			}
		}
		a.Sync()
	})
}

// TestAccumulateSums: concurrent accumulates from every rank into the
// same patch add up exactly.
func TestAccumulateSums(t *testing.T) {
	const procs, n = 4, 8
	runGA(t, procs, func(p *armci.Proc) {
		a, err := ga.Create(p, "acc", n, n)
		if err != nil {
			panic(err)
		}
		a.Fill(1)
		ones := make([]float64, n*n)
		for i := range ones {
			ones[i] = float64(p.Rank() + 1)
		}
		a.Acc(0, n, 0, n, ones, 2)
		a.Sync()
		got := a.Get(0, n, 0, n)
		want := 1.0 + 2*float64(procs*(procs+1)/2)
		for i, v := range got {
			if v != want {
				panic(fmt.Sprintf("element %d = %v, want %v", i, v, want))
			}
		}
		a.Sync()
	})
}

// TestSyncModesAllWork: each GA_Sync implementation provides visibility.
func TestSyncModesAllWork(t *testing.T) {
	for _, mode := range []ga.SyncMode{ga.SyncNew, ga.SyncOld, ga.SyncOldPipelined} {
		t.Run(mode.String(), func(t *testing.T) {
			const procs, n = 4, 12
			runGA(t, procs, func(p *armci.Proc) {
				a, err := ga.Create(p, "mode", n, n)
				if err != nil {
					panic(err)
				}
				a.SetSyncMode(mode)
				if a.SyncMode() != mode {
					panic("mode not set")
				}
				me := p.Rank()
				// Everyone writes one value into every remote block.
				for q := 0; q < procs; q++ {
					if q == me {
						continue
					}
					rlo, _, clo, _ := a.Distribution(q)
					a.Put(rlo, rlo+1, clo, clo+1, []float64{float64(me + 1)})
				}
				a.Sync()
				rlo, _, clo, _ := a.Distribution(me)
				got := a.Get(rlo, rlo+1, clo, clo+1)
				// The last writer in put order wins; all writers put
				// distinct positive values, so any positive value proves
				// a write arrived; zero proves sync failed.
				if got[0] == 0 {
					panic(fmt.Sprintf("rank %d: block corner still zero after %v sync", me, mode))
				}
				a.Sync()
			})
		})
	}
}

// TestNorm2MatchesLocalComputation.
func TestNorm2MatchesLocalComputation(t *testing.T) {
	const procs, n = 4, 10
	runGA(t, procs, func(p *armci.Proc) {
		a, err := ga.Create(p, "norm", n, n)
		if err != nil {
			panic(err)
		}
		a.Fill(2) // norm = sqrt(100 * 4) = 20
		got := a.Norm2()
		if math.Abs(got-20) > 1e-3 {
			panic(fmt.Sprintf("Norm2 = %v, want 20", got))
		}
	})
}

// TestSingleProcess: the degenerate 1-rank array works end to end.
func TestSingleProcess(t *testing.T) {
	runGA(t, 1, func(p *armci.Proc) {
		a, err := ga.Create(p, "solo", 5, 7)
		if err != nil {
			panic(err)
		}
		buf := make([]float64, 35)
		for i := range buf {
			buf[i] = float64(i)
		}
		a.Put(0, 5, 0, 7, buf)
		a.Sync()
		got := a.Get(2, 4, 3, 6)
		want := []float64{17, 18, 19, 24, 25, 26}
		for i := range want {
			if got[i] != want[i] {
				panic(fmt.Sprintf("got %v", got))
			}
		}
	})
}

// TestUnevenDimensions: dims not divisible by the grid still partition
// and transfer correctly.
func TestUnevenDimensions(t *testing.T) {
	const procs = 6 // grid 2x3
	runGA(t, procs, func(p *armci.Proc) {
		a, err := ga.Create(p, "uneven", 7, 11)
		if err != nil {
			panic(err)
		}
		pr, pc := a.Grid()
		if pr*pc != procs {
			panic(fmt.Sprintf("grid %dx%d", pr, pc))
		}
		buf := make([]float64, 7*11)
		for i := range buf {
			buf[i] = float64(i + 1)
		}
		if p.Rank() == 0 {
			a.Put(0, 7, 0, 11, buf)
		}
		a.Sync()
		got := a.Get(0, 7, 0, 11)
		for i := range buf {
			if got[i] != buf[i] {
				panic(fmt.Sprintf("element %d = %v", i, got[i]))
			}
		}
		a.Sync()
	})
}

// TestCreateValidation and patch validation.
func TestValidation(t *testing.T) {
	runGA(t, 2, func(p *armci.Proc) {
		if _, err := ga.Create(p, "bad", 0, 5); err == nil {
			panic("zero rows accepted")
		}
		a, err := ga.Create(p, "ok", 4, 4)
		if err != nil {
			panic(err)
		}
		for _, fn := range []func(){
			func() { a.Get(0, 5, 0, 4) },                          // row overflow
			func() { a.Get(-1, 2, 0, 4) },                         // negative
			func() { a.Get(2, 2, 0, 4) },                          // empty
			func() { a.Put(0, 2, 0, 2, make([]float64, 3)) },      // size mismatch
			func() { a.Acc(0, 2, 0, 2, make([]float64, 5), 1.0) }, // size mismatch
		} {
			func() {
				defer func() {
					if recover() == nil {
						panic("expected a panic")
					}
				}()
				fn()
			}()
		}
		a.Sync()
	})
}
