package ga_test

import (
	"fmt"
	"math"
	"testing"

	"armci"
	"armci/ga"
)

// mkFilled creates an array where element (i,j) = base + i*cols + j.
func mkFilled(p *armci.Proc, name string, rows, cols int, base float64) *ga.Array {
	a, err := ga.Create(p, name, rows, cols)
	if err != nil {
		panic(err)
	}
	rlo, rhi, clo, chi := a.Distribution(p.Rank())
	if rhi > rlo && chi > clo {
		buf := make([]float64, (rhi-rlo)*(chi-clo))
		k := 0
		for i := rlo; i < rhi; i++ {
			for j := clo; j < chi; j++ {
				buf[k] = base + float64(i*cols+j)
				k++
			}
		}
		a.Put(rlo, rhi, clo, chi, buf)
	}
	a.Sync()
	return a
}

func TestCopy(t *testing.T) {
	runGA(t, 4, func(p *armci.Proc) {
		src := mkFilled(p, "src", 9, 7, 100)
		dst, err := ga.Create(p, "dst", 9, 7)
		if err != nil {
			panic(err)
		}
		dst.Fill(0)
		src.Copy(dst)
		got := dst.Get(0, 9, 0, 7)
		for i, v := range got {
			if v != 100+float64(i) {
				panic(fmt.Sprintf("element %d = %v", i, v))
			}
		}
		dst.Sync()
	})
}

func TestScale(t *testing.T) {
	runGA(t, 4, func(p *armci.Proc) {
		a := mkFilled(p, "s", 8, 8, 1)
		a.Scale(-2)
		got := a.Get(0, 8, 0, 8)
		for i, v := range got {
			if v != -2*(1+float64(i)) {
				panic(fmt.Sprintf("element %d = %v", i, v))
			}
		}
		a.Sync()
	})
}

func TestAdd(t *testing.T) {
	runGA(t, 4, func(p *armci.Proc) {
		a := mkFilled(p, "a", 6, 10, 0)
		b := mkFilled(p, "b", 6, 10, 1000)
		dst, err := ga.Create(p, "d", 6, 10)
		if err != nil {
			panic(err)
		}
		ga.Add(2, a, -1, b, dst)
		got := dst.Get(0, 6, 0, 10)
		for i, v := range got {
			want := 2*float64(i) - (1000 + float64(i))
			if v != want {
				panic(fmt.Sprintf("element %d = %v, want %v", i, v, want))
			}
		}
		dst.Sync()
	})
}

func TestDot(t *testing.T) {
	runGA(t, 4, func(p *armci.Proc) {
		a := mkFilled(p, "a", 5, 5, 0) // 0..24
		b, err := ga.Create(p, "b", 5, 5)
		if err != nil {
			panic(err)
		}
		b.Fill(2)
		got := ga.Dot(a, b)
		want := 2.0 * 24 * 25 / 2 // 2 * sum(0..24)
		if got != want {
			panic(fmt.Sprintf("dot = %v, want %v", got, want))
		}
		// Identical on every rank: checked by the collective's
		// bit-identical guarantee plus this rank-local assertion.
		b.Sync()
	})
}

func TestTranspose(t *testing.T) {
	runGA(t, 4, func(p *armci.Proc) {
		a := mkFilled(p, "a", 6, 4, 0)
		at, err := ga.Create(p, "at", 4, 6)
		if err != nil {
			panic(err)
		}
		a.Transpose(at)
		got := at.Get(0, 4, 0, 6)
		for i := 0; i < 4; i++ {
			for j := 0; j < 6; j++ {
				if got[i*6+j] != float64(j*4+i) {
					panic(fmt.Sprintf("(%d,%d) = %v, want %d", i, j, got[i*6+j], j*4+i))
				}
			}
		}
		at.Sync()
	})
}

func TestMaxAbs(t *testing.T) {
	runGA(t, 3, func(p *armci.Proc) {
		a, err := ga.Create(p, "m", 7, 7)
		if err != nil {
			panic(err)
		}
		a.Fill(0.25)
		if p.Rank() == 0 {
			a.Put(3, 4, 3, 4, []float64{-17.5})
		}
		a.Sync()
		if got := a.MaxAbs(); got != 17.5 {
			panic(fmt.Sprintf("MaxAbs = %v", got))
		}
	})
}

func TestOpsShapeChecks(t *testing.T) {
	runGA(t, 2, func(p *armci.Proc) {
		a, _ := ga.Create(p, "a", 4, 4)
		b, _ := ga.Create(p, "b", 4, 5)
		for _, fn := range []func(){
			func() { a.Copy(b) },
			func() { ga.Add(1, a, 1, b, a) },
			func() { ga.Dot(a, b) },
			func() { a.Transpose(b) }, // 4x4 into 4x5
		} {
			func() {
				defer func() {
					if recover() == nil {
						panic("shape mismatch accepted")
					}
				}()
				fn()
			}()
		}
		a.Sync()
	})
}

// TestPowerIteration runs a tiny power-method eigenvalue estimate using
// the GA operations end to end — transpose-free symmetric matrix.
func TestPowerIteration(t *testing.T) {
	const n = 6
	runGA(t, 4, func(p *armci.Proc) {
		// A = I*3 + ones(n)/n (symmetric, dominant eigenvalue 3+1=4).
		a, err := ga.Create(p, "A", n, n)
		if err != nil {
			panic(err)
		}
		rlo, rhi, clo, chi := a.Distribution(p.Rank())
		if rhi > rlo && chi > clo {
			buf := make([]float64, (rhi-rlo)*(chi-clo))
			k := 0
			for i := rlo; i < rhi; i++ {
				for j := clo; j < chi; j++ {
					v := 1.0 / n
					if i == j {
						v += 3
					}
					buf[k] = v
					k++
				}
			}
			a.Put(rlo, rhi, clo, chi, buf)
		}
		a.Sync()

		// x as an n x 1 array; y = A x computed by rows via gets.
		x, err := ga.Create(p, "x", n, 1)
		if err != nil {
			panic(err)
		}
		x.Fill(1)
		var lambda float64
		for iter := 0; iter < 25; iter++ {
			xv := x.Get(0, n, 0, 1)
			// Each rank computes the rows its block of A covers.
			yl := make([]float64, 0, rhi-rlo)
			if rhi > rlo {
				rows := a.Get(rlo, rhi, 0, n)
				for i := 0; i < rhi-rlo; i++ {
					var s float64
					for j := 0; j < n; j++ {
						s += rows[i*n+j] * xv[j]
					}
					yl = append(yl, s)
				}
			}
			// Assemble y: only the grid-column-0 owners contribute rows,
			// others would double-count; restrict to blocks with clo==0.
			if rhi > rlo && clo == 0 {
				x.Put(rlo, rhi, 0, 1, yl)
			}
			x.Sync()
			lambda = x.Norm2() / math.Sqrt(n)
			x.Scale(1 / x.Norm2())
			x.Scale(math.Sqrt(n)) // keep comfortable magnitude
		}
		if math.Abs(lambda-4) > 0.05 {
			panic(fmt.Sprintf("dominant eigenvalue estimate %v, want ~4", lambda))
		}
	})
}

func TestDuplicate(t *testing.T) {
	runGA(t, 4, func(p *armci.Proc) {
		a := mkFilled(p, "orig", 6, 6, 10)
		a.SetSyncMode(ga.SyncOld)
		d, err := a.Duplicate("copy")
		if err != nil {
			panic(err)
		}
		if d.SyncMode() != ga.SyncOld {
			panic("sync mode not inherited")
		}
		r1, c1 := a.Dims()
		r2, c2 := d.Dims()
		if r1 != r2 || c1 != c2 {
			panic("shape not inherited")
		}
		if got := d.Get(0, 6, 0, 6); got[0] != 0 {
			panic("duplicate not zeroed")
		}
		a.Copy(d)
		if got := d.Get(2, 3, 2, 3); got[0] != 10+2*6+2 {
			panic(fmt.Sprintf("copied value %v", got[0]))
		}
		d.Sync()
	})
}
