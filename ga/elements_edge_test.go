package ga_test

import (
	"fmt"
	"testing"

	"armci"
	"armci/ga"
)

// TestGatherScatterEdgeShapes is the table of element-op shapes that
// break owner-grouping code first: the empty list, a single element,
// repeated reads of one element, a whole row and column crossing every
// block boundary — each at one rank, a non-power-of-two count, and a
// square count.
func TestGatherScatterEdgeShapes(t *testing.T) {
	for _, procs := range []int{1, 3, 4, 6} {
		procs := procs
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			const n = 8
			runGA(t, procs, func(p *armci.Proc) {
				a, err := ga.Create(p, "edge", n, n)
				if err != nil {
					panic(err)
				}
				a.Fill(0)

				// Empty element list: legal no-op on every rank.
				if got := a.Gather(nil); len(got) != 0 {
					panic(fmt.Sprintf("gather of no elements returned %v", got))
				}
				a.Scatter(nil, nil)

				if p.Rank() == 0 {
					// Single element, repeated element, and a full
					// boundary-crossing row and column in one scatter.
					elems := []ga.Elem{{R: 3, C: 5}}
					for c := 0; c < n; c++ {
						elems = append(elems, ga.Elem{R: 6, C: c})
					}
					for r := 0; r < n; r++ {
						elems = append(elems, ga.Elem{R: r, C: 1})
					}
					vals := make([]float64, len(elems))
					for i, e := range elems {
						vals[i] = float64(10*e.R + e.C + 1)
					}
					a.Scatter(elems, vals)
				}
				a.Sync()

				last := p.Size() - 1
				if p.Rank() == last {
					probe := []ga.Elem{{R: 3, C: 5}, {R: 3, C: 5}, {R: 6, C: 0}, {R: 6, C: 7}, {R: 0, C: 1}, {R: 7, C: 1}, {R: 5, C: 5}}
					want := []float64{36, 36, 61, 68, 2, 72, 0}
					got := a.Gather(probe)
					for i := range probe {
						if got[i] != want[i] {
							panic(fmt.Sprintf("element %v = %v, want %v", probe[i], got[i], want[i]))
						}
					}
				}
				a.Sync()
			})
		})
	}
}

// TestScatterLengthMismatchPanics pins the documented contract: a
// scatter whose element and value lists disagree must refuse loudly.
func TestScatterLengthMismatchPanics(t *testing.T) {
	runGA(t, 2, func(p *armci.Proc) {
		a, err := ga.Create(p, "mismatch", 4, 4)
		if err != nil {
			panic(err)
		}
		if p.Rank() == 0 {
			defer func() {
				if recover() == nil {
					panic("scatter accepted 2 elements with 1 value")
				}
			}()
			a.Scatter([]ga.Elem{{R: 0, C: 0}, {R: 1, C: 1}}, []float64{1})
		}
	})
}

// TestCounterEdgeIncrements exercises NGA_Read_inc at one rank and at
// non-power-of-two sizes, with zero and negative increments mixed in:
// the claimed intervals must tile exactly with no slot double-claimed.
func TestCounterEdgeIncrements(t *testing.T) {
	for _, procs := range []int{1, 3, 5} {
		procs := procs
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			runGA(t, procs, func(p *armci.Proc) {
				home := p.Size() - 1
				c := ga.NewCounter(p, home)

				// A zero increment is a pure read and must not perturb.
				_ = c.ReadInc(0)

				const claims = 5
				got := make([]int64, claims)
				for i := range got {
					got[i] = c.ReadInc(2)
				}
				p.Barrier()
				// Every rank claimed disjoint stride-2 intervals; the final
				// value is the total.
				if p.Rank() == home {
					if v := c.Value(); v != int64(2*claims*p.Size()) {
						panic(fmt.Sprintf("counter = %d, want %d", v, 2*claims*p.Size()))
					}
				}
				seen := make(map[int64]bool)
				for _, v := range got {
					if v%2 != 0 || seen[v] {
						panic(fmt.Sprintf("rank %d claimed overlapping or misaligned interval at %d (claims %v)", p.Rank(), v, got))
					}
					seen[v] = true
				}
				p.Barrier()

				// Negative increments roll the counter back down to zero.
				for i := 0; i < claims; i++ {
					c.ReadInc(-2)
				}
				p.Barrier()
				if p.Rank() == 0 {
					if v := c.Value(); v != 0 {
						panic(fmt.Sprintf("counter after rollback = %d, want 0", v))
					}
				}
			})
		})
	}
}
