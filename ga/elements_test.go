package ga_test

import (
	"fmt"
	"math/rand"
	"testing"

	"armci"
	"armci/ga"
	"armci/internal/msg"
)

// TestGatherScatterRoundTrip: scattered elements written by one rank are
// read back exactly by another, in caller order.
func TestGatherScatterRoundTrip(t *testing.T) {
	const procs, n = 4, 12
	runGA(t, procs, func(p *armci.Proc) {
		a, err := ga.Create(p, "gs", n, n)
		if err != nil {
			panic(err)
		}
		a.Fill(0)
		rng := rand.New(rand.NewSource(5))
		var elems []ga.Elem
		var vals []float64
		seen := map[ga.Elem]bool{}
		for len(elems) < 20 {
			e := ga.Elem{R: rng.Intn(n), C: rng.Intn(n)}
			if seen[e] {
				continue
			}
			seen[e] = true
			elems = append(elems, e)
			vals = append(vals, float64(100+len(elems)))
		}
		if p.Rank() == 1 {
			a.Scatter(elems, vals)
		}
		a.Sync()
		if p.Rank() == 3 {
			got := a.Gather(elems)
			for i := range vals {
				if got[i] != vals[i] {
					panic(fmt.Sprintf("element %v = %v, want %v", elems[i], got[i], vals[i]))
				}
			}
			// Untouched elements stay zero.
			if !seen[(ga.Elem{R: 0, C: 0})] {
				if zero := a.Gather([]ga.Elem{{R: 0, C: 0}}); zero[0] != 0 {
					panic("untouched element non-zero")
				}
			}
		}
		a.Sync()
	})
}

// TestGatherBatchesPerOwner: a gather touching every block costs one
// vector message per owner, not one per element.
func TestGatherBatchesPerOwner(t *testing.T) {
	const procs, n = 4, 8
	_, err := armci.Run(armci.Options{Procs: procs, Fabric: armci.FabricSim}, func(p *armci.Proc) {
		a, err := ga.Create(p, "batch", n, n)
		if err != nil {
			panic(err)
		}
		a.Fill(1)
		if p.Rank() == 0 {
			// 16 elements spread over all four blocks.
			var elems []ga.Elem
			for i := 0; i < n; i += 2 {
				for j := 0; j < n; j += 2 {
					elems = append(elems, ga.Elem{R: i, C: j})
				}
			}
			p.Env().Trace().Reset()
			a.Gather(elems)
			// Blocks owned by ranks 1..3 are remote: exactly 3 vector
			// gets (rank 0's own block is read locally).
			if got := p.Env().Trace().Count(msg.KindGetV); got != 3 {
				panic(fmt.Sprintf("gather sent %d vector gets, want 3", got))
			}
		}
		a.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestScatterValidation: length mismatch and out-of-range panic.
func TestScatterValidation(t *testing.T) {
	runGA(t, 2, func(p *armci.Proc) {
		a, _ := ga.Create(p, "v", 4, 4)
		for _, fn := range []func(){
			func() { a.Scatter([]ga.Elem{{R: 0, C: 0}}, []float64{1, 2}) },
			func() { a.Scatter([]ga.Elem{{R: 4, C: 0}}, []float64{1}) },
			func() { a.Gather([]ga.Elem{{R: 0, C: -1}}) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						panic("invalid element op accepted")
					}
				}()
				fn()
			}()
		}
		a.Sync()
	})
}

// TestCounterTaskClaiming: the NGA_Read_inc pattern — workers atomically
// claim disjoint task indices; every task is claimed exactly once.
func TestCounterTaskClaiming(t *testing.T) {
	const procs, tasks = 4, 40
	claimed := make([][]int64, procs)
	_, err := armci.Run(armci.Options{Procs: procs, Fabric: armci.FabricChan}, func(p *armci.Proc) {
		ctr := ga.NewCounter(p, 1)
		for {
			idx := ctr.ReadInc(1)
			if idx >= tasks {
				break
			}
			claimed[p.Rank()] = append(claimed[p.Rank()], idx)
		}
		p.Barrier()
		if p.Rank() == 1 && ctr.Value() < tasks {
			panic("counter below task count after completion")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, tasks)
	total := 0
	for r := range claimed {
		for _, idx := range claimed[r] {
			if seen[idx] {
				t.Fatalf("task %d claimed twice", idx)
			}
			seen[idx] = true
			total++
		}
	}
	if total != tasks {
		t.Fatalf("%d tasks claimed, want %d", total, tasks)
	}
}

// TestCounterHomeValidation rejects out-of-range homes.
func TestCounterHomeValidation(t *testing.T) {
	runGA(t, 2, func(p *armci.Proc) {
		defer func() {
			if recover() == nil {
				panic("bad counter home accepted")
			}
		}()
		ga.NewCounter(p, 7)
	})
}

// TestGatherScatterAllFabrics: element scatter/gather on the concurrent
// fabrics too (messages over channels and real TCP sockets).
func TestGatherScatterAllFabrics(t *testing.T) {
	for _, fk := range []armci.FabricKind{armci.FabricChan, armci.FabricTCP} {
		t.Run(fk.String(), func(t *testing.T) {
			const procs, n = 4, 8
			_, err := armci.Run(armci.Options{Procs: procs, Fabric: fk}, func(p *armci.Proc) {
				a, err := ga.Create(p, "xf", n, n)
				if err != nil {
					panic(err)
				}
				a.Fill(0)
				elems := []ga.Elem{{R: 0, C: 0}, {R: 3, C: 5}, {R: 7, C: 7}, {R: 4, C: 4}}
				vals := []float64{1, 2, 3, 4}
				if p.Rank() == 0 {
					a.Scatter(elems, vals)
				}
				a.Sync()
				got := a.Gather(elems)
				for i := range vals {
					if got[i] != vals[i] {
						panic(fmt.Sprintf("rank %d: element %v = %v, want %v",
							p.Rank(), elems[i], got[i], vals[i]))
					}
				}
				a.Sync()
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}
