package ga

import (
	"fmt"
	"sort"

	"armci"
	"armci/mp"
)

// Elem addresses one global element.
type Elem struct{ R, C int }

// checkElem validates one element index.
func (a *Array) checkElem(e Elem) {
	if e.R < 0 || e.R >= a.rows || e.C < 0 || e.C >= a.cols {
		panic(fmt.Sprintf("ga: %q element (%d,%d) outside %dx%d", a.name, e.R, e.C, a.rows, a.cols))
	}
}

// elemPtr returns the global pointer of one element.
func (a *Array) elemPtr(e Elem) armci.Ptr {
	rank := a.Owner(e.R, e.C)
	rlo, _, clo, _ := a.Distribution(rank)
	_, bc := a.blockDims(rank)
	return a.ptrs[rank].Add(int64(8 * ((e.R-rlo)*bc + (e.C - clo))))
}

// groupByOwner splits element indices by owning rank, remembering the
// original positions so results can be reassembled in caller order.
func (a *Array) groupByOwner(elems []Elem) map[int][]int {
	groups := make(map[int][]int)
	for i, e := range elems {
		a.checkElem(e)
		rank := a.Owner(e.R, e.C)
		groups[rank] = append(groups[rank], i)
	}
	return groups
}

// sortedOwners returns the group keys in ascending rank order, so the
// message pattern is deterministic.
func sortedOwners(groups map[int][]int) []int {
	owners := make([]int, 0, len(groups))
	for r := range groups {
		owners = append(owners, r)
	}
	sort.Ints(owners)
	return owners
}

// Gather reads an arbitrary list of elements (NGA_Gather). One vector-get
// message per owning rank, regardless of how scattered the elements are.
func (a *Array) Gather(elems []Elem) []float64 {
	out := make([]float64, len(elems))
	groups := a.groupByOwner(elems)
	for _, rank := range sortedOwners(groups) {
		idxs := groups[rank]
		reads := make([]armci.VecRead, len(idxs))
		for k, i := range idxs {
			reads[k] = armci.VecRead{Ptr: a.elemPtr(elems[i]), N: 8}
		}
		bufs := a.p.GetV(reads)
		for k, i := range idxs {
			out[i] = mp.BytesToFloat64s(bufs[k])[0]
		}
	}
	return out
}

// Scatter writes an arbitrary list of elements (NGA_Scatter). One
// vector-put message per owning rank; non-blocking like Put — complete
// via Sync or a fence.
func (a *Array) Scatter(elems []Elem, vals []float64) {
	if len(elems) != len(vals) {
		panic(fmt.Sprintf("ga: scatter of %d elements with %d values", len(elems), len(vals)))
	}
	groups := a.groupByOwner(elems)
	for _, rank := range sortedOwners(groups) {
		idxs := groups[rank]
		pieces := make([]armci.VecPiece, len(idxs))
		for k, i := range idxs {
			pieces[k] = armci.VecPiece{
				Ptr:  a.elemPtr(elems[i]),
				Data: mp.Float64sToBytes([]float64{vals[i]}),
			}
		}
		a.p.PutV(pieces)
	}
}

// Counter is a cluster-global atomic int64, the facility behind
// NGA_Read_inc: Global Arrays applications use such counters for dynamic
// load balancing (each worker atomically claims the next task index).
// The counter lives in the word memory of its home rank and is updated
// with ARMCI fetch-and-add — local-direct or one server round trip.
type Counter struct {
	p    *armci.Proc
	cell armci.Ptr
}

// NewCounter collectively creates a counter homed at the given rank,
// initialized to zero. Every rank must call it with the same home.
func NewCounter(p *armci.Proc, home int) *Counter {
	if home < 0 || home >= p.Size() {
		panic(fmt.Sprintf("ga: counter home %d outside 0..%d", home, p.Size()-1))
	}
	var mine armci.Ptr
	if p.Rank() == home {
		mine = p.MallocWordsLocal(1)
	}
	// All-gather the home's pointer (only the home contributes).
	vec := make([]int64, 2)
	if p.Rank() == home {
		hi, lo := mine.Pack()
		vec[0], vec[1] = hi, lo
	}
	p.AllReduceSumInt64(vec)
	return &Counter{p: p, cell: armci.UnpackPtr(vec[0], vec[1])}
}

// ReadInc atomically adds inc and returns the previous value.
func (c *Counter) ReadInc(inc int64) int64 {
	return c.p.FetchAdd(c.cell, inc)
}

// Value reads the counter.
func (c *Counter) Value() int64 { return c.p.Load(c.cell) }
