package ga

import (
	"fmt"
	"math"
)

// sameShape panics unless b matches a's global shape.
func (a *Array) sameShape(b *Array, op string) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("ga: %s of %q (%dx%d) and %q (%dx%d): shape mismatch",
			op, a.name, a.rows, a.cols, b.name, b.rows, b.cols))
	}
	if a.p.Size() != b.p.Size() {
		panic(fmt.Sprintf("ga: %s across different clusters", op))
	}
}

// localPatch returns the caller's own block contents and bounds; ok is
// false for an empty block.
func (a *Array) localPatch() (buf []float64, rlo, rhi, clo, chi int, ok bool) {
	rlo, rhi, clo, chi = a.Distribution(a.p.Rank())
	if rhi <= rlo || chi <= clo {
		return nil, 0, 0, 0, 0, false
	}
	return a.Get(rlo, rhi, clo, chi), rlo, rhi, clo, chi, true
}

// Copy collectively copies a into dst (GA_Copy). Both arrays must have
// the same global shape; distributions may differ, since the copy goes
// through global puts.
func (a *Array) Copy(dst *Array) {
	a.sameShape(dst, "copy")
	if buf, rlo, rhi, clo, chi, ok := a.localPatch(); ok {
		dst.Put(rlo, rhi, clo, chi, buf)
	}
	dst.Sync()
}

// Scale collectively multiplies every element by alpha (GA_Scale).
func (a *Array) Scale(alpha float64) {
	if buf, rlo, rhi, clo, chi, ok := a.localPatch(); ok {
		for i := range buf {
			buf[i] *= alpha
		}
		a.Put(rlo, rhi, clo, chi, buf)
	}
	a.Sync()
}

// Add collectively computes dst = alpha*a + beta*b (GA_Add). All three
// arrays must share the global shape; a and b must share a distribution
// with each other (they are read block-locally).
func Add(alpha float64, a *Array, beta float64, b *Array, dst *Array) {
	a.sameShape(b, "add")
	a.sameShape(dst, "add")
	abuf, rlo, rhi, clo, chi, ok := a.localPatch()
	if ok {
		bbuf := b.Get(rlo, rhi, clo, chi)
		for i := range abuf {
			abuf[i] = alpha*abuf[i] + beta*bbuf[i]
		}
		dst.Put(rlo, rhi, clo, chi, abuf)
	}
	dst.Sync()
}

// Dot collectively computes the elementwise dot product ⟨a,b⟩ (GA_Ddot).
// Every rank returns the identical value.
func Dot(a, b *Array) float64 {
	a.sameShape(b, "dot")
	var sum float64
	if abuf, rlo, rhi, clo, chi, ok := a.localPatch(); ok {
		bbuf := b.Get(rlo, rhi, clo, chi)
		for i := range abuf {
			sum += abuf[i] * bbuf[i]
		}
	}
	vec := []float64{sum}
	a.p.AllReduceSumFloat64(vec)
	return vec[0]
}

// Transpose collectively writes aᵀ into dst (GA_Transpose). dst must be
// cols×rows.
func (a *Array) Transpose(dst *Array) {
	if a.rows != dst.cols || a.cols != dst.rows {
		panic(fmt.Sprintf("ga: transpose of %dx%d into %dx%d", a.rows, a.cols, dst.rows, dst.cols))
	}
	if buf, rlo, rhi, clo, chi, ok := a.localPatch(); ok {
		w := chi - clo
		tr := make([]float64, len(buf))
		for i := rlo; i < rhi; i++ {
			for j := clo; j < chi; j++ {
				tr[(j-clo)*(rhi-rlo)+(i-rlo)] = buf[(i-rlo)*w+(j-clo)]
			}
		}
		dst.Put(clo, chi, rlo, rhi, tr)
	}
	dst.Sync()
}

// MaxAbs collectively returns the largest absolute element value. The
// maximum is reduced through the integer all-reduce on the order-
// preserving bit pattern of the non-negative floats.
func (a *Array) MaxAbs() float64 {
	var local float64
	if buf, _, _, _, _, ok := a.localPatch(); ok {
		for _, v := range buf {
			if av := math.Abs(v); av > local {
				local = av
			}
		}
	}
	// For non-negative IEEE doubles the bit pattern is monotone, so max
	// of patterns == pattern of max. An all-reduce of per-rank (pattern,
	// rank-indexed slots) keeps it collective with existing primitives.
	vec := make([]int64, a.p.Size())
	vec[a.p.Rank()] = int64(math.Float64bits(local))
	a.p.AllReduceSumInt64(vec)
	var best int64
	for _, v := range vec {
		if v > best {
			best = v
		}
	}
	return math.Float64frombits(uint64(best))
}
