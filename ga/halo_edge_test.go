package ga_test

import (
	"testing"

	"armci"
	"armci/ga"
)

// TestHaloExchangeDegenerateShapes drives the halo-exchange access
// pattern — a clamped Get of each rank's block plus its halo ring, an
// update computed from the halo, and a Put of the block — over shapes
// where the block decomposition degenerates: single-row and
// single-column arrays, halos wider than the owning tile, a halo that
// spans the whole array, and grids with more ranks than rows so some
// blocks are empty. Every patch crossing multiple owners exercises ga's
// multi-block strided transfers at their boundary cases.
func TestHaloExchangeDegenerateShapes(t *testing.T) {
	for _, tc := range []struct {
		name                    string
		procs, rows, cols, halo int
	}{
		{"1xN halo wider than tile", 6, 1, 9, 2},
		{"Nx1 halo wider than tile", 6, 9, 1, 3},
		{"1x1 array", 4, 1, 1, 2},
		{"halo spans whole array", 4, 3, 3, 4},
		{"more ranks than rows", 5, 2, 7, 1},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			init := func(r, c int) float64 { return float64(r*tc.cols + c + 1) }
			// The update every rank applies to its cells: the sum of the
			// cell and its cross-neighbors to distance halo, clamped at the
			// array edge — exactly what the halo patch must supply.
			updated := func(r, c int) float64 {
				v := init(r, c)
				for d := 1; d <= tc.halo; d++ {
					if r-d >= 0 {
						v += init(r-d, c)
					}
					if r+d < tc.rows {
						v += init(r+d, c)
					}
					if c-d >= 0 {
						v += init(r, c-d)
					}
					if c+d < tc.cols {
						v += init(r, c+d)
					}
				}
				return v
			}
			runGA(t, tc.procs, func(p *armci.Proc) {
				a, err := ga.Create(p, "halo-src", tc.rows, tc.cols)
				if err != nil {
					panic(err)
				}
				b, err := a.Duplicate("halo-dst")
				if err != nil {
					panic(err)
				}
				me := p.Rank()
				rlo, rhi, clo, chi := a.Distribution(me)
				empty := rlo >= rhi || clo >= chi
				if !empty {
					buf := make([]float64, (rhi-rlo)*(chi-clo))
					for r := rlo; r < rhi; r++ {
						for c := clo; c < chi; c++ {
							buf[(r-rlo)*(chi-clo)+(c-clo)] = init(r, c)
						}
					}
					a.Put(rlo, rhi, clo, chi, buf)
				}
				a.Sync()

				if !empty {
					// The halo patch, clamped at the array edge. With a halo
					// wider than the tile this spans several owners' blocks.
					hrlo, hrhi := maxInt(0, rlo-tc.halo), minInt(tc.rows, rhi+tc.halo)
					hclo, hchi := maxInt(0, clo-tc.halo), minInt(tc.cols, chi+tc.halo)
					patch := a.Get(hrlo, hrhi, hclo, hchi)
					at := func(r, c int) float64 {
						return patch[(r-hrlo)*(hchi-hclo)+(c-hclo)]
					}
					for r := hrlo; r < hrhi; r++ {
						for c := hclo; c < hchi; c++ {
							if got := at(r, c); got != init(r, c) {
								panic("halo patch cell is stale")
							}
						}
					}
					out := make([]float64, (rhi-rlo)*(chi-clo))
					for r := rlo; r < rhi; r++ {
						for c := clo; c < chi; c++ {
							v := at(r, c)
							for d := 1; d <= tc.halo; d++ {
								if r-d >= hrlo {
									v += at(r-d, c)
								}
								if r+d < hrhi {
									v += at(r+d, c)
								}
								if c-d >= hclo {
									v += at(r, c-d)
								}
								if c+d < hchi {
									v += at(r, c+d)
								}
							}
							out[(r-rlo)*(chi-clo)+(c-clo)] = v
						}
					}
					b.Put(rlo, rhi, clo, chi, out)
				}
				b.Sync()

				if me == 0 {
					got := b.Get(0, tc.rows, 0, tc.cols)
					for r := 0; r < tc.rows; r++ {
						for c := 0; c < tc.cols; c++ {
							if want := updated(r, c); got[r*tc.cols+c] != want {
								panic("updated cell diverged from the sequential model")
							}
						}
					}
				}
			})
		})
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
