// Package ga is a compact Global Arrays substrate built on the armci
// package, sufficient to reproduce the paper's GA_Sync() evaluation and
// to write realistic distributed-array applications. A two-dimensional
// float64 array is block-distributed over a near-square process grid;
// any process reads, writes or accumulates arbitrary global patches with
// one-sided strided operations against the owners' memory, and GA_Sync
// (Sync) fences all outstanding transfers and synchronizes — with either
// the original AllFence+MPI_Barrier implementation or the paper's
// combined ARMCI_Barrier.
package ga

import (
	"fmt"
	"math"

	"armci"
	"armci/mp"
)

// SyncMode selects the implementation behind Sync (GA_Sync).
type SyncMode uint8

const (
	// SyncNew uses the paper's combined fence+barrier (ARMCI_Barrier).
	SyncNew SyncMode = iota
	// SyncOld uses the original serialized AllFence + MPI_Barrier.
	SyncOld
	// SyncOldPipelined is the ablation with overlapped fence round trips.
	SyncOldPipelined
)

func (m SyncMode) String() string {
	switch m {
	case SyncNew:
		return "new"
	case SyncOld:
		return "old"
	case SyncOldPipelined:
		return "old-pipelined"
	}
	return fmt.Sprintf("SyncMode(%d)", uint8(m))
}

// Array is one rank's handle to a block-distributed 2-D float64 array.
type Array struct {
	p          *armci.Proc
	name       string
	rows, cols int
	pr, pc     int   // process grid dimensions (pr*pc == Size)
	rowSplit   []int // pr+1 block boundaries over rows
	colSplit   []int // pc+1 block boundaries over cols
	ptrs       []armci.Ptr
	mode       SyncMode
}

// Create collectively builds a rows×cols array distributed uniformly over
// all ranks on a near-square grid. Every rank must call it with identical
// arguments; the call synchronizes.
func Create(p *armci.Proc, name string, rows, cols int) (*Array, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("ga: array %q needs positive dims, got %dx%d", name, rows, cols)
	}
	n := p.Size()
	pr := nearSquareRows(n)
	pc := n / pr
	a := &Array{
		p: p, name: name, rows: rows, cols: cols, pr: pr, pc: pc,
		rowSplit: split(rows, pr),
		colSplit: split(cols, pc),
	}
	br, bc := a.blockDims(p.Rank())
	bytes := 8 * br * bc
	if bytes == 0 {
		bytes = 8 // keep empty blocks addressable
	}
	// Collective exchange of the block base pointers (synchronizing).
	a.ptrs = exchangeBlockPtrs(p, bytes)
	return a, nil
}

// exchangeBlockPtrs allocates this rank's block and all-gathers the bases.
func exchangeBlockPtrs(p *armci.Proc, bytes int) []armci.Ptr {
	local := p.MallocLocal(bytes)
	vec := make([]int64, 2*p.Size())
	hi, lo := local.Pack()
	vec[2*p.Rank()], vec[2*p.Rank()+1] = hi, lo
	p.AllReduceSumInt64(vec)
	out := make([]armci.Ptr, p.Size())
	for r := range out {
		out[r] = armci.UnpackPtr(vec[2*r], vec[2*r+1])
	}
	return out
}

// nearSquareRows returns the largest divisor of n not exceeding √n.
func nearSquareRows(n int) int {
	best := 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			best = d
		}
	}
	return best
}

// split returns k+1 boundaries dividing n as evenly as possible.
func split(n, k int) []int {
	b := make([]int, k+1)
	for i := 0; i <= k; i++ {
		b[i] = i * n / k
	}
	return b
}

// Name returns the array's creation name.
func (a *Array) Name() string { return a.name }

// Dims returns the global dimensions.
func (a *Array) Dims() (rows, cols int) { return a.rows, a.cols }

// Grid returns the process-grid dimensions.
func (a *Array) Grid() (pr, pc int) { return a.pr, a.pc }

// SetSyncMode selects the GA_Sync implementation (default SyncNew). All
// ranks must agree.
func (a *Array) SetSyncMode(m SyncMode) { a.mode = m }

// SyncMode returns the current GA_Sync implementation.
func (a *Array) SyncMode() SyncMode { return a.mode }

// gridPos returns rank's position on the process grid (row-major).
func (a *Array) gridPos(rank int) (gr, gc int) { return rank / a.pc, rank % a.pc }

// rankAt returns the rank at grid position (gr, gc).
func (a *Array) rankAt(gr, gc int) int { return gr*a.pc + gc }

// Distribution returns the half-open global index ranges of rank's block:
// rows [rlo, rhi), cols [clo, chi).
func (a *Array) Distribution(rank int) (rlo, rhi, clo, chi int) {
	gr, gc := a.gridPos(rank)
	return a.rowSplit[gr], a.rowSplit[gr+1], a.colSplit[gc], a.colSplit[gc+1]
}

// blockDims returns the local block shape of rank.
func (a *Array) blockDims(rank int) (br, bc int) {
	rlo, rhi, clo, chi := a.Distribution(rank)
	return rhi - rlo, chi - clo
}

// Owner returns the rank owning global element (r, c).
func (a *Array) Owner(r, c int) int {
	gr := searchSplit(a.rowSplit, r)
	gc := searchSplit(a.colSplit, c)
	return a.rankAt(gr, gc)
}

// searchSplit returns the block index containing x.
func searchSplit(b []int, x int) int {
	for i := 0; i+1 < len(b); i++ {
		if x < b[i+1] {
			return i
		}
	}
	return len(b) - 2
}

// checkPatch validates a half-open patch.
func (a *Array) checkPatch(rlo, rhi, clo, chi int) {
	if rlo < 0 || clo < 0 || rhi > a.rows || chi > a.cols || rlo >= rhi || clo >= chi {
		panic(fmt.Sprintf("ga: %q patch [%d,%d)x[%d,%d) outside %dx%d",
			a.name, rlo, rhi, clo, chi, a.rows, a.cols))
	}
}

// eachBlock visits every owner block intersecting the patch, passing the
// owning rank and the half-open global intersection.
func (a *Array) eachBlock(rlo, rhi, clo, chi int, fn func(rank, irlo, irhi, iclo, ichi int)) {
	for gr := 0; gr < a.pr; gr++ {
		brlo, brhi := a.rowSplit[gr], a.rowSplit[gr+1]
		if brhi <= rlo || brlo >= rhi || brlo == brhi {
			continue
		}
		for gc := 0; gc < a.pc; gc++ {
			bclo, bchi := a.colSplit[gc], a.colSplit[gc+1]
			if bchi <= clo || bclo >= chi || bclo == bchi {
				continue
			}
			fn(a.rankAt(gr, gc),
				max(rlo, brlo), min(rhi, brhi),
				max(clo, bclo), min(chi, bchi))
		}
	}
}

// blockRegion maps a global intersection to the owner-local strided
// descriptor and base pointer.
func (a *Array) blockRegion(rank, irlo, irhi, iclo, ichi int) (armci.Ptr, armci.Strided) {
	orlo, _, oclo, _ := a.Distribution(rank)
	_, bc := a.blockDims(rank)
	base := a.ptrs[rank].Add(int64(8 * ((irlo-orlo)*bc + (iclo - oclo))))
	rows := irhi - irlo
	rowBytes := 8 * (ichi - iclo)
	if rows == 1 {
		return base, armci.Contig(rowBytes)
	}
	return base, armci.Strided{Count: []int{rowBytes, rows}, Stride: []int64{int64(8 * bc)}}
}

// patchSlice extracts the intersection rows from a row-major patch buffer.
func patchSlice(buf []float64, rlo, clo, chi int, irlo, irhi, iclo, ichi int) []float64 {
	cols := chi - clo
	out := make([]float64, 0, (irhi-irlo)*(ichi-iclo))
	for r := irlo; r < irhi; r++ {
		row := (r-rlo)*cols + (iclo - clo)
		out = append(out, buf[row:row+(ichi-iclo)]...)
	}
	return out
}

// Put writes the row-major buf into the global patch rows [rlo,rhi) ×
// cols [clo,chi) (GA_Put / NGA_Put). Non-blocking completion semantics:
// remote pieces are guaranteed visible only after Sync or a fence.
func (a *Array) Put(rlo, rhi, clo, chi int, buf []float64) {
	a.checkPatch(rlo, rhi, clo, chi)
	if want := (rhi - rlo) * (chi - clo); len(buf) != want {
		panic(fmt.Sprintf("ga: %q put buffer %d elements, patch needs %d", a.name, len(buf), want))
	}
	a.eachBlock(rlo, rhi, clo, chi, func(rank, irlo, irhi, iclo, ichi int) {
		dst, desc := a.blockRegion(rank, irlo, irhi, iclo, ichi)
		piece := patchSlice(buf, rlo, clo, chi, irlo, irhi, iclo, ichi)
		a.p.PutStrided(dst, desc, mp.Float64sToBytes(piece))
	})
}

// Get reads the global patch into a row-major buffer (GA_Get). Blocking.
func (a *Array) Get(rlo, rhi, clo, chi int) []float64 {
	a.checkPatch(rlo, rhi, clo, chi)
	cols := chi - clo
	out := make([]float64, (rhi-rlo)*cols)
	a.eachBlock(rlo, rhi, clo, chi, func(rank, irlo, irhi, iclo, ichi int) {
		src, desc := a.blockRegion(rank, irlo, irhi, iclo, ichi)
		piece := mp.BytesToFloat64s(a.p.GetStrided(src, desc))
		w := ichi - iclo
		for r := irlo; r < irhi; r++ {
			row := (r-rlo)*cols + (iclo - clo)
			copy(out[row:row+w], piece[(r-irlo)*w:(r-irlo+1)*w])
		}
	})
	return out
}

// Acc atomically adds alpha*buf into the global patch (GA_Acc).
// Non-blocking like Put.
func (a *Array) Acc(rlo, rhi, clo, chi int, buf []float64, alpha float64) {
	a.checkPatch(rlo, rhi, clo, chi)
	if want := (rhi - rlo) * (chi - clo); len(buf) != want {
		panic(fmt.Sprintf("ga: %q acc buffer %d elements, patch needs %d", a.name, len(buf), want))
	}
	a.eachBlock(rlo, rhi, clo, chi, func(rank, irlo, irhi, iclo, ichi int) {
		dst, desc := a.blockRegion(rank, irlo, irhi, iclo, ichi)
		piece := patchSlice(buf, rlo, clo, chi, irlo, irhi, iclo, ichi)
		a.p.Accumulate(armci.AccFloat64, dst, desc, mp.Float64sToBytes(piece), alpha)
	})
}

// Fill collectively sets every element to v (each rank fills its own
// block) and synchronizes.
func (a *Array) Fill(v float64) {
	rlo, rhi, clo, chi := a.Distribution(a.p.Rank())
	if rhi > rlo && chi > clo {
		n := (rhi - rlo) * (chi - clo)
		buf := make([]float64, n)
		if v != 0 {
			for i := range buf {
				buf[i] = v
			}
		}
		a.Put(rlo, rhi, clo, chi, buf)
	}
	a.Sync()
}

// Duplicate collectively creates a new array with the same shape,
// distribution and sync mode (GA_Duplicate). Contents start zeroed; use
// Copy to transfer data.
func (a *Array) Duplicate(name string) (*Array, error) {
	d, err := Create(a.p, name, a.rows, a.cols)
	if err != nil {
		return nil, err
	}
	d.SetSyncMode(a.mode)
	return d, nil
}

// Sync is GA_Sync: it completes all outstanding array communication
// everywhere and synchronizes all ranks, using the configured
// implementation (the paper's combined barrier by default).
func (a *Array) Sync() {
	switch a.mode {
	case SyncNew:
		a.p.Barrier()
	case SyncOld:
		a.p.SyncOld()
	case SyncOldPipelined:
		a.p.SyncOldPipelined()
	default:
		panic(fmt.Sprintf("ga: unknown sync mode %v", a.mode))
	}
}

// Norm2 collectively computes the Frobenius norm: each rank reduces its
// own block and the squares are summed with a float all-reduce. (Useful
// for validating iterative solvers in examples and tests.)
func (a *Array) Norm2() float64 {
	rlo, rhi, clo, chi := a.Distribution(a.p.Rank())
	var sum float64
	if rhi > rlo && chi > clo {
		for _, v := range a.Get(rlo, rhi, clo, chi) {
			sum += v * v
		}
	}
	vec := []float64{sum}
	a.p.AllReduceSumFloat64(vec)
	return math.Sqrt(vec[0])
}
