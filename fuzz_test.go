package armci_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"armci"
)

// Schedule fuzzing: the simulated fabric is deterministic for a given
// program, so injecting random (seeded) virtual-time delays between
// operations explores *different but reproducible* interleavings of the
// protocols. Any failure prints its seed and replays exactly.

// TestFuzzLockSchedules drives every lock algorithm through randomized
// schedules and checks the counter invariant each time.
func TestFuzzLockSchedules(t *testing.T) {
	algs := []armci.LockAlg{armci.LockHybrid, armci.LockQueue, armci.LockQueueNoCAS}
	for _, alg := range algs {
		for seed := int64(1); seed <= 6; seed++ {
			t.Run(fmt.Sprintf("%v/seed=%d", alg, seed), func(t *testing.T) {
				const procs, iters = 5, 8
				home := int(seed) % procs
				_, err := armci.Run(armci.Options{
					Procs:      procs,
					Fabric:     armci.FabricSim,
					Preset:     armci.PresetMyrinet2000,
					NumMutexes: 1,
					LockHomes:  []int{home},
				}, func(p *armci.Proc) {
					// Per-rank deterministic delay stream.
					rng := rand.New(rand.NewSource(seed*1000 + int64(p.Rank())))
					counter := p.MallocWords(1) // homed at rank 0
					mu := p.Mutex(0, alg)
					for i := 0; i < iters; i++ {
						p.Env().Clock().Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
						mu.Lock()
						v := p.Load(counter[0])
						p.Env().Clock().Sleep(time.Duration(rng.Intn(30)) * time.Microsecond)
						p.Store(counter[0], v+1)
						if p.NodeOf(0) != p.MyNode() {
							p.Fence(p.NodeOf(0))
						}
						mu.Unlock()
					}
					p.Barrier()
					if p.Rank() == 0 {
						if got := p.Load(counter[0]); got != procs*iters {
							panic(fmt.Sprintf("seed %d: counter %d, want %d", seed, got, procs*iters))
						}
					}
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestFuzzSyncSchedules randomizes the write pattern and the skew before
// each sync, alternating between the old and new implementations, and
// checks visibility every round.
func TestFuzzSyncSchedules(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const procs, rounds = 6, 5
			_, err := armci.Run(armci.Options{
				Procs:  procs,
				Fabric: armci.FabricSim,
				Preset: armci.PresetMyrinet2000,
			}, func(p *armci.Proc) {
				me := p.Rank()
				rng := rand.New(rand.NewSource(seed*77 + int64(me)))
				// Shared layout decided by a common seed, so every rank
				// knows who writes where each round.
				plan := rand.New(rand.NewSource(seed))
				cells := p.MallocWords(procs * rounds)
				for round := 0; round < rounds; round++ {
					// Each rank writes to a planned subset of others.
					targets := map[int]bool{}
					for q := 0; q < procs; q++ {
						writers := plan.Intn(procs) // same stream on all ranks
						_ = writers
						if plan.Intn(2) == 1 {
							targets[q] = true
						}
					}
					p.Env().Clock().Sleep(time.Duration(rng.Intn(150)) * time.Microsecond)
					for q := 0; q < procs; q++ {
						if q != me && targets[q] {
							p.Store(cells[q].Add(int64(round*procs+me)), int64(100+round))
						}
					}
					if round%2 == 0 {
						p.Barrier()
					} else {
						p.SyncOld()
					}
					for q := 0; q < procs; q++ {
						if q != me && targets[me] {
							got := p.Load(cells[me].Add(int64(round*procs + q)))
							if got != int64(100+round) {
								panic(fmt.Sprintf("seed %d round %d: rank %d missing write from %d (got %d)",
									seed, round, me, q, got))
							}
						}
					}
					p.MPIBarrier()
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBarrierAlgOptionsPublic exercises every stage-3 algorithm through
// the public option, including central and dissemination.
func TestBarrierAlgOptionsPublic(t *testing.T) {
	cases := []struct {
		procs int
		alg   armci.BarrierAlg
	}{
		{8, armci.BarrierPairwise},
		{8, armci.BarrierCentral},
		{6, armci.BarrierDissemination},
		{6, armci.BarrierAuto},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%v/procs=%d", c.alg, c.procs), func(t *testing.T) {
			_, err := armci.Run(armci.Options{
				Procs:      c.procs,
				Fabric:     armci.FabricSim,
				Preset:     armci.PresetMyrinet2000,
				BarrierAlg: c.alg,
			}, func(p *armci.Proc) {
				ptrs := p.MallocWords(1)
				if p.Rank() != 0 {
					p.Store(ptrs[0], int64(p.Rank()))
				}
				p.Barrier()
				if p.Rank() == 0 && p.Load(ptrs[0]) == 0 {
					panic("no write visible after barrier")
				}
				p.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFastEthernetPresetOrdering: the qualitative Figure 7 ordering holds
// under the second cost preset too (higher latency, bigger gap).
func TestFastEthernetPresetOrdering(t *testing.T) {
	timeOf := func(old bool) time.Duration {
		var dt time.Duration
		_, err := armci.Run(armci.Options{
			Procs:  8,
			Fabric: armci.FabricSim,
			Preset: armci.PresetFastEthernet,
		}, func(p *armci.Proc) {
			ptrs := p.Malloc(64)
			payload := make([]byte, 32)
			for q := 0; q < 8; q++ {
				if q != p.Rank() {
					p.Put(ptrs[q], payload)
				}
			}
			p.MPIBarrier()
			t0 := p.Now()
			if old {
				p.SyncOld()
			} else {
				p.Barrier()
			}
			if p.Rank() == 0 {
				dt = p.Now() - t0
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return dt
	}
	oldT, newT := timeOf(true), timeOf(false)
	if newT >= oldT {
		t.Fatalf("fast-ethernet preset: new sync (%v) not faster than old (%v)", newT, oldT)
	}
	if ratio := float64(oldT) / float64(newT); ratio < 3 {
		t.Fatalf("fast-ethernet improvement factor %.1f suspiciously low at 8 procs", ratio)
	}
}

// TestFuzzScheduleExploration re-runs the full synchronization surface
// under many reproducible scheduler orderings (sim kernel shuffle): the
// lock counter and sync visibility invariants must hold under every
// interleaving, and a given seed must replay identically.
func TestFuzzScheduleExploration(t *testing.T) {
	run := func(seed int64) (string, error) {
		rep, err := armci.Run(armci.Options{
			Procs:        5,
			Fabric:       armci.FabricSim,
			Preset:       armci.PresetMyrinet2000,
			NumMutexes:   2,
			ScheduleSeed: seed,
			CaptureTrace: true,
		}, func(p *armci.Proc) {
			me := p.Rank()
			cells := p.MallocWords(p.Size())
			muA := p.Mutex(0, armci.LockQueue)
			muB := p.Mutex(1, armci.LockHybrid)
			for round := 0; round < 4; round++ {
				for q := 0; q < p.Size(); q++ {
					if q != me {
						p.Store(cells[q].Add(int64(me)), int64(round+1))
					}
				}
				p.Barrier()
				for q := 0; q < p.Size(); q++ {
					if q != me {
						if got := p.Load(cells[me].Add(int64(q))); got != int64(round+1) {
							panic(fmt.Sprintf("round %d: stale %d from %d", round, got, q))
						}
					}
				}
				mu := muA
				if round%2 == 1 {
					mu = muB
				}
				mu.Lock()
				v := p.Load(cells[0].Add(int64(me)))
				p.Store(cells[0].Add(int64(me)), v)
				if p.NodeOf(0) != p.MyNode() {
					p.Fence(p.NodeOf(0))
				}
				mu.Unlock()
				p.MPIBarrier()
			}
		})
		if err != nil {
			return "", err
		}
		return rep.Stats.Fingerprint(), nil
	}

	fingerprints := map[string]bool{}
	for seed := int64(1); seed <= 8; seed++ {
		fp, err := run(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fp2, err := run(seed)
		if err != nil {
			t.Fatalf("seed %d replay: %v", seed, err)
		}
		if fp != fp2 {
			t.Fatalf("seed %d did not replay identically", seed)
		}
		fingerprints[fp] = true
	}
	// The seeds must actually explore different interleavings, otherwise
	// the shuffle is not doing anything.
	if len(fingerprints) < 2 {
		t.Fatalf("8 seeds produced %d distinct schedules — shuffle ineffective", len(fingerprints))
	}
}

// FuzzParseFaults: any plan ParseFaults accepts must round-trip —
// FormatFaults renders it canonically and re-parsing the rendering
// yields the identical struct. This pins the grammar and the formatter
// to each other (including float formatting and duration rendering) and
// exercises the parser's rejection paths on arbitrary input.
func FuzzParseFaults(f *testing.F) {
	for _, seed := range []string{
		"",
		"jitter=500us",
		"jitter=500us,spike=2ms@0.05,dup=0.02,seed=7",
		"dup=0.25@3ms",
		"loss=0.1@3,rto=200us@4ms,retry=6,crash=2@40,seed=-9",
		"loss=1",
		"rto=1h",
		"spike=0s@1",
		"retry=1,crash=0@1",
		"jitter=1ms,jitter=2ms",
		"loss=0.5@0",
		"seed=9223372036854775807",
		"crashheld=1@1",
		"crash=2@40,crashheld=3@2,seed=11",
		"crashheld=0@0",
		"crashheld=-1@2",
		"crashheld=1@1,crashheld=2@1",
		"crashrank=1@3",
		"crash=2@40,crashrank=1@2,seed=5",
		"crashrank=0@0",
		"crashrank=-1@2",
		"crashrank=1@1,crashrank=2@1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, plan string) {
		parsed, err := armci.ParseFaults(plan)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		rendered := armci.FormatFaults(parsed)
		reparsed, err := armci.ParseFaults(rendered)
		if err != nil {
			t.Fatalf("plan %q: canonical form %q rejected: %v", plan, rendered, err)
		}
		if reparsed != parsed {
			t.Fatalf("plan %q: round-trip mismatch:\nparsed   %+v\nrendered %q\nreparsed %+v",
				plan, parsed, rendered, reparsed)
		}
		// The canonical form is a fixed point.
		if again := armci.FormatFaults(reparsed); again != rendered {
			t.Fatalf("plan %q: formatter not canonical: %q then %q", plan, rendered, again)
		}
	})
}
