// Package armci is a Go reproduction of the ARMCI remote-memory
// communication system and of the optimized synchronization operations of
// Buntinas, Saify, Panda and Nieplocha, "Optimizing Synchronization
// Operations for Remote Memory Communication Systems" (IPPS 2003).
//
// The package emulates a cluster of user processes and per-node data
// servers inside one Go program. Processes issue one-sided operations
// (put, get, accumulate, read-modify-write) against globally addressable
// memory; operations on remote nodes travel as messages to that node's
// data server, exactly as in ARMCI's client-server architecture. Three
// execution fabrics are available:
//
//   - FabricSim — a deterministic discrete-event simulation with a
//     calibrated cost model: virtual-time results reproduce the paper's
//     figures;
//   - FabricChan — real goroutines and in-process message queues, for
//     correctness and stress testing;
//   - FabricTCP — real goroutines whose every message crosses a loopback
//     TCP socket, the "emulated over sockets" configuration;
//   - FabricProc — one SMP node per OS process, rendezvoused and routed
//     by cmd/armci-run: the multi-process cluster runtime, where every
//     remote message crosses a real process boundary.
//
// The synchronization operations under study are exposed on Proc:
// AllFence+MPIBarrier (the original GA_Sync path), Barrier (the paper's
// combined fence+barrier), and Mutex with the original hybrid algorithm,
// the paper's software queuing lock, and the future-work no-CAS variant.
package armci

import (
	"fmt"
	"time"

	"armci/internal/cluster"
	"armci/internal/collective"
	"armci/internal/core"
	"armci/internal/model"
	"armci/internal/pipeline"
	"armci/internal/proc"
	"armci/internal/server"
	"armci/internal/shmem"
	"armci/internal/trace"
	"armci/internal/transport"
)

// Re-exported memory types. Ptr names one remotely accessible location as
// the paper's (rank, address) tuple; Strided describes ARMCI's
// non-contiguous transfers; Pair is the two-long operand of the atomic
// operations the paper adds.
type (
	Ptr     = shmem.Ptr
	Strided = shmem.Strided
	Pair    = shmem.Pair
	AccOp   = shmem.AccOp
)

// Re-exported accumulate element types.
const (
	AccFloat64 = shmem.AccFloat64
	AccInt64   = shmem.AccInt64
)

// Faults configures deterministic fault injection on any fabric: uniform
// jitter, per-pair latency spikes, bounded duplicate delivery, message
// loss recovered by the ack/retransmit reliability stage (LossProb,
// LossBurst, RetryBudget, RTO, RTOCap), and fail-stop rank crashes
// (CrashRank, CrashAfterSends) — all derived from a seed so a fault
// pattern replays identically across runs and fabrics. Per-pair FIFO
// order is preserved, duplicates are suppressed at the receiver and lost
// messages are retransmitted, so protocol code still observes reliable
// exactly-once delivery; a run that cannot (retry budget exhausted, rank
// crashed) fails fast with a *FaultError. The zero value disables faults.
type Faults = pipeline.Faults

// FaultError is the structured, rank-attributed error a run returns when
// an injected fault could not be masked: a crash, an exhausted
// retransmission budget, or a per-operation timeout. Inspect it with
// errors.As:
//
//	var fe *armci.FaultError
//	if errors.As(err, &fe) { ... fe.Rank, fe.Op, fe.Kind ... }
type FaultError = pipeline.FaultError

// FaultKind classifies a FaultError.
type FaultKind = pipeline.FaultKind

// FaultError kinds.
const (
	// FaultCrash: an injected Crash fault fail-stopped the rank.
	FaultCrash = pipeline.FaultCrash
	// FaultRetryExhausted: a message stayed lost through the whole
	// retransmission budget.
	FaultRetryExhausted = pipeline.FaultRetryExhausted
	// FaultOpTimeout: one blocking operation exceeded Options.OpDeadline.
	FaultOpTimeout = pipeline.FaultOpTimeout
	// FaultPeerLost: a multi-process worker died or went silent; Rank
	// names the dead worker's first rank (FabricProc only).
	FaultPeerLost = pipeline.FaultPeerLost
)

// Coalesce configures the engine's per-destination small-op coalescing
// stage: eligible small puts and accumulates bound for the same node are
// buffered in program order and shipped as one batched wire frame,
// flushed by size thresholds and at every ordering point (fence,
// barrier, notify flag, or any other message to the same node). The
// zero value disables coalescing; set Enabled for the defaults
// (pipeline.DefaultMaxOps ops / DefaultMaxBytes bytes per batch).
type Coalesce = pipeline.CoalesceOpts

// Metrics collects per-kind and per-pair message latency histograms,
// fault counters and (optionally) a delivery timeline from the transport
// pipeline. One Metrics may be shared across runs to aggregate an
// experiment.
type Metrics = pipeline.Metrics

// NewMetrics returns an empty latency-metrics collector to pass in
// Options.Metrics.
func NewMetrics() *Metrics { return pipeline.NewMetrics() }

// Contig returns the strided descriptor of a contiguous n-byte run.
func Contig(n int) Strided { return shmem.Contig(n) }

// UnpackPtr decodes a global pointer from the two-word representation
// produced by Ptr.Pack (how pointers travel through int64 exchanges).
func UnpackPtr(hi, lo int64) Ptr { return shmem.Unpack(hi, lo) }

// FenceMode selects how put completion is detected (§3.1.1 of the paper).
type FenceMode = proc.FenceMode

// Fence modes: FenceRequest is the GM-like explicit-confirmation mode used
// in the paper's evaluation; FenceAck is the LAPI/VIA-like per-put-ack
// mode.
const (
	FenceRequest = proc.FenceRequest
	FenceAck     = proc.FenceAck
)

// BarrierAlg selects the barrier exchange pattern.
type BarrierAlg = collective.BarrierAlg

// Barrier algorithms.
const (
	BarrierAuto          = collective.BarrierAuto
	BarrierPairwise      = collective.BarrierPairwise
	BarrierDissemination = collective.BarrierDissemination
	BarrierCentral       = collective.BarrierCentral
	BarrierKnomial       = collective.BarrierKnomial
	BarrierHierarchical  = collective.BarrierHierarchical
)

// ParseBarrierAlg resolves a barrier algorithm name — the shared
// vocabulary of the command-line tools ("auto", "pairwise",
// "dissemination", "central", "knomial", "hierarchical").
func ParseBarrierAlg(s string) (BarrierAlg, error) {
	for _, a := range []BarrierAlg{BarrierAuto, BarrierPairwise, BarrierDissemination,
		BarrierCentral, BarrierKnomial, BarrierHierarchical} {
		if s == a.String() {
			return a, nil
		}
	}
	return 0, fmt.Errorf("armci: unknown barrier algorithm %q (want auto, pairwise, dissemination, central, knomial or hierarchical)", s)
}

// Topology is the synthetic node layout of the in-process fabrics (see
// Options.Topology).
type Topology = model.Topology

// FabricKind selects the execution fabric.
type FabricKind uint8

const (
	// FabricSim is the deterministic discrete-event fabric.
	FabricSim FabricKind = iota
	// FabricChan is the concurrent in-process fabric.
	FabricChan
	// FabricTCP is the concurrent loopback-socket fabric.
	FabricTCP
	// FabricProc is the multi-process fabric: this process hosts one SMP
	// node of a cluster launched by armci-run, and messages cross real
	// inter-process TCP connections. Requires the cluster worker
	// environment (see internal/cluster and cmd/armci-run).
	FabricProc
)

func (k FabricKind) String() string {
	switch k {
	case FabricSim:
		return "sim"
	case FabricChan:
		return "chan"
	case FabricTCP:
		return "tcp"
	case FabricProc:
		return "proc"
	}
	return fmt.Sprintf("FabricKind(%d)", uint8(k))
}

// ParseFabric resolves a fabric name — the shared vocabulary of every
// command-line tool that selects fabrics ("sim", "chan", "tcp", "proc").
func ParseFabric(s string) (FabricKind, error) {
	switch s {
	case "sim":
		return FabricSim, nil
	case "chan":
		return FabricChan, nil
	case "tcp":
		return FabricTCP, nil
	case "proc":
		return FabricProc, nil
	}
	return 0, fmt.Errorf("armci: unknown fabric %q (want sim, chan, tcp or proc)", s)
}

// CostPreset names a cost model for the simulated fabric.
type CostPreset string

// Cost presets.
const (
	// PresetZero disables all modeled costs (pure protocol execution).
	PresetZero CostPreset = "zero"
	// PresetMyrinet2000 is calibrated to the paper's testbed.
	PresetMyrinet2000 CostPreset = "myrinet2000"
	// PresetFastEthernet is a higher-latency ablation preset.
	PresetFastEthernet CostPreset = "fast-ethernet"
	// PresetLowLatency is a faster-interconnect ablation preset.
	PresetLowLatency CostPreset = "low-latency"
)

func (p CostPreset) params() (model.Params, error) {
	switch p {
	case PresetZero, "":
		return model.Zero(), nil
	case PresetMyrinet2000:
		return model.Myrinet2000(), nil
	case PresetFastEthernet:
		return model.FastEthernet(), nil
	case PresetLowLatency:
		return model.LowLatency(), nil
	}
	return model.Params{}, fmt.Errorf("armci: unknown cost preset %q", p)
}

// Options configures an emulated cluster run.
type Options struct {
	// Procs is the number of user processes. Required.
	Procs int
	// ProcsPerNode is how many consecutive ranks share an SMP node;
	// default 1 (the paper's configuration).
	ProcsPerNode int
	// Fabric selects the execution substrate; default FabricSim.
	Fabric FabricKind
	// Preset selects the cost model; default PresetZero. Only FabricSim
	// and FabricChan apply modeled costs.
	Preset CostPreset
	// FenceMode selects put-completion detection; default FenceRequest.
	FenceMode FenceMode
	// BarrierAlg selects the barrier pattern; default BarrierAuto. It
	// also selects the combined barrier's stage-1 allreduce pattern
	// (BarrierKnomial and BarrierHierarchical route the counter
	// exchange over their trees).
	BarrierAlg BarrierAlg
	// BarrierRadix sets the k-nomial tree radix used by BarrierKnomial
	// and the tree-based reductions; 0 selects collective.DefaultRadix
	// (4). Must be >= 2 when set.
	BarrierRadix int
	// Topology is an alternative way to describe the node layout of the
	// in-process fabrics: Nodes SMP nodes of PPN consecutive ranks,
	// mirroring armci-run's -n/-ppn. When set it must satisfy
	// Nodes*PPN == Procs and agree with ProcsPerNode if both are given.
	// Intra-node traffic costs model.Params.LocalLatency, inter-node
	// traffic the full Latency — the gradient the hierarchical barrier
	// exploits. The zero value defers to ProcsPerNode.
	Topology Topology
	// NICFenceOffload makes every data server answer fence round-trips
	// at NIC cost (model.Params.NICService) without a host wake-up or
	// the ServiceFence PCI drain, and switches the combined Barrier to
	// one pipelined fence round-trip per written node instead of the
	// counter exchange. Unlike NICAssist it adds no extra agents: the
	// NIC answers on the server's own channel, so per-pair FIFO still
	// proves completion.
	NICFenceOffload bool
	// NumMutexes is how many cluster locks to create. Lock i is homed at
	// rank LockHomes[i] if given, else at rank i modulo Procs.
	NumMutexes int
	// LeaseTTL is the lease duration of LockLease mutexes: a holder that
	// has not advanced the lock state for this long may be deposed by a
	// waiter once a fail-stop crash is on record. Virtual time on
	// FabricSim, wall time otherwise. It must exceed the longest critical
	// section plus one hand-off; 0 selects a default of 10ms
	// (core.DefaultLeaseTTL).
	LeaseTTL time.Duration
	// LockHomes optionally places each lock; len must equal NumMutexes.
	LockHomes []int
	// NICAssist enables the paper's §5 future work: a NIC agent per node
	// handles atomic operations and fence confirmations at NIC cost (no
	// server wake-up, sub-microsecond service), while bulk puts and gets
	// still flow through the host data servers. Fence confirmations then
	// check per-origin completion counters instead of message FIFO.
	NICAssist bool
	// Coalesce configures per-destination small-op coalescing on the
	// send path. Zero value: every operation is its own wire frame.
	Coalesce Coalesce
	// CaptureTrace records every message send for inspection.
	CaptureTrace bool
	// Faults configures deterministic fault injection (jitter, latency
	// spikes, duplicate delivery) on every fabric. Zero value: no faults.
	Faults Faults
	// Metrics, if non-nil, collects per-kind/per-pair message latency
	// histograms, fault counters and (with Metrics.SetTimeline) a
	// delivery timeline from the run.
	Metrics *Metrics
	// Jitter, when positive, adds a uniformly random extra delay in
	// [0, Jitter) to every message. Per-pair FIFO delivery is preserved.
	//
	// Deprecated: use Faults.Jitter, which applies on every fabric and
	// composes with the other fault knobs.
	Jitter time.Duration
	// JitterSeed seeds the jitter generator (0 uses a fixed default).
	//
	// Deprecated: use Faults.Seed.
	JitterSeed int64
	// ScheduleSeed, when non-zero, randomizes (reproducibly) which of the
	// simultaneously runnable simulated processes runs next on FabricSim —
	// schedule exploration for protocol testing. Seed 0 is the FIFO
	// baseline: processes run in arrival order, the schedule every other
	// test sees. Must be >= 0; ignored by FabricChan and FabricTCP.
	ScheduleSeed int64
	// SimEventPoolHazard arms the simulated kernel's deliberate
	// event-pool bug (recycling a still-scheduled event). Test-only: the
	// conformance harness uses it to prove its oracles catch
	// pooling-induced corruption. Ignored by FabricChan and FabricTCP.
	SimEventPoolHazard bool
	// Deadline bounds the run (virtual time for FabricSim, wall time
	// otherwise); 0 uses the fabric default.
	Deadline time.Duration
	// OpDeadline bounds every single blocking operation — one message
	// receive by a user process, or one memory wait by any actor — as
	// opposed to Deadline, which bounds the whole run. An operation that
	// exceeds it fails the run fast with a rank-attributed *FaultError
	// (FaultOpTimeout), which is how a rank wedged by a crashed or
	// unreachable peer is detected without waiting out the run deadline.
	// Virtual time on FabricSim, wall time otherwise; 0 disables the
	// bound.
	OpDeadline time.Duration
}

// normalize validates the options and resolves the cost preset,
// mirroring transport.Config.normalize for the knobs owned by this
// layer. It rejects invalid loss/crash/retry plans (negative or >1
// probabilities, negative retry budgets, crash ranks out of range)
// before the fabric is built, so callers get one descriptive error
// instead of a partially constructed cluster.
func (o *Options) normalize() (model.Params, error) {
	if o.Procs <= 0 {
		return model.Params{}, fmt.Errorf("armci: Options.Procs must be positive, got %d", o.Procs)
	}
	if o.LockHomes != nil && len(o.LockHomes) != o.NumMutexes {
		return model.Params{}, fmt.Errorf("armci: %d lock homes for %d mutexes", len(o.LockHomes), o.NumMutexes)
	}
	for i, h := range o.LockHomes {
		if h < 0 || h >= o.Procs {
			return model.Params{}, fmt.Errorf("armci: LockHomes[%d] = %d out of range [0,%d)", i, h, o.Procs)
		}
	}
	if o.Jitter < 0 {
		return model.Params{}, fmt.Errorf("armci: Options.Jitter must be >= 0, got %v", o.Jitter)
	}
	if o.Deadline < 0 {
		return model.Params{}, fmt.Errorf("armci: Options.Deadline must be >= 0, got %v", o.Deadline)
	}
	if o.OpDeadline < 0 {
		return model.Params{}, fmt.Errorf("armci: Options.OpDeadline must be >= 0, got %v", o.OpDeadline)
	}
	if o.LeaseTTL < 0 {
		return model.Params{}, fmt.Errorf("armci: Options.LeaseTTL must be >= 0, got %v", o.LeaseTTL)
	}
	if o.ScheduleSeed < 0 {
		return model.Params{}, fmt.Errorf("armci: Options.ScheduleSeed must be >= 0, got %d", o.ScheduleSeed)
	}
	if o.BarrierRadix != 0 && o.BarrierRadix < 2 {
		return model.Params{}, fmt.Errorf("armci: Options.BarrierRadix must be >= 2, got %d", o.BarrierRadix)
	}
	if o.Topology != (Topology{}) {
		if err := o.Topology.Validate(); err != nil {
			return model.Params{}, err
		}
		if o.Topology.Procs() != o.Procs {
			return model.Params{}, fmt.Errorf("armci: Topology %dx%d describes %d ranks, Procs is %d",
				o.Topology.Nodes, o.Topology.PPN, o.Topology.Procs(), o.Procs)
		}
		if o.ProcsPerNode != 0 && o.ProcsPerNode != o.Topology.PPN {
			return model.Params{}, fmt.Errorf("armci: ProcsPerNode %d disagrees with Topology PPN %d",
				o.ProcsPerNode, o.Topology.PPN)
		}
		o.ProcsPerNode = o.Topology.PPN
	}
	if err := o.Faults.Validate(); err != nil {
		return model.Params{}, fmt.Errorf("armci: bad fault plan: %w", err)
	}
	if err := o.Coalesce.Validate(); err != nil {
		return model.Params{}, fmt.Errorf("armci: bad coalesce options: %w", err)
	}
	if o.Faults.CrashAfterSends > 0 && o.Faults.CrashRank >= o.Procs {
		return model.Params{}, fmt.Errorf("armci: Faults.CrashRank %d out of range [0,%d)", o.Faults.CrashRank, o.Procs)
	}
	if o.Faults.CrashHeldAcquire > 0 && o.Faults.CrashHeldRank >= o.Procs {
		return model.Params{}, fmt.Errorf("armci: Faults.CrashHeldRank %d out of range [0,%d)", o.Faults.CrashHeldRank, o.Procs)
	}
	return o.Preset.params()
}

// Report summarizes a completed run.
type Report struct {
	// Elapsed is the cluster's end-to-end time: virtual for FabricSim,
	// wall for the concurrent fabrics.
	Elapsed time.Duration
	// Stats is the message-trace collector of the run.
	Stats *trace.Stats
	// Metrics is the latency-metrics collector of the run (nil unless
	// Options.Metrics was set).
	Metrics *Metrics
}

// Run builds a cluster per opt, executes body once per rank (concurrently
// on the real fabrics, deterministically interleaved on the simulated
// one), and tears everything down. The body receives the rank's Proc
// handle, which is valid only until body returns.
//
// When the run fails — in particular when an injected fault aborts it
// with a *FaultError — Run returns the partial Report (trace and metrics
// up to the failure) alongside the error; only option/setup errors yield
// a nil Report.
func Run(opt Options, body func(p *Proc)) (*Report, error) {
	params, err := opt.normalize()
	if err != nil {
		return nil, err
	}
	stats := trace.New()
	stats.SetCapture(opt.CaptureTrace)
	cfg := transport.Config{
		Procs:           opt.Procs,
		ProcsPerNode:    opt.ProcsPerNode,
		Model:           params,
		Trace:           stats,
		Faults:          opt.Faults,
		Metrics:         opt.Metrics,
		Jitter:          opt.Jitter,
		JitterSeed:      opt.JitterSeed,
		ScheduleSeed:    opt.ScheduleSeed,
		EventPoolHazard: opt.SimEventPoolHazard,
		Deadline:        opt.Deadline,
		OpDeadline:      opt.OpDeadline,
	}

	var fabric transport.Fabric
	var simF *transport.SimFabric
	switch opt.Fabric {
	case FabricSim:
		simF, err = transport.NewSim(cfg)
		fabric = simF
	case FabricChan:
		fabric, err = transport.NewChan(cfg)
	case FabricTCP:
		fabric, err = transport.NewTCP(cfg)
	case FabricProc:
		var env cluster.WorkerEnv
		var ok bool
		env, ok, err = cluster.FromEnv()
		if err == nil && !ok {
			err = fmt.Errorf("armci: FabricProc requires the cluster worker environment (%s etc.); start this program under armci-run, which sets it for every worker", cluster.EnvAddr)
		}
		if err == nil {
			fabric, err = transport.NewProc(cfg, env)
		}
	default:
		err = fmt.Errorf("armci: unknown fabric %v", opt.Fabric)
	}
	if err != nil {
		return nil, err
	}

	space := fabric.Space()
	numNodes := fabric.Config().Procs
	numNodes = (numNodes + fabric.Config().ProcsPerNode - 1) / fabric.Config().ProcsPerNode
	layout := proc.NewLayout(space, opt.Procs, numNodes)

	var locks *proc.LockTable
	if opt.NumMutexes > 0 {
		homes := opt.LockHomes
		if homes == nil {
			homes = make([]int, opt.NumMutexes)
			for i := range homes {
				homes[i] = i % opt.Procs
			}
		}
		locks = proc.NewLockTable(space, homes)
	}

	for n := 0; n < numNodes; n++ {
		fabric.SpawnServer(n, func(env transport.Env) {
			server.New(env, layout, server.Options{
				FenceMode: opt.FenceMode,
				Locks:     locks,
				NICFence:  opt.NICFenceOffload,
			}).Serve()
		})
	}
	if opt.NICAssist {
		for n := 0; n < numNodes; n++ {
			// NIC agents live in the server ID space above the node
			// count and share the server lifecycle.
			fabric.SpawnServer(numNodes+n, func(env transport.Env) {
				server.NewAgent(env, layout, server.Options{
					FenceMode: opt.FenceMode,
				}).Serve()
			})
		}
	}
	for r := 0; r < opt.Procs; r++ {
		fabric.SpawnUser(r, func(env transport.Env) {
			eng := proc.NewEngine(env, layout, opt.FenceMode)
			eng.SetNICAssist(opt.NICAssist)
			eng.SetCoalescing(opt.Coalesce)
			comm := collective.New(env)
			if opt.BarrierRadix != 0 {
				comm.SetRadix(opt.BarrierRadix)
			}
			sync := core.NewSync(eng, comm)
			sync.BarrierAlg = opt.BarrierAlg
			sync.NICFence = opt.NICFenceOffload
			body(&Proc{eng: eng, comm: comm, sync: sync, locks: locks, leaseTTL: opt.LeaseTTL})
		})
	}

	start := time.Now()
	runErr := fabric.Run()
	rep := &Report{Stats: stats, Metrics: opt.Metrics}
	if simF != nil {
		rep.Elapsed = simF.Now()
	} else {
		rep.Elapsed = time.Since(start)
	}
	if runErr != nil {
		// Surface the partial report alongside the error: on a fault
		// abort (see FaultError) the trace and metrics collected up to
		// the failure are exactly what a caller wants to inspect.
		return rep, runErr
	}
	return rep, nil
}
