package armci_test

import (
	"bytes"
	"fmt"
	"testing"

	"armci"
	"armci/internal/msg"
)

// TestNICAssistCorrectness runs the full synchronization surface — puts,
// fences, combined barrier, queuing locks — with NIC-assisted control
// traffic, on every fabric.
func TestNICAssistCorrectness(t *testing.T) {
	for _, fk := range fabrics {
		t.Run(fk.String(), func(t *testing.T) {
			const procs, iters = 4, 8
			_, err := armci.Run(armci.Options{
				Procs:      procs,
				Fabric:     fk,
				NICAssist:  true,
				NumMutexes: 1,
			}, func(p *armci.Proc) {
				me := p.Rank()
				ptrs := p.Malloc(procs * 8)
				words := p.MallocWords(1)
				mu := p.Mutex(0, armci.LockQueue)
				for i := 0; i < iters; i++ {
					for q := 0; q < procs; q++ {
						if q != me {
							p.Put(ptrs[q].Add(int64(me*8)), bytes.Repeat([]byte{byte(i + 1)}, 8))
						}
					}
					p.Barrier()
					for q := 0; q < procs; q++ {
						if q == me {
							continue
						}
						got := p.Get(ptrs[me].Add(int64(q*8)), 8)
						if got[0] != byte(i+1) {
							panic(fmt.Sprintf("iter %d: rank %d sees stale %d from %d", i, me, got[0], q))
						}
					}
					// Separate the read phase from the next iteration's
					// writes; without this the fastest writer may lap us.
					p.MPIBarrier()
					mu.Lock()
					v := p.Load(words[0])
					p.Store(words[0], v+1)
					if p.NodeOf(0) != p.MyNode() {
						p.Fence(p.NodeOf(0))
					}
					mu.Unlock()
				}
				p.Barrier()
				if me == 0 {
					if got := p.Load(words[0]); got != procs*iters {
						panic(fmt.Sprintf("counter %d, want %d", got, procs*iters))
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestNICRoutesControlTraffic: with NIC assist on, RMW and fence traffic
// goes to the agents while bulk puts still go to the host servers.
func TestNICRoutesControlTraffic(t *testing.T) {
	const procs = 2
	rep, err := armci.Run(armci.Options{
		Procs:     procs,
		Fabric:    armci.FabricSim,
		NICAssist: true,
	}, func(p *armci.Proc) {
		ptrs := p.Malloc(64)
		words := p.MallocWords(1)
		if p.Rank() == 0 {
			p.Put(ptrs[1], make([]byte, 64)) // bulk -> server
			p.FetchAdd(words[1], 1)          // atomic -> NIC
			p.Fence(p.NodeOf(1))             // fence -> NIC
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := msg.ServerOf(1)
	nic := msg.NICOf(1, procs)
	user := msg.User(0)
	if got := rep.Stats.PairCount(user, srv); got != 1 {
		t.Fatalf("server received %d messages from rank 0, want exactly the put", got)
	}
	if got := rep.Stats.PairCount(user, nic); got != 2 {
		t.Fatalf("NIC agent received %d messages from rank 0, want rmw + fence = 2", got)
	}
}

// TestNICFenceWaitsForPuts: the NIC fence confirms against per-origin
// completion counts — it must not ack before a large in-flight put has
// been applied by the (slower) host server.
func TestNICFenceWaitsForPuts(t *testing.T) {
	_, err := armci.Run(armci.Options{
		Procs:     2,
		Fabric:    armci.FabricSim,
		Preset:    armci.PresetMyrinet2000,
		NICAssist: true,
	}, func(p *armci.Proc) {
		ptrs := p.Malloc(256 << 10)
		if p.Rank() == 0 {
			big := make([]byte, 256<<10)
			for i := range big {
				big[i] = 0xAB
			}
			p.Put(ptrs[1], big) // long server service time
			p.Fence(p.NodeOf(1))
			// After the fence the data must be fully visible.
			got := p.Get(ptrs[1].Add(256<<10-1), 1)
			if got[0] != 0xAB {
				panic("NIC fence acked before the put landed")
			}
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNICSpeedsUpUncontendedRelease: the queuing lock's release CAS round
// trip — its only weakness versus the hybrid lock (Figure 10) — becomes
// much cheaper when served by the NIC, which is exactly what the paper's
// future-work section anticipates.
func TestNICSpeedsUpUncontendedRelease(t *testing.T) {
	release := func(nic bool) float64 {
		var total float64
		_, err := armci.Run(armci.Options{
			Procs:      2,
			Fabric:     armci.FabricSim,
			Preset:     armci.PresetMyrinet2000,
			NICAssist:  nic,
			NumMutexes: 1,
			LockHomes:  []int{0},
		}, func(p *armci.Proc) {
			if p.Rank() != 1 {
				return // rank 1 exercises the remote lock alone
			}
			mu := p.Mutex(0, armci.LockQueue)
			const iters = 20
			for i := 0; i < iters; i++ {
				mu.Lock()
				t0 := p.Now()
				mu.Unlock()
				total += float64(p.Now()-t0) / iters
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return total
	}
	host, nic := release(false), release(true)
	if nic >= host {
		t.Fatalf("NIC-served release (%.0fns) not faster than host-served (%.0fns)", nic, host)
	}
	// The saved cost is the host service time; the wire round trip
	// remains, so the NIC release is cheaper but not free.
	if nic < 1000 {
		t.Fatalf("NIC release %.0fns implausibly cheap — round trip lost?", nic)
	}
}
