package armci_test

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"armci"
	"armci/mp"
)

// TestFingerprintStableAcrossFabricsAndSeeds is the regression test for
// the stability guarantee documented on trace.Stats.Fingerprint: for a
// workload whose message order is data-dependent rather than
// schedule-dependent — a token ring, where exactly one message is ever
// in flight — the fingerprint must be identical on every fabric and
// under every sim schedule-shuffle seed. A change to the digested
// fields, their encoding, or the pipeline's send-order bookkeeping
// breaks replay/determinism tests; this test makes that breakage loud.
func TestFingerprintStableAcrossFabricsAndSeeds(t *testing.T) {
	const procs, laps = 5, 3
	ring := func(p *armci.Proc) {
		c := mp.Attach(p)
		me, n := c.Rank(), c.Size()
		token := make([]byte, 8)
		for lap := 0; lap < laps; lap++ {
			if me == 0 {
				binary.LittleEndian.PutUint64(token, uint64(lap+1))
				c.Send(1%n, lap, token)
				got := c.Recv(n-1, lap)
				if v := binary.LittleEndian.Uint64(got); v != uint64(lap+1+n-1) {
					panic(fmt.Sprintf("lap %d: token came back as %d, want %d", lap, v, lap+1+n-1))
				}
			} else {
				got := c.Recv(me-1, lap)
				binary.LittleEndian.PutUint64(token, binary.LittleEndian.Uint64(got)+1)
				c.Send((me+1)%n, lap, token)
			}
		}
	}
	run := func(fabric armci.FabricKind, seed int64) string {
		t.Helper()
		opts := armci.Options{
			Procs:        procs,
			ProcsPerNode: 2,
			Fabric:       fabric,
			Preset:       armci.PresetMyrinet2000,
			ScheduleSeed: seed,
			CaptureTrace: true,
		}
		if fabric != armci.FabricSim {
			opts.OpDeadline = 30 * time.Second
		}
		rep, err := armci.Run(opts, ring)
		if err != nil {
			t.Fatalf("fabric %v seed %d: %v", fabric, seed, err)
		}
		return rep.Stats.Fingerprint()
	}

	want := run(armci.FabricSim, 0) // the FIFO baseline
	if want == "" {
		t.Fatal("baseline run captured no message events")
	}
	for _, seed := range []int64{1, 7, 23} {
		if got := run(armci.FabricSim, seed); got != want {
			t.Errorf("sim fingerprint diverged at schedule seed %d:\nseed0 %s\nseed%d %s", seed, want, seed, got)
		}
	}
	for _, fabric := range []armci.FabricKind{armci.FabricChan, armci.FabricTCP} {
		if got := run(fabric, 0); got != want {
			t.Errorf("%v fingerprint diverged from sim baseline:\nsim  %s\n%v %s", fabric, want, fabric, got)
		}
	}
}
