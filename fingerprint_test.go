package armci_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"armci"
	"armci/internal/msg"
	"armci/internal/trace"
	"armci/mp"
)

// TestFingerprintStableAcrossFabricsAndSeeds is the regression test for
// the stability guarantee documented on trace.Stats.Fingerprint: for a
// workload whose message order is data-dependent rather than
// schedule-dependent — a token ring, where exactly one message is ever
// in flight — the fingerprint must be identical on every fabric and
// under every sim schedule-shuffle seed. A change to the digested
// fields, their encoding, or the pipeline's send-order bookkeeping
// breaks replay/determinism tests; this test makes that breakage loud.
func TestFingerprintStableAcrossFabricsAndSeeds(t *testing.T) {
	const procs, laps = 5, 3
	ring := func(p *armci.Proc) {
		c := mp.Attach(p)
		me, n := c.Rank(), c.Size()
		token := make([]byte, 8)
		for lap := 0; lap < laps; lap++ {
			if me == 0 {
				binary.LittleEndian.PutUint64(token, uint64(lap+1))
				c.Send(1%n, lap, token)
				got := c.Recv(n-1, lap)
				if v := binary.LittleEndian.Uint64(got); v != uint64(lap+1+n-1) {
					panic(fmt.Sprintf("lap %d: token came back as %d, want %d", lap, v, lap+1+n-1))
				}
			} else {
				got := c.Recv(me-1, lap)
				binary.LittleEndian.PutUint64(token, binary.LittleEndian.Uint64(got)+1)
				c.Send((me+1)%n, lap, token)
			}
		}
	}
	run := func(fabric armci.FabricKind, seed int64) string {
		t.Helper()
		opts := armci.Options{
			Procs:        procs,
			ProcsPerNode: 2,
			Fabric:       fabric,
			Preset:       armci.PresetMyrinet2000,
			ScheduleSeed: seed,
			CaptureTrace: true,
		}
		if fabric != armci.FabricSim {
			opts.OpDeadline = 30 * time.Second
		}
		rep, err := armci.Run(opts, ring)
		if err != nil {
			t.Fatalf("fabric %v seed %d: %v", fabric, seed, err)
		}
		return rep.Stats.Fingerprint()
	}

	want := run(armci.FabricSim, 0) // the FIFO baseline
	if want == "" {
		t.Fatal("baseline run captured no message events")
	}
	for _, seed := range []int64{1, 7, 23} {
		if got := run(armci.FabricSim, seed); got != want {
			t.Errorf("sim fingerprint diverged at schedule seed %d:\nseed0 %s\nseed%d %s", seed, want, seed, got)
		}
	}
	for _, fabric := range []armci.FabricKind{armci.FabricChan, armci.FabricTCP} {
		if got := run(fabric, 0); got != want {
			t.Errorf("%v fingerprint diverged from sim baseline:\nsim  %s\n%v %s", fabric, want, fabric, got)
		}
	}
}

// TestCoalescedFingerprintParity extends the stability guarantee to the
// coalescing path: a flag-passing baton ring — each rank streams chunked
// puts plus a PutFlag notify to its right neighbor, and the neighbor
// only starts sending after WaitFlag — keeps exactly one rank's data
// traffic in flight at a time, so the order, sizes and per-pair
// sequence numbers of the batched frames are data-dependent, not
// schedule-dependent. The digest of that traffic must be identical on
// every fabric and under every sim schedule-shuffle seed, proving the
// coalescer flushes at deterministic program points (never timers) and
// packs frames identically regardless of substrate.
//
// Only the ring's own messages (batch frames, puts, flag stores) are
// digested: the workload brackets the ring with collective barriers
// whose messages ARE schedule-dependent across fabrics.
func TestCoalescedFingerprintParity(t *testing.T) {
	const (
		procs      = 5
		laps       = 3
		chunks     = 3
		chunkBytes = 64
	)
	chunk := func(lap, src, k int) []byte {
		b := make([]byte, chunkBytes)
		for i := range b {
			b[i] = byte(lap*89 + src*13 + k*5 + i)
		}
		return b
	}
	baton := func(p *armci.Proc) {
		me, n := p.Rank(), p.Size()
		// Collective allocation: its allgather messages are
		// schedule-dependent, but they are collective-kind traffic the
		// fingerprint filter below excludes, so they cannot blur the
		// send order under test.
		bufs := p.Malloc(chunks * chunkBytes)
		flags := p.MallocWords(1)
		next, prev := (me+1)%n, (me-1+n)%n
		// All ranks must finish allocating before any put can arrive.
		p.MPIBarrier()
		for lap := 0; lap < laps; lap++ {
			send := func() {
				for k := 0; k < chunks-1; k++ {
					p.Put(bufs[next].Add(int64(k*chunkBytes)), chunk(lap, me, k))
				}
				p.PutFlag(bufs[next].Add(int64((chunks-1)*chunkBytes)),
					chunk(lap, me, chunks-1), flags[next], int64(lap+1))
			}
			recv := func() {
				p.WaitFlag(flags[me], int64(lap+1))
				for k := 0; k < chunks; k++ {
					got := p.Get(bufs[me].Add(int64(k*chunkBytes)), chunkBytes)
					if !bytes.Equal(got, chunk(lap, prev, k)) {
						panic(fmt.Sprintf("lap %d: rank %d read stale chunk %d from rank %d", lap, me, k, prev))
					}
				}
			}
			if me == 0 {
				send()
				recv()
			} else {
				recv()
				send()
			}
		}
	}
	ringTraffic := func(e trace.Event) bool {
		return e.Kind == msg.KindBatch || e.Kind == msg.KindPut || e.Kind == msg.KindRmw
	}
	run := func(fabric armci.FabricKind, seed int64) string {
		t.Helper()
		opts := armci.Options{
			Procs:        procs,
			ProcsPerNode: 2,
			Fabric:       fabric,
			Preset:       armci.PresetMyrinet2000,
			ScheduleSeed: seed,
			Coalesce:     armci.Coalesce{Enabled: true},
			CaptureTrace: true,
		}
		if fabric != armci.FabricSim {
			opts.OpDeadline = 30 * time.Second
		}
		rep, err := armci.Run(opts, baton)
		if err != nil {
			t.Fatalf("fabric %v seed %d: %v", fabric, seed, err)
		}
		var ring []trace.Event
		for _, e := range rep.Stats.Events() {
			if ringTraffic(e) {
				ring = append(ring, e)
			}
		}
		return trace.FingerprintEvents(ring)
	}

	want := run(armci.FabricSim, 0)
	if want == "" {
		t.Fatal("baseline run captured no ring traffic")
	}
	for _, seed := range []int64{1, 7, 23} {
		if got := run(armci.FabricSim, seed); got != want {
			t.Errorf("sim coalesced fingerprint diverged at schedule seed %d:\nseed0 %s\nseed%d %s", seed, want, seed, got)
		}
	}
	for _, fabric := range []armci.FabricKind{armci.FabricChan, armci.FabricTCP} {
		if got := run(fabric, 0); got != want {
			t.Errorf("%v coalesced fingerprint diverged from sim baseline:\nsim  %s\n%v %s", fabric, want, fabric, got)
		}
	}
}
