GO ?= go

.PHONY: build test check bench soak

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full verification gate (vet + build + tests + race detector over
# the internal packages). Referenced from ROADMAP.md's tier-1 verify.
check:
	sh scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem

# The reliability soak: every lock and barrier algorithm on every fabric
# under bursty packet loss, with the race detector on. check's race pass
# skips these (-short); this target runs them in full.
soak:
	$(GO) test -race -run 'Soak' -v -timeout 15m .
