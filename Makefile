GO ?= go

.PHONY: build test check bench benchcheck soak explore procsmoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full verification gate (vet + build + tests + race detector over
# the internal packages). Referenced from ROADMAP.md's tier-1 verify.
check:
	sh scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem

# The benchmark-regression gate: re-collect the tracked metrics and diff
# against the newest committed BENCH_<n>.json, failing on any >tolerance
# regression. Refresh the baseline after an intentional perf change with
# `go run ./cmd/armci-bench -baseline`.
benchcheck:
	sh scripts/benchdiff.sh

# The multi-process smoke: launch a smoke-sized Fig. 7 point across 4
# real OS processes via armci-run and require a clean rendezvous, run
# and drain. check runs this too; this target is the standalone version.
procsmoke:
	$(GO) run ./cmd/armci-run -n 4 -workload fig7-small

# The reliability soak: every lock and barrier algorithm on every fabric
# under bursty packet loss, with the race detector on. check's race pass
# skips these (-short); this target runs them in full.
soak:
	$(GO) test -race -run 'Soak' -v -timeout 15m .

# The full conformance exploration (internal/check): a deep seed sweep
# of every lock algorithm and sync variant on the simulated fabric, a
# spot-check on the concurrent fabrics, the same sweep under loss /
# duplication / latency-spike fault plans, and the mutation self-test
# proving the oracles catch deliberately broken variants. `go test
# ./internal/check` runs a shorter version of the same matrix.
explore:
	$(GO) run ./cmd/armci-check -seeds 256
	$(GO) run ./cmd/armci-check -coalesce -algs queue,hybrid -seeds 128
	$(GO) run ./cmd/armci-check -fabrics chan,tcp -seeds 4
	$(GO) run ./cmd/armci-check -fabrics chan,tcp -coalesce -algs queue -seeds 2
	$(GO) run ./cmd/armci-check -algs queue,hybrid -syncs barrier,sync-old \
		-faults 'loss=0.15,retry=12;dup=0.2;loss=0.1,dup=0.1,retry=12;spike=1ms@0.2;jitter=200us' \
		-seeds 64
	$(GO) run ./cmd/armci-check -coalesce -algs queue -syncs barrier \
		-faults 'loss=0.15,retry=12;dup=0.2;loss=0.1,dup=0.1,retry=12' \
		-seeds 32
	$(GO) run ./cmd/armci-check -algs queue,hybrid,lease \
		-syncs barrier-knomial,barrier-hier,barrier-hier-nic -seeds 64
	$(GO) run ./cmd/armci-check -algs queue \
		-syncs barrier-knomial,barrier-hier,barrier-hier-nic \
		-faults 'loss=0.1,dup=0.1,retry=12;spike=1ms@0.2' -seeds 32
	$(GO) run ./cmd/armci-check -algs lease -syncs barrier \
		-faults 'crashheld=1@1;crashheld=2@2;crashheld=5@3' \
		-seeds 64
	$(GO) run ./cmd/armci-check \
		-workload 'stencil;paramserver;prodcons;mixed' -seeds 64
	$(GO) run ./cmd/armci-check -fabrics sim,chan,tcp \
		-workload 'stencil:rows=1,cols=9,halo=2;paramserver:hot=1,updates=6;prodcons:chunks=4,bytes=64,depth=4;mixed:skew=hot,nb=75,seed=9' \
		-seeds 4
	$(GO) run ./cmd/armci-check -coalesce \
		-workload 'prodcons;mixed' -faults ';loss=0.1,dup=0.1,retry=12' -seeds 16
	$(GO) run ./cmd/armci-check -mutations -seeds 64
