GO ?= go

.PHONY: build test check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full verification gate (vet + build + tests + race detector over
# the internal packages). Referenced from ROADMAP.md's tier-1 verify.
check:
	sh scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem
