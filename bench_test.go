// Benchmarks regenerating the paper's evaluation, one per table/figure.
//
// The Fig* benchmarks execute the corresponding experiment on the
// deterministic simulated fabric with the calibrated Myrinet-2000 cost
// model and report the paper's quantity as a custom metric in *virtual*
// microseconds (vt_us): the wall-time ns/op column measures only how fast
// the simulator itself runs. The Wire* benchmarks measure the real
// fabrics in wall time.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package armci_test

import (
	"fmt"
	"testing"

	"armci"
	"armci/internal/bench"
)

// simOpts are the common experiment options used by the Fig benchmarks:
// few reps, because the simulation is deterministic.
func simOpts() bench.Opts {
	return bench.Opts{Fabric: armci.FabricSim, Preset: armci.PresetMyrinet2000, Reps: 3, Warmup: 1}
}

// BenchmarkFig7aGASync regenerates Figure 7(a): GA_Sync time under the
// original implementation (AllFence+MPI_Barrier, metric vt_us_old) and
// the new combined barrier (metric vt_us_new) for each process count.
func BenchmarkFig7aGASync(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("procs=%d", n), func(b *testing.B) {
			var row bench.Fig7Row
			for i := 0; i < b.N; i++ {
				res, err := bench.Fig7(bench.Fig7Opts{Opts: simOpts(), ProcCounts: []int{n}})
				if err != nil {
					b.Fatal(err)
				}
				row = res.Rows[0]
			}
			b.ReportMetric(row.OldUS, "vt_us_old")
			b.ReportMetric(row.NewUS, "vt_us_new")
		})
	}
}

// BenchmarkFig7bFactor regenerates Figure 7(b): the factor of improvement
// of the combined barrier over the original GA_Sync.
func BenchmarkFig7bFactor(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("procs=%d", n), func(b *testing.B) {
			var factor float64
			for i := 0; i < b.N; i++ {
				res, err := bench.Fig7(bench.Fig7Opts{Opts: simOpts(), ProcCounts: []int{n}})
				if err != nil {
					b.Fatal(err)
				}
				factor = res.Rows[0].Factor
			}
			b.ReportMetric(factor, "factor")
		})
	}
}

// lockRow runs the lock experiment at one process count.
func lockRow(b *testing.B, n int) bench.LockRow {
	b.Helper()
	res, err := bench.Lock(bench.LockOpts{Opts: simOpts(), ProcCounts: []int{n}, Iters: 50})
	if err != nil {
		b.Fatal(err)
	}
	return res.Rows[0]
}

// BenchmarkFig8aLockTotal regenerates Figure 8(a): mean time to request
// and release a lock, hybrid (vt_us_cur) vs queuing lock (vt_us_new).
func BenchmarkFig8aLockTotal(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("procs=%d", n), func(b *testing.B) {
			var row bench.LockRow
			for i := 0; i < b.N; i++ {
				row = lockRow(b, n)
			}
			b.ReportMetric(row.Current.TotalUS, "vt_us_cur")
			b.ReportMetric(row.New.TotalUS, "vt_us_new")
		})
	}
}

// BenchmarkFig8bFactor regenerates Figure 8(b): the lock factor of
// improvement.
func BenchmarkFig8bFactor(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("procs=%d", n), func(b *testing.B) {
			var row bench.LockRow
			for i := 0; i < b.N; i++ {
				row = lockRow(b, n)
			}
			b.ReportMetric(row.Factor, "factor")
		})
	}
}

// BenchmarkFig9LockAcquire regenerates Figure 9: the request+acquire
// component alone.
func BenchmarkFig9LockAcquire(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("procs=%d", n), func(b *testing.B) {
			var row bench.LockRow
			for i := 0; i < b.N; i++ {
				row = lockRow(b, n)
			}
			b.ReportMetric(row.Current.AcquireUS, "vt_us_cur")
			b.ReportMetric(row.New.AcquireUS, "vt_us_new")
		})
	}
}

// BenchmarkFig10LockRelease regenerates Figure 10: the release component
// alone.
func BenchmarkFig10LockRelease(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("procs=%d", n), func(b *testing.B) {
			var row bench.LockRow
			for i := 0; i < b.N; i++ {
				row = lockRow(b, n)
			}
			b.ReportMetric(row.Current.ReleaseUS, "vt_us_cur")
			b.ReportMetric(row.New.ReleaseUS, "vt_us_new")
		})
	}
}

// BenchmarkCrossover regenerates the §3.1.2 analysis: old vs new sync
// versus the number of servers actually written to (N=16). The paper
// predicts the old implementation wins below log2(N)/2 = 2 targets.
func BenchmarkCrossover(b *testing.B) {
	for _, k := range []int{0, 1, 2, 4} {
		b.Run(fmt.Sprintf("targets=%d", k), func(b *testing.B) {
			var row bench.CrossoverRow
			for i := 0; i < b.N; i++ {
				res, err := bench.Crossover(bench.CrossoverOpts{
					Opts: simOpts(), Procs: 16, KValues: []int{k},
				})
				if err != nil {
					b.Fatal(err)
				}
				row = res.Rows[0]
			}
			b.ReportMetric(row.OldUS, "vt_us_old")
			b.ReportMetric(row.NewUS, "vt_us_new")
		})
	}
}

// BenchmarkWireSync measures the real concurrent fabrics in wall time:
// one all-process sync (old and new) at 8 processes. The absolute values
// are Go-scheduler numbers, not cluster numbers; the point is that the
// protocol code itself is cheap and the new path moves fewer messages.
func BenchmarkWireSync(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping socket-crossing wall-time benchmark in -short mode")
	}
	for _, fk := range []armci.FabricKind{armci.FabricChan, armci.FabricTCP} {
		for _, mode := range []string{"old", "new"} {
			b.Run(fmt.Sprintf("%v/%s", fk, mode), func(b *testing.B) {
				const procs = 8
				_, err := armci.Run(armci.Options{Procs: procs, Fabric: fk}, func(p *armci.Proc) {
					ptrs := p.Malloc(64)
					payload := make([]byte, 64)
					p.MPIBarrier()
					for i := 0; i < b.N; i++ {
						for q := 0; q < procs; q++ {
							if q != p.Rank() {
								p.Put(ptrs[q], payload)
							}
						}
						if mode == "old" {
							p.SyncOld()
						} else {
							p.Barrier()
						}
					}
				})
				if err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// BenchmarkWireLock measures one lock+unlock cycle per op on the real
// in-process fabric under contention, per algorithm.
func BenchmarkWireLock(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping contended wall-time benchmark in -short mode")
	}
	for _, alg := range []armci.LockAlg{armci.LockHybrid, armci.LockQueue, armci.LockQueueNoCAS} {
		b.Run(alg.String(), func(b *testing.B) {
			const procs = 4
			_, err := armci.Run(armci.Options{
				Procs: procs, Fabric: armci.FabricChan, NumMutexes: 1,
			}, func(p *armci.Proc) {
				mu := p.Mutex(0, alg)
				p.MPIBarrier()
				for i := 0; i < b.N; i++ {
					mu.Lock()
					mu.Unlock()
				}
				p.MPIBarrier()
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
