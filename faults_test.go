package armci_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"armci"
)

// faultPlan is the stress plan the invariant tests run under: jitter on
// every message, occasional latency spikes dragging a whole pipe, and
// frequent duplicate deliveries.
func faultPlan(seed int64) armci.Faults {
	return armci.Faults{
		Seed:       seed,
		Jitter:     200 * time.Microsecond,
		SpikeProb:  0.05,
		SpikeDelay: time.Millisecond,
		DupProb:    0.2,
	}
}

// TestSyncInvariantsUnderFaults: every lock algorithm and the barrier
// keep their guarantees on every fabric while the pipeline injects
// jitter, latency spikes and duplicate deliveries. Mutual exclusion is
// checked by a read-modify-write counter that would lose increments on
// any overlap; barrier semantics by the visibility of pre-barrier puts.
func TestSyncInvariantsUnderFaults(t *testing.T) {
	const procs, iters = 4, 4
	for _, fabric := range []armci.FabricKind{armci.FabricSim, armci.FabricChan, armci.FabricTCP} {
		for _, alg := range []armci.LockAlg{armci.LockHybrid, armci.LockQueue, armci.LockQueueNoCAS} {
			t.Run(fmt.Sprintf("%v/%v", fabric, alg), func(t *testing.T) {
				metrics := armci.NewMetrics()
				rep, err := armci.Run(armci.Options{
					Procs:      procs,
					Fabric:     fabric,
					NumMutexes: 1,
					Faults:     faultPlan(11),
					Metrics:    metrics,
				}, func(p *armci.Proc) {
					ptrs := p.MallocWords(procs + 1)
					counter := ptrs[0]
					mu := p.Mutex(0, alg)
					me := p.Rank()
					for i := 0; i < iters; i++ {
						// Publish this round to every peer, then barrier:
						// all pre-barrier puts must be visible after it.
						for q := 0; q < procs; q++ {
							if q != me {
								p.Store(ptrs[q].Add(int64(1+me)), int64(i+1))
							}
						}
						p.Barrier()
						for q := 0; q < procs; q++ {
							if q != me {
								if got := p.Load(ptrs[me].Add(int64(1 + q))); got != int64(i+1) {
									panic(fmt.Sprintf("iter %d: stale value %d from %d", i, got, q))
								}
							}
						}
						// A non-atomic read-modify-write: only mutual
						// exclusion keeps the count exact. The put must be
						// fenced before the hand-off, as in any ARMCI
						// critical section.
						mu.Lock()
						p.Store(counter, p.Load(counter)+1)
						p.AllFence()
						mu.Unlock()
						p.Barrier()
					}
					if me == 0 {
						if got := p.Load(counter); got != int64(procs*iters) {
							panic(fmt.Sprintf("lost increments: counter %d, want %d", got, procs*iters))
						}
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				f := metrics.Faults()
				if f.Jittered == 0 {
					t.Fatal("fault stage inert: no message drew jitter")
				}
				if f.DupsInjected == 0 {
					t.Fatal("fault stage inert: no duplicate injected")
				}
				if f.DupsSuppressed > f.DupsInjected {
					t.Fatalf("suppressed %d duplicates but injected only %d", f.DupsSuppressed, f.DupsInjected)
				}
				// On the fabrics that deliver everything before Run
				// returns, every injected duplicate must have been
				// suppressed — exactly-once held.
				if fabric != armci.FabricTCP && f.DupsSuppressed != f.DupsInjected {
					t.Fatalf("dedup leaked: injected %d, suppressed %d", f.DupsInjected, f.DupsSuppressed)
				}
				if metrics.Observed() == 0 {
					t.Fatal("metrics stage observed no deliveries")
				}
				if rep.Metrics != metrics {
					t.Fatal("report does not carry the metrics collector")
				}
			})
		}
	}
}

// TestTCPTraceArrivalPopulated: on the TCP fabric the sender cannot know
// the arrival time, so the receive-side trace stage must back-annotate
// it — every captured event ends up with a non-zero arrival.
func TestTCPTraceArrivalPopulated(t *testing.T) {
	rep, err := armci.Run(armci.Options{
		Procs:        2,
		Fabric:       armci.FabricTCP,
		CaptureTrace: true,
	}, func(p *armci.Proc) {
		ptrs := p.Malloc(64)
		payload := make([]byte, 64)
		for i := 0; i < 5; i++ {
			p.Put(ptrs[1-p.Rank()], payload)
			p.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	events := rep.Stats.Events()
	if len(events) == 0 {
		t.Fatal("no events captured")
	}
	for _, e := range events {
		if e.Arrival == 0 {
			t.Fatalf("event %d (%s %v->%v) has no arrival time", e.Seq, e.Kind, e.Src, e.Dst)
		}
	}
}

// TestFaultMetricsHistograms: the metrics stage produces usable latency
// histograms and a timeline on a faulted run.
func TestFaultMetricsHistograms(t *testing.T) {
	metrics := armci.NewMetrics()
	metrics.SetTimeline(true)
	_, err := armci.Run(armci.Options{
		Procs:   2,
		Fabric:  armci.FabricSim,
		Preset:  armci.PresetMyrinet2000,
		Faults:  faultPlan(3),
		Metrics: metrics,
	}, func(p *armci.Proc) {
		ptrs := p.Malloc(64)
		payload := make([]byte, 64)
		for i := 0; i < 8; i++ {
			p.Put(ptrs[1-p.Rank()], payload)
			p.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Observed() == 0 {
		t.Fatal("no deliveries observed")
	}
	tl := metrics.Timeline()
	if len(tl) == 0 {
		t.Fatal("timeline empty")
	}
	for _, s := range tl {
		if s.Arrival < s.Sent {
			t.Fatalf("delivery %d arrives before it is sent: %v < %v", s.Seq, s.Arrival, s.Sent)
		}
	}
	if csv := metrics.TimelineCSV(); len(csv) == 0 {
		t.Fatal("timeline CSV empty")
	}
}

// lossPlan is the packet-loss plan of the reliability tests: roughly one
// in ten transmissions dropped, recovered by fast retransmit timers.
func lossPlan(seed int64) armci.Faults {
	return armci.Faults{
		Seed:     seed,
		LossProb: 0.1,
		RTO:      200 * time.Microsecond,
		RTOCap:   2 * time.Millisecond,
	}
}

// requireRecovered asserts that a run recovered every loss through
// retransmission: drops happened, each one was retransmitted, and neither
// the retry budget nor a crash ever fired.
func requireRecovered(t *testing.T, metrics *armci.Metrics) {
	t.Helper()
	f := metrics.Faults()
	if f.Dropped == 0 {
		t.Fatal("loss stage inert: nothing was dropped")
	}
	if f.Retransmits != f.Dropped {
		t.Fatalf("dropped %d copies but retransmitted %d", f.Dropped, f.Retransmits)
	}
	if f.RetryExhausted != 0 || f.Crashes != 0 {
		t.Fatalf("unexpected hard faults: exhausted=%d crashes=%d", f.RetryExhausted, f.Crashes)
	}
}

// TestSyncUnderLoss: every lock algorithm keeps mutual exclusion and
// barrier semantics on every fabric while the pipeline drops ~10% of all
// transmissions. The reliability stage must recover every loss — the run
// completes, the counter is exact, and the retransmit counters show the
// stage actually worked.
func TestSyncUnderLoss(t *testing.T) {
	const procs, iters = 4, 4
	for _, fabric := range []armci.FabricKind{armci.FabricSim, armci.FabricChan, armci.FabricTCP} {
		for _, alg := range []armci.LockAlg{armci.LockHybrid, armci.LockQueue, armci.LockQueueNoCAS} {
			t.Run(fmt.Sprintf("%v/%v", fabric, alg), func(t *testing.T) {
				metrics := armci.NewMetrics()
				_, err := armci.Run(armci.Options{
					Procs:      procs,
					Fabric:     fabric,
					NumMutexes: 1,
					Faults:     lossPlan(11),
					Metrics:    metrics,
					OpDeadline: 10 * time.Second,
				}, func(p *armci.Proc) {
					ptrs := p.MallocWords(procs + 1)
					counter := ptrs[0]
					mu := p.Mutex(0, alg)
					me := p.Rank()
					for i := 0; i < iters; i++ {
						for q := 0; q < procs; q++ {
							if q != me {
								p.Store(ptrs[q].Add(int64(1+me)), int64(i+1))
							}
						}
						p.Barrier()
						for q := 0; q < procs; q++ {
							if q != me {
								if got := p.Load(ptrs[me].Add(int64(1 + q))); got != int64(i+1) {
									panic(fmt.Sprintf("iter %d: stale value %d from %d", i, got, q))
								}
							}
						}
						mu.Lock()
						p.Store(counter, p.Load(counter)+1)
						p.AllFence()
						mu.Unlock()
						p.Barrier()
					}
					if me == 0 {
						if got := p.Load(counter); got != int64(procs*iters) {
							panic(fmt.Sprintf("lost increments: counter %d, want %d", got, procs*iters))
						}
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				requireRecovered(t, metrics)
			})
		}
	}
}

// TestBarrierAlgsUnderLoss: every barrier exchange pattern still orders
// pre-barrier puts before post-barrier loads on every fabric under ~10%
// loss.
func TestBarrierAlgsUnderLoss(t *testing.T) {
	const procs, iters = 4, 6
	algs := []armci.BarrierAlg{
		armci.BarrierAuto, armci.BarrierPairwise,
		armci.BarrierDissemination, armci.BarrierCentral,
	}
	for _, fabric := range []armci.FabricKind{armci.FabricSim, armci.FabricChan, armci.FabricTCP} {
		for _, alg := range algs {
			t.Run(fmt.Sprintf("%v/%v", fabric, alg), func(t *testing.T) {
				metrics := armci.NewMetrics()
				_, err := armci.Run(armci.Options{
					Procs:      procs,
					Fabric:     fabric,
					BarrierAlg: alg,
					Faults:     lossPlan(5),
					Metrics:    metrics,
					OpDeadline: 10 * time.Second,
				}, func(p *armci.Proc) {
					ptrs := p.MallocWords(procs + 1)
					me := p.Rank()
					for i := 0; i < iters; i++ {
						for q := 0; q < procs; q++ {
							if q != me {
								p.Store(ptrs[q].Add(int64(1+me)), int64(i+1))
							}
						}
						p.Barrier()
						for q := 0; q < procs; q++ {
							if q != me {
								if got := p.Load(ptrs[me].Add(int64(1 + q))); got != int64(i+1) {
									panic(fmt.Sprintf("iter %d: stale value %d from %d", i, got, q))
								}
							}
						}
						// Keep fast ranks from publishing the next round
						// into slots their peers are still reading.
						p.Barrier()
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				requireRecovered(t, metrics)
			})
		}
	}
}

// TestLossDeterminismAcrossFabrics: the analytical retransmit model makes
// loss recovery a pure function of (seed, pair, sequence), so a causally
// serialized workload produces identical trace fingerprints and identical
// retransmit counters on the simulated and the concurrent fabric — and a
// different seed produces a different loss pattern.
func TestLossDeterminismAcrossFabrics(t *testing.T) {
	const gets = 40
	run := func(fabric armci.FabricKind, seed int64) (string, int) {
		metrics := armci.NewMetrics()
		rep, err := armci.Run(armci.Options{
			Procs:        2,
			Fabric:       fabric,
			CaptureTrace: true,
			Metrics:      metrics,
			OpDeadline:   10 * time.Second,
			Faults: armci.Faults{
				Seed:     seed,
				LossProb: 0.2,
				RTO:      300 * time.Microsecond,
			},
		}, func(p *armci.Proc) {
			// Only rank 0 communicates: its Get round-trips are causally
			// serialized, so the global send order is fabric-independent.
			if p.Rank() != 0 {
				return
			}
			remote := p.Env().Space().AllocBytes(1, 64)
			for i := 0; i < gets; i++ {
				p.Get(remote, 64)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Stats.Fingerprint(), metrics.Faults().Retransmits
	}

	simFP, simRetrans := run(armci.FabricSim, 7)
	if simRetrans == 0 {
		t.Fatal("loss plan inert: no retransmissions on the simulated fabric")
	}
	if !strings.Contains(simFP, ":f") {
		t.Fatalf("retransmit delays not visible in the fingerprint: %s", simFP)
	}
	if fp, n := run(armci.FabricSim, 7); fp != simFP || n != simRetrans {
		t.Fatal("simulated fabric did not replay the loss pattern")
	}
	chanFP, chanRetrans := run(armci.FabricChan, 7)
	if chanFP != simFP {
		t.Fatalf("loss pattern diverges across fabrics for one seed:\nsim:  %s\nchan: %s", simFP, chanFP)
	}
	if chanRetrans != simRetrans {
		t.Fatalf("retransmit counts diverge across fabrics: sim %d, chan %d", simRetrans, chanRetrans)
	}
	if fp, _ := run(armci.FabricSim, 8); fp == simFP {
		t.Fatal("different loss seeds produced identical traces")
	}
}

// TestRetryExhaustionFailsFast: with every transmission dropped the retry
// budget runs out on the very first message, and Run fails with a
// rank-attributed *FaultError instead of hanging until some deadline.
func TestRetryExhaustionFailsFast(t *testing.T) {
	for _, fabric := range []armci.FabricKind{armci.FabricSim, armci.FabricChan, armci.FabricTCP} {
		t.Run(fmt.Sprint(fabric), func(t *testing.T) {
			metrics := armci.NewMetrics()
			_, err := armci.Run(armci.Options{
				Procs:      2,
				Fabric:     fabric,
				Metrics:    metrics,
				OpDeadline: 2 * time.Second,
				Faults: armci.Faults{
					Seed:        3,
					LossProb:    1,
					RetryBudget: 3,
					RTO:         50 * time.Microsecond,
				},
			}, func(p *armci.Proc) {
				ptrs := p.Malloc(8)
				p.Put(ptrs[1-p.Rank()], make([]byte, 8))
				p.Barrier()
			})
			var fe *armci.FaultError
			if !errors.As(err, &fe) {
				t.Fatalf("want *armci.FaultError, got %v", err)
			}
			if fe.Kind != armci.FaultRetryExhausted {
				t.Fatalf("want kind %v, got %v (%v)", armci.FaultRetryExhausted, fe.Kind, fe)
			}
			if fe.Rank < 0 || fe.Rank >= 2 {
				t.Fatalf("fault attributed to impossible rank %d: %v", fe.Rank, fe)
			}
			f := metrics.Faults()
			if f.RetryExhausted == 0 {
				t.Fatal("exhaustion not counted")
			}
			if f.Dropped < 4 { // budget 3 => 1 original + 3 retransmissions lost
				t.Fatalf("want >= 4 dropped copies, got %d", f.Dropped)
			}
		})
	}
}

// TestCrashFaultFailsFast: a fail-stop crash injected at rank 2's fifth
// send aborts the run on every fabric with a *FaultError naming the
// crashed rank — the error surfaces through Run without relying on the
// global run deadline, and the partial report still carries the metrics.
func TestCrashFaultFailsFast(t *testing.T) {
	for _, fabric := range []armci.FabricKind{armci.FabricSim, armci.FabricChan, armci.FabricTCP} {
		t.Run(fmt.Sprint(fabric), func(t *testing.T) {
			metrics := armci.NewMetrics()
			rep, err := armci.Run(armci.Options{
				Procs:      4,
				Fabric:     fabric,
				Metrics:    metrics,
				OpDeadline: 2 * time.Second,
				Faults: armci.Faults{
					CrashRank:       2,
					CrashAfterSends: 5,
				},
			}, func(p *armci.Proc) {
				ptrs := p.Malloc(8)
				for i := 0; i < 10; i++ {
					p.Put(ptrs[(p.Rank()+1)%p.Size()], make([]byte, 8))
					p.Barrier()
				}
			})
			var fe *armci.FaultError
			if !errors.As(err, &fe) {
				t.Fatalf("want *armci.FaultError, got %v", err)
			}
			if fe.Kind != armci.FaultCrash {
				t.Fatalf("want kind %v, got %v (%v)", armci.FaultCrash, fe.Kind, fe)
			}
			if fe.Rank != 2 || fe.Server {
				t.Fatalf("crash attributed to %v, want user rank 2", fe)
			}
			if rep == nil {
				t.Fatal("fault abort must still return the partial report")
			}
			if metrics.Faults().Crashes != 1 {
				t.Fatalf("want exactly one counted crash, got %d", metrics.Faults().Crashes)
			}
		})
	}
}

// TestOpDeadlineBoundsAWedgedWait: a predicate that can never become true
// is cut off by Options.OpDeadline on every fabric and surfaces as a
// rank-attributed op-timeout fault carrying the wait tag.
func TestOpDeadlineBoundsAWedgedWait(t *testing.T) {
	for _, fabric := range []armci.FabricKind{armci.FabricSim, armci.FabricChan, armci.FabricTCP} {
		t.Run(fmt.Sprint(fabric), func(t *testing.T) {
			_, err := armci.Run(armci.Options{
				Procs:      2,
				Fabric:     fabric,
				OpDeadline: 100 * time.Millisecond,
			}, func(p *armci.Proc) {
				if p.Rank() != 0 {
					return
				}
				p.Env().WaitUntil("wedged", func() bool { return false })
			})
			var fe *armci.FaultError
			if !errors.As(err, &fe) {
				t.Fatalf("want *armci.FaultError, got %v", err)
			}
			if fe.Kind != armci.FaultOpTimeout {
				t.Fatalf("want kind %v, got %v (%v)", armci.FaultOpTimeout, fe.Kind, fe)
			}
			if fe.Rank != 0 || fe.Server {
				t.Fatalf("timeout attributed to %v, want user rank 0", fe)
			}
			if !strings.Contains(fe.Op, "wedged") {
				t.Fatalf("fault does not carry the wait tag: %v", fe)
			}
		})
	}
}

// TestSoakLossAllAlgorithms is the long-mode reliability soak: every lock
// algorithm and every barrier pattern on every fabric, more iterations,
// burstier loss. A deadlock would surface as an op-timeout fault, not a
// hang.
func TestSoakLossAllAlgorithms(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipped with -short")
	}
	const procs = 4
	plan := armci.Faults{
		Seed:      29,
		LossProb:  0.08,
		LossBurst: 2,
		RTO:       200 * time.Microsecond,
		RTOCap:    2 * time.Millisecond,
	}
	for _, fabric := range []armci.FabricKind{armci.FabricSim, armci.FabricChan, armci.FabricTCP} {
		for _, lock := range []armci.LockAlg{armci.LockHybrid, armci.LockQueue, armci.LockQueueNoCAS} {
			for _, barrier := range []armci.BarrierAlg{
				armci.BarrierAuto, armci.BarrierPairwise,
				armci.BarrierDissemination, armci.BarrierCentral,
			} {
				t.Run(fmt.Sprintf("%v/%v/%v", fabric, lock, barrier), func(t *testing.T) {
					const iters = 6
					metrics := armci.NewMetrics()
					_, err := armci.Run(armci.Options{
						Procs:      procs,
						Fabric:     fabric,
						NumMutexes: 2,
						BarrierAlg: barrier,
						Faults:     plan,
						Metrics:    metrics,
						OpDeadline: 15 * time.Second,
					}, func(p *armci.Proc) {
						ptrs := p.MallocWords(2)
						counters := [2]armci.Ptr{ptrs[0], ptrs[0].Add(1)}
						mus := [2]armci.Mutex{p.Mutex(0, lock), p.Mutex(1, lock)}
						me := p.Rank()
						for i := 0; i < iters; i++ {
							k := (me + i) % 2
							mus[k].Lock()
							p.Store(counters[k], p.Load(counters[k])+1)
							p.AllFence()
							mus[k].Unlock()
							p.Barrier()
						}
						if me == 0 {
							total := p.Load(counters[0]) + p.Load(counters[1])
							if total != int64(procs*iters) {
								panic(fmt.Sprintf("lost increments: %d, want %d", total, procs*iters))
							}
						}
					})
					if err != nil {
						t.Fatal(err)
					}
					requireRecovered(t, metrics)
				})
			}
		}
	}
}
