package armci_test

import (
	"fmt"
	"testing"
	"time"

	"armci"
)

// faultPlan is the stress plan the invariant tests run under: jitter on
// every message, occasional latency spikes dragging a whole pipe, and
// frequent duplicate deliveries.
func faultPlan(seed int64) armci.Faults {
	return armci.Faults{
		Seed:       seed,
		Jitter:     200 * time.Microsecond,
		SpikeProb:  0.05,
		SpikeDelay: time.Millisecond,
		DupProb:    0.2,
	}
}

// TestSyncInvariantsUnderFaults: every lock algorithm and the barrier
// keep their guarantees on every fabric while the pipeline injects
// jitter, latency spikes and duplicate deliveries. Mutual exclusion is
// checked by a read-modify-write counter that would lose increments on
// any overlap; barrier semantics by the visibility of pre-barrier puts.
func TestSyncInvariantsUnderFaults(t *testing.T) {
	const procs, iters = 4, 4
	for _, fabric := range []armci.FabricKind{armci.FabricSim, armci.FabricChan, armci.FabricTCP} {
		for _, alg := range []armci.LockAlg{armci.LockHybrid, armci.LockQueue, armci.LockQueueNoCAS} {
			t.Run(fmt.Sprintf("%v/%v", fabric, alg), func(t *testing.T) {
				metrics := armci.NewMetrics()
				rep, err := armci.Run(armci.Options{
					Procs:      procs,
					Fabric:     fabric,
					NumMutexes: 1,
					Faults:     faultPlan(11),
					Metrics:    metrics,
				}, func(p *armci.Proc) {
					ptrs := p.MallocWords(procs + 1)
					counter := ptrs[0]
					mu := p.Mutex(0, alg)
					me := p.Rank()
					for i := 0; i < iters; i++ {
						// Publish this round to every peer, then barrier:
						// all pre-barrier puts must be visible after it.
						for q := 0; q < procs; q++ {
							if q != me {
								p.Store(ptrs[q].Add(int64(1+me)), int64(i+1))
							}
						}
						p.Barrier()
						for q := 0; q < procs; q++ {
							if q != me {
								if got := p.Load(ptrs[me].Add(int64(1 + q))); got != int64(i+1) {
									panic(fmt.Sprintf("iter %d: stale value %d from %d", i, got, q))
								}
							}
						}
						// A non-atomic read-modify-write: only mutual
						// exclusion keeps the count exact. The put must be
						// fenced before the hand-off, as in any ARMCI
						// critical section.
						mu.Lock()
						p.Store(counter, p.Load(counter)+1)
						p.AllFence()
						mu.Unlock()
						p.Barrier()
					}
					if me == 0 {
						if got := p.Load(counter); got != int64(procs*iters) {
							panic(fmt.Sprintf("lost increments: counter %d, want %d", got, procs*iters))
						}
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				f := metrics.Faults()
				if f.Jittered == 0 {
					t.Fatal("fault stage inert: no message drew jitter")
				}
				if f.DupsInjected == 0 {
					t.Fatal("fault stage inert: no duplicate injected")
				}
				if f.DupsSuppressed > f.DupsInjected {
					t.Fatalf("suppressed %d duplicates but injected only %d", f.DupsSuppressed, f.DupsInjected)
				}
				// On the fabrics that deliver everything before Run
				// returns, every injected duplicate must have been
				// suppressed — exactly-once held.
				if fabric != armci.FabricTCP && f.DupsSuppressed != f.DupsInjected {
					t.Fatalf("dedup leaked: injected %d, suppressed %d", f.DupsInjected, f.DupsSuppressed)
				}
				if metrics.Observed() == 0 {
					t.Fatal("metrics stage observed no deliveries")
				}
				if rep.Metrics != metrics {
					t.Fatal("report does not carry the metrics collector")
				}
			})
		}
	}
}

// TestTCPTraceArrivalPopulated: on the TCP fabric the sender cannot know
// the arrival time, so the receive-side trace stage must back-annotate
// it — every captured event ends up with a non-zero arrival.
func TestTCPTraceArrivalPopulated(t *testing.T) {
	rep, err := armci.Run(armci.Options{
		Procs:        2,
		Fabric:       armci.FabricTCP,
		CaptureTrace: true,
	}, func(p *armci.Proc) {
		ptrs := p.Malloc(64)
		payload := make([]byte, 64)
		for i := 0; i < 5; i++ {
			p.Put(ptrs[1-p.Rank()], payload)
			p.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	events := rep.Stats.Events()
	if len(events) == 0 {
		t.Fatal("no events captured")
	}
	for _, e := range events {
		if e.Arrival == 0 {
			t.Fatalf("event %d (%s %v->%v) has no arrival time", e.Seq, e.Kind, e.Src, e.Dst)
		}
	}
}

// TestFaultMetricsHistograms: the metrics stage produces usable latency
// histograms and a timeline on a faulted run.
func TestFaultMetricsHistograms(t *testing.T) {
	metrics := armci.NewMetrics()
	metrics.SetTimeline(true)
	_, err := armci.Run(armci.Options{
		Procs:   2,
		Fabric:  armci.FabricSim,
		Preset:  armci.PresetMyrinet2000,
		Faults:  faultPlan(3),
		Metrics: metrics,
	}, func(p *armci.Proc) {
		ptrs := p.Malloc(64)
		payload := make([]byte, 64)
		for i := 0; i < 8; i++ {
			p.Put(ptrs[1-p.Rank()], payload)
			p.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Observed() == 0 {
		t.Fatal("no deliveries observed")
	}
	tl := metrics.Timeline()
	if len(tl) == 0 {
		t.Fatal("timeline empty")
	}
	for _, s := range tl {
		if s.Arrival < s.Sent {
			t.Fatalf("delivery %d arrives before it is sent: %v < %v", s.Seq, s.Arrival, s.Sent)
		}
	}
	if csv := metrics.TimelineCSV(); len(csv) == 0 {
		t.Fatal("timeline CSV empty")
	}
}
