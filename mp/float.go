package mp

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Float64sToBytes encodes a float64 vector little-endian, the layout the
// shared byte segments use.
func Float64sToBytes(vec []float64) []byte {
	out := make([]byte, 8*len(vec))
	for i, v := range vec {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// BytesToFloat64s decodes a little-endian float64 vector.
func BytesToFloat64s(b []byte) []float64 {
	if len(b)%8 != 0 {
		panic(fmt.Sprintf("mp: float64 payload of %d bytes", len(b)))
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
