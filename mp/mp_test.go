package mp_test

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"armci"
	"armci/mp"
)

func runMP(t *testing.T, procs int, body func(c *mp.Comm)) {
	t.Helper()
	_, err := armci.Run(armci.Options{Procs: procs, Fabric: armci.FabricSim}, func(p *armci.Proc) {
		body(mp.Attach(p))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvBasic(t *testing.T) {
	runMP(t, 2, func(c *mp.Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []byte("ping"))
			if got := c.Recv(1, 8); string(got) != "pong" {
				panic(fmt.Sprintf("got %q", got))
			}
		} else {
			if got := c.Recv(0, 7); string(got) != "ping" {
				panic(fmt.Sprintf("got %q", got))
			}
			c.Send(0, 8, []byte("pong"))
		}
	})
}

// TestTagSelectivity: receives match on (source, tag) even when messages
// arrive out of request order.
func TestTagSelectivity(t *testing.T) {
	runMP(t, 2, func(c *mp.Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("a"))
			c.Send(1, 2, []byte("b"))
			c.Send(1, 3, []byte("c"))
		} else {
			if string(c.Recv(0, 3)) != "c" || string(c.Recv(0, 1)) != "a" || string(c.Recv(0, 2)) != "b" {
				panic("tag matching broke")
			}
		}
	})
}

func TestSendRecvVectors(t *testing.T) {
	runMP(t, 2, func(c *mp.Comm) {
		if c.Rank() == 0 {
			c.SendInt64s(1, 0, []int64{1, -2, 1 << 40})
			c.SendFloat64s(1, 1, []float64{3.5, -0.25, math.Inf(1)})
		} else {
			iv := c.RecvInt64s(0, 0)
			if iv[0] != 1 || iv[1] != -2 || iv[2] != 1<<40 {
				panic(fmt.Sprintf("int64s %v", iv))
			}
			fv := c.RecvFloat64s(0, 1)
			if fv[0] != 3.5 || fv[1] != -0.25 || !math.IsInf(fv[2], 1) {
				panic(fmt.Sprintf("float64s %v", fv))
			}
		}
	})
}

// TestBcastAllRootsAllSizes: every root distributes correctly for
// power-of-two and odd process counts.
func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, procs := range []int{1, 2, 3, 4, 5, 7, 8} {
		for root := 0; root < procs; root++ {
			t.Run(fmt.Sprintf("procs=%d/root=%d", procs, root), func(t *testing.T) {
				payload := []byte(fmt.Sprintf("from-%d", root))
				runMP(t, procs, func(c *mp.Comm) {
					var in []byte
					if c.Rank() == root {
						in = payload
					}
					got := c.Bcast(root, in)
					if !bytes.Equal(got, payload) {
						panic(fmt.Sprintf("rank %d got %q", c.Rank(), got))
					}
				})
			})
		}
	}
}

// TestBcastTreeAllRootsAllRadices: the k-nomial broadcast distributes
// correctly for every root, radices 2-5, and sizes on both sides of the
// radix powers; interleaved with Bcast to check tag sequencing.
func TestBcastTreeAllRootsAllRadices(t *testing.T) {
	for _, radix := range []int{2, 3, 4, 5} {
		for _, procs := range []int{1, 2, 3, 5, 8, 9} {
			for root := 0; root < procs; root += 2 {
				t.Run(fmt.Sprintf("radix=%d/procs=%d/root=%d", radix, procs, root), func(t *testing.T) {
					payload := []byte(fmt.Sprintf("tree-%d-%d", radix, root))
					runMP(t, procs, func(c *mp.Comm) {
						var in []byte
						if c.Rank() == root {
							in = payload
						}
						got := c.BcastTree(root, radix, in)
						if !bytes.Equal(got, payload) {
							panic(fmt.Sprintf("rank %d got %q", c.Rank(), got))
						}
						// A binomial Bcast right behind it must not cross tags.
						got = c.Bcast(root, in)
						if !bytes.Equal(got, payload) {
							panic(fmt.Sprintf("rank %d follow-up got %q", c.Rank(), got))
						}
					})
				})
			}
		}
	}
}

func TestGather(t *testing.T) {
	for _, procs := range []int{1, 3, 4, 6} {
		runMP(t, procs, func(c *mp.Comm) {
			mine := []byte{byte(c.Rank() + 1), byte(c.Rank() * 2)}
			got := c.Gather(0, mine)
			if c.Rank() != 0 {
				if got != nil {
					panic("non-root received data")
				}
				return
			}
			for r := 0; r < procs; r++ {
				want := []byte{byte(r + 1), byte(r * 2)}
				if !bytes.Equal(got[r], want) {
					panic(fmt.Sprintf("slot %d = %v", r, got[r]))
				}
			}
		})
	}
}

func TestAllReduceThroughComm(t *testing.T) {
	runMP(t, 5, func(c *mp.Comm) {
		vec := []int64{int64(c.Rank()), 1}
		c.AllReduceSumInt64(vec)
		if vec[0] != 10 || vec[1] != 5 {
			panic(fmt.Sprintf("allreduce %v", vec))
		}
	})
}

// TestBarrierThenTraffic: barriers and point-to-point traffic share the
// fabric without cross-matching.
func TestBarrierThenTraffic(t *testing.T) {
	runMP(t, 4, func(c *mp.Comm) {
		me, n := c.Rank(), c.Size()
		for round := 0; round < 4; round++ {
			c.Send((me+1)%n, round, []byte{byte(me)})
			got := c.Recv((me-1+n)%n, round)
			if got[0] != byte((me-1+n)%n) {
				panic("ring payload wrong")
			}
			c.Barrier()
		}
	})
}

func TestReservedTagRejected(t *testing.T) {
	runMP(t, 1, func(c *mp.Comm) {
		defer func() {
			if recover() == nil {
				panic("reserved tag accepted")
			}
		}()
		c.Send(0, 1<<30, nil)
	})
}

// TestFloatBytesRoundTrip is the property test for the codec helpers.
func TestFloatBytesRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vec := make([]float64, r.Intn(64))
		for i := range vec {
			vec[i] = r.NormFloat64() * math.Pow(10, float64(r.Intn(20)-10))
		}
		got := mp.BytesToFloat64s(mp.Float64sToBytes(vec))
		if len(got) != len(vec) {
			return false
		}
		for i := range vec {
			if got[i] != vec[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestBigBcastPayload pushes a large buffer down the tree.
func TestBigBcastPayload(t *testing.T) {
	payload := make([]byte, 256<<10)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	runMP(t, 6, func(c *mp.Comm) {
		var in []byte
		if c.Rank() == 2 {
			in = payload
		}
		got := c.Bcast(2, in)
		if !bytes.Equal(got, payload) {
			panic("big bcast corrupted")
		}
	})
}
