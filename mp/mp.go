// Package mp is the message-passing companion of the armci package: the
// small MPI-like layer ARMCI is designed to coexist with ("ARMCI is
// designed to be compatible with several separate message passing
// libraries, such as MPI and PVM"). It provides tagged point-to-point
// send/receive and a few collectives over the same fabric the one-sided
// operations use, without involving the data servers.
package mp

import (
	"encoding/binary"
	"fmt"

	"armci"
	"armci/internal/collective"
	"armci/internal/msg"
)

// reservedTagBase is the start of the tag space mp's own collectives use;
// user tags must stay below it.
const reservedTagBase = 1 << 30

// Comm is a rank's message-passing communicator. Create one per rank with
// Attach; it shares the fabric (and the collective ordering discipline)
// of the Proc it wraps.
type Comm struct {
	p   *armci.Proc
	seq int // sequence of mp-internal collectives
}

// Attach builds the communicator of the calling rank.
func Attach(p *armci.Proc) *Comm { return &Comm{p: p} }

// Rank returns the calling rank.
func (c *Comm) Rank() int { return c.p.Rank() }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.p.Size() }

// Proc returns the underlying ARMCI process handle.
func (c *Comm) Proc() *armci.Proc { return c.p }

// Send transmits data to rank `to` under tag. Delivery is reliable and
// FIFO per (sender, receiver) pair; the call does not wait for the
// receiver (eager buffering).
func (c *Comm) Send(to, tag int, data []byte) {
	if tag < 0 || tag >= reservedTagBase {
		panic(fmt.Sprintf("mp: user tag %d outside [0, %d)", tag, reservedTagBase))
	}
	c.send(to, tag, data)
}

// send is the unchecked path, also used by the internal collectives.
func (c *Comm) send(to, tag int, data []byte) {
	c.p.Env().Send(msg.User(to), &msg.Message{
		Kind: msg.KindSend,
		Tag:  tag,
		Data: append([]byte(nil), data...),
	})
}

// Recv blocks until a message from rank `from` with the given tag arrives
// and returns its payload.
func (c *Comm) Recv(from, tag int) []byte {
	if tag < 0 || tag >= reservedTagBase {
		panic(fmt.Sprintf("mp: user tag %d outside [0, %d)", tag, reservedTagBase))
	}
	return c.recv(from, tag)
}

func (c *Comm) recv(from, tag int) []byte {
	m := c.p.Env().Recv(msg.MatchSrcTag(msg.KindSend, msg.User(from), tag))
	return m.Data
}

// SendInt64s is Send for an int64 vector.
func (c *Comm) SendInt64s(to, tag int, vec []int64) {
	c.Send(to, tag, encodeInt64s(vec))
}

// RecvInt64s is Recv for an int64 vector.
func (c *Comm) RecvInt64s(from, tag int) []int64 {
	return decodeInt64s(c.Recv(from, tag))
}

// SendFloat64s is Send for a float64 vector.
func (c *Comm) SendFloat64s(to, tag int, vec []float64) {
	c.Send(to, tag, Float64sToBytes(vec))
}

// RecvFloat64s is Recv for a float64 vector.
func (c *Comm) RecvFloat64s(from, tag int) []float64 {
	return BytesToFloat64s(c.Recv(from, tag))
}

// Barrier synchronizes all ranks (MPI_Barrier).
func (c *Comm) Barrier() { c.p.MPIBarrier() }

// AllReduceSumInt64 element-wise sums vec across all ranks.
func (c *Comm) AllReduceSumInt64(vec []int64) { c.p.AllReduceSumInt64(vec) }

// AllReduceSumFloat64 element-wise sums a float64 vector across all ranks.
func (c *Comm) AllReduceSumFloat64(vec []float64) { c.p.AllReduceSumFloat64(vec) }

// ctag returns the reserved tag of phase within the current internal
// collective.
func (c *Comm) ctag(phase int) int { return reservedTagBase + c.seq<<4 + phase }

// Bcast distributes root's data to every rank along a binomial tree
// (log₂(N) rounds) and returns each rank's copy. All ranks must call it;
// non-root ranks may pass nil.
func (c *Comm) Bcast(root int, data []byte) []byte {
	n, me := c.Size(), c.Rank()
	if n == 1 {
		c.seq++
		return data
	}
	// Rotate so the root is virtual rank 0.
	vr := (me - root + n) % n
	if vr != 0 {
		// Receive from the parent: clear the lowest set bit of vr.
		parent := vr & (vr - 1)
		data = c.recv((parent+root)%n, c.ctag(0))
	}
	// Forward to children: set each higher zero bit below the next
	// power of two.
	for bit := 1; bit < n; bit <<= 1 {
		if vr&bit != 0 {
			break // bits at and above our lowest set bit are the parent's job
		}
		if vr+bit < n {
			c.send((vr+bit+root)%n, c.ctag(0), data)
		}
	}
	c.seq++
	return data
}

// BcastTree is Bcast over a radix-r k-nomial tree: ⌈log_r N⌉ rounds
// instead of the binomial tree's ⌈log₂ N⌉, at the price of the root
// sending radix−1 copies per round. BcastTree(root, 2, data) is
// shape-identical to Bcast. All ranks must call it with the same root
// and radix; non-root ranks may pass nil.
func (c *Comm) BcastTree(root, radix int, data []byte) []byte {
	n, me := c.Size(), c.Rank()
	if n == 1 {
		c.seq++
		return data
	}
	// Rotate so the root is virtual rank 0, as in Bcast.
	vr := (me - root + n) % n
	parent, children := collective.KnomialTree(n, vr, radix)
	if parent >= 0 {
		data = c.recv((parent+root)%n, c.ctag(0))
	}
	for _, child := range children {
		c.send((child+root)%n, c.ctag(0), data)
	}
	c.seq++
	return data
}

// Gather collects every rank's data at root, indexed by rank; non-root
// ranks receive nil. Payloads may differ in length.
func (c *Comm) Gather(root int, data []byte) [][]byte {
	n, me := c.Size(), c.Rank()
	tag := c.ctag(1)
	c.seq++
	if me != root {
		c.send(root, tag, data)
		return nil
	}
	out := make([][]byte, n)
	out[me] = append([]byte(nil), data...)
	for r := 0; r < n; r++ {
		if r != root {
			out[r] = c.recv(r, tag)
		}
	}
	return out
}

func encodeInt64s(vec []int64) []byte {
	out := make([]byte, 8*len(vec))
	for i, v := range vec {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(v))
	}
	return out
}

func decodeInt64s(b []byte) []int64 {
	if len(b)%8 != 0 {
		panic(fmt.Sprintf("mp: int64 payload of %d bytes", len(b)))
	}
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
