// Command armci-bench regenerates the evaluation of "Optimizing
// Synchronization Operations for Remote Memory Communication Systems"
// (IPPS 2003): Figure 7 (GA_Sync, original vs combined barrier), Figures
// 8-10 (hybrid vs software queuing locks), the §3.1.2 sparse-writer
// crossover, and the analytical message-count check.
//
// Usage:
//
//	armci-bench -fig all                  # everything, simulated fabric
//	armci-bench -fig 7 -procs 2,4,8,16,32 # extend the sweep
//	armci-bench -fig 8 -fabric chan       # wall-clock sanity run
//	armci-bench -fig crossover
//	armci-bench -fig crossover-n            # barrier algorithms vs cluster size, 16..4096 ranks
//	armci-bench -fig counts
//	armci-bench -fig workloads            # named scenario makespans (internal/workload grammar)
//	armci-bench -fig workloads -workload 'stencil:rows=16,halo=2;mixed:skew=hot'
//
// Baseline mode snapshots the repo's performance into a machine-readable
// BENCH_<n>.json and gates later runs against it:
//
//	armci-bench -baseline                 # write the next BENCH_<n>.json
//	armci-bench -baseline -o BENCH_1.json # explicit output path
//	armci-bench -compare BENCH_0.json     # fail (exit 1) on >tolerance regression
//	armci-bench -compare BENCH_0.json -quick   # judge deterministic metrics only (CI)
//
// ARMCI_BENCH_HANDICAP (a fraction, e.g. 0.2) inflates every time-valued
// metric at collection — a test hook that synthesizes a slowdown to prove
// the gate fails when performance regresses.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"

	"armci"
	"armci/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("armci-bench: ")

	var (
		fig      = flag.String("fig", "all", "experiment: 7, 8, 9, 10, lock, lockcrash, elastic, crossover, crossover-n, counts, ablate, smallput, workloads, all")
		workload = flag.String("workload", "", "with -fig workloads: semicolon-separated workload specs (default stencil;paramserver;prodcons;mixed)")
		fabric   = flag.String("fabric", "sim", "fabric: sim, chan, tcp, proc (proc: multi-process, see -fabric proc notes)")
		preset   = flag.String("preset", string(armci.PresetMyrinet2000), "cost model: myrinet2000, fast-ethernet, zero")
		procsF   = flag.String("procs", "", "comma-separated process counts (default per experiment)")
		reps     = flag.Int("reps", 0, "timed repetitions per point (default per experiment)")
		iters    = flag.Int("iters", 0, "lock iterations per process (default 200)")
		format   = flag.String("format", "table", "output format: table or csv (figs 7, 8, crossover)")
		timeline = flag.String("timeline", "", "write a per-message CSV timeline of one sync to this file and exit")
		faultsF  = flag.String("faults", "", "fault-injection plan, e.g. jitter=500us,spike=2ms@0.05,dup=0.02,loss=0.05@2,rto=200us@4ms,retry=6,crash=2@40,seed=7")
		hist     = flag.Bool("hist", false, "print per-kind message latency histograms after the experiment")
		baseline = flag.Bool("baseline", false, "collect a performance baseline and write BENCH_<n>.json instead of running an experiment")
		compare  = flag.String("compare", "", "collect the current metrics and compare against this BENCH_*.json; exit 1 on regression")
		quick    = flag.Bool("quick", false, "with -compare: judge only deterministic metrics (skip wall-clock ones)")
		outPath  = flag.String("o", "", "with -baseline: output path (default the next free BENCH_<n>.json)")
		procWkr  = flag.Bool("proc-fig7-worker", false, "internal: run as one multi-process fig7 worker (set by -fabric proc)")
	)
	flag.Parse()

	if *procWkr {
		os.Exit(runProcFig7Worker(*procsF, *reps))
	}

	if *baseline || *compare != "" {
		os.Exit(runBaseline(*baseline, *compare, *quick, *outPath))
	}

	fk, err := parseFabric(*fabric)
	if err != nil {
		log.Fatal(err)
	}
	procCounts, err := parseProcs(*procsF)
	if err != nil {
		log.Fatal(err)
	}
	faults, err := parseFaults(*faultsF)
	if err != nil {
		log.Fatal(err)
	}
	var metrics *armci.Metrics
	if *hist {
		metrics = armci.NewMetrics()
	}
	common := bench.Opts{Fabric: fk, Preset: armci.CostPreset(*preset), Reps: *reps,
		Faults: faults, Metrics: metrics}
	csv := *format == "csv"
	if *format != "table" && *format != "csv" {
		log.Fatalf("unknown -format %q", *format)
	}

	if fk == armci.FabricProc {
		// Each proc-fabric point is a separate multi-process launch that
		// re-executes this binary as the workers; only the figures listed
		// in procFigs are wired for that.
		if launch, ok := procFigs[*fig]; !ok {
			log.Fatalf("-fabric proc supports %s; run the other figures on sim, chan or tcp",
				procFigList())
		} else if *faultsF != "" || *hist || *timeline != "" {
			log.Fatal("-fabric proc does not combine with -faults, -hist or -timeline")
		} else {
			launch(procCounts, *reps, csv)
			return
		}
	}

	if *timeline != "" {
		n := 8
		if len(procCounts) > 0 {
			n = procCounts[len(procCounts)-1]
		}
		if err := writeTimeline(*timeline, n, armci.CostPreset(*preset)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("timeline of one ARMCI_Barrier at %d processes written to %s\n", n, *timeline)
		return
	}

	switch *fig {
	case "7":
		runFig7(common, procCounts, csv)
	case "8", "9", "10", "lock":
		runLock(common, procCounts, *iters, csv)
	case "lockcrash":
		runLockCrash(common, procCounts)
	case "elastic":
		runElastic(common, procCounts)
	case "crossover":
		runCrossover(common, procCounts, csv)
	case "crossover-n":
		runCrossoverN(common, procCounts, csv)
	case "counts":
		runCounts(procCounts)
	case "ablate":
		runAblations(common)
	case "striping":
		runStriping(common, csv)
	case "sensitivity":
		runSensitivity(common)
	case "smallput":
		runSmallPut(common, procCounts)
	case "workloads":
		runWorkloads(common, *workload)
	case "all":
		runFig7(common, procCounts, csv)
		fmt.Println()
		runLock(common, procCounts, *iters, csv)
		fmt.Println()
		runLockCrash(common, procCounts)
		fmt.Println()
		runElastic(common, procCounts)
		fmt.Println()
		runCrossover(common, nil, csv)
		fmt.Println()
		runCrossoverN(common, nil, csv)
		fmt.Println()
		runCounts(procCounts)
		fmt.Println()
		runAblations(common)
		fmt.Println()
		runStriping(common, csv)
		fmt.Println()
		runSensitivity(common)
		fmt.Println()
		runSmallPut(common, procCounts)
		fmt.Println()
		runWorkloads(common, *workload)
	default:
		log.Fatalf("unknown -fig %q", *fig)
	}

	if metrics != nil {
		fmt.Println()
		fmt.Print(metrics.String())
	}
}

// runBaseline handles the -baseline and -compare modes: collect the
// current metrics (optionally handicapped via ARMCI_BENCH_HANDICAP),
// then either write the snapshot or judge it against a committed one.
func runBaseline(write bool, comparePath string, quick bool, outPath string) int {
	var opts bench.BaselineOpts
	if h := os.Getenv("ARMCI_BENCH_HANDICAP"); h != "" {
		v, err := strconv.ParseFloat(h, 64)
		if err != nil || v < 0 {
			log.Printf("bad ARMCI_BENCH_HANDICAP %q: want a non-negative fraction", h)
			return 2
		}
		opts.Handicap = v
		fmt.Printf("handicap: inflating time metrics by %+.0f%% (test hook)\n", 100*v)
	}
	opts.Commit = gitCommit()

	fmt.Println("collecting baseline metrics (figures, sweep, hot-path benches)...")
	cur, err := bench.CollectBaseline(opts)
	if err != nil {
		log.Print(err)
		return 2
	}

	if comparePath != "" {
		base, err := bench.ReadBaseline(comparePath)
		if err != nil {
			log.Print(err)
			return 2
		}
		regs, missing := bench.CompareBaselines(base, cur, quick)
		mode := "full"
		if quick {
			mode = "quick"
		}
		fmt.Printf("compared against %s (%s mode, commit %s)\n", comparePath, mode, orUnknown(base.Commit))
		for _, name := range missing {
			fmt.Printf("MISSING %s: tracked by the baseline but not reported by this build\n", name)
		}
		for _, r := range regs {
			fmt.Printf("REGRESSION %s\n", r)
		}
		if len(regs) > 0 || len(missing) > 0 {
			fmt.Printf("%d regressions, %d missing metrics\n", len(regs), len(missing))
			return 1
		}
		fmt.Printf("all %d tracked metrics within tolerance\n", len(base.Metrics))
		return 0
	}

	path := outPath
	if path == "" {
		path = nextBaselinePath()
	}
	if err := bench.WriteBaseline(cur, path); err != nil {
		log.Print(err)
		return 2
	}
	names := make([]string, 0, len(cur.Metrics))
	for name := range cur.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := cur.Metrics[name]
		fmt.Printf("  %-42s %12.4g %s\n", name, m.Value, m.Unit)
	}
	fmt.Printf("baseline (%d metrics, commit %s) written to %s\n", len(cur.Metrics), orUnknown(cur.Commit), path)
	return 0
}

// nextBaselinePath returns the first free BENCH_<n>.json in the current
// directory.
func nextBaselinePath() string {
	for n := 0; ; n++ {
		path := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path
		}
	}
}

// gitCommit best-effort resolves the working tree's revision for the
// baseline metadata; missing git or a non-repo directory yields "".
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}

// parseFaults parses the -faults plan (see armci.ParseFaults for the
// grammar: jitter, spike, dup, loss, rto, retry, crash, seed; each knob
// at most once), wrapping errors with the flag name.
func parseFaults(s string) (armci.Faults, error) {
	f, err := armci.ParseFaults(s)
	if err != nil {
		return f, fmt.Errorf("-faults: %w", err)
	}
	return f, nil
}

func parseFabric(s string) (armci.FabricKind, error) {
	return armci.ParseFabric(s)
}

func parseProcs(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad process count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// procFigs enumerates the figures wired for the multi-process proc
// fabric, each as its own launcher: adding a proc-capable experiment
// means one table entry, not another copy of the restriction message.
var procFigs = map[string]func(procCounts []int, reps int, csv bool){
	"7": runFig7Proc,
}

// procFigList renders the proc-capable figures for the error message.
func procFigList() string {
	figs := make([]string, 0, len(procFigs))
	for f := range procFigs {
		figs = append(figs, "-fig "+f)
	}
	sort.Strings(figs)
	return "only " + strings.Join(figs, ", ")
}

// runProcFig7Worker is the worker-side dispatch of -fabric proc: the
// launcher re-executes this binary with the hidden flag inside the
// cluster rendezvous environment.
func runProcFig7Worker(procsF string, reps int) int {
	counts, err := parseProcs(procsF)
	if err != nil || len(counts) != 1 {
		log.Printf("-proc-fig7-worker wants exactly one -procs value, got %q", procsF)
		return 2
	}
	var opts bench.Fig7Opts
	opts.Reps = reps
	if err := bench.RunFig7ProcWorker(opts, counts[0]); err != nil {
		log.Print(err)
		return 1
	}
	return 0
}

// runFig7Proc sweeps Figure 7 across real OS processes: one cluster
// launch per point, re-executing this binary as the workers.
func runFig7Proc(procCounts []int, reps int, csv bool) {
	if procCounts == nil {
		procCounts = []int{2, 4, 8}
	}
	self, err := os.Executable()
	if err != nil {
		log.Fatalf("resolving own binary for self-exec: %v", err)
	}
	res := &bench.Fig7Result{Opts: bench.Fig7Opts{ProcCounts: procCounts}}
	// Header metadata only: the proc fabric measures wall clock, so no
	// cost preset applies; reps default to the worker-side 10.
	res.Opts.Opts = bench.Opts{Fabric: armci.FabricProc, Preset: "wall-clock", Reps: reps}
	if reps <= 0 {
		res.Opts.Reps = 10
	}
	for _, n := range procCounts {
		row, err := bench.LaunchFig7Proc(bench.Fig7ProcLaunch{
			Procs:   n,
			Command: []string{self, "-proc-fig7-worker", "-procs", fmt.Sprint(n), "-reps", fmt.Sprint(reps)},
			Output:  io.Discard,
		})
		if err != nil {
			log.Fatalf("fig7 proc N=%d: %v", n, err)
		}
		res.Rows = append(res.Rows, row)
	}
	if csv {
		fmt.Print(bench.CSVFig7(res))
		return
	}
	fmt.Print(bench.FormatFig7(res))
}

func runFig7(common bench.Opts, procCounts []int, csv bool) {
	res, err := bench.Fig7(bench.Fig7Opts{Opts: common, ProcCounts: procCounts})
	if err != nil {
		log.Fatal(err)
	}
	if csv {
		fmt.Print(bench.CSVFig7(res))
		return
	}
	fmt.Print(bench.FormatFig7(res))
}

func runLock(common bench.Opts, procCounts []int, iters int, csv bool) {
	res, err := bench.Lock(bench.LockOpts{Opts: common, ProcCounts: procCounts, Iters: iters})
	if err != nil {
		log.Fatal(err)
	}
	if csv {
		fmt.Print(bench.CSVLock(res))
		return
	}
	fmt.Print(bench.FormatLock(res))
}

func runLockCrash(common bench.Opts, procCounts []int) {
	if common.Fabric != armci.FabricSim {
		fmt.Println("lockcrash: skipped (measures deterministic virtual times; sim fabric only)")
		return
	}
	opts := bench.LockCrashOpts{Opts: common}
	if len(procCounts) > 0 {
		opts.Procs = procCounts[len(procCounts)-1]
	}
	res, err := bench.LockCrash(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatLockCrash(res))
}

// runElastic prices the elastic subsystem: steady-state replication
// overhead and crash-recovery latency, both deterministic virtual times.
func runElastic(common bench.Opts, procCounts []int) {
	if common.Fabric != armci.FabricSim {
		fmt.Println("elastic: skipped (measures deterministic virtual times; sim fabric only — the real-crash path is armci-run -workload elastic)")
		return
	}
	opts := bench.ElasticOpts{Opts: common}
	if len(procCounts) > 0 {
		opts.Procs = procCounts[len(procCounts)-1]
	}
	res, err := bench.Elastic(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatElastic(res))
}

func runCrossover(common bench.Opts, procCounts []int, csv bool) {
	procs := 16
	if len(procCounts) > 0 {
		procs = procCounts[len(procCounts)-1]
	}
	res, err := bench.Crossover(bench.CrossoverOpts{Opts: common, Procs: procs})
	if err != nil {
		log.Fatal(err)
	}
	if csv {
		fmt.Print(bench.CSVCrossover(res))
		return
	}
	fmt.Print(bench.FormatCrossover(res))
}

// runCrossoverN sweeps one combined barrier across cluster sizes and
// algorithms; -procs overrides the default N values.
func runCrossoverN(common bench.Opts, procCounts []int, csv bool) {
	res, err := bench.CrossoverN(bench.CrossoverNOpts{Opts: common, NValues: procCounts})
	if err != nil {
		log.Fatal(err)
	}
	if csv {
		fmt.Print(bench.CSVCrossoverN(res))
		return
	}
	fmt.Print(bench.FormatCrossoverN(res))
}

// writeTimeline captures one combined barrier under the cost model and
// dumps every message as CSV: sequence, kind, source, destination,
// payload bytes, arrival time in microseconds.
func writeTimeline(path string, procs int, preset armci.CostPreset) error {
	rep, err := armci.Run(armci.Options{
		Procs:        procs,
		Fabric:       armci.FabricSim,
		Preset:       preset,
		CaptureTrace: true,
	}, func(p *armci.Proc) {
		ptrs := p.Malloc(64)
		payload := make([]byte, 64)
		for q := 0; q < procs; q++ {
			if q != p.Rank() {
				p.Put(ptrs[q], payload)
			}
		}
		p.Barrier()
	})
	if err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("seq,kind,src,dst,bytes,arrival_us\n")
	for _, e := range rep.Stats.Events() {
		fmt.Fprintf(&b, "%d,%s,%s,%s,%d,%.3f\n",
			e.Seq, e.Kind, e.Src, e.Dst, e.Size, float64(e.Arrival)/1000)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func runCounts(procCounts []int) {
	if procCounts == nil {
		procCounts = []int{2, 4, 8, 16}
	}
	var all []*bench.MessageCounts
	for _, n := range procCounts {
		c, err := bench.CountSyncMessages(n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "armci-bench: counts N=%d: %v (skipped)\n", n, err)
			continue
		}
		all = append(all, c)
	}
	fmt.Print(bench.FormatMessageCounts(all))
}

func runStriping(common bench.Opts, csv bool) {
	res, err := bench.Striping(bench.StripingOpts{Opts: common})
	if err != nil {
		log.Fatal(err)
	}
	if csv {
		fmt.Print(bench.CSVStriping(res))
		return
	}
	fmt.Print(bench.FormatStriping(res))
}

func runSmallPut(common bench.Opts, procCounts []int) {
	opts := bench.SmallPutOpts{Opts: common}
	if len(procCounts) > 0 {
		opts.Procs = procCounts[len(procCounts)-1]
	}
	res, err := bench.SmallPut(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatSmallPut(res))
}

func runWorkloads(common bench.Opts, specsF string) {
	opts := bench.WorkloadsOpts{Opts: common}
	if specsF != "" {
		for _, s := range strings.Split(specsF, ";") {
			if s = strings.TrimSpace(s); s != "" {
				opts.Specs = append(opts.Specs, s)
			}
		}
	}
	res, err := bench.Workloads(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatWorkloads(res))
}

func runSensitivity(common bench.Opts) {
	res, err := bench.Sensitivity(bench.SensitivityOpts{Opts: common})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatSensitivity(res))
}

func runAblations(common bench.Opts) {
	res, err := bench.Ablations(bench.AblationOpts{Opts: common})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatAblations(res))
}
