package main

import (
	"strings"
	"testing"
	"time"

	"armci"
)

func TestParseFaultsGrammar(t *testing.T) {
	got, err := parseFaults("jitter=500us,spike=2ms@0.05,dup=0.02,loss=0.1@3,rto=200us@4ms,retry=6,crash=2@40,seed=7")
	if err != nil {
		t.Fatalf("full plan rejected: %v", err)
	}
	want := armci.Faults{
		Seed:            7,
		Jitter:          500 * time.Microsecond,
		SpikeProb:       0.05,
		SpikeDelay:      2 * time.Millisecond,
		DupProb:         0.02,
		LossProb:        0.1,
		LossBurst:       3,
		RTO:             200 * time.Microsecond,
		RTOCap:          4 * time.Millisecond,
		RetryBudget:     6,
		CrashRank:       2,
		CrashAfterSends: 40,
	}
	if got != want {
		t.Fatalf("parsed %+v,\nwant %+v", got, want)
	}
	if empty, err := parseFaults(""); err != nil || empty != (armci.Faults{}) {
		t.Fatalf("empty plan: %+v, %v", empty, err)
	}
}

func TestParseFaultsRejectsDuplicateKnobs(t *testing.T) {
	for _, plan := range []string{
		"jitter=1ms,jitter=2ms",
		"loss=0.1,loss=0.2",
		"seed=1,jitter=1ms,seed=2",
	} {
		_, err := parseFaults(plan)
		if err == nil {
			t.Fatalf("duplicate-knob plan %q accepted", plan)
		}
		if !strings.Contains(err.Error(), "duplicate faults knob") {
			t.Fatalf("plan %q: error %q does not name the duplicate knob", plan, err)
		}
	}
}

func TestParseFaultsRejectsBadValues(t *testing.T) {
	for _, plan := range []string{
		"bogus=1",
		"jitter",
		"jitter=xyz",
		"spike=2ms",
		"loss=1.5",
		"loss=-0.1",
		"loss=0.1@0",
		"rto=abc",
		"retry=0",
		"retry=-1",
		"crash=2",
		"crash=-1@5",
		"crash=2@0",
		"crashrank=2",
		"crashrank=-1@3",
		"crashrank=2@0",
	} {
		if _, err := parseFaults(plan); err == nil {
			t.Fatalf("bad plan %q accepted", plan)
		}
	}
}
