package main

import (
	"strings"
	"testing"
)

// TestRunParallelOutputIdentical is the CLI-level determinism check: the
// same small sweep at -j 1 and -j 8 must print byte-identical output
// (minus the header line, which names the worker count).
func TestRunParallelOutputIdentical(t *testing.T) {
	sweep := func(j string) (int, string) {
		var b strings.Builder
		code := run([]string{"-algs", "queue,hybrid", "-syncs", "barrier",
			"-seeds", "8", "-v", "-j", j}, &b)
		out := b.String()
		if i := strings.IndexByte(out, '\n'); i >= 0 {
			out = out[i+1:] // drop the worker-count header
		}
		return code, out
	}
	c1, o1 := sweep("1")
	c8, o8 := sweep("8")
	if c1 != 0 || c8 != 0 {
		t.Fatalf("clean sweep exited non-zero: j1=%d j8=%d", c1, c8)
	}
	if o1 != o8 {
		t.Fatalf("output differs between -j 1 and -j 8:\n-- j=1 --\n%s\n-- j=8 --\n%s", o1, o8)
	}
	if !strings.Contains(o1, "ok    {fabric=sim") {
		t.Fatalf("verbose sweep printed no per-case lines:\n%s", o1)
	}
}

// TestRunExitsNonZeroOnPanic pins the fixed bug: a worker panicking
// mid-case used to leave the sweep reporting success and exiting 0. The
// panicking mutation variant must surface as a PANIC line carrying the
// reproducer tuple and a non-zero exit, at any worker count.
func TestRunExitsNonZeroOnPanic(t *testing.T) {
	for _, j := range []string{"1", "4"} {
		var b strings.Builder
		code := run([]string{"-algs", "queue", "-syncs", "barrier", "-seeds", "2",
			"-mutation", "panic-case", "-j", j}, &b)
		out := b.String()
		if code == 0 {
			t.Fatalf("j=%s: sweep with panicking cases exited 0:\n%s", j, out)
		}
		if !strings.Contains(out, "PANIC") || !strings.Contains(out, "mutation=panic-case") {
			t.Fatalf("j=%s: panic not attributed to its reproducer:\n%s", j, out)
		}
		if !strings.Contains(out, "2 panics") {
			t.Fatalf("j=%s: summary does not count the panics:\n%s", j, out)
		}
	}
}
