// Command armci-check runs the schedule-exploration conformance harness
// (internal/check): every selected lock algorithm × synchronization
// variant × fault plan across a sweep of kernel shuffle seeds and
// fabrics, with the run's protocol-level event history validated against
// the invariant oracles (mutual exclusion, FIFO hand-off, fence
// completion, per-pair exactly-once delivery, state, liveness). Any
// violation prints a minimal reproducer tuple that re-runs the exact
// failing schedule.
//
// -workload swaps the default lock/put/notify workload for named
// scenarios from the grammar in internal/workload — halo-exchange
// stencil over ga arrays, accumulate parameter server, PutFlag/WaitFlag
// producer-consumer chain, and a seeded adversarial mix — each carrying
// its own invariant oracle (cell-exact replay, accumulate-sum
// exactness, no-stale-read, model replay). Specs are
// kind[:knob=val,...], e.g. "stencil:rows=16,halo=2",
// "paramserver:hot=1,updates=8", "prodcons:chunks=4,depth=4",
// "mixed:skew=hot,nb=75,seed=9"; separate several with ';' (specs
// contain commas). Named workloads have no lock phase, so -algs is
// ignored and crashheld fault plans are rejected.
//
// Cases run on a bounded worker pool (-j, default GOMAXPROCS); each
// case owns its kernel and seed, and results are emitted in case order,
// so the output is byte-identical at any -j.
//
// Usage:
//
//	armci-check                              # sim fabric, all algorithms, both syncs, 64 seeds
//	armci-check -seeds 256 -v                # deeper sweep, per-case progress
//	armci-check -j 8                         # eight concurrent case workers
//	armci-check -fabrics sim,chan,tcp        # add the concurrent fabrics
//	armci-check -faults 'loss=0.15,retry=12;dup=0.2;spike=1ms@0.2'
//	armci-check -coalesce                    # sweep with batched (coalesced) wire frames
//	armci-check -workload 'stencil;paramserver;prodcons;mixed'
//	armci-check -mutations                   # oracle self-test: broken variants must be caught
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strings"

	"armci"
	"armci/internal/check"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("armci-check: ")
	os.Exit(run(os.Args[1:], os.Stdout))
}

// run is main with its process surface factored out for tests: args are
// the command-line flags, output goes to out, and the exit code is
// returned instead of passed to os.Exit.
func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("armci-check", flag.ExitOnError)
	var (
		fabricsF  = fs.String("fabrics", "sim", "comma-separated in-process fabrics: sim, chan, tcp")
		algsF     = fs.String("algs", "queue,hybrid,ticket,queue-nocas,lease", "comma-separated lock algorithms (empty entry = no lock phase)")
		workloadF = fs.String("workload", "", "semicolon-separated workload specs (specs contain commas), e.g. 'stencil:rows=16;mixed:skew=hot,nb=75'; replaces the lock/put/notify workload and ignores -algs")
		syncsF    = fs.String("syncs", "barrier,sync-old", "comma-separated sync variants: barrier, sync-old, sync-old-pipelined, barrier-knomial, barrier-hier, barrier-hier-nic")
		faultsF   = fs.String("faults", "", "semicolon-separated fault plans (plans contain commas), e.g. 'loss=0.15,retry=12;dup=0.2'")
		procs     = fs.Int("procs", 6, "user processes")
		ppn       = fs.Int("ppn", 2, "processes per node (ticket forces ppn=procs)")
		seeds     = fs.Int64("seeds", 64, "number of schedule-shuffle seeds to sweep")
		seedStart = fs.Int64("seed-start", 1, "first seed of the sweep (0 = FIFO baseline)")
		iters     = fs.Int("iters", 0, "critical sections per rank (0 = default)")
		rounds    = fs.Int("rounds", 0, "put+sync rounds (0 = default)")
		preset    = fs.String("preset", "", "cost model: myrinet2000, low-latency, zero (empty = default)")
		coalesce  = fs.Bool("coalesce", false, "run every case with per-destination op coalescing enabled (batched wire frames)")
		mutation  = fs.String("mutation", "", "run every case under this broken variant (replays a 'mutation=' reproducer)")
		workers   = fs.Int("j", runtime.GOMAXPROCS(0), "concurrent case workers (output is identical at any -j)")
		mutations = fs.Bool("mutations", false, "run the mutation self-test instead of the sweep: every deliberately broken variant must be detected")
		verbose   = fs.Bool("v", false, "print one line per case")
	)
	fs.Parse(args)

	if *mutations {
		return runMutations(out, *seedStart, *seedStart+*seeds-1, *verbose)
	}

	fabrics, err := parseFabrics(*fabricsF)
	if err != nil {
		log.Print(err)
		return 2
	}
	// A workload-targeted mutation (acc-lost-update, flag-before-data)
	// carries its own scenario: default -workload and the spec's ppn
	// override from it so a bare `-mutation <name>` reproducer replays
	// without extra knobs, the way lease mutations default their TTL.
	if *mutation != "" && *workloadF == "" {
		if wl, wppn := check.MutationWorkload(*mutation); wl != "" {
			*workloadF = wl
			if wppn != 0 {
				*ppn = wppn
			}
		}
	}
	// The self-test sweeps mutations at MutationCase's deeper iteration
	// count; a replayed reproducer must run the identical case or the
	// printed seed may come up clean.
	if *mutation != "" && *iters == 0 {
		*iters = check.MutationIters
	}
	cases := check.Matrix(fabrics, splitPlans(*workloadF), splitList(*algsF),
		splitList(*syncsF), splitPlans(*faultsF), *procs, *ppn, *seedStart, *seedStart+*seeds-1)
	for i := range cases {
		cases[i].Iters = *iters
		cases[i].Rounds = *rounds
		cases[i].Preset = armci.CostPreset(*preset)
		cases[i].Coalesce = *coalesce
		cases[i].Mutation = *mutation
	}

	fmt.Fprintf(out, "sweeping %d cases (%d seeds from %d, %d workers)\n", len(cases), *seeds, *seedStart, *workers)
	s := check.RunAllParallel(cases, *workers, func(r check.Result) {
		switch {
		case r.Panicked:
			fmt.Fprintf(out, "PANIC %s: %v\n", r.Case.Reproducer(), r.Err)
		case r.Err != nil:
			fmt.Fprintf(out, "ERROR %s: %v\n", r.Case.Reproducer(), r.Err)
		case len(r.Violations) > 0:
			for _, v := range r.Violations {
				fmt.Fprintf(out, "FAIL  %s\n", v)
			}
		case *verbose:
			fmt.Fprintf(out, "ok    %s (%d events)\n", r.Case.Reproducer(), r.Events)
		}
	})
	fmt.Fprintf(out, "%d cases, %d protocol events, %d violations, %d errors, %d panics\n",
		s.Cases, s.Events, len(s.Violations), len(s.Errs), s.Panics)
	if len(s.Violations) > 0 || len(s.Errs) > 0 || s.Panics > 0 {
		return 1
	}
	return 0
}

// runMutations is the oracle self-test: sweep each deliberately broken
// algorithm variant until an oracle catches it, and fail if any bug
// survives the whole seed range — that would mean the oracles are blind
// to a bug class they exist to detect.
func runMutations(out io.Writer, seedLo, seedHi int64, verbose bool) int {
	code := 0
	for _, name := range check.Mutations() {
		r, ok := check.DetectMutation(name, seedLo, seedHi)
		if !ok {
			fmt.Fprintf(out, "BLIND %s: no seed in [%d,%d] exposed the bug\n", name, seedLo, seedHi)
			code = 1
			continue
		}
		fmt.Fprintf(out, "caught %s at seed %d: %s\n", name, r.Case.Seed, r.Violations[0])
		if verbose {
			for _, v := range r.Violations[1:] {
				fmt.Fprintf(out, "       also: %s\n", v)
			}
		}
	}
	return code
}

func parseFabrics(s string) ([]armci.FabricKind, error) {
	var out []armci.FabricKind
	for _, f := range splitList(s) {
		k, err := armci.ParseFabric(f)
		if err != nil {
			return nil, err
		}
		if k == armci.FabricProc {
			// The harness explores schedules by replaying one case many
			// times inside this process; the proc fabric needs a real
			// multi-process launch per run and cannot be driven that way.
			return nil, fmt.Errorf("fabric proc runs across OS processes and is not drivable by the in-process conformance harness; smoke it with armci-run instead")
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		out = []armci.FabricKind{armci.FabricSim}
	}
	return out, nil
}

// splitList splits a comma-separated flag, trimming blanks but keeping
// an explicit empty entry (",x" = default variant plus x).
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// splitPlans splits the -faults flag on ';': fault plans themselves
// contain commas.
func splitPlans(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ";")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
