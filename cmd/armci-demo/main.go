// Command armci-demo runs a small, fully deterministic simulated cluster
// through both synchronization paths the paper studies and prints the
// message-level story: what the original AllFence+MPI_Barrier sends, what
// the combined ARMCI_Barrier sends instead, and how the two lock
// algorithms pass a contended lock. It is the fastest way to *see* the
// paper's claims.
//
// Usage:
//
//	armci-demo            # 4 processes
//	armci-demo -procs 8
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"armci"
	"armci/internal/msg"
	"armci/internal/trace"
)

func main() {
	procs := flag.Int("procs", 4, "number of emulated processes (power of two)")
	flag.Parse()
	if *procs < 2 || *procs&(*procs-1) != 0 {
		log.Fatalf("armci-demo: -procs must be a power of two >= 2, got %d", *procs)
	}

	fmt.Printf("=== ARMCI synchronization demo: %d processes, Myrinet-2000 cost model ===\n\n", *procs)
	syncStory(*procs, true)
	fmt.Println()
	syncStory(*procs, false)
	fmt.Println()
	lockStory(*procs, armci.LockHybrid)
	fmt.Println()
	lockStory(*procs, armci.LockQueue)
}

// syncStory runs an all-to-all put workload followed by one sync and
// reports its cost and traffic.
func syncStory(procs int, old bool) {
	name := "ARMCI_AllFence + MPI_Barrier (original GA_Sync)"
	if !old {
		name = "ARMCI_Barrier (combined fence+barrier, this paper)"
	}
	var syncTime time.Duration
	rep, err := armci.Run(armci.Options{
		Procs:        procs,
		Fabric:       armci.FabricSim,
		Preset:       armci.PresetMyrinet2000,
		CaptureTrace: true,
	}, func(p *armci.Proc) {
		ptrs := p.Malloc(512)
		payload := make([]byte, 256)
		for q := 0; q < procs; q++ {
			if q != p.Rank() {
				p.Put(ptrs[q], payload)
			}
		}
		p.MPIBarrier()
		t0 := p.Now()
		if old {
			p.SyncOld()
		} else {
			p.Barrier()
		}
		if p.Rank() == 0 {
			syncTime = p.Now() - t0
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- %s ---\n", name)
	fmt.Printf("rank 0 spent %v in the sync\n", syncTime.Round(100*time.Nanosecond))
	printKinds(rep.Stats, []msg.Kind{msg.KindPut, msg.KindFenceReq, msg.KindFenceAck, msg.KindColl})
	if old {
		fmt.Printf("every process confirms with every server serially: %d round trips total\n",
			rep.Stats.Count(msg.KindFenceReq))
	} else {
		fmt.Printf("no fence traffic at all: two binary-exchange stages of %d messages each\n",
			procs*log2(procs))
	}
}

// lockStory makes every process take one hot lock a few times and shows
// the traffic of the algorithm.
func lockStory(procs int, alg armci.LockAlg) {
	const iters = 5
	var slowest time.Duration
	rep, err := armci.Run(armci.Options{
		Procs:      procs,
		Fabric:     armci.FabricSim,
		Preset:     armci.PresetMyrinet2000,
		NumMutexes: 1,
		LockHomes:  []int{0},
	}, func(p *armci.Proc) {
		mu := p.Mutex(0, alg)
		p.MPIBarrier()
		t0 := p.Now()
		for i := 0; i < iters; i++ {
			mu.Lock()
			mu.Unlock()
		}
		if d := p.Now() - t0; d > slowest {
			slowest = d // sim fabric: one actor runs at a time, no race
		}
		p.MPIBarrier()
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- lock at process 0, algorithm: %v, %d×%d acquisitions ---\n", alg, procs, iters)
	fmt.Printf("slowest process finished its loop in %v\n", slowest.Round(100*time.Nanosecond))
	switch alg {
	case armci.LockHybrid:
		printKinds(rep.Stats, []msg.Kind{msg.KindLockReq, msg.KindLockGrant, msg.KindUnlock})
		fmt.Println("every hand-off relays through the server: release + grant = 2 messages")
	default:
		printKinds(rep.Stats, []msg.Kind{msg.KindRmw, msg.KindRmwResp})
		fmt.Println("hand-offs write the next waiter's flag directly: 1 message (0 if co-located)")
	}
}

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

func printKinds(s *trace.Stats, kinds []msg.Kind) {
	fmt.Print("traffic:")
	for _, k := range kinds {
		fmt.Printf("  %v=%d", k, s.Count(k))
	}
	fmt.Printf("  (total %d msgs)\n", s.Sends())
}
