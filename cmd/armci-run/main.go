// Command armci-run is the mpirun-style launcher for the multi-process
// proc fabric: it spawns one worker OS process per SMP node, wires the
// rendezvous through environment variables, streams each worker's
// output with a per-rank prefix, forwards signals, and aggregates exit
// statuses. A worker that dies mid-run is detected by the coordinator
// (connection loss or missed heartbeats) and the launch terminates
// promptly with the dead worker's rank.
//
// Usage:
//
//	armci-run -n 8 -- ./myprog -flag …   # external program; it must run
//	                                     # armci with Fabric: proc
//	armci-run -n 8 -workload fig7        # built-in Fig. 7 point (self-exec)
//	armci-run -n 4 -workload fig7-small  # smoke-sized variant for CI
//
// With -ppn k, each worker process hosts k consecutive ranks as one SMP
// node (n must be a multiple of k).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"sync"
	"time"

	"armci"
	"armci/internal/bench"
	"armci/internal/cluster"
	"armci/internal/elastic"
	"armci/internal/pipeline"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("armci-run: ")

	var (
		n        = flag.Int("n", 4, "total number of ranks (user processes)")
		ppn      = flag.Int("ppn", 1, "ranks per SMP node; one worker OS process is spawned per node")
		workload = flag.String("workload", "", "built-in workload instead of an external program: fig7, fig7-small, elastic")
		reps     = flag.Int("reps", 0, "fig7: timed repetitions per point (default per workload)")
		block    = flag.Int("block", 0, "fig7: per-process block edge in elements (default per workload)")
		patch    = flag.Int("patch", 0, "fig7: patch edge written to every remote block (default per workload)")
		steps    = flag.Int("steps", 0, "elastic: sync epochs of replicated work (default 6)")
		faults   = flag.String("faults", "", "fault plan for the built-in workloads (armci-bench grammar; elastic honors crashrank=<r>@<n>)")
		elastf   = flag.Bool("elastic", false, "repair worker loss by respawn instead of failing the launch (requires -ppn 1)")
		timeout  = flag.Duration("timeout", 0, "kill the launch after this long (default 10m)")
		quiet    = flag.Bool("q", false, "suppress worker output (built-in workloads still print their result)")
		verbose  = flag.Bool("v", false, "log coordinator diagnostics to stderr")
		worker   = flag.Bool("worker", false, "internal: run as a spawned workload worker (set by the launcher)")
	)
	flag.Parse()

	if *worker {
		os.Exit(runWorker(*workload, *n, *reps, *block, *patch, *steps, *faults))
	}

	if *n <= 0 {
		log.Fatalf("-n %d: want a positive rank count", *n)
	}
	if *ppn <= 0 || *n%*ppn != 0 {
		log.Fatalf("-ppn %d: rank count %d must be a positive multiple of it", *ppn, *n)
	}
	if (*workload == "") == (flag.NArg() == 0) {
		log.Fatal("want exactly one of -workload <name> or a program after -- (e.g. armci-run -n 8 -- ./myprog)")
	}

	var logf func(string, ...any)
	if *verbose {
		logf = func(format string, args ...any) { log.Printf(format, args...) }
	}

	if *elastf && *ppn != 1 {
		// Elastic recovery replaces whole worker processes; with more
		// than one rank per node a single respawn would have to rebuild
		// several ranks' memory at once, which the replication protocol
		// does not cover.
		log.Fatalf("-elastic requires -ppn 1, got -ppn %d", *ppn)
	}

	if *workload != "" {
		if *workload == "elastic" {
			os.Exit(runElasticWorkload(*n, *steps, *faults, *elastf, *timeout, *quiet, logf))
		}
		os.Exit(runWorkload(*workload, *n, *ppn, *reps, *block, *patch, *timeout, *quiet, logf))
	}

	// External-program mode: the spawned program reads the rendezvous
	// from the environment when it runs armci with the proc fabric.
	out, err := cluster.Launch(cluster.Spec{
		Procs:          *n,
		ProcsPerNode:   *ppn,
		Command:        flag.Args(),
		RunTimeout:     *timeout,
		ForwardSignals: true,
		Logf:           logf,
		Elastic:        *elastf,
	})
	if err != nil {
		log.Fatal(err)
	}
	os.Exit(reportOutcome(out))
}

// reportOutcome prints the launch verdict and maps it to an exit code.
func reportOutcome(out *cluster.Outcome) int {
	if out.Err == nil {
		fmt.Printf("armci-run: all ranks finished cleanly in %v\n", out.Elapsed.Round(time.Millisecond))
		return 0
	}
	if out.Fault != nil {
		log.Printf("rank %d lost: %v", out.Fault.Rank, out.Err)
	} else {
		log.Printf("launch failed: %v", out.Err)
	}
	return 1
}

// runWorkload self-execs this binary as the launch's worker processes,
// each dispatching into runWorker via the hidden -worker flag.
func runWorkload(name string, n, ppn, reps, block, patch int, timeout time.Duration, quiet bool, logf func(string, ...any)) int {
	switch name {
	case "fig7", "fig7-small":
	default:
		log.Printf("unknown -workload %q (want fig7 or fig7-small)", name)
		return 2
	}
	self, err := os.Executable()
	if err != nil {
		log.Printf("resolving own binary for self-exec: %v", err)
		return 2
	}
	argv := []string{self, "-worker", "-workload", name,
		"-n", fmt.Sprint(n),
		"-reps", fmt.Sprint(reps),
		"-block", fmt.Sprint(block),
		"-patch", fmt.Sprint(patch)}
	var output io.Writer
	if quiet {
		output = io.Discard
	}
	row, err := bench.LaunchFig7Proc(bench.Fig7ProcLaunch{
		Procs:        n,
		ProcsPerNode: ppn,
		Command:      argv,
		Output:       output,
		RunTimeout:   timeout,
	})
	if err != nil {
		var fe *pipeline.FaultError
		if errors.As(err, &fe) {
			log.Printf("rank %d lost: %v", fe.Rank, err)
		} else {
			log.Printf("%s: %v", name, err)
		}
		return 1
	}
	fmt.Printf("fig7 (proc fabric, %d ranks, %d/node): old=%.1fus new=%.1fus factor=%.2f\n",
		n, ppn, row.OldUS, row.NewUS, row.Factor)
	return 0
}

// runElasticWorkload launches the elastic-replication workload: every
// rank streams dirty-page deltas to a deterministic peer each sync
// epoch, and — with -elastic and a crashrank fault — one worker is
// killed mid-epoch and recovered by respawn. The launcher aggregates
// the per-rank ELASTIC_FP lines and fails unless every rank (including
// a respawned one) reports the same cluster fingerprint.
func runElasticWorkload(n, steps int, faults string, elastf bool, timeout time.Duration, quiet bool, logf func(string, ...any)) int {
	plan, err := armci.ParseFaults(faults)
	if err != nil {
		log.Printf("-faults %q: %v", faults, err)
		return 2
	}
	if plan.ElasticCrashStep > 0 && !elastf {
		log.Printf("-faults crashrank kills a worker for real under the proc fabric; add -elastic to recover it")
		return 2
	}
	self, err := os.Executable()
	if err != nil {
		log.Printf("resolving own binary for self-exec: %v", err)
		return 2
	}
	argv := []string{self, "-worker", "-workload", "elastic",
		"-n", fmt.Sprint(n),
		"-steps", fmt.Sprint(steps),
		"-faults", faults}
	output := io.Writer(os.Stdout)
	if quiet {
		output = io.Discard
	}
	var mu sync.Mutex
	fps := make(map[int]string)
	recovered := 0
	out, err := cluster.Launch(cluster.Spec{
		Procs:          n,
		ProcsPerNode:   1,
		Command:        argv,
		Output:         output,
		RunTimeout:     timeout,
		ForwardSignals: true,
		Logf:           logf,
		Elastic:        elastf,
		OnLine: func(node int, line string) {
			var fp string
			var rec, inc int
			if _, serr := fmt.Sscanf(line, "ELASTIC_FP %s recovered=%d incarnation=%d", &fp, &rec, &inc); serr == nil {
				mu.Lock()
				fps[node] = fp
				recovered += rec
				mu.Unlock()
			}
		},
	})
	if err != nil {
		if out != nil && out.Fault != nil {
			log.Printf("rank %d lost: %v", out.Fault.Rank, err)
		} else {
			log.Printf("elastic: %v", err)
		}
		return 1
	}
	if len(fps) != n {
		log.Printf("elastic: got fingerprints from %d of %d ranks", len(fps), n)
		return 1
	}
	for node := 1; node < n; node++ {
		if fps[node] != fps[0] {
			log.Printf("elastic: rank %d fingerprint %s diverges from rank 0's %s", node, fps[node], fps[0])
			return 1
		}
	}
	if want := fmt.Sprintf("0x%016x", elastic.Oracle(elastic.Config{Steps: steps}, n)); fps[0] != want {
		log.Printf("elastic: cluster fingerprint %s diverges from the pure-replay oracle %s — ops lost or duplicated", fps[0], want)
		return 1
	}
	if plan.ElasticCrashStep > 0 && recovered == 0 {
		log.Printf("elastic: crashrank fault armed but no rank reported a recovery")
		return 1
	}
	status := "no faults"
	if plan.ElasticCrashStep > 0 {
		status = fmt.Sprintf("rank %d killed at epoch %d and recovered", plan.ElasticCrashRank, plan.ElasticCrashStep)
	}
	fmt.Printf("elastic (proc fabric, %d ranks): fingerprint %s on all ranks, %s, %v\n",
		n, fps[0], status, out.Elapsed.Round(time.Millisecond))
	return 0
}

// runElasticWorker is the per-worker body of the elastic workload.
func runElasticWorker(n, steps int, faults string) int {
	plan, err := armci.ParseFaults(faults)
	if err != nil {
		log.Printf("worker: -faults %q: %v", faults, err)
		return 2
	}
	var res elastic.Result
	_, err = armci.Run(armci.Options{
		Procs:  n,
		Fabric: armci.FabricProc,
		Faults: plan,
	}, func(p *armci.Proc) {
		res = elastic.Run(p, elastic.Config{Steps: steps})
	})
	if err != nil {
		log.Printf("worker: %s", strings.ReplaceAll(err.Error(), "\n", "; "))
		return 1
	}
	rec := 0
	if res.Recovered {
		rec = 1
	}
	// One machine-readable line per rank; the launcher aggregates.
	fmt.Printf("ELASTIC_FP 0x%016x recovered=%d incarnation=%d\n", res.Fingerprint, rec, res.Incarnation)
	return 0
}

// runWorker is the body of one spawned workload worker. The rendezvous
// comes from the environment the launcher set.
func runWorker(name string, n, reps, block, patch, steps int, faults string) int {
	if name == "elastic" {
		return runElasticWorker(n, steps, faults)
	}
	opts := bench.Fig7Opts{BlockDim: block, PatchDim: patch}
	opts.Reps = reps
	switch name {
	case "fig7":
	case "fig7-small":
		if opts.BlockDim == 0 {
			opts.BlockDim = 16
		}
		if opts.PatchDim == 0 {
			opts.PatchDim = 4
		}
		if opts.Reps == 0 {
			opts.Reps = 5
		}
	default:
		log.Printf("worker: unknown workload %q", name)
		return 2
	}
	if err := bench.RunFig7ProcWorker(opts, n); err != nil {
		// Keep the message on one line: the launcher prefixes and
		// multiplexes this stream with the other ranks'.
		log.Printf("worker: %s", strings.ReplaceAll(err.Error(), "\n", "; "))
		return 1
	}
	return 0
}
