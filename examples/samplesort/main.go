// Samplesort: a classic distributed sample sort over the mp layer — the
// message-passing side of the hybrid programming model ARMCI is designed
// to coexist with. Each rank sorts its local keys, regular samples are
// gathered at rank 0, splitters are broadcast back, every rank partitions
// its keys and exchanges buckets point-to-point, and a final local merge
// leaves the keys globally sorted across ranks.
//
// Run with:
//
//	go run ./examples/samplesort
//	go run ./examples/samplesort -procs 6 -keys 5000
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"armci"
	"armci/mp"
)

func main() {
	procs := flag.Int("procs", 4, "number of emulated processes")
	keys := flag.Int("keys", 2000, "keys per process")
	flag.Parse()

	counts := make([]int, *procs)
	var bounds []int64
	sortedOK := true

	_, err := armci.Run(armci.Options{
		Procs:  *procs,
		Fabric: armci.FabricChan,
	}, func(p *armci.Proc) {
		c := mp.Attach(p)
		me, n := c.Rank(), c.Size()

		// 1. Local keys, locally sorted.
		rng := rand.New(rand.NewSource(int64(me)*7919 + 13))
		local := make([]int64, *keys)
		for i := range local {
			local[i] = rng.Int63n(1 << 40)
		}
		sort.Slice(local, func(i, j int) bool { return local[i] < local[j] })

		// 2. Regular sampling: n samples per rank, gathered at rank 0.
		samples := make([]int64, n)
		for i := 0; i < n; i++ {
			samples[i] = local[(i*len(local))/n]
		}
		sampleBytes := c.Gather(0, int64sToBytes(samples))

		// 3. Rank 0 picks n−1 splitters from the pooled samples and
		// broadcasts them.
		var splitters []int64
		if me == 0 {
			var pool []int64
			for _, b := range sampleBytes {
				pool = append(pool, bytesToInt64s(b)...)
			}
			sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
			for i := 1; i < n; i++ {
				splitters = append(splitters, pool[(i*len(pool))/n])
			}
		}
		splitters = bytesToInt64s(c.Bcast(0, int64sToBytes(splitters)))

		// 4. Partition and exchange: bucket i goes to rank i.
		buckets := make([][]int64, n)
		b := 0
		for _, k := range local {
			for b < n-1 && k >= splitters[b] {
				b++
			}
			buckets[b] = append(buckets[b], k)
		}
		// Everyone sends every bucket (possibly empty) with tag = round.
		for q := 0; q < n; q++ {
			if q != me {
				c.Send(q, 1, int64sToBytes(buckets[q]))
			}
		}
		merged := append([]int64(nil), buckets[me]...)
		for q := 0; q < n; q++ {
			if q != me {
				merged = append(merged, bytesToInt64s(c.Recv(q, 1))...)
			}
		}
		sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
		counts[me] = len(merged)

		// 5. Verify the global order: my max <= right neighbor's min.
		my := [2]int64{1 << 62, -1} // min, max
		if len(merged) > 0 {
			my[0], my[1] = merged[0], merged[len(merged)-1]
		}
		if me > 0 {
			c.SendInt64s(me-1, 2, []int64{my[0]})
		}
		if me < n-1 {
			rightMin := c.RecvInt64s(me+1, 2)[0]
			if len(merged) > 0 && merged[len(merged)-1] > rightMin {
				sortedOK = false
			}
		}
		// Total conservation.
		total := []int64{int64(len(merged))}
		c.AllReduceSumInt64(total)
		if total[0] != int64(n**keys) {
			panic(fmt.Sprintf("rank %d: %d keys total, want %d", me, total[0], n**keys))
		}
		if me == 0 {
			bounds = splitters
		}
		c.Barrier()
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sample sort: %d ranks x %d keys\n", *procs, *keys)
	fmt.Printf("  splitters: %v\n", bounds)
	for r, cnt := range counts {
		fmt.Printf("  rank %d ended with %5d keys\n", r, cnt)
	}
	fmt.Printf("  globally sorted: %v\n", sortedOK)
	if !sortedOK {
		log.Fatal("samplesort: global order violated")
	}
}

func int64sToBytes(v []int64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		for b := 0; b < 8; b++ {
			out[8*i+b] = byte(x >> (8 * b))
		}
	}
	return out
}

func bytesToInt64s(b []byte) []int64 {
	out := make([]int64, len(b)/8)
	for i := range out {
		var x uint64
		for k := 0; k < 8; k++ {
			x |= uint64(b[8*i+k]) << (8 * k)
		}
		out[i] = int64(x)
	}
	return out
}
