// Stencil: a 2-D Jacobi heat-diffusion iteration on a block-distributed
// Global Array — the kind of workload GA_Sync() exists for, and the
// motivating use of the paper's combined fence+barrier: every iteration,
// each process reads a halo around its block with one-sided gets, computes
// the 5-point stencil update, writes its block back with one-sided puts,
// and the whole cluster agrees the writes have landed via GA_Sync before
// the next sweep.
//
// Run with:
//
//	go run ./examples/stencil
//	go run ./examples/stencil -procs 9 -size 120 -iters 40
//	go run ./examples/stencil -sync old     # the original AllFence path
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"armci"
	"armci/ga"
)

func main() {
	procs := flag.Int("procs", 4, "number of emulated processes")
	size := flag.Int("size", 64, "global grid edge (size x size)")
	iters := flag.Int("iters", 30, "Jacobi sweeps")
	syncMode := flag.String("sync", "new", "GA_Sync implementation: new (combined barrier) or old (AllFence+MPI_Barrier)")
	flag.Parse()

	mode := ga.SyncNew
	if *syncMode == "old" {
		mode = ga.SyncOld
	}

	var residuals []float64
	var finalCenter float64

	_, err := armci.Run(armci.Options{
		Procs:  *procs,
		Fabric: armci.FabricChan,
	}, func(p *armci.Proc) {
		n := *size
		grids := [2]*ga.Array{}
		for i := range grids {
			a, err := ga.Create(p, fmt.Sprintf("heat%d", i), n, n)
			if err != nil {
				panic(err)
			}
			a.SetSyncMode(mode)
			grids[i] = a
		}

		// Initial condition: cold plate, hot square in the middle.
		grids[0].Fill(0)
		grids[1].Fill(0)
		if p.Rank() == 0 {
			h := n / 4
			hot := make([]float64, h*h)
			for i := range hot {
				hot[i] = 100
			}
			for i := range grids {
				grids[i].Put(n/2-h/2, n/2+h-h/2, n/2-h/2, n/2+h-h/2, hot)
			}
		}
		grids[0].Sync()
		grids[1].Sync()

		rlo, rhi, clo, chi := grids[0].Distribution(p.Rank())
		for it := 0; it < *iters; it++ {
			src, dst := grids[it%2], grids[(it+1)%2]
			if rhi > rlo && chi > clo {
				// One-sided halo read: the patch clamped to the domain,
				// one row/column beyond our block on each side.
				hrlo, hrhi := maxInt(rlo-1, 0), minInt(rhi+1, n)
				hclo, hchi := maxInt(clo-1, 0), minInt(chi+1, n)
				w := hchi - hclo
				halo := src.Get(hrlo, hrhi, hclo, hchi)
				at := func(r, c int) float64 {
					if r < 0 || r >= n || c < 0 || c >= n {
						return 0 // fixed cold boundary
					}
					return halo[(r-hrlo)*w+(c-hclo)]
				}
				out := make([]float64, (rhi-rlo)*(chi-clo))
				for r := rlo; r < rhi; r++ {
					for c := clo; c < chi; c++ {
						out[(r-rlo)*(chi-clo)+(c-clo)] =
							0.25 * (at(r-1, c) + at(r+1, c) + at(r, c-1) + at(r, c+1))
					}
				}
				dst.Put(rlo, rhi, clo, chi, out)
			}
			// The synchronization under study: all puts everywhere must
			// complete before anyone reads the next halo.
			dst.Sync()
			if (it+1)%10 == 0 {
				// Norm2 is collective — every rank participates; rank 0
				// records the value.
				r := dst.Norm2()
				if p.Rank() == 0 {
					residuals = append(residuals, r)
				}
			}
		}
		if p.Rank() == 0 {
			v := grids[*iters%2].Get(n/2, n/2+1, n/2, n/2+1)
			finalCenter = v[0]
		}
		p.Barrier()
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Jacobi heat diffusion: %dx%d grid, %d procs, %d sweeps, GA_Sync=%s\n",
		*size, *size, *procs, *iters, *syncMode)
	for i, r := range residuals {
		fmt.Printf("  after %3d sweeps: |T|_F = %8.3f\n", (i+1)*10, r)
	}
	fmt.Printf("  center temperature: %.3f\n", finalCenter)
	if math.IsNaN(finalCenter) || finalCenter <= 0 {
		log.Fatal("stencil: heat did not diffuse — check the sync semantics")
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
