// Taskfarm: dynamic load balancing with a global atomic counter — the
// NGA_Read_inc idiom Global Arrays applications use. Rank 0 hosts the
// task counter (and computes nothing); every worker repeatedly claims
// the next row index with one remote ARMCI fetch-and-increment, computes
// a Mandelbrot-set row whose cost varies wildly across rows, and writes
// it into a block-distributed Global Array with a one-sided put. No
// worker coordinates with any other except through the counter and the
// final sync — the distribution adapts to the cost imbalance
// automatically.
//
// Run with:
//
//	go run ./examples/taskfarm
//	go run ./examples/taskfarm -procs 8 -size 96
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"armci"
	"armci/ga"
)

func main() {
	procs := flag.Int("procs", 4, "number of emulated processes")
	size := flag.Int("size", 64, "image edge (size x size)")
	flag.Parse()

	n := *size
	rowsClaimed := make([]int, *procs)
	var img *[]float64

	_, err := armci.Run(armci.Options{
		Procs:  *procs,
		Fabric: armci.FabricChan,
	}, func(p *armci.Proc) {
		a, err := ga.Create(p, "mandel", n, n)
		if err != nil {
			panic(err)
		}
		a.Fill(0)
		counter := ga.NewCounter(p, 0)

		// Rank 0 is the counter host; ranks 1.. are workers claiming
		// rows until the counter runs past the image.
		for p.Rank() != 0 {
			row := int(counter.ReadInc(1))
			if row >= n {
				break
			}
			rowsClaimed[p.Rank()]++
			vals := make([]float64, n)
			for col := 0; col < n; col++ {
				vals[col] = float64(mandel(
					-2.2+3.0*float64(col)/float64(n),
					-1.5+3.0*float64(row)/float64(n),
				))
			}
			a.Put(row, row+1, 0, n, vals)
		}
		a.Sync()
		if p.Rank() == 0 {
			buf := a.Get(0, n, 0, n)
			img = &buf
		}
		p.Barrier()
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("taskfarm: %dx%d Mandelbrot rows over %d workers (rank 0 hosts the counter)\n",
		n, n, *procs-1)
	total := 0
	for r, c := range rowsClaimed {
		if r == 0 {
			continue
		}
		fmt.Printf("  worker %d computed %3d rows\n", r, c)
		total += c
	}
	if total != n {
		log.Fatalf("claimed %d rows, want %d — the counter double-issued", total, n)
	}
	// ASCII rendering, downsampled.
	shades := []byte(" .:-=+*#%@")
	step := n / 32
	if step < 1 {
		step = 1
	}
	for y := 0; y < n; y += 2 * step {
		var line strings.Builder
		for x := 0; x < n; x += step {
			v := (*img)[y*n+x]
			line.WriteByte(shades[int(v)*(len(shades)-1)/maxIter])
		}
		fmt.Println("  " + line.String())
	}
}

const maxIter = 48

// mandel returns the escape iteration count of c = x+iy.
func mandel(x, y float64) int {
	var zr, zi float64
	for i := 0; i < maxIter; i++ {
		zr, zi = zr*zr-zi*zi+x, 2*zr*zi+y
		if zr*zr+zi*zi > 4 {
			return i
		}
	}
	return maxIter
}
