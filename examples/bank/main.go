// Bank: a contended account-transfer workload over distributed mutexes —
// the classic mutual-exclusion stress test, run with both ARMCI lock
// algorithms so their behaviour under identical load can be compared.
//
// Accounts are word cells spread across the ranks' memories; each lock
// protects one account. A transfer locks the two accounts in global index
// order (deadlock avoidance), moves money with plain load/store (safe only
// under mutual exclusion), fences, and unlocks. Conservation of the total
// balance proves no update was lost; the message trace shows the queuing
// lock moving less traffic than the server-relayed hybrid.
//
// Run with:
//
//	go run ./examples/bank
//	go run ./examples/bank -alg hybrid
//	go run ./examples/bank -procs 8 -accounts 16 -transfers 300
package main

import (
	"flag"
	"fmt"
	"log"

	"armci"
)

func main() {
	procs := flag.Int("procs", 4, "number of emulated processes")
	accounts := flag.Int("accounts", 8, "number of accounts (= locks)")
	transfers := flag.Int("transfers", 200, "transfers per process")
	algFlag := flag.String("alg", "queue", "lock algorithm: queue, queue-nocas, hybrid")
	flag.Parse()

	var alg armci.LockAlg
	switch *algFlag {
	case "queue":
		alg = armci.LockQueue
	case "queue-nocas":
		alg = armci.LockQueueNoCAS
	case "hybrid":
		alg = armci.LockHybrid
	default:
		log.Fatalf("unknown lock algorithm %q", *algFlag)
	}

	const initialBalance = 1000
	var finalTotal int64
	var perAccount []int64

	rep, err := armci.Run(armci.Options{
		Procs:      *procs,
		Fabric:     armci.FabricChan,
		NumMutexes: *accounts, // lock i is homed at rank i % procs, like account i
	}, func(p *armci.Proc) {
		me, n := p.Rank(), p.Size()
		na := *accounts

		// Account i lives in the memory of rank i%n — same placement as
		// its lock, so a lock-home process updates "its" accounts without
		// any server involvement (the paper's local-lock fast path).
		// The global account table: account i = word i/n of rank i%n's
		// collective allocation. Every rank derives it identically.
		table := make([]armci.Ptr, na)
		ptrs := p.MallocWords((na + n - 1) / n)
		for i := 0; i < na; i++ {
			table[i] = ptrs[i%n].Add(int64(i / n))
		}

		// Rank 0 funds every account.
		if me == 0 {
			for i := 0; i < na; i++ {
				p.Store(table[i], initialBalance)
			}
		}
		p.Barrier()

		locks := make([]armci.Mutex, na)
		for i := range locks {
			locks[i] = p.Mutex(i, alg)
		}

		fenceAll := func(a, b int) {
			if node := p.NodeOf(a % n); node != p.MyNode() {
				p.Fence(node)
			}
			if node := p.NodeOf(b % n); node != p.MyNode() {
				p.Fence(node)
			}
		}

		// Deterministic pseudo-random transfer stream per rank.
		x := uint64(me*2654435761 + 1)
		next := func(mod int) int {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			return int(x % uint64(mod))
		}
		for t := 0; t < *transfers; t++ {
			from, to := next(na), next(na)
			if from == to {
				to = (to + 1) % na
			}
			amount := int64(next(50) + 1)
			lo, hi := from, to
			if lo > hi {
				lo, hi = hi, lo
			}
			locks[lo].Lock()
			locks[hi].Lock()
			fb := p.Load(table[from])
			if fb >= amount {
				p.Store(table[from], fb-amount)
				p.Store(table[to], p.Load(table[to])+amount)
				fenceAll(from, to)
			}
			locks[hi].Unlock()
			locks[lo].Unlock()
		}
		p.Barrier()

		if me == 0 {
			perAccount = make([]int64, na)
			finalTotal = 0
			for i := 0; i < na; i++ {
				perAccount[i] = p.Load(table[i])
				finalTotal += perAccount[i]
			}
		}
		p.Barrier()
	})
	if err != nil {
		log.Fatal(err)
	}

	want := int64(*accounts * initialBalance)
	fmt.Printf("bank: %d procs x %d transfers over %d accounts, %s locks\n",
		*procs, *transfers, *accounts, *algFlag)
	for i, b := range perAccount {
		fmt.Printf("  account %2d (rank %d): %5d\n", i, i%*procs, b)
	}
	fmt.Printf("  total balance: %d (want %d)\n", finalTotal, want)
	fmt.Printf("  traffic: %s\n", rep.Stats.Summary())
	if finalTotal != want {
		log.Fatal("bank: money was created or destroyed — mutual exclusion failed")
	}
}
