// Quickstart: a guided tour of the armci public API on a small emulated
// cluster — one-sided puts and gets, strided transfers, atomic operations,
// fences, the combined barrier, and a distributed mutex.
//
// Run with:
//
//	go run ./examples/quickstart                # in-process fabric
//	go run ./examples/quickstart -fabric tcp    # every message over TCP
//	go run ./examples/quickstart -fabric sim    # deterministic simulation
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"sync"

	"armci"
)

func main() {
	fabricFlag := flag.String("fabric", "chan", "fabric: sim, chan, tcp")
	procs := flag.Int("procs", 4, "number of emulated processes")
	flag.Parse()

	var fk armci.FabricKind
	switch *fabricFlag {
	case "sim":
		fk = armci.FabricSim
	case "chan":
		fk = armci.FabricChan
	case "tcp":
		fk = armci.FabricTCP
	default:
		log.Fatalf("unknown fabric %q", *fabricFlag)
	}

	var mu sync.Mutex
	var lines []string
	say := func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	rep, err := armci.Run(armci.Options{
		Procs:      *procs,
		Fabric:     fk,
		NumMutexes: 1,
	}, func(p *armci.Proc) {
		me, n := p.Rank(), p.Size()

		// 1. Collective allocation: every rank allocates a buffer of n
		// int64 words; everyone learns everyone's pointer.
		words := p.MallocWords(n)

		// 2. One-sided stores: deposit our rank+1 into slot `me` of every
		// other rank's buffer. Nobody at the destination participates.
		for r := 0; r < n; r++ {
			if r != me {
				p.Store(words[r].Add(int64(me)), int64(me+1))
			}
		}

		// 3. The paper's combined operation: one call fences all
		// outstanding stores everywhere AND synchronizes all ranks.
		p.Barrier()

		// 4. Everyone can now read the deposits — locally or remotely.
		sum := int64(me + 1) // our own slot was never written; count self
		for r := 0; r < n; r++ {
			if r != me {
				sum += p.Load(words[me].Add(int64(r)))
			}
		}
		say("rank %d: sum of deposits = %d (want %d)", me, sum, n*(n+1)/2)

		// 5. Atomic read-modify-write on a remote location: everybody
		// increments one counter owned by rank 0.
		counter := p.MallocWords(1)
		for i := 0; i < 3; i++ {
			p.FetchAdd(counter[0], 1)
		}
		p.Barrier()
		if me == 0 {
			say("rank 0: shared counter = %d (want %d)", p.Load(counter[0]), 3*n)
		}

		// 6. A distributed mutex protecting a read-modify-write sequence
		// that is NOT atomic by itself — the paper's software queuing
		// lock under the hood.
		cell := p.MallocWords(1)
		lock := p.Mutex(0, armci.LockQueue)
		for i := 0; i < 5; i++ {
			lock.Lock()
			v := p.Load(cell[0])
			p.Store(cell[0], v+1)
			if p.NodeOf(0) != p.MyNode() {
				p.Fence(p.NodeOf(0))
			}
			lock.Unlock()
		}
		p.Barrier()
		if me == 0 {
			say("rank 0: mutex-protected counter = %d (want %d)", p.Load(cell[0]), 5*n)
		}

		// 7. Strided transfer: write a 4x4 tile into a 8-column matrix
		// owned by rank (me+1) mod n at row 2, col 3.
		mat := p.Malloc(8 * 8 * 8) // 8x8 float64-sized cells, one per rank
		tile := make([]byte, 4*4*8)
		for i := range tile {
			tile[i] = byte(me + 1)
		}
		dst := mat[(me+1)%n].Add((2*8 + 3) * 8)
		p.PutStrided(dst, armci.Strided{Count: []int{4 * 8, 4}, Stride: []int64{8 * 8}}, tile)
		p.Barrier()
		back := p.GetStrided(mat[me].Add((2*8+3)*8),
			armci.Strided{Count: []int{4 * 8, 4}, Stride: []int64{8 * 8}})
		expect := byte((me-1+n)%n) + 1
		ok := true
		for _, b := range back {
			if b != expect {
				ok = false
			}
		}
		say("rank %d: strided tile from rank %d intact: %v", me, (me-1+n)%n, ok)
	})
	if err != nil {
		log.Fatal(err)
	}

	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	fmt.Printf("\ncluster ran %v on the %v fabric; %s\n", rep.Elapsed.Round(1000), fk, rep.Stats.Summary())
}
