// Histogram: a distributed frequency count built two ways on the same
// cluster, contrasting ARMCI's two mutual-update mechanisms:
//
//  1. atomic accumulate (ARMCI_AccS) into a block-distributed Global
//     Array — the server applies dst += src atomically, so concurrent
//     contributions never lose updates;
//  2. mutex-protected read-modify-write against plain shared buffers,
//     exercising the paper's software queuing locks under real
//     contention.
//
// Both must produce the identical histogram; the example cross-checks
// them and reports the lock traffic.
//
// Run with:
//
//	go run ./examples/histogram
//	go run ./examples/histogram -procs 8 -samples 4000 -bins 32
package main

import (
	"flag"
	"fmt"
	"log"

	"armci"
	"armci/ga"
	"armci/mp"
)

func main() {
	procs := flag.Int("procs", 4, "number of emulated processes")
	samples := flag.Int("samples", 2000, "samples drawn per process")
	bins := flag.Int("bins", 16, "histogram bins")
	flag.Parse()

	var accHist, lockHist []float64

	rep, err := armci.Run(armci.Options{
		Procs:      *procs,
		Fabric:     armci.FabricChan,
		NumMutexes: 4, // four lock-striped regions
	}, func(p *armci.Proc) {
		me := p.Rank()
		nb := *bins

		// --- Way 1: accumulate into a 1-row Global Array ---
		hist, err := ga.Create(p, "hist", 1, nb)
		if err != nil {
			panic(err)
		}
		hist.Fill(0)

		// A deterministic per-rank sample stream (xorshift), so the two
		// methods and all runs agree exactly.
		contrib := make([]float64, nb)
		x := uint64(me + 1)
		for i := 0; i < *samples; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			contrib[x%uint64(nb)]++
		}
		hist.Acc(0, 1, 0, nb, contrib, 1.0)
		hist.Sync()
		if me == 0 {
			accHist = hist.Get(0, 1, 0, nb)
		}

		// --- Way 2: lock-striped updates of word counters ---
		// Bins are striped over 4 locks; each process adds its local
		// counts under the stripe's queuing lock with plain (non-atomic)
		// load+store, which is only safe because of mutual exclusion.
		counters := p.MallocWords(nb) // rank r owns counters[r]; use rank 0's
		stripes := make([]armci.Mutex, 4)
		for s := range stripes {
			stripes[s] = p.Mutex(s, armci.LockQueue)
		}
		for s := 0; s < 4; s++ {
			stripes[s].Lock()
			for b := s; b < nb; b += 4 {
				cell := counters[0].Add(int64(b))
				v := p.Load(cell)
				p.Store(cell, v+int64(contrib[b]))
			}
			if p.NodeOf(0) != p.MyNode() {
				p.Fence(p.NodeOf(0)) // publish before releasing the stripe
			}
			stripes[s].Unlock()
		}
		p.Barrier()
		if me == 0 {
			lockHist = make([]float64, nb)
			for b := 0; b < nb; b++ {
				lockHist[b] = float64(p.Load(counters[0].Add(int64(b))))
			}
		}

		// A final all-reduce sanity count of total samples.
		total := []int64{int64(*samples)}
		c := mp.Attach(p)
		c.AllReduceSumInt64(total)
		if total[0] != int64(*samples**procs) {
			panic(fmt.Sprintf("rank %d: total %d, want %d", me, total[0], *samples**procs))
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("distributed histogram: %d procs x %d samples into %d bins\n", *procs, *samples, *bins)
	match := true
	var total float64
	for b := range accHist {
		if accHist[b] != lockHist[b] {
			match = false
		}
		total += accHist[b]
	}
	for b := 0; b < len(accHist); b += 4 {
		fmt.Printf("  bins %2d..%2d:", b, minInt(b+3, len(accHist)-1))
		for i := b; i < b+4 && i < len(accHist); i++ {
			fmt.Printf(" %6.0f", accHist[i])
		}
		fmt.Println()
	}
	fmt.Printf("  accumulate total = %.0f (want %d)\n", total, *samples**procs)
	fmt.Printf("  accumulate vs lock-striped histograms identical: %v\n", match)
	fmt.Printf("  traffic: %s\n", rep.Stats.Summary())
	if !match || total != float64(*samples**procs) {
		log.Fatal("histogram: methods disagree")
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
