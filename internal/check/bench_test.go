package check

import (
	"testing"

	"armci"
)

// BenchmarkExploreCase measures one full conformance case — fabric
// setup, the two-phase workload, trace capture, every oracle — which is
// the unit the sweep repeats thousands of times. Allocations here are
// dominated by per-case setup (kernel, space, trace), bounded and
// independent of the event count thanks to the pooled hot paths.
func BenchmarkExploreCase(b *testing.B) {
	b.ReportAllocs()
	c := Case{Fabric: armci.FabricSim, Alg: "queue", Seed: 1}
	for i := 0; i < b.N; i++ {
		if r := RunCase(c); !r.Passed() {
			b.Fatalf("baseline case failed: %+v", r)
		}
	}
}
