package check

import (
	"armci"
)

// workloadBody builds the per-rank body of one case. The workload has
// two phases, both oracle-bearing:
//
//   - a critical-section phase: Iters times, take the lock, increment a
//     shared counter homed at rank 0 (remote ranks fence the store
//     before releasing), release. Exercises the mutual-exclusion and
//     FIFO oracles; the final counter value is a state-level check that
//     no increment was lost even if the trace happened to mask an
//     overlap.
//   - a put-round phase: Rounds times, every rank stores a round-tagged
//     value into a rotating peer's slot array, synchronizes with the
//     case's sync variant, reads its own slots back locally (the fence
//     guarantee made the remote store visible), and synchronizes again
//     so verification finishes before the next round overwrites.
//     Exercises the fence and delivery oracles.
//
// Both phases route every global synchronization through the case's sync
// variant (real or mutated), so a broken barrier is exposed to both the
// trace-level fence oracle and the state-level read-back.
func workloadBody(c Case, col *collector) func(p *armci.Proc) {
	return func(p *armci.Proc) {
		me, n := p.Rank(), p.Size()
		counter := p.MallocWords(1)[0] // rank 0's cell
		slots := p.MallocWords(n)
		var epoch int
		syncFn := syncFor(p, c, &epoch)

		if c.Alg != "" {
			mu := lockFor(p, c)
			node0 := p.NodeOf(0)
			for i := 0; i < c.Iters; i++ {
				mu.Lock()
				v := p.Load(counter)
				p.Store(counter, v+1)
				if node0 != p.MyNode() {
					// Complete the store before handing off, so the next
					// holder reads the fresh value.
					p.Fence(node0)
				}
				mu.Unlock()
			}
		}
		syncFn()
		if me == 0 && c.Alg != "" {
			want := int64(n * c.Iters)
			if got := p.Load(counter); got != want {
				col.addf("critical-section counter = %d, want %d (increments lost)", got, want)
			}
		}

		for r := 0; r < c.Rounds; r++ {
			shift := 1
			if n > 1 {
				shift = 1 + r%(n-1)
			}
			dst := (me + shift) % n
			p.Store(slots[dst].Add(int64(me)), roundVal(r, me))
			syncFn()
			src := ((me-shift)%n + n) % n
			if got := p.Load(slots[me].Add(int64(src))); got != roundVal(r, src) {
				col.addf("put round %d: rank %d read slot[%d] = %d, want %d (store from rank %d escaped the fence)",
					r+1, me, src, got, roundVal(r, src), src)
			}
			syncFn()
		}
	}
}

// roundVal is the value rank src writes in put round r — unique per
// (round, writer) so a stale or missing store is unambiguous.
func roundVal(r, src int) int64 { return int64((r+1)*1000 + src + 1) }

// lockFor returns the case's lock 0 handle: the real algorithm, or the
// mutated variant when the case's mutation targets the lock.
func lockFor(p *armci.Proc, c Case) armci.Mutex {
	if m, ok := mutationSpecs[c.Mutation]; ok && m.lock != nil {
		return m.lock(p)
	}
	switch c.Alg {
	case "queue":
		return p.Mutex(0, armci.LockQueue)
	case "hybrid":
		return p.Mutex(0, armci.LockHybrid)
	case "queue-nocas":
		return p.Mutex(0, armci.LockQueueNoCAS)
	case "ticket":
		return p.Mutex(0, armci.LockTicket)
	}
	panic("check: lockFor called with no lock algorithm")
}

// syncFor returns the case's global synchronization: the real variant,
// or the mutated one when the case's mutation targets the sync.
func syncFor(p *armci.Proc, c Case, epoch *int) func() {
	if m, ok := mutationSpecs[c.Mutation]; ok && m.syncFn != nil {
		return m.syncFn(p, epoch)
	}
	switch c.Sync {
	case "sync-old":
		return p.SyncOld
	case "sync-old-pipelined":
		return p.SyncOldPipelined
	}
	return p.Barrier
}
