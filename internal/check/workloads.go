package check

import (
	"bytes"
	"fmt"
	"time"

	"armci"
	"armci/internal/elastic"
	"armci/internal/workload"
)

// workloadBody builds the per-rank body of one case. The workload has
// three phases, all oracle-bearing:
//
//   - a critical-section phase: Iters times, take the lock, increment a
//     shared counter homed at rank 0 (remote ranks fence the store
//     before releasing), release. Exercises the mutual-exclusion and
//     FIFO oracles; the final counter value is a state-level check that
//     no increment was lost even if the trace happened to mask an
//     overlap.
//   - a put-round phase: Rounds times, every rank stores a round-tagged
//     value into a rotating peer's slot array, synchronizes with the
//     case's sync variant, reads its own slots back locally (the fence
//     guarantee made the remote store visible), and synchronizes again
//     so verification finishes before the next round overwrites.
//     Exercises the fence and delivery oracles.
//   - a notify/wait phase: Rounds times, every rank streams chunked
//     data into its right neighbor's buffer — the first chunks with
//     NbPut, the last with PutFlag — while consuming from its left
//     neighbor with WaitFlag and verifying every chunk byte-for-byte.
//     With coalescing on, the chunks and the flag ride one batched
//     frame; a coalescer that reorders within the batch lets the flag
//     overtake its data, which the byte verification catches (the
//     chunks are sized so the stale window exceeds the consumer's poll
//     gap). Outstanding NbPut handles are then collected with WaitAll.
//
// All phases route every global synchronization through the case's sync
// variant (real or mutated), so a broken barrier is exposed to both the
// trace-level fence oracle and the state-level read-back.
func workloadBody(c Case, col *collector) func(p *armci.Proc) {
	if mutationSpecs[c.Mutation].elastic {
		// The elastic-recovery mutation replaces the whole workload: the
		// case's crashrank plan injects the (emulated) crash, the hazard
		// makes survivors keep the aborted epoch's writes, and the
		// pure-replay oracle is the state check.
		return func(p *armci.Proc) {
			cfg := elastic.Config{Steps: 4, Seed: c.Seed, SkipRollback: true}
			res := elastic.Run(p, cfg)
			if want := elastic.Oracle(cfg, p.Size()); res.Fingerprint != want {
				col.addf("elastic fingerprint 0x%016x diverges from pure-replay oracle 0x%016x — aborted-epoch state survived recovery",
					res.Fingerprint, want)
			}
		}
	}
	if c.Workload != "" {
		// A named workload (internal/workload) replaces all three phases;
		// its own invariant oracle reports through the state collector and
		// its synchronization routes through the case's sync variant, so
		// the trace-level fence/delivery oracles still apply. validateCase
		// already accepted the spec.
		sp, err := workload.Parse(c.Workload)
		if err != nil {
			panic(fmt.Sprintf("check: workloadBody on unvalidated case: %v", err))
		}
		return workload.Build(sp, workload.Config{
			Seed:    c.Seed,
			Sync:    c.Sync,
			Report:  col.addf,
			Hazards: mutationSpecs[c.Mutation].hazards,
		})
	}
	if f, err := armci.ParseFaults(c.Faults); err == nil && f.CrashHeldAcquire > 0 {
		// A crashheld plan fail-stops a rank inside the lock phase; the
		// dead rank can join no collective, so the case runs the
		// crash-recovery workload instead of the three-phase one.
		return crashWorkloadBody(c, col, f)
	}
	return func(p *armci.Proc) {
		me, n := p.Rank(), p.Size()
		counter := p.MallocWords(1)[0] // rank 0's cell
		slots := p.MallocWords(n)
		nbuf := p.Malloc(notifyChunks * notifyChunkBytes)
		nflag := p.MallocWords(1)
		var epoch int
		syncFn := syncFor(p, c, &epoch)

		if c.Alg != "" {
			mu := lockFor(p, c)
			node0 := p.NodeOf(0)
			for i := 0; i < c.Iters; i++ {
				mu.Lock()
				v := p.Load(counter)
				p.Store(counter, v+1)
				if node0 != p.MyNode() {
					// Complete the store before handing off, so the next
					// holder reads the fresh value.
					p.Fence(node0)
				}
				mu.Unlock()
			}
		}
		syncFn()
		if me == 0 && c.Alg != "" {
			want := int64(n * c.Iters)
			if got := p.Load(counter); got != want {
				col.addf("critical-section counter = %d, want %d (increments lost)", got, want)
			}
		}

		for r := 0; r < c.Rounds; r++ {
			shift := 1
			if n > 1 {
				shift = 1 + r%(n-1)
			}
			dst := (me + shift) % n
			p.Store(slots[dst].Add(int64(me)), roundVal(r, me))
			syncFn()
			src := ((me-shift)%n + n) % n
			if got := p.Load(slots[me].Add(int64(src))); got != roundVal(r, src) {
				col.addf("put round %d: rank %d read slot[%d] = %d, want %d (store from rank %d escaped the fence)",
					r+1, me, src, got, roundVal(r, src), src)
			}
			syncFn()
		}

		for r := 0; r < c.Rounds; r++ {
			dst := (me + 1) % n
			src := (me - 1 + n) % n
			var hs []*armci.Handle
			for k := 0; k < notifyChunks-1; k++ {
				hs = append(hs, p.NbPut(nbuf[dst].Add(int64(k*notifyChunkBytes)), chunkData(r, me, k)))
			}
			last := notifyChunks - 1
			p.PutFlag(nbuf[dst].Add(int64(last*notifyChunkBytes)), chunkData(r, me, last),
				nflag[dst], int64(r+1))
			p.WaitFlag(nflag[me], int64(r+1))
			for k := 0; k < notifyChunks; k++ {
				got := p.Get(nbuf[me].Add(int64(k*notifyChunkBytes)), notifyChunkBytes)
				if want := chunkData(r, src, k); !bytes.Equal(got, want) {
					col.addf("notify round %d: rank %d read stale chunk %d from rank %d (flag overtook its data)",
						r+1, me, k, src)
				}
			}
			p.WaitAll(hs...)
			// One synchronization per round: the consumer verified before
			// entering, so next round's producer cannot overwrite early.
			syncFn()
		}
	}
}

// crashWorkloadBody is the workload of crashheld cases: lock phase only.
// Every rank — the designated victim included — runs Iters critical
// sections over the shared counter; the victim fail-stops inside the
// acquire the plan names, contributing only the increments it completed
// before dying. There is no barrier (the dead rank cannot enter one):
// rank 0, which homes the counter, instead waits — bounded — until the
// surviving increments have all landed, then checks the total. A lock
// that loses increments (or never recovers from the crash) leaves the
// counter short and trips the state oracle; a lock that hangs trips
// liveness via the sim deadlock detector or the op deadline.
func crashWorkloadBody(c Case, col *collector, f armci.Faults) func(p *armci.Proc) {
	return func(p *armci.Proc) {
		me, n := p.Rank(), p.Size()
		counter := p.MallocWords(1)[0] // rank 0's cell
		mu := lockFor(p, c)
		node0 := p.NodeOf(0)
		csDelay := mutationSpecs[c.Mutation].csDelay
		for i := 0; i < c.Iters; i++ {
			mu.Lock() // the victim dies in here at its designated acquire
			p.Store(counter, p.Load(counter)+1)
			if csDelay > 0 {
				// Lease-mutation cases stretch the tenure past the TTL, so
				// waiters depose this (live) holder mid-section.
				p.Env().Clock().Sleep(csDelay)
			}
			if node0 != p.MyNode() {
				p.Fence(node0)
			}
			mu.Unlock()
		}
		if me != 0 || f.CrashHeldRank == 0 {
			return // the victim never gets here; only rank 0 verifies
		}
		// The victim dies inside acquire number CrashHeldAcquire, before
		// that section's increment (a plan past Iters never fires).
		victimIters := c.Iters
		if f.CrashHeldAcquire <= c.Iters {
			victimIters = f.CrashHeldAcquire - 1
		}
		want := int64((n-1)*c.Iters + victimIters)
		// Survivors fence remote increments before releasing, so once the
		// last one finishes the counter — homed here — reads complete.
		bound := time.Second // virtual time: event-driven, costs nothing
		if c.Fabric != armci.FabricSim {
			bound = 10 * time.Second
		}
		p.Env().WaitUntilFor("crash-counter", func() bool {
			return p.Load(counter) >= want
		}, bound)
		if got := p.Load(counter); got != want {
			col.addf("crash-recovery counter = %d, want %d (%d survivors x %d iters + %d from the victim)",
				got, want, n-1, c.Iters, victimIters)
		}
	}
}

// Notify/wait phase geometry: enough chunks, each large enough, that a
// batch applied in reverse keeps the earliest chunk unwritten for
// several microseconds after the flag lands — well past the consumer's
// poll gap — while staying within the coalescer's entry and frame
// limits so everything rides a single batch.
const (
	notifyChunks     = 4
	notifyChunkBytes = 512
)

// chunkData is the payload rank src streams as chunk k of notify round
// r — unique per (round, writer, chunk) so stale bytes are unambiguous.
func chunkData(r, src, k int) []byte {
	b := make([]byte, notifyChunkBytes)
	for i := range b {
		b[i] = byte(r*131 + src*17 + k*7 + i)
	}
	return b
}

// roundVal is the value rank src writes in put round r — unique per
// (round, writer) so a stale or missing store is unambiguous.
func roundVal(r, src int) int64 { return int64((r+1)*1000 + src + 1) }

// lockFor returns the case's lock 0 handle: the real algorithm, or the
// mutated variant when the case's mutation targets the lock.
func lockFor(p *armci.Proc, c Case) armci.Mutex {
	if m, ok := mutationSpecs[c.Mutation]; ok && m.lock != nil {
		return m.lock(p)
	}
	switch c.Alg {
	case "queue":
		return p.Mutex(0, armci.LockQueue)
	case "hybrid":
		return p.Mutex(0, armci.LockHybrid)
	case "queue-nocas":
		return p.Mutex(0, armci.LockQueueNoCAS)
	case "ticket":
		return p.Mutex(0, armci.LockTicket)
	case "lease":
		return p.Mutex(0, armci.LockLease)
	}
	panic("check: lockFor called with no lock algorithm")
}

// syncFor returns the case's global synchronization: the real variant,
// or the mutated one when the case's mutation targets the sync.
func syncFor(p *armci.Proc, c Case, epoch *int) func() {
	if m, ok := mutationSpecs[c.Mutation]; ok && m.syncFn != nil {
		return m.syncFn(p, epoch)
	}
	switch c.Sync {
	case "sync-old":
		return p.SyncOld
	case "sync-old-pipelined":
		return p.SyncOldPipelined
	}
	return p.Barrier
}
