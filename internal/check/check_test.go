package check

import (
	"testing"

	"armci"
)

// sweepAlgs / sweepSyncs are the short-mode conformance matrix: every
// lock algorithm × both synchronization variants on the simulated
// fabric, 64 schedule-shuffle seeds each.
var (
	sweepAlgs  = []string{"queue", "hybrid", "ticket", "queue-nocas", "lease"}
	sweepSyncs = []string{"barrier", "sync-old"}
	// topoSyncs are the topology-aware flavors of the combined barrier;
	// they get their own sweep so the classic matrix stays comparable
	// release to release.
	topoSyncs = []string{"barrier-knomial", "barrier-hier", "barrier-hier-nic"}
)

// TestShortSweep is the conformance sweep that runs even under -short:
// 64 seeds × 4 lock algorithms × 2 sync variants on the simulated
// fabric, every oracle silent.
func TestShortSweep(t *testing.T) {
	cases := Matrix([]armci.FabricKind{armci.FabricSim}, nil, sweepAlgs, sweepSyncs, nil, 6, 2, 1, 64)
	runSweep(t, cases)
}

// TestTopologySyncSweep runs the conformance matrix over the
// topology-aware barrier variants: every lock algorithm under the
// k-nomial and hierarchical combined barriers (the latter with and
// without the NIC-offload fence), 32 schedule-shuffle seeds each, at a
// multi-rank-per-node shape so the hierarchical tree has real intra- and
// inter-node stages. The fence oracle must hold exactly as it does for
// the flat barrier. Runs even under -short: these are new algorithms.
func TestTopologySyncSweep(t *testing.T) {
	cases := Matrix([]armci.FabricKind{armci.FabricSim}, nil, sweepAlgs, topoSyncs, nil, 6, 2, 1, 32)
	runSweep(t, cases)
}

// TestTopologySyncFaultSweep drives the topology-aware barriers through
// latency spikes and loss/dup retransmission: the exchange trees must
// deliver the fence guarantee on the degraded paths too.
func TestTopologySyncFaultSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("topology fault sweep skipped in -short")
	}
	cases := Matrix([]armci.FabricKind{armci.FabricSim}, nil, []string{"queue"},
		topoSyncs, []string{"spike=1ms@0.2", "loss=0.1,dup=0.1,retry=12"}, 6, 2, 1, 16)
	runSweep(t, cases)
}

// TestCoalescedSweep re-runs the sweep with per-destination coalescing
// on, so the notify/wait chunks and flags travel as batched frames: the
// delivery oracle must hold exactly-once and per-pair FIFO over
// KindBatch messages, the fence oracle must see batched operations
// complete before barrier exits, and the byte-level read-back proves
// within-batch apply order.
func TestCoalescedSweep(t *testing.T) {
	cases := Matrix([]armci.FabricKind{armci.FabricSim}, nil, []string{"queue", "hybrid"},
		sweepSyncs, nil, 6, 2, 1, 32)
	for i := range cases {
		cases[i].Coalesce = true
	}
	runSweep(t, cases)
}

// TestCoalescedFaultSweep puts the batched path under loss and
// duplication: a dropped or duplicated frame must retransmit / dedup as
// a unit — all entries exactly once — or the notify read-back and
// delivery oracle trip.
func TestCoalescedFaultSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("coalesced fault sweep skipped in -short")
	}
	faults := []string{"loss=0.15,retry=12", "dup=0.2", "loss=0.1,dup=0.1,retry=12"}
	cases := Matrix([]armci.FabricKind{armci.FabricSim}, nil, []string{"queue"},
		[]string{"barrier"}, faults, 6, 2, 1, 16)
	for i := range cases {
		cases[i].Coalesce = true
	}
	runSweep(t, cases)
}

// TestFaultPlanSweep sweeps a smaller seed range under loss,
// duplication and latency-spike plans: the delivery oracle must hold
// exactly-once, per-pair FIFO admission while the pipeline is
// retransmitting and deduplicating, and the fence oracle must stay
// silent on the real barriers under the same spikes that expose the
// mutated ones.
func TestFaultPlanSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep skipped in -short")
	}
	faults := []string{"loss=0.15,retry=12", "dup=0.2", "loss=0.1,dup=0.1,retry=12",
		"spike=1ms@0.2", "jitter=200us"}
	cases := Matrix([]armci.FabricKind{armci.FabricSim}, nil, []string{"queue", "hybrid"},
		[]string{"barrier"}, faults, 6, 2, 1, 16)
	runSweep(t, cases)
}

// TestLeaseCrashSweep drives the lease lock through holder-crash plans
// across a seed sweep: the designated rank fail-stops inside an acquire,
// and the surviving ranks must repair the lock and finish their critical
// sections with the modulo-lease oracle, the state-level counter and
// liveness all green.
func TestLeaseCrashSweep(t *testing.T) {
	faults := []string{"crashheld=1@1", "crashheld=2@2", "crashheld=5@3"}
	cases := Matrix([]armci.FabricKind{armci.FabricSim}, nil, []string{"lease"},
		[]string{"barrier"}, faults, 6, 2, 1, 16)
	runSweep(t, cases)
}

// TestQueueCrashFailsFastInHarness pins the other half of the contract:
// the same crashheld plan against the plain queuing lock must surface as
// a liveness violation (a rank-attributed fault abort), never pass and
// never hang.
func TestQueueCrashFailsFastInHarness(t *testing.T) {
	r := RunCase(Case{Fabric: armci.FabricSim, Alg: "queue", Sync: "barrier",
		Faults: "crashheld=1@1", Seed: 1})
	if r.Err != nil {
		t.Fatalf("case failed to run: %v", r.Err)
	}
	for _, v := range r.Violations {
		if v.Oracle == "liveness" {
			t.Logf("fail-fast surfaced as: %s", v)
			return
		}
	}
	t.Fatalf("queue lock under a holder crash produced no liveness violation: %v", r.Violations)
}

// TestConcurrentFabrics spot-checks the same workload on the goroutine
// and TCP fabrics: the oracles are schedule-agnostic, so they must hold
// on real concurrency too.
func TestConcurrentFabrics(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent fabrics skipped in -short")
	}
	for _, f := range []armci.FabricKind{armci.FabricChan, armci.FabricTCP} {
		for _, alg := range sweepAlgs {
			for _, coal := range []bool{false, true} {
				r := RunCase(Case{Fabric: f, Alg: alg, Sync: "barrier", Coalesce: coal})
				if r.Err != nil {
					t.Fatalf("%s/%s coalesce=%v: %v", f, alg, coal, r.Err)
				}
				for _, v := range r.Violations {
					t.Errorf("%s", v)
				}
			}
		}
	}
}

func runSweep(t *testing.T, cases []Case) {
	t.Helper()
	s := RunAll(cases, func(r Result) {
		if r.Err != nil {
			t.Fatalf("case %s failed to run: %v", r.Case.Reproducer(), r.Err)
		}
		for _, v := range r.Violations {
			t.Errorf("%s", v)
		}
	})
	if s.Events == 0 {
		t.Fatal("sweep recorded no protocol events; instrumentation is dark")
	}
	t.Logf("%d cases, %d protocol events, %d violations", s.Cases, s.Events, len(s.Violations))
}

// TestMutationsDetected proves the oracles catch the bugs they exist to
// find: every deliberately broken variant must be detected somewhere in
// a 64-seed sweep, and the violation must carry a minimal reproducer.
func TestMutationsDetected(t *testing.T) {
	for _, name := range Mutations() {
		name := name
		t.Run(name, func(t *testing.T) {
			r, ok := DetectMutation(name, 1, 64)
			if !ok {
				t.Fatalf("mutation %q survived 64 seeds: oracles are blind to this bug class", name)
			}
			v := r.Violations[0]
			if v.Case.Mutation != name {
				t.Fatalf("violation reproducer names mutation %q, want %q", v.Case.Mutation, name)
			}
			t.Logf("caught at seed %d: %s", r.Case.Seed, v)
		})
	}
}

// TestMutationsTargetExpectedOracle pins each mutation to the oracle
// family that should catch it, so a regression that silently reroutes
// detection (e.g. the state check catching what the fence oracle
// missed) is visible.
func TestMutationsTargetExpectedOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle-attribution sweep skipped in -short")
	}
	want := map[string]string{
		MutQueueSkipLinkWait:  "liveness",
		MutTicketOffByOne:     "mutual-exclusion",
		MutBarrierSkipStage2:  "fence",
		MutSyncOldSkipFence:   "fence",
		MutEventPoolRecycle:   "liveness",
		MutCoalesceReorder:    "state",
		MutLeaseStaleRelease:  "mutual-exclusion",
		MutAccLostUpdate:      "state",
		MutFlagBeforeData:     "state",
		MutKnomialSkipSubtree: "fence",
		MutReplStaleEpoch:     "state",
	}
	for name, oracle := range want {
		found := false
	seeds:
		for seed := int64(1); seed <= 64; seed++ {
			r := RunCase(MutationCase(name, seed))
			for _, v := range r.Violations {
				if v.Oracle == oracle {
					found = true
					break seeds
				}
			}
		}
		if !found {
			t.Errorf("mutation %q never tripped the %q oracle in 64 seeds", name, oracle)
		}
	}
}

// TestRunCaseRejectsBadConfig covers the validation path.
func TestRunCaseRejectsBadConfig(t *testing.T) {
	for _, c := range []Case{
		{Fabric: armci.FabricSim, Alg: "bogus"},
		{Fabric: armci.FabricSim, Sync: "bogus"},
		{Fabric: armci.FabricSim, Mutation: "bogus"},
		{Fabric: armci.FabricSim, Faults: "loss=notanumber"},
		{Fabric: armci.FabricSim, Workload: "bogus"},
		{Fabric: armci.FabricSim, Workload: "stencil:rows=0"},
		{Fabric: armci.FabricSim, Workload: "paramserver:hot=9"},   // hot >= procs (6)
		{Fabric: armci.FabricSim, Workload: "mixed", Alg: "queue"}, // workloads have no lock phase
		{Fabric: armci.FabricSim, Workload: "mixed", Mutation: MutTicketOffByOne},
		{Fabric: armci.FabricSim, Workload: "prodcons", Faults: "crashheld=1@1"},
		{Fabric: armci.FabricSim, Mutation: MutAccLostUpdate}, // hazard mutation needs its workload
	} {
		if r := RunCase(c); r.Err == nil {
			t.Errorf("case %+v: want setup error, got none", c)
		}
	}
}

// TestWorkloadSweep drives the four named workloads through the matrix:
// each body's own invariant oracle plus the trace-level oracles must
// stay silent across both sync variants and a seed sweep.
func TestWorkloadSweep(t *testing.T) {
	workloads := []string{"stencil", "paramserver", "prodcons", "mixed"}
	cases := Matrix([]armci.FabricKind{armci.FabricSim}, workloads, nil,
		sweepSyncs, nil, 6, 2, 1, 8)
	runSweep(t, cases)
}

// TestWorkloadSweepFaultsAndCoalesce spot-checks the named workloads on
// the degraded paths: batched wire frames, and loss/dup retransmission.
func TestWorkloadSweepFaultsAndCoalesce(t *testing.T) {
	if testing.Short() {
		t.Skip("workload fault sweep skipped in -short")
	}
	workloads := []string{"stencil", "paramserver", "prodcons", "mixed"}
	cases := Matrix([]armci.FabricKind{armci.FabricSim}, workloads, nil,
		[]string{"barrier"}, []string{"", "loss=0.1,dup=0.1,retry=12"}, 6, 2, 1, 4)
	for i := range cases {
		cases[i].Coalesce = cases[i].Faults == ""
	}
	runSweep(t, cases)
}

// TestSeedZeroIsFIFOBaseline documents the contract: seed 0 runs the
// kernel in FIFO order and must pass like any other seed.
func TestSeedZeroIsFIFOBaseline(t *testing.T) {
	r := RunCase(Case{Fabric: armci.FabricSim, Alg: "queue", Sync: "barrier", Seed: 0})
	if !r.Passed() {
		t.Fatalf("FIFO baseline failed: err=%v violations=%v", r.Err, r.Violations)
	}
}
