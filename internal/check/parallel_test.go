package check

import (
	"fmt"
	"strings"
	"testing"

	"armci"
)

// renderSweep runs the cases at the given worker count and renders every
// per-case result plus the aggregate into one string — the exact shape a
// CLI consumer observes (result order, violation order, counters).
func renderSweep(t *testing.T, cases []Case, workers int) string {
	t.Helper()
	var b strings.Builder
	s := RunAllParallel(cases, workers, func(r Result) {
		fmt.Fprintf(&b, "case %s events=%d err=%v panicked=%v\n",
			r.Case.Reproducer(), r.Events, r.Err, r.Panicked)
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  %s\n", v)
		}
	})
	fmt.Fprintf(&b, "sweep cases=%d events=%d violations=%d errs=%d panics=%d\n",
		s.Cases, s.Events, len(s.Violations), len(s.Errs), s.Panics)
	for _, v := range s.Violations {
		fmt.Fprintf(&b, "agg %s\n", v)
	}
	return b.String()
}

// TestParallelSweepMatchesSequential is the determinism contract of the
// parallel runner: over the same short matrix the short sweep test uses,
// -j 8 and -j 1 must produce byte-identical per-case results, result
// ordering and aggregate (violations in seed order), because each case
// owns its kernel and seed and the emitter reorders completions.
func TestParallelSweepMatchesSequential(t *testing.T) {
	cases := Matrix(
		[]armci.FabricKind{armci.FabricSim},
		nil, sweepAlgs, sweepSyncs, nil,
		6, 2, 0, 31,
	)
	if len(cases) != 320 {
		t.Fatalf("short matrix has %d cases, want 320", len(cases))
	}
	// Salt the matrix with mutated cases so both orderings carry real
	// violations, not just clean passes.
	for seed := int64(1); seed <= 4; seed++ {
		cases = append(cases, MutationCase(MutQueueSkipLinkWait, seed))
	}
	seq := renderSweep(t, cases, 1)
	par := renderSweep(t, cases, 8)
	if seq != par {
		t.Fatalf("parallel sweep output diverges from sequential:\n-- j=1 --\n%s\n-- j=8 --\n%s", seq, par)
	}
	if !strings.Contains(seq, "violation") {
		t.Fatal("salted matrix produced no violations; determinism check is vacuous")
	}
}

// TestParallelSweepRecoversPanics proves a worker panic neither kills
// the sweep nor vanishes: the panicking case is attributed to its
// reproducer tuple, counted in Panics, and surfaced through Errs, while
// every other case still runs.
func TestParallelSweepRecoversPanics(t *testing.T) {
	cases := []Case{
		{Fabric: armci.FabricSim, Alg: "queue", Seed: 1},
		MutationCase(MutPanicCase, 2),
		{Fabric: armci.FabricSim, Alg: "queue", Seed: 3},
	}
	for _, workers := range []int{1, 4} {
		s := RunAllParallel(cases, workers, nil)
		if s.Cases != 3 {
			t.Fatalf("j=%d: sweep ran %d of 3 cases", workers, s.Cases)
		}
		if s.Panics != 1 {
			t.Fatalf("j=%d: sweep counted %d panics, want 1", workers, s.Panics)
		}
		if len(s.Errs) != 1 {
			t.Fatalf("j=%d: sweep surfaced %d errors, want 1: %v", workers, len(s.Errs), s.Errs)
		}
		msg := s.Errs[0].Error()
		if !strings.Contains(msg, "panicked") || !strings.Contains(msg, "mutation=panic-case") {
			t.Fatalf("j=%d: panic error lacks reproducer attribution: %v", workers, msg)
		}
	}
}

// TestParallelSweepWorkerClamp covers the edge worker counts: zero
// (defaults to GOMAXPROCS), more workers than cases, and an empty case
// list.
func TestParallelSweepWorkerClamp(t *testing.T) {
	cases := []Case{{Fabric: armci.FabricSim, Alg: "queue", Seed: 1}}
	for _, workers := range []int{0, 16} {
		if s := RunAllParallel(cases, workers, nil); s.Cases != 1 || len(s.Violations) != 0 {
			t.Fatalf("workers=%d: cases=%d violations=%v", workers, s.Cases, s.Violations)
		}
	}
	if s := RunAllParallel(nil, 4, nil); s.Cases != 0 {
		t.Fatalf("empty sweep ran %d cases", s.Cases)
	}
}
