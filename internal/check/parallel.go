package check

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// RunAllParallel executes the cases on up to workers concurrent workers
// (workers <= 0 means GOMAXPROCS) and aggregates exactly like RunAll.
// Each case already owns its kernel and seed, so cases are independent;
// determinism of the sweep is preserved by construction:
//
//   - onResult is invoked in case order — a reorder buffer holds
//     early-finishing later cases until their predecessors report — so
//     progress output and violation reporting are byte-identical to a
//     sequential run at any worker count;
//   - the aggregate (violations, errors) is accumulated in case order
//     from the same buffer, never in completion order.
//
// A worker panic does not kill the sweep: it is recovered per case,
// attributed to the case's reproducer tuple, and surfaced as a Result
// with Panicked set and the panic value in Err, counted in
// SweepResult.Panics.
func RunAllParallel(cases []Case, workers int, onResult func(Result)) SweepResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cases) {
		workers = len(cases)
	}
	var s SweepResult
	if len(cases) == 0 {
		return s
	}

	// done holds finished results until their turn; next is the index the
	// emitter is waiting on. Workers pull case indices from an atomic
	// counter, park the result, and drain every in-order prefix that is
	// ready — whichever worker completes the missing index performs the
	// emission, so no dedicated emitter goroutine is needed.
	var (
		cursor atomic.Int64
		mu     sync.Mutex
		done   = make(map[int]Result, workers)
		next   int
	)
	emit := func(r Result) {
		s.Cases++
		s.Events += r.Events
		s.Violations = append(s.Violations, r.Violations...)
		if r.Err != nil {
			s.Errs = append(s.Errs, r.Err)
		}
		if r.Panicked {
			s.Panics++
		}
		if onResult != nil {
			onResult(r)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(cases) {
					return
				}
				r := safeRunCase(cases[i])
				mu.Lock()
				done[i] = r
				for {
					rr, ok := done[next]
					if !ok {
						break
					}
					delete(done, next)
					next++
					emit(rr)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return s
}

// safeRunCase runs one case, converting a panic anywhere under RunCase
// into a Result attributed to the case instead of crashing the sweep.
func safeRunCase(c Case) (r Result) {
	defer func() {
		if rec := recover(); rec != nil {
			r = Result{
				Case:     c.withDefaults(),
				Err:      fmt.Errorf("check: case %s panicked: %v", c.withDefaults().Reproducer(), rec),
				Panicked: true,
			}
		}
	}()
	return RunCase(c)
}
