package check

import (
	"fmt"
	"time"

	"armci"
	"armci/internal/collective"
	"armci/internal/msg"
	"armci/internal/proc"
	"armci/internal/shmem"
	"armci/internal/trace"
	"armci/internal/workload"
)

// Mutation self-test: deliberately broken variants of the algorithms
// under test. Each reintroduces a bug class the oracles exist to catch —
// a release that races its late-linking successor, an off-by-one ticket
// gate, a barrier whose fence stage is skipped — and the harness proves
// itself by detecting every one of them under a seed sweep. The variants
// are implemented here, against the public Proc surface, rather than in
// internal/core: production code carries no test-only broken paths.

// Mutation names.
const (
	// MutQueueSkipLinkWait: an MCS release that skips the wait for a
	// late-linking successor — when the compare&swap fails (a requester
	// swapped in but has not linked yet) it reads the next pointer once
	// and gives up, orphaning the successor, which spins forever.
	// Detected as a liveness violation (deadlock). The swap→link window
	// is narrower than the calibrated network's round trip, so the
	// mutation's sweep runs under a latency-spike fault plan that can
	// delay the successor's link store past the releaser's re-read —
	// the preemption a real machine provides for free.
	MutQueueSkipLinkWait = "queue-skip-link-wait"
	// MutTicketOffByOne: a ticket lock whose wait admits ticket t when
	// the counter reads t-1, so the next waiter enters while the current
	// holder is still inside. Detected by the mutual-exclusion oracle.
	MutTicketOffByOne = "ticket-off-by-one"
	// MutBarrierSkipStage2: a combined barrier that distributes op_init
	// (stage i) and synchronizes (stage iii) but skips waiting for the
	// local server's op_done to catch up (stage ii). Outstanding puts
	// escape the fence. On the calibrated network every put lands well
	// inside the all-reduce, so the sweep runs under a latency-spike
	// plan that keeps some puts in flight past the broken exit.
	// Detected by the fence oracle (and the state-level read-back).
	MutBarrierSkipStage2 = "barrier-skip-stage2"
	// MutSyncOldSkipFence: a GA_Sync that performs only the MPI barrier,
	// skipping AllFence entirely. Detected by the fence oracle.
	MutSyncOldSkipFence = "sync-old-skip-fence"
	// MutEventPoolRecycle: the algorithms are untouched — the bug is in
	// the harness substrate itself. The simulated kernel's event pool
	// recycles an event that is still sitting in the pending heap
	// (sim.Kernel.SetEventPoolHazard), so its callback is overwritten and
	// the original firing is lost or replayed. Lost wakeups strand
	// waiters; detected as a liveness violation (deadlock/deadline) or,
	// when a delivery callback is the casualty, by the delivery/state
	// oracles. Proves the oracles catch pooling-induced corruption, not
	// just protocol bugs.
	MutEventPoolRecycle = "event-pool-recycle"
	// MutCoalesceReorder: the coalescer flushes each batch with its
	// entries reversed (pipeline.CoalesceOpts.ReorderHazard), so a
	// notify flag coalesced behind its data chunks is applied first and
	// the consumer's spin wakes while the chunks are still landing.
	// Detected by the state oracle: the notify/wait phase reads a stale
	// chunk byte-for-byte. Proves batching preserves within-batch order,
	// not just per-pair frame order.
	MutCoalesceReorder = "coalescer-reorder"
	// MutLeaseStaleRelease: a lease lock whose release skips the epoch
	// compare&swap — it frees the lock unconditionally instead of
	// presenting its epoch, so a holder that a repair deposed while it
	// was slow still gives the lock away underneath the repair's
	// beneficiary. The case runs a crashheld plan (arming recovery) with
	// a TTL far below the critical-section time, so live holders are
	// routinely deposed and their broken releases hand the lock to a
	// second rank mid-tenure. Detected by the modulo-lease
	// mutual-exclusion oracle: a deposed rank's ordinary release, an
	// epoch granted twice, or an acquire while a never-deposed rank
	// holds.
	MutLeaseStaleRelease = "lease-stale-release"
	// MutAccLostUpdate: the parameter-server workload's atomic
	// Accumulate replaced by a non-atomic Get/Put read-modify-write
	// (workload.Hazards.AccLostUpdate). With every rank hammering the
	// same hot cells, two ranks routinely interleave their read and
	// write and one of the updates vanishes — the classic lost update no
	// trace-level oracle can see, because every individual message is
	// delivered exactly once and fenced correctly. Only the workload's
	// accumulate-sum exactness oracle (state) catches it.
	MutAccLostUpdate = "acc-lost-update"
	// MutFlagBeforeData: the producer-consumer workload's PutFlag
	// replaced by a plain word store of the flag issued before the data
	// chunks (workload.Hazards.FlagBeforeData). The store rides the
	// control pipe while the puts ride the server pipe, so the flag
	// overtakes its data and the consumer's WaitFlag wakes over a stale
	// buffer. Per-pair delivery and fence oracles stay green — nothing
	// was lost or reordered within a pipe; only the workload's
	// no-stale-read byte verification (state) catches it. The case runs
	// one rank per node so every hop crosses the wire.
	MutFlagBeforeData = "flag-before-data"
	// MutKnomialSkipSubtree: a combined barrier whose stage-iii k-nomial
	// exchange releases early — the parent skips receiving its last
	// child's subtree report but still sends every release, so the
	// ranks outside that subtree exit while the skipped subtree may
	// still be in stage ii waiting for its node's op_done. Stages i and
	// ii are correct, so a rank's own node is always fenced; the bug is
	// only visible when a spike-delayed put TO the skipped subtree's
	// node is still in flight as the root exits. The sweep's spike plan
	// is large-and-rare (5ms at 5%) rather than the barrier mutations'
	// 1ms at 20%: frequent spikes also stagger the ranks' barrier
	// entries by more than the spike itself, closing the window — the
	// delayed put must outlive the whole exchange, not just one stage.
	// Detected by the fence oracle (a pre-entry operation completing
	// after some rank's exit).
	MutKnomialSkipSubtree = "knomial-skip-subtree"
	// MutReplStaleEpoch: an elastic-replication recovery in which the
	// survivors skip the rollback to the cluster resume epoch — state
	// from the aborted epoch (a deposed view of the computation, the
	// in-memory analogue of applying a deposed incarnation's frame)
	// survives into the re-execution, so the non-idempotent fetch-adds
	// of the interrupted epoch apply twice. Detected by the state
	// oracle: the post-recovery cluster fingerprint diverges from the
	// pure-replay oracle every correct run must converge to. The byte
	// puts are idempotent and would mask the bug; only the fetch-add
	// half of the workload exposes it.
	MutReplStaleEpoch = "repl-stale-epoch"
	// MutPanicCase: not an algorithm bug — the workload panics outright
	// mid-case, simulating a harness defect. It exists to test that the
	// sweep runner recovers per case, attributes the panic to its
	// reproducer tuple, and exits non-zero instead of reporting a clean
	// sweep. Excluded from Mutations(): DetectMutation proves oracles,
	// not the runner.
	MutPanicCase = "panic-case"
)

// mutationSpec describes one broken variant: which real algorithm the
// base case names (for the reproducer), plus the broken factory for the
// component it replaces.
type mutationSpec struct {
	alg    string
	sync   string
	faults string // fault plan that widens the bug's race window
	lock   func(p *armci.Proc) armci.Mutex
	syncFn func(p *armci.Proc, epoch *int) func()
	// simHazard arms the simulated kernel's event-pool bug instead of
	// mutating an algorithm.
	simHazard bool
	// coalesceHazard runs the case with coalescing enabled and the
	// coalescer's within-batch reorder bug armed.
	coalesceHazard bool
	// harnessPanic makes RunCase panic mid-case (runner-recovery test).
	harnessPanic bool
	// leaseTTL overrides the lease TTL of the case (lease mutations use
	// a TTL below the critical-section time to force live deposals).
	leaseTTL time.Duration
	// csDelay stretches every critical section of the crash workload by
	// a virtual-time sleep, so a tenure reliably outlives the lease TTL
	// and waiters depose live holders mid-section.
	csDelay time.Duration
	// workload names the internal/workload spec the hazard lives in;
	// hazards are consulted only by named workload bodies.
	workload string
	hazards  workload.Hazards
	// ppn overrides the case's processes per node (0 = default).
	ppn int
	// elastic runs the elastic-replication recovery workload with the
	// skip-rollback hazard armed (the crash itself comes from the
	// case's crashrank fault plan).
	elastic bool
}

var mutationSpecs = map[string]mutationSpec{
	MutQueueSkipLinkWait: {alg: "queue", sync: "barrier", faults: "spike=1ms@0.2",
		lock: func(p *armci.Proc) armci.Mutex { return &brokenQueueLock{p: p, idx: 0} }},
	MutTicketOffByOne: {alg: "ticket", sync: "barrier",
		lock: func(p *armci.Proc) armci.Mutex { return &brokenTicket{p: p, idx: 0} }},
	MutBarrierSkipStage2: {alg: "queue", sync: "barrier", faults: "spike=1ms@0.2", syncFn: brokenBarrier},
	MutSyncOldSkipFence:  {alg: "queue", sync: "sync-old", syncFn: brokenSyncOld},
	MutEventPoolRecycle:  {alg: "queue", sync: "barrier", simHazard: true},
	MutCoalesceReorder:   {sync: "barrier", coalesceHazard: true},
	MutLeaseStaleRelease: {alg: "lease", sync: "barrier", faults: "crashheld=1@1",
		leaseTTL: 10 * time.Microsecond, csDelay: 300 * time.Microsecond,
		lock: func(p *armci.Proc) armci.Mutex { return &brokenLeaseLock{p: p, idx: 0, ttl: 10 * time.Microsecond} }},
	MutAccLostUpdate: {workload: "paramserver", sync: "barrier",
		hazards: workload.Hazards{AccLostUpdate: true}},
	MutFlagBeforeData: {workload: "prodcons", sync: "barrier", ppn: 1,
		hazards: workload.Hazards{FlagBeforeData: true}},
	MutKnomialSkipSubtree: {alg: "queue", sync: "barrier-knomial", faults: "spike=5ms@0.05",
		syncFn: brokenKnomialBarrier},
	MutReplStaleEpoch: {sync: "barrier", faults: "crashrank=1@2", elastic: true},
	MutPanicCase:      {alg: "queue", sync: "barrier", harnessPanic: true},
}

// Mutations returns the broken variant names, in a fixed order.
func Mutations() []string {
	return []string{MutQueueSkipLinkWait, MutTicketOffByOne, MutBarrierSkipStage2,
		MutSyncOldSkipFence, MutEventPoolRecycle, MutCoalesceReorder,
		MutLeaseStaleRelease, MutAccLostUpdate, MutFlagBeforeData,
		MutKnomialSkipSubtree, MutReplStaleEpoch}
}

// MutationWorkload reports the workload spec a mutation targets (""
// for lock/sync/harness mutations) and its processes-per-node override
// (0 = none), so sweep drivers can default their case shape to the
// mutation's own scenario the same way MutationCase does.
func MutationWorkload(name string) (workloadSpec string, ppn int) {
	m := mutationSpecs[name]
	return m.workload, m.ppn
}

// MutationIters is the per-rank critical-section count the mutation
// self-test sweeps at — deeper than the default case so narrow race
// windows get more chances per seed. Reproducer replays must use the
// same count (cmd/armci-check defaults -iters from it under -mutation).
const MutationIters = 6

// MutationCase builds the sweep template of one mutation at one seed.
func MutationCase(name string, seed int64) Case {
	m := mutationSpecs[name]
	return Case{
		Fabric:   armci.FabricSim,
		Alg:      m.alg,
		Workload: m.workload,
		Sync:     m.sync,
		Faults:   m.faults,
		PPN:      m.ppn,
		Coalesce: m.coalesceHazard,
		Seed:     seed,
		Iters:    MutationIters,
		Mutation: name,
		LeaseTTL: m.leaseTTL,
	}
}

// DetectMutation sweeps seeds until the mutation's bug is caught,
// returning the first violating result. ok is false when no seed in the
// range exposed the bug — a harness failure.
func DetectMutation(name string, seedLo, seedHi int64) (Result, bool) {
	for seed := seedLo; seed <= seedHi; seed++ {
		r := RunCase(MutationCase(name, seed))
		if len(r.Violations) > 0 {
			return r, true
		}
	}
	return Result{}, false
}

// --- trace recording for the mutated variants ---

func recordLockOp(p *armci.Proc, kind trace.OpKind, idx, prev int, ticket int64) {
	env := p.Env()
	env.Trace().RecordOp(trace.OpEvent{
		Kind: kind, Rank: env.Rank(), Node: env.Node(env.Rank()),
		Lock: idx, Prev: prev, Ticket: ticket, Time: env.Clock().Now(),
	})
}

func recordSyncOp(p *armci.Proc, kind trace.OpKind, epoch int) {
	env := p.Env()
	env.Trace().RecordOp(trace.OpEvent{
		Kind: kind, Rank: env.Rank(), Node: env.Node(env.Rank()),
		Prev: -1, Ticket: -1, Epoch: epoch, Time: env.Clock().Now(),
	})
}

// --- broken MCS queue lock ---

type brokenQueueLock struct {
	p   *armci.Proc
	idx int
}

func (q *brokenQueueLock) table() *proc.LockTable { return q.p.Locks() }

func (q *brokenQueueLock) qnode() shmem.Ptr {
	return q.table().QNode[q.idx][q.p.Rank()]
}

// Lock is the correct MCS acquire (the bug is in the release).
func (q *brokenQueueLock) Lock() {
	p := q.p
	env := p.Env()
	mine := q.qnode()
	minePacked := shmem.PackPtr(mine)

	p.StorePair(mine.Add(proc.QNodeNextHi), shmem.Pair{})
	prev := p.SwapPair(q.table().MCS[q.idx], minePacked).UnpackPtr()
	if prev.IsNil() {
		recordLockOp(p, trace.OpAcquire, q.idx, -1, -1)
		return
	}
	p.Store(mine.Add(proc.QNodeLocked), 1)
	p.StorePair(prev.Add(proc.QNodeNextHi), minePacked)
	locked := mine.Add(proc.QNodeLocked)
	env.WaitUntil("broken-mcs-acquire", func() bool {
		return env.Space().Load(locked) == 0
	})
	recordLockOp(p, trace.OpAcquire, q.idx, int(prev.Rank), -1)
}

// Unlock skips the late-link wait: when the compare&swap fails because a
// requester swapped itself in but has not linked yet, the correct
// release waits for the link; this one reads the next pointer once and
// gives up, orphaning the successor on its spin.
func (q *brokenQueueLock) Unlock() {
	p := q.p
	recordLockOp(p, trace.OpRelease, q.idx, -1, -1)
	mine := q.qnode()
	minePacked := shmem.PackPtr(mine)
	nextField := mine.Add(proc.QNodeNextHi)

	next := p.LoadPair(nextField).UnpackPtr()
	if next.IsNil() {
		observed := p.CompareAndSwapPair(q.table().MCS[q.idx], minePacked, shmem.Pair{})
		if observed == minePacked {
			return
		}
		// BUG: should WaitUntil the successor links; gives up instead.
		next = p.LoadPair(nextField).UnpackPtr()
		if next.IsNil() {
			return // successor orphaned: it spins on its flag forever
		}
	}
	p.Store(next.Add(proc.QNodeLocked), 0)
}

// --- broken lease lock ---

// brokenLeaseLock mirrors core.LeaseLock — MCS queue for wake hints, the
// lease state pair {epoch, tenant} as the sole source of truth, TTL
// timeouts arming repair once a crash is on record — except that its
// release skips the epoch compare&swap (the bug, in Unlock).
type brokenLeaseLock struct {
	p   *armci.Proc
	idx int
	ttl time.Duration

	epoch    int64
	acquires int
}

func (l *brokenLeaseLock) table() *proc.LockTable { return l.p.Locks() }

// Lock is the correct lease acquire (the bug is in the release).
func (l *brokenLeaseLock) Lock() {
	p := l.p
	env := p.Env()
	t := l.table()
	mine := t.LeaseQNode[l.idx][p.Rank()]
	minePacked := shmem.PackPtr(mine)

	p.StorePair(mine.Add(proc.QNodeNextHi), shmem.Pair{})
	p.Store(mine.Add(proc.QNodeLocked), 1)
	prev := p.SwapPair(t.LeaseTail[l.idx], minePacked).UnpackPtr()
	prevRank := -1
	useFlag := false
	if !prev.IsNil() {
		prevRank = int(prev.Rank)
		useFlag = true
		p.StorePair(prev.Add(proc.QNodeNextHi), minePacked)
	}

	locked := mine.Add(proc.QNodeLocked)
	for {
		if useFlag {
			woke := env.WaitUntilFor("broken-lease-acquire", func() bool {
				return env.Space().Load(locked) == 0
			}, l.ttl)
			if woke {
				useFlag = false
				if l.tryRegister(prevRank) {
					return
				}
				continue
			}
			if l.maybeRecover() {
				return
			}
			continue
		}
		if l.tryRegister(prevRank) {
			return
		}
		env.WaitUntilFor("broken-lease-backoff", func() bool { return false }, l.ttl)
		if l.maybeRecover() {
			return
		}
	}
}

func (l *brokenLeaseLock) tryRegister(prevRank int) bool {
	p := l.p
	me := int64(p.Rank())
	state := l.table().LeaseState[l.idx]
	st := p.LoadPair(state)
	for st.Lo <= 0 {
		obs := p.CompareAndSwapPair(state, st, shmem.Pair{Hi: st.Hi, Lo: me + 1})
		if obs == st {
			l.granted(st.Hi, prevRank)
			return true
		}
		st = obs
	}
	return false
}

func (l *brokenLeaseLock) granted(epoch int64, prevRank int) {
	p := l.p
	l.epoch = epoch
	p.Store(l.table().LeaseStamp[l.idx], int64(p.Env().Clock().Now()))
	recordLeaseOp(p, trace.OpAcquire, l.idx, prevRank, int(epoch))
	l.acquires++
	l.maybeCrashHeld()
}

// maybeCrashHeld mirrors the lock layer's crashheld hook: the mutated
// variant must still honor the plan that designates the dying holder.
func (l *brokenLeaseLock) maybeCrashHeld() {
	p := l.p
	env := p.Env()
	f := env.Faults()
	if f.CrashHeldAcquire == 0 || p.Rank() != f.CrashHeldRank || l.acquires != f.CrashHeldAcquire {
		return
	}
	recordLeaseOp(p, trace.OpCrash, l.idx, -1, 0)
	env.FailStop("crashheld: fail-stop holding lock (mutated lease)")
}

func (l *brokenLeaseLock) maybeRecover() bool {
	p := l.p
	env := p.Env()
	if env.CrashedRank() < 0 {
		return false
	}
	t := l.table()
	state := t.LeaseState[l.idx]
	st := p.LoadPair(state)
	stamp := time.Duration(p.Load(t.LeaseStamp[l.idx]))
	now := env.Clock().Now()
	if now-stamp <= l.ttl {
		return false
	}
	if st.Lo > 0 {
		holder := int(st.Lo) - 1
		obs := p.CompareAndSwapPair(state, st, shmem.Pair{Hi: st.Hi + 1, Lo: -st.Lo})
		if obs != st {
			return false
		}
		recordLeaseOp(p, trace.OpRepair, l.idx, holder, int(st.Hi)+1)
		p.Store(t.LeaseStamp[l.idx], int64(now))
		victim := t.LeaseQNode[l.idx][holder]
		next := p.LoadPair(victim.Add(proc.QNodeNextHi)).UnpackPtr()
		if !next.IsNil() {
			p.Store(next.Add(proc.QNodeLocked), 0)
		}
		return false
	}
	me := int64(p.Rank())
	if p.CompareAndSwapPair(state, st, shmem.Pair{Hi: st.Hi, Lo: me + 1}) == st {
		l.granted(st.Hi, -1)
		return true
	}
	return false
}

// Unlock frees the lock WITHOUT the epoch compare&swap: a deposed holder
// should lose that CAS and have its release rejected as stale; this one
// stores the freed state unconditionally, handing the lock away from
// under whoever the repair granted it to.
func (l *brokenLeaseLock) Unlock() {
	p := l.p
	env := p.Env()
	t := l.table()
	me := int64(p.Rank())
	recordLeaseOp(p, trace.OpRelease, l.idx, -1, int(l.epoch))
	// BUG: should be CompareAndSwapPair({epoch, me+1} -> {epoch+1,
	// -(me+1)}) with the stale-release fallback; frees unconditionally.
	p.StorePair(t.LeaseState[l.idx], shmem.Pair{Hi: l.epoch + 1, Lo: -(me + 1)})
	p.Store(t.LeaseStamp[l.idx], int64(env.Clock().Now()))

	// MCS dequeue and wake, as the real release does.
	mine := t.LeaseQNode[l.idx][p.Rank()]
	minePacked := shmem.PackPtr(mine)
	nextField := mine.Add(proc.QNodeNextHi)
	next := p.LoadPair(nextField).UnpackPtr()
	if next.IsNil() {
		if p.CompareAndSwapPair(t.LeaseTail[l.idx], minePacked, shmem.Pair{}) == minePacked {
			return
		}
		for !env.WaitUntilFor("broken-lease-release-link", func() bool {
			return !p.LoadPair(nextField).UnpackPtr().IsNil()
		}, l.ttl) {
			if env.CrashedRank() >= 0 {
				return
			}
		}
		next = p.LoadPair(nextField).UnpackPtr()
	}
	p.Store(next.Add(proc.QNodeLocked), 0)
}

// recordLeaseOp is recordLockOp with the lease epoch attached.
func recordLeaseOp(p *armci.Proc, kind trace.OpKind, idx, prev, epoch int) {
	env := p.Env()
	env.Trace().RecordOp(trace.OpEvent{
		Kind: kind, Rank: env.Rank(), Node: env.Node(env.Rank()),
		Lock: idx, Prev: prev, Ticket: -1, Epoch: epoch, Time: env.Clock().Now(),
	})
}

// --- broken ticket lock ---

type brokenTicket struct {
	p      *armci.Proc
	idx    int
	ticket int64
}

// Lock takes a ticket but admits one position early: counter >= ticket-1
// instead of == ticket, so the next waiter overlaps the current holder.
func (l *brokenTicket) Lock() {
	p := l.p
	env := p.Env()
	base := p.Locks().TicketCounter[l.idx]
	l.ticket = p.FetchAdd(base.Add(proc.TicketWord), 1)
	counter := base.Add(proc.CounterWord)
	env.WaitUntil("broken-ticket-lock", func() bool {
		return env.Space().Load(counter) >= l.ticket-1 // BUG: off by one
	})
	recordLockOp(p, trace.OpAcquire, l.idx, -1, l.ticket)
}

func (l *brokenTicket) Unlock() {
	p := l.p
	recordLockOp(p, trace.OpRelease, l.idx, -1, l.ticket)
	base := p.Locks().TicketCounter[l.idx]
	p.FetchAdd(base.Add(proc.CounterWord), 1)
}

// --- broken synchronization variants ---

// brokenBarrier distributes op_init and synchronizes but never waits for
// the local server's op_done (stage ii skipped), so puts still in flight
// at entry can land after some rank has already exited.
func brokenBarrier(p *armci.Proc, epoch *int) func() {
	return func() {
		*epoch++
		recordSyncOp(p, trace.OpSyncEnter, *epoch)
		sum := make([]int64, p.NumNodes())
		copy(sum, p.Engine().OpInit())
		p.Comm().AllReduceSumInt64(sum)
		// BUG: stage ii — the wait for op_done[myNode] >= sum[myNode] —
		// is skipped.
		p.Comm().Barrier(collective.BarrierAuto)
		recordSyncOp(p, trace.OpSyncExit, *epoch)
	}
}

// mutTagBase is a private tag space for the mutated barrier's raw
// point-to-point traffic: above any user tag the workloads use and below
// mp's reserved collectives (1<<30), so a report the bug leaves
// unconsumed can never be matched by a later receive.
const mutTagBase = 1 << 29

// brokenKnomialBarrier runs stages i and ii of the combined barrier
// correctly — distribute op_init, wait for the local server's op_done —
// then replaces the stage-iii k-nomial barrier with a variant whose
// gather phase skips the parent's LAST child: the parent releases the
// whole tree without proof that the skipped subtree reached the barrier.
// A rank's own node is always fenced (stage ii is intact), so only a
// spike-delayed put to the skipped subtree's node — still in flight
// while the subtree sits in stage ii — exposes the hole.
func brokenKnomialBarrier(p *armci.Proc, epoch *int) func() {
	return func() {
		*epoch++
		recordSyncOp(p, trace.OpSyncEnter, *epoch)
		env := p.Env()

		// Stage i, correct: distribute op_init.
		sum := make([]int64, p.NumNodes())
		copy(sum, p.Engine().OpInit())
		p.Comm().AllReduceSumInt64(sum)

		// Stage ii, correct: wait for the local server to catch up.
		myNode := env.Node(env.Rank())
		opDone := p.Engine().Layout().OpDone[myNode]
		want := sum[myNode]
		env.WaitUntil(fmt.Sprintf("mut-knomial-op_done>=%d", want), func() bool {
			return env.Space().Load(opDone) >= want
		})

		// Stage iii, broken: k-nomial gather/release over raw sends, but
		// the parent never awaits the last child's subtree report.
		n, me := p.Size(), p.Rank()
		if n > 1 {
			gather := mutTagBase + *epoch<<1
			release := gather + 1
			parent, children := collective.KnomialTree(n, me, 4)
			for i, child := range children {
				if i == len(children)-1 {
					continue // BUG: last subtree releases unproven
				}
				env.Recv(msg.MatchSrcTag(msg.KindSend, msg.User(child), gather))
			}
			if parent >= 0 {
				env.Send(msg.User(parent), &msg.Message{Kind: msg.KindSend, Tag: gather})
				env.Recv(msg.MatchSrcTag(msg.KindSend, msg.User(parent), release))
			}
			for _, child := range children {
				env.Send(msg.User(child), &msg.Message{Kind: msg.KindSend, Tag: release})
			}
		}
		recordSyncOp(p, trace.OpSyncExit, *epoch)
	}
}

// brokenSyncOld is GA_Sync without the AllFence: a bare MPI barrier
// carrying none of the fence guarantee.
func brokenSyncOld(p *armci.Proc, epoch *int) func() {
	return func() {
		*epoch++
		recordSyncOp(p, trace.OpSyncEnter, *epoch)
		// BUG: AllFence skipped entirely.
		p.Comm().Barrier(collective.BarrierAuto)
		recordSyncOp(p, trace.OpSyncExit, *epoch)
	}
}
