package check

import (
	"fmt"
	"sort"

	"armci/internal/msg"
	"armci/internal/trace"
)

// The oracles consume the run's op-event history in record order. Every
// record is taken under the trace collector's mutex at the instant the
// event happens, and the instrumented algorithms place their records so
// that each one is justified by a happens-before chain (acquire after
// the lock is held, release before the hand-off starts, completion
// before the counters that witness it advance, sync-enter before the
// first stage, sync-exit after the last). The record order is therefore
// consistent with the happens-before order of the run on every fabric,
// and a history that violates an invariant in record order violates it
// in the run.

// fifoKind selects the hand-off order check of a lock algorithm.
type fifoKind int

const (
	fifoNone   fifoKind = iota // QueueLockNoCAS: FIFO legitimately violable
	fifoQueue                  // MCS: acquires chain through predecessor ranks
	fifoTicket                 // Hybrid/Ticket: strictly increasing tickets
)

func fifoKindFor(alg string) fifoKind {
	switch alg {
	case "queue":
		return fifoQueue
	case "hybrid", "ticket":
		return fifoTicket
	}
	return fifoNone
}

// checkHistory runs every trace-level oracle over one run's history.
func checkHistory(events []trace.OpEvent, c Case) []Violation {
	var vs []Violation
	if leaseSemantics(c) {
		vs = append(vs, checkMutexLease(events, c)...)
	} else {
		vs = append(vs, checkMutex(events, c, fifoKindFor(c.Alg))...)
	}
	vs = append(vs, checkFence(events, c)...)
	vs = append(vs, checkDelivery(events, c)...)
	return vs
}

// leaseSemantics reports whether the case's lock history must be judged
// by the modulo-lease oracle: the lease algorithm, real or mutated.
func leaseSemantics(c Case) bool { return c.Alg == "lease" }

// checkMutex validates mutual exclusion and — per fifo kind — FIFO
// hand-off order, lock by lock, in one scan.
func checkMutex(events []trace.OpEvent, c Case, fifo fifoKind) []Violation {
	var vs []Violation
	holder := make(map[int]int)  // lock -> holding rank, -1 free
	lastAcq := make(map[int]int) // lock -> rank of the latest acquire
	lastTicket := make(map[int]int64)
	haveAcq := make(map[int]bool)
	for _, e := range events {
		switch e.Kind {
		case trace.OpAcquire:
			if h, ok := holder[e.Lock]; ok && h != -1 {
				vs = append(vs, Violation{Oracle: "mutual-exclusion", Case: c,
					Detail: fmt.Sprintf("event %d: rank %d acquired lock %d while rank %d holds it",
						e.Seq, e.Rank, e.Lock, h)})
			}
			holder[e.Lock] = e.Rank
			switch fifo {
			case fifoQueue:
				// An acquire with Prev == -1 took the lock free (the
				// predecessor's release emptied the queue first); any
				// other Prev must be the rank that acquired immediately
				// before — the MCS queue hands off in swap order.
				if haveAcq[e.Lock] && e.Prev != -1 && e.Prev != lastAcq[e.Lock] {
					vs = append(vs, Violation{Oracle: "fifo", Case: c,
						Detail: fmt.Sprintf("event %d: rank %d acquired lock %d behind rank %d, but the previous holder was rank %d (queue overtaken)",
							e.Seq, e.Rank, e.Lock, e.Prev, lastAcq[e.Lock])})
				}
			case fifoTicket:
				if haveAcq[e.Lock] && e.Ticket <= lastTicket[e.Lock] {
					vs = append(vs, Violation{Oracle: "fifo", Case: c,
						Detail: fmt.Sprintf("event %d: rank %d acquired lock %d with ticket %d after ticket %d (grants out of ticket order)",
							e.Seq, e.Rank, e.Lock, e.Ticket, lastTicket[e.Lock])})
				}
				lastTicket[e.Lock] = e.Ticket
			}
			lastAcq[e.Lock] = e.Rank
			haveAcq[e.Lock] = true
		case trace.OpRelease:
			if h, ok := holder[e.Lock]; !ok || h != e.Rank {
				was := "free"
				if ok && h != -1 {
					was = fmt.Sprintf("held by rank %d", h)
				}
				vs = append(vs, Violation{Oracle: "mutual-exclusion", Case: c,
					Detail: fmt.Sprintf("event %d: rank %d released lock %d it does not hold (lock %s)",
						e.Seq, e.Rank, e.Lock, was)})
			}
			holder[e.Lock] = -1
		}
	}
	return vs
}

// checkMutexLease validates the lease lock's "mutual exclusion modulo
// lease expiry" contract, lock by lock, in one scan:
//
//   - an acquire while a rank holds the lock is a violation, unless that
//     holder was first deposed by a repair event — leases make a second
//     holder legal only across a repair boundary;
//   - acquire epochs are strictly increasing: every tenure ends in
//     exactly one epoch advance (release or repair), so a repeated or
//     regressed epoch means two ranks were registered under one;
//   - a release must come from the recorded holder — a deposed rank's
//     ordinary release means the epoch check failed to reject it (the
//     protocol demands it surface as a stale-release instead);
//   - a stale-release may only come from a rank some repair deposed;
//   - a repair may only depose the recorded holder, and only after a
//     crash is on record — recovery must never arm in crash-free runs.
//
// FIFO hand-off: until the first crash the lease lock is MCS plus a
// registration CAS, so acquires chain through their predecessor ranks
// exactly as fifoQueue demands. After a crash, repairs and self-grants
// legitimately restart the chain, so the predecessor check stands down.
func checkMutexLease(events []trace.OpEvent, c Case) []Violation {
	var vs []Violation
	holder := make(map[int]int)  // lock -> holding rank, -1 free
	epoch := make(map[int]int)   // lock -> epoch of the latest acquire
	lastAcq := make(map[int]int) // lock -> rank of the latest acquire
	haveAcq := make(map[int]bool)
	deposed := make(map[int]map[int]bool) // lock -> ranks repairs deposed
	crashed := false
	for _, e := range events {
		switch e.Kind {
		case trace.OpCrash:
			crashed = true
		case trace.OpAcquire:
			if h, ok := holder[e.Lock]; ok && h != -1 {
				vs = append(vs, Violation{Oracle: "mutual-exclusion", Case: c,
					Detail: fmt.Sprintf("event %d: rank %d acquired lock %d while rank %d holds it and no repair deposed it",
						e.Seq, e.Rank, e.Lock, h)})
			}
			if haveAcq[e.Lock] && e.Epoch <= epoch[e.Lock] {
				vs = append(vs, Violation{Oracle: "mutual-exclusion", Case: c,
					Detail: fmt.Sprintf("event %d: rank %d acquired lock %d under epoch %d, not past epoch %d (epoch reused: two tenures under one lease)",
						e.Seq, e.Rank, e.Lock, e.Epoch, epoch[e.Lock])})
			}
			if !crashed && haveAcq[e.Lock] && e.Prev != -1 && e.Prev != lastAcq[e.Lock] {
				vs = append(vs, Violation{Oracle: "fifo", Case: c,
					Detail: fmt.Sprintf("event %d: rank %d acquired lock %d behind rank %d, but the previous holder was rank %d (queue overtaken with no crash on record)",
						e.Seq, e.Rank, e.Lock, e.Prev, lastAcq[e.Lock])})
			}
			holder[e.Lock] = e.Rank
			epoch[e.Lock] = e.Epoch
			lastAcq[e.Lock] = e.Rank
			haveAcq[e.Lock] = true
		case trace.OpRelease:
			if h, ok := holder[e.Lock]; !ok || h != e.Rank {
				was := "free"
				if ok && h != -1 {
					was = fmt.Sprintf("held by rank %d", h)
				}
				if deposed[e.Lock][e.Rank] {
					was += "; rank was deposed — the epoch check must reject this as stale"
				}
				vs = append(vs, Violation{Oracle: "mutual-exclusion", Case: c,
					Detail: fmt.Sprintf("event %d: rank %d released lock %d it does not hold (lock %s)",
						e.Seq, e.Rank, e.Lock, was)})
				continue // an invalid release frees nothing
			}
			holder[e.Lock] = -1
		case trace.OpStaleRelease:
			if !deposed[e.Lock][e.Rank] {
				vs = append(vs, Violation{Oracle: "mutual-exclusion", Case: c,
					Detail: fmt.Sprintf("event %d: rank %d had its release of lock %d rejected as stale, but no repair deposed it",
						e.Seq, e.Rank, e.Lock)})
			}
		case trace.OpRepair:
			if !crashed {
				vs = append(vs, Violation{Oracle: "mutual-exclusion", Case: c,
					Detail: fmt.Sprintf("event %d: rank %d repaired lock %d with no crash on record (recovery armed in a crash-free run)",
						e.Seq, e.Rank, e.Lock)})
			}
			if h, ok := holder[e.Lock]; ok && h != -1 && h != e.Prev {
				vs = append(vs, Violation{Oracle: "mutual-exclusion", Case: c,
					Detail: fmt.Sprintf("event %d: rank %d repaired lock %d by deposing rank %d, but rank %d holds it",
						e.Seq, e.Rank, e.Lock, e.Prev, h)})
			}
			if deposed[e.Lock] == nil {
				deposed[e.Lock] = make(map[int]bool)
			}
			deposed[e.Lock][e.Prev] = true
			holder[e.Lock] = -1 // the depose freed the lock under a new epoch
		}
	}
	return vs
}

// checkFence validates the fence-completion semantics of the global
// synchronization: pairing each rank's k-th sync-enter with every other
// rank's k-th, no rank's k-th exit may be recorded (i) before every rank's
// k-th enter — the barrier half — or (ii) while fewer completions have
// been recorded at some node than fence-counted operations were issued to
// it before the issuers' k-th enters — the fence half. Rounds the run did
// not finish (an aborted sweep case) are checked only as far as their
// recorded exits.
//
// Sync events are paired by per-rank occurrence order, not by the
// recorded Epoch value, so histories mixing differently-numbered sync
// variants (e.g. a mutated barrier next to the harness's own phases)
// still pair correctly as long as all ranks run the same call sequence.
func checkFence(events []trace.OpEvent, c Case) []Violation {
	var vs []Violation
	enters := make(map[int][]int) // rank -> event indices of its sync-enters
	exits := make(map[int][]int)
	issues := make(map[int]map[int][]int) // rank -> node -> issue indices
	completes := make(map[int][]int)      // node -> completion indices
	nodes := make(map[int]bool)
	for i, e := range events {
		switch e.Kind {
		case trace.OpSyncEnter:
			enters[e.Rank] = append(enters[e.Rank], i)
		case trace.OpSyncExit:
			exits[e.Rank] = append(exits[e.Rank], i)
		case trace.OpIssue:
			m := issues[e.Rank]
			if m == nil {
				m = make(map[int][]int)
				issues[e.Rank] = m
			}
			m[e.Node] = append(m[e.Node], i)
			nodes[e.Node] = true
		case trace.OpComplete:
			completes[e.Node] = append(completes[e.Node], i)
			nodes[e.Node] = true
		}
	}
	if len(enters) == 0 {
		return nil
	}
	// Only rounds every rank entered are well formed.
	rounds := -1
	for _, idxs := range enters {
		if rounds == -1 || len(idxs) < rounds {
			rounds = len(idxs)
		}
	}
	if len(enters) < c.Procs {
		// A rank recorded no sync at all (aborted run): nothing pairable.
		return nil
	}
	// countBefore(list, i): how many recorded indices precede event i.
	countBefore := func(list []int, i int) int {
		return sort.SearchInts(list, i)
	}
	for k := 0; k < rounds; k++ {
		// required[n]: fence-counted operations addressed to node n that
		// were issued before their issuer's k-th enter. The instrumented
		// barrier reads its op_init snapshot immediately after recording
		// the enter, so this is exactly the total stage 1 distributes.
		required := make(map[int]int)
		for n := range nodes {
			total := 0
			for q, ni := range issues {
				total += countBefore(ni[n], enters[q][k])
			}
			required[n] = total
		}
		for r, xs := range exits {
			if k >= len(xs) {
				continue
			}
			xi := xs[k]
			for q, es := range enters {
				if es[k] > xi {
					vs = append(vs, Violation{Oracle: "fence", Case: c,
						Detail: fmt.Sprintf("event %d: rank %d exited sync round %d before rank %d entered it (barrier ordering broken)",
							events[xi].Seq, r, k+1, q)})
				}
			}
			for n, want := range required {
				if got := countBefore(completes[n], xi); got < want {
					vs = append(vs, Violation{Oracle: "fence", Case: c,
						Detail: fmt.Sprintf("event %d: rank %d exited sync round %d with %d of %d operations complete at node %d (outstanding puts escaped the fence)",
							events[xi].Seq, r, k+1, got, want, n)})
				}
			}
		}
	}
	return vs
}

// checkDelivery validates per-pair FIFO and exactly-once admission: for
// every directed (src, dst) pair, the pipeline sequence numbers of
// admitted messages must be strictly increasing — a repeat is a duplicate
// that survived dedup, a decrease is reordering.
func checkDelivery(events []trace.OpEvent, c Case) []Violation {
	var vs []Violation
	type pairKey struct{ src, dst msg.Addr }
	last := make(map[pairKey]uint64)
	for _, e := range events {
		if e.Kind != trace.OpDeliver || e.PairSeq == 0 {
			continue
		}
		k := pairKey{e.Src, e.Dst}
		if prev, ok := last[k]; ok && e.PairSeq <= prev {
			what := "delivered out of order after"
			if e.PairSeq == prev {
				what = "delivered twice; duplicate survived dedup after"
			}
			vs = append(vs, Violation{Oracle: "delivery", Case: c,
				Detail: fmt.Sprintf("event %d: message %v->%v seq %d %s seq %d",
					e.Seq, e.Src, e.Dst, e.PairSeq, what, prev)})
		}
		if e.PairSeq > last[k] {
			last[k] = e.PairSeq
		}
	}
	return vs
}
