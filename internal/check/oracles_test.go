package check

import (
	"strings"
	"testing"

	"armci/internal/msg"
	"armci/internal/trace"
)

// evs assigns the global sequence numbers RecordOp would have and returns
// the slice — synthetic histories for oracle unit tests.
func evs(events ...trace.OpEvent) []trace.OpEvent {
	for i := range events {
		events[i].Seq = i + 1
	}
	return events
}

func acq(rank, lock, prev int, ticket int64) trace.OpEvent {
	return trace.OpEvent{Kind: trace.OpAcquire, Rank: rank, Lock: lock, Prev: prev, Ticket: ticket}
}

func rel(rank, lock int) trace.OpEvent {
	return trace.OpEvent{Kind: trace.OpRelease, Rank: rank, Lock: lock, Prev: -1, Ticket: -1}
}

func wantOracle(t *testing.T, vs []Violation, oracle, fragment string) {
	t.Helper()
	for _, v := range vs {
		if v.Oracle == oracle && strings.Contains(v.Detail, fragment) {
			return
		}
	}
	t.Fatalf("no %q violation mentioning %q in %v", oracle, fragment, vs)
}

func TestMutexOracleCleanHistory(t *testing.T) {
	h := evs(
		acq(0, 0, -1, -1), rel(0, 0),
		acq(1, 0, 0, -1), rel(1, 0), // queued behind rank 0
		acq(2, 0, -1, -1), rel(2, 0), // took it free
	)
	if vs := checkMutex(h, Case{}, fifoQueue); len(vs) != 0 {
		t.Fatalf("clean history flagged: %v", vs)
	}
}

func TestMutexOracleCatchesOverlap(t *testing.T) {
	h := evs(
		acq(0, 0, -1, -1),
		acq(1, 0, -1, -1), // while rank 0 still holds
		rel(0, 0),
		rel(1, 0),
	)
	vs := checkMutex(h, Case{}, fifoNone)
	wantOracle(t, vs, "mutual-exclusion", "while rank 0 holds")
}

func TestMutexOracleCatchesForeignRelease(t *testing.T) {
	h := evs(acq(0, 0, -1, -1), rel(1, 0))
	vs := checkMutex(h, Case{}, fifoNone)
	wantOracle(t, vs, "mutual-exclusion", "does not hold")
}

func TestFIFOOracleCatchesQueueOvertake(t *testing.T) {
	// Rank 2 claims it queued behind rank 0, but rank 1 held the lock in
	// between: the queue was overtaken.
	h := evs(
		acq(0, 0, -1, -1), rel(0, 0),
		acq(1, 0, 0, -1), rel(1, 0),
		acq(2, 0, 0, -1), rel(2, 0),
	)
	vs := checkMutex(h, Case{}, fifoQueue)
	wantOracle(t, vs, "fifo", "queue overtaken")
}

func TestFIFOOracleCatchesTicketOrder(t *testing.T) {
	h := evs(
		acq(0, 0, -1, 0), rel(0, 0),
		acq(2, 0, -1, 2), rel(2, 0), // ticket 2 granted before 1
		acq(1, 0, -1, 1), rel(1, 0),
	)
	vs := checkMutex(h, Case{}, fifoTicket)
	wantOracle(t, vs, "fifo", "out of ticket order")
}

func syncEv(kind trace.OpKind, rank, epoch int) trace.OpEvent {
	return trace.OpEvent{Kind: kind, Rank: rank, Epoch: epoch, Prev: -1, Ticket: -1}
}

func issueEv(rank, node int) trace.OpEvent {
	return trace.OpEvent{Kind: trace.OpIssue, Rank: rank, Node: node, Prev: -1, Ticket: -1}
}

func completeEv(rank, node int) trace.OpEvent {
	return trace.OpEvent{Kind: trace.OpComplete, Rank: rank, Node: node, Prev: -1, Ticket: -1}
}

func TestFenceOracleCleanHistory(t *testing.T) {
	h := evs(
		issueEv(0, 1),
		syncEv(trace.OpSyncEnter, 0, 1),
		syncEv(trace.OpSyncEnter, 1, 1),
		completeEv(0, 1),
		syncEv(trace.OpSyncExit, 0, 1),
		syncEv(trace.OpSyncExit, 1, 1),
	)
	if vs := checkFence(h, Case{Procs: 2}); len(vs) != 0 {
		t.Fatalf("clean history flagged: %v", vs)
	}
}

func TestFenceOracleCatchesEscapedPut(t *testing.T) {
	// Rank 0 issued a put to node 1 before entering; rank 1 exits while
	// it is still incomplete.
	h := evs(
		issueEv(0, 1),
		syncEv(trace.OpSyncEnter, 0, 1),
		syncEv(trace.OpSyncEnter, 1, 1),
		syncEv(trace.OpSyncExit, 1, 1), // before the completion lands
		completeEv(0, 1),
		syncEv(trace.OpSyncExit, 0, 1),
	)
	vs := checkFence(h, Case{Procs: 2})
	wantOracle(t, vs, "fence", "escaped the fence")
}

func TestFenceOracleCatchesEarlyExit(t *testing.T) {
	// Rank 0 exits its sync before rank 1 even entered: no barrier did
	// that.
	h := evs(
		syncEv(trace.OpSyncEnter, 0, 1),
		syncEv(trace.OpSyncExit, 0, 1),
		syncEv(trace.OpSyncEnter, 1, 1),
		syncEv(trace.OpSyncExit, 1, 1),
	)
	vs := checkFence(h, Case{Procs: 2})
	wantOracle(t, vs, "fence", "barrier ordering broken")
}

func deliverEv(srcID, dstID int, seq uint64) trace.OpEvent {
	return trace.OpEvent{Kind: trace.OpDeliver, Rank: -1, Prev: -1, Ticket: -1,
		Src: msg.Addr{ID: srcID}, Dst: msg.Addr{ID: dstID}, PairSeq: seq}
}

func TestDeliveryOracleCleanHistory(t *testing.T) {
	h := evs(
		deliverEv(0, 1, 1), deliverEv(0, 1, 2),
		deliverEv(1, 0, 1), // independent pair restarts at 1
		deliverEv(0, 1, 5), // gaps are fine (tail in flight elsewhere)
	)
	if vs := checkDelivery(h, Case{}); len(vs) != 0 {
		t.Fatalf("clean history flagged: %v", vs)
	}
}

func TestDeliveryOracleCatchesDuplicate(t *testing.T) {
	h := evs(deliverEv(0, 1, 1), deliverEv(0, 1, 1))
	vs := checkDelivery(h, Case{})
	wantOracle(t, vs, "delivery", "duplicate survived dedup")
}

func TestDeliveryOracleCatchesReorder(t *testing.T) {
	h := evs(deliverEv(0, 1, 2), deliverEv(0, 1, 1))
	vs := checkDelivery(h, Case{})
	wantOracle(t, vs, "delivery", "out of order")
}
