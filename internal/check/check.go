// Package check is the schedule-exploration conformance harness: it runs
// a workload — a lock algorithm exercising a shared counter plus put
// rounds separated by a global synchronization variant — across a sweep
// of kernel shuffle seeds and fabrics, captures the protocol-level event
// history (trace.OpEvent) the instrumented algorithms record, and
// validates the history against invariant oracles:
//
//   - mutual exclusion: at most one rank holds a lock between its
//     acquire and release records; for the lease lock the invariant is
//     "modulo lease expiry" — a second holder is legal only after a
//     repair event deposed the first, epochs never repeat, a deposed
//     rank's release must be rejected as stale, and repairs may only
//     happen once a fail-stop is on record;
//   - FIFO hand-off: MCS acquires chain through their predecessor ranks
//     (QueueLock, and LeaseLock until the first crash), ticket-ordered
//     algorithms grant in strictly increasing ticket order (Hybrid,
//     Ticket); QueueLockNoCAS is exempt — the paper's swap-release
//     legitimately trades FIFO away;
//   - fence completion: no rank exits a global synchronization while a
//     fence-counted operation issued before any rank's matching entry is
//     still incomplete, and no rank exits before every rank has entered;
//   - delivery: per directed (src, dst) pair, admitted messages carry
//     strictly increasing pipeline sequence numbers — per-pair FIFO and
//     exactly-once after duplicate suppression, including under loss and
//     duplication fault plans;
//   - state: the workload's own end-to-end assertions — the default
//     workload's critical-section counter total and put-round
//     read-back, or a named workload's oracle (stencil replay +
//     boundary checksum, accumulate-sum exactness, notify
//     no-stale-read, mixed-mode state replay; see internal/workload);
//   - liveness: the run finished without a deadlock, fault abort, or
//     deadline.
//
// A violation reports the minimal reproducer {fabric, procs, ppn, alg,
// faults, seed} that re-runs the exact failing schedule. The package
// also ships deliberately broken algorithm variants (mutations.go) whose
// detection proves the oracles can catch the bugs they exist to find.
package check

import (
	"fmt"
	"sync"
	"time"

	"armci"
	"armci/internal/workload"
)

// Case is one conformance scenario: a workload under one configuration.
// The zero value of optional fields is filled by withDefaults.
type Case struct {
	// Fabric is the execution substrate (sim/chan/tcp).
	Fabric armci.FabricKind
	// Procs is the number of user processes (default 6).
	Procs int
	// PPN is how many consecutive ranks share a node (default 2; forced
	// to Procs for the ticket algorithm, which is single-node only).
	PPN int
	// Alg is the lock algorithm exercised by the critical-section phase:
	// "queue", "hybrid", "ticket", "queue-nocas", "lease", or "" for no
	// lock phase.
	Alg string
	// Workload selects a named workload program in the internal/workload
	// grammar — "stencil", "paramserver:hot=2", "prodcons",
	// "mixed:skew=hot,seed=9", each with its own invariant oracle
	// reporting through the state channel. "" runs the default
	// three-phase lock/put/notify workload. Named workloads have no lock
	// phase (Alg must be empty) and no crashheld support.
	Workload string
	// Sync is the global synchronization variant: "barrier" (the paper's
	// combined ARMCI_Barrier, the default), "sync-old" (serialized
	// AllFence + MPI_Barrier), "sync-old-pipelined", or a topology-aware
	// flavor of the combined barrier — "barrier-knomial" (radix-4
	// k-nomial exchange stages), "barrier-hier" (two-level hierarchical
	// exchange through per-node leaders), "barrier-hier-nic"
	// (hierarchical with the servers answering fences at NIC cost).
	Sync string
	// Faults is a fault plan in the armci.ParseFaults grammar ("" = no
	// faults). A plan without an explicit seed= knob is seeded with Seed,
	// so a seed sweep also sweeps fault patterns.
	Faults string
	// Seed is the kernel schedule-shuffle seed (sim fabric; 0 = FIFO
	// baseline) and the default fault seed.
	Seed int64
	// Iters is the number of lock/unlock critical sections per rank
	// (default 3).
	Iters int
	// Rounds is the number of put+sync rounds (default 2).
	Rounds int
	// Preset is the cost model (default the paper's Myrinet 2000, so
	// stores have an in-flight window the fence oracles can observe).
	Preset armci.CostPreset
	// Coalesce enables per-destination operation coalescing, so the
	// workload's small puts and notify flags travel as batched frames and
	// the delivery / fence / state oracles run over the batched path.
	Coalesce bool
	// Mutation selects a deliberately broken algorithm variant (see
	// mutations.go); "" runs the real algorithms.
	Mutation string
	// LeaseTTL overrides the lease lock's TTL (0 = the core default).
	// Only meaningful with Alg "lease" or a lease-targeting mutation.
	LeaseTTL time.Duration
	// OpDeadline bounds every blocking operation; 0 means none on the
	// simulated fabric (its deadlock detector fails fast) and a generous
	// wall-clock bound on the concurrent fabrics.
	OpDeadline time.Duration
}

// withDefaults fills unset fields.
func (c Case) withDefaults() Case {
	if c.Procs <= 0 {
		c.Procs = 6
	}
	if c.PPN <= 0 {
		c.PPN = 2
	}
	if c.Alg == "ticket" {
		// The pure ticket lock requires every rank on the lock's home
		// node.
		c.PPN = c.Procs
	}
	if c.Sync == "" {
		c.Sync = "barrier"
	}
	if c.Iters <= 0 {
		c.Iters = 3
	}
	if c.Rounds <= 0 {
		c.Rounds = 2
	}
	if c.Preset == "" {
		c.Preset = armci.PresetMyrinet2000
	}
	if c.OpDeadline == 0 && c.Fabric != armci.FabricSim {
		c.OpDeadline = 30 * time.Second
	}
	return c
}

// Reproducer renders the minimal reproducer of the case: the tuple that
// re-runs the exact failing schedule.
func (c Case) Reproducer() string {
	s := fmt.Sprintf("{fabric=%s procs=%d ppn=%d alg=%s/%s faults=%q seed=%d",
		c.Fabric, c.Procs, c.PPN, c.Alg, c.Sync, c.Faults, c.Seed)
	if c.Workload != "" {
		s += fmt.Sprintf(" workload=%q", c.Workload)
	}
	if c.Coalesce {
		s += " coalesce"
	}
	if c.Mutation != "" {
		s += " mutation=" + c.Mutation
	}
	return s + "}"
}

// Violation is one invariant breach found in a run.
type Violation struct {
	// Oracle names the invariant: "mutual-exclusion", "fifo", "fence",
	// "delivery", "state" or "liveness".
	Oracle string
	// Detail describes the breach, referencing op-event sequence numbers
	// where applicable.
	Detail string
	// Case is the configuration that produced it.
	Case Case
}

func (v Violation) String() string {
	return fmt.Sprintf("%s violation: %s; reproducer %s", v.Oracle, v.Detail, v.Case.Reproducer())
}

// Result is the outcome of one case.
type Result struct {
	Case       Case
	Violations []Violation
	// Events is the number of protocol-level events the run recorded.
	Events int
	// Err is a setup error (bad case), not an oracle finding.
	Err error
	// Panicked reports that the case's worker panicked mid-run. Err
	// carries the recovered panic value, attributed to the reproducer.
	Panicked bool
}

// Passed reports whether the case ran and every oracle held.
func (r Result) Passed() bool { return r.Err == nil && len(r.Violations) == 0 }

// collector gathers state-level assertion failures from inside workload
// bodies (which run concurrently on the chan/tcp fabrics).
type collector struct {
	mu     sync.Mutex
	faults []string
}

func (c *collector) addf(format string, args ...any) {
	c.mu.Lock()
	c.faults = append(c.faults, fmt.Sprintf(format, args...))
	c.mu.Unlock()
}

func (c *collector) take() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.faults
	c.faults = nil
	return out
}

// RunCase executes one case and validates its history against every
// oracle.
func RunCase(c Case) Result {
	c = c.withDefaults()
	if err := validateCase(c); err != nil {
		return Result{Case: c, Err: err}
	}
	faults, err := armci.ParseFaults(c.Faults)
	if err != nil {
		return Result{Case: c, Err: fmt.Errorf("check: bad fault plan %q: %w", c.Faults, err)}
	}
	if faults.Enabled() && faults.Seed == 0 {
		faults.Seed = c.Seed
	}
	spec := mutationSpecs[c.Mutation]
	if c.LeaseTTL == 0 {
		// A lease-targeting mutation's TTL is part of the bug's trigger
		// but not of the reproducer tuple; default it from the spec so
		// replaying the tuple (armci-check -mutation ...) re-runs the
		// exact failing configuration.
		c.LeaseTTL = spec.leaseTTL
	}
	if spec.harnessPanic {
		panic(fmt.Sprintf("check: deliberate harness panic for case %s", c.Reproducer()))
	}
	col := &collector{}
	alg, nicFence := syncOptions(c.Sync)
	rep, runErr := armci.Run(armci.Options{
		Procs:           c.Procs,
		ProcsPerNode:    c.PPN,
		Fabric:          c.Fabric,
		Preset:          c.Preset,
		NumMutexes:      1,
		ScheduleSeed:    c.Seed,
		BarrierAlg:      alg,
		NICFenceOffload: nicFence,
		Coalesce: armci.Coalesce{
			Enabled:       c.Coalesce || spec.coalesceHazard,
			ReorderHazard: spec.coalesceHazard,
		},
		SimEventPoolHazard: spec.simHazard,
		CaptureTrace:       true,
		Faults:             faults,
		LeaseTTL:           c.LeaseTTL,
		OpDeadline:         c.OpDeadline,
	}, workloadBody(c, col))

	r := Result{Case: c}
	if runErr != nil {
		// A run that deadlocks, trips a fault abort, or exceeds a
		// deadline did not preserve liveness under this schedule.
		r.Violations = append(r.Violations, Violation{
			Oracle: "liveness", Detail: runErr.Error(), Case: c,
		})
	}
	for _, f := range col.take() {
		r.Violations = append(r.Violations, Violation{Oracle: "state", Detail: f, Case: c})
	}
	if rep != nil {
		events := rep.Stats.OpEvents()
		r.Events = len(events)
		r.Violations = append(r.Violations, checkHistory(events, c)...)
	}
	return r
}

// syncOptions maps a topology-aware sync variant to the run options it
// requires: the barrier exchange algorithm (which also drives the
// combined barrier's stage-1 allreduce pattern) and whether the data
// servers answer fence round-trips at NIC cost. The classic variants
// keep the defaults.
func syncOptions(sync string) (alg armci.BarrierAlg, nicFence bool) {
	switch sync {
	case "barrier-knomial":
		return armci.BarrierKnomial, false
	case "barrier-hier":
		return armci.BarrierHierarchical, false
	case "barrier-hier-nic":
		return armci.BarrierHierarchical, true
	}
	return armci.BarrierAuto, false
}

// validateCase rejects unknown algorithm / sync / mutation names before
// spending a run on them.
func validateCase(c Case) error {
	switch c.Alg {
	case "", "queue", "hybrid", "ticket", "queue-nocas", "lease":
	default:
		return fmt.Errorf("check: unknown lock algorithm %q", c.Alg)
	}
	switch c.Sync {
	case "barrier", "sync-old", "sync-old-pipelined",
		"barrier-knomial", "barrier-hier", "barrier-hier-nic":
	default:
		return fmt.Errorf("check: unknown sync variant %q", c.Sync)
	}
	m, knownMut := mutationSpecs[c.Mutation]
	if c.Mutation != "" && !knownMut {
		return fmt.Errorf("check: unknown mutation %q", c.Mutation)
	}
	if c.Workload != "" {
		sp, err := workload.Parse(c.Workload)
		if err != nil {
			return fmt.Errorf("check: bad workload: %w", err)
		}
		if err := sp.ValidateFor(c.Procs); err != nil {
			return fmt.Errorf("check: %w", err)
		}
		if c.Alg != "" {
			return fmt.Errorf("check: workload %q has no lock phase; Alg must be empty, got %q", c.Workload, c.Alg)
		}
		if m.lock != nil || m.syncFn != nil {
			return fmt.Errorf("check: mutation %q mutates the lock/sync phase, which workload %q does not run", c.Mutation, c.Workload)
		}
		if f, ferr := armci.ParseFaults(c.Faults); ferr == nil && f.CrashHeldAcquire > 0 {
			return fmt.Errorf("check: crashheld plans require the default lock workload, not %q", c.Workload)
		}
	} else if m.hazards.Armed() {
		return fmt.Errorf("check: mutation %q targets workload %q; set Workload", c.Mutation, m.workload)
	}
	return nil
}

// Matrix expands the cross product of fabrics × workloads × lock
// algorithms × sync variants × fault plans × seeds [seedLo, seedHi]
// into cases. Dimension slices may be empty to mean their single
// default ("" workload/alg, "barrier", no faults). A named workload has
// no lock phase, so it crosses syncs × faults × seeds with Alg empty
// instead of multiplying the algorithm dimension.
func Matrix(fabrics []armci.FabricKind, workloads, algs, syncs, faults []string, procs, ppn int, seedLo, seedHi int64) []Case {
	if len(workloads) == 0 {
		workloads = []string{""}
	}
	if len(algs) == 0 {
		algs = []string{""}
	}
	if len(syncs) == 0 {
		syncs = []string{"barrier"}
	}
	if len(faults) == 0 {
		faults = []string{""}
	}
	var cases []Case
	for _, f := range fabrics {
		for _, w := range workloads {
			as := algs
			if w != "" {
				as = []string{""}
			}
			for _, alg := range as {
				for _, sy := range syncs {
					for _, fp := range faults {
						for seed := seedLo; seed <= seedHi; seed++ {
							cases = append(cases, Case{
								Fabric: f, Procs: procs, PPN: ppn, Workload: w,
								Alg: alg, Sync: sy, Faults: fp, Seed: seed,
							})
						}
					}
				}
			}
		}
	}
	return cases
}

// SweepResult summarizes a RunAll pass.
type SweepResult struct {
	Cases      int
	Events     int
	Violations []Violation
	Errs       []error
	// Panics counts cases whose worker panicked (each also contributes
	// its recovered error to Errs). A sweep with Panics > 0 must not be
	// reported as clean.
	Panics int
}

// RunAll executes every case sequentially, invoking onResult (may be
// nil) after each. It is RunAllParallel with one worker.
func RunAll(cases []Case, onResult func(Result)) SweepResult {
	return RunAllParallel(cases, 1, onResult)
}
