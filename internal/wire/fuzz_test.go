package wire

import (
	"bytes"
	"reflect"
	"testing"

	"armci/internal/msg"
	"armci/internal/shmem"
)

// FuzzWireDecode feeds arbitrary bytes to the frame-body decoder. Decode
// must never panic or over-allocate, and any body it accepts must
// re-encode to an identical body — accepted inputs round-trip, so no two
// distinct messages share an encoding.
func FuzzWireDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01})
	// Seed with valid encodings so the fuzzer starts inside the format.
	for _, m := range sampleMessages() {
		f.Add(Encode(m)[4:])
	}
	// A truncated valid body and one with trailing garbage.
	body := Encode(sampleMessages()[0])[4:]
	f.Add(body[:len(body)/2])
	f.Add(append(append([]byte{}, body...), 0xff))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(m)[4:]
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted body does not round-trip:\n in=%x\nout=%x", data, re)
		}
	})
}

// FuzzHelloDecode covers the router handshake frame the same way.
func FuzzHelloDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeHello(msg.User(3))[4:])
	f.Add(EncodeHello(msg.ServerOf(1))[4:])
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeHello(data)
		if err != nil {
			return
		}
		if re := EncodeHello(a)[4:]; !bytes.Equal(re, data) {
			t.Fatalf("accepted hello does not round-trip: in=%x out=%x", data, re)
		}
	})
}

func sampleMessages() []*msg.Message {
	return []*msg.Message{
		{Kind: msg.KindPut, Src: msg.User(0), Dst: msg.ServerOf(1), Origin: 0, Seq: 1,
			Ptr: shmem.Ptr{Rank: 1, Kind: 1, Seg: 1, Off: 8}, Data: []byte{1, 2, 3}},
		{Kind: msg.KindRmw, Src: msg.User(2), Dst: msg.ServerOf(0), Origin: 2, Token: 7,
			Op: uint8(msg.RmwCASPair), Operands: [4]int64{1, 2, 3, 4}},
		{Kind: msg.KindGet, Src: msg.User(1), Dst: msg.ServerOf(1), N: 64,
			Stride: shmem.Strided{Count: []int{8, 4}, Stride: []int64{32}}},
		{Kind: msg.KindPutV, Src: msg.User(3), Dst: msg.ServerOf(0),
			Vec:  []msg.VecSeg{{Ptr: shmem.Ptr{Rank: 0, Kind: 1, Seg: 2, Off: 0}, N: 2}},
			Data: []byte{9, 9}},
		{Kind: msg.KindColl, Src: msg.User(4), Dst: msg.User(5), Tag: -3,
			Scale: 2.5, Data: []byte("reduce")},
	}
}

// TestWireRoundTripSamples pins the exact-equality round trip for
// representative messages of every field shape (the fuzz targets only
// prove re-encoding stability; this proves field fidelity).
func TestWireRoundTripSamples(t *testing.T) {
	for _, m := range sampleMessages() {
		got, err := Decode(Encode(m)[4:])
		if err != nil {
			t.Fatalf("decode(%v): %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip mutated message:\nsent %#v\ngot  %#v", m, got)
		}
	}
}
