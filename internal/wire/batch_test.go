package wire

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"

	"armci/internal/shmem"
)

func sampleBatches() [][]BatchEntry {
	return [][]BatchEntry{
		{
			{Op: BatchPut, Ptr: shmem.Ptr{Rank: 1, Kind: 1, Seg: 0, Off: 8}, Data: []byte{1, 2, 3, 4}},
		},
		{
			{Op: BatchPut, Ptr: shmem.Ptr{Rank: 2, Kind: 1, Seg: 1, Off: 0}, Data: []byte("abcdefgh")},
			{Op: BatchAcc, Ptr: shmem.Ptr{Rank: 2, Kind: 1, Seg: 1, Off: 64},
				AccOp: uint8(shmem.AccFloat64), Scale: 2.5, Data: make([]byte, 16)},
			{Op: BatchStore, Ptr: shmem.Ptr{Rank: 2, Kind: 2, Seg: 0, Off: 3},
				Data: binary.LittleEndian.AppendUint64(nil, 42)},
		},
		{
			{Op: BatchAcc, Ptr: shmem.Ptr{Rank: 0, Kind: 1, Seg: 3, Off: 16},
				AccOp: uint8(shmem.AccInt64), Scale: -1, Data: make([]byte, 8)},
			{Op: BatchPut, Ptr: shmem.Ptr{Rank: 0, Kind: 1, Seg: 3, Off: 24}, Data: []byte{9}},
		},
	}
}

// FuzzBatchDecode feeds arbitrary bytes to the batch-body decoder: it
// must never panic or over-allocate, and any body it accepts must
// re-encode byte-identically, so truncated, overlapping or padded entry
// tables can never alias a valid batch.
func FuzzBatchDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00})
	for _, entries := range sampleBatches() {
		f.Add(EncodeBatch(entries))
	}
	// A truncated valid body, one with trailing garbage, and one whose
	// second entry overlaps the first (offset rewound to 0).
	body := EncodeBatch(sampleBatches()[1])
	f.Add(body[:len(body)/2])
	f.Add(append(append([]byte{}, body...), 0xff))
	overlap := append([]byte{}, body...)
	binary.LittleEndian.PutUint32(overlap[batchHeaderSize+batchEntrySize+18:], 0)
	f.Add(overlap)

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecodeBatch(data)
		if err != nil {
			return
		}
		if re := EncodeBatch(entries); !bytes.Equal(re, data) {
			t.Fatalf("accepted batch body does not round-trip:\n in=%x\nout=%x", data, re)
		}
	})
}

// TestBatchRoundTrip pins field fidelity for representative batches.
func TestBatchRoundTrip(t *testing.T) {
	for _, entries := range sampleBatches() {
		got, err := DecodeBatch(EncodeBatch(entries))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, entries) {
			t.Errorf("round trip mutated batch:\nsent %#v\ngot  %#v", entries, got)
		}
	}
}

// TestBatchDecodeRejections drives the strict decoder through every
// malformed shape it must refuse: truncation, overlap, gaps, trailing
// bytes, zero entries and per-op field misuse.
func TestBatchDecodeRejections(t *testing.T) {
	valid := EncodeBatch(sampleBatches()[1])
	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte{}, valid...))
	}
	secondOff := batchHeaderSize + batchEntrySize + 18 // entry 1's offset field
	cases := []struct {
		name string
		body []byte
		want string
	}{
		{"empty", nil, "truncated"},
		{"zero entries", func() []byte {
			b := EncodeBatch(sampleBatches()[0])
			binary.LittleEndian.PutUint16(b, 0)
			return b[:batchHeaderSize]
		}(), "zero entries"},
		{"truncated table", valid[:batchHeaderSize+batchEntrySize-3], "body is"},
		{"truncated payload", valid[:len(valid)-2], "body is"},
		{"trailing bytes", append(append([]byte{}, valid...), 0xaa), "body is"},
		{"overlapping entries", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[secondOff:], 0)
			return b
		}), "tile the payload"},
		{"gapped entries", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[secondOff:], 9)
			return b
		}), "tile the payload"},
		{"unknown op", mutate(func(b []byte) []byte {
			b[batchHeaderSize] = 0x7f
			return b
		}), "unknown op"},
		{"put with acc fields", mutate(func(b []byte) []byte {
			b[batchHeaderSize+26] = uint8(shmem.AccInt64)
			return b
		}), "accumulate fields"},
		{"acc with bad element type", mutate(func(b []byte) []byte {
			b[batchHeaderSize+batchEntrySize+26] = 9
			return b
		}), "element type"},
		{"store with wrong width", func() []byte {
			return EncodeBatch([]BatchEntry{{
				Op: BatchStore, Ptr: shmem.Ptr{Kind: 2}, Data: []byte{1, 2, 3},
			}})
		}(), "want 8"},
	}
	for _, tc := range cases {
		if _, err := DecodeBatch(tc.body); err == nil {
			t.Errorf("%s: decoder accepted a malformed batch", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
