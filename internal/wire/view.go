// view.go — the membership messages of elastic runs. A coordinator-owned
// View names the cluster roster at one view epoch: per node, the
// incarnation currently admitted and its direct data-listener address.
// Views travel coordinator→worker on every membership change; ViewAck and
// EpochReport travel worker→coordinator during recovery and at sync-epoch
// barriers. All three use the same strict tiling discipline as the batch
// codec: a malformed body is a descriptive error, an accepted body
// re-encodes byte-identically.
package wire

import (
	"encoding/binary"
	"fmt"
)

// ViewMember is one node slot of a membership view.
type ViewMember struct {
	// Node is the SMP node index of the slot.
	Node int
	// Incarnation is the spawn count of the process currently admitted
	// for the slot (0 = initial launch).
	Incarnation uint32
	// Addr is the member's direct data-listener address, dialed lazily
	// by peers on first send; empty when the member routes through the
	// coordinator only.
	Addr string
}

// View is a coordinator-stamped membership roster. Epochs increase
// monotonically; a worker holding view e discards traffic from view
// epochs < e, which is what fences out in-flight messages from deposed
// incarnations.
type View struct {
	// Epoch is the view epoch, bumped on every membership change.
	Epoch uint64
	// Resume is the sync epoch survivors resume from after the change
	// (0 on the initial view).
	Resume uint64
	// Dead is the node slot being replaced by this view change, or -1
	// when no slot changed (initial view).
	Dead int
	// Members lists every node slot in node order.
	Members []ViewMember
}

// viewFixed is the fixed prefix of an encoded view: epoch(8) + resume(8)
// + dead(4) + member count(2).
const viewFixed = 22

// viewMemberFixed is the fixed prefix of one encoded member: node(4) +
// incarnation(4) + addr length(2).
const viewMemberFixed = 10

// EncodeView serializes v into a frame body (no length prefix; views
// travel inside cluster control frames that carry their own).
func EncodeView(v View) []byte {
	n := viewFixed
	for _, m := range v.Members {
		n += viewMemberFixed + len(m.Addr)
	}
	b := make([]byte, 0, n)
	b = binary.LittleEndian.AppendUint64(b, v.Epoch)
	b = binary.LittleEndian.AppendUint64(b, v.Resume)
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(v.Dead)))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(v.Members)))
	for _, m := range v.Members {
		b = binary.LittleEndian.AppendUint32(b, uint32(int32(m.Node)))
		b = binary.LittleEndian.AppendUint32(b, m.Incarnation)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(m.Addr)))
		b = append(b, m.Addr...)
	}
	return b
}

// DecodeView parses an encoded view, rejecting truncated bodies,
// oversized member counts and trailing garbage.
func DecodeView(body []byte) (View, error) {
	var v View
	if len(body) < viewFixed {
		return v, fmt.Errorf("wire: view truncated: %d of %d header bytes", len(body), viewFixed)
	}
	v.Epoch = binary.LittleEndian.Uint64(body)
	v.Resume = binary.LittleEndian.Uint64(body[8:])
	v.Dead = int(int32(binary.LittleEndian.Uint32(body[16:])))
	count := int(binary.LittleEndian.Uint16(body[20:]))
	if count*viewMemberFixed > len(body)-viewFixed {
		return v, fmt.Errorf("wire: view claims %d members, only %d bytes follow", count, len(body)-viewFixed)
	}
	pos := viewFixed
	v.Members = make([]ViewMember, count)
	for i := range v.Members {
		if pos+viewMemberFixed > len(body) {
			return v, fmt.Errorf("wire: view member %d truncated at byte %d of %d", i, pos, len(body))
		}
		m := &v.Members[i]
		m.Node = int(int32(binary.LittleEndian.Uint32(body[pos:])))
		m.Incarnation = binary.LittleEndian.Uint32(body[pos+4:])
		alen := int(binary.LittleEndian.Uint16(body[pos+8:]))
		pos += viewMemberFixed
		if pos+alen > len(body) {
			return v, fmt.Errorf("wire: view member %d address truncated: %d of %d bytes", i, len(body)-pos, alen)
		}
		m.Addr = string(body[pos : pos+alen])
		pos += alen
	}
	if pos != len(body) {
		return v, fmt.Errorf("wire: view carries %d trailing bytes", len(body)-pos)
	}
	return v, nil
}

// ViewAck is a worker's answer to a view change: which view it installed
// and where its durable state stands, so the coordinator can compute the
// resume epoch (max over survivors' committed sync epochs) and verify
// the dead rank's replica covers it.
type ViewAck struct {
	// Node is the answering worker's node index.
	Node int
	// Epoch is the view epoch being acknowledged.
	Epoch uint64
	// Committed is the last sync epoch this node completed.
	Committed uint64
	// Shadow is the sync epoch of the committed replica this node holds
	// for its left neighbor.
	Shadow uint64
	// Staged is the sync epoch of the neighbor delta staged on this
	// node but not yet applied to the shadow (0 when none).
	Staged uint64
}

// viewAckLen is the exact body size of an encoded view ack.
const viewAckLen = 36

// EncodeViewAck serializes a into a frame body.
func EncodeViewAck(a ViewAck) []byte {
	b := make([]byte, 0, viewAckLen)
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(a.Node)))
	b = binary.LittleEndian.AppendUint64(b, a.Epoch)
	b = binary.LittleEndian.AppendUint64(b, a.Committed)
	b = binary.LittleEndian.AppendUint64(b, a.Shadow)
	b = binary.LittleEndian.AppendUint64(b, a.Staged)
	return b
}

// DecodeViewAck parses an encoded view ack.
func DecodeViewAck(body []byte) (ViewAck, error) {
	var a ViewAck
	if len(body) != viewAckLen {
		return a, fmt.Errorf("wire: view ack of %d bytes, want %d", len(body), viewAckLen)
	}
	a.Node = int(int32(binary.LittleEndian.Uint32(body)))
	a.Epoch = binary.LittleEndian.Uint64(body[4:])
	a.Committed = binary.LittleEndian.Uint64(body[12:])
	a.Shadow = binary.LittleEndian.Uint64(body[20:])
	a.Staged = binary.LittleEndian.Uint64(body[28:])
	return a, nil
}

// EpochReport announces arrival at a sync epoch. Worker→coordinator it
// is a barrier arrival ("node N completed sync epoch E and staged its
// replica delta"); coordinator→worker it is the matching release ("every
// live node reached E — commit and proceed").
type EpochReport struct {
	// Node is the reporting node (ignored in the release direction).
	Node int
	// Epoch is the sync epoch reached.
	Epoch uint64
}

// epochReportLen is the exact body size of an encoded epoch report.
const epochReportLen = 12

// EncodeEpochReport serializes r into a frame body.
func EncodeEpochReport(r EpochReport) []byte {
	b := make([]byte, 0, epochReportLen)
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(r.Node)))
	b = binary.LittleEndian.AppendUint64(b, r.Epoch)
	return b
}

// DecodeEpochReport parses an encoded epoch report.
func DecodeEpochReport(body []byte) (EpochReport, error) {
	var r EpochReport
	if len(body) != epochReportLen {
		return r, fmt.Errorf("wire: epoch report of %d bytes, want %d", len(body), epochReportLen)
	}
	r.Node = int(int32(binary.LittleEndian.Uint32(body)))
	r.Epoch = binary.LittleEndian.Uint64(body[4:])
	return r, nil
}
