// Batch framing: the body carried by msg.KindBatch messages. A batch
// packs many small operations bound for one node's data server into a
// single wire frame:
//
//	u16  entry count (>= 1)
//	u32  payload length
//	per entry (35 bytes fixed):
//	    u8   op (BatchPut | BatchAcc | BatchStore)
//	    ptr  target location (17 bytes)
//	    u32  payload offset
//	    u32  payload length (>= 1)
//	    u8   accumulate element type (BatchAcc only, else 0)
//	    f64  accumulate scale      (BatchAcc only, else 0)
//	payload bytes (the entries' data, concatenated in order)
//
// The decoder is strict: entries must tile the payload exactly and in
// order — every entry's offset must equal the running end of the
// previous one and the last must end precisely at the payload length —
// so truncated, overlapping or gapped entry tables are rejected, and
// any accepted body re-encodes byte-identically (no two distinct
// batches share an encoding).
package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"armci/internal/shmem"
)

// BatchOp is the operation kind of one batch entry.
type BatchOp uint8

const (
	// BatchPut copies the entry payload into contiguous byte memory.
	BatchPut BatchOp = 1
	// BatchAcc atomically accumulates the entry payload (dst +=
	// scale*src) into contiguous memory; AccOp and Scale select the
	// element type and factor.
	BatchAcc BatchOp = 2
	// BatchStore writes one word cell; the payload is the value as 8
	// little-endian bytes. It is the put-with-flag notify path: the
	// server applies it after every earlier entry of the same batch, so
	// a consumer spinning on the flag observes the preceding puts.
	BatchStore BatchOp = 3
)

func (o BatchOp) String() string {
	switch o {
	case BatchPut:
		return "put"
	case BatchAcc:
		return "acc"
	case BatchStore:
		return "store"
	}
	return fmt.Sprintf("BatchOp(%d)", uint8(o))
}

// BatchEntry is one coalesced operation.
type BatchEntry struct {
	Op    BatchOp
	Ptr   shmem.Ptr
	AccOp uint8   // shmem.AccOp, BatchAcc only
	Scale float64 // BatchAcc only
	Data  []byte  // payload; 8 LE bytes (the value) for BatchStore
}

// batchEntrySize is the fixed per-entry table size:
// op(1) + ptr(17) + off(4) + len(4) + accop(1) + scale(8).
const batchEntrySize = 35

// batchHeaderSize is count(2) + payloadLen(4).
const batchHeaderSize = 6

// EncodeBatch serializes entries into a batch body (no length prefix —
// the body travels as a message payload, not a raw frame).
func EncodeBatch(entries []BatchEntry) []byte {
	return AppendBatch(nil, entries)
}

// AppendBatch appends the batch body for entries to b and returns the
// extended slice.
func AppendBatch(b []byte, entries []BatchEntry) []byte {
	if len(entries) == 0 || len(entries) > math.MaxUint16 {
		panic(fmt.Sprintf("wire: batch of %d entries out of range [1,%d]", len(entries), math.MaxUint16))
	}
	payload := 0
	for _, e := range entries {
		payload += len(e.Data)
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(entries)))
	b = binary.LittleEndian.AppendUint32(b, uint32(payload))
	off := 0
	for _, e := range entries {
		b = append(b, byte(e.Op))
		b = appendPtr(b, e.Ptr)
		b = binary.LittleEndian.AppendUint32(b, uint32(off))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(e.Data)))
		b = append(b, e.AccOp)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.Scale))
		off += len(e.Data)
	}
	for _, e := range entries {
		b = append(b, e.Data...)
	}
	return b
}

// DecodeBatch parses a batch body produced by AppendBatch. It rejects
// anything malformed: zero entries, unknown ops, zero-length or
// out-of-order entries, tables that overlap, leave gaps, or run past the
// payload, per-op field misuse, and trailing bytes.
func DecodeBatch(body []byte) ([]BatchEntry, error) {
	d := decoder{buf: body}
	count := int(d.u16())
	payloadLen := int(d.u32())
	if d.err != nil {
		return nil, d.err
	}
	if count == 0 {
		return nil, fmt.Errorf("wire: batch with zero entries")
	}
	entriesEnd := batchHeaderSize + count*batchEntrySize
	if want := entriesEnd + payloadLen; len(body) != want {
		return nil, fmt.Errorf("wire: batch body is %d bytes, want %d (%d entries + %d payload)",
			len(body), want, count, payloadLen)
	}
	entries := make([]BatchEntry, count)
	running := 0
	for i := range entries {
		e := &entries[i]
		e.Op = BatchOp(d.u8())
		e.Ptr = d.ptr()
		off := int(d.u32())
		n := int(d.u32())
		e.AccOp = d.u8()
		e.Scale = math.Float64frombits(d.u64())
		if d.err != nil {
			return nil, d.err
		}
		if n < 1 {
			return nil, fmt.Errorf("wire: batch entry %d has length %d", i, n)
		}
		if off != running {
			return nil, fmt.Errorf("wire: batch entry %d at offset %d, want %d (entries must tile the payload in order)", i, off, running)
		}
		if off+n > payloadLen {
			return nil, fmt.Errorf("wire: batch entry %d spans [%d,%d) past payload of %d bytes", i, off, off+n, payloadLen)
		}
		switch e.Op {
		case BatchPut:
			if e.AccOp != 0 || e.Scale != 0 {
				return nil, fmt.Errorf("wire: batch put entry %d carries accumulate fields", i)
			}
		case BatchAcc:
			if op := shmem.AccOp(e.AccOp); op != shmem.AccFloat64 && op != shmem.AccInt64 {
				return nil, fmt.Errorf("wire: batch acc entry %d has unknown element type %d", i, e.AccOp)
			}
		case BatchStore:
			if n != 8 {
				return nil, fmt.Errorf("wire: batch store entry %d carries %d payload bytes, want 8", i, n)
			}
			if e.AccOp != 0 || e.Scale != 0 {
				return nil, fmt.Errorf("wire: batch store entry %d carries accumulate fields", i)
			}
		default:
			return nil, fmt.Errorf("wire: batch entry %d has unknown op %d", i, uint8(e.Op))
		}
		e.Data = append([]byte(nil), body[entriesEnd+off:entriesEnd+off+n]...)
		running = off + n
	}
	if running != payloadLen {
		return nil, fmt.Errorf("wire: batch payload of %d bytes but entries cover %d", payloadLen, running)
	}
	return entries, nil
}
