// Package wire implements the binary framing used by the TCP fabric.
// Every protocol message is encoded as a length-prefixed frame:
//
//	u32  body length (little endian)
//	body ...
//
// The body is a fixed header followed by the variable-length stride
// descriptor and payload. Encoding is deliberately explicit — no
// reflection — so the format is stable, inspectable and cheap.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"armci/internal/msg"
	"armci/internal/shmem"
)

// MaxFrame bounds the size of an accepted frame body to keep a corrupted
// length prefix from provoking a huge allocation.
const MaxFrame = 64 << 20

// ClusterMagic opens every cluster hello frame ("ARMC" little endian). A
// peer presenting anything else is not an armci cluster endpoint — a port
// scanner, a stale connection, a different protocol — and is rejected
// before any other field is trusted.
const ClusterMagic = 0x434d5241

// ClusterVersion is the cluster handshake protocol revision this binary
// speaks. Bump it whenever the hello layout or any cluster control frame
// changes incompatibly; mismatched peers are rejected with a descriptive
// error instead of desynchronizing mid-run. Version 2 added the message
// epoch field, the worker incarnation number and the peer data-listener
// address (elastic membership).
const ClusterVersion = 2

// clusterHelloFixed is the fixed prefix of a cluster hello frame body:
// magic(4) + version(2) + node(4) + procs(4) + ppn(4) + cookie(8) +
// incarnation(4) + addrlen(2). The peer address bytes follow.
const clusterHelloFixed = 32

// ClusterHello is the versioned handshake a multi-process worker presents
// to the rendezvous coordinator before being admitted: which node it
// claims, the cluster shape it was launched with, and the shared-secret
// cookie proving it belongs to this run.
type ClusterHello struct {
	// Node is the SMP node index the worker claims to host.
	Node int
	// Procs is the total user-process count the worker was launched for.
	Procs int
	// ProcsPerNode is the rank-to-node grouping the worker assumes.
	ProcsPerNode int
	// Cookie is the per-launch shared secret; the coordinator rejects a
	// hello whose cookie does not match the run's.
	Cookie uint64
	// Incarnation counts how many times this node slot has been
	// (re)spawned: 0 for the initial launch, bumped by the coordinator
	// on every elastic respawn so stale traffic is attributable.
	Incarnation uint32
	// PeerAddr is the worker's direct data-listener address, dialed
	// lazily by peers on first send. Empty when the worker only routes
	// through the coordinator.
	PeerAddr string
}

// EncodeClusterHello serializes h into a ready-to-write frame (length
// prefix included).
func EncodeClusterHello(h ClusterHello) []byte {
	b := make([]byte, 0, clusterHelloFixed+len(h.PeerAddr))
	b = binary.LittleEndian.AppendUint32(b, ClusterMagic)
	b = binary.LittleEndian.AppendUint16(b, ClusterVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(h.Node)))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(h.Procs)))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(h.ProcsPerNode)))
	b = binary.LittleEndian.AppendUint64(b, h.Cookie)
	b = binary.LittleEndian.AppendUint32(b, h.Incarnation)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(h.PeerAddr)))
	b = append(b, h.PeerAddr...)
	return frame(b)
}

// DecodeClusterHello parses a cluster hello frame body, enforcing strict
// version negotiation: a wrong magic or protocol version is a descriptive
// error, never a silent desync, and truncated or oversized bodies are
// rejected before any field is interpreted.
func DecodeClusterHello(body []byte) (ClusterHello, error) {
	var h ClusterHello
	if len(body) < clusterHelloFixed {
		return h, fmt.Errorf("wire: cluster hello truncated: %d of %d bytes", len(body), clusterHelloFixed)
	}
	if magic := binary.LittleEndian.Uint32(body); magic != ClusterMagic {
		return h, fmt.Errorf("wire: bad cluster magic %#08x (want %#08x): peer is not an armci cluster endpoint", magic, uint32(ClusterMagic))
	}
	if v := binary.LittleEndian.Uint16(body[4:]); v != ClusterVersion {
		return h, fmt.Errorf("wire: cluster protocol version %d, this binary speaks %d: mixed armci builds in one launch", v, ClusterVersion)
	}
	h.Node = int(int32(binary.LittleEndian.Uint32(body[6:])))
	h.Procs = int(int32(binary.LittleEndian.Uint32(body[10:])))
	h.ProcsPerNode = int(int32(binary.LittleEndian.Uint32(body[14:])))
	h.Cookie = binary.LittleEndian.Uint64(body[18:])
	h.Incarnation = binary.LittleEndian.Uint32(body[26:])
	alen := int(binary.LittleEndian.Uint16(body[30:]))
	if len(body) != clusterHelloFixed+alen {
		return h, fmt.Errorf("wire: cluster hello of %d bytes, want %d for a %d-byte peer address", len(body), clusterHelloFixed+alen, alen)
	}
	h.PeerAddr = string(body[clusterHelloFixed:])
	return h, nil
}

// PeekDst extracts the destination address of an encoded message body
// without a full decode: it sits right after the kind (1 byte) and the
// source address (5 bytes). Routers use it to forward frames cheaply.
func PeekDst(body []byte) (msg.Addr, error) {
	if len(body) < 11 {
		return msg.Addr{}, fmt.Errorf("wire: message body of %d bytes too short to carry a destination", len(body))
	}
	return DecodeHello(body[6:11])
}

// Hello is the first frame an endpoint sends the router: just an address,
// encoded with the same primitives.
func EncodeHello(a msg.Addr) []byte {
	b := make([]byte, 0, 9)
	b = appendAddr(b, a)
	return frame(b)
}

// DecodeHello parses a hello frame body.
func DecodeHello(body []byte) (msg.Addr, error) {
	d := decoder{buf: body}
	a := d.addr()
	if d.err == nil && d.pos != len(body) {
		d.err = fmt.Errorf("wire: %d trailing bytes", len(body)-d.pos)
	}
	if d.err != nil {
		return msg.Addr{}, fmt.Errorf("wire: bad hello: %w", d.err)
	}
	return a, nil
}

// Encode serializes m into a ready-to-write frame (length prefix
// included). The pipeline stamps Seq, Sent and Arrival before a send,
// and the receive side needs all three (duplicate suppression, latency
// metrics, enforcing fault-injected arrival times), so they are carried
// on the wire. Dup and FaultDelay are sender-local diagnostics and are
// not transmitted.
func Encode(m *msg.Message) []byte {
	return AppendEncode(make([]byte, 0, 132+len(m.Data)), m)
}

// AppendEncode appends m's frame (length prefix included) to b and
// returns the extended slice. Callers on the hot path pass a reused
// buffer (b[:0]) so steady-state sends do not allocate per frame.
func AppendEncode(b []byte, m *msg.Message) []byte {
	start := len(b)
	b = append(b, 0, 0, 0, 0) // length prefix, backfilled below
	b = append(b, byte(m.Kind))
	b = appendAddr(b, m.Src)
	b = appendAddr(b, m.Dst)
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(m.Origin)))
	b = binary.LittleEndian.AppendUint64(b, m.Token)
	b = binary.LittleEndian.AppendUint64(b, m.Seq)
	b = binary.LittleEndian.AppendUint64(b, m.Epoch)
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(m.Sent)))
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(m.Arrival)))
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(m.Tag)))
	b = appendPtr(b, m.Ptr)
	b = appendStride(b, m.Stride)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(m.Vec)))
	for _, seg := range m.Vec {
		b = appendPtr(b, seg.Ptr)
		b = binary.LittleEndian.AppendUint32(b, uint32(int32(seg.N)))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(m.N)))
	b = append(b, m.Op)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.Scale))
	for _, v := range m.Operands {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Data)))
	b = append(b, m.Data...)
	binary.LittleEndian.PutUint32(b[start:], uint32(len(b)-start-4))
	return b
}

// Decode parses a frame body produced by Encode.
func Decode(body []byte) (*msg.Message, error) {
	d := decoder{buf: body}
	m := &msg.Message{}
	m.Kind = msg.Kind(d.u8())
	m.Src = d.addr()
	m.Dst = d.addr()
	m.Origin = int(int32(d.u32()))
	m.Token = d.u64()
	m.Seq = d.u64()
	m.Epoch = d.u64()
	m.Sent = time.Duration(int64(d.u64()))
	m.Arrival = time.Duration(int64(d.u64()))
	m.Tag = int(int64(d.u64()))
	m.Ptr = d.ptr()
	m.Stride = d.stride()
	if nv := int(d.u16()); nv > 0 && d.err == nil {
		m.Vec = make([]msg.VecSeg, nv)
		for i := range m.Vec {
			m.Vec[i].Ptr = d.ptr()
			m.Vec[i].N = int(int32(d.u32()))
		}
	}
	m.N = int(int32(d.u32()))
	m.Op = d.u8()
	m.Scale = math.Float64frombits(d.u64())
	for i := range m.Operands {
		m.Operands[i] = int64(d.u64())
	}
	n := int(d.u32())
	if d.err == nil && (n < 0 || n > len(d.buf)-d.pos) {
		d.err = fmt.Errorf("wire: payload length %d exceeds remaining %d bytes", n, len(d.buf)-d.pos)
	}
	if d.err == nil && n > 0 {
		m.Data = append([]byte(nil), d.buf[d.pos:d.pos+n]...)
		d.pos += n
	}
	if d.err == nil && d.pos != len(d.buf) {
		d.err = fmt.Errorf("wire: %d trailing bytes", len(d.buf)-d.pos)
	}
	if d.err != nil {
		return nil, d.err
	}
	return m, nil
}

// WriteFrame writes one pre-encoded frame to w.
func WriteFrame(w io.Writer, f []byte) error {
	_, err := w.Write(f)
	return err
}

// ReadFrame reads one frame body from r.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit %d", n, MaxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("wire: short frame: %w", err)
	}
	return body, nil
}

func frame(body []byte) []byte {
	out := make([]byte, 0, 4+len(body))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
	return append(out, body...)
}

func appendAddr(b []byte, a msg.Addr) []byte {
	flag := byte(0)
	if a.Server {
		flag = 1
	}
	b = append(b, flag)
	return binary.LittleEndian.AppendUint32(b, uint32(int32(a.ID)))
}

func appendPtr(b []byte, p shmem.Ptr) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(p.Rank))
	b = append(b, byte(p.Kind))
	b = binary.LittleEndian.AppendUint32(b, uint32(p.Seg))
	return binary.LittleEndian.AppendUint64(b, uint64(p.Off))
}

func appendStride(b []byte, s shmem.Strided) []byte {
	b = append(b, byte(len(s.Count)))
	for _, c := range s.Count {
		b = binary.LittleEndian.AppendUint32(b, uint32(int32(c)))
	}
	b = append(b, byte(len(s.Stride)))
	for _, st := range s.Stride {
		b = binary.LittleEndian.AppendUint64(b, uint64(st))
	}
	return b
}

type decoder struct {
	buf []byte
	pos int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("wire: truncated frame at byte %d of %d", d.pos, len(d.buf))
	}
}

func (d *decoder) u8() byte {
	if d.err != nil || d.pos+1 > len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.pos]
	d.pos++
	return v
}

func (d *decoder) u16() uint16 {
	if d.err != nil || d.pos+2 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.buf[d.pos:])
	d.pos += 2
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.pos+4 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.pos:])
	d.pos += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.pos+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.pos:])
	d.pos += 8
	return v
}

func (d *decoder) addr() msg.Addr {
	flag := d.u8()
	if flag > 1 && d.err == nil {
		d.err = fmt.Errorf("wire: bad endpoint flag %#x", flag)
	}
	id := int(int32(d.u32()))
	return msg.Addr{Server: flag == 1, ID: id}
}

func (d *decoder) ptr() shmem.Ptr {
	var p shmem.Ptr
	p.Rank = int32(d.u32())
	p.Kind = shmem.Kind(d.u8())
	p.Seg = int32(d.u32())
	p.Off = int64(d.u64())
	return p
}

func (d *decoder) stride() shmem.Strided {
	var s shmem.Strided
	nc := int(d.u8())
	if nc > 0 {
		s.Count = make([]int, nc)
		for i := range s.Count {
			s.Count[i] = int(int32(d.u32()))
		}
	}
	ns := int(d.u8())
	if ns > 0 {
		s.Stride = make([]int64, ns)
		for i := range s.Stride {
			s.Stride[i] = int64(d.u64())
		}
	}
	return s
}
