package wire

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"armci/internal/msg"
	"armci/internal/shmem"
)

// randomMessage builds a structurally valid random message.
func randomMessage(r *rand.Rand) *msg.Message {
	m := &msg.Message{
		Kind:   msg.Kind(1 + r.Intn(14)),
		Src:    msg.Addr{Server: r.Intn(2) == 0, ID: r.Intn(1 << 16)},
		Dst:    msg.Addr{Server: r.Intn(2) == 0, ID: r.Intn(1 << 16)},
		Origin: r.Intn(1 << 16),
		Token:  r.Uint64(),
		Tag:    int(int32(r.Uint32())),
		Op:     uint8(r.Intn(9)),
		Scale:  r.NormFloat64(),
		N:      r.Intn(1 << 20),
		Seq:    r.Uint64(),
		Sent:   time.Duration(r.Int63n(1 << 40)),
	}
	if r.Intn(2) == 0 {
		m.Arrival = time.Duration(r.Int63n(1 << 40))
	}
	if r.Intn(2) == 0 {
		m.Ptr = shmem.Ptr{
			Rank: int32(r.Intn(1 << 16)),
			Kind: shmem.Kind(1 + r.Intn(2)),
			Seg:  int32(1 + r.Intn(1<<16)),
			Off:  r.Int63n(1 << 40),
		}
	}
	for i := range m.Operands {
		m.Operands[i] = r.Int63() - r.Int63()
	}
	levels := r.Intn(4)
	if levels > 0 || r.Intn(2) == 0 {
		m.Stride = shmem.Strided{Count: []int{1 + r.Intn(256)}}
		for l := 0; l < levels; l++ {
			m.Stride.Count = append(m.Stride.Count, 1+r.Intn(16))
			m.Stride.Stride = append(m.Stride.Stride, r.Int63n(1<<30))
		}
	}
	if nv := r.Intn(5); nv > 0 {
		m.Vec = make([]msg.VecSeg, nv)
		for i := range m.Vec {
			m.Vec[i] = msg.VecSeg{
				Ptr: shmem.Ptr{Rank: int32(r.Intn(64)), Kind: shmem.KindByte,
					Seg: int32(1 + r.Intn(8)), Off: r.Int63n(1 << 20)},
				N: r.Intn(1 << 12),
			}
		}
	}
	if n := r.Intn(512); n > 0 {
		m.Data = make([]byte, n)
		r.Read(m.Data)
	}
	return m
}

// messagesEquivalent compares every wire-carried field.
func messagesEquivalent(a, b *msg.Message) bool {
	if a.Kind != b.Kind || a.Src != b.Src || a.Dst != b.Dst || a.Origin != b.Origin ||
		a.Token != b.Token || a.Tag != b.Tag || a.Ptr != b.Ptr || a.N != b.N ||
		a.Op != b.Op || a.Operands != b.Operands || !bytes.Equal(a.Data, b.Data) ||
		a.Seq != b.Seq || a.Sent != b.Sent || a.Arrival != b.Arrival {
		return false
	}
	if a.Scale != b.Scale && !(math.IsNaN(a.Scale) && math.IsNaN(b.Scale)) {
		return false
	}
	if len(a.Stride.Count) != len(b.Stride.Count) || len(a.Stride.Stride) != len(b.Stride.Stride) {
		return false
	}
	for i := range a.Stride.Count {
		if a.Stride.Count[i] != b.Stride.Count[i] {
			return false
		}
	}
	for i := range a.Stride.Stride {
		if a.Stride.Stride[i] != b.Stride.Stride[i] {
			return false
		}
	}
	if len(a.Vec) != len(b.Vec) {
		return false
	}
	for i := range a.Vec {
		if a.Vec[i] != b.Vec[i] {
			return false
		}
	}
	return true
}

// TestEncodeDecodeRoundTrip is the codec property test.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomMessage(r)
		frame := Encode(m)
		got, err := Decode(frame[4:])
		if err != nil {
			t.Logf("decode error: %v", err)
			return false
		}
		return messagesEquivalent(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTripThroughReader sends several frames through a byte stream
// and reads them back with ReadFrame, as the TCP fabric does.
func TestRoundTripThroughReader(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	var stream bytes.Buffer
	var sent []*msg.Message
	for i := 0; i < 20; i++ {
		m := randomMessage(r)
		sent = append(sent, m)
		if err := WriteFrame(&stream, Encode(m)); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range sent {
		body, err := ReadFrame(&stream)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := Decode(body)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !messagesEquivalent(want, got) {
			t.Fatalf("frame %d corrupted:\nsent %+v\ngot  %+v", i, want, got)
		}
	}
	if stream.Len() != 0 {
		t.Fatalf("%d trailing bytes in stream", stream.Len())
	}
}

func TestHelloRoundTrip(t *testing.T) {
	for _, a := range []msg.Addr{msg.User(0), msg.User(123), msg.ServerOf(0), msg.ServerOf(7)} {
		frame := EncodeHello(a)
		got, err := DecodeHello(frame[4:])
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if got != a {
			t.Fatalf("hello round trip %v -> %v", a, got)
		}
	}
}

// TestTruncatedFramesError: every prefix of a valid body must produce an
// error, never a garbage message or a panic.
func TestTruncatedFramesError(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	m := randomMessage(r)
	body := Encode(m)[4:]
	for cut := 0; cut < len(body); cut++ {
		if _, err := Decode(body[:cut]); err == nil {
			// A truncated payload length can still parse if the data
			// section happens to be self-consistent; only full length
			// must succeed.
			t.Fatalf("truncation at %d of %d decoded successfully", cut, len(body))
		}
	}
	if _, err := Decode(body); err != nil {
		t.Fatalf("full body failed: %v", err)
	}
}

func TestTrailingGarbageErrors(t *testing.T) {
	m := &msg.Message{Kind: msg.KindColl, Tag: 1}
	body := Encode(m)[4:]
	if _, err := Decode(append(body, 0xFF)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestReadFrameLimit(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // 4 GiB frame claim
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestReadFrameShortBody(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{16, 0, 0, 0, 1, 2, 3}) // claims 16 bytes, has 3
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("short body accepted")
	}
}

func TestPayloadLengthOverrun(t *testing.T) {
	m := &msg.Message{Kind: msg.KindPut, Data: []byte{1, 2, 3, 4}}
	body := Encode(m)[4:]
	// Corrupt the payload length field (last 4 bytes before data).
	body[len(body)-8] = 0xFF
	if _, err := Decode(body); err == nil {
		t.Fatal("overrun payload length accepted")
	}
}
