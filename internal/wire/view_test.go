package wire

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"
)

func sampleViews() []View {
	return []View{
		{Dead: -1},
		{Epoch: 1, Resume: 0, Dead: -1, Members: []ViewMember{
			{Node: 0, Incarnation: 0, Addr: "127.0.0.1:40001"},
			{Node: 1, Incarnation: 0, Addr: "127.0.0.1:40002"},
		}},
		{Epoch: 7, Resume: 12, Dead: 2, Members: []ViewMember{
			{Node: 0, Incarnation: 0, Addr: ""},
			{Node: 1, Incarnation: 2},
			{Node: 2, Incarnation: 5, Addr: "[::1]:51200"},
			{Node: 3, Incarnation: 0, Addr: "host-03.rack7:9944"},
		}},
	}
}

// TestViewRoundTrip pins field fidelity for representative views, acks
// and epoch reports.
func TestViewRoundTrip(t *testing.T) {
	for _, v := range sampleViews() {
		got, err := DecodeView(EncodeView(v))
		if err != nil {
			t.Fatalf("decode(%+v): %v", v, err)
		}
		if len(got.Members) == 0 {
			got.Members = nil
		}
		if !reflect.DeepEqual(got, v) {
			t.Errorf("round trip mutated view:\nsent %#v\ngot  %#v", v, got)
		}
	}
	for _, a := range []ViewAck{
		{},
		{Node: 3, Epoch: 2, Committed: 9, Shadow: 9, Staged: 10},
	} {
		got, err := DecodeViewAck(EncodeViewAck(a))
		if err != nil {
			t.Fatalf("decode(%+v): %v", a, err)
		}
		if got != a {
			t.Errorf("round trip mutated view ack: sent %+v got %+v", a, got)
		}
	}
	for _, r := range []EpochReport{{}, {Node: 1, Epoch: 42}} {
		got, err := DecodeEpochReport(EncodeEpochReport(r))
		if err != nil {
			t.Fatalf("decode(%+v): %v", r, err)
		}
		if got != r {
			t.Errorf("round trip mutated epoch report: sent %+v got %+v", r, got)
		}
	}
}

// TestViewDecodeRejections drives the strict decoder through the
// malformed shapes it must refuse: truncation at every layer, inflated
// member counts and trailing garbage.
func TestViewDecodeRejections(t *testing.T) {
	good := EncodeView(sampleViews()[2])
	for name, tc := range map[string]struct {
		body []byte
		want string
	}{
		"empty":            {nil, "truncated"},
		"short header":     {good[:viewFixed-1], "truncated"},
		"cut member":       {good[:viewFixed+viewMemberFixed-2], "members"},
		"cut address":      {good[:len(good)-1], "truncated"},
		"trailing garbage": {append(append([]byte{}, good...), 0xee), "trailing"},
		"inflated count": {func() []byte {
			b := append([]byte{}, good...)
			binary.LittleEndian.PutUint16(b[20:], 600)
			return b
		}(), "members"},
	} {
		if _, err := DecodeView(tc.body); err == nil {
			t.Errorf("%s: decoder accepted a malformed view", name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
	if _, err := DecodeViewAck(make([]byte, viewAckLen-1)); err == nil {
		t.Error("decoder accepted a truncated view ack")
	}
	if _, err := DecodeEpochReport(make([]byte, epochReportLen+1)); err == nil {
		t.Error("decoder accepted an oversized epoch report")
	}
}

// FuzzMembershipDecode covers the elastic membership frames: none of the
// decoders may panic, and any body one accepts must re-encode to an
// identical body — the same strict-tiling contract FuzzBatchDecode pins
// for coalesced data frames.
func FuzzMembershipDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00})
	for _, v := range sampleViews() {
		f.Add(EncodeView(v))
	}
	f.Add(EncodeViewAck(ViewAck{Node: 1, Epoch: 3, Committed: 8, Shadow: 8, Staged: 9}))
	f.Add(EncodeEpochReport(EpochReport{Node: 2, Epoch: 5}))
	// A truncated valid body, one with trailing garbage, and one whose
	// member count was inflated past the bytes that follow.
	body := EncodeView(sampleViews()[1])
	f.Add(body[:len(body)/2])
	f.Add(append(append([]byte{}, body...), 0xff))
	inflated := append([]byte{}, body...)
	binary.LittleEndian.PutUint16(inflated[20:], 0xffff)
	f.Add(inflated)

	f.Fuzz(func(t *testing.T, data []byte) {
		if v, err := DecodeView(data); err == nil {
			if re := EncodeView(v); !bytes.Equal(re, data) {
				t.Fatalf("accepted view does not round-trip:\n in=%x\nout=%x", data, re)
			}
		}
		if a, err := DecodeViewAck(data); err == nil {
			if re := EncodeViewAck(a); !bytes.Equal(re, data) {
				t.Fatalf("accepted view ack does not round-trip:\n in=%x\nout=%x", data, re)
			}
		}
		if r, err := DecodeEpochReport(data); err == nil {
			if re := EncodeEpochReport(r); !bytes.Equal(re, data) {
				t.Fatalf("accepted epoch report does not round-trip:\n in=%x\nout=%x", data, re)
			}
		}
	})
}
