package wire

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"armci/internal/msg"
)

func TestClusterHelloRoundTrip(t *testing.T) {
	for _, h := range []ClusterHello{
		{},
		{Node: 3, Procs: 8, ProcsPerNode: 1, Cookie: 0xdeadbeefcafef00d},
		{Node: 0, Procs: 1, ProcsPerNode: 4, Cookie: 1},
		{Node: 2, Procs: 4, ProcsPerNode: 1, Cookie: 7, Incarnation: 3, PeerAddr: "127.0.0.1:45123"},
	} {
		got, err := DecodeClusterHello(EncodeClusterHello(h)[4:])
		if err != nil {
			t.Fatalf("decode(%+v): %v", h, err)
		}
		if got != h {
			t.Errorf("round trip mutated hello: sent %+v got %+v", h, got)
		}
	}
}

// TestClusterHelloStrictness pins the negotiation failure modes: every
// malformed hello must be rejected with an error naming the problem, so a
// version skew or a stray peer surfaces as a diagnosis, not a desync.
func TestClusterHelloStrictness(t *testing.T) {
	good := EncodeClusterHello(ClusterHello{Node: 1, Procs: 4, ProcsPerNode: 1, Cookie: 9})[4:]

	for name, tc := range map[string]struct {
		body []byte
		want string // substring the error must carry
	}{
		"empty":     {nil, "truncated"},
		"truncated": {good[:len(good)-1], "truncated"},
		"oversized": {append(append([]byte{}, good...), 0), "peer address"},
		"bad magic": {func() []byte {
			b := append([]byte{}, good...)
			binary.LittleEndian.PutUint32(b, 0x12345678)
			return b
		}(), "magic"},
		"future version": {func() []byte {
			b := append([]byte{}, good...)
			binary.LittleEndian.PutUint16(b[4:], ClusterVersion+1)
			return b
		}(), "version"},
	} {
		_, err := DecodeClusterHello(tc.body)
		if err == nil {
			t.Errorf("%s: decode accepted a malformed hello", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
}

func TestPeekDst(t *testing.T) {
	m := &msg.Message{Kind: msg.KindPut, Src: msg.User(2), Dst: msg.ServerOf(5), Data: []byte{1}}
	body := Encode(m)[4:]
	dst, err := PeekDst(body)
	if err != nil {
		t.Fatalf("PeekDst: %v", err)
	}
	if dst != m.Dst {
		t.Errorf("PeekDst = %v, want %v", dst, m.Dst)
	}
	if _, err := PeekDst(body[:10]); err == nil {
		t.Error("PeekDst accepted a body too short to carry a destination")
	}
}

// FuzzClusterHelloDecode covers the rendezvous handshake frame: the
// decoder must never panic, and any body it accepts must re-encode to an
// identical body.
func FuzzClusterHelloDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x41, 0x52, 0x4d, 0x43})
	f.Add(EncodeClusterHello(ClusterHello{})[4:])
	f.Add(EncodeClusterHello(ClusterHello{Node: 7, Procs: 16, ProcsPerNode: 2, Cookie: ^uint64(0)})[4:])
	good := EncodeClusterHello(ClusterHello{Node: 1, Procs: 4, ProcsPerNode: 1, Cookie: 3})[4:]
	f.Add(good[:len(good)/2])
	f.Add(append(append([]byte{}, good...), 0xff))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeClusterHello(data)
		if err != nil {
			return
		}
		if re := EncodeClusterHello(h)[4:]; !bytes.Equal(re, data) {
			t.Fatalf("accepted cluster hello does not round-trip:\n in=%x\nout=%x", data, re)
		}
	})
}
