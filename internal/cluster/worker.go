package cluster

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"armci/internal/msg"
	"armci/internal/pipeline"
	"armci/internal/wire"
)

// Handlers are the worker-side callbacks a Session invokes from its
// read loop. Both must be safe for concurrent use and non-blocking
// enough not to stall the connection.
type Handlers struct {
	// Data receives the encoded message body of every data frame routed
	// to this worker. nil drops data frames.
	Data func(body []byte)
	// Fault is invoked exactly once if the launch fails — a peer was
	// declared dead (the error carries the dead worker's first rank) or
	// the coordinator itself vanished. nil ignores faults.
	Fault func(*pipeline.FaultError)
}

// Session is one worker's connection to its launch: it joins via the
// hello handshake, sends and receives routed data frames, heartbeats
// the coordinator, participates in the drain protocol and surfaces
// cluster faults.
type Session struct {
	env WorkerEnv
	cc  *clusterConn
	h   Handlers

	drainCh   chan struct{}
	drainOnce sync.Once
	pingDone  chan struct{}
	closeOnce sync.Once

	mu     sync.Mutex
	closed bool
	err    *pipeline.FaultError
	fOnce  sync.Once
}

// Join dials the coordinator (retrying until the join timeout, since
// the worker may start before the launcher finishes binding), presents
// the versioned hello, and blocks until the roster broadcast — i.e.
// until every node of the launch has arrived. On return the session is
// live: heartbeats flow and data frames are delivered to h.Data.
func Join(env WorkerEnv, h Handlers) (*Session, error) {
	if err := env.validate(); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(env.joinTimeout())
	var conn net.Conn
	for {
		var err error
		conn, err = net.Dial("tcp", env.Addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("cluster: node %d cannot reach coordinator at %s: %w", env.Node, env.Addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	cc := &clusterConn{c: conn}
	hello := wire.EncodeClusterHello(wire.ClusterHello{
		Node:         env.Node,
		Procs:        env.Procs,
		ProcsPerNode: env.ProcsPerNode,
		Cookie:       env.Cookie,
	})[4:] // strip the outer length prefix; writeFrame re-frames
	if err := cc.writeFrame(frameHello, hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: node %d hello: %w", env.Node, err)
	}

	conn.SetReadDeadline(deadline)
	var early [][]byte // data frames that overtook our roster write
join:
	for {
		body, err := wire.ReadFrame(conn)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("cluster: node %d: no roster from coordinator within %v: %w", env.Node, env.joinTimeout(), err)
		}
		if len(body) == 0 {
			continue
		}
		switch body[0] {
		case frameReject:
			conn.Close()
			return nil, fmt.Errorf("cluster: node %d rejected by coordinator: %s", env.Node, body[1:])
		case frameRoster:
			if rerr := checkRoster(body[1:], env); rerr != nil {
				conn.Close()
				return nil, rerr
			}
			break join
		case frameData:
			// The coordinator broadcasts the roster conn by conn, so a
			// fast peer that already saw its roster can have a data frame
			// routed here first. Hold it for delivery once the handshake
			// completes.
			mb, derr := dataMsgBody(body[1:])
			if derr != nil {
				conn.Close()
				return nil, fmt.Errorf("cluster: node %d: %w", env.Node, derr)
			}
			early = append(early, mb)
		case frameFault:
			// The launch already failed (a peer died mid-rendezvous).
			rank, reason := parseFault(body[1:])
			conn.Close()
			return nil, &pipeline.FaultError{Rank: rank, Op: reason, Kind: pipeline.FaultPeerLost}
		default:
			conn.Close()
			return nil, fmt.Errorf("cluster: node %d: unexpected frame %#x before roster", env.Node, body[0])
		}
	}
	conn.SetReadDeadline(time.Time{})

	s := &Session{
		env:      env,
		cc:       cc,
		h:        h,
		drainCh:  make(chan struct{}),
		pingDone: make(chan struct{}),
	}
	for _, mb := range early {
		if h.Data != nil {
			h.Data(mb)
		}
	}
	go s.readLoop()
	go s.pingLoop()
	return s, nil
}

// Env returns the worker env the session joined with.
func (s *Session) Env() WorkerEnv { return s.env }

// SendMsg encodes m and ships it to the coordinator for routing to the
// node hosting m.Dst. The encode reuses the connection's frame buffer,
// so steady-state sends do not allocate. The caller must have stamped
// the message through the pipeline first (Src, Dst, Seq).
func (s *Session) SendMsg(m *msg.Message) error {
	cc := s.cc
	cc.mu.Lock()
	b := append(cc.buf[:0], 0, 0, 0, 0, frameData)
	b = wire.AppendEncode(b, m) // appends the inner [len][msg body] frame
	binary.LittleEndian.PutUint32(b, uint32(len(b)-4))
	cc.buf = b
	err := wire.WriteFrame(cc.c, b)
	cc.mu.Unlock()
	if err != nil {
		if fe := s.Err(); fe != nil {
			return fe
		}
		return fmt.Errorf("cluster: node %d send: %w", s.env.Node, err)
	}
	return nil
}

// UserDone tells the coordinator this node's user ranks all finished.
func (s *Session) UserDone() error { return s.cc.writeFrame(frameUserDone, nil) }

// Drained is closed when the coordinator broadcasts the drain: every
// node's users finished, servers may stop.
func (s *Session) Drained() <-chan struct{} { return s.drainCh }

// Err returns the cluster fault, if one was surfaced.
func (s *Session) Err() *pipeline.FaultError {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close tears the session down. A close after the drain is the normal
// end of a worker's life; the coordinator treats the connection loss as
// benign.
func (s *Session) Close() {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		close(s.pingDone)
		s.cc.c.Close()
	})
}

func (s *Session) drained() bool {
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

// fail surfaces a cluster fault exactly once.
func (s *Session) fail(fe *pipeline.FaultError) {
	s.fOnce.Do(func() {
		s.mu.Lock()
		s.err = fe
		s.mu.Unlock()
		if s.h.Fault != nil {
			s.h.Fault(fe)
		}
	})
}

// readLoop drains coordinator frames: data to the handler, drain to the
// drain channel, fault broadcasts (and unexpected connection loss) to
// the fault handler.
func (s *Session) readLoop() {
	for {
		body, err := wire.ReadFrame(s.cc.c)
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || s.drained() {
				return // normal teardown
			}
			s.fail(&pipeline.FaultError{
				Rank: s.env.FirstRank(),
				Op:   fmt.Sprintf("cluster: node %d lost the coordinator (%v)", s.env.Node, err),
				Kind: pipeline.FaultPeerLost,
			})
			return
		}
		if len(body) == 0 {
			continue
		}
		switch body[0] {
		case frameData:
			mb, derr := dataMsgBody(body[1:])
			if derr != nil {
				s.fail(&pipeline.FaultError{
					Rank: s.env.FirstRank(),
					Op:   derr.Error(),
					Kind: pipeline.FaultPeerLost,
				})
				return
			}
			if s.h.Data != nil {
				s.h.Data(mb)
			}
		case frameDrain:
			s.drainOnce.Do(func() { close(s.drainCh) })
		case frameFault:
			rank, reason := parseFault(body[1:])
			s.fail(&pipeline.FaultError{Rank: rank, Op: reason, Kind: pipeline.FaultPeerLost})
			return
		case framePing, frameRoster:
			// Harmless repeats.
		}
	}
}

// pingLoop keeps the coordinator's liveness deadline fed.
func (s *Session) pingLoop() {
	t := time.NewTicker(s.env.hbInterval())
	defer t.Stop()
	for {
		select {
		case <-s.pingDone:
			return
		case <-t.C:
			if err := s.cc.writeFrame(framePing, nil); err != nil {
				return // read loop diagnoses the loss
			}
		}
	}
}
