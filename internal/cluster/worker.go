package cluster

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"armci/internal/msg"
	"armci/internal/pipeline"
	"armci/internal/wire"
)

// Handlers are the worker-side callbacks a Session invokes from its
// read loop. Both must be safe for concurrent use and non-blocking
// enough not to stall the connection.
type Handlers struct {
	// Data receives the encoded message body of every data frame routed
	// to this worker. nil drops data frames.
	Data func(body []byte)
	// Fault is invoked exactly once if the launch fails — a peer was
	// declared dead (the error carries the dead worker's first rank) or
	// the coordinator itself vanished. nil ignores faults.
	Fault func(*pipeline.FaultError)
	// View receives every membership view the coordinator broadcasts:
	// the initial roster view and, on elastic runs, each membership
	// change. nil ignores views.
	View func(wire.View)
	// Resume receives the recovery hand-off after a membership change:
	// the replaced node slot and the sync epoch to resume from. nil
	// ignores it.
	Resume func(wire.EpochReport)
	// Release receives cluster barrier releases by barrier id. nil
	// ignores them.
	Release func(id uint64)
}

// Session is one worker's connection to its launch: it joins via the
// hello handshake, sends and receives routed data frames, heartbeats
// the coordinator, participates in the drain protocol and surfaces
// cluster faults.
type Session struct {
	env WorkerEnv
	cc  *clusterConn
	h   Handlers

	drainCh   chan struct{}
	drainOnce sync.Once
	pingDone  chan struct{}
	closeOnce sync.Once

	mu     sync.Mutex
	closed bool
	err    *pipeline.FaultError
	fOnce  sync.Once

	// Direct peer routing state. Workers advertise a data listener in
	// their hello; the coordinator redistributes the addresses through
	// membership views, and the first send to a node dials it directly —
	// lazily, so pairs that never communicate never hold a connection.
	// The route per destination node is sticky (direct once dialed,
	// coordinator once a dial failed) until a view change resets it, so
	// one node pair's frames stay on a single FIFO path.
	peerLn    net.Listener
	peerMu    sync.Mutex
	peerConns map[int]*clusterConn // node → dialed direct connection
	peerAddrs []string             // node → advertised listener address
	peerInc   []uint32             // node → incarnation, from the last view
	peerBad   map[int]bool         // node → route via coordinator (sticky)
}

// Join dials the coordinator (retrying until the join timeout, since
// the worker may start before the launcher finishes binding), presents
// the versioned hello, and blocks until the roster broadcast — i.e.
// until every node of the launch has arrived. On return the session is
// live: heartbeats flow and data frames are delivered to h.Data.
func Join(env WorkerEnv, h Handlers) (*Session, error) {
	if err := env.validate(); err != nil {
		return nil, err
	}
	// The direct data listener opens before the hello so its address can
	// be advertised; peers dial it lazily on their first send to this
	// node.
	peerLn, lerr := Listen("127.0.0.1:0")
	if lerr != nil {
		return nil, fmt.Errorf("cluster: node %d peer listener: %w", env.Node, lerr)
	}
	deadline := time.Now().Add(env.joinTimeout())
	var conn net.Conn
	for {
		var err error
		conn, err = net.Dial("tcp", env.Addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			peerLn.Close()
			return nil, fmt.Errorf("cluster: node %d cannot reach coordinator at %s: %w", env.Node, env.Addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	cc := &clusterConn{c: conn}
	hello := wire.EncodeClusterHello(wire.ClusterHello{
		Node:         env.Node,
		Procs:        env.Procs,
		ProcsPerNode: env.ProcsPerNode,
		Cookie:       env.Cookie,
		Incarnation:  env.Incarnation,
		PeerAddr:     peerLn.Addr().String(),
	})[4:] // strip the outer length prefix; writeFrame re-frames
	fail := func(err error) (*Session, error) {
		conn.Close()
		peerLn.Close()
		return nil, err
	}
	if err := cc.writeFrame(frameHello, hello); err != nil {
		return fail(fmt.Errorf("cluster: node %d hello: %w", env.Node, err))
	}

	conn.SetReadDeadline(deadline)
	var early [][]byte // data frames that overtook our roster write
	var initView *wire.View
	haveRoster := false
	// The handshake completes on the roster plus the initial membership
	// view: peer addresses must be installed before the first send, so a
	// node pair never switches between coordinator and direct routing
	// mid-stream.
	for initView == nil || !haveRoster {
		body, err := wire.ReadFrame(conn)
		if err != nil {
			return fail(fmt.Errorf("cluster: node %d: no roster from coordinator within %v: %w", env.Node, env.joinTimeout(), err))
		}
		if len(body) == 0 {
			continue
		}
		switch body[0] {
		case frameReject:
			return fail(fmt.Errorf("cluster: node %d rejected by coordinator: %s", env.Node, body[1:]))
		case frameRoster:
			if rerr := checkRoster(body[1:], env); rerr != nil {
				return fail(rerr)
			}
			haveRoster = true
		case frameView:
			v, derr := wire.DecodeView(body[1:])
			if derr != nil {
				return fail(fmt.Errorf("cluster: node %d: %w", env.Node, derr))
			}
			initView = &v
		case frameData:
			// The coordinator broadcasts the roster conn by conn, so a
			// fast peer that already saw its roster can have a data frame
			// routed here first. Hold it for delivery once the handshake
			// completes.
			mb, derr := dataMsgBody(body[1:])
			if derr != nil {
				return fail(fmt.Errorf("cluster: node %d: %w", env.Node, derr))
			}
			early = append(early, mb)
		case frameFault:
			// The launch already failed (a peer died mid-rendezvous).
			rank, reason := parseFault(body[1:])
			return fail(&pipeline.FaultError{Rank: rank, Op: reason, Kind: pipeline.FaultPeerLost})
		default:
			return fail(fmt.Errorf("cluster: node %d: unexpected frame %#x before roster", env.Node, body[0]))
		}
	}
	conn.SetReadDeadline(time.Time{})

	s := &Session{
		env:       env,
		cc:        cc,
		h:         h,
		drainCh:   make(chan struct{}),
		pingDone:  make(chan struct{}),
		peerLn:    peerLn,
		peerConns: make(map[int]*clusterConn),
		peerAddrs: make([]string, env.NumNodes()),
		peerInc:   make([]uint32, env.NumNodes()),
		peerBad:   make(map[int]bool),
	}
	s.installView(*initView)
	if h.View != nil {
		h.View(*initView)
	}
	for _, mb := range early {
		if h.Data != nil {
			h.Data(mb)
		}
	}
	go s.acceptPeers()
	go s.readLoop()
	go s.pingLoop()
	return s, nil
}

// Env returns the worker env the session joined with.
func (s *Session) Env() WorkerEnv { return s.env }

// writeDataMsg encodes m as a data frame on cc, reusing the
// connection's frame buffer so steady-state sends do not allocate.
func (cc *clusterConn) writeDataMsg(m *msg.Message) error {
	cc.mu.Lock()
	b := append(cc.buf[:0], 0, 0, 0, 0, frameData)
	b = wire.AppendEncode(b, m) // appends the inner [len][msg body] frame
	binary.LittleEndian.PutUint32(b, uint32(len(b)-4))
	cc.buf = b
	err := wire.WriteFrame(cc.c, b)
	cc.mu.Unlock()
	return err
}

// SendMsg ships m to the node hosting m.Dst — over a lazily dialed
// direct peer connection when the destination advertises one, otherwise
// through the coordinator's routing star. The caller must have stamped
// the message through the pipeline first (Src, Dst, Seq).
func (s *Session) SendMsg(m *msg.Message) error {
	node := nodeOf(m.Dst, s.env.NumNodes(), s.env.ProcsPerNode)
	if cc := s.peerConn(node); cc != nil {
		if err := cc.writeDataMsg(m); err == nil {
			return nil
		}
		// The direct path died mid-run (peer crash or teardown). Fall
		// back to the coordinator, which either still routes to the node
		// or has already begun declaring the loss.
		s.dropPeer(node, true)
	}
	if err := s.cc.writeDataMsg(m); err != nil {
		if fe := s.Err(); fe != nil {
			return fe
		}
		return fmt.Errorf("cluster: node %d send: %w", s.env.Node, err)
	}
	return nil
}

// peerConn returns the direct connection for a destination node, dialing
// it on first use. Returns nil when the route for the node is the
// coordinator: the destination is this node's own coordinator star (no
// address yet), a previous dial failed, or a view change is mid-flight.
func (s *Session) peerConn(node int) *clusterConn {
	if node == s.env.Node {
		return nil
	}
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	if node < 0 || node >= len(s.peerAddrs) || s.peerBad[node] {
		return nil
	}
	if cc := s.peerConns[node]; cc != nil {
		return cc
	}
	addr := s.peerAddrs[node]
	if addr == "" {
		// No advertised listener (mid-recovery slot). Stick to the
		// coordinator until the next view change so this pair's frames
		// stay on one FIFO path.
		s.peerBad[node] = true
		return nil
	}
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		s.peerBad[node] = true
		return nil
	}
	cc := &clusterConn{c: conn}
	hello := wire.EncodeClusterHello(wire.ClusterHello{
		Node:         s.env.Node,
		Procs:        s.env.Procs,
		ProcsPerNode: s.env.ProcsPerNode,
		Cookie:       s.env.Cookie,
		Incarnation:  s.env.Incarnation,
	})[4:]
	if err := cc.writeFrame(framePeerHello, hello); err != nil {
		conn.Close()
		s.peerBad[node] = true
		return nil
	}
	s.peerConns[node] = cc
	return cc
}

// dropPeer tears down the direct connection to a node. bad pins the
// node's route to the coordinator until the next view change.
func (s *Session) dropPeer(node int, bad bool) {
	s.peerMu.Lock()
	if cc := s.peerConns[node]; cc != nil {
		cc.c.Close()
		delete(s.peerConns, node)
	}
	if bad {
		s.peerBad[node] = true
	}
	s.peerMu.Unlock()
}

// installView records a membership view's peer addresses and
// incarnations, resetting the route of every slot that changed.
func (s *Session) installView(v wire.View) {
	s.peerMu.Lock()
	for _, m := range v.Members {
		if m.Node < 0 || m.Node >= len(s.peerAddrs) {
			continue
		}
		if m.Incarnation != s.peerInc[m.Node] || m.Addr != s.peerAddrs[m.Node] {
			if cc := s.peerConns[m.Node]; cc != nil {
				cc.c.Close()
				delete(s.peerConns, m.Node)
			}
			delete(s.peerBad, m.Node)
			s.peerInc[m.Node] = m.Incarnation
			s.peerAddrs[m.Node] = m.Addr
		}
	}
	s.peerMu.Unlock()
}

// acceptPeers serves the direct data listener: each inbound connection
// is a peer's lazily dialed send path, validated by a peer hello and
// then drained for data frames until the peer closes it.
func (s *Session) acceptPeers() {
	for {
		conn, err := s.peerLn.Accept()
		if err != nil {
			return // listener closed at teardown
		}
		go s.servePeer(conn)
	}
}

func (s *Session) servePeer(conn net.Conn) {
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(s.env.joinTimeout()))
	body, err := wire.ReadFrame(conn)
	if err != nil || len(body) < 1 || body[0] != framePeerHello {
		return
	}
	h, err := wire.DecodeClusterHello(body[1:])
	if err != nil || h.Cookie != s.env.Cookie ||
		h.Procs != s.env.Procs || h.ProcsPerNode != s.env.ProcsPerNode ||
		h.Node < 0 || h.Node >= s.env.NumNodes() {
		return
	}
	conn.SetReadDeadline(time.Time{})
	for {
		body, err := wire.ReadFrame(conn)
		if err != nil {
			return // dialer closed the path; the coordinator judges liveness
		}
		if len(body) < 1 || body[0] != frameData {
			continue
		}
		mb, derr := dataMsgBody(body[1:])
		if derr != nil {
			return
		}
		if s.h.Data != nil {
			s.h.Data(mb)
		}
	}
}

// SendViewAck answers a membership change with this node's committed
// sync epoch.
func (s *Session) SendViewAck(a wire.ViewAck) error {
	return s.cc.writeFrame(frameViewAck, wire.EncodeViewAck(a))
}

// EnterBarrier announces arrival at cluster barrier id; the release
// arrives through Handlers.Release once every node has entered.
func (s *Session) EnterBarrier(id uint64) error {
	return s.cc.writeFrame(frameEpoch, wire.EncodeEpochReport(wire.EpochReport{Node: s.env.Node, Epoch: id}))
}

// UserDone tells the coordinator this node's user ranks all finished.
func (s *Session) UserDone() error { return s.cc.writeFrame(frameUserDone, nil) }

// Drained is closed when the coordinator broadcasts the drain: every
// node's users finished, servers may stop.
func (s *Session) Drained() <-chan struct{} { return s.drainCh }

// Err returns the cluster fault, if one was surfaced.
func (s *Session) Err() *pipeline.FaultError {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close tears the session down. A close after the drain is the normal
// end of a worker's life; the coordinator treats the connection loss as
// benign.
func (s *Session) Close() {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		close(s.pingDone)
		s.cc.c.Close()
		if s.peerLn != nil {
			s.peerLn.Close()
		}
		s.peerMu.Lock()
		for node, cc := range s.peerConns {
			cc.c.Close()
			delete(s.peerConns, node)
		}
		s.peerMu.Unlock()
	})
}

func (s *Session) drained() bool {
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

// fail surfaces a cluster fault exactly once.
func (s *Session) fail(fe *pipeline.FaultError) {
	s.fOnce.Do(func() {
		s.mu.Lock()
		s.err = fe
		s.mu.Unlock()
		if s.h.Fault != nil {
			s.h.Fault(fe)
		}
	})
}

// readLoop drains coordinator frames: data to the handler, drain to the
// drain channel, fault broadcasts (and unexpected connection loss) to
// the fault handler.
func (s *Session) readLoop() {
	for {
		body, err := wire.ReadFrame(s.cc.c)
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || s.drained() {
				return // normal teardown
			}
			s.fail(&pipeline.FaultError{
				Rank: s.env.FirstRank(),
				Op:   fmt.Sprintf("cluster: node %d lost the coordinator (%v)", s.env.Node, err),
				Kind: pipeline.FaultPeerLost,
			})
			return
		}
		if len(body) == 0 {
			continue
		}
		switch body[0] {
		case frameData:
			mb, derr := dataMsgBody(body[1:])
			if derr != nil {
				s.fail(&pipeline.FaultError{
					Rank: s.env.FirstRank(),
					Op:   derr.Error(),
					Kind: pipeline.FaultPeerLost,
				})
				return
			}
			if s.h.Data != nil {
				s.h.Data(mb)
			}
		case frameDrain:
			s.drainOnce.Do(func() { close(s.drainCh) })
		case frameFault:
			rank, reason := parseFault(body[1:])
			s.fail(&pipeline.FaultError{Rank: rank, Op: reason, Kind: pipeline.FaultPeerLost})
			return
		case frameView:
			v, derr := wire.DecodeView(body[1:])
			if derr != nil {
				continue
			}
			s.installView(v)
			if s.h.View != nil {
				s.h.View(v)
			}
		case frameResume:
			r, derr := wire.DecodeEpochReport(body[1:])
			if derr == nil && s.h.Resume != nil {
				s.h.Resume(r)
			}
		case frameEpochRelease:
			r, derr := wire.DecodeEpochReport(body[1:])
			if derr == nil && s.h.Release != nil {
				s.h.Release(r.Epoch)
			}
		case framePing, frameRoster:
			// Harmless repeats.
		}
	}
}

// pingLoop keeps the coordinator's liveness deadline fed.
func (s *Session) pingLoop() {
	t := time.NewTicker(s.env.hbInterval())
	defer t.Stop()
	for {
		select {
		case <-s.pingDone:
			return
		case <-t.C:
			if err := s.cc.writeFrame(framePing, nil); err != nil {
				return // read loop diagnoses the loss
			}
		}
	}
}
