package cluster

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"armci/internal/pipeline"
)

// Spec describes one multi-process launch: what to run, how many
// workers, and how to handle their output and failures.
type Spec struct {
	// Procs is the total user-rank count (-n of armci-run).
	Procs int
	// ProcsPerNode groups consecutive ranks onto one worker process.
	// Defaults to 1 — one process per rank, the paper's cluster shape.
	ProcsPerNode int
	// Command is the worker argv. Every worker runs the same command;
	// the launcher tells each which node it hosts via the environment.
	Command []string
	// ExtraEnv appends KEY=VALUE pairs to each worker's environment,
	// after the cluster variables.
	ExtraEnv []string
	// Output receives the per-rank prefixed stdout/stderr stream of
	// every worker. Defaults to os.Stdout; io.Discard silences it.
	Output io.Writer
	// OnLine, if non-nil, additionally receives every output line (with
	// the node that produced it, unprefixed) — the hook result
	// aggregation uses to pull machine-readable lines out of workers.
	OnLine func(node int, line string)
	// HeartbeatInterval and HeartbeatTimeout tune failure detection;
	// zero values select the coordinator/worker defaults.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// JoinTimeout bounds rendezvous; zero selects the default.
	JoinTimeout time.Duration
	// RunTimeout bounds the whole launch; on expiry workers are killed.
	// Defaults to 10 minutes.
	RunTimeout time.Duration
	// ForwardSignals relays SIGINT/SIGTERM received by the launcher to
	// every worker, so ^C of armci-run interrupts the whole job.
	ForwardSignals bool
	// Logf, if non-nil, receives launcher diagnostics.
	Logf func(format string, args ...any)
	// Elastic makes worker loss survivable: the coordinator respawns the
	// dead node's worker (same command, bumped incarnation) and drives
	// the membership recovery protocol instead of failing the launch.
	Elastic bool
	// MaxRecoveries bounds elastic repairs per launch. Defaults to 1.
	MaxRecoveries int
}

// Outcome is the aggregate result of one launch.
type Outcome struct {
	// Err is the overall failure: the coordinator's verdict if it
	// failed, otherwise the first worker exit error. nil means every
	// worker exited cleanly after a full drain.
	Err error
	// Fault is set when the failure was a rank-attributed cluster
	// fault (a worker died or went silent mid-run).
	Fault *pipeline.FaultError
	// WorkerErrs holds each worker's exit error, indexed by node.
	WorkerErrs []error
	// Elapsed is the wall-clock duration of the launch.
	Elapsed time.Duration
}

// newCookie draws the per-launch shared secret.
func newCookie() (uint64, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0, fmt.Errorf("cluster: cookie: %w", err)
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// Launch runs spec to completion: it starts a coordinator, spawns one
// worker process per node with rendezvous wired through the
// environment, streams their output, forwards signals, and aggregates
// exit statuses. The returned Outcome is always non-nil; Outcome.Err
// mirrors the error return.
func Launch(spec Spec) (*Outcome, error) {
	if len(spec.Command) == 0 {
		return nil, fmt.Errorf("cluster: launch needs a worker command")
	}
	if spec.Procs <= 0 {
		return nil, fmt.Errorf("cluster: launch needs Procs >= 1, got %d", spec.Procs)
	}
	if spec.ProcsPerNode <= 0 {
		spec.ProcsPerNode = 1
	}
	if spec.Output == nil {
		spec.Output = os.Stdout
	}
	if spec.RunTimeout <= 0 {
		spec.RunTimeout = 10 * time.Minute
	}
	logf := spec.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	cookie, err := newCookie()
	if err != nil {
		return nil, err
	}

	numNodes := (spec.Procs + spec.ProcsPerNode - 1) / spec.ProcsPerNode
	start := time.Now()
	out := &Outcome{WorkerErrs: make([]error, numNodes)}

	var outMu sync.Mutex   // serializes interleaved worker output lines
	var spawnMu sync.Mutex // guards cmds, spawn generations, live count, WorkerErrs writes
	cmds := make([]*exec.Cmd, numNodes)
	gens := make([]int, numNodes) // spawn generation per node; only the latest reports its exit
	live := 0                     // workers whose scanner goroutine has not finished
	var wg sync.WaitGroup

	// spawn starts one worker process for a node slot. Respawns (elastic
	// recoveries) reuse it with a bumped incarnation; only the latest
	// generation's exit status counts, so a killed first incarnation does
	// not fail a successfully recovered launch.
	spawn := func(we WorkerEnv) error {
		cmd := exec.Command(spec.Command[0], spec.Command[1:]...)
		cmd.Env = append(append(os.Environ(), we.Environ()...), spec.ExtraEnv...)
		stdout, perr := cmd.StdoutPipe()
		if perr != nil {
			return fmt.Errorf("cluster: worker %d pipe: %w", we.Node, perr)
		}
		cmd.Stderr = cmd.Stdout // one interleaved stream per worker

		spawnMu.Lock()
		if serr := cmd.Start(); serr != nil {
			spawnMu.Unlock()
			return fmt.Errorf("cluster: spawn worker %d (%s): %w", we.Node, spec.Command[0], serr)
		}
		cmds[we.Node] = cmd
		gens[we.Node]++
		gen := gens[we.Node]
		// live > 0 guarantees the WaitGroup counter is positive, so this
		// Add cannot race a completed Wait.
		live++
		wg.Add(1)
		spawnMu.Unlock()
		logf("cluster: worker node %d started (pid %d, incarnation %d)", we.Node, cmd.Process.Pid, we.Incarnation)

		prefix := fmt.Sprintf("[rank %d] ", we.FirstRank())
		if spec.ProcsPerNode > 1 {
			last := we.FirstRank() + len(we.LocalRanks()) - 1
			prefix = fmt.Sprintf("[rank %d-%d] ", we.FirstRank(), last)
		}
		go func(node, gen int, r io.Reader, prefix string, cmd *exec.Cmd) {
			sc := bufio.NewScanner(r)
			sc.Buffer(make([]byte, 64*1024), 1<<20)
			for sc.Scan() {
				line := sc.Text()
				outMu.Lock()
				fmt.Fprintf(spec.Output, "%s%s\n", prefix, line)
				outMu.Unlock()
				if spec.OnLine != nil {
					spec.OnLine(node, line)
				}
			}
			// Wait only after the pipe hits EOF: Wait closes the pipe and
			// would race the scanner out of the worker's final lines.
			werr := cmd.Wait()
			spawnMu.Lock()
			if gen == gens[node] {
				out.WorkerErrs[node] = werr
			}
			live--
			spawnMu.Unlock()
			wg.Done()
		}(we.Node, gen, stdout, prefix, cmd)
		return nil
	}

	workerEnv := func(node int) WorkerEnv {
		return WorkerEnv{
			Node:              node,
			Procs:             spec.Procs,
			ProcsPerNode:      spec.ProcsPerNode,
			Cookie:            cookie,
			HeartbeatInterval: spec.HeartbeatInterval,
			JoinTimeout:       spec.JoinTimeout,
			Elastic:           spec.Elastic,
		}
	}

	var co *Coordinator
	co, err = NewCoordinator(Config{
		Procs:            spec.Procs,
		ProcsPerNode:     spec.ProcsPerNode,
		Cookie:           cookie,
		JoinTimeout:      spec.JoinTimeout,
		HeartbeatTimeout: spec.HeartbeatTimeout,
		Logf:             spec.Logf,
		Elastic:          spec.Elastic,
		MaxRecoveries:    spec.MaxRecoveries,
		Respawn: func(node int, incarnation uint32, viewEpoch uint64) error {
			spawnMu.Lock()
			dead := live == 0
			spawnMu.Unlock()
			if dead {
				return fmt.Errorf("cluster: no live workers left to recover alongside node %d", node)
			}
			we := workerEnv(node)
			we.Addr = co.Addr()
			we.Incarnation = incarnation
			we.ViewEpoch = viewEpoch
			return spawn(we)
		},
	})
	if err != nil {
		return nil, err
	}
	defer co.Close()

	killLatest := func() {
		spawnMu.Lock()
		snapshot := append([]*exec.Cmd(nil), cmds...)
		spawnMu.Unlock()
		killAll(snapshot)
	}

	for node := 0; node < numNodes; node++ {
		we := workerEnv(node)
		we.Addr = co.Addr()
		if serr := spawn(we); serr != nil {
			killLatest()
			return fail(out, start, serr)
		}
	}

	if spec.ForwardSignals {
		sigCh := make(chan os.Signal, 2)
		signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sigCh)
		go func() {
			for sig := range sigCh {
				logf("cluster: forwarding %v to %d workers", sig, numNodes)
				spawnMu.Lock()
				snapshot := append([]*exec.Cmd(nil), cmds...)
				spawnMu.Unlock()
				for _, cmd := range snapshot {
					if cmd != nil && cmd.Process != nil {
						cmd.Process.Signal(sig)
					}
				}
			}
		}()
	}

	workersDone := make(chan struct{})
	go func() { wg.Wait(); close(workersDone) }()
	coordDone := make(chan error, 1)
	go func() { coordDone <- co.Wait() }()

	var coordErr error
	select {
	case <-workersDone:
		// All workers exited; the coordinator's verdict settles
		// immediately after the last connection closes.
		select {
		case coordErr = <-coordDone:
		case <-time.After(5 * time.Second):
			coordErr = fmt.Errorf("cluster: workers exited but the coordinator never settled")
		}
	case coordErr = <-coordDone:
		// Coordinator settled first — clean drain or a fault broadcast.
		// Give workers a grace window to act on it, then kill leftovers.
		select {
		case <-workersDone:
		case <-time.After(5 * time.Second):
			logf("cluster: killing workers that outlived the coordinator verdict")
			killLatest()
			<-workersDone
		}
	case <-time.After(spec.RunTimeout):
		killLatest()
		co.Close()
		<-workersDone
		return fail(out, start, fmt.Errorf("cluster: run timeout: launch still going after %v", spec.RunTimeout))
	}

	out.Elapsed = time.Since(start)
	errors.As(coordErr, &out.Fault)
	if coordErr != nil {
		out.Err = coordErr
	} else {
		for node, werr := range out.WorkerErrs {
			if werr != nil {
				out.Err = fmt.Errorf("cluster: worker node %d: %w", node, werr)
				break
			}
		}
	}
	return out, out.Err
}

func fail(out *Outcome, start time.Time, err error) (*Outcome, error) {
	out.Elapsed = time.Since(start)
	out.Err = err
	return out, err
}

func killAll(cmds []*exec.Cmd) {
	for _, cmd := range cmds {
		if cmd != nil && cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
}
