// Package cluster is the multi-process runtime underneath the proc
// fabric: rendezvous and membership, inter-process message routing, and
// failure detection for armci workers running as separate OS processes.
//
// The topology is a star, mirroring the in-process tcpnet router. A
// coordinator (owned by the launcher, cmd/armci-run) listens on a TCP
// address; each worker process hosts one SMP node — that node's user
// ranks, data server and NIC agent as goroutines — and dials the
// coordinator exactly once. Admission requires a versioned hello
// handshake (magic, protocol version, node claim, cluster shape, launch
// cookie); once all nodes have arrived the coordinator broadcasts the
// roster and the run begins. Data frames are forwarded by peeking the
// destination address (wire.PeekDst) without a full decode.
//
// Failure detection is two-layered and wall-clock based: a worker whose
// connection drops (process death — the common, instantaneous signal) or
// whose heartbeats go silent (a wedged-but-alive process) is declared
// dead by the coordinator, which broadcasts a fault frame attributing
// the loss to the dead worker's first rank. Survivors surface it through
// the existing *pipeline.FaultError taxonomy (FaultPeerLost) so a killed
// worker fails the whole job fast instead of hanging every blocked peer.
//
// Shutdown is a drain protocol: each worker reports when its local user
// ranks finish; when every node has reported, the coordinator broadcasts
// a drain frame telling workers to stop their servers and close. A
// connection lost before the drain is a fault; one lost after it is a
// normal exit.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"syscall"
	"time"

	"armci/internal/msg"
	"armci/internal/wire"
)

// Cluster frame types, carried as the first byte of every frame body on
// a coordinator⇄worker connection. All frames reuse the wire package's
// length-prefixed framing.
const (
	// frameHello: worker → coordinator; payload is a wire.ClusterHello
	// body. Must be the first frame on every connection.
	frameHello byte = iota + 1
	// frameReject: coordinator → worker; payload is a human-readable
	// reason. The connection is closed immediately after.
	frameReject
	// frameRoster: coordinator → worker, broadcast once all nodes have
	// joined; payload echoes the cluster shape (procs, ppn, nodes). Its
	// arrival is the admission acknowledgment and the start signal.
	frameRoster
	// frameData: either direction; payload is a complete wire message
	// frame (inner length prefix + encoded message body). The
	// coordinator forwards it to the destination endpoint's node.
	frameData
	// framePing: worker → coordinator heartbeat; empty payload.
	framePing
	// frameUserDone: worker → coordinator; this node's user ranks all
	// finished. Empty payload.
	frameUserDone
	// frameDrain: coordinator → worker, broadcast once every node's
	// users finished: stop servers and close. Empty payload.
	frameDrain
	// frameFault: coordinator → worker, broadcast when a worker is
	// declared dead; payload is the dead worker's first rank (i32) plus
	// a reason string.
	frameFault
	// frameView: coordinator → worker; payload is a wire.View body — the
	// membership roster at one view epoch, sent after the initial roster
	// and on every elastic membership change.
	frameView
	// frameViewAck: worker → coordinator; payload is a wire.ViewAck body
	// answering a view change with the worker's committed sync epoch.
	frameViewAck
	// frameEpoch: worker → coordinator; payload is a wire.EpochReport
	// announcing arrival at one cluster barrier (Epoch is the barrier id).
	frameEpoch
	// frameEpochRelease: coordinator → worker, broadcast when every live
	// node entered a barrier; payload echoes the barrier id.
	frameEpochRelease
	// frameResume: coordinator → worker, broadcast once every node of the
	// new view acked it; payload is a wire.EpochReport whose Node is the
	// replaced slot and whose Epoch is the sync epoch to resume from.
	frameResume
	// framePeerHello: worker → worker; the first frame on a lazily dialed
	// direct peer connection. Payload is a wire.ClusterHello body (the
	// dialer's node claim and launch cookie); validated like the
	// coordinator handshake, after which the connection carries only
	// frameData frames from dialer to acceptor.
	framePeerHello
)

// Listen opens the rendezvous TCP listener, retrying transient
// address-in-use races (a just-released ephemeral port being rebound
// between repeated test runs) and reporting the address alongside the
// underlying error — a bare "address already in use" with no address is
// undiagnosable in CI logs.
func Listen(addr string) (net.Listener, error) {
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		lastErr = err
		if !errors.Is(err, syscall.EADDRINUSE) {
			break // not a bind race; retrying cannot help
		}
		time.Sleep(time.Duration(attempt+1) * 20 * time.Millisecond)
	}
	return nil, fmt.Errorf("cluster: listen %s: %w", addr, lastErr)
}

// clusterConn wraps one coordinator⇄worker connection with a write
// mutex and a reused frame buffer, so concurrent writers interleave
// whole frames and steady-state sends do not allocate.
type clusterConn struct {
	c   net.Conn
	mu  sync.Mutex
	buf []byte // reused frame buffer, guarded by mu
}

// writeFrame writes one [len][type][payload] frame.
func (cc *clusterConn) writeFrame(typ byte, payload []byte) error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	b := binary.LittleEndian.AppendUint32(cc.buf[:0], uint32(1+len(payload)))
	b = append(b, typ)
	b = append(b, payload...)
	cc.buf = b
	return wire.WriteFrame(cc.c, b)
}

// writeRaw re-frames and writes an already-read frame body (type byte
// included) — the coordinator's forwarding path.
func (cc *clusterConn) writeRaw(body []byte) error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	b := binary.LittleEndian.AppendUint32(cc.buf[:0], uint32(len(body)))
	b = append(b, body...)
	cc.buf = b
	return wire.WriteFrame(cc.c, b)
}

// dataMsgBody extracts the encoded message body from a data frame's
// payload (the inner wire frame), validating the inner length prefix.
func dataMsgBody(payload []byte) ([]byte, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("cluster: data frame of %d bytes lacks an inner message frame", len(payload))
	}
	if n := binary.LittleEndian.Uint32(payload); int(n) != len(payload)-4 {
		return nil, fmt.Errorf("cluster: data frame inner length %d does not match %d payload bytes", n, len(payload)-4)
	}
	return payload[4:], nil
}

// nodeOf maps an endpoint address to the node hosting it: user ranks by
// the rank→node grouping, server IDs directly, NIC-agent IDs (at or
// beyond the node count) shifted down — the same convention as
// transport's endpointNode.
func nodeOf(a msg.Addr, numNodes, procsPerNode int) int {
	if a.Server {
		if a.ID >= numNodes {
			return a.ID - numNodes
		}
		return a.ID
	}
	return a.ID / procsPerNode
}

// rosterPayload encodes the shape echo broadcast in a roster frame.
func rosterPayload(procs, ppn, nodes int) []byte {
	b := binary.LittleEndian.AppendUint32(nil, uint32(int32(procs)))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(ppn)))
	return binary.LittleEndian.AppendUint32(b, uint32(int32(nodes)))
}

// checkRoster validates the coordinator's shape echo against what the
// worker was launched with; a mismatch means launcher and worker
// disagree about the world and must not run.
func checkRoster(payload []byte, env WorkerEnv) error {
	if len(payload) != 12 {
		return fmt.Errorf("cluster: roster frame has %d payload bytes, want 12", len(payload))
	}
	procs := int(int32(binary.LittleEndian.Uint32(payload)))
	ppn := int(int32(binary.LittleEndian.Uint32(payload[4:])))
	nodes := int(int32(binary.LittleEndian.Uint32(payload[8:])))
	if procs != env.Procs || ppn != env.ProcsPerNode || nodes != env.NumNodes() {
		return fmt.Errorf("cluster: roster shape %d procs × %d/node over %d nodes does not match worker env %d procs × %d/node over %d nodes",
			procs, ppn, nodes, env.Procs, env.ProcsPerNode, env.NumNodes())
	}
	return nil
}

// faultPayload encodes a fault broadcast: dead worker's first rank plus
// a reason.
func faultPayload(rank int, reason string) []byte {
	b := binary.LittleEndian.AppendUint32(nil, uint32(int32(rank)))
	return append(b, reason...)
}

// parseFault decodes a fault broadcast payload.
func parseFault(payload []byte) (rank int, reason string) {
	if len(payload) < 4 {
		return -1, "malformed fault frame"
	}
	return int(int32(binary.LittleEndian.Uint32(payload))), string(payload[4:])
}
