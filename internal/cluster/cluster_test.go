package cluster

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"armci/internal/msg"
	"armci/internal/pipeline"
	"armci/internal/wire"
)

// joinAsync starts a Join in the background; Join blocks until the
// whole roster assembles, so concurrent joins are the normal shape.
func joinAsync(env WorkerEnv, h Handlers) chan joinResult {
	ch := make(chan joinResult, 1)
	go func() {
		s, err := Join(env, h)
		ch <- joinResult{s, err}
	}()
	return ch
}

type joinResult struct {
	s   *Session
	err error
}

func testEnv(co *Coordinator, node int) WorkerEnv {
	return WorkerEnv{
		Addr:         co.Addr(),
		Node:         node,
		Procs:        co.cfg.Procs,
		ProcsPerNode: co.cfg.ProcsPerNode,
		Cookie:       co.cfg.Cookie,
		JoinTimeout:  5 * time.Second,
	}
}

func TestRendezvousRoutingAndDrain(t *testing.T) {
	co, err := NewCoordinator(Config{Procs: 2, Cookie: 7})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer co.Close()

	got := make(chan *msg.Message, 1)
	h1 := Handlers{Data: func(body []byte) {
		m, derr := wire.Decode(body)
		if derr != nil {
			t.Errorf("decode routed frame: %v", derr)
			return
		}
		got <- m
	}}
	ch0 := joinAsync(testEnv(co, 0), Handlers{})
	ch1 := joinAsync(testEnv(co, 1), h1)
	r0, r1 := <-ch0, <-ch1
	if r0.err != nil || r1.err != nil {
		t.Fatalf("join: node0=%v node1=%v", r0.err, r1.err)
	}
	s0, s1 := r0.s, r1.s
	defer s0.Close()
	defer s1.Close()

	want := &msg.Message{Kind: msg.KindPut, Src: msg.User(0), Dst: msg.User(1), Seq: 1, Tag: 42, Data: []byte("ring token")}
	if err := s0.SendMsg(want); err != nil {
		t.Fatalf("SendMsg: %v", err)
	}
	select {
	case m := <-got:
		if m.Kind != want.Kind || m.Src != want.Src || m.Dst != want.Dst || m.Tag != want.Tag || string(m.Data) != string(want.Data) {
			t.Errorf("routed message mutated: got %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("routed message never arrived at node 1")
	}

	// Drain protocol: both nodes report users done, both observe the
	// drain broadcast, and the coordinator settles cleanly.
	if err := s0.UserDone(); err != nil {
		t.Fatalf("UserDone(0): %v", err)
	}
	if err := s1.UserDone(); err != nil {
		t.Fatalf("UserDone(1): %v", err)
	}
	for i, s := range []*Session{s0, s1} {
		select {
		case <-s.Drained():
		case <-time.After(5 * time.Second):
			t.Fatalf("node %d never saw the drain broadcast", i)
		}
	}
	s0.Close()
	s1.Close()
	if err := co.Wait(); err != nil {
		t.Errorf("clean run: coordinator verdict = %v, want nil", err)
	}
}

func TestJoinRejectsWrongCookie(t *testing.T) {
	co, err := NewCoordinator(Config{Procs: 1, Cookie: 7, JoinTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer co.Close()

	env := testEnv(co, 0)
	env.Cookie = 8
	if _, err := Join(env, Handlers{}); err == nil || !strings.Contains(err.Error(), "cookie") {
		t.Errorf("wrong-cookie join error = %v, want a cookie rejection", err)
	}
}

// TestRejectsVersionSkew drives the strict negotiation end to end: a
// hello with a foreign magic is turned away with the decoder's
// diagnosis, not a silent desync.
func TestRejectsVersionSkew(t *testing.T) {
	co, err := NewCoordinator(Config{Procs: 1, Cookie: 7, JoinTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer co.Close()

	conn, err := net.Dial("tcp", co.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	hello := wire.EncodeClusterHello(wire.ClusterHello{Procs: 1, ProcsPerNode: 1, Cookie: 7})[4:]
	hello[0] ^= 0xff // corrupt the magic
	cc := &clusterConn{c: conn}
	if err := cc.writeFrame(frameHello, hello); err != nil {
		t.Fatalf("write hello: %v", err)
	}
	body, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatalf("read reject: %v", err)
	}
	if len(body) < 1 || body[0] != frameReject {
		t.Fatalf("coordinator reply %#x, want a reject frame", body)
	}
	if reason := string(body[1:]); !strings.Contains(reason, "magic") {
		t.Errorf("reject reason %q does not name the magic mismatch", reason)
	}
}

func TestRejectsDuplicateNode(t *testing.T) {
	co, err := NewCoordinator(Config{Procs: 2, Cookie: 7, JoinTimeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer co.Close()

	first := joinAsync(testEnv(co, 0), Handlers{}) // parks waiting for the roster
	time.Sleep(50 * time.Millisecond)
	if _, err := Join(testEnv(co, 0), Handlers{}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate-node join error = %v, want a duplicate rejection", err)
	}
	co.Close()
	<-first
}

func TestRendezvousTimeout(t *testing.T) {
	co, err := NewCoordinator(Config{Procs: 2, Cookie: 7, JoinTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer co.Close()

	ch := joinAsync(testEnv(co, 0), Handlers{}) // the only worker to show up
	werr := co.Wait()
	if werr == nil || !strings.Contains(werr.Error(), "1 of 2") {
		t.Errorf("rendezvous timeout verdict = %v, want it to count 1 of 2 workers", werr)
	}
	<-ch
}

// TestConnLossFault kills a worker's connection mid-run and checks both
// sides of the failure contract: the coordinator's verdict and the
// surviving worker's fault callback attribute the loss to the dead
// worker's rank.
func TestConnLossFault(t *testing.T) {
	co, err := NewCoordinator(Config{Procs: 2, Cookie: 7})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer co.Close()

	faultCh := make(chan *pipeline.FaultError, 1)
	ch0 := joinAsync(testEnv(co, 0), Handlers{Fault: func(fe *pipeline.FaultError) { faultCh <- fe }})
	ch1 := joinAsync(testEnv(co, 1), Handlers{})
	r0, r1 := <-ch0, <-ch1
	if r0.err != nil || r1.err != nil {
		t.Fatalf("join: node0=%v node1=%v", r0.err, r1.err)
	}
	defer r0.s.Close()

	r1.s.cc.c.Close() // node 1 dies abruptly, without the drain protocol

	werr := co.Wait()
	fe, ok := werr.(*pipeline.FaultError)
	if !ok {
		t.Fatalf("coordinator verdict = %v (%T), want *pipeline.FaultError", werr, werr)
	}
	if fe.Rank != 1 || fe.Kind != pipeline.FaultPeerLost {
		t.Errorf("verdict = %+v, want Rank 1, FaultPeerLost", fe)
	}
	select {
	case sfe := <-faultCh:
		if sfe.Rank != 1 || sfe.Kind != pipeline.FaultPeerLost {
			t.Errorf("survivor's fault = %+v, want Rank 1, FaultPeerLost", sfe)
		}
	case <-time.After(5 * time.Second):
		t.Error("surviving worker never heard the fault broadcast")
	}
}

// TestHeartbeatTimeout wedges one worker (its pings stop, but the
// connection stays open) and checks the coordinator declares it dead by
// staleness, attributed to its first rank.
func TestHeartbeatTimeout(t *testing.T) {
	co, err := NewCoordinator(Config{Procs: 2, Cookie: 7, HeartbeatTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer co.Close()

	healthy := testEnv(co, 0)
	healthy.HeartbeatInterval = 50 * time.Millisecond
	wedged := testEnv(co, 1)
	wedged.HeartbeatInterval = time.Hour // joins, then never pings

	ch0 := joinAsync(healthy, Handlers{})
	ch1 := joinAsync(wedged, Handlers{})
	r0, r1 := <-ch0, <-ch1
	if r0.err != nil || r1.err != nil {
		t.Fatalf("join: node0=%v node1=%v", r0.err, r1.err)
	}
	defer r0.s.Close()
	defer r1.s.Close()

	werr := co.Wait()
	fe, ok := werr.(*pipeline.FaultError)
	if !ok {
		t.Fatalf("coordinator verdict = %v (%T), want *pipeline.FaultError", werr, werr)
	}
	if fe.Rank != 1 || fe.Kind != pipeline.FaultPeerLost {
		t.Errorf("verdict = %+v, want Rank 1, FaultPeerLost", fe)
	}
	if !strings.Contains(fe.Op, "silent") {
		t.Errorf("verdict op %q does not describe the silence", fe.Op)
	}
}

// TestListenReportsAddress pins the listener hygiene contract: a bind
// failure names the address it tried, and an address-in-use race is
// retried until the port frees up.
func TestListenReportsAddress(t *testing.T) {
	const bad = "203.0.113.1:0" // TEST-NET-3: never bindable locally
	if _, err := Listen(bad); err == nil || !strings.Contains(err.Error(), bad) {
		t.Errorf("Listen(%s) error = %v, want it to name the address", bad, err)
	}
}

func TestListenRetriesBindRace(t *testing.T) {
	blocker, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("blocker listen: %v", err)
	}
	addr := blocker.Addr().String()
	time.AfterFunc(25*time.Millisecond, func() { blocker.Close() })
	ln, err := Listen(addr)
	if err != nil {
		t.Fatalf("Listen did not ride out the bind race on %s: %v", addr, err)
	}
	ln.Close()
}

func TestWorkerEnvRoundTrip(t *testing.T) {
	want := WorkerEnv{
		Addr:              "127.0.0.1:9999",
		Node:              2,
		Procs:             8,
		ProcsPerNode:      2,
		Cookie:            0xfeedface,
		HeartbeatInterval: 250 * time.Millisecond,
		JoinTimeout:       9 * time.Second,
	}
	for _, kv := range want.Environ() {
		k, v, _ := strings.Cut(kv, "=")
		t.Setenv(k, v)
	}
	got, ok, err := FromEnv()
	if err != nil || !ok {
		t.Fatalf("FromEnv: ok=%v err=%v", ok, err)
	}
	if got != want {
		t.Errorf("worker env mutated through the environment: sent %+v got %+v", want, got)
	}
}

func TestFromEnvAbsent(t *testing.T) {
	t.Setenv(EnvAddr, "")
	if _, ok, err := FromEnv(); ok || err != nil {
		t.Errorf("FromEnv with no cluster env: ok=%v err=%v, want absent and nil", ok, err)
	}
}

func TestFromEnvMalformed(t *testing.T) {
	t.Setenv(EnvAddr, "127.0.0.1:1")
	t.Setenv(EnvNode, "zero")
	if _, ok, err := FromEnv(); !ok || err == nil || !strings.Contains(err.Error(), EnvNode) {
		t.Errorf("FromEnv with a bad node: ok=%v err=%v, want an error naming %s", ok, err, EnvNode)
	}
}

// TestSendMsgConcurrent exercises the shared frame buffer under the
// race detector: many goroutines sending on one session must interleave
// whole frames.
func TestSendMsgConcurrent(t *testing.T) {
	co, err := NewCoordinator(Config{Procs: 2, Cookie: 7})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer co.Close()

	const msgs = 64
	var mu sync.Mutex
	seen := 0
	done := make(chan struct{})
	h1 := Handlers{Data: func(body []byte) {
		if _, derr := wire.Decode(body); derr != nil {
			t.Errorf("interleaved frame corrupt: %v", derr)
		}
		mu.Lock()
		seen++
		if seen == 2*msgs {
			close(done)
		}
		mu.Unlock()
	}}
	ch0 := joinAsync(testEnv(co, 0), Handlers{})
	ch1 := joinAsync(testEnv(co, 1), h1)
	r0, r1 := <-ch0, <-ch1
	if r0.err != nil || r1.err != nil {
		t.Fatalf("join: node0=%v node1=%v", r0.err, r1.err)
	}
	defer r0.s.Close()
	defer r1.s.Close()

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				m := &msg.Message{Kind: msg.KindPut, Src: msg.User(0), Dst: msg.User(1), Seq: uint64(w*msgs + i + 1), Data: []byte("payload")}
				if err := r0.s.SendMsg(m); err != nil {
					t.Errorf("SendMsg: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		mu.Lock()
		t.Fatalf("only %d of %d concurrent sends arrived", seen, 2*msgs)
	}
}
