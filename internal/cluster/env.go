package cluster

import (
	"fmt"
	"os"
	"strconv"
	"time"
)

// Environment variables the launcher sets for each worker process. The
// presence of EnvAddr is what marks a process as a cluster worker.
const (
	// EnvAddr is the coordinator's dial address.
	EnvAddr = "ARMCI_CLUSTER_ADDR"
	// EnvNode is the SMP node index this worker hosts.
	EnvNode = "ARMCI_CLUSTER_NODE"
	// EnvProcs is the total user-process count of the launch.
	EnvProcs = "ARMCI_CLUSTER_PROCS"
	// EnvProcsPerNode is the rank→node grouping.
	EnvProcsPerNode = "ARMCI_CLUSTER_PPN"
	// EnvCookie is the per-launch shared secret, in hex.
	EnvCookie = "ARMCI_CLUSTER_COOKIE"
	// EnvHeartbeatInterval is the worker's ping period (Go duration).
	EnvHeartbeatInterval = "ARMCI_CLUSTER_HB_INTERVAL"
	// EnvJoinTimeout bounds dialing + rendezvous (Go duration).
	EnvJoinTimeout = "ARMCI_CLUSTER_JOIN_TIMEOUT"
	// EnvIncarnation is the spawn count of this node slot (0 = initial
	// launch; set by the coordinator's respawn path).
	EnvIncarnation = "ARMCI_CLUSTER_INCARNATION"
	// EnvViewEpoch is the membership view epoch at spawn time, so a
	// respawned worker stamps its traffic into the current view from its
	// first message.
	EnvViewEpoch = "ARMCI_CLUSTER_VIEW_EPOCH"
	// EnvElastic marks the launch as elastic: worker loss is repaired by
	// respawn instead of failing the job.
	EnvElastic = "ARMCI_CLUSTER_ELASTIC"
)

// WorkerEnv is everything a worker process needs to join its launch —
// marshalled through the environment by the launcher and back via
// FromEnv on the worker side.
type WorkerEnv struct {
	// Addr is the coordinator's dial address.
	Addr string
	// Node is the SMP node this worker hosts: user ranks
	// [Node·ProcsPerNode, min((Node+1)·ProcsPerNode, Procs)), the
	// node's data server and its NIC agent.
	Node int
	// Procs is the total rank count of the launch.
	Procs int
	// ProcsPerNode is the rank→node grouping.
	ProcsPerNode int
	// Cookie is the per-launch shared secret.
	Cookie uint64
	// HeartbeatInterval is the ping period; it must be comfortably
	// below the coordinator's HeartbeatTimeout. 0 selects 500ms.
	HeartbeatInterval time.Duration
	// JoinTimeout bounds dialing plus waiting for the roster. 0
	// selects 30s.
	JoinTimeout time.Duration
	// Incarnation is this node slot's spawn count: 0 at launch, bumped
	// by each elastic respawn.
	Incarnation uint32
	// ViewEpoch is the membership view epoch at spawn time.
	ViewEpoch uint64
	// Elastic marks the launch as elastic.
	Elastic bool
}

// NumNodes returns the launch's node count.
func (e WorkerEnv) NumNodes() int { return (e.Procs + e.ProcsPerNode - 1) / e.ProcsPerNode }

// FirstRank returns the lowest user rank this worker hosts — the rank a
// whole-worker failure is attributed to.
func (e WorkerEnv) FirstRank() int { return e.Node * e.ProcsPerNode }

// LocalRanks returns the user ranks this worker hosts.
func (e WorkerEnv) LocalRanks() []int {
	lo := e.FirstRank()
	hi := lo + e.ProcsPerNode
	if hi > e.Procs {
		hi = e.Procs
	}
	ranks := make([]int, 0, hi-lo)
	for r := lo; r < hi; r++ {
		ranks = append(ranks, r)
	}
	return ranks
}

func (e WorkerEnv) validate() error {
	switch {
	case e.Addr == "":
		return fmt.Errorf("cluster: worker env has no coordinator address")
	case e.Procs <= 0:
		return fmt.Errorf("cluster: worker env needs Procs >= 1, got %d", e.Procs)
	case e.ProcsPerNode <= 0:
		return fmt.Errorf("cluster: worker env needs ProcsPerNode >= 1, got %d", e.ProcsPerNode)
	case e.Node < 0 || e.Node >= e.NumNodes():
		return fmt.Errorf("cluster: worker env node %d out of range [0,%d)", e.Node, e.NumNodes())
	}
	return nil
}

func (e WorkerEnv) hbInterval() time.Duration {
	if e.HeartbeatInterval > 0 {
		return e.HeartbeatInterval
	}
	return 500 * time.Millisecond
}

func (e WorkerEnv) joinTimeout() time.Duration {
	if e.JoinTimeout > 0 {
		return e.JoinTimeout
	}
	return 30 * time.Second
}

// Environ renders the worker env as KEY=VALUE pairs for exec.Cmd.Env.
func (e WorkerEnv) Environ() []string {
	env := []string{
		EnvAddr + "=" + e.Addr,
		EnvNode + "=" + strconv.Itoa(e.Node),
		EnvProcs + "=" + strconv.Itoa(e.Procs),
		EnvProcsPerNode + "=" + strconv.Itoa(e.ProcsPerNode),
		EnvCookie + "=" + strconv.FormatUint(e.Cookie, 16),
	}
	if e.HeartbeatInterval > 0 {
		env = append(env, EnvHeartbeatInterval+"="+e.HeartbeatInterval.String())
	}
	if e.JoinTimeout > 0 {
		env = append(env, EnvJoinTimeout+"="+e.JoinTimeout.String())
	}
	if e.Incarnation > 0 {
		env = append(env, EnvIncarnation+"="+strconv.FormatUint(uint64(e.Incarnation), 10))
	}
	if e.ViewEpoch > 0 {
		env = append(env, EnvViewEpoch+"="+strconv.FormatUint(e.ViewEpoch, 10))
	}
	if e.Elastic {
		env = append(env, EnvElastic+"=1")
	}
	return env
}

// FromEnv reads the worker env from the process environment. The second
// return is false when the process is not a cluster worker (no
// coordinator address set); a malformed env is an error, not a silent
// fallback, so a broken launcher fails loudly.
func FromEnv() (WorkerEnv, bool, error) {
	addr := os.Getenv(EnvAddr)
	if addr == "" {
		return WorkerEnv{}, false, nil
	}
	e := WorkerEnv{Addr: addr}
	var err error
	if e.Node, err = envInt(EnvNode); err != nil {
		return e, true, err
	}
	if e.Procs, err = envInt(EnvProcs); err != nil {
		return e, true, err
	}
	if e.ProcsPerNode, err = envInt(EnvProcsPerNode); err != nil {
		return e, true, err
	}
	cookie := os.Getenv(EnvCookie)
	if e.Cookie, err = strconv.ParseUint(cookie, 16, 64); err != nil {
		return e, true, fmt.Errorf("cluster: bad %s=%q: %v", EnvCookie, cookie, err)
	}
	if e.HeartbeatInterval, err = envDuration(EnvHeartbeatInterval); err != nil {
		return e, true, err
	}
	if e.JoinTimeout, err = envDuration(EnvJoinTimeout); err != nil {
		return e, true, err
	}
	if v := os.Getenv(EnvIncarnation); v != "" {
		inc, perr := strconv.ParseUint(v, 10, 32)
		if perr != nil {
			return e, true, fmt.Errorf("cluster: bad %s=%q: %v", EnvIncarnation, v, perr)
		}
		e.Incarnation = uint32(inc)
	}
	if v := os.Getenv(EnvViewEpoch); v != "" {
		if e.ViewEpoch, err = strconv.ParseUint(v, 10, 64); err != nil {
			return e, true, fmt.Errorf("cluster: bad %s=%q: %v", EnvViewEpoch, v, err)
		}
	}
	e.Elastic = os.Getenv(EnvElastic) != ""
	return e, true, e.validate()
}

func envInt(key string) (int, error) {
	v := os.Getenv(key)
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("cluster: bad %s=%q: %v", key, v, err)
	}
	return n, nil
}

func envDuration(key string) (time.Duration, error) {
	v := os.Getenv(key)
	if v == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("cluster: bad %s=%q: %v", key, v, err)
	}
	return d, nil
}
