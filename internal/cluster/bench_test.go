package cluster

import (
	"sync/atomic"
	"testing"
	"time"

	"armci/internal/msg"
)

// BenchmarkSessionSend measures the procnet hot path: encoding one
// small message into the session's reused frame buffer and shipping it
// through the coordinator star to the peer worker. This is the figure
// the bench baseline tracks as hotpath/procnet_send/ns_op.
func BenchmarkSessionSend(b *testing.B) {
	co, err := NewCoordinator(Config{Procs: 2, Cookie: 7})
	if err != nil {
		b.Fatalf("NewCoordinator: %v", err)
	}
	defer co.Close()

	var received atomic.Int64
	h1 := Handlers{Data: func(body []byte) { received.Add(1) }}
	ch0 := joinAsync(testEnv(co, 0), Handlers{})
	ch1 := joinAsync(testEnv(co, 1), h1)
	r0, r1 := <-ch0, <-ch1
	if r0.err != nil || r1.err != nil {
		b.Fatalf("join: node0=%v node1=%v", r0.err, r1.err)
	}
	defer r0.s.Close()
	defer r1.s.Close()

	m := &msg.Message{Kind: msg.KindPut, Src: msg.User(0), Dst: msg.User(1), Data: make([]byte, 64)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Seq = uint64(i + 1)
		if err := r0.s.SendMsg(m); err != nil {
			b.Fatalf("SendMsg: %v", err)
		}
	}
	b.StopTimer()
	// Drain before teardown so the coordinator is not mid-route when
	// the connections drop.
	deadline := time.Now().Add(10 * time.Second)
	for received.Load() < int64(b.N) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
}
