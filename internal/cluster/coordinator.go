package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"armci/internal/pipeline"
	"armci/internal/wire"
)

// Config describes one coordinator — the rendezvous point and message
// router of a multi-process launch.
type Config struct {
	// Procs is the total user-process (rank) count of the launch.
	Procs int
	// ProcsPerNode is how many consecutive ranks one worker process
	// hosts. Defaults to 1.
	ProcsPerNode int
	// Cookie is the per-launch shared secret workers must present.
	Cookie uint64
	// Addr is the listen address. Defaults to an ephemeral loopback
	// port, "127.0.0.1:0".
	Addr string
	// JoinTimeout bounds the rendezvous: if not every node has joined
	// within it, the launch fails listing how many arrived. Defaults to
	// 30s.
	JoinTimeout time.Duration
	// HeartbeatTimeout is how long a worker connection may stay silent
	// (no pings, no data) before the worker is declared dead. Defaults
	// to 5s. Workers ping at a fraction of this (see WorkerEnv).
	HeartbeatTimeout time.Duration
	// Logf, if non-nil, receives diagnostic log lines (rejections,
	// fault declarations).
	Logf func(format string, args ...any)
	// Elastic turns worker loss from a fatal fault into a membership
	// change: the coordinator bumps the view epoch, respawns the dead
	// node's worker, and drives survivors through the recovery barrier
	// protocol instead of failing the launch.
	Elastic bool
	// MaxRecoveries bounds how many worker losses are repaired before
	// the coordinator gives up and declares a fault. Defaults to 1.
	MaxRecoveries int
	// Respawn relaunches the worker process for a node slot at the given
	// incarnation (>= 1) and view epoch. Required when Elastic is set;
	// invoked from its own goroutine.
	Respawn func(node int, incarnation uint32, viewEpoch uint64) error
}

func (c *Config) normalize() error {
	if c.Procs <= 0 {
		return fmt.Errorf("cluster: config needs Procs >= 1, got %d", c.Procs)
	}
	if c.ProcsPerNode <= 0 {
		c.ProcsPerNode = 1
	}
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.JoinTimeout <= 0 {
		c.JoinTimeout = 30 * time.Second
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.MaxRecoveries <= 0 {
		c.MaxRecoveries = 1
	}
	if c.Elastic && c.Respawn == nil {
		return fmt.Errorf("cluster: elastic config needs a Respawn hook")
	}
	return nil
}

func (c *Config) numNodes() int { return (c.Procs + c.ProcsPerNode - 1) / c.ProcsPerNode }

// Coordinator accepts worker connections, admits them through the hello
// handshake, broadcasts the roster, routes data frames between nodes,
// and watches each worker's liveness. One Coordinator serves one launch.
type Coordinator struct {
	cfg Config
	ln  net.Listener

	mu         sync.Mutex
	conns      map[int]*clusterConn // node → admitted connection
	joined     int
	rosterSent bool
	usersDone  map[int]bool
	drainSent  bool
	finished   int                  // conns closed normally after drain
	fault      *pipeline.FaultError // first declared fault
	err        error                // final result, set by finish

	// Elastic membership state.
	inc        []uint32                // per-node incarnation (spawn count)
	peerAddrs  []string                // per-node direct data-listener address
	viewEpoch  uint64                  // bumped on every membership change
	recoveries int                     // membership changes performed so far
	recovering bool                    // a view change is awaiting acks
	deadNode   int                     // slot being replaced (valid while recovering)
	acks       map[int]wire.ViewAck    // node → ack at the current view epoch
	barriers   map[uint64]map[int]bool // barrier id → nodes arrived

	done     chan struct{}
	doneOnce sync.Once
}

// NewCoordinator binds the rendezvous listener and starts accepting
// workers. The returned coordinator runs until Wait returns or Close is
// called.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	ln, err := Listen(cfg.Addr)
	if err != nil {
		return nil, err
	}
	co := &Coordinator{
		cfg:       cfg,
		ln:        ln,
		conns:     make(map[int]*clusterConn),
		usersDone: make(map[int]bool),
		inc:       make([]uint32, cfg.numNodes()),
		peerAddrs: make([]string, cfg.numNodes()),
		deadNode:  -1,
		barriers:  make(map[uint64]map[int]bool),
		done:      make(chan struct{}),
	}
	go co.acceptLoop()
	time.AfterFunc(cfg.JoinTimeout, co.joinDeadline)
	return co, nil
}

// Addr returns the address workers must dial.
func (co *Coordinator) Addr() string { return co.ln.Addr().String() }

// Wait blocks until the launch completes and returns nil on a clean
// drain, a *pipeline.FaultError when a worker was declared dead, or a
// descriptive error when rendezvous timed out.
func (co *Coordinator) Wait() error {
	<-co.done
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.err
}

// Close tears the coordinator down. Safe to call at any time and after
// Wait; a Close racing a live run surfaces as a closed-coordinator
// error from Wait.
func (co *Coordinator) Close() {
	co.finish(fmt.Errorf("cluster: coordinator closed"))
}

func (co *Coordinator) acceptLoop() {
	for {
		c, err := co.ln.Accept()
		if err != nil {
			return // listener closed at teardown
		}
		go co.serveConn(c)
	}
}

// joinDeadline fails the launch if rendezvous did not complete in time.
func (co *Coordinator) joinDeadline() {
	co.mu.Lock()
	if co.rosterSent || co.err != nil {
		co.mu.Unlock()
		return
	}
	joined := co.joined
	co.mu.Unlock()
	co.finish(fmt.Errorf("cluster: rendezvous timeout: only %d of %d workers joined %s within %v",
		joined, co.cfg.numNodes(), co.Addr(), co.cfg.JoinTimeout))
}

// finish settles the launch outcome exactly once and tears everything
// down. The first caller's error wins.
func (co *Coordinator) finish(err error) {
	co.doneOnce.Do(func() {
		co.mu.Lock()
		co.err = err
		conns := make([]*clusterConn, 0, len(co.conns))
		for _, cc := range co.conns {
			conns = append(conns, cc)
		}
		co.mu.Unlock()
		co.ln.Close()
		for _, cc := range conns {
			cc.c.Close()
		}
		close(co.done)
	})
}

// serveConn runs one worker connection: handshake, then the read loop
// with per-read liveness deadlines.
func (co *Coordinator) serveConn(c net.Conn) {
	cc := &clusterConn{c: c}
	c.SetReadDeadline(time.Now().Add(co.cfg.JoinTimeout))
	body, err := wire.ReadFrame(c)
	if err != nil {
		c.Close()
		return
	}
	node, rerr := co.admit(cc, body)
	if rerr != nil {
		cc.writeFrame(frameReject, []byte(rerr.Error()))
		c.Close()
		co.cfg.Logf("cluster: rejected %v: %v", c.RemoteAddr(), rerr)
		return
	}

	for {
		// Until the roster is out, workers sit quiet waiting for
		// stragglers, so liveness can only be judged against the join
		// window; afterwards pings arrive every heartbeat interval.
		co.mu.Lock()
		dl := co.cfg.HeartbeatTimeout
		if !co.rosterSent {
			dl += co.cfg.JoinTimeout
		}
		co.mu.Unlock()
		c.SetReadDeadline(time.Now().Add(dl))

		body, err := wire.ReadFrame(c)
		if err != nil {
			co.mu.Lock()
			benign := co.drainSent || co.fault != nil || co.err != nil
			stale := co.conns[node] != cc // already deposed by a newer incarnation
			co.mu.Unlock()
			if benign || stale {
				co.connFinished(node, cc)
				return
			}
			reason := fmt.Sprintf("connection to worker node %d lost (%v)", node, err)
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				reason = fmt.Sprintf("worker node %d went silent: no heartbeat for %v", node, dl)
			}
			if co.elasticRecover(node, reason) {
				return
			}
			co.declareFault(node, reason)
			return
		}
		if len(body) == 0 {
			continue
		}
		switch body[0] {
		case framePing:
		case frameData:
			co.route(node, body)
		case frameUserDone:
			co.userDone(node)
		case frameEpoch:
			r, derr := wire.DecodeEpochReport(body[1:])
			if derr != nil {
				co.declareFault(node, fmt.Sprintf("worker node %d sent a corrupt epoch report: %v", node, derr))
				return
			}
			co.epochArrive(node, r.Epoch)
		case frameViewAck:
			a, derr := wire.DecodeViewAck(body[1:])
			if derr != nil {
				co.declareFault(node, fmt.Sprintf("worker node %d sent a corrupt view ack: %v", node, derr))
				return
			}
			co.onViewAck(node, a)
		default:
			co.declareFault(node, fmt.Sprintf("worker node %d sent unknown frame type %#x", node, body[0]))
			return
		}
	}
}

// admit validates a hello frame and registers the connection; when the
// last node arrives it broadcasts the roster. Returns the node index or
// the rejection reason.
func (co *Coordinator) admit(cc *clusterConn, body []byte) (int, error) {
	if len(body) < 1 || body[0] != frameHello {
		return 0, fmt.Errorf("first frame is not a cluster hello")
	}
	h, err := wire.DecodeClusterHello(body[1:])
	if err != nil {
		return 0, err
	}
	if h.Cookie != co.cfg.Cookie {
		return 0, fmt.Errorf("cookie mismatch: worker is not from this launch")
	}
	if h.Procs != co.cfg.Procs || h.ProcsPerNode != co.cfg.ProcsPerNode {
		return 0, fmt.Errorf("cluster shape mismatch: worker built for %d procs × %d/node, launch is %d × %d",
			h.Procs, h.ProcsPerNode, co.cfg.Procs, co.cfg.ProcsPerNode)
	}
	if h.Node < 0 || h.Node >= co.cfg.numNodes() {
		return 0, fmt.Errorf("node claim %d out of range [0,%d)", h.Node, co.cfg.numNodes())
	}

	co.mu.Lock()
	if co.conns[h.Node] != nil {
		co.mu.Unlock()
		return 0, fmt.Errorf("node %d already joined: duplicate worker", h.Node)
	}
	if h.Incarnation != co.inc[h.Node] {
		cur := co.inc[h.Node]
		co.mu.Unlock()
		return 0, fmt.Errorf("node %d presented incarnation %d, current view admits %d", h.Node, h.Incarnation, cur)
	}
	co.conns[h.Node] = cc
	co.peerAddrs[h.Node] = h.PeerAddr
	if co.rosterSent {
		// A respawned incarnation rejoining mid-run: hand it the roster
		// and current view directly, and refresh everyone else's view so
		// survivors learn its new peer address.
		view := co.viewLocked()
		others := make([]*clusterConn, 0, len(co.conns))
		for n, other := range co.conns {
			if n != h.Node {
				others = append(others, other)
			}
		}
		co.mu.Unlock()
		cc.writeFrame(frameRoster, rosterPayload(co.cfg.Procs, co.cfg.ProcsPerNode, co.cfg.numNodes()))
		payload := wire.EncodeView(view)
		cc.writeFrame(frameView, payload)
		for _, other := range others {
			other.writeFrame(frameView, payload)
		}
		co.cfg.Logf("cluster: node %d rejoined as incarnation %d", h.Node, h.Incarnation)
		return h.Node, nil
	}
	co.joined++
	complete := co.joined == co.cfg.numNodes()
	if complete {
		co.rosterSent = true
	}
	conns := make([]*clusterConn, 0, len(co.conns))
	for _, other := range co.conns {
		conns = append(conns, other)
	}
	var view wire.View
	if complete {
		view = co.viewLocked()
	}
	co.mu.Unlock()

	if complete {
		payload := rosterPayload(co.cfg.Procs, co.cfg.ProcsPerNode, co.cfg.numNodes())
		viewPayload := wire.EncodeView(view)
		for _, other := range conns {
			other.writeFrame(frameRoster, payload)
			other.writeFrame(frameView, viewPayload)
		}
	}
	return h.Node, nil
}

// viewLocked renders the current membership view. Callers hold co.mu.
func (co *Coordinator) viewLocked() wire.View {
	v := wire.View{Epoch: co.viewEpoch, Dead: co.deadNode}
	if !co.recovering {
		v.Dead = -1
	}
	for n := 0; n < co.cfg.numNodes(); n++ {
		v.Members = append(v.Members, wire.ViewMember{Node: n, Incarnation: co.inc[n], Addr: co.peerAddrs[n]})
	}
	return v
}

// route forwards a data frame to the node hosting its destination
// endpoint. A missing destination (torn down during a fault) drops the
// frame; a write failure is left to the destination's own read loop to
// diagnose.
func (co *Coordinator) route(from int, body []byte) {
	msgBody, err := dataMsgBody(body[1:])
	if err != nil {
		co.declareFault(from, fmt.Sprintf("worker node %d sent a corrupt data frame: %v", from, err))
		return
	}
	dst, err := wire.PeekDst(msgBody)
	if err != nil {
		co.declareFault(from, fmt.Sprintf("worker node %d sent an unroutable data frame: %v", from, err))
		return
	}
	node := nodeOf(dst, co.cfg.numNodes(), co.cfg.ProcsPerNode)
	co.mu.Lock()
	cc := co.conns[node]
	co.mu.Unlock()
	if cc == nil {
		return
	}
	cc.writeRaw(body)
}

// userDone records one node's user ranks finishing; when every node has
// reported, the drain broadcast tells workers to stop their servers.
func (co *Coordinator) userDone(node int) {
	co.mu.Lock()
	co.usersDone[node] = true
	if len(co.usersDone) < co.cfg.numNodes() || co.drainSent {
		co.mu.Unlock()
		return
	}
	co.drainSent = true
	conns := make([]*clusterConn, 0, len(co.conns))
	for _, cc := range co.conns {
		conns = append(conns, cc)
	}
	co.mu.Unlock()
	for _, cc := range conns {
		cc.writeFrame(frameDrain, nil)
	}
}

// connFinished records a post-drain connection close; when the last one
// goes, the launch completed cleanly. Only the connection currently
// registered for the node counts — a deposed incarnation's close must
// not unregister its successor.
func (co *Coordinator) connFinished(node int, cc *clusterConn) {
	co.mu.Lock()
	if co.conns[node] == cc {
		delete(co.conns, node)
		co.finished++
	}
	clean := co.drainSent && co.finished == co.cfg.numNodes()
	co.mu.Unlock()
	if clean {
		co.finish(nil)
	}
}

// declareFault attributes a lost worker to its first rank, broadcasts
// the fault to survivors (so every blocked peer aborts with the dead
// worker's rank, not its own), and fails the launch.
func (co *Coordinator) declareFault(node int, reason string) {
	fe := &pipeline.FaultError{
		Rank: node * co.cfg.ProcsPerNode,
		Op:   reason,
		Kind: pipeline.FaultPeerLost,
	}
	co.mu.Lock()
	if co.fault != nil || co.err != nil {
		co.mu.Unlock()
		return
	}
	co.fault = fe
	conns := make([]*clusterConn, 0, len(co.conns))
	for n, cc := range co.conns {
		if n != node {
			conns = append(conns, cc)
		}
	}
	co.mu.Unlock()

	co.cfg.Logf("cluster: fault: %v", fe)
	payload := faultPayload(fe.Rank, reason)
	for _, cc := range conns {
		cc.writeFrame(frameFault, payload)
	}
	co.finish(fe)
}

// elasticRecover turns a lost worker into a membership change: bump the
// view epoch and the slot's incarnation, broadcast the new view to
// survivors, and respawn the dead worker. Returns false when the loss
// cannot be repaired (elastic off, recovery budget spent, rendezvous not
// complete, or a recovery already in flight) — the caller then falls
// back to declareFault.
func (co *Coordinator) elasticRecover(node int, reason string) bool {
	co.mu.Lock()
	if !co.cfg.Elastic || !co.rosterSent || co.recovering ||
		co.recoveries >= co.cfg.MaxRecoveries || co.fault != nil || co.err != nil {
		co.mu.Unlock()
		return false
	}
	co.recoveries++
	co.recovering = true
	co.deadNode = node
	co.viewEpoch++
	co.inc[node]++
	co.peerAddrs[node] = ""
	delete(co.conns, node)
	delete(co.usersDone, node)
	// Pending barrier arrivals are from the old view: survivors will be
	// interrupted out of their waits and re-enter after recovery.
	co.barriers = make(map[uint64]map[int]bool)
	co.acks = make(map[int]wire.ViewAck)
	epoch := co.viewEpoch
	incarnation := co.inc[node]
	view := co.viewLocked()
	survivors := make([]*clusterConn, 0, len(co.conns))
	for _, cc := range co.conns {
		survivors = append(survivors, cc)
	}
	co.mu.Unlock()

	co.cfg.Logf("cluster: view %d: node %d lost (%s), respawning incarnation %d", epoch, node, reason, incarnation)
	payload := wire.EncodeView(view)
	for _, cc := range survivors {
		cc.writeFrame(frameView, payload)
	}
	go func() {
		if err := co.cfg.Respawn(node, incarnation, epoch); err != nil {
			co.declareFault(node, fmt.Sprintf("respawn of node %d failed: %v", node, err))
		}
	}()
	// The respawned worker must rejoin within the join window or the
	// recovery is abandoned.
	time.AfterFunc(co.cfg.JoinTimeout, func() {
		co.mu.Lock()
		stuck := co.recovering && co.viewEpoch == epoch
		co.mu.Unlock()
		if stuck {
			co.declareFault(node, fmt.Sprintf("respawned node %d did not rejoin within %v", node, co.cfg.JoinTimeout))
		}
	})
	return true
}

// onViewAck collects view acknowledgments; once every node of the new
// view (survivors plus the respawned worker) has acked, the resume
// epoch — the newest sync epoch any survivor committed — is broadcast
// and the recovery hand-off completes.
func (co *Coordinator) onViewAck(node int, a wire.ViewAck) {
	co.mu.Lock()
	if !co.recovering || a.Epoch != co.viewEpoch {
		co.mu.Unlock()
		return
	}
	co.acks[node] = a
	if len(co.acks) < co.cfg.numNodes() {
		co.mu.Unlock()
		return
	}
	var resume uint64
	for n, ack := range co.acks {
		if n != co.deadNode && ack.Committed > resume {
			resume = ack.Committed
		}
	}
	dead := co.deadNode
	co.recovering = false
	conns := make([]*clusterConn, 0, len(co.conns))
	for _, cc := range co.conns {
		conns = append(conns, cc)
	}
	co.mu.Unlock()

	co.cfg.Logf("cluster: view %d acked by all nodes, resuming from sync epoch %d", a.Epoch, resume)
	payload := wire.EncodeEpochReport(wire.EpochReport{Node: dead, Epoch: resume})
	for _, cc := range conns {
		cc.writeFrame(frameResume, payload)
	}
}

// epochArrive is the cluster barrier service: one arrival per node per
// barrier id; when every node of the current view has arrived, the
// release is broadcast and the barrier forgotten (ids are reused across
// recovery re-executions).
func (co *Coordinator) epochArrive(node int, id uint64) {
	co.mu.Lock()
	m := co.barriers[id]
	if m == nil {
		m = make(map[int]bool)
		co.barriers[id] = m
	}
	m[node] = true
	if len(m) < co.cfg.numNodes() {
		co.mu.Unlock()
		return
	}
	delete(co.barriers, id)
	conns := make([]*clusterConn, 0, len(co.conns))
	for _, cc := range co.conns {
		conns = append(conns, cc)
	}
	co.mu.Unlock()

	payload := wire.EncodeEpochReport(wire.EpochReport{Node: -1, Epoch: id})
	for _, cc := range conns {
		cc.writeFrame(frameEpochRelease, payload)
	}
}
