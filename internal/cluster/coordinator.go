package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"armci/internal/pipeline"
	"armci/internal/wire"
)

// Config describes one coordinator — the rendezvous point and message
// router of a multi-process launch.
type Config struct {
	// Procs is the total user-process (rank) count of the launch.
	Procs int
	// ProcsPerNode is how many consecutive ranks one worker process
	// hosts. Defaults to 1.
	ProcsPerNode int
	// Cookie is the per-launch shared secret workers must present.
	Cookie uint64
	// Addr is the listen address. Defaults to an ephemeral loopback
	// port, "127.0.0.1:0".
	Addr string
	// JoinTimeout bounds the rendezvous: if not every node has joined
	// within it, the launch fails listing how many arrived. Defaults to
	// 30s.
	JoinTimeout time.Duration
	// HeartbeatTimeout is how long a worker connection may stay silent
	// (no pings, no data) before the worker is declared dead. Defaults
	// to 5s. Workers ping at a fraction of this (see WorkerEnv).
	HeartbeatTimeout time.Duration
	// Logf, if non-nil, receives diagnostic log lines (rejections,
	// fault declarations).
	Logf func(format string, args ...any)
}

func (c *Config) normalize() error {
	if c.Procs <= 0 {
		return fmt.Errorf("cluster: config needs Procs >= 1, got %d", c.Procs)
	}
	if c.ProcsPerNode <= 0 {
		c.ProcsPerNode = 1
	}
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.JoinTimeout <= 0 {
		c.JoinTimeout = 30 * time.Second
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

func (c *Config) numNodes() int { return (c.Procs + c.ProcsPerNode - 1) / c.ProcsPerNode }

// Coordinator accepts worker connections, admits them through the hello
// handshake, broadcasts the roster, routes data frames between nodes,
// and watches each worker's liveness. One Coordinator serves one launch.
type Coordinator struct {
	cfg Config
	ln  net.Listener

	mu         sync.Mutex
	conns      map[int]*clusterConn // node → admitted connection
	joined     int
	rosterSent bool
	usersDone  map[int]bool
	drainSent  bool
	finished   int                  // conns closed normally after drain
	fault      *pipeline.FaultError // first declared fault
	err        error                // final result, set by finish

	done     chan struct{}
	doneOnce sync.Once
}

// NewCoordinator binds the rendezvous listener and starts accepting
// workers. The returned coordinator runs until Wait returns or Close is
// called.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	ln, err := Listen(cfg.Addr)
	if err != nil {
		return nil, err
	}
	co := &Coordinator{
		cfg:       cfg,
		ln:        ln,
		conns:     make(map[int]*clusterConn),
		usersDone: make(map[int]bool),
		done:      make(chan struct{}),
	}
	go co.acceptLoop()
	time.AfterFunc(cfg.JoinTimeout, co.joinDeadline)
	return co, nil
}

// Addr returns the address workers must dial.
func (co *Coordinator) Addr() string { return co.ln.Addr().String() }

// Wait blocks until the launch completes and returns nil on a clean
// drain, a *pipeline.FaultError when a worker was declared dead, or a
// descriptive error when rendezvous timed out.
func (co *Coordinator) Wait() error {
	<-co.done
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.err
}

// Close tears the coordinator down. Safe to call at any time and after
// Wait; a Close racing a live run surfaces as a closed-coordinator
// error from Wait.
func (co *Coordinator) Close() {
	co.finish(fmt.Errorf("cluster: coordinator closed"))
}

func (co *Coordinator) acceptLoop() {
	for {
		c, err := co.ln.Accept()
		if err != nil {
			return // listener closed at teardown
		}
		go co.serveConn(c)
	}
}

// joinDeadline fails the launch if rendezvous did not complete in time.
func (co *Coordinator) joinDeadline() {
	co.mu.Lock()
	if co.rosterSent || co.err != nil {
		co.mu.Unlock()
		return
	}
	joined := co.joined
	co.mu.Unlock()
	co.finish(fmt.Errorf("cluster: rendezvous timeout: only %d of %d workers joined %s within %v",
		joined, co.cfg.numNodes(), co.Addr(), co.cfg.JoinTimeout))
}

// finish settles the launch outcome exactly once and tears everything
// down. The first caller's error wins.
func (co *Coordinator) finish(err error) {
	co.doneOnce.Do(func() {
		co.mu.Lock()
		co.err = err
		conns := make([]*clusterConn, 0, len(co.conns))
		for _, cc := range co.conns {
			conns = append(conns, cc)
		}
		co.mu.Unlock()
		co.ln.Close()
		for _, cc := range conns {
			cc.c.Close()
		}
		close(co.done)
	})
}

// serveConn runs one worker connection: handshake, then the read loop
// with per-read liveness deadlines.
func (co *Coordinator) serveConn(c net.Conn) {
	cc := &clusterConn{c: c}
	c.SetReadDeadline(time.Now().Add(co.cfg.JoinTimeout))
	body, err := wire.ReadFrame(c)
	if err != nil {
		c.Close()
		return
	}
	node, rerr := co.admit(cc, body)
	if rerr != nil {
		cc.writeFrame(frameReject, []byte(rerr.Error()))
		c.Close()
		co.cfg.Logf("cluster: rejected %v: %v", c.RemoteAddr(), rerr)
		return
	}

	for {
		// Until the roster is out, workers sit quiet waiting for
		// stragglers, so liveness can only be judged against the join
		// window; afterwards pings arrive every heartbeat interval.
		co.mu.Lock()
		dl := co.cfg.HeartbeatTimeout
		if !co.rosterSent {
			dl += co.cfg.JoinTimeout
		}
		co.mu.Unlock()
		c.SetReadDeadline(time.Now().Add(dl))

		body, err := wire.ReadFrame(c)
		if err != nil {
			co.mu.Lock()
			benign := co.drainSent || co.fault != nil || co.err != nil
			co.mu.Unlock()
			if benign {
				co.connFinished(node)
				return
			}
			reason := fmt.Sprintf("connection to worker node %d lost (%v)", node, err)
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				reason = fmt.Sprintf("worker node %d went silent: no heartbeat for %v", node, dl)
			}
			co.declareFault(node, reason)
			return
		}
		if len(body) == 0 {
			continue
		}
		switch body[0] {
		case framePing:
		case frameData:
			co.route(node, body)
		case frameUserDone:
			co.userDone(node)
		default:
			co.declareFault(node, fmt.Sprintf("worker node %d sent unknown frame type %#x", node, body[0]))
			return
		}
	}
}

// admit validates a hello frame and registers the connection; when the
// last node arrives it broadcasts the roster. Returns the node index or
// the rejection reason.
func (co *Coordinator) admit(cc *clusterConn, body []byte) (int, error) {
	if len(body) < 1 || body[0] != frameHello {
		return 0, fmt.Errorf("first frame is not a cluster hello")
	}
	h, err := wire.DecodeClusterHello(body[1:])
	if err != nil {
		return 0, err
	}
	if h.Cookie != co.cfg.Cookie {
		return 0, fmt.Errorf("cookie mismatch: worker is not from this launch")
	}
	if h.Procs != co.cfg.Procs || h.ProcsPerNode != co.cfg.ProcsPerNode {
		return 0, fmt.Errorf("cluster shape mismatch: worker built for %d procs × %d/node, launch is %d × %d",
			h.Procs, h.ProcsPerNode, co.cfg.Procs, co.cfg.ProcsPerNode)
	}
	if h.Node < 0 || h.Node >= co.cfg.numNodes() {
		return 0, fmt.Errorf("node claim %d out of range [0,%d)", h.Node, co.cfg.numNodes())
	}

	co.mu.Lock()
	if co.conns[h.Node] != nil {
		co.mu.Unlock()
		return 0, fmt.Errorf("node %d already joined: duplicate worker", h.Node)
	}
	co.conns[h.Node] = cc
	co.joined++
	complete := co.joined == co.cfg.numNodes()
	if complete {
		co.rosterSent = true
	}
	conns := make([]*clusterConn, 0, len(co.conns))
	for _, other := range co.conns {
		conns = append(conns, other)
	}
	co.mu.Unlock()

	if complete {
		payload := rosterPayload(co.cfg.Procs, co.cfg.ProcsPerNode, co.cfg.numNodes())
		for _, other := range conns {
			other.writeFrame(frameRoster, payload)
		}
	}
	return h.Node, nil
}

// route forwards a data frame to the node hosting its destination
// endpoint. A missing destination (torn down during a fault) drops the
// frame; a write failure is left to the destination's own read loop to
// diagnose.
func (co *Coordinator) route(from int, body []byte) {
	msgBody, err := dataMsgBody(body[1:])
	if err != nil {
		co.declareFault(from, fmt.Sprintf("worker node %d sent a corrupt data frame: %v", from, err))
		return
	}
	dst, err := wire.PeekDst(msgBody)
	if err != nil {
		co.declareFault(from, fmt.Sprintf("worker node %d sent an unroutable data frame: %v", from, err))
		return
	}
	node := nodeOf(dst, co.cfg.numNodes(), co.cfg.ProcsPerNode)
	co.mu.Lock()
	cc := co.conns[node]
	co.mu.Unlock()
	if cc == nil {
		return
	}
	cc.writeRaw(body)
}

// userDone records one node's user ranks finishing; when every node has
// reported, the drain broadcast tells workers to stop their servers.
func (co *Coordinator) userDone(node int) {
	co.mu.Lock()
	co.usersDone[node] = true
	if len(co.usersDone) < co.cfg.numNodes() || co.drainSent {
		co.mu.Unlock()
		return
	}
	co.drainSent = true
	conns := make([]*clusterConn, 0, len(co.conns))
	for _, cc := range co.conns {
		conns = append(conns, cc)
	}
	co.mu.Unlock()
	for _, cc := range conns {
		cc.writeFrame(frameDrain, nil)
	}
}

// connFinished records a post-drain connection close; when the last one
// goes, the launch completed cleanly.
func (co *Coordinator) connFinished(node int) {
	co.mu.Lock()
	if co.conns[node] != nil {
		delete(co.conns, node)
		co.finished++
	}
	clean := co.drainSent && co.finished == co.cfg.numNodes()
	co.mu.Unlock()
	if clean {
		co.finish(nil)
	}
}

// declareFault attributes a lost worker to its first rank, broadcasts
// the fault to survivors (so every blocked peer aborts with the dead
// worker's rank, not its own), and fails the launch.
func (co *Coordinator) declareFault(node int, reason string) {
	fe := &pipeline.FaultError{
		Rank: node * co.cfg.ProcsPerNode,
		Op:   reason,
		Kind: pipeline.FaultPeerLost,
	}
	co.mu.Lock()
	if co.fault != nil || co.err != nil {
		co.mu.Unlock()
		return
	}
	co.fault = fe
	conns := make([]*clusterConn, 0, len(co.conns))
	for n, cc := range co.conns {
		if n != node {
			conns = append(conns, cc)
		}
	}
	co.mu.Unlock()

	co.cfg.Logf("cluster: fault: %v", fe)
	payload := faultPayload(fe.Rank, reason)
	for _, cc := range conns {
		cc.writeFrame(frameFault, payload)
	}
	co.finish(fe)
}
