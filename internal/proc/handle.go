package proc

import (
	"armci/internal/msg"
	"armci/internal/shmem"
)

// handleKind classes a completion handle by what finishing means.
type handleKind uint8

const (
	// hGet completes when the data response arrives.
	hGet handleKind = iota
	// hStore completes when the destination node confirms every
	// fence-counted operation this process issued there — puts and
	// accumulates have no per-op response, so a store handle's Wait is a
	// fence scoped to one node.
	hStore
)

// Handle tracks one in-flight non-blocking operation (the ARMCI
// armci_hdl_t pattern), unified across op kinds: gets carry data,
// puts/accumulates carry completion. Wait is idempotent — it blocks the
// first time and afterwards returns the cached result — and Test/Done
// genuinely poll in-flight progress instead of only reporting
// already-collected state.
type Handle struct {
	g     *Engine
	kind  handleKind
	token uint64 // response correlation (hGet)
	node  int    // destination node (hStore)
	done  bool
	data  []byte // collected payload (hGet; cached for repeated Waits)
}

// NbGet starts a non-blocking contiguous get of n bytes at src.
func (g *Engine) NbGet(src shmem.Ptr, n int) *Handle {
	return g.NbGetStrided(src, shmem.Contig(n))
}

// NbGetStrided starts a non-blocking strided get. The caller may issue
// other operations, then call Wait to collect the flat buffer.
func (g *Engine) NbGetStrided(src shmem.Ptr, d shmem.Strided) *Handle {
	if g.local(src.Rank) {
		// Local gets complete immediately; the handle is already done.
		g.chargeCopy(d.TotalBytes())
		return &Handle{g: g, kind: hGet, done: true, data: g.env.Space().PackFrom(src, d)}
	}
	node := g.env.Node(int(src.Rank))
	tok := g.nextToken()
	g.sendServer(node, &msg.Message{
		Kind:   msg.KindGet,
		Origin: g.env.Rank(),
		Token:  tok,
		Ptr:    src,
		Stride: d,
		N:      d.TotalBytes(),
	})
	return &Handle{g: g, kind: hGet, token: tok}
}

// NbPut starts a non-blocking contiguous put and returns its completion
// handle. The transfer itself is the same as Put (including coalescing
// eligibility); the handle adds per-operation completion on top of the
// fence machinery.
func (g *Engine) NbPut(dst shmem.Ptr, data []byte) *Handle {
	return g.NbPutStrided(dst, shmem.Contig(len(data)), data)
}

// NbPutStrided starts a non-blocking strided put with a handle.
func (g *Engine) NbPutStrided(dst shmem.Ptr, d shmem.Strided, data []byte) *Handle {
	g.PutStrided(dst, d, data)
	return g.storeHandle(dst)
}

// NbAcc starts a non-blocking contiguous accumulate with a handle.
func (g *Engine) NbAcc(op shmem.AccOp, dst shmem.Ptr, data []byte, scale float64) *Handle {
	g.Accumulate(op, dst, shmem.Contig(len(data)), data, scale)
	return g.storeHandle(dst)
}

// storeHandle builds the completion handle of a just-issued store-class
// operation targeting dst.
func (g *Engine) storeHandle(dst shmem.Ptr) *Handle {
	if g.local(dst.Rank) {
		// Local stores apply synchronously; already complete.
		return &Handle{g: g, kind: hStore, done: true}
	}
	return &Handle{g: g, kind: hStore, node: g.env.Node(int(dst.Rank))}
}

// Done reports whether the operation has completed, polling in-flight
// progress: a pending get checks (without blocking) whether its response
// has been delivered, and a pending put/accumulate checks whether the
// destination has confirmed completion, where the fence mode makes that
// observable (FenceAck acknowledgements). In FenceRequest mode a
// store-class handle's completion is only learnable through a fence
// round trip, so Done stays false until Wait performs one.
func (h *Handle) Done() bool { return h.Test() }

// Test is Done under its traditional ARMCI name (ARMCI_Test).
func (h *Handle) Test() bool {
	if h.done {
		return true
	}
	switch h.kind {
	case hGet:
		if resp := h.g.env.TryRecv(msg.MatchToken(msg.KindGetResp, h.token)); resp != nil {
			h.data = resp.Data
			h.done = true
		}
	case hStore:
		if h.g.mode == FenceAck {
			h.g.tryDrainAcks()
			if h.g.outstanding[h.node] == 0 {
				h.done = true
			}
		}
	}
	return h.done
}

// Wait blocks until the operation completes and returns its data (nil
// for put/accumulate handles). Wait is idempotent: repeated calls return
// the same cached result.
func (h *Handle) Wait() []byte {
	if h.done {
		return h.data
	}
	switch h.kind {
	case hGet:
		resp := h.g.env.Recv(msg.MatchToken(msg.KindGetResp, h.token))
		h.data = resp.Data
	case hStore:
		h.g.Fence(h.node)
	}
	h.done = true
	return h.data
}

// WaitAll completes every handle (ARMCI_WaitAll). Store-class handles
// against the same node share one fence round trip instead of fencing
// per handle.
func (g *Engine) WaitAll(hs ...*Handle) {
	fenced := make(map[int]bool)
	var stores []*Handle
	for _, h := range hs {
		if h == nil || h.done {
			continue
		}
		if h.kind == hGet {
			h.Wait()
			continue
		}
		stores = append(stores, h)
		fenced[h.node] = true
	}
	for node := 0; node < g.env.NumNodes(); node++ {
		if fenced[node] {
			g.Fence(node)
		}
	}
	for _, h := range stores {
		h.done = true
	}
}
