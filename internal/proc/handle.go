package proc

import (
	"fmt"

	"armci/internal/msg"
	"armci/internal/shmem"
)

// Handle tracks one in-flight non-blocking get (the ARMCI_NbGetS /
// armci_hdl_t pattern). A handle is single-use: Wait returns the data and
// marks it complete; waiting twice panics.
//
// Puts and accumulates need no handle in this implementation — they are
// always non-blocking and complete through fences — so only gets benefit
// from explicit overlap.
type Handle struct {
	g     *Engine
	token uint64
	done  bool
	data  []byte
}

// NbGet starts a non-blocking contiguous get of n bytes at src.
func (g *Engine) NbGet(src shmem.Ptr, n int) *Handle {
	return g.NbGetStrided(src, shmem.Contig(n))
}

// NbGetStrided starts a non-blocking strided get. The caller may issue
// other operations, then call Wait to collect the flat buffer.
func (g *Engine) NbGetStrided(src shmem.Ptr, d shmem.Strided) *Handle {
	if g.local(src.Rank) {
		// Local gets complete immediately; the handle is already done.
		g.chargeCopy(d.TotalBytes())
		return &Handle{g: g, done: true, data: g.env.Space().PackFrom(src, d)}
	}
	node := g.env.Node(int(src.Rank))
	tok := g.nextToken()
	g.env.Send(msg.ServerOf(node), &msg.Message{
		Kind:   msg.KindGet,
		Origin: g.env.Rank(),
		Token:  tok,
		Ptr:    src,
		Stride: d,
		N:      d.TotalBytes(),
	})
	return &Handle{g: g, token: tok}
}

// Done reports whether the data has already been collected. It does not
// poll the network; a pending remote get stays "not done" until Wait.
func (h *Handle) Done() bool { return h.done }

// Wait blocks until the get completes and returns its data.
func (h *Handle) Wait() []byte {
	if h.done {
		if h.data == nil {
			panic(fmt.Sprintf("proc: handle %d waited twice", h.token))
		}
		data := h.data
		h.data = nil
		return data
	}
	resp := h.g.env.Recv(msg.MatchToken(msg.KindGetResp, h.token))
	h.done = true
	return resp.Data
}
