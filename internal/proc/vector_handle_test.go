package proc_test

import (
	"bytes"
	"fmt"
	"testing"

	"armci/internal/msg"
	"armci/internal/proc"
	"armci/internal/server"
	"armci/internal/shmem"
	"armci/internal/transport"
)

func TestEngineNbGetRemote(t *testing.T) {
	c := newCluster(t, 2, 1, proc.FenceRequest, 0)
	buf := c.space().AllocBytes(1, 64)
	c.space().Put(buf, bytes.Repeat([]byte{0x42}, 64))
	done := c.space().AllocWords(1, 1)
	c.run(func(g *proc.Engine) {
		env := g.Env()
		if g.Rank() == 1 {
			env.WaitUntil("done", func() bool { return env.Space().Load(done) == 1 })
			return
		}
		h1 := g.NbGet(buf, 16)
		h2 := g.NbGetStrided(buf.Add(16), shmem.Strided{Count: []int{4, 2}, Stride: []int64{8}})
		if h1.Done() || h2.Done() {
			panic("remote handles reported done before Wait")
		}
		// Collect out of order.
		d2 := h2.Wait()
		d1 := h1.Wait()
		if len(d1) != 16 || d1[0] != 0x42 {
			panic(fmt.Sprintf("h1 data %v", d1[:4]))
		}
		if len(d2) != 8 || d2[0] != 0x42 {
			panic(fmt.Sprintf("h2 data %v", d2))
		}
		g.Store(done, 1)
	})
	if got := c.stats.Count(msg.KindGet); got != 2 {
		t.Fatalf("gets = %d", got)
	}
}

func TestEngineNbGetLocalCompletesImmediately(t *testing.T) {
	c := newCluster(t, 1, 1, proc.FenceRequest, 0)
	buf := c.space().AllocBytes(0, 8)
	c.space().Put(buf, []byte{9, 8, 7, 6, 5, 4, 3, 2})
	c.run(func(g *proc.Engine) {
		h := g.NbGet(buf, 8)
		if !h.Done() {
			panic("local handle not immediately done")
		}
		if d := h.Wait(); d[0] != 9 {
			panic("local handle data wrong")
		}
	})
	if c.stats.Sends() != 0 {
		t.Fatal("local nbget sent messages")
	}
}

func TestEnginePutVGetVRemote(t *testing.T) {
	c := newCluster(t, 2, 1, proc.FenceRequest, 0)
	buf := c.space().AllocBytes(1, 300)
	done := c.space().AllocWords(1, 1)
	c.run(func(g *proc.Engine) {
		env := g.Env()
		if g.Rank() == 1 {
			env.WaitUntil("done", func() bool { return env.Space().Load(done) == 1 })
			return
		}
		g.PutV([]proc.VecPiece{
			{Ptr: buf.Add(0), Data: []byte{1, 2}},
			{Ptr: buf.Add(100), Data: []byte{3}},
			{Ptr: buf.Add(200), Data: []byte{4, 5, 6}},
		})
		if g.OpInit()[1] != 1 {
			panic("vector put not counted as one fence op")
		}
		g.Fence(1)
		out := g.GetV([]proc.VecRead{
			{Ptr: buf.Add(200), N: 3},
			{Ptr: buf.Add(0), N: 2},
		})
		if !bytes.Equal(out[0], []byte{4, 5, 6}) || !bytes.Equal(out[1], []byte{1, 2}) {
			panic(fmt.Sprintf("getv returned %v", out))
		}
		g.Store(done, 1)
	})
	if got := c.stats.Count(msg.KindPutV); got != 1 {
		t.Fatalf("putv messages = %d", got)
	}
	if got := c.stats.Count(msg.KindGetV); got != 1 {
		t.Fatalf("getv messages = %d", got)
	}
}

func TestEnginePutVGetVLocal(t *testing.T) {
	c := newCluster(t, 1, 1, proc.FenceRequest, 0)
	buf := c.space().AllocBytes(0, 64)
	c.run(func(g *proc.Engine) {
		g.PutV([]proc.VecPiece{
			{Ptr: buf.Add(5), Data: []byte{7, 7}},
			{Ptr: buf.Add(20), Data: []byte{8}},
		})
		out := g.GetV([]proc.VecRead{{Ptr: buf.Add(5), N: 2}, {Ptr: buf.Add(20), N: 1}})
		if out[0][0] != 7 || out[1][0] != 8 {
			panic("local vector round trip wrong")
		}
		for _, v := range g.OpInit() {
			if v != 0 {
				panic("local vector put fence-counted")
			}
		}
	})
	if c.stats.Sends() != 0 {
		t.Fatal("local vector ops sent messages")
	}
}

func TestEngineVectorValidation(t *testing.T) {
	c := newCluster(t, 2, 1, proc.FenceRequest, 0)
	b0 := c.space().AllocBytes(0, 8)
	b1 := c.space().AllocBytes(1, 8)
	w1 := c.space().AllocWords(1, 1)
	c.run(func(g *proc.Engine) {
		if g.Rank() != 0 {
			return
		}
		cases := []func(){
			func() { g.PutV([]proc.VecPiece{{Ptr: b0, Data: []byte{1}}, {Ptr: b1, Data: []byte{1}}}) },
			func() { g.GetV([]proc.VecRead{{Ptr: b0, N: 1}, {Ptr: b1, N: 1}}) },
			func() { g.PutV([]proc.VecPiece{{Ptr: w1, Data: []byte{1, 0, 0, 0, 0, 0, 0, 0}}}) },
			func() { g.GetV([]proc.VecRead{{Ptr: w1, N: 8}}) },
		}
		for i, fn := range cases {
			func() {
				defer func() {
					if recover() == nil {
						panic(fmt.Sprintf("case %d accepted", i))
					}
				}()
				fn()
			}()
		}
	})
}

func TestEngineFenceAckStoreOps(t *testing.T) {
	c := newCluster(t, 2, 1, proc.FenceAck, 0)
	w := c.space().AllocWords(1, 4)
	done := c.space().AllocWords(1, 1)
	c.run(func(g *proc.Engine) {
		env := g.Env()
		if g.Rank() == 1 {
			env.WaitUntil("done", func() bool { return env.Space().Load(done) == 1 })
			return
		}
		// Fire-and-forget stores are acknowledged in ack mode and the
		// fence drains the acks without any fence request.
		g.Store(w, 1)
		g.StorePair(w.Add(1), shmem.Pair{Hi: 2, Lo: 3})
		g.Fence(1)
		if env.Space().Load(w) != 1 {
			panic("store not applied after ack fence")
		}
		g.Store(done, 1)
		g.AllFence()
	})
	if got := c.stats.Count(msg.KindFenceReq); got != 0 {
		t.Fatalf("ack-mode fences sent %d requests", got)
	}
	if got := c.stats.Count(msg.KindPutAck); got != 3 {
		t.Fatalf("acks = %d, want 3", got)
	}
}

func TestEngineNICFenceRouting(t *testing.T) {
	// Bring up servers AND NIC agents by hand.
	c := newCluster(t, 2, 1, proc.FenceRequest, 0)
	// newCluster spawns only host servers; add agents.
	for n := 0; n < 2; n++ {
		c.fabric.SpawnServer(2+n, func(env transport.Env) {
			server.NewAgent(env, c.layout, server.Options{}).Serve()
		})
	}
	buf := c.space().AllocBytes(1, 8)
	done := c.space().AllocWords(1, 1)
	c.run(func(g *proc.Engine) {
		env := g.Env()
		g.SetNICAssist(true)
		if !g.NICAssist() {
			panic("flag not set")
		}
		if g.Rank() == 1 {
			env.WaitUntil("done", func() bool { return env.Space().Load(done) == 1 })
			return
		}
		g.Put(buf, []byte{0xEE})
		g.Fence(1)
		if env.Space().Get(buf, 1)[0] != 0xEE {
			panic("NIC fence acked before the put landed")
		}
		g.Store(done, 1)
		g.Fence(1)
	})
	// Fence requests went to the agent, not the host server.
	if got := c.stats.PairCount(msg.User(0), msg.NICOf(1, 2)); got == 0 {
		t.Fatal("no traffic reached the NIC agent")
	}
}
