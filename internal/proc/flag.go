package proc

import (
	"encoding/binary"
	"fmt"

	"armci/internal/msg"
	"armci/internal/shmem"
	"armci/internal/wire"
)

// PutFlag copies data into dst and then writes val into the word cell
// flag, both on the destination node (ARMCI_Put_flag / PutS_flag): the
// consumer spins locally on the flag instead of the producer paying a
// fence round trip. Both writes travel to the node's data server — never
// the NIC agent — on the same FIFO pipe, and the flag store is issued
// strictly after the data, so observing the flag proves the data
// landed. Both are fence-counted like any put.
//
// With coalescing enabled the data and flag ride the destination's
// batch, which PutFlag always flushes: a notify must never sit in a
// buffer waiting for a threshold while its consumer spins.
func (g *Engine) PutFlag(dst shmem.Ptr, data []byte, flag shmem.Ptr, val int64) {
	if flag.Kind != shmem.KindWord {
		panic(fmt.Sprintf("proc: PutFlag flag %v is not a word cell", flag))
	}
	if g.env.Node(int(flag.Rank)) != g.env.Node(int(dst.Rank)) {
		panic(fmt.Sprintf("proc: PutFlag flag on node %d but data on node %d; both must share the destination node",
			g.env.Node(int(flag.Rank)), g.env.Node(int(dst.Rank))))
	}
	if g.local(dst.Rank) {
		g.chargeCopy(len(data))
		g.env.Space().Put(dst, data)
		g.env.Charge(g.env.Params().AtomicOp)
		g.env.Space().Store(flag, val)
		return
	}
	node := g.env.Node(int(dst.Rank))
	g.countIssue(node) // the data put
	g.countIssue(node) // the flag store
	if g.coal != nil && g.coal.Fits(len(data)) {
		g.addCoalesced(node, wire.BatchEntry{
			Op:   wire.BatchPut,
			Ptr:  dst,
			Data: append([]byte(nil), data...),
		})
		g.addCoalesced(node, wire.BatchEntry{
			Op:   wire.BatchStore,
			Ptr:  flag,
			Data: binary.LittleEndian.AppendUint64(nil, uint64(val)),
		})
		g.Flush(node)
		return
	}
	g.sendServer(node, &msg.Message{
		Kind:   msg.KindPut,
		Origin: g.env.Rank(),
		Ptr:    dst,
		Stride: shmem.Contig(len(data)),
		Data:   append([]byte(nil), data...),
	})
	// The flag store goes to the data server, not ctlAddr: with NIC
	// assist on, routing it to the agent would race it past the put on a
	// different FIFO pipe.
	g.env.Send(msg.ServerOf(node), &msg.Message{
		Kind:     msg.KindRmw,
		Origin:   g.env.Rank(),
		Ptr:      flag,
		Op:       uint8(msg.RmwStore),
		Operands: [4]int64{val},
	})
}

// WaitFlag spins until the local word cell flag holds val — the consumer
// half of notify/wait. The flag must live on the caller's own node;
// remote spinning would re-serialize what the pattern exists to avoid.
func (g *Engine) WaitFlag(flag shmem.Ptr, val int64) {
	if flag.Kind != shmem.KindWord {
		panic(fmt.Sprintf("proc: WaitFlag flag %v is not a word cell", flag))
	}
	if !g.local(flag.Rank) {
		panic(fmt.Sprintf("proc: WaitFlag flag %v is not on the caller's node; notify flags are spun on locally", flag))
	}
	space := g.env.Space()
	g.env.WaitUntil(fmt.Sprintf("wait-flag@p%d", g.env.Rank()), func() bool {
		return space.Load(flag) == val
	})
}
