package proc

import "armci/internal/shmem"

// LockTable is the cluster-global bootstrap of lock state. For each lock
// index it allocates, at the lock's home rank, the variables of BOTH
// algorithms under study, so experiments compare them on identical
// placements:
//
//   - the ticket/counter word pair of the hybrid lock (§3.2.1);
//   - the Lock global-pointer pair of the software queuing lock (§3.2.2).
//
// It also allocates the MCS queue-node structures (next pointer pair +
// locked flag). The paper notes a single node structure per process
// suffices when a process waits on at most one lock at a time; to also
// support nested acquisitions (locking two accounts for a transfer, say)
// this implementation allocates one queue node per (lock, process) — a
// few words per lock, same algorithm.
type LockTable struct {
	// Home[i] is the rank at which lock i's variables live.
	Home []int
	// TicketCounter[i] points at two words at Home[i]: word 0 is the
	// ticket, word 1 is the counter.
	TicketCounter []shmem.Ptr
	// MCS[i] points at the pair of words at Home[i] holding the queuing
	// lock's Lock global pointer.
	MCS []shmem.Ptr
	// QNode[i][r] points at rank r's queue-node structure for lock i:
	// words 0..1 hold the next pointer pair, word 2 the locked flag.
	QNode [][]shmem.Ptr

	// Lease-lock state (crash-survivable queue lock). LeaseTail[i] is
	// the MCS tail pointer pair at Home[i]. LeaseState[i] is a pair at
	// Home[i] encoding {Hi: epoch, Lo: v}: v > 0 means rank v-1 holds
	// the lease under epoch Hi; v < 0 means the lock is free and rank
	// -v-1 was the last holder (the anchor a repairer walks the queue
	// from); v == 0 means never held. LeaseStamp[i] is one word at
	// Home[i] holding the fabric time (ns) of the last state change —
	// advisory, written fire-and-forget by each epoch-CAS winner, read
	// by waiters deciding whether the lease has expired. LeaseQNode has
	// the same per-(lock,rank) layout as QNode.
	LeaseTail  []shmem.Ptr
	LeaseState []shmem.Ptr
	LeaseStamp []shmem.Ptr
	LeaseQNode [][]shmem.Ptr
}

// Word offsets within a lock's ticket/counter allocation.
const (
	TicketWord  = 0
	CounterWord = 1
)

// Word offsets within a rank's queue-node structure.
const (
	QNodeNextHi = 0
	QNodeNextLo = 1
	QNodeLocked = 2
)

// NewLockTable allocates the lock variables for the given home ranks.
func NewLockTable(space *shmem.Space, homes []int) *LockTable {
	t := &LockTable{
		Home:          append([]int(nil), homes...),
		TicketCounter: make([]shmem.Ptr, len(homes)),
		MCS:           make([]shmem.Ptr, len(homes)),
		QNode:         make([][]shmem.Ptr, len(homes)),
		LeaseTail:     make([]shmem.Ptr, len(homes)),
		LeaseState:    make([]shmem.Ptr, len(homes)),
		LeaseStamp:    make([]shmem.Ptr, len(homes)),
		LeaseQNode:    make([][]shmem.Ptr, len(homes)),
	}
	for i, home := range homes {
		t.TicketCounter[i] = space.AllocWords(home, 2)
		t.MCS[i] = space.AllocWords(home, 2)
		t.QNode[i] = make([]shmem.Ptr, space.NumRanks())
		t.LeaseTail[i] = space.AllocWords(home, 2)
		t.LeaseState[i] = space.AllocWords(home, 2)
		t.LeaseStamp[i] = space.AllocWords(home, 1)
		t.LeaseQNode[i] = make([]shmem.Ptr, space.NumRanks())
		for r := 0; r < space.NumRanks(); r++ {
			t.QNode[i][r] = space.AllocWords(r, 3)
			t.LeaseQNode[i][r] = space.AllocWords(r, 3)
		}
	}
	return t
}

// NumLocks returns the number of locks in the table.
func (t *LockTable) NumLocks() int { return len(t.Home) }
