package proc

import (
	"fmt"

	"armci/internal/msg"
	"armci/internal/shmem"
)

// VecPiece is one segment of a vector put: a destination and its payload.
type VecPiece struct {
	Ptr  shmem.Ptr
	Data []byte
}

// VecRead is one segment of a vector get: a source and a length.
type VecRead struct {
	Ptr shmem.Ptr
	N   int
}

// PutV performs a generalized I/O-vector put (ARMCI_PutV): all pieces
// must live on one rank's memory, and the whole batch travels as a single
// message — the batching that makes scattered small updates affordable
// compared to one put per piece. Non-blocking and fence-counted as ONE
// operation (op_init/op_done advance by one per PutV, keeping both sides
// of the barrier accounting symmetric).
func (g *Engine) PutV(pieces []VecPiece) {
	if len(pieces) == 0 {
		return
	}
	rank := pieces[0].Ptr.Rank
	for _, pc := range pieces {
		if pc.Ptr.Rank != rank {
			panic(fmt.Sprintf("proc: PutV pieces span ranks %d and %d; one rank per call", rank, pc.Ptr.Rank))
		}
		if pc.Ptr.Kind != shmem.KindByte {
			panic(fmt.Sprintf("proc: PutV piece %v is not byte memory", pc.Ptr))
		}
	}
	if g.local(rank) {
		total := 0
		for _, pc := range pieces {
			g.env.Space().Put(pc.Ptr, pc.Data)
			total += len(pc.Data)
		}
		g.chargeCopy(total)
		return
	}
	node := g.env.Node(int(rank))
	segs := make([]msg.VecSeg, len(pieces))
	var data []byte
	for i, pc := range pieces {
		segs[i] = msg.VecSeg{Ptr: pc.Ptr, N: len(pc.Data)}
		data = append(data, pc.Data...)
	}
	g.countIssue(node)
	g.sendServer(node, &msg.Message{
		Kind:   msg.KindPutV,
		Origin: g.env.Rank(),
		Vec:    segs,
		Data:   data,
	})
}

// GetV performs a generalized I/O-vector get (ARMCI_GetV): all reads must
// live on one rank's memory; one request and one response move the whole
// batch. Blocking; returns one buffer per read, in order.
func (g *Engine) GetV(reads []VecRead) [][]byte {
	if len(reads) == 0 {
		return nil
	}
	rank := reads[0].Ptr.Rank
	total := 0
	for _, rd := range reads {
		if rd.Ptr.Rank != rank {
			panic(fmt.Sprintf("proc: GetV reads span ranks %d and %d; one rank per call", rank, rd.Ptr.Rank))
		}
		if rd.Ptr.Kind != shmem.KindByte {
			panic(fmt.Sprintf("proc: GetV read %v is not byte memory", rd.Ptr))
		}
		total += rd.N
	}
	if g.local(rank) {
		g.chargeCopy(total)
		out := make([][]byte, len(reads))
		for i, rd := range reads {
			out[i] = g.env.Space().Get(rd.Ptr, rd.N)
		}
		return out
	}
	node := g.env.Node(int(rank))
	segs := make([]msg.VecSeg, len(reads))
	for i, rd := range reads {
		segs[i] = msg.VecSeg{Ptr: rd.Ptr, N: rd.N}
	}
	tok := g.nextToken()
	g.sendServer(node, &msg.Message{
		Kind:   msg.KindGetV,
		Origin: g.env.Rank(),
		Token:  tok,
		Vec:    segs,
		N:      total,
	})
	resp := g.env.Recv(msg.MatchToken(msg.KindGetResp, tok))
	out := make([][]byte, len(reads))
	pos := 0
	for i, rd := range reads {
		out[i] = resp.Data[pos : pos+rd.N : pos+rd.N]
		pos += rd.N
	}
	return out
}
