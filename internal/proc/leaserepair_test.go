package proc_test

import (
	"testing"

	"armci/internal/proc"
	"armci/internal/shmem"
)

// TestRepairLeasesHeldBy stages a lock table as a crash leaves it — one
// lease registered to the dead rank with a queued successor, one lease
// free — and has two survivors sweep it concurrently. Exactly one free
// per held lease must happen (the epoch CAS arbitrates), the state must
// advance by the lease lock's own encoding, the stamp must be renewed
// and the dead rank's successor woken; the free lease must be untouched.
func TestRepairLeasesHeldBy(t *testing.T) {
	const dead = 2
	c := newCluster(t, 3, 1, proc.FenceRequest, 2)
	sp := c.space()
	locks := c.locks

	// Lock 0: held by the dead rank under epoch 5, with rank 0 queued
	// behind it (next pointer linked, wake flag armed).
	sp.StorePair(locks.LeaseState[0], shmem.Pair{Hi: 5, Lo: dead + 1})
	sp.StorePair(locks.LeaseQNode[0][dead].Add(proc.QNodeNextHi), shmem.PackPtr(locks.LeaseQNode[0][0]))
	sp.Store(locks.LeaseQNode[0][0].Add(proc.QNodeLocked), 1)
	sp.Store(locks.LeaseStamp[0], -1) // sentinel: the winner must restamp
	// Lock 1: free, the dead rank merely the last holder — nothing to do.
	sp.StorePair(locks.LeaseState[1], shmem.Pair{Hi: 2, Lo: -(dead + 1)})

	freed := make([]int, 3)
	c.run(func(g *proc.Engine) {
		if g.Rank() == dead {
			return
		}
		freed[g.Rank()] = proc.RepairLeasesHeldBy(g, locks, dead)
	})

	if total := freed[0] + freed[1]; total != 1 {
		t.Errorf("survivors freed %d leases (%v), want exactly 1", total, freed[:2])
	}
	if got, want := sp.LoadPair(locks.LeaseState[0]), (shmem.Pair{Hi: 6, Lo: -(dead + 1)}); got != want {
		t.Errorf("lock 0 state = %+v, want %+v (epoch advanced, freed, dead rank anchored)", got, want)
	}
	if got := sp.Load(locks.LeaseStamp[0]); got < 0 {
		t.Errorf("lock 0 stamp = %d, want renewed to the repair's fabric time", got)
	}
	if got := sp.Load(locks.LeaseQNode[0][0].Add(proc.QNodeLocked)); got != 0 {
		t.Errorf("dead rank's queued successor not woken: wake flag = %d, want 0", got)
	}
	if got, want := sp.LoadPair(locks.LeaseState[1]), (shmem.Pair{Hi: 2, Lo: -(dead + 1)}); got != want {
		t.Errorf("free lock 1 state = %+v, want untouched %+v", got, want)
	}
}
