// Package proc implements the client side of the ARMCI engine: the
// machinery a user process uses to issue one-sided operations against
// remote memory through the data servers, to track outstanding operations
// for fencing, and to run the fence algorithms of the original ARMCI
// implementation.
//
// The engine follows the paper's client-server model (§2): an operation
// whose target rank lives on the caller's own SMP node is applied directly
// to shared memory; an operation on any other node is shipped to that
// node's data server. Non-blocking stores (put, accumulate, word store)
// are counted per destination node in op_init[], the array the new
// combined barrier distributes; blocking operations (get, RMW) complete by
// response and need no fence tracking.
package proc

import (
	"fmt"

	"armci/internal/msg"
	"armci/internal/pipeline"
	"armci/internal/shmem"
	"armci/internal/trace"
	"armci/internal/transport"
	"armci/internal/wire"
)

// FenceMode selects how put completion is detected, mirroring the two
// classes of communication subsystems in §3.1.1 of the paper.
type FenceMode uint8

const (
	// FenceRequest is the GM-like mode: puts are unacknowledged and a
	// fence must send an explicit confirmation request to each server.
	// This is the mode of the paper's testbed and the default.
	FenceRequest FenceMode = iota
	// FenceAck is the LAPI/VIA-like mode: the server acknowledges every
	// put, and a fence just drains outstanding acknowledgements.
	FenceAck
)

func (m FenceMode) String() string {
	switch m {
	case FenceRequest:
		return "request"
	case FenceAck:
		return "ack"
	}
	return fmt.Sprintf("FenceMode(%d)", uint8(m))
}

// Layout is the cluster-global shared-memory bootstrap: the locations
// every actor must agree on before the run starts. It is built once by the
// runtime and handed to every user engine and every server.
type Layout struct {
	// OpDone[n] is the word cell, on node n, in which node n's server
	// counts completed fence-counted operations (the paper's op_done).
	OpDone []shmem.Ptr
	// PerOrigin[n] points at P words on node n; word r counts the
	// fence-counted operations of origin rank r completed at node n.
	// The NIC-assisted fence (§5 future work) confirms against these
	// instead of relying on FIFO message order.
	PerOrigin []shmem.Ptr
}

// NewLayout allocates the bootstrap cells in space: one op_done counter
// per node, homed at the first rank of the node.
func NewLayout(space *shmem.Space, procs, numNodes int) *Layout {
	l := &Layout{
		OpDone:    make([]shmem.Ptr, numNodes),
		PerOrigin: make([]shmem.Ptr, numNodes),
	}
	firstRank := make([]int, numNodes)
	for i := range firstRank {
		firstRank[i] = -1
	}
	for r := 0; r < procs; r++ {
		n := space.Node(r)
		if firstRank[n] == -1 {
			firstRank[n] = r
		}
	}
	for n := 0; n < numNodes; n++ {
		l.OpDone[n] = space.AllocWords(firstRank[n], 1)
		l.PerOrigin[n] = space.AllocWords(firstRank[n], procs)
	}
	return l
}

// Engine is the per-process ARMCI client state.
type Engine struct {
	env  transport.Env
	lay  *Layout
	mode FenceMode

	// useNIC routes atomic operations and fence confirmations to the
	// per-node NIC agents instead of the host data servers (§5 future
	// work). Puts and gets still go through the servers.
	useNIC bool

	// coal, when non-nil, buffers eligible small puts and accumulates
	// per destination node and ships each buffer as one KindBatch frame.
	// Every other send to a node (gets, big puts, RMWs, fences) flushes
	// that node's buffer first, so program order on the per-pair FIFO
	// pipe — and with it fence semantics — is preserved exactly.
	coal *pipeline.Coalescer

	opInit      []int64 // fence-counted ops issued, per destination node
	outstanding []int64 // unacknowledged ops, per destination node (FenceAck)
	tokens      uint64
}

// NewEngine builds the engine for the calling user process.
func NewEngine(env transport.Env, lay *Layout, mode FenceMode) *Engine {
	return &Engine{
		env:         env,
		lay:         lay,
		mode:        mode,
		opInit:      make([]int64, env.NumNodes()),
		outstanding: make([]int64, env.NumNodes()),
	}
}

// Env returns the engine's execution environment.
func (g *Engine) Env() transport.Env { return g.env }

// Layout returns the cluster bootstrap layout.
func (g *Engine) Layout() *Layout { return g.lay }

// Mode returns the fence mode in force.
func (g *Engine) Mode() FenceMode { return g.mode }

// SetNICAssist enables routing of RMW and fence traffic to NIC agents.
// The cluster must have been brought up with agents (see server.Agent).
func (g *Engine) SetNICAssist(on bool) { g.useNIC = on }

// NICAssist reports whether NIC routing is enabled.
func (g *Engine) NICAssist() bool { return g.useNIC }

// SetCoalescing configures the per-destination small-op coalescing
// stage. Disabled (the default) leaves the send path untouched.
func (g *Engine) SetCoalescing(opts pipeline.CoalesceOpts) {
	if !opts.Enabled {
		g.coal = nil
		return
	}
	g.coal = pipeline.NewCoalescer(g.env.Rank(), opts)
}

// Coalescing reports whether small-op coalescing is enabled.
func (g *Engine) Coalescing() bool { return g.coal != nil }

// ctlAddr returns the endpoint that handles control operations (RMW,
// fence) for node: the NIC agent when offload is on, else the server.
func (g *Engine) ctlAddr(node int) msg.Addr {
	if g.useNIC {
		return msg.NICOf(node, g.env.NumNodes())
	}
	return msg.ServerOf(node)
}

// Flush ships node's coalescing buffer, if any, as one batched frame.
func (g *Engine) Flush(node int) {
	if g.coal == nil {
		return
	}
	if m := g.coal.Flush(node); m != nil {
		g.env.Send(msg.ServerOf(node), m)
	}
}

// FlushAll ships every non-empty coalescing buffer, in ascending node
// order so the emitted message sequence is deterministic.
func (g *Engine) FlushAll() {
	if g.coal == nil {
		return
	}
	for _, b := range g.coal.FlushAll() {
		g.env.Send(msg.ServerOf(b.Node), b.Msg)
	}
}

// sendServer flushes node's coalescing buffer and ships m to node's
// data server, preserving program order on the per-pair FIFO pipe.
func (g *Engine) sendServer(node int, m *msg.Message) {
	g.Flush(node)
	g.env.Send(msg.ServerOf(node), m)
}

// sendCtl is sendServer for control traffic (RMW, fence): the buffer is
// flushed even when the control endpoint is the NIC agent, because NIC
// fences confirm against per-origin completion counts that must include
// every buffered operation.
func (g *Engine) sendCtl(node int, m *msg.Message) {
	g.Flush(node)
	g.env.Send(g.ctlAddr(node), m)
}

// addCoalesced buffers one eligible operation for node, shipping the
// packed frame if the addition filled the buffer.
func (g *Engine) addCoalesced(node int, e wire.BatchEntry) {
	if m := g.coal.Add(node, e); m != nil {
		g.env.Send(msg.ServerOf(node), m)
	}
}

// Rank returns the calling process's rank.
func (g *Engine) Rank() int { return g.env.Rank() }

// Size returns the number of processes.
func (g *Engine) Size() int { return g.env.Size() }

// local reports whether rank's memory is directly accessible (same node).
func (g *Engine) local(rank int32) bool {
	return g.env.Node(int(rank)) == g.env.Node(g.env.Rank())
}

// NextToken returns a fresh request-correlation token, unique within this
// process. Higher layers (the lock protocols) draw from the same sequence
// so their response matching can never collide with the engine's.
func (g *Engine) NextToken() uint64 {
	g.tokens++
	return g.tokens
}

// nextToken is the internal alias of NextToken.
func (g *Engine) nextToken() uint64 { return g.NextToken() }

// countIssue records one fence-counted operation to node, both in
// op_init[] (what the fence algorithms compare) and as an OpIssue trace
// event (what the conformance fence oracle compares).
func (g *Engine) countIssue(node int) {
	g.opInit[node]++
	if g.mode == FenceAck {
		g.outstanding[node]++
	}
	g.env.Trace().RecordOp(trace.OpEvent{
		Kind: trace.OpIssue, Rank: g.env.Rank(), Node: node,
		Prev: -1, Ticket: -1, Time: g.env.Clock().Now(),
	})
}

// OpInit returns the engine's op_init[] array (live; callers must not
// mutate it). Index is the destination node.
func (g *Engine) OpInit() []int64 { return g.opInit }

// Fence counters are cumulative for the life of the run, exactly as in
// ARMCI: op_init only ever grows and is compared against the server's
// monotonically growing op_done, so repeated barriers stay correct without
// any global reset.

// --- data transfer operations ---

// Put copies data into the (byte) memory at dst. It is non-blocking: it
// may return before the data is visible at the destination; completion is
// guaranteed only after a fence covering dst's node.
func (g *Engine) Put(dst shmem.Ptr, data []byte) {
	g.PutStrided(dst, shmem.Contig(len(data)), data)
}

// PutStrided scatters data into the strided region at dst, ARMCI's
// signature non-contiguous transfer. Non-blocking like Put.
func (g *Engine) PutStrided(dst shmem.Ptr, d shmem.Strided, data []byte) {
	if want := d.TotalBytes(); want != len(data) {
		panic(fmt.Sprintf("proc: strided put of %d bytes with descriptor covering %d", len(data), want))
	}
	if g.local(dst.Rank) {
		g.chargeCopy(len(data))
		g.env.Space().UnpackTo(dst, d, data)
		return
	}
	node := g.env.Node(int(dst.Rank))
	g.countIssue(node)
	if g.coal != nil && d.Levels() == 0 && g.coal.Fits(len(data)) {
		g.addCoalesced(node, wire.BatchEntry{
			Op:   wire.BatchPut,
			Ptr:  dst,
			Data: append([]byte(nil), data...),
		})
		return
	}
	g.sendServer(node, &msg.Message{
		Kind:   msg.KindPut,
		Origin: g.env.Rank(),
		Ptr:    dst,
		Stride: d,
		Data:   append([]byte(nil), data...),
	})
}

// Get copies n bytes out of the (byte) memory at src. Blocking.
func (g *Engine) Get(src shmem.Ptr, n int) []byte {
	return g.GetStrided(src, shmem.Contig(n))
}

// GetStrided gathers the strided region at src into a flat buffer.
// Blocking.
func (g *Engine) GetStrided(src shmem.Ptr, d shmem.Strided) []byte {
	if g.local(src.Rank) {
		g.chargeCopy(d.TotalBytes())
		return g.env.Space().PackFrom(src, d)
	}
	node := g.env.Node(int(src.Rank))
	tok := g.nextToken()
	g.sendServer(node, &msg.Message{
		Kind:   msg.KindGet,
		Origin: g.env.Rank(),
		Token:  tok,
		Ptr:    src,
		Stride: d,
		N:      d.TotalBytes(),
	})
	resp := g.env.Recv(msg.MatchToken(msg.KindGetResp, tok))
	return resp.Data
}

// Accumulate atomically performs dst += scale*src over the strided region
// at dst. Non-blocking and fence-counted, like Put.
func (g *Engine) Accumulate(op shmem.AccOp, dst shmem.Ptr, d shmem.Strided, data []byte, scale float64) {
	if want := d.TotalBytes(); want != len(data) {
		panic(fmt.Sprintf("proc: strided accumulate of %d bytes with descriptor covering %d", len(data), want))
	}
	if g.local(dst.Rank) {
		g.chargeCopy(len(data))
		g.env.Space().AccumulateStrided(op, dst, d, data, scale)
		return
	}
	node := g.env.Node(int(dst.Rank))
	g.countIssue(node)
	if g.coal != nil && d.Levels() == 0 && g.coal.Fits(len(data)) {
		g.addCoalesced(node, wire.BatchEntry{
			Op:    wire.BatchAcc,
			Ptr:   dst,
			AccOp: uint8(op),
			Scale: scale,
			Data:  append([]byte(nil), data...),
		})
		return
	}
	g.sendServer(node, &msg.Message{
		Kind:   msg.KindAcc,
		Origin: g.env.Rank(),
		Ptr:    dst,
		Stride: d,
		Op:     uint8(op),
		Scale:  scale,
		Data:   append([]byte(nil), data...),
	})
}

// chargeCopy models the CPU cost of a local memory copy.
func (g *Engine) chargeCopy(n int) {
	p := g.env.Params()
	g.env.Charge(p.ServiceTime(n) - p.ServiceSmall)
}

// --- atomic word operations ---

// rmwBlocking ships an RMW request and waits for its response.
func (g *Engine) rmwBlocking(p shmem.Ptr, op msg.RmwOp, operands [4]int64) [4]int64 {
	node := g.env.Node(int(p.Rank))
	tok := g.nextToken()
	g.sendCtl(node, &msg.Message{
		Kind:     msg.KindRmw,
		Origin:   g.env.Rank(),
		Token:    tok,
		Ptr:      p,
		Op:       uint8(op),
		Operands: operands,
	})
	resp := g.env.Recv(msg.MatchToken(msg.KindRmwResp, tok))
	return resp.Operands
}

// FetchAdd atomically adds delta to the word at p, returning the old
// value. Blocking when p is remote.
func (g *Engine) FetchAdd(p shmem.Ptr, delta int64) int64 {
	if g.local(p.Rank) {
		g.env.Charge(g.env.Params().AtomicOp)
		return g.env.Space().FetchAdd(p, delta)
	}
	r := g.rmwBlocking(p, msg.RmwFetchAdd, [4]int64{delta})
	return r[0]
}

// Swap atomically replaces the word at p, returning the old value.
func (g *Engine) Swap(p shmem.Ptr, v int64) int64 {
	if g.local(p.Rank) {
		g.env.Charge(g.env.Params().AtomicOp)
		return g.env.Space().Swap(p, v)
	}
	r := g.rmwBlocking(p, msg.RmwSwap, [4]int64{v})
	return r[0]
}

// CompareAndSwap atomically stores new at p if it holds old, returning the
// observed value.
func (g *Engine) CompareAndSwap(p shmem.Ptr, old, new int64) int64 {
	if g.local(p.Rank) {
		g.env.Charge(g.env.Params().AtomicOp)
		return g.env.Space().CompareAndSwap(p, old, new)
	}
	r := g.rmwBlocking(p, msg.RmwCAS, [4]int64{old, new})
	return r[0]
}

// SwapPair atomically replaces the pair of words at p — one of the
// operations the paper adds to ARMCI for the queuing lock.
func (g *Engine) SwapPair(p shmem.Ptr, v shmem.Pair) shmem.Pair {
	if g.local(p.Rank) {
		g.env.Charge(g.env.Params().AtomicOp)
		return g.env.Space().SwapPair(p, v)
	}
	r := g.rmwBlocking(p, msg.RmwSwapPair, [4]int64{v.Hi, v.Lo})
	return shmem.Pair{Hi: r[0], Lo: r[1]}
}

// CompareAndSwapPair atomically stores new at the pair at p if it holds
// old, returning the observed pair — the compare&swap the paper adds.
func (g *Engine) CompareAndSwapPair(p shmem.Ptr, old, new shmem.Pair) shmem.Pair {
	if g.local(p.Rank) {
		g.env.Charge(g.env.Params().AtomicOp)
		return g.env.Space().CompareAndSwapPair(p, old, new)
	}
	r := g.rmwBlocking(p, msg.RmwCASPair, [4]int64{old.Hi, old.Lo, new.Hi, new.Lo})
	return shmem.Pair{Hi: r[0], Lo: r[1]}
}

// LoadPair atomically reads the pair of words at p.
func (g *Engine) LoadPair(p shmem.Ptr) shmem.Pair {
	if g.local(p.Rank) {
		g.env.Charge(g.env.Params().AtomicOp)
		return g.env.Space().LoadPair(p)
	}
	r := g.rmwBlocking(p, msg.RmwLoadPair, [4]int64{})
	return shmem.Pair{Hi: r[0], Lo: r[1]}
}

// Load atomically reads the word at p.
func (g *Engine) Load(p shmem.Ptr) int64 {
	if g.local(p.Rank) {
		return g.env.Space().Load(p)
	}
	return g.FetchAdd(p, 0)
}

// Store writes v to the word at p. When p is remote this is
// fire-and-forget (one message, no reply) and fence-counted — the
// one-message lock hand-off of the queuing lock.
func (g *Engine) Store(p shmem.Ptr, v int64) {
	if g.local(p.Rank) {
		g.env.Charge(g.env.Params().AtomicOp)
		g.env.Space().Store(p, v)
		return
	}
	node := g.env.Node(int(p.Rank))
	g.countIssue(node)
	// Word stores are lock hand-offs; they never coalesce (buffering one
	// would stall a spinning successor), but they must flush what program
	// order put before them.
	g.sendCtl(node, &msg.Message{
		Kind:     msg.KindRmw,
		Origin:   g.env.Rank(),
		Ptr:      p,
		Op:       uint8(msg.RmwStore),
		Operands: [4]int64{v},
	})
}

// StorePair writes v to the pair of words at p, fire-and-forget when
// remote, like Store.
func (g *Engine) StorePair(p shmem.Ptr, v shmem.Pair) {
	if g.local(p.Rank) {
		g.env.Charge(g.env.Params().AtomicOp)
		g.env.Space().StorePair(p, v)
		return
	}
	node := g.env.Node(int(p.Rank))
	g.countIssue(node)
	g.sendCtl(node, &msg.Message{
		Kind:     msg.KindRmw,
		Origin:   g.env.Rank(),
		Ptr:      p,
		Op:       uint8(msg.RmwStorePair),
		Operands: [4]int64{v.Hi, v.Lo},
	})
}
