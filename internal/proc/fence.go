package proc

import (
	"fmt"

	"armci/internal/msg"
)

// Fence blocks until every fence-counted operation this process has issued
// to the given node's server has completed there (ARMCI_Fence).
//
// In FenceRequest mode (GM-like) it sends a confirmation request and waits
// for the reply: because delivery is FIFO per (source, destination) pair,
// the request reaches the server after every earlier put, so the server's
// acknowledgement proves their completion — exactly the algorithm of
// §3.1.1. In FenceAck mode it drains outstanding per-put acknowledgements.
//
// A fence against the caller's own node returns immediately: local stores
// are applied directly and synchronously, never through the server.
func (g *Engine) Fence(node int) {
	if node == g.env.Node(g.env.Rank()) {
		return
	}
	switch g.mode {
	case FenceRequest:
		if g.opInit[node] == 0 {
			return // never issued anything there; nothing to confirm
		}
		tok := g.nextToken()
		// sendCtl flushes node's coalescing buffer first: buffered ops
		// are already in op_init, so the confirmation request must trail
		// them on the FIFO pipe.
		g.sendCtl(node, &msg.Message{
			Kind:   msg.KindFenceReq,
			Origin: g.env.Rank(),
			Token:  tok,
			// The NIC agent confirms against per-origin completion
			// counts rather than message FIFO; carry the issued count.
			Operands: [4]int64{g.opInit[node]},
		})
		g.env.Recv(msg.MatchToken(msg.KindFenceAck, tok))
	case FenceAck:
		g.Flush(node) // buffered ops count as outstanding; ship them
		for g.outstanding[node] > 0 {
			g.consumeAck()
		}
	default:
		panic(fmt.Sprintf("proc: unknown fence mode %v", g.mode))
	}
}

// consumeAck receives one put acknowledgement (any server) and credits it.
func (g *Engine) consumeAck() {
	g.creditAck(g.env.Recv(msg.MatchKind(msg.KindPutAck)))
}

// creditAck credits one received put acknowledgement. A batched frame is
// acknowledged once per entry, matching the per-entry countIssue on the
// send side.
func (g *Engine) creditAck(m *msg.Message) {
	node := m.Src.ID
	if g.outstanding[node] <= 0 {
		panic(fmt.Sprintf("proc: rank %d received excess put-ack from node %d", g.env.Rank(), node))
	}
	g.outstanding[node]--
}

// tryDrainAcks credits every put acknowledgement already delivered,
// without blocking (FenceAck handle polling).
func (g *Engine) tryDrainAcks() {
	for {
		m := g.env.TryRecv(msg.MatchKind(msg.KindPutAck))
		if m == nil {
			return
		}
		g.creditAck(m)
	}
}

// AllFence blocks until every fence-counted operation this process has
// issued has completed at every server (ARMCI_AllFence). This is the
// *original* implementation the paper improves on: in FenceRequest mode
// the process contacts, **serially**, each server it has issued operations
// to and waits for each confirmation in turn, costing up to 2(N−1) one-way
// latencies — linear in the number of processes.
func (g *Engine) AllFence() {
	g.FlushAll()
	switch g.mode {
	case FenceRequest:
		me := g.env.Node(g.env.Rank())
		for node := range g.opInit {
			if node == me {
				continue
			}
			g.Fence(node)
		}
	case FenceAck:
		for node := range g.outstanding {
			for g.outstanding[node] > 0 {
				g.consumeAck()
			}
		}
	default:
		panic(fmt.Sprintf("proc: unknown fence mode %v", g.mode))
	}
}

// AllFencePipelined is an ablation variant of AllFence (FenceRequest mode
// only): it sends every confirmation request before collecting any reply,
// overlapping the round trips. The paper's original implementation does
// not do this; the benchmark harness uses it to separate the cost of
// serialization from the cost of the linear message count.
func (g *Engine) AllFencePipelined() {
	if g.mode != FenceRequest {
		g.AllFence()
		return
	}
	g.FlushAll()
	me := g.env.Node(g.env.Rank())
	var tokens []uint64
	for node := range g.opInit {
		if node == me || g.opInit[node] == 0 {
			continue
		}
		tok := g.nextToken()
		tokens = append(tokens, tok)
		g.env.Send(g.ctlAddr(node), &msg.Message{
			Kind:     msg.KindFenceReq,
			Origin:   g.env.Rank(),
			Token:    tok,
			Operands: [4]int64{g.opInit[node]},
		})
	}
	for _, tok := range tokens {
		g.env.Recv(msg.MatchToken(msg.KindFenceAck, tok))
	}
}
