package proc

import (
	"armci/internal/shmem"
	"armci/internal/trace"
)

// RepairLeasesHeldBy frees every lease in the table still registered to
// a rank known to have fail-stopped, restamping each freed lock. It is
// the rejoin-time administrative sweep of the elastic recovery path:
// waiter-side repair (core.LeaseLock.maybeRecover) frees a dead
// holder's lease only after a waiter's TTL expires, but when a
// membership view change has already proved the holder dead there is no
// reason to wait — survivors sweep the table while converging on the
// resume epoch, so re-executed critical sections start immediately.
//
// Each free uses the same epoch-advancing CAS discipline as the lease
// lock itself: {epoch, dead+1} -> {epoch+1, -(dead+1)}. Advancing the
// epoch is what makes the sweep safe against resurrection — if the dead
// rank's incarnation was not as dead as reported (or a delayed release
// of its is still in flight), that release presents the old epoch,
// loses its CAS, and touches nothing. Losing the CAS here is equally
// benign: a waiter's TTL repair (or the holder's own last release) got
// there first, and the state has already moved on.
//
// After winning a free, the sweep restamps LeaseStamp with the current
// fabric time — waiters measure lease freshness from it — and wakes the
// dead rank's queued successor so FIFO resumes from the crash point.
// Wakes are hints, never grants, so waking a rank that already moved on
// costs nothing. It returns the number of leases freed.
func RepairLeasesHeldBy(g *Engine, t *LockTable, dead int) int {
	env := g.Env()
	now := int64(env.Clock().Now())
	freed := 0
	for i := range t.Home {
		state := t.LeaseState[i]
		st := g.LoadPair(state)
		if int(st.Lo) != dead+1 {
			continue // free, never held, or held by a survivor
		}
		if g.CompareAndSwapPair(state, st, shmem.Pair{Hi: st.Hi + 1, Lo: -st.Lo}) != st {
			continue // another repairer (or a racing release) moved it on
		}
		env.Trace().RecordOp(trace.OpEvent{
			Kind: trace.OpRepair, Rank: env.Rank(), Node: env.Node(env.Rank()),
			Lock: i, Prev: dead, Ticket: -1, Epoch: int(st.Hi) + 1, Time: env.Clock().Now(),
		})
		g.Store(t.LeaseStamp[i], now)
		next := g.LoadPair(t.LeaseQNode[i][dead].Add(QNodeNextHi)).UnpackPtr()
		if !next.IsNil() {
			g.Store(next.Add(QNodeLocked), 0)
		}
		freed++
	}
	return freed
}
