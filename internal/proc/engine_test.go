package proc_test

import (
	"bytes"
	"fmt"
	"testing"

	"armci/internal/model"
	"armci/internal/msg"
	"armci/internal/proc"
	"armci/internal/server"
	"armci/internal/shmem"
	"armci/internal/trace"
	"armci/internal/transport"
)

// cluster wires engines and servers on a simulated fabric for
// engine-level integration tests. Shared pointers must be allocated via
// the Space *before* run is called — simulated processes are cooperative
// and must never block on Go channels.
type cluster struct {
	t      *testing.T
	fabric *transport.SimFabric
	layout *proc.Layout
	locks  *proc.LockTable
	stats  *trace.Stats
	mode   proc.FenceMode
}

// newCluster builds the fabric, layout, lock table and servers.
func newCluster(t *testing.T, procs, ppn int, mode proc.FenceMode, nLocks int) *cluster {
	t.Helper()
	stats := trace.New()
	f, err := transport.NewSim(transport.Config{
		Procs: procs, ProcsPerNode: ppn, Model: model.Myrinet2000(), Trace: stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	numNodes := (procs + ppn - 1) / ppn
	lay := proc.NewLayout(f.Space(), procs, numNodes)
	var locks *proc.LockTable
	if nLocks > 0 {
		homes := make([]int, nLocks)
		locks = proc.NewLockTable(f.Space(), homes)
	}
	for n := 0; n < numNodes; n++ {
		f.SpawnServer(n, func(env transport.Env) {
			server.New(env, lay, server.Options{FenceMode: mode, Locks: locks}).Serve()
		})
	}
	return &cluster{t: t, fabric: f, layout: lay, locks: locks, stats: stats, mode: mode}
}

// space returns the cluster memory for pre-run allocation.
func (c *cluster) space() *shmem.Space { return c.fabric.Space() }

// run spawns one user process per rank with body and executes the
// simulation.
func (c *cluster) run(body func(g *proc.Engine)) {
	c.t.Helper()
	for r := 0; r < c.fabric.Config().Procs; r++ {
		c.fabric.SpawnUser(r, func(env transport.Env) {
			body(proc.NewEngine(env, c.layout, c.mode))
		})
	}
	if err := c.fabric.Run(); err != nil {
		c.t.Fatal(err)
	}
}

func TestRemotePutFenceGet(t *testing.T) {
	c := newCluster(t, 2, 1, proc.FenceRequest, 0)
	buf := c.space().AllocBytes(1, 64)
	done := c.space().AllocWords(1, 1)
	c.run(func(g *proc.Engine) {
		env := g.Env()
		if g.Rank() == 1 {
			env.WaitUntil("done", func() bool { return env.Space().Load(done) == 1 })
			return
		}
		data := bytes.Repeat([]byte{0x5C}, 32)
		g.Put(buf.Add(1), data)
		if got := g.OpInit()[1]; got != 1 {
			panic(fmt.Sprintf("op_init[1] = %d after one remote put", got))
		}
		g.Fence(1)
		if got := g.Get(buf.Add(1), 32); !bytes.Equal(got, data) {
			panic("fenced put not visible through get")
		}
		g.Store(done, 1)
	})
	if c.stats.Count(msg.KindFenceReq) != 1 {
		t.Fatalf("fence requests = %d, want 1", c.stats.Count(msg.KindFenceReq))
	}
	// The put, the final store and the fence request all reached node 1.
	if c.stats.Count(msg.KindPut) != 1 {
		t.Fatalf("puts = %d, want 1", c.stats.Count(msg.KindPut))
	}
}

func TestFenceSkippedWithoutWrites(t *testing.T) {
	c := newCluster(t, 3, 1, proc.FenceRequest, 0)
	c.run(func(g *proc.Engine) {
		// Nobody wrote anything: every fence must short-circuit.
		g.Fence((g.Rank() + 1) % 3)
		g.AllFence()
	})
	if got := c.stats.Count(msg.KindFenceReq); got != 0 {
		t.Fatalf("idle cluster sent %d fence requests", got)
	}
}

func TestFenceToOwnNodeIsFree(t *testing.T) {
	c := newCluster(t, 2, 2, proc.FenceRequest, 0)
	buf := c.space().AllocBytes(1, 8)
	c.run(func(g *proc.Engine) {
		if g.Rank() == 0 {
			g.Put(buf, []byte{1}) // co-located: direct
			g.Fence(0)            // own node
			g.AllFence()
		}
	})
	if got := c.stats.Sends(); got != 0 {
		t.Fatalf("intra-node workload sent %d messages", got)
	}
}

func TestLocalOpsBypassServer(t *testing.T) {
	c := newCluster(t, 2, 2, proc.FenceRequest, 0)
	buf := c.space().AllocBytes(1, 16)
	w := c.space().AllocWords(1, 2)
	c.run(func(g *proc.Engine) {
		if g.Rank() != 0 {
			return
		}
		g.Put(buf, []byte{1, 2, 3})
		if got := g.Get(buf, 3); !bytes.Equal(got, []byte{1, 2, 3}) {
			panic("local put/get failed")
		}
		g.Store(w, 5)
		if g.FetchAdd(w, 2) != 5 || g.Load(w) != 7 {
			panic("local atomics failed")
		}
		g.StorePair(w, shmem.Pair{Hi: 1, Lo: 2})
		if g.LoadPair(w) != (shmem.Pair{Hi: 1, Lo: 2}) {
			panic("local pair ops failed")
		}
		for _, v := range g.OpInit() {
			if v != 0 {
				panic("local operations were fence-counted")
			}
		}
	})
	if got := c.stats.Sends(); got != 0 {
		t.Fatalf("local-only workload sent %d messages", got)
	}
}

func TestRemoteAtomicsThroughServer(t *testing.T) {
	c := newCluster(t, 2, 1, proc.FenceRequest, 0)
	w := c.space().AllocWords(1, 4)
	c.space().Store(w, 100)
	c.run(func(g *proc.Engine) {
		env := g.Env()
		if g.Rank() == 1 {
			env.WaitUntil("done", func() bool { return env.Space().Load(w.Add(3)) == 1 })
			return
		}
		if old := g.FetchAdd(w, 5); old != 100 {
			panic(fmt.Sprintf("remote FetchAdd returned %d", old))
		}
		if old := g.Swap(w, 7); old != 105 {
			panic(fmt.Sprintf("remote Swap returned %d", old))
		}
		if obs := g.CompareAndSwap(w, 999, 0); obs != 7 {
			panic(fmt.Sprintf("failed remote CAS observed %d", obs))
		}
		if obs := g.CompareAndSwap(w, 7, 1); obs != 7 {
			panic(fmt.Sprintf("remote CAS observed %d", obs))
		}
		pairCell := w.Add(1)
		g.StorePair(pairCell, shmem.Pair{Hi: 11, Lo: 22})
		g.Fence(1) // StorePair is fire-and-forget; fence before reading
		if got := g.LoadPair(pairCell); got != (shmem.Pair{Hi: 11, Lo: 22}) {
			panic(fmt.Sprintf("remote LoadPair = %+v", got))
		}
		if old := g.SwapPair(pairCell, shmem.Pair{Hi: 33, Lo: 44}); old != (shmem.Pair{Hi: 11, Lo: 22}) {
			panic(fmt.Sprintf("remote SwapPair = %+v", old))
		}
		if obs := g.CompareAndSwapPair(pairCell, shmem.Pair{Hi: 33, Lo: 44}, shmem.Pair{Hi: 0, Lo: 1}); obs != (shmem.Pair{Hi: 33, Lo: 44}) {
			panic(fmt.Sprintf("remote CASPair = %+v", obs))
		}
		g.Store(w.Add(3), 1)
	})
	if got := c.stats.Count(msg.KindRmwResp); got == 0 {
		t.Fatal("no RMW responses recorded — atomics did not go through the server")
	}
}

func TestStridedRemoteTransfer(t *testing.T) {
	c := newCluster(t, 2, 1, proc.FenceRequest, 0)
	buf := c.space().AllocBytes(1, 256)
	done := c.space().AllocWords(1, 1)
	c.run(func(g *proc.Engine) {
		env := g.Env()
		if g.Rank() == 1 {
			env.WaitUntil("done", func() bool { return env.Space().Load(done) == 1 })
			return
		}
		// A 3x4 tile into a 16-byte-wide matrix.
		d := shmem.Strided{Count: []int{4, 3}, Stride: []int64{16}}
		data := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
		g.PutStrided(buf, d, data)
		g.Fence(1)
		if got := g.GetStrided(buf, d); !bytes.Equal(got, data) {
			panic(fmt.Sprintf("strided round trip %v", got))
		}
		// Check placement: row 1 starts at offset 16.
		if row := g.Get(buf.Add(16), 4); !bytes.Equal(row, []byte{5, 6, 7, 8}) {
			panic(fmt.Sprintf("row 1 = %v", row))
		}
		g.Store(done, 1)
	})
}

func TestRemoteAccumulate(t *testing.T) {
	c := newCluster(t, 2, 1, proc.FenceRequest, 0)
	buf := c.space().AllocBytes(1, 32)
	done := c.space().AllocWords(1, 1)
	c.run(func(g *proc.Engine) {
		env := g.Env()
		if g.Rank() == 1 {
			env.WaitUntil("done", func() bool { return env.Space().Load(done) == 1 })
			return
		}
		one := make([]byte, 16)
		leput(one, 0, 1)
		leput(one, 8, 2)
		g.Accumulate(shmem.AccInt64, buf, shmem.Contig(16), one, 3)
		g.Accumulate(shmem.AccInt64, buf, shmem.Contig(16), one, 1)
		g.Fence(1)
		out := g.Get(buf, 16)
		if leget(out, 0) != 4 || leget(out, 8) != 8 {
			panic(fmt.Sprintf("accumulate result %d %d", leget(out, 0), leget(out, 8)))
		}
		g.Store(done, 1)
	})
	// Accumulates are fence-counted like puts.
	if got := c.stats.Count(msg.KindAcc); got != 2 {
		t.Fatalf("accumulate messages = %d", got)
	}
}

// TestFenceAckMode exercises the LAPI/VIA-like mode: every put is
// acknowledged and fences drain acknowledgements with no requests.
func TestFenceAckMode(t *testing.T) {
	c := newCluster(t, 3, 1, proc.FenceAck, 0)
	bufs := []shmem.Ptr{
		c.space().AllocBytes(0, 8),
		c.space().AllocBytes(1, 8),
		c.space().AllocBytes(2, 8),
	}
	done := c.space().AllocWords(0, 1)
	c.run(func(g *proc.Engine) {
		env := g.Env()
		me := g.Rank()
		for q := 0; q < 3; q++ {
			if q != me {
				g.Put(bufs[q], []byte{byte(me + 1)})
			}
		}
		g.AllFence()
		if me == 0 {
			g.FetchAdd(done, 1) // not fence-relevant; just progress marker
		}
		env.WaitUntil("all-done", func() bool { return env.Space().Load(done) >= 1 })
	})
	if got := c.stats.Count(msg.KindFenceReq); got != 0 {
		t.Fatalf("ack mode sent %d fence requests", got)
	}
	if got := c.stats.Count(msg.KindPutAck); got != 6 {
		t.Fatalf("put acks = %d, want 6", got)
	}
}

// TestAllFenceVariants: serialized and pipelined AllFence both leave every
// previous put visible.
func TestAllFenceVariants(t *testing.T) {
	for _, pipelined := range []bool{false, true} {
		name := "serialized"
		if pipelined {
			name = "pipelined"
		}
		t.Run(name, func(t *testing.T) {
			const procs = 4
			c := newCluster(t, procs, 1, proc.FenceRequest, 0)
			var bufs []shmem.Ptr
			for r := 0; r < procs; r++ {
				bufs = append(bufs, c.space().AllocBytes(r, procs))
			}
			done := c.space().AllocWords(0, 1)
			c.run(func(g *proc.Engine) {
				env := g.Env()
				me := g.Rank()
				for q := 0; q < procs; q++ {
					if q != me {
						g.Put(bufs[q].Add(int64(me)), []byte{byte(me + 1)})
					}
				}
				if pipelined {
					g.AllFencePipelined()
				} else {
					g.AllFence()
				}
				// After my fence, everything I wrote is visible; verify
				// my own writes through gets.
				for q := 0; q < procs; q++ {
					if q == me {
						continue
					}
					if got := g.Get(bufs[q].Add(int64(me)), 1); got[0] != byte(me+1) {
						panic(fmt.Sprintf("rank %d: fenced write to %d lost", me, q))
					}
				}
				g.FetchAdd(done, 1)
				env.WaitUntil("everyone", func() bool { return env.Space().Load(done) == procs })
			})
		})
	}
}

func TestLayoutPlacement(t *testing.T) {
	space := shmem.NewSpace([]int{0, 0, 1, 1, 2})
	lay := proc.NewLayout(space, 5, 3)
	if len(lay.OpDone) != 3 {
		t.Fatalf("op_done cells = %d", len(lay.OpDone))
	}
	wantRanks := []int32{0, 2, 4} // first rank of each node
	for n, p := range lay.OpDone {
		if p.Rank != wantRanks[n] {
			t.Fatalf("op_done[%d] homed at rank %d, want %d", n, p.Rank, wantRanks[n])
		}
		if p.Kind != shmem.KindWord {
			t.Fatalf("op_done[%d] is not a word cell", n)
		}
	}
}

func TestLockTableShape(t *testing.T) {
	space := shmem.NewSpace([]int{0, 1, 2})
	lt := proc.NewLockTable(space, []int{1, 2})
	if lt.NumLocks() != 2 {
		t.Fatalf("NumLocks = %d", lt.NumLocks())
	}
	if lt.TicketCounter[0].Rank != 1 || lt.MCS[1].Rank != 2 {
		t.Fatal("lock variables homed at the wrong ranks")
	}
	for i := 0; i < 2; i++ {
		if len(lt.QNode[i]) != 3 {
			t.Fatalf("lock %d has %d queue nodes", i, len(lt.QNode[i]))
		}
		for r, q := range lt.QNode[i] {
			if q.Rank != int32(r) {
				t.Fatalf("queue node (%d,%d) homed at rank %d", i, r, q.Rank)
			}
		}
	}
}

// TestEngineSizeChecks: malformed transfer sizes must panic loudly.
func TestEngineSizeChecks(t *testing.T) {
	c := newCluster(t, 1, 1, proc.FenceRequest, 0)
	buf := c.space().AllocBytes(0, 64)
	recovered := false
	c.run(func(g *proc.Engine) {
		func() {
			defer func() { recovered = recover() != nil }()
			g.PutStrided(buf, shmem.Contig(16), make([]byte, 8))
		}()
	})
	if !recovered {
		t.Fatal("mismatched strided put did not panic")
	}
}

// leput writes an int64 little-endian at off.
func leput(b []byte, off int, v int64) {
	for i := 0; i < 8; i++ {
		b[off+i] = byte(v >> (8 * i))
	}
}

// leget reads an int64 little-endian at off.
func leget(b []byte, off int) int64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[off+i]) << (8 * i)
	}
	return int64(v)
}
