package proc_test

import (
	"bytes"
	"fmt"
	"testing"

	"armci/internal/msg"
	"armci/internal/pipeline"
	"armci/internal/proc"
)

// TestEngineCoalescedPutsRideOneFrame: with coalescing on, a burst of
// small puts to one node travels as batched frames instead of one
// KindPut each, and a fence still makes every byte visible.
func TestEngineCoalescedPutsRideOneFrame(t *testing.T) {
	const puts, width = 6, 16
	c := newCluster(t, 2, 1, proc.FenceRequest, 0)
	buf := c.space().AllocBytes(1, puts*width)
	done := c.space().AllocWords(1, 1)
	c.run(func(g *proc.Engine) {
		env := g.Env()
		if g.Rank() == 1 {
			env.WaitUntil("done", func() bool { return env.Space().Load(done) == 1 })
			return
		}
		g.SetCoalescing(pipeline.CoalesceOpts{Enabled: true})
		for i := 0; i < puts; i++ {
			g.Put(buf.Add(int64(i*width)), bytes.Repeat([]byte{byte(i + 1)}, width))
		}
		if got := g.OpInit()[1]; got != puts {
			panic(fmt.Sprintf("op_init[1] = %d after %d coalesced puts", got, puts))
		}
		g.Fence(1)
		for i := 0; i < puts; i++ {
			if got := g.Get(buf.Add(int64(i*width)), width); !bytes.Equal(got, bytes.Repeat([]byte{byte(i + 1)}, width)) {
				panic(fmt.Sprintf("coalesced put %d not visible after fence", i))
			}
		}
		g.Store(done, 1)
	})
	if got := c.stats.Count(msg.KindPut); got != 0 {
		t.Fatalf("%d KindPut frames escaped the coalescer", got)
	}
	if got := c.stats.Count(msg.KindBatch); got != 1 {
		t.Fatalf("batched frames = %d, want 1 (%d puts under the default thresholds)", got, puts)
	}
	if got := c.stats.Count(msg.KindFenceReq); got != 1 {
		t.Fatalf("fence requests = %d, want 1", got)
	}
}

// TestEngineCoalescerThresholdFlush: crossing MaxOps mid-stream ships a
// full frame immediately; the remainder goes out at the fence.
func TestEngineCoalescerThresholdFlush(t *testing.T) {
	const maxOps = 4
	c := newCluster(t, 2, 1, proc.FenceRequest, 0)
	buf := c.space().AllocBytes(1, (maxOps+1)*8)
	c.run(func(g *proc.Engine) {
		if g.Rank() != 0 {
			return
		}
		g.SetCoalescing(pipeline.CoalesceOpts{Enabled: true, MaxOps: maxOps})
		for i := 0; i < maxOps+1; i++ {
			g.Put(buf.Add(int64(i*8)), bytes.Repeat([]byte{0xAB}, 8))
		}
		g.Fence(1)
	})
	if got := c.stats.Count(msg.KindBatch); got != 2 {
		t.Fatalf("batched frames = %d, want 2 (threshold flush + fence flush)", got)
	}
}

// TestEngineCoalescedStoreHandles: NbPut handles over the coalesced
// path complete through WaitAll with a single fence round trip for the
// shared destination node.
func TestEngineCoalescedStoreHandles(t *testing.T) {
	const puts = 3
	c := newCluster(t, 2, 1, proc.FenceRequest, 0)
	buf := c.space().AllocBytes(1, puts*8)
	c.run(func(g *proc.Engine) {
		if g.Rank() != 0 {
			return
		}
		g.SetCoalescing(pipeline.CoalesceOpts{Enabled: true})
		hs := make([]*proc.Handle, puts)
		for i := range hs {
			hs[i] = g.NbPut(buf.Add(int64(i*8)), bytes.Repeat([]byte{byte(i + 1)}, 8))
		}
		// In FenceRequest mode completion is only learnable via a fence;
		// pending handles must not claim otherwise.
		for i, h := range hs {
			if h.Test() {
				panic(fmt.Sprintf("handle %d done before any fence", i))
			}
		}
		g.WaitAll(hs...)
		for i, h := range hs {
			if !h.Done() {
				panic(fmt.Sprintf("handle %d not done after WaitAll", i))
			}
			h.Wait() // idempotent
		}
		for i := 0; i < puts; i++ {
			if got := g.Get(buf.Add(int64(i*8)), 8); !bytes.Equal(got, bytes.Repeat([]byte{byte(i + 1)}, 8)) {
				panic(fmt.Sprintf("put %d not visible after WaitAll", i))
			}
		}
	})
	if got := c.stats.Count(msg.KindFenceReq); got != 1 {
		t.Fatalf("fence requests = %d, want 1 (WaitAll shares one fence per node)", got)
	}
}

// TestEnginePutFlagCoalesced: put-with-flag over the coalesced path
// ships data and flag in one batched frame, and the consumer spinning
// on its local flag observes the data.
func TestEnginePutFlagCoalesced(t *testing.T) {
	c := newCluster(t, 2, 1, proc.FenceRequest, 0)
	buf := c.space().AllocBytes(1, 32)
	flag := c.space().AllocWords(1, 1)
	want := bytes.Repeat([]byte{0x7E}, 32)
	c.run(func(g *proc.Engine) {
		switch g.Rank() {
		case 0:
			g.SetCoalescing(pipeline.CoalesceOpts{Enabled: true})
			g.PutFlag(buf, want, flag, 9)
		case 1:
			g.WaitFlag(flag, 9)
			if got := g.Get(buf, 32); !bytes.Equal(got, want) {
				panic("flag set but data stale")
			}
		}
	})
	if got := c.stats.Count(msg.KindBatch); got != 1 {
		t.Fatalf("batched frames = %d, want 1 (data + flag in one frame)", got)
	}
	if got := c.stats.Count(msg.KindPut) + c.stats.Count(msg.KindRmw); got != 0 {
		t.Fatalf("%d uncoalesced put/rmw frames for a coalesced PutFlag", got)
	}
}

// TestEnginePutFlagUncoalesced: without coalescing, the flag store is
// an ordinary RmwStore behind the put on the same FIFO pipe.
func TestEnginePutFlagUncoalesced(t *testing.T) {
	c := newCluster(t, 2, 1, proc.FenceRequest, 0)
	buf := c.space().AllocBytes(1, 32)
	flag := c.space().AllocWords(1, 1)
	want := bytes.Repeat([]byte{0x3D}, 32)
	c.run(func(g *proc.Engine) {
		switch g.Rank() {
		case 0:
			g.PutFlag(buf, want, flag, 5)
		case 1:
			g.WaitFlag(flag, 5)
			if got := g.Get(buf, 32); !bytes.Equal(got, want) {
				panic("flag set but data stale")
			}
		}
	})
	if got := c.stats.Count(msg.KindPut); got != 1 {
		t.Fatalf("puts = %d, want 1", got)
	}
	if got := c.stats.Count(msg.KindRmw); got != 1 {
		t.Fatalf("rmw (flag store) = %d, want 1", got)
	}
}
