package shmem

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// validPtr generates a structurally valid non-nil pointer.
func validPtr(r *rand.Rand) Ptr {
	kind := KindWord
	if r.Intn(2) == 0 {
		kind = KindByte
	}
	return Ptr{
		Rank: int32(r.Intn(1 << 20)),
		Kind: kind,
		Seg:  int32(1 + r.Intn(1<<20)),
		Off:  r.Int63n(1 << 40),
	}
}

// TestPackUnpackRoundTrip is the property test guarding the paper's
// pair-of-longs pointer representation: every valid pointer survives the
// two-word encoding.
func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := validPtr(r)
		hi, lo := p.Pack()
		return Unpack(hi, lo) == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNilPtrPacksToZero(t *testing.T) {
	hi, lo := (Ptr{}).Pack()
	if hi != 0 || lo != 0 {
		t.Fatalf("nil packs to (%d,%d), want (0,0)", hi, lo)
	}
	if !Unpack(0, 0).IsNil() {
		t.Fatal("(0,0) should unpack to nil")
	}
}

// TestNonNilNeverPacksToZero: no valid pointer may collide with the nil
// encoding — the queuing lock depends on it (a NULL Lock variable means
// the lock is free).
func TestNonNilNeverPacksToZero(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := validPtr(r)
		hi, lo := p.Pack()
		return hi != 0 || lo != 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// The rank-0, first-segment, offset-0 word cell is the sharpest case.
	p := Ptr{Rank: 0, Kind: KindWord, Seg: 1, Off: 0}
	if hi, lo := p.Pack(); hi == 0 && lo == 0 {
		t.Fatal("rank-0 seg-1 pointer collides with nil encoding")
	}
}

func TestPtrAdd(t *testing.T) {
	p := Ptr{Rank: 3, Kind: KindByte, Seg: 2, Off: 10}
	q := p.Add(32)
	if q.Off != 42 || q.Rank != 3 || q.Seg != 2 || q.Kind != KindByte {
		t.Fatalf("Add produced %+v", q)
	}
	if p.Off != 10 {
		t.Fatal("Add mutated the receiver")
	}
}

func TestPtrString(t *testing.T) {
	if s := (Ptr{}).String(); s != "<nil>" {
		t.Fatalf("nil String = %q", s)
	}
	p := Ptr{Rank: 7, Kind: KindWord, Seg: 2, Off: 5}
	if s := p.String(); s != "7:word2+5" {
		t.Fatalf("String = %q", s)
	}
}

func TestKindString(t *testing.T) {
	if KindWord.String() != "word" || KindByte.String() != "byte" {
		t.Fatal("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind should still format")
	}
}

func TestPairPtrHelpers(t *testing.T) {
	p := Ptr{Rank: 1, Kind: KindWord, Seg: 3, Off: 8}
	if got := PackPtr(p).UnpackPtr(); got != p {
		t.Fatalf("PackPtr/UnpackPtr round trip: %v != %v", got, p)
	}
	var nilPair Pair
	if !nilPair.UnpackPtr().IsNil() {
		t.Fatal("zero Pair should unpack to nil pointer")
	}
}

// TestQuickPtrViaReflection exercises Pack/Unpack with quick's own value
// generation over the offset space.
func TestQuickPtrViaReflection(t *testing.T) {
	f := func(rank uint16, seg uint16, off uint32, word bool) bool {
		kind := KindByte
		if word {
			kind = KindWord
		}
		p := Ptr{Rank: int32(rank), Kind: kind, Seg: int32(seg) + 1, Off: int64(off)}
		hi, lo := p.Pack()
		return Unpack(hi, lo) == p
	}
	cfg := &quick.Config{MaxCount: 3000, Values: func(vals []reflect.Value, r *rand.Rand) {
		vals[0] = reflect.ValueOf(uint16(r.Intn(1 << 16)))
		vals[1] = reflect.ValueOf(uint16(r.Intn(1 << 16)))
		vals[2] = reflect.ValueOf(uint32(r.Int63n(1 << 32)))
		vals[3] = reflect.ValueOf(r.Intn(2) == 0)
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
