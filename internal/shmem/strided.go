package shmem

import "fmt"

// MaxStrideLevels bounds the nesting depth of a strided transfer, matching
// ARMCI's ARMCI_MAX_STRIDE_LEVEL.
const MaxStrideLevels = 8

// Strided describes an ARMCI-style non-contiguous memory region relative
// to a base pointer:
//
//	Count[0]            bytes in each innermost contiguous run
//	Count[l], l >= 1    number of blocks at level l
//	Stride[l-1]         distance in bytes between the starts of
//	                    consecutive level-l blocks
//
// A 2-D sub-matrix of w-byte rows inside an array with a leading dimension
// of ld bytes is Strided{Count: []int{w, rows}, Stride: []int64{ld}}.
// A nil or zero-level descriptor denotes a contiguous run of Count[0]
// bytes.
type Strided struct {
	Count  []int
	Stride []int64
}

// Contig returns the descriptor of a contiguous n-byte run.
func Contig(n int) Strided { return Strided{Count: []int{n}} }

// Levels returns the number of stride levels.
func (d Strided) Levels() int { return len(d.Stride) }

// Validate reports a descriptive error if the descriptor is malformed.
func (d Strided) Validate() error {
	if len(d.Count) == 0 {
		return fmt.Errorf("shmem: strided descriptor has empty count vector")
	}
	if len(d.Count) != len(d.Stride)+1 {
		return fmt.Errorf("shmem: strided descriptor has %d counts for %d stride levels (want levels+1)",
			len(d.Count), len(d.Stride))
	}
	if len(d.Stride) > MaxStrideLevels {
		return fmt.Errorf("shmem: %d stride levels exceeds maximum %d", len(d.Stride), MaxStrideLevels)
	}
	for i, c := range d.Count {
		if c <= 0 {
			return fmt.Errorf("shmem: strided count[%d] = %d must be positive", i, c)
		}
	}
	return nil
}

// TotalBytes returns the number of payload bytes the descriptor covers.
func (d Strided) TotalBytes() int {
	if len(d.Count) == 0 {
		return 0
	}
	n := d.Count[0]
	for _, c := range d.Count[1:] {
		n *= c
	}
	return n
}

// NumRuns returns the number of contiguous runs the descriptor covers.
func (d Strided) NumRuns() int {
	n := 1
	for _, c := range d.Count[1:] {
		n *= c
	}
	return n
}

// EachRun invokes fn once per contiguous run, passing the byte offset of
// the run relative to the base pointer and the run length. Runs are
// visited in ascending level order (innermost first), which matches the
// order a flattened payload buffer is packed in.
func (d Strided) EachRun(fn func(off int64, n int)) {
	if err := d.Validate(); err != nil {
		panic(err)
	}
	levels := d.Levels()
	if levels == 0 {
		fn(0, d.Count[0])
		return
	}
	idx := make([]int, levels) // idx[l] counts blocks at level l+1
	for {
		var off int64
		for l := 0; l < levels; l++ {
			off += int64(idx[l]) * d.Stride[l]
		}
		fn(off, d.Count[0])
		// Odometer increment over Count[1..levels].
		l := 0
		for ; l < levels; l++ {
			idx[l]++
			if idx[l] < d.Count[l+1] {
				break
			}
			idx[l] = 0
		}
		if l == levels {
			return
		}
	}
}

// PackFrom gathers the region described by d at base src in the space into
// a flat buffer. It is used by the origin side of strided transfers when
// the source is local memory.
func (s *Space) PackFrom(src Ptr, d Strided) []byte {
	out := make([]byte, 0, d.TotalBytes())
	s.mu.Lock()
	defer s.mu.Unlock()
	d.EachRun(func(off int64, n int) {
		out = append(out, s.bytesAt(src.Add(off), int64(n))...)
	})
	return out
}

// UnpackTo scatters the flat buffer data into the region described by d at
// base dst. It is the destination-side operation of a strided put.
func (s *Space) UnpackTo(dst Ptr, d Strided, data []byte) {
	if want := d.TotalBytes(); want != len(data) {
		panic(fmt.Sprintf("shmem: strided unpack of %d bytes into descriptor covering %d", len(data), want))
	}
	s.locked(func() {
		pos := 0
		d.EachRun(func(off int64, n int) {
			copy(s.bytesAt(dst.Add(off), int64(n)), data[pos:pos+n])
			s.mark(dst.Add(off), int64(n))
			pos += n
		})
	})
	s.notify()
}

// AccumulateStrided performs dst += scale*src elementwise over the strided
// region at dst, consuming the flat buffer data run by run.
func (s *Space) AccumulateStrided(op AccOp, dst Ptr, d Strided, data []byte, scale float64) {
	if want := d.TotalBytes(); want != len(data) {
		panic(fmt.Sprintf("shmem: strided accumulate of %d bytes into descriptor covering %d", len(data), want))
	}
	pos := 0
	d.EachRun(func(off int64, n int) {
		s.Accumulate(op, dst.Add(off), data[pos:pos+n], scale)
		pos += n
	})
}
