package shmem

import (
	"fmt"
	"sort"
)

// Delta capture — the shmem half of the elastic replication protocol.
//
// A rank that replicates its state to a peer calls Protect once after its
// application segments are allocated: from then on every mutation of
// those segments marks a fixed-size page dirty, and CaptureDelta drains
// the dirty set into a deterministic list of (pointer, raw bytes) ranges
// — what the replicator streams to the peer at each sync epoch. Segments
// allocated after Protect (the replicator's own shadow and staging
// areas) are deliberately outside the protected set: they hold replica
// state that must survive a rollback, and replicating a replica would
// cascade.

const (
	// PageWords is the dirty-tracking granularity of word segments.
	PageWords = 32
	// PageBytes is the dirty-tracking granularity of byte segments; one
	// byte page spans the same 256 bytes as one word page.
	PageBytes = 256
)

// pageKey names one dirty page of a rank's protected memory.
type pageKey struct {
	kind Kind
	seg  int32
	page int32
}

// protState is the per-rank dirty-tracking state. The protected set is
// the window of segments (wbase, words] × (bbase, bytes] in allocation
// order: segments at or below the base (runtime internals allocated
// before the application's state) and segments allocated after Protect
// (the replicator's shadow and staging) are both outside it.
type protState struct {
	on    bool
	wbase int // word segments below the protected window
	bbase int // byte segments below the protected window
	words int // protected word-segment count (prefix of rankMem.words)
	bytes int // protected byte-segment count (prefix of rankMem.bytes)
	dirty map[pageKey]struct{}
}

// DeltaRange is one contiguous dirty range of protected memory: the
// pointer to its first cell or byte and its raw little-endian contents
// (8 bytes per cell for word ranges).
type DeltaRange struct {
	Ptr  Ptr
	Data []byte
}

// RankSnapshot is a deep copy of one rank's protected segments, taken at
// a sync-epoch commit and restored on rollback.
type RankSnapshot struct {
	Epoch uint64
	words [][]int64
	bytes [][]byte
}

// Protect marks rank's current segments as its protected set and starts
// dirty-page tracking over them. Call it once, after the application's
// collective allocations and before the first delta capture; segments
// allocated later are excluded from tracking, capture, snapshot and
// restore.
func (s *Space) Protect(rank int) { s.ProtectRange(rank, 0, 0) }

// ProtectRange is Protect with an explicit lower bound: the first
// baseWords word segments and baseBytes byte segments — runtime
// internals allocated before the application's state — stay outside
// the protected set, so captures, snapshots and rollbacks never touch
// live synchronization machinery.
func (s *Space) ProtectRange(rank, baseWords, baseBytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.prot == nil {
		s.prot = make([]protState, len(s.ranks))
	}
	r := &s.ranks[rank]
	if baseWords > len(r.words) || baseBytes > len(r.bytes) {
		panic(fmt.Sprintf("shmem: protect base %d/%d beyond rank %d's %d/%d segments",
			baseWords, baseBytes, rank, len(r.words), len(r.bytes)))
	}
	s.prot[rank] = protState{
		on:    true,
		wbase: baseWords,
		bbase: baseBytes,
		words: len(r.words),
		bytes: len(r.bytes),
		dirty: make(map[pageKey]struct{}),
	}
}

// Protected reports whether rank has a protected set installed.
func (s *Space) Protected(rank int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.prot != nil && s.prot[rank].on
}

// mark records the pages touched by a mutation of n cells/bytes at p.
// Callers hold s.mu. Accesses outside the protected prefix — including
// every access before Protect — are ignored.
func (s *Space) mark(p Ptr, n int64) {
	if s.prot == nil || n <= 0 {
		return
	}
	ps := &s.prot[p.Rank]
	if !ps.on {
		return
	}
	pageSize := int64(PageBytes)
	base, limit := ps.bbase, ps.bytes
	if p.Kind == KindWord {
		pageSize = PageWords
		base, limit = ps.wbase, ps.words
	}
	if int(p.Seg) <= base || int(p.Seg) > limit {
		return
	}
	for pg := p.Off / pageSize; pg <= (p.Off+n-1)/pageSize; pg++ {
		ps.dirty[pageKey{kind: p.Kind, seg: p.Seg, page: int32(pg)}] = struct{}{}
	}
}

// CaptureDelta drains rank's dirty set into a deterministic list of
// ranges: sorted by (kind, segment, page), with consecutive pages of one
// segment merged. reset clears the dirty set, so the next capture
// carries only later mutations.
func (s *Space) CaptureDelta(rank int, reset bool) []DeltaRange {
	s.mu.Lock()
	defer s.mu.Unlock()
	ps := s.protLocked(rank)
	keys := make([]pageKey, 0, len(ps.dirty))
	for k := range ps.dirty {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.seg != b.seg {
			return a.seg < b.seg
		}
		return a.page < b.page
	})
	var out []DeltaRange
	for i := 0; i < len(keys); {
		j := i + 1
		for j < len(keys) && keys[j].kind == keys[i].kind && keys[j].seg == keys[i].seg &&
			keys[j].page == keys[j-1].page+1 {
			j++
		}
		out = append(out, s.rangeLocked(rank, keys[i], int(keys[j-1].page-keys[i].page)+1))
		i = j
	}
	if reset {
		ps.dirty = make(map[pageKey]struct{})
	}
	return out
}

// CaptureFull returns rank's entire protected set as one range per
// segment — the re-establishing transfer after a membership change,
// which must rebuild a respawned peer's replica from nothing.
func (s *Space) CaptureFull(rank int, reset bool) []DeltaRange {
	s.mu.Lock()
	defer s.mu.Unlock()
	ps := s.protLocked(rank)
	r := &s.ranks[rank]
	out := make([]DeltaRange, 0, (ps.words-ps.wbase)+(ps.bytes-ps.bbase))
	for seg := ps.wbase; seg < ps.words; seg++ {
		data := make([]byte, 8*len(r.words[seg]))
		for i, v := range r.words[seg] {
			lePutUint64(data[8*i:], uint64(v))
		}
		out = append(out, DeltaRange{Ptr: Ptr{Rank: int32(rank), Kind: KindWord, Seg: int32(seg + 1)}, Data: data})
	}
	for seg := ps.bbase; seg < ps.bytes; seg++ {
		out = append(out, DeltaRange{Ptr: Ptr{Rank: int32(rank), Kind: KindByte, Seg: int32(seg + 1)}, Data: append([]byte(nil), r.bytes[seg]...)})
	}
	if reset {
		ps.dirty = make(map[pageKey]struct{})
	}
	return out
}

// rangeLocked serializes pages consecutive pages of one segment starting
// at key k, clamped to the segment end. Callers hold s.mu.
func (s *Space) rangeLocked(rank int, k pageKey, pages int) DeltaRange {
	r := &s.ranks[rank]
	if k.kind == KindWord {
		seg := r.words[k.seg-1]
		lo := int(k.page) * PageWords
		hi := lo + pages*PageWords
		if hi > len(seg) {
			hi = len(seg)
		}
		data := make([]byte, 8*(hi-lo))
		for i, v := range seg[lo:hi] {
			lePutUint64(data[8*i:], uint64(v))
		}
		return DeltaRange{Ptr: Ptr{Rank: int32(rank), Kind: KindWord, Seg: k.seg, Off: int64(lo)}, Data: data}
	}
	seg := r.bytes[k.seg-1]
	lo := int(k.page) * PageBytes
	hi := lo + pages*PageBytes
	if hi > len(seg) {
		hi = len(seg)
	}
	return DeltaRange{Ptr: Ptr{Rank: int32(rank), Kind: KindByte, Seg: k.seg, Off: int64(lo)}, Data: append([]byte(nil), seg[lo:hi]...)}
}

// protLocked returns rank's tracking state, panicking when Protect was
// never called — capturing an unprotected rank is a protocol bug, not a
// recoverable condition. Callers hold s.mu.
func (s *Space) protLocked(rank int) *protState {
	if s.prot == nil || !s.prot[rank].on {
		panic(fmt.Sprintf("shmem: rank %d has no protected set (Protect not called)", rank))
	}
	return &s.prot[rank]
}

// Snapshot deep-copies rank's protected segments. The elastic runner
// takes one at every sync-epoch commit; Restore rewinds to it when a
// membership change forces survivors back to the resume epoch.
func (s *Space) Snapshot(rank int, epoch uint64) *RankSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	ps := s.protLocked(rank)
	r := &s.ranks[rank]
	snap := &RankSnapshot{Epoch: epoch}
	for seg := ps.wbase; seg < ps.words; seg++ {
		snap.words = append(snap.words, append([]int64(nil), r.words[seg]...))
	}
	for seg := ps.bbase; seg < ps.bytes; seg++ {
		snap.bytes = append(snap.bytes, append([]byte(nil), r.bytes[seg]...))
	}
	return snap
}

// Restore copies snap back over rank's protected segments and clears the
// dirty set (the restored state is exactly the peer-replicated epoch, so
// nothing is pending replication).
func (s *Space) Restore(rank int, snap *RankSnapshot) {
	s.locked(func() {
		ps := s.protLocked(rank)
		r := &s.ranks[rank]
		if len(snap.words) != ps.words-ps.wbase || len(snap.bytes) != ps.bytes-ps.bbase {
			panic(fmt.Sprintf("shmem: snapshot shape %d/%d does not match protected set %d/%d",
				len(snap.words), len(snap.bytes), ps.words-ps.wbase, ps.bytes-ps.bbase))
		}
		for seg, w := range snap.words {
			copy(r.words[ps.wbase+seg], w)
		}
		for seg, b := range snap.bytes {
			copy(r.bytes[ps.bbase+seg], b)
		}
		ps.dirty = make(map[pageKey]struct{})
	})
	s.notify()
}

// WipeProtected zeroes rank's protected segments — the in-process
// emulation of a rank crash losing its memory, so restore paths can be
// exercised on the single-process fabrics.
func (s *Space) WipeProtected(rank int) {
	s.locked(func() {
		ps := s.protLocked(rank)
		r := &s.ranks[rank]
		for seg := ps.wbase; seg < ps.words; seg++ {
			w := r.words[seg]
			for i := range w {
				w[i] = 0
			}
		}
		for seg := ps.bbase; seg < ps.bytes; seg++ {
			b := r.bytes[seg]
			for i := range b {
				b[i] = 0
			}
		}
		ps.dirty = make(map[pageKey]struct{})
	})
	s.notify()
}

// ReadRaw serializes n bytes of memory at p into little-endian raw form.
// For word pointers, p.Off is in cells and n in bytes (8 per cell).
func (s *Space) ReadRaw(p Ptr, n int) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p.Kind == KindByte {
		return append([]byte(nil), s.bytesAt(p, int64(n))...)
	}
	if n%8 != 0 {
		panic(fmt.Sprintf("shmem: raw word read %v+%d not cell-aligned", p, n))
	}
	w := s.words(p, int64(n/8))
	out := make([]byte, n)
	for i, v := range w {
		lePutUint64(out[8*i:], uint64(v))
	}
	return out
}

// WriteRaw writes little-endian raw bytes at p, the inverse of ReadRaw
// and the application side of a replica range: word pointers take p.Off
// in cells and data as 8 bytes per cell.
func (s *Space) WriteRaw(p Ptr, data []byte) {
	s.locked(func() {
		if p.Kind == KindByte {
			copy(s.bytesAt(p, int64(len(data))), data)
			s.mark(p, int64(len(data)))
			return
		}
		if len(data)%8 != 0 {
			panic(fmt.Sprintf("shmem: raw word write of %d bytes not cell-aligned", len(data)))
		}
		w := s.words(p, int64(len(data)/8))
		for i := range w {
			w[i] = int64(leUint64(data[8*i:]))
		}
		s.mark(p, int64(len(w)))
	})
	s.notify()
}

// ProtectedShape returns the cell/byte counts of rank's protected
// segments, in allocation order — what a peer needs to lay out a
// mirrored shadow without communication (allocation is SPMD-symmetric).
func (s *Space) ProtectedShape(rank int) (words, bytes []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ps := s.protLocked(rank)
	r := &s.ranks[rank]
	for seg := ps.wbase; seg < ps.words; seg++ {
		words = append(words, len(r.words[seg]))
	}
	for seg := ps.bbase; seg < ps.bytes; seg++ {
		bytes = append(bytes, len(r.bytes[seg]))
	}
	return words, bytes
}
