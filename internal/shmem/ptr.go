// Package shmem models the globally addressable shared memory of an ARMCI
// cluster: every process owns segments of remotely accessible memory, and a
// global pointer names a location as a (rank, segment, offset) tuple — the
// same representation the paper uses ("remote memory is referenced using a
// tuple of the remote process' id number and the virtual memory address").
//
// Two segment kinds exist:
//
//   - word segments hold int64 cells and support the ARMCI atomic
//     operations — fetch-and-add, swap, compare&swap — plus the operations
//     the paper adds for software queuing locks: atomic swap and
//     compare&swap on PAIRS of longs, which is exactly what is needed to
//     store a global pointer atomically.
//
//   - byte segments hold bulk array data and support contiguous and
//     strided put/get/accumulate, ARMCI's signature non-contiguous
//     transfers.
//
// All fabrics share one Space per cluster (the emulation runs in a single
// OS process even when messages cross real TCP sockets); the ARMCI protocol
// layers enforce that memory on a remote *node* is only touched via data
// server messages, never directly.
package shmem

import "fmt"

// Kind distinguishes word segments from byte segments.
type Kind uint8

const (
	// KindWord segments hold int64 cells addressed by word index.
	KindWord Kind = 1
	// KindByte segments hold raw bytes addressed by byte offset.
	KindByte Kind = 2
)

func (k Kind) String() string {
	switch k {
	case KindWord:
		return "word"
	case KindByte:
		return "byte"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Ptr is a global pointer: it names one cell (word segments) or one byte
// (byte segments) in the memory of some process. The zero Ptr is the nil
// pointer; segment numbering starts at 1 so no valid location is zero.
type Ptr struct {
	Rank int32 // owning process
	Kind Kind
	Seg  int32 // 1-based segment id within (Rank, Kind)
	Off  int64 // word index or byte offset within the segment
}

// IsNil reports whether p is the nil global pointer.
func (p Ptr) IsNil() bool { return p == Ptr{} }

// Add returns p displaced by n cells (words or bytes, by segment kind).
func (p Ptr) Add(n int64) Ptr { p.Off += n; return p }

// String formats the pointer for diagnostics.
func (p Ptr) String() string {
	if p.IsNil() {
		return "<nil>"
	}
	return fmt.Sprintf("%d:%s%d+%d", p.Rank, p.Kind, p.Seg, p.Off)
}

// Pack encodes the pointer into two int64 words so it can live in a pair
// of atomic cells, mirroring the paper's pair-of-longs representation. The
// nil pointer packs to (0, 0).
func (p Ptr) Pack() (hi, lo int64) {
	if p.IsNil() {
		return 0, 0
	}
	hi = int64(p.Rank)<<32 | int64(uint32(p.Seg))<<2 | int64(p.Kind)
	return hi, p.Off
}

// Unpack decodes a pointer previously encoded with Pack.
func Unpack(hi, lo int64) Ptr {
	if hi == 0 && lo == 0 {
		return Ptr{}
	}
	return Ptr{
		Rank: int32(hi >> 32),
		Kind: Kind(hi & 0b11),
		Seg:  int32(uint32(hi) >> 2),
		Off:  lo,
	}
}
