package shmem

import (
	"fmt"
	"math"
	"sync"
)

// Space is the cluster-wide collection of remotely accessible segments.
// One Space backs one emulated cluster. All mutating operations are
// serialized by an internal mutex so that the concurrent fabrics (channel
// and TCP) are data-race free; the simulated fabric runs one actor at a
// time and never contends.
type Space struct {
	mu       sync.Mutex
	nodeOf   []int // rank -> node index
	numNodes int
	ranks    []rankMem
	prot     []protState // per-rank dirty-page tracking (nil until Protect)

	// onWrite, when non-nil, is invoked (outside the space lock) after
	// every mutation. The concurrent fabrics use it to wake processes
	// blocked in WaitUntil on local memory (MCS locked flags, op_done
	// counters); the simulated fabric re-evaluates predicates on its own.
	onWrite func()
}

type rankMem struct {
	words [][]int64
	bytes [][]byte
}

// NewSpace creates a Space for len(nodeOf) processes, where nodeOf maps
// each rank to its node index (processes on the same node share an SMP and
// may access each other's segments directly).
func NewSpace(nodeOf []int) *Space {
	s := &Space{nodeOf: append([]int(nil), nodeOf...)}
	for _, n := range nodeOf {
		if n+1 > s.numNodes {
			s.numNodes = n + 1
		}
	}
	s.ranks = make([]rankMem, len(nodeOf))
	return s
}

// NumNodes returns the number of SMP nodes in the space.
func (s *Space) NumNodes() int { return s.numNodes }

// SetOnWrite installs the post-mutation notification hook.
func (s *Space) SetOnWrite(fn func()) { s.onWrite = fn }

// NumRanks returns the number of processes in the space.
func (s *Space) NumRanks() int { return len(s.ranks) }

// Node returns the node index of rank.
func (s *Space) Node(rank int) int { return s.nodeOf[rank] }

// SameNode reports whether the two ranks are co-located on one SMP node.
func (s *Space) SameNode(a, b int) bool { return s.nodeOf[a] == s.nodeOf[b] }

// notify runs the onWrite hook, if any.
func (s *Space) notify() {
	if s.onWrite != nil {
		s.onWrite()
	}
}

// locked runs fn holding the space mutex. Mutators route through it so
// that a panic inside fn — a bad pointer, an out-of-range access —
// unwinds with the mutex released: on the simulated fabric such a panic
// is recovered and reported as the run's failure, and a mutex left
// locked would instead freeze every other process into a silent hang.
// The onWrite hook deliberately stays outside fn: it re-enters
// scheduler state that must never be touched under the space lock.
func (s *Space) locked(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn()
}

// AllocWords allocates a zeroed word segment of n cells owned by rank and
// returns a pointer to its first cell.
func (s *Space) AllocWords(rank, n int) Ptr {
	if n <= 0 {
		panic(fmt.Sprintf("shmem: AllocWords(%d, %d): non-positive size", rank, n))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r := &s.ranks[rank]
	r.words = append(r.words, make([]int64, n))
	return Ptr{Rank: int32(rank), Kind: KindWord, Seg: int32(len(r.words)), Off: 0}
}

// AllocBytes allocates a zeroed byte segment of n bytes owned by rank and
// returns a pointer to its first byte.
func (s *Space) AllocBytes(rank, n int) Ptr {
	if n <= 0 {
		panic(fmt.Sprintf("shmem: AllocBytes(%d, %d): non-positive size", rank, n))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r := &s.ranks[rank]
	r.bytes = append(r.bytes, make([]byte, n))
	return Ptr{Rank: int32(rank), Kind: KindByte, Seg: int32(len(r.bytes)), Off: 0}
}

// words resolves a word pointer to its backing slice starting at p.
// Callers must hold s.mu.
func (s *Space) words(p Ptr, n int64) []int64 {
	if p.Kind != KindWord {
		panic(fmt.Sprintf("shmem: %v is not a word pointer", p))
	}
	seg := s.ranks[p.Rank].words[p.Seg-1]
	if p.Off < 0 || p.Off+n > int64(len(seg)) {
		panic(fmt.Sprintf("shmem: word access %v+%d out of range (segment %d cells)", p, n, len(seg)))
	}
	return seg[p.Off : p.Off+n]
}

// bytesAt resolves a byte pointer to its backing slice starting at p.
// Callers must hold s.mu.
func (s *Space) bytesAt(p Ptr, n int64) []byte {
	if p.Kind != KindByte {
		panic(fmt.Sprintf("shmem: %v is not a byte pointer", p))
	}
	seg := s.ranks[p.Rank].bytes[p.Seg-1]
	if p.Off < 0 || p.Off+n > int64(len(seg)) {
		panic(fmt.Sprintf("shmem: byte access %v+%d out of range (segment %d bytes)", p, n, len(seg)))
	}
	return seg[p.Off : p.Off+n]
}

// --- word operations (ARMCI atomic memory operations) ---

// Load atomically reads the cell at p.
func (s *Space) Load(p Ptr) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.words(p, 1)[0]
}

// Store atomically writes v to the cell at p.
func (s *Space) Store(p Ptr, v int64) {
	s.locked(func() { s.words(p, 1)[0] = v; s.mark(p, 1) })
	s.notify()
}

// FetchAdd atomically adds delta to the cell at p and returns the previous
// value (ARMCI_RMW fetch-and-add; the ticket lock's fetch-and-increment).
func (s *Space) FetchAdd(p Ptr, delta int64) int64 {
	var old int64
	s.locked(func() {
		w := s.words(p, 1)
		old = w[0]
		w[0] += delta
		s.mark(p, 1)
	})
	s.notify()
	return old
}

// Swap atomically replaces the cell at p with v and returns the previous
// value.
func (s *Space) Swap(p Ptr, v int64) int64 {
	var old int64
	s.locked(func() {
		w := s.words(p, 1)
		old = w[0]
		w[0] = v
		s.mark(p, 1)
	})
	s.notify()
	return old
}

// CompareAndSwap atomically stores new in the cell at p if it holds old.
// It returns the value observed before the operation (equal to old exactly
// when the swap happened).
func (s *Space) CompareAndSwap(p Ptr, old, new int64) int64 {
	var prev int64
	s.locked(func() {
		w := s.words(p, 1)
		prev = w[0]
		if prev == old {
			w[0] = new
			s.mark(p, 1)
		}
	})
	s.notify()
	return prev
}

// Pair is a pair of longs — the operand size of the atomic operations the
// paper adds to ARMCI so global pointers can be manipulated atomically.
type Pair struct{ Hi, Lo int64 }

// PackPtr converts a global pointer to its two-word representation.
func PackPtr(p Ptr) Pair { hi, lo := p.Pack(); return Pair{hi, lo} }

// UnpackPtr converts a two-word representation back to a pointer.
func (v Pair) UnpackPtr() Ptr { return Unpack(v.Hi, v.Lo) }

// LoadPair atomically reads the two consecutive cells at p.
func (s *Space) LoadPair(p Ptr) Pair {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.words(p, 2)
	return Pair{w[0], w[1]}
}

// StorePair atomically writes the two consecutive cells at p.
func (s *Space) StorePair(p Ptr, v Pair) {
	s.locked(func() {
		w := s.words(p, 2)
		w[0], w[1] = v.Hi, v.Lo
		s.mark(p, 2)
	})
	s.notify()
}

// SwapPair atomically replaces the two consecutive cells at p with v and
// returns their previous contents.
func (s *Space) SwapPair(p Ptr, v Pair) Pair {
	var old Pair
	s.locked(func() {
		w := s.words(p, 2)
		old = Pair{w[0], w[1]}
		w[0], w[1] = v.Hi, v.Lo
		s.mark(p, 2)
	})
	s.notify()
	return old
}

// CompareAndSwapPair atomically stores new in the two consecutive cells at
// p if they hold old. It returns the pair observed before the operation
// (equal to old exactly when the swap happened).
func (s *Space) CompareAndSwapPair(p Ptr, old, new Pair) Pair {
	var prev Pair
	s.locked(func() {
		w := s.words(p, 2)
		prev = Pair{w[0], w[1]}
		if prev == old {
			w[0], w[1] = new.Hi, new.Lo
			s.mark(p, 2)
		}
	})
	s.notify()
	return prev
}

// --- byte operations (remote memory copy and accumulate) ---

// Put copies data into memory at p.
func (s *Space) Put(p Ptr, data []byte) {
	s.locked(func() { copy(s.bytesAt(p, int64(len(data))), data); s.mark(p, int64(len(data))) })
	s.notify()
}

// Get copies n bytes out of memory at p.
func (s *Space) Get(p Ptr, n int) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]byte, n)
	copy(out, s.bytesAt(p, int64(n)))
	return out
}

// AccOp selects the element type of an accumulate operation.
type AccOp uint8

const (
	// AccFloat64 interprets the region as float64 and performs
	// dst += scale * src with scale carried as a float64.
	AccFloat64 AccOp = 1
	// AccInt64 interprets the region as int64 and performs
	// dst += scale * src with scale carried as an int64 in the float bits.
	AccInt64 AccOp = 2
)

// Accumulate atomically performs dst += scale*src elementwise at p. The
// data length must be a multiple of 8. scale is interpreted per op.
func (s *Space) Accumulate(op AccOp, p Ptr, data []byte, scale float64) {
	if len(data)%8 != 0 {
		panic(fmt.Sprintf("shmem: accumulate length %d not a multiple of 8", len(data)))
	}
	s.locked(func() {
		dst := s.bytesAt(p, int64(len(data)))
		s.mark(p, int64(len(data)))
		switch op {
		case AccFloat64:
			for i := 0; i+8 <= len(data); i += 8 {
				d := math.Float64frombits(leUint64(dst[i:]))
				v := math.Float64frombits(leUint64(data[i:]))
				lePutUint64(dst[i:], math.Float64bits(d+scale*v))
			}
		case AccInt64:
			k := int64(scale)
			for i := 0; i+8 <= len(data); i += 8 {
				d := int64(leUint64(dst[i:]))
				v := int64(leUint64(data[i:]))
				lePutUint64(dst[i:], uint64(d+k*v))
			}
		default:
			panic(fmt.Sprintf("shmem: unknown accumulate op %d", op))
		}
	})
	s.notify()
}

func leUint64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func lePutUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
