package shmem

import (
	"bytes"
	"reflect"
	"testing"
)

// TestDirtyTrackingCapturesMutations pins the delta-capture contract:
// every mutator marks the pages it touched, capture drains them in a
// deterministic order with consecutive pages merged, and reset leaves
// the next capture empty.
func TestDirtyTrackingCapturesMutations(t *testing.T) {
	s := NewSpace([]int{0, 1})
	w := s.AllocWords(0, 3*PageWords)
	b := s.AllocBytes(0, 2*PageBytes)
	s.Protect(0)

	if got := s.CaptureDelta(0, true); len(got) != 0 {
		t.Fatalf("fresh protected set already dirty: %v", got)
	}

	s.Store(w, 7)
	s.FetchAdd(w.Add(int64(2*PageWords)), 1) // page 2 of the word segment
	s.Put(b, []byte{1, 2, 3})

	d := s.CaptureDelta(0, true)
	if len(d) != 3 {
		t.Fatalf("capture = %d ranges, want 3: %+v", len(d), d)
	}
	// Word ranges first (pages 0 and 2, not merged across the gap), the
	// byte page after.
	if d[0].Ptr.Off != 0 || d[1].Ptr.Off != int64(2*PageWords) || d[2].Ptr.Kind != KindByte {
		t.Fatalf("capture order wrong: %+v", d)
	}
	if int64(leUint64(d[0].Data)) != 7 {
		t.Fatalf("word page contents wrong: % x", d[0].Data[:8])
	}
	if got := s.CaptureDelta(0, true); len(got) != 0 {
		t.Fatalf("dirty set survived reset: %v", got)
	}

	// Consecutive dirty pages merge into one range.
	s.Store(w, 1)
	s.Store(w.Add(int64(PageWords)), 2)
	if d := s.CaptureDelta(0, true); len(d) != 1 || len(d[0].Data) != 8*2*PageWords {
		t.Fatalf("consecutive pages not merged: %+v", d)
	}

	// Mutations outside the protected prefix are invisible.
	post := s.AllocWords(0, 8)
	s.Store(post, 9)
	if d := s.CaptureDelta(0, true); len(d) != 0 {
		t.Fatalf("unprotected segment tracked: %+v", d)
	}
}

// TestSnapshotRestoreRoundTrip pins rollback: restore rewinds protected
// segments to the snapshot, leaves later segments alone, and a full
// capture of a wiped-then-restored rank matches the original.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := NewSpace([]int{0})
	w := s.AllocWords(0, PageWords)
	b := s.AllocBytes(0, PageBytes)
	s.Protect(0)
	unprot := s.AllocWords(0, 1)

	s.Store(w, 42)
	s.Put(b, []byte("hello"))
	s.Store(unprot, 5)
	snap := s.Snapshot(0, 3)

	s.Store(w, 99)
	s.Put(b, []byte("XXXXX"))
	s.Restore(0, snap)
	if got := s.Load(w); got != 42 {
		t.Fatalf("restore lost word write: %d", got)
	}
	if got := s.Get(b, 5); !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("restore lost byte write: %q", got)
	}
	if got := s.Load(unprot); got != 5 {
		t.Fatalf("restore clobbered unprotected segment: %d", got)
	}

	full := s.CaptureFull(0, false)
	s.WipeProtected(0)
	if got := s.Load(w); got != 0 {
		t.Fatalf("wipe left word %d", got)
	}
	for _, r := range full {
		s.WriteRaw(r.Ptr, r.Data)
	}
	if !reflect.DeepEqual(s.CaptureFull(0, false), full) {
		t.Fatal("full capture + raw write did not reproduce the rank image")
	}
	if got := s.Load(w); got != 42 {
		t.Fatalf("raw restore lost word write: %d", got)
	}
}

// TestRawRoundTrip pins the ReadRaw/WriteRaw symmetry on both kinds.
func TestRawRoundTrip(t *testing.T) {
	s := NewSpace([]int{0})
	w := s.AllocWords(0, 4)
	b := s.AllocBytes(0, 16)
	s.Store(w.Add(1), -12345)
	s.Put(b.Add(2), []byte{9, 8, 7})

	raw := s.ReadRaw(w, 32)
	s.Store(w.Add(1), 0)
	s.WriteRaw(w, raw)
	if got := s.Load(w.Add(1)); got != -12345 {
		t.Fatalf("word raw round trip lost value: %d", got)
	}
	rb := s.ReadRaw(b, 16)
	s.Put(b.Add(2), []byte{0, 0, 0})
	s.WriteRaw(b, rb)
	if got := s.Get(b.Add(2), 3); !bytes.Equal(got, []byte{9, 8, 7}) {
		t.Fatalf("byte raw round trip lost value: %v", got)
	}
}
