package shmem

import (
	"encoding/binary"
	"math"
	"sync"
	"testing"
)

func newTestSpace(t *testing.T, ranks int) *Space {
	t.Helper()
	nodes := make([]int, ranks)
	for i := range nodes {
		nodes[i] = i
	}
	return NewSpace(nodes)
}

func TestAllocAndBasicWordOps(t *testing.T) {
	s := newTestSpace(t, 2)
	p := s.AllocWords(1, 4)
	if p.Rank != 1 || p.Kind != KindWord || p.Seg != 1 {
		t.Fatalf("unexpected pointer %+v", p)
	}
	if got := s.Load(p); got != 0 {
		t.Fatalf("fresh cell = %d", got)
	}
	s.Store(p, 7)
	if got := s.Load(p); got != 7 {
		t.Fatalf("after store, cell = %d", got)
	}
	if old := s.FetchAdd(p, 5); old != 7 {
		t.Fatalf("FetchAdd returned %d, want 7", old)
	}
	if got := s.Load(p); got != 12 {
		t.Fatalf("after FetchAdd, cell = %d", got)
	}
	if old := s.Swap(p, -1); old != 12 {
		t.Fatalf("Swap returned %d, want 12", old)
	}
	if got := s.Load(p); got != -1 {
		t.Fatalf("after Swap, cell = %d", got)
	}
}

func TestCompareAndSwapSemantics(t *testing.T) {
	s := newTestSpace(t, 1)
	p := s.AllocWords(0, 1)
	s.Store(p, 10)
	if prev := s.CompareAndSwap(p, 99, 1); prev != 10 {
		t.Fatalf("failed CAS returned %d, want observed 10", prev)
	}
	if got := s.Load(p); got != 10 {
		t.Fatalf("failed CAS mutated cell to %d", got)
	}
	if prev := s.CompareAndSwap(p, 10, 1); prev != 10 {
		t.Fatalf("successful CAS returned %d, want 10", prev)
	}
	if got := s.Load(p); got != 1 {
		t.Fatalf("successful CAS left %d", got)
	}
}

func TestPairOps(t *testing.T) {
	s := newTestSpace(t, 1)
	p := s.AllocWords(0, 2)
	s.StorePair(p, Pair{Hi: 3, Lo: 4})
	if got := s.LoadPair(p); got != (Pair{3, 4}) {
		t.Fatalf("LoadPair = %+v", got)
	}
	if old := s.SwapPair(p, Pair{7, 8}); old != (Pair{3, 4}) {
		t.Fatalf("SwapPair returned %+v", old)
	}
	// Failed pair CAS: observed value returned, memory untouched.
	if prev := s.CompareAndSwapPair(p, Pair{0, 0}, Pair{1, 1}); prev != (Pair{7, 8}) {
		t.Fatalf("failed CASPair returned %+v", prev)
	}
	if got := s.LoadPair(p); got != (Pair{7, 8}) {
		t.Fatalf("failed CASPair mutated to %+v", got)
	}
	// Successful pair CAS.
	if prev := s.CompareAndSwapPair(p, Pair{7, 8}, Pair{9, 10}); prev != (Pair{7, 8}) {
		t.Fatalf("successful CASPair returned %+v", prev)
	}
	if got := s.LoadPair(p); got != (Pair{9, 10}) {
		t.Fatalf("successful CASPair left %+v", got)
	}
}

// TestPairCASPartialMatch: matching only one of the two words must not
// swap — the whole point of the paper's pair-wide compare&swap.
func TestPairCASPartialMatch(t *testing.T) {
	s := newTestSpace(t, 1)
	p := s.AllocWords(0, 2)
	s.StorePair(p, Pair{5, 6})
	if prev := s.CompareAndSwapPair(p, Pair{5, 99}, Pair{0, 0}); prev != (Pair{5, 6}) {
		t.Fatalf("partial-match CAS returned %+v", prev)
	}
	if got := s.LoadPair(p); got != (Pair{5, 6}) {
		t.Fatalf("partial-match CAS mutated to %+v", got)
	}
}

func TestByteOps(t *testing.T) {
	s := newTestSpace(t, 2)
	p := s.AllocBytes(0, 64)
	data := []byte("hello, remote memory!")
	s.Put(p.Add(8), data)
	got := s.Get(p.Add(8), len(data))
	if string(got) != string(data) {
		t.Fatalf("Get = %q", got)
	}
	// Unwritten bytes stay zero.
	if head := s.Get(p, 8); string(head) != string(make([]byte, 8)) {
		t.Fatalf("head corrupted: %v", head)
	}
}

func TestAccumulateFloat64(t *testing.T) {
	s := newTestSpace(t, 1)
	p := s.AllocBytes(0, 32)
	init := make([]byte, 32)
	for i := 0; i < 4; i++ {
		binary.LittleEndian.PutUint64(init[8*i:], math.Float64bits(float64(i)))
	}
	s.Put(p, init)
	add := make([]byte, 32)
	for i := 0; i < 4; i++ {
		binary.LittleEndian.PutUint64(add[8*i:], math.Float64bits(10))
	}
	s.Accumulate(AccFloat64, p, add, 0.5)
	out := s.Get(p, 32)
	for i := 0; i < 4; i++ {
		got := math.Float64frombits(binary.LittleEndian.Uint64(out[8*i:]))
		want := float64(i) + 5
		if got != want {
			t.Fatalf("element %d = %v, want %v", i, got, want)
		}
	}
}

func TestAccumulateInt64(t *testing.T) {
	s := newTestSpace(t, 1)
	p := s.AllocBytes(0, 16)
	add := make([]byte, 16)
	binary.LittleEndian.PutUint64(add, 3)
	neg := int64(-2)
	binary.LittleEndian.PutUint64(add[8:], uint64(neg)) // negative operand
	s.Accumulate(AccInt64, p, add, 4)
	out := s.Get(p, 16)
	if got := int64(binary.LittleEndian.Uint64(out)); got != 12 {
		t.Fatalf("element 0 = %d, want 12", got)
	}
	if got := int64(binary.LittleEndian.Uint64(out[8:])); got != -8 {
		t.Fatalf("element 1 = %d, want -8", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := newTestSpace(t, 1)
	w := s.AllocWords(0, 2)
	b := s.AllocBytes(0, 8)
	cases := []struct {
		name string
		fn   func()
	}{
		{"word overflow", func() { s.Load(w.Add(2)) }},
		{"word negative", func() { s.Load(w.Add(-1)) }},
		{"pair at tail", func() { s.LoadPair(w.Add(1)) }},
		{"byte overflow", func() { s.Get(b, 9) }},
		{"kind mismatch word", func() { s.Load(b) }},
		{"kind mismatch byte", func() { s.Get(w, 1) }},
		{"acc misaligned", func() { s.Accumulate(AccFloat64, b, make([]byte, 7), 1) }},
		{"alloc zero words", func() { s.AllocWords(0, 0) }},
		{"alloc zero bytes", func() { s.AllocBytes(0, 0) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

func TestNodeTopology(t *testing.T) {
	s := NewSpace([]int{0, 0, 1, 1})
	if s.NumRanks() != 4 {
		t.Fatalf("NumRanks = %d", s.NumRanks())
	}
	if !s.SameNode(0, 1) || s.SameNode(1, 2) || !s.SameNode(2, 3) {
		t.Fatal("SameNode topology wrong")
	}
	if s.Node(2) != 1 {
		t.Fatalf("Node(2) = %d", s.Node(2))
	}
}

// TestConcurrentFetchAdd verifies the atomicity the concurrent fabrics
// rely on: parallel increments never lose updates.
func TestConcurrentFetchAdd(t *testing.T) {
	s := newTestSpace(t, 1)
	p := s.AllocWords(0, 1)
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s.FetchAdd(p, 1)
			}
		}()
	}
	wg.Wait()
	if got := s.Load(p); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
}

// TestConcurrentPairSwapChain: N workers swap themselves into a pair cell;
// the set of values ever returned must be exactly {initial} ∪ all but one
// of the written values — i.e. a permutation chain with no duplicates,
// which fails if two swaps ever interleave non-atomically.
func TestConcurrentPairSwapChain(t *testing.T) {
	s := newTestSpace(t, 1)
	p := s.AllocWords(0, 2)
	const workers = 16
	results := make([]Pair, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[w] = s.SwapPair(p, Pair{Hi: int64(w + 1), Lo: int64(-(w + 1))})
		}()
	}
	wg.Wait()
	final := s.LoadPair(p)
	seen := map[Pair]bool{final: true}
	for _, r := range results {
		if seen[r] {
			t.Fatalf("value %+v observed twice — swap not atomic", r)
		}
		seen[r] = true
	}
	if !seen[(Pair{})] {
		t.Fatal("initial zero pair never observed in the chain")
	}
	if len(seen) != workers+1 {
		t.Fatalf("chain has %d distinct values, want %d", len(seen), workers+1)
	}
}

func TestOnWriteHookFires(t *testing.T) {
	s := newTestSpace(t, 1)
	count := 0
	s.SetOnWrite(func() { count++ })
	w := s.AllocWords(0, 2)
	b := s.AllocBytes(0, 16)
	s.Store(w, 1)
	s.FetchAdd(w, 1)
	s.Swap(w, 2)
	s.CompareAndSwap(w, 2, 3)
	s.StorePair(w, Pair{})
	s.SwapPair(w, Pair{1, 1})
	s.CompareAndSwapPair(w, Pair{1, 1}, Pair{2, 2})
	s.Put(b, []byte{1})
	s.Accumulate(AccInt64, b, make([]byte, 8), 1)
	if count != 9 {
		t.Fatalf("onWrite fired %d times, want 9", count)
	}
	// Reads must not fire it.
	s.Load(w)
	s.LoadPair(w)
	s.Get(b, 1)
	if count != 9 {
		t.Fatalf("reads fired onWrite (count %d)", count)
	}
}
