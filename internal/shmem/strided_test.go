package shmem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestContigDescriptor(t *testing.T) {
	d := Contig(100)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Levels() != 0 || d.TotalBytes() != 100 || d.NumRuns() != 1 {
		t.Fatalf("Contig descriptor wrong: %+v", d)
	}
	var runs [][2]int64
	d.EachRun(func(off int64, n int) { runs = append(runs, [2]int64{off, int64(n)}) })
	if len(runs) != 1 || runs[0] != [2]int64{0, 100} {
		t.Fatalf("runs = %v", runs)
	}
}

func TestTwoDimensionalRuns(t *testing.T) {
	// 3 rows of 8 bytes inside a 32-byte-wide matrix.
	d := Strided{Count: []int{8, 3}, Stride: []int64{32}}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.TotalBytes() != 24 || d.NumRuns() != 3 {
		t.Fatalf("totals wrong: %d bytes, %d runs", d.TotalBytes(), d.NumRuns())
	}
	var offs []int64
	d.EachRun(func(off int64, n int) {
		if n != 8 {
			t.Fatalf("run length %d", n)
		}
		offs = append(offs, off)
	})
	want := []int64{0, 32, 64}
	for i := range want {
		if offs[i] != want[i] {
			t.Fatalf("offsets %v, want %v", offs, want)
		}
	}
}

func TestThreeLevelRuns(t *testing.T) {
	// 2 planes of 3 rows of 4 bytes; rows 16 apart, planes 100 apart.
	d := Strided{Count: []int{4, 3, 2}, Stride: []int64{16, 100}}
	if d.TotalBytes() != 24 || d.NumRuns() != 6 {
		t.Fatalf("totals wrong")
	}
	var offs []int64
	d.EachRun(func(off int64, n int) { offs = append(offs, off) })
	want := []int64{0, 16, 32, 100, 116, 132}
	for i := range want {
		if offs[i] != want[i] {
			t.Fatalf("offsets %v, want %v", offs, want)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []Strided{
		{},                                       // empty count
		{Count: []int{4, 2}},                     // counts without strides
		{Count: []int{0}},                        // zero count
		{Count: []int{4, 0}, Stride: []int64{8}}, // zero block count
		{Count: []int{4, -1}, Stride: []int64{8}},           // negative
		{Count: make([]int, 11), Stride: make([]int64, 10)}, // too deep
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: no error for %+v", i, d)
		}
	}
}

// TestPackUnpackStridedRoundTrip is the property test for the
// scatter/gather pair: unpacking a packed region reproduces it exactly,
// and bytes outside the region are never touched.
func TestPackUnpackStridedRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		levels := r.Intn(3)
		d := Strided{Count: []int{1 + r.Intn(16)}}
		extent := int64(d.Count[0])
		for l := 0; l < levels; l++ {
			blocks := 1 + r.Intn(4)
			// Stride at least the current extent to keep runs disjoint.
			stride := extent + int64(r.Intn(8))
			d.Count = append(d.Count, blocks)
			d.Stride = append(d.Stride, stride)
			extent = stride*int64(blocks-1) + extent
		}
		size := int(extent) + 16
		nodes := []int{0}
		s := NewSpace(nodes)
		src := s.AllocBytes(0, size)
		dst := s.AllocBytes(0, size)

		// Fill the source with random bytes and a sentinel destination.
		content := make([]byte, size)
		r.Read(content)
		s.Put(src, content)
		sentinel := bytes.Repeat([]byte{0xEE}, size)
		s.Put(dst, sentinel)

		packed := s.PackFrom(src, d)
		if len(packed) != d.TotalBytes() {
			return false
		}
		s.UnpackTo(dst, d, packed)

		// Inside the region: dst == src. Outside: sentinel intact.
		inRegion := make([]bool, size)
		d.EachRun(func(off int64, n int) {
			for i := 0; i < n; i++ {
				inRegion[off+int64(i)] = true
			}
		})
		got := s.Get(dst, size)
		want := s.Get(src, size)
		for i := 0; i < size; i++ {
			if inRegion[i] && got[i] != want[i] {
				return false
			}
			if !inRegion[i] && got[i] != 0xEE {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUnpackLengthMismatchPanics(t *testing.T) {
	s := NewSpace([]int{0})
	p := s.AllocBytes(0, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	s.UnpackTo(p, Contig(16), make([]byte, 8))
}

func TestAccumulateStrided(t *testing.T) {
	s := NewSpace([]int{0})
	p := s.AllocBytes(0, 128)
	// Two rows of two float64s, rows 32 bytes apart.
	d := Strided{Count: []int{16, 2}, Stride: []int64{32}}
	add := make([]byte, 32)
	for i := 0; i < 4; i++ {
		lePutUint64(add[8*i:], 0x3FF0000000000000) // 1.0
	}
	s.AccumulateStrided(AccFloat64, p, d, add, 2)
	out := s.PackFrom(p, d)
	for i := 0; i < 4; i++ {
		if got := leUint64(out[8*i:]); got != 0x4000000000000000 { // 2.0
			t.Fatalf("element %d = %x", i, got)
		}
	}
	// Bytes between the rows untouched.
	gap := s.Get(p.Add(16), 16)
	for _, b := range gap {
		if b != 0 {
			t.Fatalf("gap corrupted: %v", gap)
		}
	}
}
