package core_test

import (
	"fmt"
	"testing"
	"time"

	"armci/internal/collective"
	"armci/internal/core"
	"armci/internal/model"
	"armci/internal/msg"
	"armci/internal/proc"
	"armci/internal/server"
	"armci/internal/shmem"
	"armci/internal/trace"
	"armci/internal/transport"
)

// world is the core-test harness: a simulated cluster with engines,
// collectives, sync drivers and a lock table.
type world struct {
	t      *testing.T
	fabric *transport.SimFabric
	layout *proc.Layout
	locks  *proc.LockTable
	stats  *trace.Stats
}

func newWorld(t *testing.T, procs, ppn int, params model.Params, lockHomes []int) *world {
	t.Helper()
	stats := trace.New()
	f, err := transport.NewSim(transport.Config{
		Procs: procs, ProcsPerNode: ppn, Model: params, Trace: stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	numNodes := (procs + ppn - 1) / ppn
	lay := proc.NewLayout(f.Space(), procs, numNodes)
	var locks *proc.LockTable
	if len(lockHomes) > 0 {
		locks = proc.NewLockTable(f.Space(), lockHomes)
	}
	for n := 0; n < numNodes; n++ {
		f.SpawnServer(n, func(env transport.Env) {
			server.New(env, lay, server.Options{Locks: locks}).Serve()
		})
	}
	return &world{t: t, fabric: f, layout: lay, locks: locks, stats: stats}
}

// ctx is what each rank's body receives.
type ctx struct {
	g    *proc.Engine
	sync *core.Sync
}

func (w *world) run(body func(c *ctx)) {
	w.t.Helper()
	for r := 0; r < w.fabric.Config().Procs; r++ {
		w.fabric.SpawnUser(r, func(env transport.Env) {
			g := proc.NewEngine(env, w.layout, proc.FenceRequest)
			body(&ctx{g: g, sync: core.NewSync(g, collective.New(env))})
		})
	}
	if err := w.fabric.Run(); err != nil {
		w.t.Fatal(err)
	}
}

// TestBarrierWaitsForOpDone: the combined barrier's stage 2 must not let
// any rank through before its node's server has completed every put
// directed at it — even puts from ranks that entered the barrier much
// earlier.
func TestBarrierWaitsForOpDone(t *testing.T) {
	const procs = 4
	w := newWorld(t, procs, 1, model.Myrinet2000(), nil)
	var bufs []shmem.Ptr
	for r := 0; r < procs; r++ {
		bufs = append(bufs, w.fabric.Space().AllocBytes(r, 8*1024))
	}
	w.run(func(c *ctx) {
		env := c.g.Env()
		me := c.g.Rank()
		// Rank 0 blasts large puts at everyone at the last moment; the
		// others enter the barrier immediately.
		if me == 0 {
			payload := make([]byte, 8*1024)
			for q := 1; q < procs; q++ {
				c.g.Put(bufs[q], payload)
			}
		}
		c.sync.Barrier()
		// After the barrier, rank 0's big puts must be complete at every
		// node — op_done equals the summed op_init by construction.
		node := env.Node(me)
		opDone := w.layout.OpDone[node]
		if me != 0 && env.Space().Load(opDone) == 0 {
			panic(fmt.Sprintf("rank %d escaped the barrier with op_done=0", me))
		}
	})
}

// TestBarrierRepeats: counters are cumulative; many barriers with
// interleaved puts stay correct.
func TestBarrierRepeats(t *testing.T) {
	const procs, rounds = 4, 6
	w := newWorld(t, procs, 1, model.Myrinet2000(), nil)
	var cells []shmem.Ptr
	for r := 0; r < procs; r++ {
		cells = append(cells, w.fabric.Space().AllocWords(r, rounds))
	}
	w.run(func(c *ctx) {
		me := c.g.Rank()
		for round := 0; round < rounds; round++ {
			// Everyone stores into the next rank's cell for this round.
			c.g.Store(cells[(me+1)%procs].Add(int64(round)), int64(100*round+me))
			c.sync.Barrier()
			got := c.g.Env().Space().Load(cells[me].Add(int64(round)))
			want := int64(100*round + (me-1+procs)%procs)
			if got != want {
				panic(fmt.Sprintf("rank %d round %d saw %d, want %d", me, round, got, want))
			}
		}
	})
}

// TestBarrierWithSMPNodes: multiple ranks per node share one op_done.
func TestBarrierWithSMPNodes(t *testing.T) {
	const procs, ppn = 8, 2
	w := newWorld(t, procs, ppn, model.Myrinet2000(), nil)
	var cells []shmem.Ptr
	for r := 0; r < procs; r++ {
		cells = append(cells, w.fabric.Space().AllocWords(r, procs))
	}
	w.run(func(c *ctx) {
		me := c.g.Rank()
		for q := 0; q < procs; q++ {
			if q != me {
				c.g.Store(cells[q].Add(int64(me)), int64(me+1))
			}
		}
		c.sync.Barrier()
		sum := int64(0)
		for q := 0; q < procs; q++ {
			if q != me {
				sum += c.g.Env().Space().Load(cells[me].Add(int64(q)))
			}
		}
		want := int64(procs*(procs+1)/2) - int64(me+1)
		if sum != want {
			panic(fmt.Sprintf("rank %d sum %d, want %d", me, sum, want))
		}
	})
}

// TestBarrierMessageComplexity pins the 2·N·log₂N collective messages of
// the combined barrier against the N(N−1) fence requests of the original.
func TestBarrierMessageComplexity(t *testing.T) {
	count := func(old bool) (coll, fence int) {
		const procs = 8
		w := newWorld(t, procs, 1, model.Zero(), nil)
		var bufs []shmem.Ptr
		for r := 0; r < procs; r++ {
			bufs = append(bufs, w.fabric.Space().AllocBytes(r, procs))
		}
		w.run(func(c *ctx) {
			me := c.g.Rank()
			for q := 0; q < procs; q++ {
				if q != me {
					c.g.Put(bufs[q].Add(int64(me)), []byte{1})
				}
			}
			if old {
				c.sync.SyncOld()
			} else {
				c.sync.Barrier()
			}
		})
		return w.stats.Count(msg.KindColl), w.stats.Count(msg.KindFenceReq)
	}
	coll, fence := count(false)
	if fence != 0 {
		t.Fatalf("new barrier sent %d fence requests", fence)
	}
	if coll != 2*8*3 {
		t.Fatalf("new barrier moved %d collective messages, want 48", coll)
	}
	coll, fence = count(true)
	if fence != 8*7 {
		t.Fatalf("old sync sent %d fence requests, want 56", fence)
	}
	if coll != 8*3 {
		t.Fatalf("old sync moved %d collective messages (one barrier), want 24", coll)
	}
}

// TestLockHandoffLatency measures the paper's lock synchronization time
// exactly on the virtual clock: passing the lock to a remote waiter costs
// TWO message latencies through the server with the hybrid algorithm and
// ONE direct message with the queuing lock (§3.2.2).
func TestLockHandoffLatency(t *testing.T) {
	params := model.Myrinet2000()
	// The lock is homed at a third node (rank 2) so that, as in the
	// paper's remote-lock analysis, the hybrid release and grant messages
	// both cross the wire.
	measure := func(useQueue bool) time.Duration {
		w := newWorld(t, 3, 1, params, []int{2})
		var releaseAt, acquiredAt time.Duration
		ready := w.fabric.Space().AllocWords(0, 1)
		w.run(func(c *ctx) {
			env := c.g.Env()
			var mu core.Mutex
			if useQueue {
				mu = core.NewQueueLock(c.g, w.locks, 0)
			} else {
				mu = core.NewHybrid(c.g, w.locks, 0)
			}
			switch c.g.Rank() {
			case 0:
				mu.Lock()
				// Wait until rank 1 is provably enqueued, then release.
				env.WaitUntil("waiter", func() bool { return env.Space().Load(ready) == 1 })
				env.Clock().Sleep(500 * time.Microsecond) // let the enqueue fully settle
				releaseAt = env.Clock().Now()
				mu.Unlock()
			case 1:
				// Mark that the request is about to be issued, then block
				// in Lock. The store precedes the lock request in program
				// order, so rank 0 cannot release too early.
				env.Space().Store(ready, 1)
				mu.Lock()
				acquiredAt = env.Clock().Now()
				mu.Unlock()
			}
		})
		return acquiredAt - releaseAt
	}

	hybrid := measure(false)
	queue := measure(true)

	if queue >= hybrid {
		t.Fatalf("queuing lock hand-off (%v) not faster than hybrid (%v)", queue, hybrid)
	}
	// Hybrid: release msg + grant msg => at least 2 wire latencies.
	if hybrid < 2*params.Latency {
		t.Fatalf("hybrid hand-off %v below two latencies", hybrid)
	}
	// The queuing lock saves the second message: the gap must be at
	// least most of one wire latency (the remainder is server-side
	// overhead present in both paths).
	if gap := hybrid - queue; gap < params.Latency/2 {
		t.Fatalf("hand-off gap %v too small for a saved message (hybrid %v, queue %v)",
			gap, hybrid, queue)
	}
}

// TestMCSFifoOrder: waiters staggered in time acquire the queuing lock in
// arrival order.
func TestMCSFifoOrder(t *testing.T) {
	const procs = 6
	w := newWorld(t, procs, 1, model.Myrinet2000(), []int{0})
	order := make([]int, 0, procs)
	w.run(func(c *ctx) {
		env := c.g.Env()
		me := c.g.Rank()
		mu := core.NewQueueLock(c.g, w.locks, 0)
		// Stagger arrivals far beyond any message latency so the global
		// enqueue order equals rank order.
		env.Clock().Sleep(time.Duration(me) * 5 * time.Millisecond)
		mu.Lock()
		order = append(order, me)
		env.Clock().Sleep(500 * time.Microsecond) // hold so everyone queues
		mu.Unlock()
	})
	for i, r := range order {
		if r != i {
			t.Fatalf("acquisition order %v not FIFO", order)
		}
	}
}

// TestHybridTicketOrder: the hybrid lock grants strictly in ticket order
// too, mixing local and remote requesters (lock homed at rank 0, ranks 0
// and 1 co-located, ranks 2,3 remote).
func TestHybridTicketOrder(t *testing.T) {
	const procs = 4
	w := newWorld(t, procs, 2, model.Myrinet2000(), []int{0})
	order := make([]int, 0, procs)
	w.run(func(c *ctx) {
		env := c.g.Env()
		me := c.g.Rank()
		mu := core.NewHybrid(c.g, w.locks, 0)
		env.Clock().Sleep(time.Duration(me) * 5 * time.Millisecond)
		mu.Lock()
		order = append(order, me)
		env.Clock().Sleep(300 * time.Microsecond)
		mu.Unlock()
	})
	for i, r := range order {
		if r != i {
			t.Fatalf("grant order %v not ticket order", order)
		}
	}
}

// TestQueueLockContention: heavy interleaved lock traffic keeps a plain
// counter exact, for both queuing variants and the hybrid — and the
// deterministic simulator makes any lost update reproducible.
func TestQueueLockContention(t *testing.T) {
	kinds := []struct {
		name string
		mk   func(c *ctx, lt *proc.LockTable) core.Mutex
	}{
		{"queue", func(c *ctx, lt *proc.LockTable) core.Mutex { return core.NewQueueLock(c.g, lt, 0) }},
		{"queue-nocas", func(c *ctx, lt *proc.LockTable) core.Mutex { return core.NewQueueLockNoCAS(c.g, lt, 0) }},
		{"hybrid", func(c *ctx, lt *proc.LockTable) core.Mutex { return core.NewHybrid(c.g, lt, 0) }},
	}
	for _, k := range kinds {
		t.Run(k.name, func(t *testing.T) {
			const procs, iters = 5, 12
			w := newWorld(t, procs, 1, model.Myrinet2000(), []int{2})
			counter := w.fabric.Space().AllocWords(2, 1)
			w.run(func(c *ctx) {
				mu := k.mk(c, w.locks)
				for i := 0; i < iters; i++ {
					mu.Lock()
					v := c.g.Load(counter)
					c.g.Store(counter, v+1)
					if c.g.Env().Node(2) != c.g.Env().Node(c.g.Rank()) {
						c.g.Fence(c.g.Env().Node(2))
					}
					mu.Unlock()
				}
				c.sync.Barrier()
				if c.g.Rank() == 2 {
					if got := c.g.Load(counter); got != procs*iters {
						panic(fmt.Sprintf("counter %d, want %d", got, procs*iters))
					}
				}
			})
		})
	}
}

// TestTicketLockLocalOnly: the pure ticket lock enforces its home-node
// restriction and provides exclusion among co-located ranks.
func TestTicketLockLocalOnly(t *testing.T) {
	const procs = 3
	w := newWorld(t, procs, 3, model.Myrinet2000(), []int{0}) // all on one node
	counter := w.fabric.Space().AllocWords(0, 1)
	w.run(func(c *ctx) {
		mu := core.NewTicket(c.g, w.locks, 0)
		for i := 0; i < 10; i++ {
			mu.Lock()
			v := c.g.Load(counter)
			c.g.Store(counter, v+1)
			mu.Unlock()
		}
	})
	if got := w.fabric.Space().Load(counter); got != 30 {
		t.Fatalf("counter %d, want 30", got)
	}
}

func TestTicketLockRejectsRemoteRank(t *testing.T) {
	w := newWorld(t, 2, 1, model.Zero(), []int{0})
	paniced := false
	w.run(func(c *ctx) {
		if c.g.Rank() == 1 {
			func() {
				defer func() { paniced = recover() != nil }()
				core.NewTicket(c.g, w.locks, 0)
			}()
		}
	})
	if !paniced {
		t.Fatal("remote rank constructed a ticket lock")
	}
}

// TestSyncEquivalence: SyncOld, SyncOldPipelined and Barrier provide the
// same visibility guarantee under the same workload.
func TestSyncEquivalence(t *testing.T) {
	for _, mode := range []string{"old", "pipelined", "new"} {
		t.Run(mode, func(t *testing.T) {
			const procs = 6 // non power of two: dissemination paths too
			w := newWorld(t, procs, 1, model.Myrinet2000(), nil)
			var cells []shmem.Ptr
			for r := 0; r < procs; r++ {
				cells = append(cells, w.fabric.Space().AllocWords(r, procs))
			}
			w.run(func(c *ctx) {
				me := c.g.Rank()
				for q := 0; q < procs; q++ {
					if q != me {
						c.g.Store(cells[q].Add(int64(me)), int64(me+1))
					}
				}
				switch mode {
				case "old":
					c.sync.SyncOld()
				case "pipelined":
					c.sync.SyncOldPipelined()
				case "new":
					c.sync.Barrier()
				}
				for q := 0; q < procs; q++ {
					if q == me {
						continue
					}
					if got := c.g.Env().Space().Load(cells[me].Add(int64(q))); got != int64(q+1) {
						panic(fmt.Sprintf("rank %d missing write from %d after %s sync", me, q, mode))
					}
				}
			})
		})
	}
}
