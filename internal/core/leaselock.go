package core

import (
	"time"

	"armci/internal/proc"
	"armci/internal/shmem"
)

// DefaultLeaseTTL is the lease duration used when the run does not set
// one: comfortably longer than any critical section in the experiments
// (which run microseconds), short enough that holder-crash recovery is
// quick. Virtual time on the simulated fabric, wall time elsewhere.
const DefaultLeaseTTL = 10 * time.Millisecond

// LeaseLock is the crash-survivable variant of the software queuing
// lock: MCS queueing for ordering and one-message hand-off, plus an
// epoch-stamped lease that lets waiters repair the lock when its holder
// fail-stops. The design splits the two concerns of a lock:
//
//   - The *queue* (LeaseTail + per-rank queue nodes) only orders waiters
//     and carries wake hints. A wake is never a grant; stale, duplicated
//     or lost wakes cost time, not correctness.
//   - The *lease word* (LeaseState, a pair {epoch, holder}) is the sole
//     source of truth. A waiter becomes the holder only by winning a
//     compare&swap that registers it under the current epoch, and a
//     holder frees the lock only by winning a compare&swap that advances
//     the epoch. A holder that was deposed while slow (or dead) presents
//     a stale epoch, loses that CAS, and its release is rejected —
//     resurrected holders cannot free a lock somebody else now owns.
//
// Recovery arms only after a fail-stop is on record (Env.CrashedRank):
// in crash-free runs the protocol is exactly MCS plus one registration
// CAS, FIFO and deterministic. Once a crash exists, a waiter whose
// bounded wait outlives the lease TTL (per LeaseStamp, the fabric-time
// stamp of the last state change) deposes the expired holder by
// advancing the epoch, wakes the victim's queue successor so FIFO
// resumes from the crash point, and — when the queue itself is wedged
// (the lock free but nobody left to wake) — self-grants by registering
// directly. Mutual exclusion is therefore absolute per epoch, and
// "modulo lease expiry" across epochs: two ranks overlap only if one of
// them was first deposed by a repair event.
type LeaseLock struct {
	eng *proc.Engine
	t   *proc.LockTable
	idx int
	ttl time.Duration

	epoch    int64 // epoch of the current tenure (valid while held)
	acquires int   // own completed acquisitions (crashheld accounting)
}

// NewLeaseLock returns rank-local state for lock idx of the table. ttl
// <= 0 selects DefaultLeaseTTL. The TTL must exceed the longest critical
// section plus one queue hand-off, or live holders will be deposed.
func NewLeaseLock(eng *proc.Engine, t *proc.LockTable, idx int, ttl time.Duration) *LeaseLock {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	return &LeaseLock{eng: eng, t: t, idx: idx, ttl: ttl}
}

var _ Mutex = (*LeaseLock)(nil)

// state encoding of the LeaseState pair: Hi is the epoch, Lo the tenant.
// Lo = r+1 > 0 means rank r holds the lease; Lo = -(r+1) < 0 means the
// lock is free and rank r was the last holder; Lo = 0 means never held.

// Lock acquires the lock, surviving holder crashes.
func (l *LeaseLock) Lock() {
	env := l.eng.Env()
	space := env.Space()
	me := l.eng.Rank()
	mine := l.t.LeaseQNode[l.idx][me]
	minePacked := shmem.PackPtr(mine)

	// Arm the wake flag before publishing the node: a repairer may walk
	// to it the instant it becomes reachable.
	space.StorePair(mine.Add(proc.QNodeNextHi), shmem.Pair{})
	space.Store(mine.Add(proc.QNodeLocked), 1)

	prev := l.eng.SwapPair(l.t.LeaseTail[l.idx], minePacked).UnpackPtr()
	prevRank := -1
	useFlag := false
	if !prev.IsNil() {
		prevRank = int(prev.Rank)
		useFlag = true
		l.eng.StorePair(prev.Add(proc.QNodeNextHi), minePacked)
	}
	// prev == NIL: we are the queue head; the lock is free (or about to
	// be) and nobody will write our flag — register directly.

	locked := mine.Add(proc.QNodeLocked)
	for {
		if useFlag {
			woke := env.WaitUntilFor("lease-acquire", func() bool {
				return space.Load(locked) == 0
			}, l.ttl)
			if woke {
				// Hand-off (or repair wake) received: the hint is now
				// consumed, so on failure fall through to state polling.
				useFlag = false
				if l.tryRegister(prevRank) {
					return
				}
				continue
			}
			// TTL elapsed without a wake: recovery check, then keep
			// waiting on the flag — a live holder's hand-off may still
			// arrive.
			if l.maybeRecover() {
				return
			}
			continue
		}
		// State-polling mode (queue head, or a consumed wake that found
		// the lock held): try to register, then back off one TTL.
		if l.tryRegister(prevRank) {
			return
		}
		env.WaitUntilFor("lease-backoff", func() bool { return false }, l.ttl)
		if l.maybeRecover() {
			return
		}
	}
}

// tryRegister attempts the registration CAS — the linearization point of
// every acquisition: {epoch, free} -> {epoch, me}. It returns false as
// soon as it observes another registered tenant.
func (l *LeaseLock) tryRegister(prevRank int) bool {
	me := int64(l.eng.Rank())
	state := l.t.LeaseState[l.idx]
	st := l.eng.LoadPair(state)
	for st.Lo <= 0 {
		obs := l.eng.CompareAndSwapPair(state, st, shmem.Pair{Hi: st.Hi, Lo: me + 1})
		if obs == st {
			l.granted(st.Hi, prevRank)
			return true
		}
		st = obs
	}
	return false
}

// granted completes an acquisition under epoch: stamp the tenure start,
// record the acquire, and honor a crashheld fault plan.
func (l *LeaseLock) granted(epoch int64, prevRank int) {
	env := l.eng.Env()
	l.epoch = epoch
	l.eng.Store(l.t.LeaseStamp[l.idx], int64(env.Clock().Now()))
	recordAcquireEpoch(env, l.idx, prevRank, int(epoch))
	l.acquires++
	maybeCrashHeld(env, l.idx, l.acquires)
}

// maybeRecover runs the repair protocol after a bounded wait timed out.
// It returns true when the caller acquired the lock (the wedged-queue
// self-grant); deposing an expired holder returns false — the repair
// wake or the next registration attempt completes the acquisition.
func (l *LeaseLock) maybeRecover() bool {
	env := l.eng.Env()
	if env.CrashedRank() < 0 {
		return false // recovery arms only once a fail-stop is on record
	}
	state := l.t.LeaseState[l.idx]
	st := l.eng.LoadPair(state)
	stamp := time.Duration(l.eng.Load(l.t.LeaseStamp[l.idx]))
	now := env.Clock().Now()
	if now-stamp <= l.ttl {
		return false // the lease (or the hand-off in flight) is fresh
	}
	if st.Lo > 0 {
		// Expired holder: depose it by advancing the epoch. Losing the
		// CAS means another waiter repaired (or the holder woke up and
		// released) — either way the state moved on and we re-wait.
		holder := int(st.Lo) - 1
		obs := l.eng.CompareAndSwapPair(state, st, shmem.Pair{Hi: st.Hi + 1, Lo: -st.Lo})
		if obs != st {
			return false
		}
		recordRepair(env, l.idx, holder, int(st.Hi)+1)
		l.eng.Store(l.t.LeaseStamp[l.idx], int64(now))
		// Wake the victim's queue successor so FIFO resumes from the
		// crash point. If the victim has no visible successor, the
		// stale-free path below self-grants on a later timeout.
		victim := l.t.LeaseQNode[l.idx][holder]
		next := l.eng.LoadPair(victim.Add(proc.QNodeNextHi)).UnpackPtr()
		if !next.IsNil() {
			l.eng.Store(next.Add(proc.QNodeLocked), 0)
		}
		return false
	}
	// Free but stale: the lock was released (or repaired) at least one
	// TTL ago and nobody registered — the wake chain is wedged (a waiter
	// died between enqueue and link, or the woken successor died).
	// Self-grant by registering directly.
	me := int64(l.eng.Rank())
	if l.eng.CompareAndSwapPair(state, st, shmem.Pair{Hi: st.Hi, Lo: me + 1}) == st {
		l.granted(st.Hi, -1) // repair boundary: predecessor unknowable
		return true
	}
	return false
}

// Unlock releases the lock. A deposed holder's release is rejected by
// the epoch check and touches nothing; the queue hand-off still runs,
// because wake hints are always safe to pass on.
func (l *LeaseLock) Unlock() {
	env := l.eng.Env()
	space := env.Space()
	me := int64(l.eng.Rank())
	state := l.t.LeaseState[l.idx]
	recordReleaseEpoch(env, l.idx, int(l.epoch))

	held := shmem.Pair{Hi: l.epoch, Lo: me + 1}
	if l.eng.CompareAndSwapPair(state, held, shmem.Pair{Hi: l.epoch + 1, Lo: -(me + 1)}) == held {
		l.eng.Store(l.t.LeaseStamp[l.idx], int64(env.Clock().Now()))
	} else {
		// We were deposed while holding: a repairer advanced the epoch.
		// The lock is no longer ours to free.
		recordStaleRelease(env, l.idx, int(l.epoch))
	}

	// MCS dequeue and wake hint, deposed or not: our successors are
	// queued behind this node and must be woken regardless of which
	// epoch grants them the lock.
	mine := l.t.LeaseQNode[l.idx][l.eng.Rank()]
	minePacked := shmem.PackPtr(mine)
	nextField := mine.Add(proc.QNodeNextHi)
	next := space.LoadPair(nextField).UnpackPtr()
	if next.IsNil() {
		if l.eng.CompareAndSwapPair(l.t.LeaseTail[l.idx], minePacked, shmem.Pair{}) == minePacked {
			return
		}
		// A successor swapped in but has not linked yet. Crash-free this
		// resolves in bounded steps, so wait as MCS does; once a crash
		// is on record the linker may be dead — give up after one TTL
		// and let the lease machinery recover the orphaned queue.
		for !env.WaitUntilFor("lease-release-link", func() bool {
			return !space.LoadPair(nextField).UnpackPtr().IsNil()
		}, l.ttl) {
			if env.CrashedRank() >= 0 {
				return
			}
		}
		next = space.LoadPair(nextField).UnpackPtr()
	}
	l.eng.Store(next.Add(proc.QNodeLocked), 0)
}
