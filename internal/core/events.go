package core

import (
	"armci/internal/trace"
	"armci/internal/transport"
)

// recordAcquire notes in the trace that the calling rank now holds lock
// idx. It must be called *after* the algorithm's acquire condition is
// satisfied and *before* the caller touches protected state, so that in
// the recorded order the event sits inside the critical section. prev is
// the rank this acquire queued behind (-1 when unknown or the lock was
// free); ticket is the ticket number under ticket-ordered algorithms (-1
// otherwise). The conformance oracles in internal/check consume these.
func recordAcquire(env transport.Env, idx, prev int, ticket int64) {
	env.Trace().RecordOp(trace.OpEvent{
		Kind: trace.OpAcquire, Rank: env.Rank(), Node: env.Node(env.Rank()),
		Lock: idx, Prev: prev, Ticket: ticket, Time: env.Clock().Now(),
	})
}

// recordRelease notes that the calling rank is giving up lock idx. It
// must be called at the *start* of the release, before any hand-off
// store or unlock message, so the event precedes the successor's acquire
// in the recorded order.
func recordRelease(env transport.Env, idx int, ticket int64) {
	env.Trace().RecordOp(trace.OpEvent{
		Kind: trace.OpRelease, Rank: env.Rank(), Node: env.Node(env.Rank()),
		Lock: idx, Prev: -1, Ticket: ticket, Time: env.Clock().Now(),
	})
}

// recordSync notes barrier entry or exit for the calling rank. epoch
// numbers the rank's barrier calls from 1; node is the rank's own node
// (whose completion counter the fence oracle audits).
func recordSync(env transport.Env, kind trace.OpKind, epoch int) {
	env.Trace().RecordOp(trace.OpEvent{
		Kind: kind, Rank: env.Rank(), Node: env.Node(env.Rank()),
		Prev: -1, Ticket: -1, Epoch: epoch, Time: env.Clock().Now(),
	})
}
