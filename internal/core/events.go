package core

import (
	"armci/internal/trace"
	"armci/internal/transport"
)

// recordAcquire notes in the trace that the calling rank now holds lock
// idx. It must be called *after* the algorithm's acquire condition is
// satisfied and *before* the caller touches protected state, so that in
// the recorded order the event sits inside the critical section. prev is
// the rank this acquire queued behind (-1 when unknown or the lock was
// free); ticket is the ticket number under ticket-ordered algorithms (-1
// otherwise). The conformance oracles in internal/check consume these.
func recordAcquire(env transport.Env, idx, prev int, ticket int64) {
	env.Trace().RecordOp(trace.OpEvent{
		Kind: trace.OpAcquire, Rank: env.Rank(), Node: env.Node(env.Rank()),
		Lock: idx, Prev: prev, Ticket: ticket, Time: env.Clock().Now(),
	})
}

// recordRelease notes that the calling rank is giving up lock idx. It
// must be called at the *start* of the release, before any hand-off
// store or unlock message, so the event precedes the successor's acquire
// in the recorded order.
func recordRelease(env transport.Env, idx int, ticket int64) {
	env.Trace().RecordOp(trace.OpEvent{
		Kind: trace.OpRelease, Rank: env.Rank(), Node: env.Node(env.Rank()),
		Lock: idx, Prev: -1, Ticket: ticket, Time: env.Clock().Now(),
	})
}

// recordReleaseEpoch is recordRelease for the lease lock: it carries the
// epoch the releaser will present to the epoch check.
func recordReleaseEpoch(env transport.Env, idx int, epoch int) {
	env.Trace().RecordOp(trace.OpEvent{
		Kind: trace.OpRelease, Rank: env.Rank(), Node: env.Node(env.Rank()),
		Lock: idx, Prev: -1, Ticket: -1, Epoch: epoch, Time: env.Clock().Now(),
	})
}

// recordAcquireEpoch is recordAcquire for the lease lock: it also
// carries the lease epoch the acquisition registered under, so the
// modulo-lease oracle can match releases against the epoch they must
// present.
func recordAcquireEpoch(env transport.Env, idx, prev int, epoch int) {
	env.Trace().RecordOp(trace.OpEvent{
		Kind: trace.OpAcquire, Rank: env.Rank(), Node: env.Node(env.Rank()),
		Lock: idx, Prev: prev, Ticket: -1, Epoch: epoch, Time: env.Clock().Now(),
	})
}

// recordRepair notes that the calling rank deposed victim's expired
// lease on lock idx and installed epoch. It must be recorded only by the
// winner of the depose CAS, immediately after the CAS succeeds, so the
// event sits between the victim's (now void) acquire and whichever
// acquire the repair enables.
func recordRepair(env transport.Env, idx, victim, epoch int) {
	env.Trace().RecordOp(trace.OpEvent{
		Kind: trace.OpRepair, Rank: env.Rank(), Node: env.Node(env.Rank()),
		Lock: idx, Prev: victim, Ticket: -1, Epoch: epoch, Time: env.Clock().Now(),
	})
}

// recordStaleRelease notes that the calling rank's release of lock idx
// lost the epoch check — it had been deposed — and was rejected without
// touching the lock state. epoch is the stale epoch the release
// presented.
func recordStaleRelease(env transport.Env, idx, epoch int) {
	env.Trace().RecordOp(trace.OpEvent{
		Kind: trace.OpStaleRelease, Rank: env.Rank(), Node: env.Node(env.Rank()),
		Lock: idx, Prev: -1, Ticket: -1, Epoch: epoch, Time: env.Clock().Now(),
	})
}

// maybeCrashHeld implements the crashheld fault for the lock layer:
// fault injection cannot see lock acquisitions, so each lock algorithm
// counts its own and calls this right after acquire number n completes.
// When the plan designates the calling rank and this acquisition, the
// rank records an OpCrash witness and fail-stops — dying while holding
// the lock.
func maybeCrashHeld(env transport.Env, idx, n int) {
	f := env.Faults()
	if f.CrashHeldAcquire == 0 || env.Rank() != f.CrashHeldRank || n != f.CrashHeldAcquire {
		return
	}
	env.Trace().RecordOp(trace.OpEvent{
		Kind: trace.OpCrash, Rank: env.Rank(), Node: env.Node(env.Rank()),
		Lock: idx, Prev: -1, Ticket: -1, Time: env.Clock().Now(),
	})
	env.FailStop("crashheld: fail-stop holding lock")
}

// recordSync notes barrier entry or exit for the calling rank. epoch
// numbers the rank's barrier calls from 1; node is the rank's own node
// (whose completion counter the fence oracle audits).
func recordSync(env transport.Env, kind trace.OpKind, epoch int) {
	env.Trace().RecordOp(trace.OpEvent{
		Kind: kind, Rank: env.Rank(), Node: env.Node(env.Rank()),
		Prev: -1, Ticket: -1, Epoch: epoch, Time: env.Clock().Now(),
	})
}
