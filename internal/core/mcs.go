package core

import (
	"armci/internal/proc"
	"armci/internal/shmem"
)

// QueueLock is the paper's software queuing lock (§3.2.2): an MCS lock
// built from ARMCI atomic memory operations on pairs of longs. Requesting
// processes link themselves into a distributed list; each waiter spins on
// a flag in its *own* memory; the releaser writes that flag directly —
// one message when the next waiter is remote, zero when it is local —
// instead of the hybrid lock's two-message server relay.
//
// The memory layout matches the paper's Figure 5: a Lock variable (a
// global pointer, two words) at the lock's home, and per process a single
// queue-node structure of a next pointer (two words) and a locked flag.
// Lines 9, 12, 18 and 22 of the pseudocode — the statements touching
// another process's memory — map to SwapPair, StorePair, CompareAndSwapPair
// and Store on the engine, which execute directly when the target is
// local and as (one-way, where possible) server operations when remote.
type QueueLock struct {
	eng *proc.Engine
	t   *proc.LockTable
	idx int

	acquires int // own completed acquisitions (crashheld accounting)
}

// NewQueueLock returns rank-local state for lock idx of the table.
func NewQueueLock(eng *proc.Engine, t *proc.LockTable, idx int) *QueueLock {
	return &QueueLock{eng: eng, t: t, idx: idx}
}

var _ Mutex = (*QueueLock)(nil)

// qnode returns the calling process's queue-node base pointer for this
// lock.
func (q *QueueLock) qnode() shmem.Ptr {
	return q.t.QNode[q.idx][q.eng.Rank()]
}

// Lock acquires the lock (Figure 5, request).
func (q *QueueLock) Lock() {
	env := q.eng.Env()
	space := env.Space()
	mine := q.qnode()
	minePacked := shmem.PackPtr(mine)

	// mynode->next = NULL — our own memory, always a direct store.
	space.StorePair(mine.Add(proc.QNodeNextHi), shmem.Pair{})

	// prev_node = swap(Lock, mynode) — atomic on the lock's home.
	prev := q.eng.SwapPair(q.t.MCS[q.idx], minePacked).UnpackPtr()
	if prev.IsNil() {
		recordAcquire(env, q.idx, -1, -1) // lock was free; we hold it
		q.acquires++
		maybeCrashHeld(env, q.idx, q.acquires)
		return
	}

	// mynode->locked = TRUE before linking, so the releaser can never
	// observe the link without the armed flag.
	space.Store(mine.Add(proc.QNodeLocked), 1)

	// prev_node->next = mynode — a store into the predecessor's memory:
	// direct if co-located, one fire-and-forget message otherwise.
	q.eng.StorePair(prev.Add(proc.QNodeNextHi), minePacked)

	// while (mynode->locked) {} — spin on our own memory.
	locked := mine.Add(proc.QNodeLocked)
	env.WaitUntil("mcs-acquire", func() bool {
		return space.Load(locked) == 0
	})
	// Queue-nodes live in their owner's memory, so the predecessor node's
	// Rank is the rank we queued behind (the FIFO oracle's witness).
	recordAcquire(env, q.idx, int(prev.Rank), -1)
	q.acquires++
	maybeCrashHeld(env, q.idx, q.acquires)
}

// Unlock releases the lock (Figure 5, release).
func (q *QueueLock) Unlock() {
	env := q.eng.Env()
	recordRelease(env, q.idx, -1)
	space := env.Space()
	mine := q.qnode()
	minePacked := shmem.PackPtr(mine)
	nextField := mine.Add(proc.QNodeNextHi)

	next := space.LoadPair(nextField).UnpackPtr()
	if next.IsNil() {
		// Nobody visibly queued. compare&swap(Lock, mynode, NULL): when
		// the lock still points at us, no one is requesting and we are
		// done. Remote locks pay a full round trip here — the one case
		// where the queuing lock is slower than the hybrid (Figure 10).
		observed := q.eng.CompareAndSwapPair(q.t.MCS[q.idx], minePacked, shmem.Pair{})
		if observed == minePacked {
			return
		}
		// A requester swapped itself in but has not linked yet; wait for
		// it to set our next pointer.
		env.WaitUntil("mcs-release-link", func() bool {
			return !space.LoadPair(nextField).UnpackPtr().IsNil()
		})
		next = space.LoadPair(nextField).UnpackPtr()
	}

	// mynode->next->locked = FALSE — hand the lock to the next waiter
	// directly: zero messages if local, one if remote.
	q.eng.Store(next.Add(proc.QNodeLocked), 0)
}
