package core

import (
	"fmt"

	"armci/internal/proc"
	"armci/internal/shmem"
)

// Ticket is the plain ticket-based lock (the local half of the hybrid
// algorithm) usable only by processes on the lock's home node. It exists
// as a baseline for tests and ablations; the hybrid lock is what ARMCI
// actually exposes.
type Ticket struct {
	eng    *proc.Engine
	t      *proc.LockTable
	idx    int
	ticket int64
}

// NewTicket returns rank-local state for lock idx. The caller must be on
// the lock's home node.
func NewTicket(eng *proc.Engine, t *proc.LockTable, idx int) *Ticket {
	env := eng.Env()
	if env.Node(env.Rank()) != env.Node(t.Home[idx]) {
		panic(fmt.Sprintf("core: ticket lock %d homed on node %d used from node %d",
			idx, env.Node(t.Home[idx]), env.Node(env.Rank())))
	}
	return &Ticket{eng: eng, t: t, idx: idx}
}

var _ Mutex = (*Ticket)(nil)

// Lock takes a ticket and polls the counter.
func (l *Ticket) Lock() {
	env := l.eng.Env()
	base := l.t.TicketCounter[l.idx]
	l.ticket = l.eng.FetchAdd(base.Add(proc.TicketWord), 1)
	counter := base.Add(proc.CounterWord)
	env.WaitUntil("ticket-lock", func() bool {
		return env.Space().Load(counter) == l.ticket
	})
	recordAcquire(env, l.idx, -1, l.ticket)
}

// Unlock advances the counter directly (no server round trip — this is
// the pure shared-memory algorithm, not ARMCI's hybrid).
func (l *Ticket) Unlock() {
	recordRelease(l.eng.Env(), l.idx, l.ticket)
	base := l.t.TicketCounter[l.idx]
	l.eng.FetchAdd(base.Add(proc.CounterWord), 1)
}

// QueueLockNoCAS is the paper's stated future work ("we are working on
// optimizing the lock operation to eliminate the need for the
// compare&swap operation when releasing a lock"), implemented with the
// swap-based release from Mellor-Crummey & Scott's original report. An
// uncontended release performs a single atomic swap instead of a
// compare&swap; if the swap detaches a chain of concurrent requesters, a
// second swap re-installs it and any usurper chain is spliced behind it.
// FIFO order can be violated in that window, but mutual exclusion holds.
type QueueLockNoCAS struct {
	eng *proc.Engine
	t   *proc.LockTable
	idx int
}

// NewQueueLockNoCAS returns rank-local state for lock idx of the table.
func NewQueueLockNoCAS(eng *proc.Engine, t *proc.LockTable, idx int) *QueueLockNoCAS {
	return &QueueLockNoCAS{eng: eng, t: t, idx: idx}
}

var _ Mutex = (*QueueLockNoCAS)(nil)

func (q *QueueLockNoCAS) qnode() shmem.Ptr {
	return q.t.QNode[q.idx][q.eng.Rank()]
}

// Lock is identical to the CAS variant's acquire path.
func (q *QueueLockNoCAS) Lock() {
	env := q.eng.Env()
	space := env.Space()
	mine := q.qnode()
	minePacked := shmem.PackPtr(mine)

	space.StorePair(mine.Add(proc.QNodeNextHi), shmem.Pair{})
	prev := q.eng.SwapPair(q.t.MCS[q.idx], minePacked).UnpackPtr()
	if prev.IsNil() {
		recordAcquire(env, q.idx, -1, -1)
		return
	}
	space.Store(mine.Add(proc.QNodeLocked), 1)
	q.eng.StorePair(prev.Add(proc.QNodeNextHi), minePacked)
	locked := mine.Add(proc.QNodeLocked)
	env.WaitUntil("mcs-nocas-acquire", func() bool {
		return space.Load(locked) == 0
	})
	recordAcquire(env, q.idx, int(prev.Rank), -1)
}

// Unlock releases with swap instead of compare&swap.
func (q *QueueLockNoCAS) Unlock() {
	env := q.eng.Env()
	recordRelease(env, q.idx, -1)
	space := env.Space()
	mine := q.qnode()
	nextField := mine.Add(proc.QNodeNextHi)

	next := space.LoadPair(nextField).UnpackPtr()
	if next.IsNil() {
		// swap(Lock, NULL): if we were still the tail, the lock is free
		// and we are done — same message count as the hybrid release.
		oldTail := q.eng.SwapPair(q.t.MCS[q.idx], shmem.Pair{}).UnpackPtr()
		if oldTail == mine {
			return
		}
		// Requesters sneaked in: the chain me→…→oldTail is detached and
		// the lock now reads free. Re-install the detached tail; anyone
		// who swapped in between is a usurper chain we must splice our
		// successors behind.
		usurper := q.eng.SwapPair(q.t.MCS[q.idx], shmem.PackPtr(oldTail)).UnpackPtr()
		env.WaitUntil("mcs-nocas-link", func() bool {
			return !space.LoadPair(nextField).UnpackPtr().IsNil()
		})
		next = space.LoadPair(nextField).UnpackPtr()
		if !usurper.IsNil() {
			// The usurper chain's tail inherits our successors.
			q.eng.StorePair(usurper.Add(proc.QNodeNextHi), shmem.PackPtr(next))
			return
		}
	}
	q.eng.Store(next.Add(proc.QNodeLocked), 0)
}
