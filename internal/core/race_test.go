package core_test

import (
	"testing"
	"time"

	"armci/internal/core"
	"armci/internal/model"
	"armci/internal/proc"
	"armci/internal/shmem"
)

// These tests drive the queuing-lock protocol steps by hand to land
// deterministically inside the narrow race windows of Figure 5:
//
//   - the releaser's compare&swap fails because a requester has swapped
//     itself in but NOT yet linked (release lines 18-20: wait for next);
//   - the swap-only variant's usurper window, where the detached chain
//     must be re-installed and spliced.
//
// The simulated fabric makes the interleavings exact and reproducible.

// TestMCSReleaseWaitsForLateLink: rank 1 executes only the first half of
// the request protocol (the swap); rank 0 then releases and must spin in
// the "compare&swap failed, next still nil" window until rank 1 finally
// links itself — and then hand over correctly.
func TestMCSReleaseWaitsForLateLink(t *testing.T) {
	w := newWorld(t, 2, 1, model.Myrinet2000(), []int{0})
	lockPtr := w.locks.MCS[0]
	phase := w.fabric.Space().AllocWords(0, 1) // test choreography
	var handoffAt, releaseStartAt time.Duration

	w.run(func(c *ctx) {
		env := c.g.Env()
		space := env.Space()
		me := c.g.Rank()
		mine := w.locks.QNode[0][me]
		minePacked := shmem.PackPtr(mine)

		if me == 0 {
			mu := core.NewQueueLock(c.g, w.locks, 0)
			mu.Lock() // uncontended: Lock -> qnode0
			space.Store(phase, 1)
			// Wait until rank 1 has swapped itself in (lock tail = qnode1)
			// but before it links (it is deliberately stalling).
			env.WaitUntil("swapped", func() bool { return space.Load(phase) == 2 })
			releaseStartAt = env.Clock().Now()
			mu.Unlock() // CAS fails; must wait for qnode0.next, then hand off
			handoffAt = env.Clock().Now()
			return
		}

		// Rank 1, by hand: half-enqueue.
		env.WaitUntil("lock-held", func() bool { return space.Load(phase) == 1 })
		space.StorePair(mine.Add(proc.QNodeNextHi), shmem.Pair{})
		prev := c.g.SwapPair(lockPtr, minePacked).UnpackPtr()
		if prev.IsNil() {
			panic("rank 1 found the lock free while rank 0 holds it")
		}
		space.Store(mine.Add(proc.QNodeLocked), 1)
		space.Store(phase, 2)
		// Stall well past rank 0's release attempt, then link late.
		env.Clock().Sleep(2 * time.Millisecond)
		c.g.StorePair(prev.Add(proc.QNodeNextHi), minePacked)
		// Complete the acquire and release normally.
		locked := mine.Add(proc.QNodeLocked)
		env.WaitUntil("granted", func() bool { return space.Load(locked) == 0 })
		mu := core.NewQueueLock(c.g, w.locks, 0)
		mu.Unlock() // release the lock acquired via the manual path
	})

	if handoffAt-releaseStartAt < 2*time.Millisecond {
		t.Fatalf("release returned after %v — it did not wait for the late link",
			handoffAt-releaseStartAt)
	}
	// The lock must end free.
	if got := w.fabric.Space().LoadPair(lockPtr).UnpackPtr(); !got.IsNil() {
		t.Fatalf("lock not free at the end: %v", got)
	}
}

// TestNoCASUsurperSplice drives the swap-only release into its usurper
// window: releaser swaps the lock to nil while a half-enqueued waiter is
// detached, a fresh requester (the usurper) acquires in between, and the
// detached chain must be spliced behind the usurper so everyone
// eventually gets the lock.
func TestNoCASUsurperSplice(t *testing.T) {
	w := newWorld(t, 3, 1, model.Myrinet2000(), []int{0})
	lockPtr := w.locks.MCS[0]
	phase := w.fabric.Space().AllocWords(0, 1)
	var acquired [3]time.Duration

	w.run(func(c *ctx) {
		env := c.g.Env()
		space := env.Space()
		me := c.g.Rank()
		mine := w.locks.QNode[0][me]
		minePacked := shmem.PackPtr(mine)

		switch me {
		case 0:
			// Holder. The release is replayed by hand so the usurper
			// window — between the two swaps of the swap-only release —
			// can be held open deliberately.
			mu := core.NewQueueLockNoCAS(c.g, w.locks, 0)
			mu.Lock()
			acquired[0] = env.Clock().Now()
			space.Store(phase, 1)
			// Wait for rank 1's half-enqueue (swap done, link withheld).
			env.WaitUntil("detached-waiter", func() bool { return space.Load(phase) == 2 })
			// Release, swap-only, step 1: detach. oldTail is rank 1's
			// node; the lock now reads free.
			oldTail := c.g.SwapPair(lockPtr, shmem.Pair{}).UnpackPtr()
			if oldTail == mine {
				panic("no detached waiter — choreography broke")
			}
			// Hold the window open: let rank 2 acquire the "free" lock.
			space.Store(phase, 3)
			env.WaitUntil("usurper-in", func() bool { return space.Load(phase) == 4 })
			// Step 2: re-install the detached tail; the usurper's node
			// comes back.
			usurper := c.g.SwapPair(lockPtr, shmem.PackPtr(oldTail)).UnpackPtr()
			if usurper.IsNil() {
				panic("usurper vanished — choreography broke")
			}
			// Step 3: wait for our late successor's link, then splice the
			// detached chain behind the usurper.
			nextField := mine.Add(proc.QNodeNextHi)
			env.WaitUntil("late-link", func() bool {
				return !space.LoadPair(nextField).UnpackPtr().IsNil()
			})
			next := space.LoadPair(nextField).UnpackPtr()
			c.g.StorePair(usurper.Add(proc.QNodeNextHi), shmem.PackPtr(next))

		case 1: // half-enqueues, links late
			env.WaitUntil("held", func() bool { return space.Load(phase) == 1 })
			space.StorePair(mine.Add(proc.QNodeNextHi), shmem.Pair{})
			prev := c.g.SwapPair(lockPtr, minePacked).UnpackPtr()
			space.Store(mine.Add(proc.QNodeLocked), 1)
			space.Store(phase, 2)
			env.Clock().Sleep(3 * time.Millisecond) // let release + usurper happen
			c.g.StorePair(prev.Add(proc.QNodeNextHi), minePacked)
			locked := mine.Add(proc.QNodeLocked)
			env.WaitUntil("granted-1", func() bool { return space.Load(locked) == 0 })
			acquired[1] = env.Clock().Now()
			mu := core.NewQueueLockNoCAS(c.g, w.locks, 0)
			mu.Unlock()

		case 2: // the usurper: requests normally inside the window
			env.WaitUntil("window", func() bool { return space.Load(phase) == 3 })
			mu := core.NewQueueLockNoCAS(c.g, w.locks, 0)
			mu.Lock() // the lock reads free: instant acquisition
			acquired[2] = env.Clock().Now()
			space.Store(phase, 4)
			env.Clock().Sleep(500 * time.Microsecond)
			mu.Unlock() // hand-off follows the spliced chain to rank 1
		}
	})

	// Everyone acquired exactly once; the detached waiter (rank 1) was
	// spliced behind the usurper (rank 2) — FIFO violated, exclusion not.
	if acquired[1] == 0 || acquired[2] == 0 {
		t.Fatal("some rank never acquired")
	}
	if acquired[2] >= acquired[1] {
		t.Fatalf("expected the usurper to overtake the detached waiter: usurper %v, waiter %v",
			acquired[2], acquired[1])
	}
	if got := w.fabric.Space().LoadPair(lockPtr).UnpackPtr(); !got.IsNil() {
		t.Fatalf("lock not free at the end: %v", got)
	}
}
