package core

import (
	"armci/internal/msg"
	"armci/internal/proc"
)

// Mutex is a distributed lock handle. Lock blocks until the calling
// process holds the lock; Unlock releases it. A process must not call
// Lock twice without an intervening Unlock.
type Mutex interface {
	Lock()
	Unlock()
}

// Hybrid is the *original* ARMCI lock (§3.2.1): a hybrid of ticket-based
// locking for local locks and server-based queue locking for remote locks.
//
//   - Requesting a local lock: the process takes a ticket with a direct
//     atomic fetch-and-increment and polls the counter (Figure 3 a-b).
//   - Requesting a remote lock: the process sends a lock request to the
//     server at the lock's node and waits for the grant; the server takes
//     the ticket on its behalf and queues the request (Figure 3 c-d).
//   - Releasing — local or remote alike — always contacts the server
//     (Figure 4), which increments the counter and grants the next queued
//     waiter. Passing the lock to a remote waiter therefore costs two
//     message latencies (release → server, server → next waiter), the
//     inefficiency the queuing lock removes.
type Hybrid struct {
	eng *proc.Engine
	t   *proc.LockTable
	idx int

	ticket int64 // ticket held while a local acquisition is in flight
}

// NewHybrid returns rank-local state for lock idx of the table.
func NewHybrid(eng *proc.Engine, t *proc.LockTable, idx int) *Hybrid {
	return &Hybrid{eng: eng, t: t, idx: idx}
}

var _ Mutex = (*Hybrid)(nil)

// homeNode returns the node hosting the lock's variables.
func (h *Hybrid) homeNode() int {
	return h.eng.Env().Node(h.t.Home[h.idx])
}

// isLocal reports whether the lock's variables are directly accessible.
func (h *Hybrid) isLocal() bool {
	env := h.eng.Env()
	return env.Node(env.Rank()) == h.homeNode()
}

// Lock acquires the lock.
func (h *Hybrid) Lock() {
	env := h.eng.Env()
	base := h.t.TicketCounter[h.idx]
	if h.isLocal() {
		// Ticket-based path: direct atomics, no server involvement.
		h.ticket = h.eng.FetchAdd(base.Add(proc.TicketWord), 1)
		counter := base.Add(proc.CounterWord)
		env.WaitUntil("hybrid-local-lock", func() bool {
			return env.Space().Load(counter) == h.ticket
		})
		recordAcquire(env, h.idx, -1, h.ticket)
		return
	}
	// Server-based path: one request, one grant (possibly queued).
	tok := h.eng.NextToken()
	env.Send(msg.ServerOf(h.homeNode()), &msg.Message{
		Kind:   msg.KindLockReq,
		Origin: env.Rank(),
		Token:  tok,
		Tag:    h.idx,
	})
	grant := env.Recv(msg.MatchToken(msg.KindLockGrant, tok))
	// The grant echoes the ticket the server took on our behalf.
	h.ticket = grant.Operands[0]
	recordAcquire(env, h.idx, -1, h.ticket)
}

// Unlock releases the lock. Whether the lock is local or remote, the
// server is contacted (one message, no reply): it increments the counter
// and wakes the next waiter, queued remotely or polling locally.
func (h *Hybrid) Unlock() {
	env := h.eng.Env()
	recordRelease(env, h.idx, h.ticket)
	env.Send(msg.ServerOf(h.homeNode()), &msg.Message{
		Kind:   msg.KindUnlock,
		Origin: env.Rank(),
		Tag:    h.idx,
	})
}
