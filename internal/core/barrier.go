// Package core implements the paper's primary contribution — the combined
// global-fence-plus-barrier operation ARMCI_Barrier() and the software
// queuing lock — together with the original implementations they are
// evaluated against (serialized AllFence + MPI_Barrier; the hybrid
// ticket/server lock).
package core

import (
	"fmt"

	"armci/internal/collective"
	"armci/internal/proc"
	"armci/internal/trace"
)

// Sync exposes the global synchronization operations of one process. It
// combines the process's ARMCI engine (for fence state) with a collective
// communicator (for the exchange stages).
type Sync struct {
	eng  *proc.Engine
	comm *collective.Comm

	// BarrierAlg is the stage-3 / MPI_Barrier algorithm; BarrierAuto by
	// default. It also selects the stage-1 allreduce pattern (k-nomial
	// tree or two-level hierarchical where applicable).
	BarrierAlg collective.BarrierAlg

	// NICFence switches Barrier to the NIC-offload fence protocol: the
	// servers answer fence round-trips at NIC cost without a host
	// wake-up (server.Options.NICFence), so instead of the counter
	// exchange the combined barrier pipelines one cheap fence round
	// trip per written node and then synchronizes. The semantics are
	// unchanged — no rank exits before every rank's prior operations
	// completed — only the accounting path differs.
	NICFence bool

	// epoch counts this rank's global synchronizations (Barrier, SyncOld,
	// SyncOldPipelined), numbering the SyncEnter/SyncExit trace events the
	// conformance fence oracle pairs up across ranks.
	epoch int
}

// NewSync builds the synchronization driver for the calling process.
func NewSync(eng *proc.Engine, comm *collective.Comm) *Sync {
	return &Sync{eng: eng, comm: comm}
}

// Engine returns the underlying ARMCI engine.
func (s *Sync) Engine() *proc.Engine { return s.eng }

// Comm returns the underlying collective communicator.
func (s *Sync) Comm() *collective.Comm { return s.comm }

// MPIBarrier performs a plain barrier synchronization (the message-passing
// library's MPI_Barrier): log₂(N) overlapped message latencies.
func (s *Sync) MPIBarrier() {
	s.comm.Barrier(s.BarrierAlg)
}

// SyncOld is the original GA_Sync: every process performs the serialized
// ARMCI_AllFence — up to 2(N−1) one-way latencies of confirmation round
// trips — followed by MPI_Barrier.
func (s *Sync) SyncOld() {
	s.enter()
	s.eng.AllFence()
	s.MPIBarrier()
	s.exit()
}

// SyncOldPipelined is the ablation variant of SyncOld with the fence round
// trips overlapped instead of serialized.
func (s *Sync) SyncOldPipelined() {
	s.enter()
	s.eng.AllFencePipelined()
	s.MPIBarrier()
	s.exit()
}

// enter / exit bracket one global synchronization with trace events. The
// enter event is recorded before any stage of the operation runs and the
// exit event after the last stage returns, so the fence oracle can treat
// everything a rank issued before enter as "must be complete somewhere
// before anyone's exit of the same epoch".
func (s *Sync) enter() {
	s.epoch++
	recordSync(s.eng.Env(), trace.OpSyncEnter, s.epoch)
}

func (s *Sync) exit() {
	recordSync(s.eng.Env(), trace.OpSyncExit, s.epoch)
}

// Barrier is the new combined operation, ARMCI_Barrier(): semantically
// equivalent to AllFence followed by MPI_Barrier when called by all
// processes concurrently, but costing only 2·log₂(N) message latencies.
// It proceeds in the paper's three stages (§3.1.2):
//
//  1. the per-node op_init[] arrays are element-wise summed across all
//     processes with the binary-exchange algorithm of Figure 2, so each
//     process learns how many fence-counted operations were issued,
//     cluster-wide, to its own node's server;
//  2. the process waits until its node's op_done counter — incremented by
//     the server as it completes operations — reaches that total;
//  3. the processes perform a barrier synchronization, after which no
//     process can have escaped with operations still pending anywhere.
func (s *Sync) Barrier() {
	env := s.eng.Env()
	s.enter()

	// Coalesced operations already sit in op_init[], so their frames
	// must be on the wire before anyone compares counters: a buffered
	// batch would leave stage 2 waiting for operations no server has
	// seen.
	s.eng.FlushAll()

	if s.NICFence {
		// NIC-offload path: a fence ack from a NICFence server proves
		// (per-pair FIFO) that every operation this rank issued to that
		// node completed, at NICService cost instead of a host wake.
		// One pipelined round trip per written node replaces the
		// op_init exchange and the op_done wait; the trailing barrier
		// then guarantees nobody exits before everyone fenced.
		s.eng.AllFencePipelined()
		s.MPIBarrier()
		s.exit()
		return
	}

	// Stage 1: distribute op_init[]. The engine's counters are
	// cumulative for the life of the run (as are the servers' op_done
	// counters), so the summed vector is directly comparable.
	sum := make([]int64, env.NumNodes())
	copy(sum, s.eng.OpInit())
	s.comm.AllReduceSumInt64Alg(sum, s.BarrierAlg)

	// Stage 2: wait for the local server to catch up.
	myNode := env.Node(env.Rank())
	opDone := s.eng.Layout().OpDone[myNode]
	want := sum[myNode]
	env.WaitUntil(fmt.Sprintf("op_done>=%d", want), func() bool {
		return env.Space().Load(opDone) >= want
	})

	// Stage 3: barrier synchronization.
	s.MPIBarrier()
	s.exit()
}
