// Package elastic is the recovery subsystem over the cluster runtime:
// it turns rank crashes into recoveries by pairing a deterministic
// replicated workload with membership views, Space replication and a
// respawn path.
//
// Every rank streams the dirty-page delta of its protected memory to a
// deterministic peer — rank r replicates to p(r) = (r+1) mod n and holds
// the shadow of its left neighbor l(r) = (r-1+n) mod n — at every sync
// epoch, using the coalesced KindBatch frame format of the wire layer.
// When a worker process dies under armci-run -elastic, the launch
// coordinator bumps the membership view epoch, respawns the dead node
// with a higher incarnation number, and drives the recovery protocol:
// survivors roll back (or forward) to the last cluster-committed epoch,
// the newcomer rebuilds its Space from the replica its right neighbor
// holds, in-flight traffic of the aborted epoch is fenced by the
// pipeline's view-epoch stamp, and everyone resumes from the last
// completed sync epoch. On the in-process fabrics the same protocol
// runs with a cooperative crash emulation (wipe-and-restore), so the
// recovery arithmetic is testable deterministically on the simulator.
//
// The step protocol, per sync epoch e (committed state is epoch e-1):
//
//	body(e)                  deterministic commutative mutations
//	all-fence; barrier A     every step-e mutation applied everywhere
//	capture delta; put blob into peer staging; store header len then
//	epoch (header-last); fence peer; barrier B
//	apply own staging to own shadow; snapshot; committed = e; barrier C
//
// Barrier B guarantees every rank's staging holds its left neighbor's
// epoch-e delta before anyone applies; barrier C keeps epoch e+1 puts
// out of staging areas still being applied. On recovery, "max survivor
// committed" R is well-defined to within one epoch: a rank at R-1 is
// provably between barrier B of epoch R and its commit, so its memory
// already holds the full epoch-R state and it rolls forward by
// completing the commit; a rank at R rolls back to its snapshot.
package elastic

import (
	"encoding/binary"
	"fmt"
	"os"
	"time"

	"armci"
	"armci/internal/proc"
	"armci/internal/shmem"
	"armci/internal/transport"
	"armci/internal/wire"
)

// Config parameterizes one elastic-replication run. The zero value of
// every knob selects a default sized for tests.
type Config struct {
	// Steps is the number of sync epochs of useful work.
	Steps int
	// Rows is the size, in int64 cells, of each rank's protected state
	// vector — the target of the remote fetch-adds.
	Rows int
	// Bytes is the size of each rank's protected byte buffer. It must
	// hold one SlotBytes slot per rank; 0 sizes it exactly.
	Bytes int
	// Ops is how many remote fetch-adds each rank issues per step.
	Ops int
	// Seed varies the operation mix (targets, cells, addends).
	Seed int64
	// CrashRank/CrashStep select the injected crash: CrashRank is
	// killed partway through sync epoch CrashStep. CrashStep 0 disables
	// the crash. Both default from the fault plan's crashrank knob when
	// left zero.
	CrashRank int
	CrashStep int
	// NoRepl disables the replication machinery entirely: each step is
	// body + fence + one barrier, nothing captured, streamed or
	// snapshotted. The benchmark layer prices the steady-state
	// replication overhead by comparing against this variant. It cannot
	// combine with a crash — there is no replica to recover from.
	NoRepl bool
	// SkipRollback arms the repl-stale-epoch mutation: survivors skip
	// the rollback to the resume epoch and keep the aborted epoch's
	// partial writes, so re-execution double-applies fetch-adds. The
	// conformance harness proves the state oracle catches this.
	SkipRollback bool
	// Logf, if non-nil, receives per-rank protocol diagnostics.
	Logf func(format string, args ...any)
}

// SlotBytes is the per-writer slot width of the protected byte buffer:
// rank r owns slot r of every buffer it writes, so byte puts from
// different ranks never overlap and the workload stays commutative.
const SlotBytes = 16

// Result is what every rank returns from Run. After a correct run the
// Fingerprint — the cluster-wide digest of all protected memory in rank
// order — is identical on every rank and equal to the crash-free run's.
type Result struct {
	// Fingerprint is the cluster digest (identical on all ranks).
	Fingerprint uint64
	// Recovered reports whether this rank participated in a recovery.
	Recovered bool
	// Incarnation is the worker's spawn count (procnet only; 0 on the
	// in-process fabrics and for never-crashed workers).
	Incarnation uint32
	// RecoveryTime is the span this rank spent inside the recovery
	// protocol, crash detection to the end of the re-establish
	// checkpoint — deterministic virtual time on the sim fabric, wall
	// time elsewhere. Zero when no recovery happened.
	RecoveryTime time.Duration
}

func (c *Config) defaults(p *armci.Proc) {
	if c.Steps == 0 {
		c.Steps = 6
	}
	if c.Rows == 0 {
		c.Rows = 3 * shmem.PageWords
	}
	if c.Bytes == 0 {
		c.Bytes = SlotBytes * p.Size()
	}
	if c.Ops == 0 {
		c.Ops = 8
	}
	if c.CrashStep == 0 {
		f := p.Env().Faults()
		c.CrashRank, c.CrashStep = f.ElasticCrashRank, f.ElasticCrashStep
	}
	if c.Bytes < SlotBytes*p.Size() {
		panic(fmt.Sprintf("elastic: Bytes %d cannot hold %d slots of %d bytes", c.Bytes, p.Size(), SlotBytes))
	}
	if c.CrashStep > c.Steps {
		panic(fmt.Sprintf("elastic: CrashStep %d beyond Steps %d", c.CrashStep, c.Steps))
	}
	if c.NoRepl && c.CrashStep > 0 {
		panic("elastic: NoRepl cannot combine with a crash — there is no replica to recover from")
	}
}

// runner is the per-rank protocol state. The pointer vectors hold one
// base pointer per rank for every piece of the layout. Protected
// segments are allocated before Protect, replica machinery after
// (excluded from tracking, capture, snapshot and rollback).
type runner struct {
	p     *armci.Proc
	cfg   Config
	space *shmem.Space
	n     int
	rank  int
	peer  int // (rank+1)%n — where this rank's replica lives
	left  int // (rank-1+n)%n — whose replica this rank holds

	stateW  []armci.Ptr // word: Rows cells of fetch-add state       (protected)
	stateB  []armci.Ptr // byte: Bytes buffer of per-writer slots    (protected)
	shadowE []armci.Ptr // word: 1 cell, sync epoch of the shadow
	hdr     []armci.Ptr // word: 2 cells, staging header [len, epoch]
	fp      []armci.Ptr // word: n+1 cells, fingerprint exchange
	shadow  []armci.Ptr // byte: left neighbor's replica, words then bytes
	staging []armci.Ptr // byte: incoming delta blob from left neighbor

	committed uint64
	snap      *shmem.RankSnapshot
	recovered bool
	recoveryT time.Duration
}

// Run executes the elastic-replication workload on p's fabric. Under
// armci-run -elastic it survives a real worker kill at the configured
// crash step; on the in-process fabrics the crash is emulated
// cooperatively. The returned fingerprint equals the crash-free run's
// on every fabric.
func Run(p *armci.Proc, cfg Config) Result {
	cfg.defaults(p)
	if ee, ok := p.Env().(transport.ElasticEnv); ok && ee.ElasticEnabled() {
		return newRunner(p, cfg, true).runElastic(ee)
	}
	return newRunner(p, cfg, false).runEmulated()
}

// newRunner lays the per-rank memory out and builds the pointer
// vectors. In-process (symmetric=false) the bases come from the
// collective allocator's pointer exchange, which tolerates any
// asymmetry in what the runtime allocated before us (lock homes, trace
// buffers). Under the real recovery machinery (symmetric=true) no
// collective is usable — a respawned incarnation cannot join the dead
// rank's exchanges — so the vectors are built by SPMD symmetry: the
// elastic launch pins one rank per node running this exact sequence of
// local allocations, making every rank's layout identical.
func newRunner(p *armci.Proc, cfg Config, symmetric bool) *runner {
	n := p.Size()
	r := &runner{
		p: p, cfg: cfg, space: p.Env().Space(),
		n: n, rank: p.Rank(), peer: (p.Rank() + 1) % n, left: (p.Rank() - 1 + n) % n,
	}
	words := func(count int) []armci.Ptr {
		if !symmetric {
			return p.MallocWords(count)
		}
		return mirror(p.MallocWordsLocal(count), n)
	}
	bytes := func(count int) []armci.Ptr {
		if !symmetric {
			return p.Malloc(count)
		}
		return mirror(p.MallocLocal(count), n)
	}
	// Protected application state.
	r.stateW = words(cfg.Rows)
	r.stateB = bytes(cfg.Bytes)
	// Protect only the window just allocated: segments below it are
	// runtime internals (live synchronization state that must never be
	// captured or rolled back), segments after it the replica machinery.
	r.space.ProtectRange(r.rank, int(r.stateW[r.rank].Seg)-1, int(r.stateB[r.rank].Seg)-1)
	// Replica machinery, outside the protected set.
	r.shadowE = words(1)
	r.hdr = words(2)
	r.fp = words(n + 1)
	r.shadow = bytes(r.shadowLen())
	r.staging = bytes(r.stagingCap())
	// The all-zero initial shadow is a correct replica of the all-zero
	// initial protected state: epoch 0 is committed from the start.
	r.snap = r.space.Snapshot(r.rank, 0)
	return r
}

// mirror projects one rank's fresh local allocation onto every rank by
// SPMD symmetry.
func mirror(mine armci.Ptr, n int) []armci.Ptr {
	vec := make([]armci.Ptr, n)
	for q := range vec {
		vec[q] = mine
		vec[q].Rank = int32(q)
	}
	return vec
}

// shadowLen is the shadow byte-segment size: the left neighbor's full
// protected set, word cells as raw little-endian first, bytes after.
func (r *runner) shadowLen() int { return 8*r.cfg.Rows + r.cfg.Bytes }

// stagingCap bounds the delta blob: batch header + one entry per
// worst-case alternating dirty page + full payload.
func (r *runner) stagingCap() int {
	pages := (r.cfg.Rows+shmem.PageWords-1)/shmem.PageWords +
		(r.cfg.Bytes+shmem.PageBytes-1)/shmem.PageBytes
	return 8 + 40*(pages+2) + r.shadowLen()
}

// shadowOff maps a pointer into this rank's protected set to its
// offset in the shadow segment replicating it (word cells as raw
// little-endian first, bytes after).
func (r *runner) shadowOff(p shmem.Ptr) int64 {
	if p.Kind == shmem.KindWord {
		if p.Seg != r.stateW[r.rank].Seg {
			panic(fmt.Sprintf("elastic: delta range in unexpected word segment %d", p.Seg))
		}
		return 8 * p.Off
	}
	if p.Seg != r.stateB[r.rank].Seg {
		panic(fmt.Sprintf("elastic: delta range in unexpected byte segment %d", p.Seg))
	}
	return int64(8*r.cfg.Rows) + p.Off
}

// --- deterministic workload ---

// mix is a splitmix64-style hash: the whole operation stream is a pure
// function of (seed, epoch, rank, op), so re-execution after a rollback
// replays identical mutations.
func mix(vs ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vs {
		h ^= v * 0xff51afd7ed558ccd
		h ^= h >> 33
		h *= 0xc4ceb9fe1a85ec53
		h ^= h >> 29
	}
	return h
}

// body runs this rank's epoch-e mutations: ops remote fetch-adds into
// commutative targets, then one put of this rank's slot into a rotating
// peer's byte buffer. With partial set (the crashing rank), only the
// first half of the fetch-adds run and the put is skipped — the state a
// mid-body crash leaves behind.
func (r *runner) body(e uint64, partial bool) {
	seed := uint64(r.cfg.Seed)
	ops := r.cfg.Ops
	if partial {
		ops = r.cfg.Ops / 2
	}
	for k := 0; k < ops; k++ {
		h := mix(seed, e, uint64(r.rank), uint64(k))
		target := int(h % uint64(r.n))
		cell := int64((h >> 16) % uint64(r.cfg.Rows))
		add := int64(1 + (h>>40)%7)
		r.p.FetchAdd(r.stateW[target].Add(cell), add)
	}
	if partial {
		return
	}
	target := (r.rank + int(e)) % r.n
	var slot [SlotBytes]byte
	binary.LittleEndian.PutUint64(slot[:], mix(seed, e, uint64(r.rank), 1e9))
	binary.LittleEndian.PutUint64(slot[8:], mix(seed, e, uint64(r.rank), 2e9))
	r.p.Put(r.stateB[target].Add(int64(SlotBytes*r.rank)), slot[:])
}

// --- replication ---

// blob encodes delta ranges of this rank's protected memory as a batch
// of puts into the peer's shadow segment — the receiver decodes and
// applies them locally with WriteRaw.
func (r *runner) blob(deltas []shmem.DeltaRange) []byte {
	if len(deltas) == 0 {
		return nil
	}
	entries := make([]wire.BatchEntry, 0, len(deltas))
	for _, d := range deltas {
		entries = append(entries, wire.BatchEntry{
			Op:   wire.BatchPut,
			Ptr:  r.shadow[r.peer].Add(r.shadowOff(d.Ptr)),
			Data: d.Data,
		})
	}
	return wire.EncodeBatch(entries)
}

// stream ships blob into the peer's staging area and publishes the
// header, epoch last: per-pair FIFO to the peer's server plus the
// header-last ordering make a torn staging write unobservable. The
// fence guarantees remote completion before the caller's next barrier.
func (r *runner) stream(blob []byte, epoch uint64) {
	if len(blob) > r.stagingCap() {
		panic(fmt.Sprintf("elastic: delta blob of %d bytes exceeds staging capacity %d", len(blob), r.stagingCap()))
	}
	if len(blob) > 0 {
		r.p.Put(r.staging[r.peer], blob)
	}
	r.p.Store(r.hdr[r.peer], int64(len(blob)))
	r.p.Store(r.hdr[r.peer].Add(1), int64(epoch))
	r.p.Fence(r.p.NodeOf(r.peer))
}

// applyStaging applies the staged left-neighbor delta to the local
// shadow and stamps the shadow epoch. The caller synchronizes (barrier
// B or the recovery barriers), so the header is final here.
func (r *runner) applyStaging(epoch uint64) {
	gotEpoch := uint64(r.p.Load(r.hdr[r.rank].Add(1)))
	if gotEpoch != epoch {
		panic(fmt.Sprintf("elastic: rank %d staging holds epoch %d, want %d", r.rank, gotEpoch, epoch))
	}
	if ln := r.p.Load(r.hdr[r.rank]); ln > 0 {
		raw := r.space.ReadRaw(r.staging[r.rank], int(ln))
		entries, err := wire.DecodeBatch(raw)
		if err != nil {
			panic(fmt.Sprintf("elastic: rank %d staged blob corrupt: %v", r.rank, err))
		}
		for _, en := range entries {
			if int(en.Ptr.Rank) != r.rank || en.Ptr.Kind != shmem.KindByte || en.Ptr.Seg != r.shadow[r.rank].Seg {
				panic(fmt.Sprintf("elastic: rank %d staged entry targets %v, not the local shadow", r.rank, en.Ptr))
			}
			r.space.WriteRaw(en.Ptr, en.Data)
		}
	}
	r.p.Store(r.shadowE[r.rank], int64(epoch))
}

// step runs one sync epoch to commit. bar is the global barrier
// primitive (the coordinator barrier service under -elastic, the
// collective barrier in-process); ids are reused verbatim on
// re-execution after a recovery.
func (r *runner) step(e uint64, partial bool, bar func(id uint64)) {
	r.body(e, partial)
	r.p.AllFence()
	bar(stepBar(e, 0))
	if r.cfg.NoRepl {
		r.committed = e
		return
	}
	blob := r.blob(r.space.CaptureDelta(r.rank, true))
	r.stream(blob, e)
	bar(stepBar(e, 1))
	r.applyStaging(e)
	r.snap = r.space.Snapshot(r.rank, e)
	r.committed = e
	bar(stepBar(e, 2))
}

// reestablish runs a full checkpoint at epoch e: every rank streams its
// entire protected set, so a respawned rank's empty shadow is rebuilt
// from nothing. Survivor shadows are overwritten with identical state.
func (r *runner) reestablish(e uint64, barA, barB func()) {
	blob := r.blob(r.space.CaptureFull(r.rank, true))
	r.stream(blob, e)
	barA()
	r.applyStaging(e)
	barB()
}

// repairLeases sweeps the run's lock table (when it has one) for leases
// still registered to the dead rank, freeing each with the lease lock's
// epoch-advancing CAS and waking queued successors — rejoin-time lease
// restamp, so re-executed critical sections need not wait out a TTL.
func (r *runner) repairLeases(dead int) {
	t := r.p.Locks()
	if t == nil {
		return
	}
	if freed := proc.RepairLeasesHeldBy(r.p.Engine(), t, dead); freed > 0 {
		r.logf("elastic: rank %d freed %d lease(s) held by dead rank %d", r.rank, freed, dead)
	}
}

// restoreFromPeer rebuilds this rank's protected memory from the
// replica its right neighbor holds, verifying the shadow is at the
// resume epoch, and commits the restored state.
func (r *runner) restoreFromPeer(resume uint64) {
	if se := uint64(r.p.Load(r.shadowE[r.peer])); se != resume {
		panic(fmt.Sprintf("elastic: rank %d replica on rank %d is at epoch %d, want %d", r.rank, r.peer, se, resume))
	}
	buf := r.p.Get(r.shadow[r.peer], r.shadowLen())
	r.space.WriteRaw(r.stateW[r.rank], buf[:8*r.cfg.Rows])
	r.space.WriteRaw(r.stateB[r.rank], buf[8*r.cfg.Rows:])
	r.snap = r.space.Snapshot(r.rank, resume)
	r.committed = resume
}

// --- fingerprint ---

const fnvOffset, fnvPrime = uint64(0xcbf29ce484222325), uint64(0x100000001b3)

// fnvFold folds b into an FNV-1a running digest.
func fnvFold(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime
	}
	return h
}

// localFp hashes this rank's protected memory (FNV-1a over the raw
// little-endian serialization).
func (r *runner) localFp() uint64 {
	h := fnvFold(fnvOffset, r.space.ReadRaw(r.stateW[r.rank], 8*r.cfg.Rows))
	return fnvFold(h, r.space.ReadRaw(r.stateB[r.rank], r.cfg.Bytes))
}

// fingerprint combines every rank's local digest into one cluster
// digest using only one-sided stores — no collective communication, so
// it works identically before and after a respawn. Each rank stores its
// digest into rank 0's exchange vector; rank 0 folds them in rank order
// and stores the result back into every rank's last cell.
func (r *runner) fingerprint(bar func(id uint64)) uint64 {
	r.p.Store(r.fp[0].Add(int64(r.rank)), int64(r.localFp()))
	r.p.Fence(r.p.NodeOf(0))
	bar(fpBar(0))
	if r.rank == 0 {
		h := fnvOffset
		for q := 0; q < r.n; q++ {
			v := uint64(r.p.Load(r.fp[0].Add(int64(q))))
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], v)
			h = fnvFold(h, b[:])
		}
		for q := 0; q < r.n; q++ {
			r.p.Store(r.fp[q].Add(int64(r.n)), int64(h))
		}
		r.p.AllFence()
	}
	bar(fpBar(1))
	return uint64(r.p.Load(r.fp[r.rank].Add(int64(r.n))))
}

// Oracle computes the crash-free cluster fingerprint of cfg on n ranks
// without running anything: the workload's operation stream is a pure
// function of (seed, epoch, rank, op), so replaying it against local
// model arrays yields the exact state every correct run — crash-free or
// recovered — must converge to. Launchers and the conformance harness
// verify results against it with no reference execution.
func Oracle(cfg Config, n int) uint64 {
	if cfg.Steps == 0 {
		cfg.Steps = 6
	}
	if cfg.Rows == 0 {
		cfg.Rows = 3 * shmem.PageWords
	}
	if cfg.Bytes == 0 {
		cfg.Bytes = SlotBytes * n
	}
	if cfg.Ops == 0 {
		cfg.Ops = 8
	}
	words := make([][]int64, n)
	bufs := make([][]byte, n)
	for q := 0; q < n; q++ {
		words[q] = make([]int64, cfg.Rows)
		bufs[q] = make([]byte, cfg.Bytes)
	}
	seed := uint64(cfg.Seed)
	for e := uint64(1); e <= uint64(cfg.Steps); e++ {
		for q := 0; q < n; q++ {
			for k := 0; k < cfg.Ops; k++ {
				h := mix(seed, e, uint64(q), uint64(k))
				words[h%uint64(n)][(h>>16)%uint64(cfg.Rows)] += int64(1 + (h>>40)%7)
			}
			// Epochs replay in order, so last-writer-wins falls out of
			// the iteration.
			target := (q + int(e)) % n
			binary.LittleEndian.PutUint64(bufs[target][SlotBytes*q:], mix(seed, e, uint64(q), 1e9))
			binary.LittleEndian.PutUint64(bufs[target][SlotBytes*q+8:], mix(seed, e, uint64(q), 2e9))
		}
	}
	h := fnvOffset
	for q := 0; q < n; q++ {
		lq := fnvOffset
		var b [8]byte
		for _, v := range words[q] {
			binary.LittleEndian.PutUint64(b[:], uint64(v))
			lq = fnvFold(lq, b[:])
		}
		lq = fnvFold(lq, bufs[q])
		binary.LittleEndian.PutUint64(b[:], lq)
		h = fnvFold(h, b[:])
	}
	return h
}

// --- barrier id namespaces ---

// Step barriers live below 1<<32, recovery barriers above it (scoped by
// view epoch so re-recoveries never collide), fingerprint barriers in a
// third window. The coordinator's barrier service deletes an id on
// release, so re-executed steps reuse their ids safely.
func stepBar(e uint64, k uint64) uint64 { return e*8 + k }
func recBar(view uint64, k uint64) uint64 {
	return (1 << 32) + view*8 + k
}
func fpBar(k uint64) uint64 { return (2 << 32) + k }

func (r *runner) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// --- emulated crash (sim / chan / tcp) ---

// runEmulated drives the workload with a cooperative crash: at the
// crash step the victim executes only a partial body, every rank meets
// at a barrier (standing in for crash detection), the victim wipes its
// protected memory and restores it from the peer replica through real
// remote gets, survivors roll back, and a full re-establish checkpoint
// rebuilds the shadows before the steps re-execute. The global barrier
// is the collective one — in-process, every rank stays alive.
func (r *runner) runEmulated() Result {
	bar := func(uint64) { r.p.Barrier() }
	// Allocation is purely local; no remote op may land before every
	// rank has laid out its segments.
	r.p.Barrier()
	crashed := false
	for e := uint64(1); e <= uint64(r.cfg.Steps); e++ {
		if r.cfg.CrashStep > 0 && e == uint64(r.cfg.CrashStep) && !crashed {
			crashed = true
			victim := r.rank == r.cfg.CrashRank%r.n
			r.body(e, victim)
			r.p.AllFence()
			r.p.Barrier() // all partial-epoch mutations applied: "crash detected"
			recT0 := r.p.Now()
			resume := e - 1
			if victim {
				r.logf("elastic: rank %d emulating crash at epoch %d", r.rank, e)
				r.space.WipeProtected(r.rank)
				r.restoreFromPeer(resume)
			} else {
				r.repairLeases(r.cfg.CrashRank % r.n)
				if !r.cfg.SkipRollback {
					r.space.Restore(r.rank, r.snap)
				}
			}
			r.p.Barrier()
			r.reestablish(resume, r.p.Barrier, r.p.Barrier)
			r.committed = resume
			r.recovered = true
			r.recoveryT = r.p.Now() - recT0
		}
		r.step(e, false, bar)
	}
	return Result{Fingerprint: r.fingerprint(bar), Recovered: r.recovered, RecoveryTime: r.recoveryT}
}

// --- real crash (procnet under armci-run -elastic) ---

// runElastic drives the workload over the real recovery machinery: the
// victim worker exits mid-body, the coordinator detects the connection
// loss, bumps the view and respawns; survivors are thrown out of their
// blocking calls with a ViewInterrupt and converge on the resume epoch
// with the respawned incarnation.
func (r *runner) runElastic(ee transport.ElasticEnv) Result {
	if r.p.Env().NumNodes() != r.n {
		panic(fmt.Sprintf("elastic: %d ranks on %d nodes — elastic recovery needs one rank per node", r.n, r.p.Env().NumNodes()))
	}
	bar := ee.ClusterBarrier
	inc := ee.Incarnation()
	if inc > 0 {
		// Respawned incarnation: no step state exists; join the
		// in-progress recovery directly. (Survivors cannot aim a remote
		// op at this rank before it allocates: they are parked in the
		// first recovery barrier, which this rank enters only after
		// newRunner laid the segments out.)
		r.logf("elastic: rank %d incarnation %d joining recovery", r.rank, inc)
		r.recoverVictim(ee)
	} else {
		// Allocation is purely local; no remote op may land before
		// every rank has laid out its segments.
		bar(stepBar(0, 0))
	}
	for e := r.committed + 1; e <= uint64(r.cfg.Steps); e++ {
		crashHere := inc == 0 && r.cfg.CrashStep > 0 &&
			r.rank == r.cfg.CrashRank%r.n && e == uint64(r.cfg.CrashStep)
		if vi := r.guarded(func() { r.stepElastic(e, crashHere, bar) }); vi != nil {
			r.recoverSurvivor(ee, vi)
		}
		e = r.committed
	}
	return Result{Fingerprint: r.fingerprint(bar), Recovered: r.recovered, Incarnation: inc, RecoveryTime: r.recoveryT}
}

// stepElastic is step with the real crash injection: the victim's
// worker process exits mid-body, taking its server (and its whole Space
// replica) with it.
func (r *runner) stepElastic(e uint64, crashHere bool, bar func(id uint64)) {
	if crashHere {
		r.body(e, true)
		r.logf("elastic: rank %d exiting at epoch %d (crashrank fault)", r.rank, e)
		os.Exit(3)
	}
	r.step(e, false, bar)
}

// guarded runs fn, converting a membership-change abort into a returned
// ViewInterrupt; every other panic propagates.
func (r *runner) guarded(fn func()) (vi *transport.ViewInterrupt) {
	defer func() {
		if p := recover(); p != nil {
			if v, ok := transport.AsViewInterrupt(p); ok {
				vi = v
				return
			}
			panic(p)
		}
	}()
	fn()
	return nil
}

// recoverSurvivor converges a surviving rank on the cluster resume
// epoch after a view change. AckView first: it fences the aborted
// epoch's traffic (epoch bump, mailbox purge, dead-pair reset) and
// reports this rank's committed state for the coordinator's resume
// computation.
func (r *runner) recoverSurvivor(ee transport.ElasticEnv, vi *transport.ViewInterrupt) {
	recT0 := r.p.Now()
	shadowE := uint64(r.p.Load(r.shadowE[r.rank]))
	stagedE := uint64(r.p.Load(r.hdr[r.rank].Add(1)))
	ee.AckView(r.committed, shadowE, stagedE)
	dead, resume := ee.AwaitResume()
	r.logf("elastic: rank %d surviving view %d: node %d replaced, resume epoch %d (committed %d)",
		r.rank, vi.Epoch, dead, resume, r.committed)
	r.repairLeases(dead)
	switch {
	case r.committed == resume:
		// Possibly mid-body of the aborted epoch: roll back to the
		// replicated snapshot (clears the dirty set with it).
		if !r.cfg.SkipRollback {
			r.space.Restore(r.rank, r.snap)
		}
	case r.committed == resume-1:
		// Provably between barrier B of the resume epoch and the
		// commit: memory already holds the full epoch, the staged
		// delta is fully delivered (its writer fenced before B) —
		// complete the commit instead of rolling back.
		r.applyStaging(resume)
		r.snap = r.space.Snapshot(r.rank, resume)
		r.committed = resume
	default:
		panic(fmt.Sprintf("elastic: rank %d committed %d cannot reach resume epoch %d", r.rank, r.committed, resume))
	}
	view := ee.ViewEpoch()
	ee.ClusterBarrier(recBar(view, 0)) // survivors converged
	ee.ClusterBarrier(recBar(view, 1)) // victim restored
	r.reestablish(resume,
		func() { ee.ClusterBarrier(recBar(view, 2)) },
		func() { ee.ClusterBarrier(recBar(view, 3)) })
	r.committed = resume
	r.recovered = true
	r.recoveryT = r.p.Now() - recT0
}

// recoverVictim is the respawned incarnation's entry: acknowledge the
// view it was spawned under, learn the resume epoch, rebuild protected
// memory from the peer replica and rejoin the full checkpoint.
func (r *runner) recoverVictim(ee transport.ElasticEnv) {
	recT0 := r.p.Now()
	ee.AckView(0, 0, 0)
	dead, resume := ee.AwaitResume()
	if dead != r.rank {
		panic(fmt.Sprintf("elastic: respawned rank %d told node %d is the replaced slot", r.rank, dead))
	}
	view := ee.ViewEpoch()
	ee.ClusterBarrier(recBar(view, 0)) // survivors converged; replica stable
	r.restoreFromPeer(resume)
	r.logf("elastic: rank %d restored %d bytes from rank %d's replica at epoch %d",
		r.rank, r.shadowLen(), r.peer, resume)
	ee.ClusterBarrier(recBar(view, 1))
	r.reestablish(resume,
		func() { ee.ClusterBarrier(recBar(view, 2)) },
		func() { ee.ClusterBarrier(recBar(view, 3)) })
	r.committed = resume
	r.recovered = true
	r.recoveryT = r.p.Now() - recT0
}
