package transport

import (
	"errors"
	"fmt"
	"time"

	"armci/internal/model"
	"armci/internal/msg"
	"armci/internal/pipeline"
	"armci/internal/shmem"
	"armci/internal/sim"
	"armci/internal/trace"
)

// SimFabric runs the cluster on the discrete-event kernel. Execution is
// deterministic and all times are virtual, governed by the cost model; it
// is the fabric used to regenerate the paper's figures.
type SimFabric struct {
	cfg    Config
	kernel *sim.Kernel
	space  *shmem.Space
	pipe   *pipeline.Pipeline

	mailboxes map[msg.Addr]*msg.Queue

	users     []actorSpec
	servers   []actorSpec
	liveUsers int
	shutdown  bool
}

type actorSpec struct {
	addr msg.Addr
	body func(Env)
}

// NewSim builds a simulated fabric for the given configuration.
func NewSim(cfg Config) (*SimFabric, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	f := &SimFabric{
		cfg:       cfg,
		kernel:    sim.New(),
		space:     shmem.NewSpace(cfg.nodeMap()),
		mailboxes: make(map[msg.Addr]*msg.Queue),
	}
	f.pipe = cfg.newPipeline(f.space, true)
	if cfg.ScheduleSeed != 0 {
		f.kernel.SetShuffle(cfg.ScheduleSeed)
	}
	if cfg.EventPoolHazard {
		f.kernel.SetEventPoolHazard(true)
	}
	return f, nil
}

// Space returns the cluster's shared memory.
func (f *SimFabric) Space() *shmem.Space { return f.space }

// Config returns the cluster configuration.
func (f *SimFabric) Config() *Config { return &f.cfg }

// Kernel exposes the underlying discrete-event kernel (for tests).
func (f *SimFabric) Kernel() *sim.Kernel { return f.kernel }

// SpawnUser registers the body of rank's user process.
func (f *SimFabric) SpawnUser(rank int, body func(Env)) {
	f.users = append(f.users, actorSpec{addr: msg.User(rank), body: body})
}

// SpawnServer registers the body of node's data server.
func (f *SimFabric) SpawnServer(node int, body func(Env)) {
	f.servers = append(f.servers, actorSpec{addr: msg.ServerOf(node), body: body})
}

// Run executes the simulation until every user process finishes. Servers
// are unblocked with a nil Recv result once the last user is done.
func (f *SimFabric) Run() error {
	for _, a := range f.users {
		f.mailboxes[a.addr] = &msg.Queue{}
	}
	for _, a := range f.servers {
		f.mailboxes[a.addr] = &msg.Queue{}
	}
	f.liveUsers = len(f.users)
	for _, a := range f.users {
		spec := a
		f.kernel.Spawn(spec.addr.String(), func(p *sim.Proc) {
			defer func() {
				f.liveUsers--
				if f.liveUsers == 0 {
					f.shutdown = true
				}
			}()
			spec.body(&simEnv{f: f, p: p, addr: spec.addr})
		})
	}
	for _, a := range f.servers {
		spec := a
		f.kernel.Spawn(spec.addr.String(), func(p *sim.Proc) {
			spec.body(&simEnv{f: f, p: p, addr: spec.addr})
		})
	}
	deadline := f.cfg.Deadline
	if deadline == 0 {
		deadline = time.Hour // virtual; generous default against runaways
	}
	err := f.kernel.Run(deadline)
	if errors.Is(err, sim.ErrDeadlock) {
		if f.shutdown {
			// A deadlock after the last user finished is the expected way an
			// idle simulation drains when a server has no poison support.
			return nil
		}
		if r := f.pipe.FirstCrashed(); r >= 0 {
			// Survivors wedged on a fail-stopped peer: the virtual-time
			// deadlock is that crash's fault, so attribute it to the dead
			// rank instead of reporting an anonymous deadlock.
			return &pipeline.FaultError{Rank: r, Op: "wait on crashed rank", Kind: pipeline.FaultCrash}
		}
	}
	return err
}

// Now returns the current virtual time (valid during and after Run).
func (f *SimFabric) Now() time.Duration { return f.kernel.Now() }

// simEnv is the Env of one simulated actor.
type simEnv struct {
	f    *SimFabric
	p    *sim.Proc
	addr msg.Addr
}

var _ Env = (*simEnv)(nil)

func (e *simEnv) Self() msg.Addr       { return e.addr }
func (e *simEnv) Rank() int            { return e.addr.ID }
func (e *simEnv) Size() int            { return e.f.cfg.Procs }
func (e *simEnv) NumNodes() int        { return e.f.cfg.numNodes() }
func (e *simEnv) Node(rank int) int    { return e.f.space.Node(rank) }
func (e *simEnv) Space() *shmem.Space  { return e.f.space }
func (e *simEnv) Params() model.Params { return e.f.cfg.Model }
func (e *simEnv) Trace() *trace.Stats  { return e.f.cfg.Trace }
func (e *simEnv) Clock() Clock         { return simClock{e.p} }

type simClock struct{ p *sim.Proc }

func (c simClock) Now() time.Duration    { return c.p.Now() }
func (c simClock) Sleep(d time.Duration) { c.p.Sleep(d) }

func (e *simEnv) Charge(d time.Duration) {
	if d > 0 {
		e.p.Sleep(d)
	}
}

func (e *simEnv) Send(to msg.Addr, m *msg.Message) {
	q, ok := e.f.mailboxes[to]
	if !ok {
		panic(fmt.Sprintf("simnet: send to unknown endpoint %v", to))
	}
	err := e.f.pipe.SendTo(e.addr, to, m, e.p.Now, e.Charge, func(d pipeline.Delivery) {
		dm := d.Msg
		e.p.Kernel().At(d.At, func() {
			if e.f.pipe.Inbound(dm, e.f.kernel.Now()) {
				q.Put(dm)
			}
		})
	})
	if err != nil {
		var fe *pipeline.FaultError
		if errors.As(err, &fe) && fe.Kind == pipeline.FaultCrash && !e.addr.Server {
			// An injected crash is a fail-stop of this actor only: register
			// the death so crash-aware waiters (and the lease lock's repair
			// path) can observe it, then vanish without failing the run.
			e.f.pipe.NoteCrash(e.addr.ID)
			panic(sim.Exit{})
		}
		// Retry exhaustion (or a server-side fault) fails the whole run
		// with the structured error, not a generic panic message.
		panic(sim.Abort{Err: err})
	}
}

func (e *simEnv) Recv(match msg.Match) *msg.Message {
	q := e.f.mailboxes[e.addr]
	var got *msg.Message
	// Bound user-process Recvs by the per-op deadline via a virtual-time
	// timer flag re-checked by the wait predicate. Servers are exempt:
	// idling in the serve loop is their normal state.
	timedOut := false
	if od := e.f.cfg.OpDeadline; od > 0 && !e.addr.Server {
		e.p.Kernel().After(od, func() { timedOut = true })
	}
	tag := "recv@" + e.addr.String()
	e.p.WaitUntil(tag, func() bool {
		if e.addr.Server && e.f.shutdown && q.Len() == 0 {
			return true // drained and cluster is shutting down
		}
		if m := q.TryPop(match); m != nil {
			got = m
			return true
		}
		return timedOut
	})
	if got == nil && timedOut {
		if r := e.f.pipe.FirstCrashed(); r >= 0 {
			// The wait outlived a fail-stopped peer: the timeout is the
			// crash's fault, so attribute it to the dead rank.
			panic(sim.Abort{Err: &pipeline.FaultError{Rank: r, Op: tag, Kind: pipeline.FaultCrash}})
		}
		panic(sim.Abort{Err: opTimeout(e.addr, tag).err})
	}
	if got != nil {
		e.f.pipe.RecvCharge(e.Charge)
	}
	return got
}

func (e *simEnv) TryRecv(match msg.Match) *msg.Message {
	// Messages reach the mailbox only at their delivery instant (the
	// kernel's At callback), so anything queued has already arrived.
	m := e.f.mailboxes[e.addr].TryPop(match)
	if m != nil {
		e.f.pipe.RecvCharge(e.Charge)
	}
	return m
}

func (e *simEnv) WaitUntil(tag string, pred func() bool) {
	timedOut := false
	if od := e.f.cfg.OpDeadline; od > 0 {
		e.p.Kernel().After(od, func() { timedOut = true })
	}
	done := false
	e.p.WaitUntil(tag, func() bool {
		done = pred()
		return done || timedOut
	})
	if !done && timedOut {
		if r := e.f.pipe.FirstCrashed(); r >= 0 {
			panic(sim.Abort{Err: &pipeline.FaultError{Rank: r, Op: tag, Kind: pipeline.FaultCrash}})
		}
		panic(sim.Abort{Err: opTimeout(e.addr, tag).err})
	}
	if g := e.f.cfg.Model.PollGap; g > 0 {
		// Model the detection delay between the memory write and the
		// spinning process noticing it.
		e.p.Sleep(g)
	}
}

func (e *simEnv) WaitUntilFor(tag string, pred func() bool, d time.Duration) bool {
	if d <= 0 {
		e.WaitUntil(tag, pred)
		return true
	}
	timedOut := false
	e.p.Kernel().After(d, func() { timedOut = true })
	done := false
	e.p.WaitUntil(tag, func() bool {
		done = pred()
		return done || timedOut
	})
	if g := e.f.cfg.Model.PollGap; g > 0 {
		e.p.Sleep(g)
	}
	return done
}

func (e *simEnv) Faults() pipeline.Faults { return e.f.pipe.Faults() }

func (e *simEnv) CrashedRank() int { return e.f.pipe.FirstCrashed() }

func (e *simEnv) FailStop(op string) {
	e.f.pipe.CrashNow(e.addr.ID, op)
	panic(sim.Exit{})
}

func (e *simEnv) AbortFault(err *pipeline.FaultError) {
	panic(sim.Abort{Err: err})
}
