package transport

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"armci/internal/model"
	"armci/internal/msg"
	"armci/internal/pipeline"
	"armci/internal/trace"
)

func TestConfigValidation(t *testing.T) {
	if _, err := NewSim(Config{Procs: 0}); err == nil {
		t.Fatal("Procs=0 accepted")
	}
	if _, err := NewChan(Config{Procs: -1}); err == nil {
		t.Fatal("negative Procs accepted")
	}
	if _, err := NewTCP(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

// TestConfigRejectsBadKnobs: normalize must reject nonsensical values with
// a descriptive error rather than silently misbehaving later.
func TestConfigRejectsBadKnobs(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error
	}{
		{"negative jitter", Config{Procs: 2, Jitter: -time.Microsecond}, "Jitter >= 0"},
		{"negative deadline", Config{Procs: 2, Deadline: -time.Second}, "Deadline >= 0"},
		{"negative fault jitter", Config{Procs: 2, Faults: pipeline.Faults{Jitter: -1}}, "fault plan"},
		{"negative spike delay", Config{Procs: 2, Faults: pipeline.Faults{SpikeDelay: -time.Millisecond, SpikeProb: 0.1}}, "fault plan"},
		{"spike prob above 1", Config{Procs: 2, Faults: pipeline.Faults{SpikeProb: 1.5}}, "fault plan"},
		{"negative dup prob", Config{Procs: 2, Faults: pipeline.Faults{DupProb: -0.1}}, "fault plan"},
		{"negative dup cap", Config{Procs: 2, Faults: pipeline.Faults{MaxDupsPerPair: -1}}, "fault plan"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			err := cfg.normalize()
			if err == nil {
				t.Fatalf("config %+v accepted", tc.cfg)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// And the deprecated Jitter knob must still fold into the fault plan.
	cfg := Config{Procs: 2, Jitter: 5 * time.Microsecond, JitterSeed: 9}
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	if cfg.Faults.Jitter != 5*time.Microsecond || cfg.Faults.Seed != 9 {
		t.Fatalf("deprecated Jitter not folded: %+v", cfg.Faults)
	}
}

func TestConfigTopology(t *testing.T) {
	c := Config{Procs: 5, ProcsPerNode: 2}
	if err := c.normalize(); err != nil {
		t.Fatal(err)
	}
	nodes := c.nodeMap()
	want := []int{0, 0, 1, 1, 2}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("nodeMap = %v", nodes)
		}
	}
	if c.numNodes() != 3 {
		t.Fatalf("numNodes = %d", c.numNodes())
	}
}

// fabricsUnderTest builds each fabric kind for a config.
func fabricsUnderTest(t *testing.T, cfg Config) map[string]func() (Fabric, error) {
	t.Helper()
	return map[string]func() (Fabric, error){
		"sim": func() (Fabric, error) { return NewSim(cfg) },
		"chan": func() (Fabric, error) {
			c := cfg
			c.Model = model.Zero()
			return NewChan(c)
		},
		"tcp": func() (Fabric, error) {
			c := cfg
			c.Model = model.Zero()
			return NewTCP(c)
		},
	}
}

// TestPingPongAllFabrics: two user processes exchange a counter via
// tagged messages on every fabric.
func TestPingPongAllFabrics(t *testing.T) {
	for name, mk := range fabricsUnderTest(t, Config{Procs: 2, Model: model.Myrinet2000()}) {
		t.Run(name, func(t *testing.T) {
			f, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			const rounds = 10
			var final int
			f.SpawnUser(0, func(env Env) {
				v := 0
				for i := 0; i < rounds; i++ {
					env.Send(msg.User(1), &msg.Message{Kind: msg.KindSend, Tag: i, N: v})
					m := env.Recv(msg.MatchSrcTag(msg.KindSend, msg.User(1), i))
					v = m.N
				}
				final = v
			})
			f.SpawnUser(1, func(env Env) {
				for i := 0; i < rounds; i++ {
					m := env.Recv(msg.MatchSrcTag(msg.KindSend, msg.User(0), i))
					env.Send(msg.User(0), &msg.Message{Kind: msg.KindSend, Tag: i, N: m.N + 1})
				}
			})
			if err := f.Run(); err != nil {
				t.Fatal(err)
			}
			if final != rounds {
				t.Fatalf("final counter %d, want %d", final, rounds)
			}
		})
	}
}

// TestServerShutdownNilRecv: a server's Recv returns nil after the users
// finish, on every fabric.
func TestServerShutdownNilRecv(t *testing.T) {
	for name, mk := range fabricsUnderTest(t, Config{Procs: 1}) {
		t.Run(name, func(t *testing.T) {
			f, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			served := 0
			clean := false
			f.SpawnServer(0, func(env Env) {
				for {
					m := env.Recv(msg.MatchAny)
					if m == nil {
						clean = true
						return
					}
					served++
					env.Send(m.Src, &msg.Message{Kind: msg.KindRmwResp, Token: m.Token})
				}
			})
			f.SpawnUser(0, func(env Env) {
				for i := 0; i < 3; i++ {
					env.Send(msg.ServerOf(0), &msg.Message{Kind: msg.KindRmw, Token: uint64(i), Origin: 0})
					env.Recv(msg.MatchToken(msg.KindRmwResp, uint64(i)))
				}
			})
			if err := f.Run(); err != nil {
				t.Fatal(err)
			}
			if served != 3 || !clean {
				t.Fatalf("served=%d clean=%v", served, clean)
			}
		})
	}
}

// TestPerPairFIFO: a big message then small messages from the same
// sender must arrive in order, on every fabric.
func TestPerPairFIFO(t *testing.T) {
	for name, mk := range fabricsUnderTest(t, Config{Procs: 2, Model: model.Myrinet2000()}) {
		t.Run(name, func(t *testing.T) {
			f, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			var got []int
			f.SpawnUser(0, func(env Env) {
				env.Send(msg.User(1), &msg.Message{Kind: msg.KindSend, Tag: 0, Data: make([]byte, 64<<10)})
				for i := 1; i < 5; i++ {
					env.Send(msg.User(1), &msg.Message{Kind: msg.KindSend, Tag: i})
				}
			})
			f.SpawnUser(1, func(env Env) {
				for i := 0; i < 5; i++ {
					m := env.Recv(msg.MatchSrcTag(msg.KindSend, msg.User(0), i))
					got = append(got, m.Tag)
				}
			})
			if err := f.Run(); err != nil {
				t.Fatal(err)
			}
			for i, v := range got {
				if v != i {
					t.Fatalf("order %v", got)
				}
			}
		})
	}
}

// TestSimCostAccounting checks the virtual-time arithmetic of one
// message: sender overhead + wire + receiver overhead.
func TestSimCostAccounting(t *testing.T) {
	params := model.Myrinet2000()
	f, err := NewSim(Config{Procs: 2, Model: params})
	if err != nil {
		t.Fatal(err)
	}
	var sentAt, gotAt time.Duration
	var m0 *msg.Message
	f.SpawnUser(0, func(env Env) {
		sentAt = env.Clock().Now()
		m0 = &msg.Message{Kind: msg.KindSend, Tag: 1}
		env.Send(msg.User(1), m0)
	})
	f.SpawnUser(1, func(env Env) {
		env.Recv(msg.MatchSrcTag(msg.KindSend, msg.User(0), 1))
		gotAt = env.Clock().Now()
	})
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	want := sentAt + params.SendOverhead +
		params.WireTime(m0.PayloadBytes(), false) + params.RecvOverhead
	if gotAt != want {
		t.Fatalf("receive completed at %v, want %v", gotAt, want)
	}
}

// TestSimIntraNodeLatency: endpoints on the same node use LocalLatency.
func TestSimIntraNodeLatency(t *testing.T) {
	params := model.Myrinet2000()
	f, err := NewSim(Config{Procs: 2, ProcsPerNode: 2, Model: params})
	if err != nil {
		t.Fatal(err)
	}
	var gotAt time.Duration
	var m0 *msg.Message
	f.SpawnUser(0, func(env Env) {
		m0 = &msg.Message{Kind: msg.KindSend, Tag: 1}
		env.Send(msg.User(1), m0)
	})
	f.SpawnUser(1, func(env Env) {
		env.Recv(msg.MatchSrcTag(msg.KindSend, msg.User(0), 1))
		gotAt = env.Clock().Now()
	})
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	want := params.SendOverhead + params.WireTime(m0.PayloadBytes(), true) + params.RecvOverhead
	if gotAt != want {
		t.Fatalf("intra-node receive at %v, want %v", gotAt, want)
	}
}

// TestSimDeterminism: two identical multi-actor runs produce identical
// captured message streams and identical virtual end times.
func TestSimDeterminism(t *testing.T) {
	run := func() (string, time.Duration) {
		stats := trace.New()
		stats.SetCapture(true)
		f, err := NewSim(Config{Procs: 4, Model: model.Myrinet2000(), Trace: stats})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 4; r++ {
			r := r
			f.SpawnUser(r, func(env Env) {
				for round := 0; round < 5; round++ {
					to := (r + 1 + round) % 4
					if to == r {
						to = (to + 1) % 4
					}
					env.Send(msg.User(to), &msg.Message{Kind: msg.KindSend, Tag: r*100 + round})
					env.Recv(func(m *msg.Message) bool { return m.Kind == msg.KindSend && m.Tag%100 == round })
				}
			})
		}
		if err := f.Run(); err != nil {
			t.Fatal(err)
		}
		return stats.Fingerprint(), f.Now()
	}
	fp1, t1 := run()
	fp2, t2 := run()
	if fp1 != fp2 {
		t.Fatal("two identical sim runs produced different message streams")
	}
	if t1 != t2 {
		t.Fatalf("virtual end times differ: %v vs %v", t1, t2)
	}
}

// TestWaitUntilAcrossActors: a user blocked in WaitUntil on shared memory
// is woken by a server's write, on every fabric.
func TestWaitUntilAcrossActors(t *testing.T) {
	for name, mk := range fabricsUnderTest(t, Config{Procs: 1, Model: model.Myrinet2000()}) {
		t.Run(name, func(t *testing.T) {
			f, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			cell := f.Space().AllocWords(0, 1)
			f.SpawnServer(0, func(env Env) {
				m := env.Recv(msg.MatchAny)
				if m == nil {
					return
				}
				env.Space().Store(cell, 42)
				for env.Recv(msg.MatchAny) != nil {
				}
			})
			var got int64
			f.SpawnUser(0, func(env Env) {
				env.Send(msg.ServerOf(0), &msg.Message{Kind: msg.KindRmw, Op: uint8(msg.RmwStore)})
				env.WaitUntil("cell", func() bool { return env.Space().Load(cell) != 0 })
				got = env.Space().Load(cell)
			})
			if err := f.Run(); err != nil {
				t.Fatal(err)
			}
			if got != 42 {
				t.Fatalf("observed %d", got)
			}
		})
	}
}

// TestPanicPropagation: an actor panic surfaces as a Run error naming the
// actor, on every fabric.
func TestPanicPropagation(t *testing.T) {
	for name, mk := range fabricsUnderTest(t, Config{Procs: 1, Deadline: 10 * time.Second}) {
		t.Run(name, func(t *testing.T) {
			f, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			f.SpawnUser(0, func(env Env) {
				panic("deliberate")
			})
			err = f.Run()
			if err == nil || !strings.Contains(err.Error(), "deliberate") {
				t.Fatalf("want panic error, got %v", err)
			}
		})
	}
}

// TestManyToOneStress: many users hammer one echo server concurrently on
// the real fabrics.
func TestManyToOneStress(t *testing.T) {
	for _, name := range []string{"chan", "tcp"} {
		t.Run(name, func(t *testing.T) {
			cfg := Config{Procs: 8, Model: model.Zero()}
			var f Fabric
			var err error
			if name == "chan" {
				f, err = NewChan(cfg)
			} else {
				f, err = NewTCP(cfg)
			}
			if err != nil {
				t.Fatal(err)
			}
			// One node hosting all 8 ranks? No — default one node per
			// rank; use server 0 as the shared echo target.
			f.SpawnServer(0, func(env Env) {
				for {
					m := env.Recv(msg.MatchAny)
					if m == nil {
						return
					}
					env.Send(msg.User(m.Origin), &msg.Message{Kind: msg.KindRmwResp, Token: m.Token})
				}
			})
			for r := 0; r < 8; r++ {
				r := r
				f.SpawnUser(r, func(env Env) {
					for i := 0; i < 50; i++ {
						tok := uint64(r*1000 + i)
						env.Send(msg.ServerOf(0), &msg.Message{Kind: msg.KindRmw, Origin: r, Token: tok})
						env.Recv(msg.MatchToken(msg.KindRmwResp, tok))
					}
				})
			}
			if err := f.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTCPLargePayload pushes a 1 MiB frame through the router.
func TestTCPLargePayload(t *testing.T) {
	f, err := NewTCP(Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	const size = 1 << 20
	ok := false
	f.SpawnUser(0, func(env Env) {
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(i * 7)
		}
		env.Send(msg.User(1), &msg.Message{Kind: msg.KindSend, Tag: 0, Data: data})
	})
	f.SpawnUser(1, func(env Env) {
		m := env.Recv(msg.MatchSrcTag(msg.KindSend, msg.User(0), 0))
		ok = len(m.Data) == size
		for i := range m.Data {
			if m.Data[i] != byte(i*7) {
				ok = false
				break
			}
		}
	})
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("large payload corrupted")
	}
}

// TestSimDeadline: a wedged simulated cluster reports a deadline error
// rather than hanging.
func TestSimDeadline(t *testing.T) {
	f, err := NewSim(Config{Procs: 1, Deadline: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	f.SpawnUser(0, func(env Env) {
		env.Clock().Sleep(2 * time.Second)
	})
	if err := f.Run(); err == nil {
		t.Fatal("want deadline error")
	}
}

func TestFabricKindStringsViaEnv(t *testing.T) {
	f, err := NewSim(Config{Procs: 3, ProcsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	checked := false
	f.SpawnUser(2, func(env Env) {
		if env.Rank() != 2 || env.Size() != 3 || env.NumNodes() != 2 {
			panic(fmt.Sprintf("env identity wrong: rank=%d size=%d nodes=%d",
				env.Rank(), env.Size(), env.NumNodes()))
		}
		if env.Node(0) != 0 || env.Node(2) != 1 {
			panic("node mapping wrong")
		}
		if env.Self() != msg.User(2) {
			panic("self wrong")
		}
		checked = true
	})
	f.SpawnUser(0, func(env Env) {})
	f.SpawnUser(1, func(env Env) {})
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("assertions never ran")
	}
}

// TestTCPRouterDropsUnknownDestination: a frame addressed to an endpoint
// that never registered is dropped by the router without disturbing the
// rest of the cluster.
func TestTCPRouterDropsUnknownDestination(t *testing.T) {
	f, err := NewTCP(Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	ok := false
	f.SpawnUser(0, func(env Env) {
		env.Send(msg.ServerOf(99), &msg.Message{Kind: msg.KindSend, Tag: 0}) // nobody home
		env.Send(msg.User(1), &msg.Message{Kind: msg.KindSend, Tag: 1})
	})
	f.SpawnUser(1, func(env Env) {
		env.Recv(msg.MatchSrcTag(msg.KindSend, msg.User(0), 1))
		ok = true
	})
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("cluster wedged after a dropped frame")
	}
}

// TestChanSendToUnknownEndpointPanics documents the channel fabric's
// stricter behavior: local sends to unregistered endpoints are bugs.
func TestChanSendToUnknownEndpointPanics(t *testing.T) {
	f, err := NewChan(Config{Procs: 1, Deadline: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	f.SpawnUser(0, func(env Env) {
		env.Send(msg.ServerOf(42), &msg.Message{Kind: msg.KindSend})
	})
	if err := f.Run(); err == nil {
		t.Fatal("send to unknown endpoint did not fail the run")
	}
}

// TestJitterPreservesPerPairFIFO at the transport level: with heavy
// jitter, tagged messages from one sender still arrive in send order.
func TestJitterPreservesPerPairFIFO(t *testing.T) {
	f, err := NewChan(Config{Procs: 2, Jitter: 2 * time.Millisecond, JitterSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const msgs = 30
	var got []int
	f.SpawnUser(0, func(env Env) {
		for i := 0; i < msgs; i++ {
			env.Send(msg.User(1), &msg.Message{Kind: msg.KindSend, Tag: i})
		}
	})
	f.SpawnUser(1, func(env Env) {
		for i := 0; i < msgs; i++ {
			m := env.Recv(msg.MatchKind(msg.KindSend)) // any order the fabric offers
			got = append(got, m.Tag)
		}
	})
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("jitter reordered the pipe: %v", got)
		}
	}
}

// TestFaultSeedDeterminismAcrossFabrics: fault decisions are pure
// functions of (seed, pair, sequence), so a causally serialized workload
// — ping-pong, where the global send order is forced by the protocol —
// produces the identical fault-annotated trace fingerprint on the
// simulated and the channel fabric, and different seeds diverge.
func TestFaultSeedDeterminismAcrossFabrics(t *testing.T) {
	const rounds = 30
	run := func(mk func(Config) (Fabric, error), seed int64) string {
		stats := trace.New()
		stats.SetCapture(true)
		f, err := mk(Config{
			Procs: 2,
			Trace: stats,
			Faults: pipeline.Faults{
				Seed:       seed,
				Jitter:     100 * time.Microsecond,
				SpikeProb:  0.3,
				SpikeDelay: 500 * time.Microsecond,
				DupProb:    0.4,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		f.SpawnUser(0, func(env Env) {
			for i := 0; i < rounds; i++ {
				env.Send(msg.User(1), &msg.Message{Kind: msg.KindSend, Tag: i})
				env.Recv(msg.MatchSrcTag(msg.KindSend, msg.User(1), i))
			}
		})
		f.SpawnUser(1, func(env Env) {
			for i := 0; i < rounds; i++ {
				env.Recv(msg.MatchSrcTag(msg.KindSend, msg.User(0), i))
				env.Send(msg.User(0), &msg.Message{Kind: msg.KindSend, Tag: i})
			}
		})
		if err := f.Run(); err != nil {
			t.Fatal(err)
		}
		return stats.Fingerprint()
	}
	mkSim := func(c Config) (Fabric, error) { return NewSim(c) }
	mkChan := func(c Config) (Fabric, error) { return NewChan(c) }

	simFP := run(mkSim, 7)
	if run(mkSim, 7) != simFP {
		t.Fatal("simulated fabric did not replay the fault pattern")
	}
	if chanFP := run(mkChan, 7); chanFP != simFP {
		t.Fatalf("fault pattern diverges across fabrics for one seed:\nsim:  %s\nchan: %s", simFP, chanFP)
	}
	if run(mkSim, 8) == simFP {
		t.Fatal("different fault seeds produced identical traces")
	}
	if !strings.Contains(simFP, ":f") || !strings.Contains(simFP, ":dup") {
		t.Fatalf("fingerprint carries no fault annotations: %s", simFP)
	}
}

// TestSimScheduleShuffleDeterminism: the shuffled scheduler replays
// exactly for a seed and differs across seeds.
func TestSimScheduleShuffleDeterminism(t *testing.T) {
	run := func(seed int64) string {
		stats := trace.New()
		stats.SetCapture(true)
		f, err := NewSim(Config{Procs: 4, Model: model.Myrinet2000(), Trace: stats, ScheduleSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 4; r++ {
			r := r
			f.SpawnUser(r, func(env Env) {
				for i := 0; i < 5; i++ {
					env.Send(msg.User((r+1)%4), &msg.Message{Kind: msg.KindSend, Tag: i})
					env.Recv(msg.MatchSrcTag(msg.KindSend, msg.User((r+3)%4), i))
				}
			})
		}
		if err := f.Run(); err != nil {
			t.Fatal(err)
		}
		return stats.Fingerprint()
	}
	if run(5) != run(5) {
		t.Fatal("seeded shuffle did not replay")
	}
	if run(5) == run(6) && run(6) == run(7) {
		t.Fatal("three different seeds gave identical schedules — shuffle inert")
	}
}
