package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"armci/internal/cluster"
	"armci/internal/model"
	"armci/internal/msg"
	"armci/internal/pipeline"
	"armci/internal/shmem"
	"armci/internal/trace"
	"armci/internal/wire"
)

// TCPFabric runs the cluster as real goroutines whose every message —
// including between a user process and its own node's server — crosses a
// loopback TCP socket through a star router. It emulates the message path
// of a socket-based ARMCI port: the paper's cluster interconnect is
// replaced by real kernel sockets, per the reproduction substitution rule.
type TCPFabric struct {
	cfg   Config
	space *shmem.Space
	pipe  *pipeline.Pipeline

	mu        sync.Mutex
	cond      *sync.Cond
	mailboxes map[msg.Addr]*msg.Queue
	shutdown  bool
	crashAt   time.Time // wall time of the first fail-stop (zero: none)

	users   []actorSpec
	servers []actorSpec

	start time.Time

	listener net.Listener
	router   *router

	conns map[msg.Addr]*endpointConn

	panics chan error
}

// endpointConn is an endpoint's dialed connection to the router.
type endpointConn struct {
	c       net.Conn
	writeMu sync.Mutex
	buf     []byte // reused frame buffer, guarded by writeMu
}

func (ec *endpointConn) writeFrame(f []byte) error {
	ec.writeMu.Lock()
	defer ec.writeMu.Unlock()
	return wire.WriteFrame(ec.c, f)
}

// writeMsg encodes m into the connection's reused buffer and writes the
// frame, so steady-state sends do not allocate a fresh frame each time.
func (ec *endpointConn) writeMsg(m *msg.Message) error {
	ec.writeMu.Lock()
	defer ec.writeMu.Unlock()
	ec.buf = wire.AppendEncode(ec.buf[:0], m)
	return wire.WriteFrame(ec.c, ec.buf)
}

// NewTCP builds a TCP fabric. The router listens on an ephemeral loopback
// port; everything is torn down when Run returns.
func NewTCP(cfg Config) (*TCPFabric, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	f := &TCPFabric{
		cfg:       cfg,
		space:     shmem.NewSpace(cfg.nodeMap()),
		mailboxes: make(map[msg.Addr]*msg.Queue),
		conns:     make(map[msg.Addr]*endpointConn),
		panics:    make(chan error, cfg.Procs+cfg.numNodes()),
	}
	// The TCP fabric measures real socket costs, so the cost-model
	// stage is inactive; trace, fault injection and metrics still run.
	f.pipe = cfg.newPipeline(f.space, false)
	f.cond = sync.NewCond(&f.mu)
	f.space.SetOnWrite(func() {
		f.mu.Lock()
		f.cond.Broadcast()
		f.mu.Unlock()
	})
	// Mirror the channel fabric's crash wiring: wake blocked waits and arm
	// the grace timer (see Config.CrashGrace).
	f.pipe.SetCrashNotify(func() {
		f.mu.Lock()
		if f.crashAt.IsZero() {
			f.crashAt = time.Now()
			time.AfterFunc(f.cfg.CrashGrace+10*time.Millisecond, func() {
				f.mu.Lock()
				f.cond.Broadcast()
				f.mu.Unlock()
			})
		}
		f.cond.Broadcast()
		f.mu.Unlock()
	})
	return f, nil
}

// crashBound arms the holder-crash grace bound for one blocking wait by
// a user actor — the per-wait mirror of the channel fabric's crashBound:
// overdue (call with f.mu held) only fires when a registered crash has
// outlived CrashGrace and this wait has itself been blocked that long,
// scheduling its own wake-up broadcast when the bound is still pending.
func (e *tcpEnv) crashBound() (overdue func() bool, stop func()) {
	start := time.Now()
	var t *time.Timer
	overdue = func() bool {
		if e.addr.Server || e.f.crashAt.IsZero() {
			return false
		}
		grace := e.f.cfg.CrashGrace
		blocked := time.Since(start)
		sinceCrash := time.Since(e.f.crashAt)
		if blocked > grace && sinceCrash > grace {
			return true
		}
		if t == nil {
			d := grace - blocked
			if rem := grace - sinceCrash; rem > d {
				d = rem
			}
			t = time.AfterFunc(d+10*time.Millisecond, func() {
				e.f.mu.Lock()
				e.f.cond.Broadcast()
				e.f.mu.Unlock()
			})
		}
		return false
	}
	stop = func() {
		if t != nil {
			t.Stop()
		}
	}
	return overdue, stop
}

// Space returns the cluster's shared memory.
func (f *TCPFabric) Space() *shmem.Space { return f.space }

// Config returns the cluster configuration.
func (f *TCPFabric) Config() *Config { return &f.cfg }

// SpawnUser registers the body of rank's user process.
func (f *TCPFabric) SpawnUser(rank int, body func(Env)) {
	f.users = append(f.users, actorSpec{addr: msg.User(rank), body: body})
}

// SpawnServer registers the body of node's data server.
func (f *TCPFabric) SpawnServer(node int, body func(Env)) {
	f.servers = append(f.servers, actorSpec{addr: msg.ServerOf(node), body: body})
}

// Run brings up the router, connects every endpoint, executes the actors
// to completion and tears the network down.
func (f *TCPFabric) Run() (err error) {
	// cluster.Listen reports the address on failure and rides out
	// ephemeral-port rebind races, so repeated -count runs never flake.
	f.listener, err = cluster.Listen("127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("tcpnet: %w", err)
	}
	f.router = newRouter(f.listener)
	go f.router.serve()
	defer func() {
		f.listener.Close()
		f.router.closeAll()
	}()

	all := append(append([]actorSpec(nil), f.users...), f.servers...)
	for _, a := range all {
		f.mailboxes[a.addr] = &msg.Queue{}
		conn, derr := net.Dial("tcp", f.listener.Addr().String())
		if derr != nil {
			return fmt.Errorf("tcpnet: dial router: %w", derr)
		}
		ec := &endpointConn{c: conn}
		if werr := ec.writeFrame(wire.EncodeHello(a.addr)); werr != nil {
			return fmt.Errorf("tcpnet: hello: %w", werr)
		}
		f.conns[a.addr] = ec
		go f.readLoop(a.addr, conn)
	}
	// Wait for the router to have registered every endpoint before any
	// actor sends, so no frame races ahead of its destination's hello.
	if werr := f.router.waitRegistered(len(all), 10*time.Second); werr != nil {
		return werr
	}

	f.start = time.Now()
	var userWG, serverWG sync.WaitGroup
	runActor := func(spec actorSpec, wg *sync.WaitGroup) {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(failStop); ok {
					return // injected fail-stop: the actor vanishes, the run continues
				}
				if a, ok := r.(abort); ok && a.err != nil {
					f.panics <- a.err // structured fault, propagate verbatim
				} else {
					f.panics <- fmt.Errorf("tcpnet: actor %v panicked: %v", spec.addr, r)
				}
				f.mu.Lock()
				f.shutdown = true
				f.cond.Broadcast()
				f.mu.Unlock()
			}
		}()
		spec.body(&tcpEnv{f: f, addr: spec.addr})
	}
	for _, a := range f.servers {
		serverWG.Add(1)
		go runActor(a, &serverWG)
	}
	for _, a := range f.users {
		userWG.Add(1)
		go runActor(a, &userWG)
	}

	deadline := f.cfg.Deadline
	if deadline == 0 {
		deadline = 120 * time.Second
	}
	usersDone := make(chan struct{})
	go func() { userWG.Wait(); close(usersDone) }()
	select {
	case <-usersDone:
	case perr := <-f.panics:
		return perr
	case <-time.After(deadline):
		return fmt.Errorf("tcpnet: deadline %v exceeded waiting for user processes", deadline)
	}

	f.mu.Lock()
	f.shutdown = true
	f.cond.Broadcast()
	f.mu.Unlock()

	serversDone := make(chan struct{})
	go func() { serverWG.Wait(); close(serversDone) }()
	select {
	case <-serversDone:
	case perr := <-f.panics:
		return perr
	case <-time.After(deadline):
		return fmt.Errorf("tcpnet: deadline %v exceeded waiting for servers to drain", deadline)
	}
	select {
	case perr := <-f.panics:
		return perr
	default:
	}
	return nil
}

// readLoop drains frames arriving for one endpoint into its mailbox.
func (f *TCPFabric) readLoop(a msg.Addr, conn net.Conn) {
	for {
		body, err := wire.ReadFrame(conn)
		if err != nil {
			return // connection closed at teardown
		}
		m, err := wire.Decode(body)
		if err != nil {
			f.panics <- fmt.Errorf("tcpnet: endpoint %v received corrupt frame: %w", a, err)
			return
		}
		// The inbound pipeline stages: duplicate suppression, arrival
		// stamping (actual socket arrival, or the fault-injected future
		// arrival carried in the frame), trace back-annotation, metrics.
		if !f.pipe.Inbound(m, time.Since(f.start)) {
			continue
		}
		f.mu.Lock()
		f.mailboxes[a].Put(m)
		f.cond.Broadcast()
		f.mu.Unlock()
	}
}

// router forwards frames between endpoint connections.
type router struct {
	ln net.Listener

	mu    sync.Mutex
	conns map[msg.Addr]*endpointConn
	n     int
}

func newRouter(ln net.Listener) *router {
	return &router{ln: ln, conns: make(map[msg.Addr]*endpointConn)}
}

func (r *router) serve() {
	for {
		c, err := r.ln.Accept()
		if err != nil {
			return
		}
		go r.serveConn(c)
	}
}

func (r *router) serveConn(c net.Conn) {
	hello, err := wire.ReadFrame(c)
	if err != nil {
		c.Close()
		return
	}
	addr, err := wire.DecodeHello(hello)
	if err != nil {
		c.Close()
		return
	}
	ec := &endpointConn{c: c}
	r.mu.Lock()
	r.conns[addr] = ec
	r.n++
	r.mu.Unlock()
	var fr []byte // reused re-frame buffer; this loop is the only writer
	for {
		body, err := wire.ReadFrame(c)
		if err != nil {
			return
		}
		dst, err := wire.PeekDst(body)
		if err != nil {
			return
		}
		r.mu.Lock()
		out := r.conns[dst]
		r.mu.Unlock()
		if out == nil {
			continue // destination gone at teardown
		}
		// Re-frame and forward.
		fr = append(fr[:0], byte(len(body)), byte(len(body)>>8), byte(len(body)>>16), byte(len(body)>>24))
		fr = append(fr, body...)
		if err := out.writeFrame(fr); err != nil {
			continue
		}
	}
}

func (r *router) waitRegistered(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		r.mu.Lock()
		got := r.n
		r.mu.Unlock()
		if got >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("tcpnet: only %d of %d endpoints registered with router", got, n)
		}
		time.Sleep(time.Millisecond)
	}
}

func (r *router) closeAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ec := range r.conns {
		ec.c.Close()
	}
}

// tcpEnv is the Env of one TCP-fabric actor.
type tcpEnv struct {
	f    *TCPFabric
	addr msg.Addr
}

var _ Env = (*tcpEnv)(nil)

func (e *tcpEnv) Self() msg.Addr       { return e.addr }
func (e *tcpEnv) Rank() int            { return e.addr.ID }
func (e *tcpEnv) Size() int            { return e.f.cfg.Procs }
func (e *tcpEnv) NumNodes() int        { return e.f.cfg.numNodes() }
func (e *tcpEnv) Node(rank int) int    { return e.f.space.Node(rank) }
func (e *tcpEnv) Space() *shmem.Space  { return e.f.space }
func (e *tcpEnv) Params() model.Params { return e.f.cfg.Model }
func (e *tcpEnv) Trace() *trace.Stats  { return e.f.cfg.Trace }
func (e *tcpEnv) Clock() Clock         { return wallClock{e.f.start} }

func (e *tcpEnv) Charge(d time.Duration) {
	// The TCP fabric measures real socket costs; no injected CPU model.
}

func (e *tcpEnv) Send(to msg.Addr, m *msg.Message) {
	ec := e.f.conns[e.addr]
	if ec == nil {
		panic(fmt.Sprintf("tcpnet: send from unknown endpoint %v", e.addr))
	}
	err := e.f.pipe.SendTo(e.addr, to, m,
		func() time.Duration { return time.Since(e.f.start) }, nil,
		func(d pipeline.Delivery) {
			if werr := ec.writeMsg(d.Msg); werr != nil {
				panic(fmt.Sprintf("tcpnet: send %v -> %v: %v", e.addr, to, werr))
			}
		})
	if err != nil {
		var fe *pipeline.FaultError
		if errors.As(err, &fe) && fe.Kind == pipeline.FaultCrash && !e.addr.Server {
			// Injected crash: fail-stop this actor only; survivors learn of
			// it through the crash registry (and the grace timer).
			e.f.pipe.NoteCrash(e.addr.ID)
			panic(failStop{})
		}
		panic(abort{err}) // retry exhaustion: abort this actor
	}
}

func (e *tcpEnv) Recv(match msg.Match) *msg.Message {
	q := e.f.mailboxes[e.addr]
	tag := "recv@" + e.addr.String()
	expired, stop := e.opTimer(e.addr.Server)
	defer stop()
	crashOverdue, crashStop := e.crashBound()
	defer crashStop()
	e.f.mu.Lock()
	for {
		if m := q.TryPop(match); m != nil {
			e.f.mu.Unlock()
			// Enforce a fault-injected arrival time in wall time (with
			// no faults the stamp is the actual socket arrival, already
			// in the past).
			if wait := m.Arrival - time.Since(e.f.start); wait > 0 {
				time.Sleep(wait)
			}
			return m
		}
		if e.addr.Server && e.f.shutdown {
			e.f.mu.Unlock()
			return nil
		}
		if crashOverdue() {
			r := e.f.pipe.FirstCrashed()
			e.f.mu.Unlock()
			panic(abort{&pipeline.FaultError{Rank: r, Op: tag, Kind: pipeline.FaultCrash}})
		}
		if expired() {
			e.f.mu.Unlock()
			panic(opTimeout(e.addr, tag))
		}
		e.f.cond.Wait()
	}
}

func (e *tcpEnv) TryRecv(match msg.Match) *msg.Message {
	// Gate on the stamped arrival time so polling cannot observe a
	// fault-delayed message before Recv would deliver it.
	now := time.Since(e.f.start)
	e.f.mu.Lock()
	m := e.f.mailboxes[e.addr].TryPop(func(m *msg.Message) bool {
		return m.Arrival <= now && match(m)
	})
	e.f.mu.Unlock()
	return m
}

func (e *tcpEnv) WaitUntil(tag string, pred func() bool) {
	expired, stop := e.opTimer(false)
	defer stop()
	crashOverdue, crashStop := e.crashBound()
	defer crashStop()
	e.f.mu.Lock()
	for !pred() {
		if e.f.shutdown && e.addr.Server {
			break
		}
		if crashOverdue() {
			r := e.f.pipe.FirstCrashed()
			e.f.mu.Unlock()
			panic(abort{&pipeline.FaultError{Rank: r, Op: tag, Kind: pipeline.FaultCrash}})
		}
		if expired() {
			e.f.mu.Unlock()
			panic(opTimeout(e.addr, tag))
		}
		e.f.cond.Wait()
	}
	e.f.mu.Unlock()
}

func (e *tcpEnv) WaitUntilFor(tag string, pred func() bool, d time.Duration) bool {
	if d <= 0 {
		e.WaitUntil(tag, pred)
		return true
	}
	deadline := time.Now().Add(d)
	t := time.AfterFunc(d, func() {
		e.f.mu.Lock()
		e.f.cond.Broadcast()
		e.f.mu.Unlock()
	})
	defer t.Stop()
	e.f.mu.Lock()
	for !pred() {
		if !time.Now().Before(deadline) {
			e.f.mu.Unlock()
			return false
		}
		e.f.cond.Wait()
	}
	e.f.mu.Unlock()
	return true
}

func (e *tcpEnv) Faults() pipeline.Faults { return e.f.pipe.Faults() }

func (e *tcpEnv) CrashedRank() int { return e.f.pipe.FirstCrashed() }

func (e *tcpEnv) FailStop(op string) {
	e.f.pipe.CrashNow(e.addr.ID, op)
	panic(failStop{})
}

func (e *tcpEnv) AbortFault(err *pipeline.FaultError) {
	panic(abort{err})
}

// opTimer arms the per-op deadline for one blocking operation, mirroring
// the channel fabric's helper.
func (e *tcpEnv) opTimer(exempt bool) (expired func() bool, stop func()) {
	od := e.f.cfg.OpDeadline
	if od <= 0 || exempt {
		return func() bool { return false }, func() {}
	}
	deadline := time.Now().Add(od)
	t := time.AfterFunc(od, func() {
		e.f.mu.Lock()
		e.f.cond.Broadcast()
		e.f.mu.Unlock()
	})
	return func() bool { return !time.Now().Before(deadline) }, func() { t.Stop() }
}
