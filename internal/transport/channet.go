package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"armci/internal/model"
	"armci/internal/msg"
	"armci/internal/pipeline"
	"armci/internal/shmem"
	"armci/internal/trace"
)

// ChanFabric runs the cluster as real goroutines communicating through
// in-process mailboxes. It is the fabric used by correctness and stress
// tests: everything is truly concurrent, so races and protocol bugs that
// the sequential simulator cannot exhibit are exercised here. With a
// non-zero cost model it also injects latency in wall time (arrival-time
// stamping on a FIFO pipe model), which the demo benchmarks use.
type ChanFabric struct {
	cfg   Config
	space *shmem.Space
	pipe  *pipeline.Pipeline

	mu        sync.Mutex
	cond      *sync.Cond // broadcast on memory writes, deliveries, shutdown
	mailboxes map[msg.Addr]*msg.Queue
	shutdown  bool
	crashAt   time.Time // wall time of the first fail-stop (zero: none)

	users   []actorSpec
	servers []actorSpec

	start time.Time

	panics chan error
}

// NewChan builds an in-process channel fabric for the configuration.
func NewChan(cfg Config) (*ChanFabric, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	f := &ChanFabric{
		cfg:       cfg,
		space:     shmem.NewSpace(cfg.nodeMap()),
		mailboxes: make(map[msg.Addr]*msg.Queue),
		panics:    make(chan error, cfg.Procs+cfg.numNodes()),
	}
	f.pipe = cfg.newPipeline(f.space, cfg.Model.Latency > 0)
	f.cond = sync.NewCond(&f.mu)
	f.space.SetOnWrite(func() {
		f.mu.Lock()
		f.cond.Broadcast()
		f.mu.Unlock()
	})
	// A fail-stop wakes every blocked wait (crash-aware spins re-check the
	// registry) and arms the grace timer that unwedges waits with no
	// recovery path — see Config.CrashGrace.
	f.pipe.SetCrashNotify(func() {
		f.mu.Lock()
		if f.crashAt.IsZero() {
			f.crashAt = time.Now()
			time.AfterFunc(f.cfg.CrashGrace+10*time.Millisecond, func() {
				f.mu.Lock()
				f.cond.Broadcast()
				f.mu.Unlock()
			})
		}
		f.cond.Broadcast()
		f.mu.Unlock()
	})
	return f, nil
}

// crashBound arms the holder-crash grace bound for one blocking wait by
// a user actor. overdue (call with f.mu held) reports that a registered
// crash has outlived CrashGrace *and* this wait has itself been blocked
// at least that long — a per-wait bound, so a run that keeps making
// progress after lease repair is never aborted retroactively, while any
// single operation wedged on the dead rank is. When the bound is not yet
// reached, overdue schedules a broadcast for the moment it will be, so
// the waiting loop is guaranteed to re-check. stop releases that timer.
func (e *chanEnv) crashBound() (overdue func() bool, stop func()) {
	start := time.Now()
	var t *time.Timer
	overdue = func() bool {
		if e.addr.Server || e.f.crashAt.IsZero() {
			return false
		}
		grace := e.f.cfg.CrashGrace
		blocked := time.Since(start)
		sinceCrash := time.Since(e.f.crashAt)
		if blocked > grace && sinceCrash > grace {
			return true
		}
		if t == nil {
			d := grace - blocked
			if rem := grace - sinceCrash; rem > d {
				d = rem
			}
			t = time.AfterFunc(d+10*time.Millisecond, func() {
				e.f.mu.Lock()
				e.f.cond.Broadcast()
				e.f.mu.Unlock()
			})
		}
		return false
	}
	stop = func() {
		if t != nil {
			t.Stop()
		}
	}
	return overdue, stop
}

// Space returns the cluster's shared memory.
func (f *ChanFabric) Space() *shmem.Space { return f.space }

// Config returns the cluster configuration.
func (f *ChanFabric) Config() *Config { return &f.cfg }

// SpawnUser registers the body of rank's user process.
func (f *ChanFabric) SpawnUser(rank int, body func(Env)) {
	f.users = append(f.users, actorSpec{addr: msg.User(rank), body: body})
}

// SpawnServer registers the body of node's data server.
func (f *ChanFabric) SpawnServer(node int, body func(Env)) {
	f.servers = append(f.servers, actorSpec{addr: msg.ServerOf(node), body: body})
}

// Run starts every actor goroutine, waits for all user processes, then
// shuts the servers down (their pending Recv returns nil) and waits for
// them too. It returns the first actor panic, or an error if the deadline
// (default 120 s wall time) elapses.
func (f *ChanFabric) Run() error {
	for _, a := range f.users {
		f.mailboxes[a.addr] = &msg.Queue{}
	}
	for _, a := range f.servers {
		f.mailboxes[a.addr] = &msg.Queue{}
	}
	f.start = time.Now()

	var userWG, serverWG sync.WaitGroup
	runActor := func(spec actorSpec, wg *sync.WaitGroup) {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(failStop); ok {
					return // injected fail-stop: the actor vanishes, the run continues
				}
				if a, ok := r.(abort); ok && a.err != nil {
					f.panics <- a.err // structured fault, propagate verbatim
				} else {
					f.panics <- fmt.Errorf("channet: actor %v panicked: %v", spec.addr, r)
				}
				f.mu.Lock()
				f.shutdown = true // unwedge everyone else
				f.cond.Broadcast()
				f.mu.Unlock()
			}
		}()
		spec.body(&chanEnv{f: f, addr: spec.addr})
	}
	for _, a := range f.servers {
		serverWG.Add(1)
		go runActor(a, &serverWG)
	}
	for _, a := range f.users {
		userWG.Add(1)
		go runActor(a, &userWG)
	}

	deadline := f.cfg.Deadline
	if deadline == 0 {
		deadline = 120 * time.Second
	}
	usersDone := make(chan struct{})
	go func() { userWG.Wait(); close(usersDone) }()
	select {
	case <-usersDone:
	case err := <-f.panics:
		return err
	case <-time.After(deadline):
		return fmt.Errorf("channet: deadline %v exceeded waiting for user processes", deadline)
	}

	f.mu.Lock()
	f.shutdown = true
	f.cond.Broadcast()
	f.mu.Unlock()

	serversDone := make(chan struct{})
	go func() { serverWG.Wait(); close(serversDone) }()
	select {
	case <-serversDone:
	case err := <-f.panics:
		return err
	case <-time.After(deadline):
		return fmt.Errorf("channet: deadline %v exceeded waiting for servers to drain", deadline)
	}
	select {
	case err := <-f.panics:
		return err
	default:
	}
	return nil
}

// chanEnv is the Env of one channel-fabric actor.
type chanEnv struct {
	f    *ChanFabric
	addr msg.Addr
}

var _ Env = (*chanEnv)(nil)

func (e *chanEnv) Self() msg.Addr       { return e.addr }
func (e *chanEnv) Rank() int            { return e.addr.ID }
func (e *chanEnv) Size() int            { return e.f.cfg.Procs }
func (e *chanEnv) NumNodes() int        { return e.f.cfg.numNodes() }
func (e *chanEnv) Node(rank int) int    { return e.f.space.Node(rank) }
func (e *chanEnv) Space() *shmem.Space  { return e.f.space }
func (e *chanEnv) Params() model.Params { return e.f.cfg.Model }
func (e *chanEnv) Trace() *trace.Stats  { return e.f.cfg.Trace }

type wallClock struct{ start time.Time }

func (c wallClock) Now() time.Duration { return time.Since(c.start) }
func (c wallClock) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

func (e *chanEnv) Clock() Clock { return wallClock{e.f.start} }

func (e *chanEnv) Charge(d time.Duration) {
	if d > 0 && e.f.cfg.Model.Latency > 0 {
		time.Sleep(d)
	}
}

func (e *chanEnv) Send(to msg.Addr, m *msg.Message) {
	// The mailbox map is fixed before any actor starts, so reading it
	// without f.mu is race-free here.
	q, ok := e.f.mailboxes[to]
	if !ok {
		panic(fmt.Sprintf("channet: send to unknown endpoint %v", to))
	}
	// Messages enter the mailbox immediately in send order (injected
	// duplicates trail their original, where dedup drops them); the
	// stamped arrival time is enforced on the receive side. emit runs
	// outside the pipeline lock, so taking f.mu here cannot deadlock
	// against Inbound's pipeline locking.
	err := e.f.pipe.SendTo(e.addr, to, m,
		func() time.Duration { return time.Since(e.f.start) }, e.Charge,
		func(d pipeline.Delivery) {
			e.f.mu.Lock()
			if e.f.pipe.Inbound(d.Msg, time.Since(e.f.start)) {
				q.Put(d.Msg)
			}
			e.f.cond.Broadcast()
			e.f.mu.Unlock()
		})
	if err != nil {
		var fe *pipeline.FaultError
		if errors.As(err, &fe) && fe.Kind == pipeline.FaultCrash && !e.addr.Server {
			// Injected crash: fail-stop this actor only; survivors learn of
			// it through the crash registry (and the grace timer).
			e.f.pipe.NoteCrash(e.addr.ID)
			panic(failStop{})
		}
		panic(abort{err}) // retry exhaustion: abort this actor
	}
}

func (e *chanEnv) Recv(match msg.Match) *msg.Message {
	q := e.f.mailboxes[e.addr]
	// Bound user-process Recvs by the per-op deadline: a timer broadcast
	// wakes the cond loop, which then fails the actor with a structured
	// op-timeout fault. Servers are exempt (idling is their job).
	tag := "recv@" + e.addr.String()
	expired, stop := e.opTimer(e.addr.Server)
	defer stop()
	crashOverdue, crashStop := e.crashBound()
	defer crashStop()
	e.f.mu.Lock()
	for {
		if m := q.TryPop(match); m != nil {
			e.f.mu.Unlock()
			// Enforce the modeled arrival time in wall time.
			if wait := m.Arrival - time.Since(e.f.start); wait > 0 {
				time.Sleep(wait)
			}
			e.f.pipe.RecvCharge(e.Charge)
			return m
		}
		if e.addr.Server && e.f.shutdown {
			e.f.mu.Unlock()
			return nil
		}
		if crashOverdue() {
			r := e.f.pipe.FirstCrashed()
			e.f.mu.Unlock()
			panic(abort{&pipeline.FaultError{Rank: r, Op: tag, Kind: pipeline.FaultCrash}})
		}
		if expired() {
			e.f.mu.Unlock()
			panic(opTimeout(e.addr, tag))
		}
		e.f.cond.Wait()
	}
}

func (e *chanEnv) TryRecv(match msg.Match) *msg.Message {
	// Only messages whose stamped arrival time has passed are eligible:
	// polling must never observe a message earlier than Recv (which
	// sleeps out the remaining latency) would deliver it. Per-pair
	// arrival times are monotone, so gating on arrival keeps FIFO.
	now := time.Since(e.f.start)
	e.f.mu.Lock()
	m := e.f.mailboxes[e.addr].TryPop(func(m *msg.Message) bool {
		return m.Arrival <= now && match(m)
	})
	e.f.mu.Unlock()
	if m != nil {
		e.f.pipe.RecvCharge(e.Charge)
	}
	return m
}

func (e *chanEnv) WaitUntil(tag string, pred func() bool) {
	expired, stop := e.opTimer(false)
	defer stop()
	crashOverdue, crashStop := e.crashBound()
	defer crashStop()
	e.f.mu.Lock()
	for !pred() {
		if e.f.shutdown && e.addr.Server {
			break
		}
		if crashOverdue() {
			r := e.f.pipe.FirstCrashed()
			e.f.mu.Unlock()
			panic(abort{&pipeline.FaultError{Rank: r, Op: tag, Kind: pipeline.FaultCrash}})
		}
		if expired() {
			e.f.mu.Unlock()
			panic(opTimeout(e.addr, tag))
		}
		e.f.cond.Wait()
	}
	e.f.mu.Unlock()
}

func (e *chanEnv) WaitUntilFor(tag string, pred func() bool, d time.Duration) bool {
	if d <= 0 {
		e.WaitUntil(tag, pred)
		return true
	}
	deadline := time.Now().Add(d)
	t := time.AfterFunc(d, func() {
		e.f.mu.Lock()
		e.f.cond.Broadcast()
		e.f.mu.Unlock()
	})
	defer t.Stop()
	e.f.mu.Lock()
	for !pred() {
		if !time.Now().Before(deadline) {
			e.f.mu.Unlock()
			return false
		}
		e.f.cond.Wait()
	}
	e.f.mu.Unlock()
	return true
}

func (e *chanEnv) Faults() pipeline.Faults { return e.f.pipe.Faults() }

func (e *chanEnv) CrashedRank() int { return e.f.pipe.FirstCrashed() }

func (e *chanEnv) FailStop(op string) {
	e.f.pipe.CrashNow(e.addr.ID, op)
	panic(failStop{})
}

func (e *chanEnv) AbortFault(err *pipeline.FaultError) {
	panic(abort{err})
}

// opTimer arms the per-op deadline for one blocking operation: expired
// reports whether it has elapsed (always false when disabled or exempt),
// and the timer broadcast wakes the fabric cond so the waiting loop
// re-checks. stop releases the timer.
func (e *chanEnv) opTimer(exempt bool) (expired func() bool, stop func()) {
	od := e.f.cfg.OpDeadline
	if od <= 0 || exempt {
		return func() bool { return false }, func() {}
	}
	deadline := time.Now().Add(od)
	t := time.AfterFunc(od, func() {
		e.f.mu.Lock()
		e.f.cond.Broadcast()
		e.f.mu.Unlock()
	})
	return func() bool { return !time.Now().Before(deadline) }, func() { t.Stop() }
}
