// Package transport provides the execution fabrics an emulated ARMCI
// cluster runs on. Protocol code (fences, barriers, locks, collectives,
// Global Arrays) is written once against the Env interface and runs
// unchanged on:
//
//   - simnet:  a deterministic discrete-event fabric with a virtual clock
//     and a calibrated cost model — the fabric that reproduces the paper's
//     figures as virtual-time measurements;
//   - channet: real goroutines exchanging messages through in-process
//     mailboxes — the fabric correctness tests use;
//   - tcpnet:  real goroutines whose every message crosses a loopback TCP
//     socket through a star router — the "emulate over sockets" fabric.
package transport

import (
	"fmt"
	"time"

	"armci/internal/model"
	"armci/internal/msg"
	"armci/internal/pipeline"
	"armci/internal/shmem"
	"armci/internal/trace"
)

// Clock abstracts virtual versus wall time. Now is the duration since the
// fabric started.
type Clock interface {
	Now() time.Duration
	Sleep(d time.Duration)
}

// Env is the execution environment of one actor — a user process or a data
// server. All methods must be called from the actor's own goroutine.
type Env interface {
	// Self returns this actor's endpoint address.
	Self() msg.Addr
	// Rank returns the actor's rank (user processes) or node (servers).
	Rank() int
	// Size returns the number of user processes in the cluster.
	Size() int
	// NumNodes returns the number of SMP nodes.
	NumNodes() int
	// Node returns the node index hosting the given rank.
	Node(rank int) int
	// Space returns the cluster's shared memory.
	Space() *shmem.Space
	// Clock returns the fabric clock.
	Clock() Clock
	// Params returns the cost model in force.
	Params() model.Params
	// Send transmits m to the given endpoint. Delivery is reliable and
	// FIFO per (source, destination) pair. Send charges the sender the
	// modeled send overhead and returns without waiting for delivery.
	Send(to msg.Addr, m *msg.Message)
	// Recv blocks until a message satisfying match is available, removes
	// it from the mailbox and returns it.
	Recv(match msg.Match) *msg.Message
	// TryRecv removes and returns an already-delivered message
	// satisfying match without blocking, or nil when none is pending.
	// "Delivered" means the message's (possibly fault-delayed) arrival
	// time has been reached; TryRecv never observes a message earlier
	// than Recv would, so per-pair FIFO is preserved. Handle polling
	// (Test/Done) is built on it.
	TryRecv(match msg.Match) *msg.Message
	// Charge models d of CPU work by this actor.
	Charge(d time.Duration)
	// WaitUntil blocks until pred() is true. pred must depend only on
	// shared memory or other fabric-visible state, so the fabric can
	// re-evaluate it when that state changes. tag is diagnostic.
	WaitUntil(tag string, pred func() bool)
	// WaitUntilFor is the bounded form of WaitUntil: it blocks until
	// pred() is true or d has elapsed (virtual time on the simulated
	// fabric, wall time on the concurrent ones), reporting whether the
	// predicate was satisfied. Unlike WaitUntil it never aborts on
	// timeout — the caller owns the recovery decision (the lease lock's
	// TTL spin is built on it). d <= 0 degrades to an unbounded wait.
	WaitUntilFor(tag string, pred func() bool, d time.Duration) bool
	// Faults returns the fault plan in force (zero value: no faults).
	// The lock layer consults it for the crash-while-holding knobs.
	Faults() pipeline.Faults
	// CrashedRank returns the first user rank recorded as fail-stopped,
	// or -1 while no rank has crashed. Crash-aware spins consult it to
	// fail fast (or repair) instead of waiting on a dead peer.
	CrashedRank() int
	// FailStop terminates this actor as an injected fail-stop crash: the
	// crash is counted once in the metrics, the rank enters the crash
	// registry (waking crash-aware waiters), and the actor's goroutine
	// unwinds — without failing the rest of the run, so survivors can
	// recover. op names the operation for attribution. FailStop never
	// returns. On the multi-process fabric a fail-stop is job-fatal:
	// the crash registry is process-local, so remote waiters cannot
	// learn of the crash and the run aborts with the FaultError instead.
	FailStop(op string)
	// AbortFault terminates the run with a structured fault error: the
	// protocol layer raises it when a spin discovers it is waiting on a
	// crashed peer. Never returns.
	AbortFault(err *pipeline.FaultError)
	// Trace returns the statistics collector (never nil).
	Trace() *trace.Stats
}

// Config describes the emulated cluster.
type Config struct {
	// Procs is the number of user processes (ranks).
	Procs int
	// ProcsPerNode is how many consecutive ranks share one SMP node.
	// Defaults to 1 (each process on its own node, as in the paper's
	// 16-node runs).
	ProcsPerNode int
	// Model is the cost model. The zero value (model.Zero()) disables
	// all latency injection on the real fabrics.
	Model model.Params
	// Trace, if non-nil, collects message statistics.
	Trace *trace.Stats
	// Faults configures deterministic fault injection — uniform jitter,
	// per-pair latency spikes and bounded duplicate delivery — applied
	// identically on every fabric by the shared send/receive pipeline.
	// Per-pair FIFO delivery is preserved throughout, and duplicates
	// are suppressed at the receiver, so protocol code still observes
	// reliable exactly-once delivery. The zero value disables faults.
	Faults pipeline.Faults
	// Metrics, if non-nil, collects per-kind/per-pair message latency
	// histograms, fault counters and (optionally) a delivery timeline.
	Metrics *pipeline.Metrics
	// Jitter adds a uniformly random extra delay in [0, Jitter) to
	// every message arrival.
	//
	// Deprecated: this was the channel-fabric-only stress knob; it now
	// maps onto Faults.Jitter (and applies on every fabric). Set
	// Faults.Jitter directly instead.
	Jitter time.Duration
	// JitterSeed seeds the jitter generator.
	//
	// Deprecated: maps onto Faults.Seed; set that instead.
	JitterSeed int64
	// ScheduleSeed, when non-zero, makes the simulated fabric pick among
	// simultaneously runnable processes pseudo-randomly (reproducibly for
	// a given seed) instead of FIFO — interleaving exploration for
	// protocol tests. Seed 0 is the FIFO baseline schedule. Must be >= 0;
	// ignored by the concurrent fabrics.
	ScheduleSeed int64
	// EventPoolHazard, when set, arms the simulated kernel's deliberate
	// event-pool bug (recycling a still-scheduled event). Test-only: it
	// exists so the conformance harness can prove its oracles detect
	// pooling-induced corruption. Ignored by the concurrent fabrics.
	EventPoolHazard bool
	// Deadline bounds a fabric run; 0 means the fabric default.
	Deadline time.Duration
	// OpDeadline bounds a single blocking operation — one user-process
	// Recv or one WaitUntil — as opposed to Deadline, which bounds the
	// whole run. An operation that exceeds it aborts the run with a
	// rank-attributed *pipeline.FaultError (FaultOpTimeout), so a rank
	// wedged by a crashed peer fails fast instead of hanging until the
	// run deadline. Virtual time on the simulated fabric, wall time on
	// the concurrent ones; 0 disables the bound. Server Recvs are
	// exempt: a data server idling in its serve loop is not an error.
	OpDeadline time.Duration
	// CrashGrace bounds, on the concurrent fabrics, how long a blocked
	// wait may outlive a fail-stopped peer: once a crash is in the
	// registry, any user-process Recv or WaitUntil still blocked
	// CrashGrace later aborts with a FaultCrash attributed to the
	// crashed rank. The default (1s wall time) is far above the default
	// lease TTL, so lease-lock waiters repair and continue well before
	// the grace fires — only waits with no recovery path (a plain queue
	// lock behind a dead holder, a barrier missing a crashed rank) hit
	// it. The simulated fabric needs no grace: a wedged survivor shows
	// up as a virtual-time deadlock, which is converted the same way.
	CrashGrace time.Duration
}

// defaultCrashGrace is the concurrent fabrics' crash-to-abort bound when
// Config.CrashGrace is zero.
const defaultCrashGrace = time.Second

func (c *Config) normalize() error {
	if c.Procs <= 0 {
		return fmt.Errorf("transport: config needs Procs >= 1, got %d", c.Procs)
	}
	if c.Jitter < 0 {
		return fmt.Errorf("transport: config needs Jitter >= 0, got %v", c.Jitter)
	}
	if c.Deadline < 0 {
		return fmt.Errorf("transport: config needs Deadline >= 0, got %v", c.Deadline)
	}
	if c.OpDeadline < 0 {
		return fmt.Errorf("transport: config needs OpDeadline >= 0, got %v", c.OpDeadline)
	}
	if c.ScheduleSeed < 0 {
		return fmt.Errorf("transport: config needs ScheduleSeed >= 0, got %d", c.ScheduleSeed)
	}
	if err := c.Faults.Validate(); err != nil {
		return fmt.Errorf("transport: bad fault plan: %w", err)
	}
	if c.Faults.CrashAfterSends > 0 && c.Faults.CrashRank >= c.Procs {
		return fmt.Errorf("transport: Faults.CrashRank %d out of range [0,%d)", c.Faults.CrashRank, c.Procs)
	}
	if c.Faults.CrashHeldAcquire > 0 && c.Faults.CrashHeldRank >= c.Procs {
		return fmt.Errorf("transport: Faults.CrashHeldRank %d out of range [0,%d)", c.Faults.CrashHeldRank, c.Procs)
	}
	if c.CrashGrace < 0 {
		return fmt.Errorf("transport: config needs CrashGrace >= 0, got %v", c.CrashGrace)
	}
	if c.CrashGrace == 0 {
		c.CrashGrace = defaultCrashGrace
	}
	if c.ProcsPerNode <= 0 {
		c.ProcsPerNode = 1
	}
	if c.Trace == nil {
		c.Trace = trace.New()
	}
	// Fold the deprecated jitter knobs into the fault plan.
	if c.Jitter > 0 && c.Faults.Jitter == 0 {
		c.Faults.Jitter = c.Jitter
		if c.Faults.Seed == 0 {
			c.Faults.Seed = c.JitterSeed
		}
	}
	return nil
}

// newPipeline builds the shared send/receive pipeline of one fabric
// instance. chargeModel selects whether the cost-model stage is active
// (send/recv overheads and wire latency): the simulated fabric always
// charges, the channel fabric only under latency injection, the TCP
// fabric never (it measures real socket costs).
func (c *Config) newPipeline(space *shmem.Space, chargeModel bool) *pipeline.Pipeline {
	return pipeline.New(pipeline.Config{
		Params:      c.Model,
		ChargeModel: chargeModel,
		Faults:      c.Faults,
		Stats:       c.Trace,
		Metrics:     c.Metrics,
		Local: func(src, dst msg.Addr) bool {
			return endpointNode(space, src) == endpointNode(space, dst)
		},
	})
}

// nodeMap returns the rank→node assignment of the config.
func (c *Config) nodeMap() []int {
	nodes := make([]int, c.Procs)
	for r := range nodes {
		nodes[r] = r / c.ProcsPerNode
	}
	return nodes
}

// numNodes returns the node count of the config.
func (c *Config) numNodes() int {
	return (c.Procs + c.ProcsPerNode - 1) / c.ProcsPerNode
}

// Fabric builds and runs a cluster of actors.
type Fabric interface {
	// Space returns the cluster's shared memory.
	Space() *shmem.Space
	// Config returns the cluster configuration.
	Config() *Config
	// SpawnUser registers the body of rank's user process.
	SpawnUser(rank int, body func(Env))
	// SpawnServer registers the body of node's data server. Servers are
	// expected to run until every user process has finished; the fabric
	// stops them afterwards by delivering a poison message, see Stop.
	SpawnServer(node int, body func(Env))
	// Run executes all registered actors to completion of the user
	// processes and returns the first error (panic, deadlock, deadline).
	Run() error
}

// abort is the panic value the concurrent fabrics use to terminate an
// actor with a structured error: runActor recovery propagates err
// verbatim (the simulated fabric uses sim.Abort for the same purpose).
type abort struct{ err error }

// failStop is the panic value a concurrent-fabric actor raises to die
// as an injected fail-stop crash: actor recovery treats it as a normal
// completion — no error is recorded and no shutdown is triggered — so
// the rest of the cluster keeps running and may recover (the simulated
// fabric uses sim.Exit for the same purpose). The crash itself is
// visible to survivors only through the pipeline's crash registry.
type failStop struct{}

// opTimeout builds the abort raised when one operation of the actor at a
// exceeds Config.OpDeadline.
func opTimeout(a msg.Addr, op string) abort {
	rank, server := a.ID, a.Server
	return abort{err: &pipeline.FaultError{Rank: rank, Server: server, Op: op, Kind: pipeline.FaultOpTimeout}}
}

// endpointNode returns the node an endpoint lives on. Server-class
// endpoints with IDs at or beyond the node count are NIC agents: agent i
// serves node i - NumNodes (see msg.NICOf).
func endpointNode(space *shmem.Space, a msg.Addr) int {
	if a.Server {
		if a.ID >= space.NumNodes() {
			return a.ID - space.NumNodes()
		}
		return a.ID
	}
	return space.Node(a.ID)
}
