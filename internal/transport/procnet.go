package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"armci/internal/cluster"
	"armci/internal/model"
	"armci/internal/msg"
	"armci/internal/pipeline"
	"armci/internal/shmem"
	"armci/internal/trace"
	"armci/internal/wire"
)

// ProcFabric runs one SMP node's slice of a multi-process cluster
// inside this OS process: the node's user ranks, data server and NIC
// agent as goroutines, with every message crossing a real inter-process
// TCP connection through the launch coordinator's star (see
// internal/cluster). It is the fourth fabric — the same protocol code
// that runs on simnet/channet/tcpnet runs here across genuine process
// boundaries, launched by cmd/armci-run.
//
// Each worker holds a full shmem.Space replica, but only its own node's
// memory is ever touched directly: the client-server model ships every
// remote operation as a message to the owning node's server, so replica
// divergence on remote segments is unobservable by construction.
// Messages still flow through the shared pipeline, so FIFO stamping,
// fault injection, dedup and metrics behave identically to the
// in-process fabrics — the sender's pipeline stamps the per-pair
// sequence, the receiver's suppresses duplicates, and the two never
// race because a directed pair's send state lives only at its source
// worker.
type ProcFabric struct {
	cfg   Config
	env   cluster.WorkerEnv
	space *shmem.Space
	pipe  *pipeline.Pipeline

	mu        sync.Mutex
	cond      *sync.Cond
	mailboxes map[msg.Addr]*msg.Queue
	shutdown  bool
	fault     error // cluster fault; aborts every blocked local actor

	// Elastic membership state, guarded by mu. A view change interrupts
	// local user actors (viewIntr) so the elastic runner can drive the
	// recovery protocol; servers keep running to serve restore reads.
	viewEpoch uint64            // installed membership view epoch
	viewDead  int               // node slot replaced by the pending view change
	viewIntr  bool              // user actors must abort into recovery
	resume    *wire.EpochReport // latest recovery hand-off, nil until broadcast
	released  map[uint64]bool   // cluster barrier releases observed

	users   []actorSpec
	servers []actorSpec

	start time.Time
	sess  *cluster.Session

	panics chan error
}

// NewProc builds the fabric for the worker described by env. The config
// must agree with the launch shape — a worker built for a different
// cluster than the one that spawned it is a deployment bug worth
// failing loudly on.
func NewProc(cfg Config, env cluster.WorkerEnv) (*ProcFabric, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if cfg.Procs != env.Procs || cfg.ProcsPerNode != env.ProcsPerNode {
		return nil, fmt.Errorf("procnet: config shape %d procs × %d/node does not match launch env %d × %d",
			cfg.Procs, cfg.ProcsPerNode, env.Procs, env.ProcsPerNode)
	}
	f := &ProcFabric{
		cfg:       cfg,
		env:       env,
		space:     shmem.NewSpace(cfg.nodeMap()),
		mailboxes: make(map[msg.Addr]*msg.Queue),
		viewEpoch: env.ViewEpoch,
		viewDead:  -1,
		released:  make(map[uint64]bool),
		panics:    make(chan error, cfg.Procs+2*cfg.numNodes()+1),
	}
	// Like tcpnet, procnet measures real socket costs: the cost-model
	// stage stays inactive; trace, fault injection and metrics run.
	f.pipe = cfg.newPipeline(f.space, false)
	// A respawned incarnation stamps its traffic into the view it was
	// spawned under from its first message.
	f.pipe.SetEpoch(env.ViewEpoch)
	f.cond = sync.NewCond(&f.mu)
	f.space.SetOnWrite(func() {
		f.mu.Lock()
		f.cond.Broadcast()
		f.mu.Unlock()
	})
	return f, nil
}

// Space returns this worker's shared-memory replica.
func (f *ProcFabric) Space() *shmem.Space { return f.space }

// Config returns the cluster configuration.
func (f *ProcFabric) Config() *Config { return &f.cfg }

// SpawnUser registers the body of rank's user process. Ranks hosted by
// other workers are ignored — they run in their own OS processes.
func (f *ProcFabric) SpawnUser(rank int, body func(Env)) {
	a := msg.User(rank)
	if endpointNode(f.space, a) != f.env.Node {
		return
	}
	f.users = append(f.users, actorSpec{addr: a, body: body})
}

// SpawnServer registers the body of node's data server (or NIC agent,
// for IDs at or beyond the node count). Non-local ones are ignored.
func (f *ProcFabric) SpawnServer(node int, body func(Env)) {
	a := msg.ServerOf(node)
	if endpointNode(f.space, a) != f.env.Node {
		return
	}
	f.servers = append(f.servers, actorSpec{addr: a, body: body})
}

// Run joins the launch rendezvous, executes the local actors to
// completion, participates in the cluster drain protocol and tears the
// session down. A worker lost elsewhere in the launch surfaces as its
// rank-attributed *pipeline.FaultError.
func (f *ProcFabric) Run() error {
	// Mailboxes and the clock epoch must exist before Join: the session
	// can deliver data the instant the rendezvous completes, and onData
	// stamps arrivals against f.start.
	all := append(append([]actorSpec(nil), f.users...), f.servers...)
	for _, a := range all {
		f.mailboxes[a.addr] = &msg.Queue{}
	}
	f.start = time.Now()

	sess, err := cluster.Join(f.env, cluster.Handlers{
		Data:    f.onData,
		Fault:   f.onFault,
		View:    f.onView,
		Resume:  f.onResume,
		Release: f.onRelease,
	})
	if err != nil {
		var fe *pipeline.FaultError
		if errors.As(err, &fe) {
			return fe // a peer died mid-rendezvous; keep the rank attribution
		}
		return fmt.Errorf("procnet: %w", err)
	}
	f.sess = sess
	defer sess.Close()
	var userWG, serverWG sync.WaitGroup
	runActor := func(spec actorSpec, wg *sync.WaitGroup) {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				if a, ok := r.(abort); ok && a.err != nil {
					f.panics <- a.err // structured fault, propagate verbatim
				} else {
					f.panics <- fmt.Errorf("procnet: actor %v panicked: %v", spec.addr, r)
				}
				f.mu.Lock()
				f.shutdown = true
				f.cond.Broadcast()
				f.mu.Unlock()
			}
		}()
		spec.body(&procEnv{f: f, addr: spec.addr})
	}
	for _, a := range f.servers {
		serverWG.Add(1)
		go runActor(a, &serverWG)
	}
	for _, a := range f.users {
		userWG.Add(1)
		go runActor(a, &userWG)
	}

	deadline := f.cfg.Deadline
	if deadline == 0 {
		deadline = 120 * time.Second
	}
	usersDone := make(chan struct{})
	go func() { userWG.Wait(); close(usersDone) }()
	select {
	case <-usersDone:
	case perr := <-f.panics:
		return perr
	case <-time.After(deadline):
		return fmt.Errorf("procnet: deadline %v exceeded waiting for node %d's user processes", deadline, f.env.Node)
	}

	// Local users finished; servers must keep serving until every
	// node's users have — remote ranks may still target this node's
	// memory. The coordinator's drain broadcast is that barrier.
	if derr := sess.UserDone(); derr != nil {
		if fe := sess.Err(); fe != nil {
			return fe
		}
		return fmt.Errorf("procnet: reporting users done: %w", derr)
	}
	select {
	case <-sess.Drained():
	case perr := <-f.panics:
		return perr
	case <-time.After(deadline):
		return fmt.Errorf("procnet: deadline %v exceeded waiting for the cluster drain", deadline)
	}

	f.mu.Lock()
	f.shutdown = true
	f.cond.Broadcast()
	f.mu.Unlock()

	serversDone := make(chan struct{})
	go func() { serverWG.Wait(); close(serversDone) }()
	select {
	case <-serversDone:
	case perr := <-f.panics:
		return perr
	case <-time.After(deadline):
		return fmt.Errorf("procnet: deadline %v exceeded waiting for servers to drain", deadline)
	}
	select {
	case perr := <-f.panics:
		return perr
	default:
	}
	return nil
}

// onData is the session's delivery callback: decode, run the inbound
// pipeline stages (dedup, arrival stamping, metrics) and hand the
// message to the destination actor's mailbox.
func (f *ProcFabric) onData(body []byte) {
	m, err := wire.Decode(body)
	if err != nil {
		f.panics <- fmt.Errorf("procnet: node %d received corrupt frame: %w", f.env.Node, err)
		return
	}
	if !f.pipe.Inbound(m, time.Since(f.start)) {
		return
	}
	f.mu.Lock()
	if q := f.mailboxes[m.Dst]; q != nil {
		q.Put(m)
	}
	f.cond.Broadcast()
	f.mu.Unlock()
}

// onFault surfaces a cluster fault — a peer worker died or the
// coordinator vanished — to every blocked local actor and to Run.
func (f *ProcFabric) onFault(fe *pipeline.FaultError) {
	f.mu.Lock()
	f.fault = fe
	f.shutdown = true
	f.cond.Broadcast()
	f.mu.Unlock()
	f.panics <- fe
}

// onView installs a membership view. A newer epoch is a membership
// change: local user actors are interrupted out of their blocking calls
// so the elastic runner can abort the current sync epoch and run
// recovery. The pipeline epoch is NOT advanced here — that happens in
// AckView, after the user actor has unwound, so every message this
// worker sent for the aborted epoch still carries the old view epoch
// and is fenced out at receivers that have already advanced.
func (f *ProcFabric) onView(v wire.View) {
	f.mu.Lock()
	if v.Epoch > f.viewEpoch {
		f.viewEpoch = v.Epoch
		f.viewDead = v.Dead
		f.viewIntr = true
		f.resume = nil
		f.released = make(map[uint64]bool)
		f.cond.Broadcast()
	}
	f.mu.Unlock()
}

// onResume records the coordinator's recovery hand-off.
func (f *ProcFabric) onResume(r wire.EpochReport) {
	f.mu.Lock()
	f.resume = &r
	f.cond.Broadcast()
	f.mu.Unlock()
}

// onRelease records a cluster barrier release.
func (f *ProcFabric) onRelease(id uint64) {
	f.mu.Lock()
	f.released[id] = true
	f.cond.Broadcast()
	f.mu.Unlock()
}

// ViewInterrupt is the abort thrown through a user actor's blocking
// calls when a membership change invalidates the sync epoch it is
// executing. The elastic runner recovers it (see transport.AsViewInterrupt)
// and drives the recovery protocol; a workload that does not handle it
// fails the worker, which is the right outcome for non-elastic bodies
// run under an elastic launch.
type ViewInterrupt struct {
	// Epoch is the new membership view epoch.
	Epoch uint64
	// Dead is the node slot being replaced.
	Dead int
}

func (v *ViewInterrupt) Error() string {
	return fmt.Sprintf("membership view changed to epoch %d (node %d replaced)", v.Epoch, v.Dead)
}

// AsViewInterrupt reports whether a recovered panic value is a view
// interrupt — the elastic runner's recovery entry point.
func AsViewInterrupt(r any) (*ViewInterrupt, bool) {
	a, ok := r.(abort)
	if !ok {
		return nil, false
	}
	var vi *ViewInterrupt
	if errors.As(a.err, &vi) {
		return vi, true
	}
	return nil, false
}

// ElasticEnv is the recovery interface of fabrics that support elastic
// membership (currently procnet). The elastic runner type-asserts its
// Env to reach it; on fabrics without it, crashes are emulated
// cooperatively in-process instead.
type ElasticEnv interface {
	// ElasticEnabled reports whether this run repairs worker loss.
	ElasticEnabled() bool
	// Incarnation is this worker's spawn count (0 = initial launch).
	Incarnation() uint32
	// ViewEpoch is the installed membership view epoch — the recovery
	// barrier namespace of the current repair.
	ViewEpoch() uint64
	// AckView acknowledges the pending view change with this rank's
	// committed sync epoch and replica state. It clears the view
	// interrupt, fences the aborted epoch's traffic (mailbox purge,
	// pipeline epoch advance, dead-pair reset) and must be the first
	// env call on the recovery path.
	AckView(committed, shadow, staged uint64)
	// AwaitResume blocks for the coordinator's recovery hand-off and
	// returns the replaced node slot and the sync epoch to resume from.
	AwaitResume() (dead int, resume uint64)
	// ClusterBarrier blocks until every node of the launch entered
	// barrier id. Ids are reused across recovery re-executions.
	ClusterBarrier(id uint64)
}

var _ ElasticEnv = (*procEnv)(nil)

func (e *procEnv) ElasticEnabled() bool { return e.f.env.Elastic }
func (e *procEnv) Incarnation() uint32  { return e.f.env.Incarnation }

func (e *procEnv) ViewEpoch() uint64 {
	e.f.mu.Lock()
	defer e.f.mu.Unlock()
	return e.f.viewEpoch
}

// AckView fences the aborted sync epoch and acknowledges the view: from
// here on this worker stamps the new epoch, drops queued old-epoch
// traffic, and forgets per-pair sequencing with the replaced node (its
// respawned incarnation restarts sequences at 1).
func (e *procEnv) AckView(committed, shadow, staged uint64) {
	f := e.f
	f.mu.Lock()
	epoch := f.viewEpoch
	dead := f.viewDead
	f.viewIntr = false
	for _, q := range f.mailboxes {
		for q.TryPop(func(m *msg.Message) bool { return m.Epoch < epoch }) != nil {
		}
	}
	f.mu.Unlock()
	f.pipe.SetEpoch(epoch)
	f.pipe.ResetPeer(func(a msg.Addr) bool { return endpointNode(f.space, a) == dead })
	if err := f.sess.SendViewAck(wire.ViewAck{
		Node: f.env.Node, Epoch: epoch, Committed: committed, Shadow: shadow, Staged: staged,
	}); err != nil {
		if fe := f.sess.Err(); fe != nil {
			panic(abort{fe})
		}
		panic(fmt.Sprintf("procnet: node %d view ack: %v", f.env.Node, err))
	}
}

// AwaitResume blocks for the recovery hand-off. Deliberately exempt
// from the per-op deadline: the window includes a full process respawn,
// bounded by the cluster join timeout and the run deadline instead.
func (e *procEnv) AwaitResume() (int, uint64) {
	f := e.f
	f.mu.Lock()
	for f.resume == nil {
		if ferr := f.fault; ferr != nil {
			f.mu.Unlock()
			panic(abort{ferr})
		}
		f.cond.Wait()
	}
	r := *f.resume
	f.mu.Unlock()
	return r.Node, r.Epoch
}

// ClusterBarrier enters coordinator barrier id and blocks for its
// release. A view change mid-wait aborts with a ViewInterrupt.
func (e *procEnv) ClusterBarrier(id uint64) {
	f := e.f
	f.mu.Lock()
	// A release for this id from a previous use (pre-recovery
	// re-execution) must not satisfy this entry.
	delete(f.released, id)
	f.mu.Unlock()
	if err := f.sess.EnterBarrier(id); err != nil {
		if fe := f.sess.Err(); fe != nil {
			panic(abort{fe})
		}
		panic(fmt.Sprintf("procnet: node %d barrier %d: %v", f.env.Node, id, err))
	}
	f.mu.Lock()
	for !f.released[id] {
		if ferr := f.fault; ferr != nil {
			f.mu.Unlock()
			panic(abort{ferr})
		}
		if f.viewIntr {
			vi := &ViewInterrupt{Epoch: f.viewEpoch, Dead: f.viewDead}
			f.mu.Unlock()
			panic(abort{vi})
		}
		f.cond.Wait()
	}
	f.mu.Unlock()
}

// viewIntrCheckLocked aborts a user actor caught by a membership
// change. Callers hold f.mu; servers are never interrupted — they must
// keep serving the restore reads of the recovery protocol.
func (e *procEnv) viewIntrCheckLocked() {
	f := e.f
	if f.viewIntr && !e.addr.Server {
		vi := &ViewInterrupt{Epoch: f.viewEpoch, Dead: f.viewDead}
		f.mu.Unlock()
		panic(abort{vi})
	}
}

// procEnv is the Env of one local actor on the proc fabric.
type procEnv struct {
	f    *ProcFabric
	addr msg.Addr
}

var _ Env = (*procEnv)(nil)

func (e *procEnv) Self() msg.Addr       { return e.addr }
func (e *procEnv) Rank() int            { return e.addr.ID }
func (e *procEnv) Size() int            { return e.f.cfg.Procs }
func (e *procEnv) NumNodes() int        { return e.f.cfg.numNodes() }
func (e *procEnv) Node(rank int) int    { return e.f.space.Node(rank) }
func (e *procEnv) Space() *shmem.Space  { return e.f.space }
func (e *procEnv) Params() model.Params { return e.f.cfg.Model }
func (e *procEnv) Trace() *trace.Stats  { return e.f.cfg.Trace }
func (e *procEnv) Clock() Clock         { return wallClock{e.f.start} }

func (e *procEnv) Charge(d time.Duration) {
	// Like tcpnet: real socket costs, no injected CPU model.
}

func (e *procEnv) Send(to msg.Addr, m *msg.Message) {
	e.f.mu.Lock()
	e.viewIntrCheckLocked()
	e.f.mu.Unlock()
	err := e.f.pipe.SendTo(e.addr, to, m,
		func() time.Duration { return time.Since(e.f.start) }, nil,
		func(d pipeline.Delivery) {
			if werr := e.f.sess.SendMsg(d.Msg); werr != nil {
				if fe := e.f.sess.Err(); fe != nil {
					panic(abort{fe})
				}
				panic(fmt.Sprintf("procnet: send %v -> %v: %v", e.addr, to, werr))
			}
		})
	if err != nil {
		panic(abort{err}) // crash / retry exhaustion: abort this actor
	}
}

func (e *procEnv) Recv(match msg.Match) *msg.Message {
	q := e.f.mailboxes[e.addr]
	tag := "recv@" + e.addr.String()
	expired, stop := e.opTimer(e.addr.Server)
	defer stop()
	e.f.mu.Lock()
	for {
		if m := q.TryPop(match); m != nil {
			e.f.mu.Unlock()
			// Enforce a fault-injected arrival time in wall time (with
			// no faults the stamp is the actual socket arrival, already
			// in the past).
			if wait := m.Arrival - time.Since(e.f.start); wait > 0 {
				time.Sleep(wait)
			}
			return m
		}
		if ferr := e.f.fault; ferr != nil {
			e.f.mu.Unlock()
			panic(abort{ferr})
		}
		e.viewIntrCheckLocked()
		if e.addr.Server && e.f.shutdown {
			e.f.mu.Unlock()
			return nil
		}
		if expired() {
			e.f.mu.Unlock()
			panic(opTimeout(e.addr, tag))
		}
		e.f.cond.Wait()
	}
}

func (e *procEnv) TryRecv(match msg.Match) *msg.Message {
	now := time.Since(e.f.start)
	e.f.mu.Lock()
	if ferr := e.f.fault; ferr != nil {
		e.f.mu.Unlock()
		panic(abort{ferr})
	}
	e.viewIntrCheckLocked()
	m := e.f.mailboxes[e.addr].TryPop(func(m *msg.Message) bool {
		return m.Arrival <= now && match(m)
	})
	e.f.mu.Unlock()
	return m
}

func (e *procEnv) WaitUntil(tag string, pred func() bool) {
	expired, stop := e.opTimer(false)
	defer stop()
	e.f.mu.Lock()
	for !pred() {
		if ferr := e.f.fault; ferr != nil {
			e.f.mu.Unlock()
			panic(abort{ferr})
		}
		e.viewIntrCheckLocked()
		if e.f.shutdown && e.addr.Server {
			break
		}
		if expired() {
			e.f.mu.Unlock()
			panic(opTimeout(e.addr, tag))
		}
		e.f.cond.Wait()
	}
	e.f.mu.Unlock()
}

func (e *procEnv) WaitUntilFor(tag string, pred func() bool, d time.Duration) bool {
	if d <= 0 {
		e.WaitUntil(tag, pred)
		return true
	}
	deadline := time.Now().Add(d)
	t := time.AfterFunc(d, func() {
		e.f.mu.Lock()
		e.f.cond.Broadcast()
		e.f.mu.Unlock()
	})
	defer t.Stop()
	e.f.mu.Lock()
	for !pred() {
		if ferr := e.f.fault; ferr != nil {
			e.f.mu.Unlock()
			panic(abort{ferr})
		}
		e.viewIntrCheckLocked()
		if !time.Now().Before(deadline) {
			e.f.mu.Unlock()
			return false
		}
		e.f.cond.Wait()
	}
	e.f.mu.Unlock()
	return true
}

func (e *procEnv) Faults() pipeline.Faults { return e.f.pipe.Faults() }

// CrashedRank consults the process-local registry only: a rank
// fail-stopped on another worker is detected by the cluster layer
// (heartbeats / connection loss) as a FaultPeerLost instead. Lease-lock
// waiters on this fabric therefore rely purely on TTL timing, which
// needs no registry at all.
func (e *procEnv) CrashedRank() int { return e.f.pipe.FirstCrashed() }

// FailStop on the multi-process fabric is job-fatal: the crash registry
// cannot cross process boundaries, so remote waiters could never
// distinguish the fail-stop from a wedged peer. The run aborts with the
// rank-attributed FaultError instead of silently dropping the actor.
func (e *procEnv) FailStop(op string) {
	panic(abort{e.f.pipe.CrashNow(e.addr.ID, op)})
}

func (e *procEnv) AbortFault(err *pipeline.FaultError) {
	panic(abort{err})
}

// opTimer arms the per-op deadline for one blocking operation,
// mirroring the channel and TCP fabrics' helper.
func (e *procEnv) opTimer(exempt bool) (expired func() bool, stop func()) {
	od := e.f.cfg.OpDeadline
	if od <= 0 || exempt {
		return func() bool { return false }, func() {}
	}
	deadline := time.Now().Add(od)
	t := time.AfterFunc(od, func() {
		e.f.mu.Lock()
		e.f.cond.Broadcast()
		e.f.mu.Unlock()
	})
	return func() bool { return !time.Now().Before(deadline) }, func() { t.Stop() }
}
