package bench

import (
	"math"
	"strings"
	"testing"

	"armci"
)

// fastOpts keeps harness tests quick; the simulator is deterministic so
// few repetitions lose nothing.
func fastOpts() Opts {
	return Opts{Fabric: armci.FabricSim, Preset: armci.PresetMyrinet2000, Reps: 3, Warmup: 1}
}

// TestFig7ReproducesPaperShape pins the headline result: the combined
// barrier beats the original GA_Sync with a factor that grows with the
// process count, reaching the paper's 9x neighborhood (1724.3 µs vs
// 190.3 µs at 16 processes on the real cluster).
func TestFig7ReproducesPaperShape(t *testing.T) {
	res, err := Fig7(Fig7Opts{Opts: fastOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	prev := 0.0
	for _, row := range res.Rows {
		if row.Factor <= 1 {
			t.Fatalf("N=%d: new implementation not faster (factor %.2f)", row.Procs, row.Factor)
		}
		if row.Factor <= prev {
			t.Fatalf("factor not growing with N: %+v", res.Rows)
		}
		prev = row.Factor
	}
	last := res.Rows[len(res.Rows)-1]
	if last.Procs != 16 {
		t.Fatalf("last row is N=%d", last.Procs)
	}
	if last.Factor < 6 || last.Factor > 14 {
		t.Fatalf("factor at 16 procs = %.2f, want the paper's ~9 (band 6..14)", last.Factor)
	}
	if last.NewUS < 100 || last.NewUS > 320 {
		t.Fatalf("new GA_Sync at 16 = %.1f us, want near the paper's 190 us", last.NewUS)
	}
	if last.OldUS < 1100 || last.OldUS > 2600 {
		t.Fatalf("old GA_Sync at 16 = %.1f us, want near the paper's 1724 us", last.OldUS)
	}
}

// TestFig7Deterministic: identical sweeps give identical virtual times.
func TestFig7Deterministic(t *testing.T) {
	run := func() []Fig7Row {
		res, err := Fig7(Fig7Opts{Opts: fastOpts(), ProcCounts: []int{4, 8}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic: %+v vs %+v", a[i], b[i])
		}
	}
}

// TestLockReproducesPaperShape pins Figures 8-10: the queuing lock loses
// uncontended (the release compare&swap round trip), wins under
// contention, and the acquire/release split behaves as published.
func TestLockReproducesPaperShape(t *testing.T) {
	res, err := Lock(LockOpts{Opts: fastOpts(), Iters: 60})
	if err != nil {
		t.Fatal(err)
	}
	byProcs := map[int]LockRow{}
	for _, row := range res.Rows {
		byProcs[row.Procs] = row
	}
	// Figure 8(b): below 1 at one process, above 1 from 2 on.
	if f := byProcs[1].Factor; f >= 1 {
		t.Fatalf("single-process factor %.2f, want < 1 (the CAS penalty)", f)
	}
	for _, n := range []int{2, 4, 8, 16} {
		if f := byProcs[n].Factor; f <= 1 {
			t.Fatalf("N=%d factor %.2f, want > 1", n, f)
		}
	}
	if f := byProcs[8].Factor; f < 1.1 || f > 2.2 {
		t.Fatalf("N=8 factor %.2f outside the paper-shaped band (paper: 1.25)", f)
	}
	// Figure 9: the new lock always acquires faster.
	for _, n := range []int{1, 2, 4, 8, 16} {
		if byProcs[n].New.AcquireUS >= byProcs[n].Current.AcquireUS {
			t.Fatalf("N=%d: new acquire %.1f not below current %.1f",
				n, byProcs[n].New.AcquireUS, byProcs[n].Current.AcquireUS)
		}
	}
	// Figure 10: the new release is slower at low contention (CAS) and
	// the gap shrinks as waiters appear.
	if byProcs[1].New.ReleaseUS <= byProcs[1].Current.ReleaseUS {
		t.Fatal("uncontended new release should pay the CAS round trip")
	}
	gap1 := byProcs[1].New.ReleaseUS - byProcs[1].Current.ReleaseUS
	gap16 := byProcs[16].New.ReleaseUS - byProcs[16].Current.ReleaseUS
	if gap16 >= gap1 {
		t.Fatalf("release gap should shrink with contention: %.1f at 1, %.1f at 16", gap1, gap16)
	}
}

// TestCrossoverMatchesAnalysis: §3.1.2 predicts the original AllFence
// wins when fewer than log2(N)/2 servers were written to. At N=16 that
// threshold is 2.
func TestCrossoverMatchesAnalysis(t *testing.T) {
	res, err := Crossover(CrossoverOpts{Opts: fastOpts(), Procs: 16, KValues: []int{0, 1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		oldWins := row.OldUS < row.NewUS
		wantOldWins := row.K < 2
		if oldWins != wantOldWins {
			t.Fatalf("K=%d: old=%.1f new=%.1f — crossover off the log2(N)/2 prediction",
				row.K, row.OldUS, row.NewUS)
		}
	}
	// The new barrier's cost must not depend on K at all.
	base := res.Rows[0].NewUS
	for _, row := range res.Rows {
		if math.Abs(row.NewUS-base) > base*0.05 {
			t.Fatalf("new barrier cost varies with K: %.1f vs %.1f", row.NewUS, base)
		}
	}
}

// TestMessageCountFormulas: exact message complexity, the analytical core
// of §3.1.
func TestMessageCountFormulas(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		c, err := CountSyncMessages(n)
		if err != nil {
			t.Fatal(err)
		}
		if c.OldFenceReqs != n*(n-1) {
			t.Fatalf("N=%d: old fence requests %d, want N(N-1)=%d", n, c.OldFenceReqs, n*(n-1))
		}
		logN := 0
		for 1<<logN < n {
			logN++
		}
		if c.NewColl != 2*n*logN {
			t.Fatalf("N=%d: new collective messages %d, want 2N*log2(N)=%d", n, c.NewColl, 2*n*logN)
		}
		// The new barrier must send no fence traffic at all; its total
		// is exactly the collective messages.
		if c.NewTotal != c.NewColl {
			t.Fatalf("N=%d: new barrier sent %d extra non-collective messages", n, c.NewTotal-c.NewColl)
		}
	}
}

func TestCountSyncMessagesRejectsNonPow2(t *testing.T) {
	if _, err := CountSyncMessages(6); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
}

// TestAblationsRun: every ablation produces a sensible comparison.
func TestAblationsRun(t *testing.T) {
	res, err := Ablations(AblationOpts{Opts: fastOpts(), Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("%d ablation rows", len(res.Rows))
	}
	rows := map[string]AblationRow{}
	for _, row := range res.Rows {
		if row.AUS <= 0 || row.BUS <= 0 {
			t.Fatalf("%s: non-positive times %+v", row.Name, row)
		}
		rows[row.Name] = row
	}
	// Pipelining the fence round trips must help, and per-put acks must
	// beat explicit confirmations for the old sync.
	if r := rows["allfence round trips"]; r.BUS >= r.AUS {
		t.Fatalf("pipelined allfence (%.1f) not faster than serialized (%.1f)", r.BUS, r.AUS)
	}
	if r := rows["fence mode"]; r.BUS >= r.AUS {
		t.Fatalf("ack-mode sync (%.1f) not faster than request-mode (%.1f)", r.BUS, r.AUS)
	}
	// The strided tile transfer must beat one put per row.
	if r := rows["tile transfer"]; r.AUS >= r.BUS {
		t.Fatalf("strided put (%.1f) not faster than per-row puts (%.1f)", r.AUS, r.BUS)
	}
	// Co-locating contenders must help the queuing lock (local hand-offs).
	if r := rows["queue lock on SMP"]; r.AUS >= r.BUS {
		t.Fatalf("co-located queue lock (%.1f) not faster than spread (%.1f)", r.AUS, r.BUS)
	}
	// The NIC agent must cut the uncontended release cost (§5).
	if r := rows["NIC-assisted atomics"]; r.BUS >= r.AUS {
		t.Fatalf("NIC-served release (%.1f) not faster than host-served (%.1f)", r.BUS, r.AUS)
	}
}

// TestFormatters produce the paper-style tables without choking.
func TestFormatters(t *testing.T) {
	f7, err := Fig7(Fig7Opts{Opts: fastOpts(), ProcCounts: []int{2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if s := FormatFig7(f7); !strings.Contains(s, "Figure 7(a)") || !strings.Contains(s, "factor") {
		t.Fatalf("fig7 table malformed:\n%s", s)
	}
	lk, err := Lock(LockOpts{Opts: fastOpts(), ProcCounts: []int{1, 2}, Iters: 10})
	if err != nil {
		t.Fatal(err)
	}
	s := FormatLock(lk)
	for _, want := range []string{"Figure 8(a)", "Figure 8(b)", "Figure 9", "Figure 10"} {
		if !strings.Contains(s, want) {
			t.Fatalf("lock table missing %q:\n%s", want, s)
		}
	}
	cr, err := Crossover(CrossoverOpts{Opts: fastOpts(), Procs: 8, KValues: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if s := FormatCrossover(cr); !strings.Contains(s, "Crossover") {
		t.Fatalf("crossover table malformed:\n%s", s)
	}
	mc, err := CountSyncMessages(4)
	if err != nil {
		t.Fatal(err)
	}
	if s := FormatMessageCounts([]*MessageCounts{mc}); !strings.Contains(s, "Message complexity") {
		t.Fatalf("counts table malformed:\n%s", s)
	}
}

// TestFig7OnWireFabric: the qualitative result — new never slower than
// old for N >= 4 — holds on the real concurrent fabric in wall time.
// Wall-clock noise on a loaded machine makes tight bands meaningless, so
// only the ordering is asserted, with a retry.
func TestFig7OnWireFabric(t *testing.T) {
	opts := Fig7Opts{
		Opts:       Opts{Fabric: armci.FabricChan, Preset: armci.PresetZero, Reps: 5, Warmup: 2},
		ProcCounts: []int{8},
	}
	ok := false
	for attempt := 0; attempt < 3 && !ok; attempt++ {
		res, err := Fig7(opts)
		if err != nil {
			t.Fatal(err)
		}
		ok = res.Rows[0].NewUS <= res.Rows[0].OldUS*1.2
	}
	if !ok {
		t.Fatal("combined barrier consistently slower than old sync on the wire fabric")
	}
}

// TestStripingShape: the extension experiment's emergent crossover — the
// queuing lock wins on hot (few) locks and loses to the hybrid once
// striping removes contention, generalizing the paper's single-process
// observation (the uncontended release CAS round trip).
func TestStripingShape(t *testing.T) {
	res, err := Striping(StripingOpts{Opts: fastOpts(), Procs: 8, Iters: 60})
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if first.Locks != 1 || last.Locks != 8 {
		t.Fatalf("unexpected sweep %+v", res.Rows)
	}
	if first.ThroughputFactor <= 1 {
		t.Fatalf("hot single lock: queue lock should win (factor %.2f)", first.ThroughputFactor)
	}
	if last.ThroughputFactor >= 1 {
		t.Fatalf("8-way striping: hybrid should win the uncontended regime (factor %.2f)", last.ThroughputFactor)
	}
}

// TestSensitivityAcrossNetworks: the combined barrier wins by >4x at 16
// processes under every cost model spanning an order of magnitude of
// latency, with the calibrated Myrinet point the strongest.
func TestSensitivityAcrossNetworks(t *testing.T) {
	res, err := Sensitivity(SensitivityOpts{Opts: fastOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	var myrinet float64
	for _, row := range res.Rows {
		if row.Factor < 4 {
			t.Fatalf("%s: factor %.2f below 4", row.Preset, row.Factor)
		}
		if row.Preset == armci.PresetMyrinet2000 {
			myrinet = row.Factor
		}
	}
	for _, row := range res.Rows {
		if row.Factor > myrinet {
			t.Fatalf("%s factor %.2f exceeds the calibrated Myrinet point %.2f",
				row.Preset, row.Factor, myrinet)
		}
	}
}
