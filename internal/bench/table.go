package bench

import (
	"fmt"
	"strings"

	"armci"
)

// FormatFig7 renders the Figure 7 tables (time and factor of improvement)
// in the layout of the paper.
func FormatFig7(r *Fig7Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7(a): GA_Sync() time (%s fabric, %s model, %d reps)\n",
		fabricName(r.Opts.Fabric), presetName(r.Opts.Preset), r.Opts.Reps)
	fmt.Fprintf(&b, "%8s %14s %14s\n", "procs", "current (us)", "new (us)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %14.1f %14.1f\n", row.Procs, row.OldUS, row.NewUS)
	}
	b.WriteString("\nFigure 7(b): factor of improvement\n")
	fmt.Fprintf(&b, "%8s %14s\n", "procs", "factor")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %14.2f\n", row.Procs, row.Factor)
	}
	return b.String()
}

// FormatLock renders the Figure 8/9/10 tables.
func FormatLock(r *LockResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8(a): time to request and release a lock (%s fabric, %s model, %d iters)\n",
		fabricName(r.Opts.Fabric), presetName(r.Opts.Preset), r.Opts.Iters)
	fmt.Fprintf(&b, "%8s %14s %14s\n", "procs", "current (us)", "new (us)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %14.1f %14.1f\n", row.Procs, row.Current.TotalUS, row.New.TotalUS)
	}
	b.WriteString("\nFigure 8(b): factor of improvement\n")
	fmt.Fprintf(&b, "%8s %14s\n", "procs", "factor")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %14.2f\n", row.Procs, row.Factor)
	}
	b.WriteString("\nFigure 9: time to request and acquire a lock\n")
	fmt.Fprintf(&b, "%8s %14s %14s\n", "procs", "current (us)", "new (us)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %14.1f %14.1f\n", row.Procs, row.Current.AcquireUS, row.New.AcquireUS)
	}
	b.WriteString("\nFigure 10: time to release a lock\n")
	fmt.Fprintf(&b, "%8s %14s %14s\n", "procs", "current (us)", "new (us)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %14.1f %14.1f\n", row.Procs, row.Current.ReleaseUS, row.New.ReleaseUS)
	}
	return b.String()
}

// FormatLockCrash renders the holder-crash recovery experiment.
func FormatLockCrash(r *LockCrashResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Lock holder-crash recovery: lease lock, %d procs (ppn %d), victim rank %d at acquire %d, TTL %s (%s fabric, %s model)\n",
		r.Opts.Procs, r.Opts.PPN, r.Opts.Victim, r.Opts.CrashAcquire, r.Opts.TTL,
		fabricName(armci.FabricSim), presetName(r.Opts.Preset))
	fmt.Fprintf(&b, "%28s %14s\n", "metric", "value")
	fmt.Fprintf(&b, "%28s %14.1f\n", "hand-off (us, crash-free)", r.HandoffUS)
	fmt.Fprintf(&b, "%28s %14.1f\n", "recovery (us, crash)", r.RecoveryUS)
	fmt.Fprintf(&b, "%28s %14d\n", "hand-offs measured", r.Handoffs)
	fmt.Fprintf(&b, "%28s %14d\n", "repairs", r.Repairs)
	return b.String()
}

// FormatCrossover renders the §3.1.2 sparse-writer table.
func FormatCrossover(r *CrossoverResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Crossover (§3.1.2): sync time vs writer fan-out, N=%d (%s fabric, %s model)\n",
		r.Opts.Procs, fabricName(r.Opts.Fabric), presetName(r.Opts.Preset))
	fmt.Fprintf(&b, "%8s %14s %14s %8s\n", "targets", "old (us)", "new (us)", "winner")
	for _, row := range r.Rows {
		winner := "new"
		if row.OldUS < row.NewUS {
			winner = "old"
		}
		fmt.Fprintf(&b, "%8d %14.1f %14.1f %8s\n", row.K, row.OldUS, row.NewUS, winner)
	}
	return b.String()
}

// FormatCrossoverN renders the large-N barrier crossover sweep: one
// column per algorithm, one row per cluster size, then the crossover
// analysis — from which N each structured variant beats the flat
// dissemination exchange.
func FormatCrossoverN(r *CrossoverNResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Crossover-N: ARMCI_Barrier time vs cluster size, ppn %d (%s fabric, %s model)\n",
		r.Opts.PPN, fabricName(r.Opts.Fabric), presetName(r.Opts.Preset))
	fmt.Fprintf(&b, "%8s", "procs")
	for _, v := range r.Variants {
		fmt.Fprintf(&b, " %14s", v.Name)
	}
	fmt.Fprintf(&b, " %14s\n", "winner")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d", row.N)
		for _, t := range row.US {
			fmt.Fprintf(&b, " %14.1f", t)
		}
		fmt.Fprintf(&b, " %14s\n", r.Winner(row))
	}
	for _, name := range []string{"knomial4", "hierarchical", "hier-nicfence"} {
		if n := crossoverNAgainst(r, name, "dissemination"); n > 0 {
			fmt.Fprintf(&b, "%s beats dissemination from N=%d\n", name, n)
		} else {
			fmt.Fprintf(&b, "%s never beats dissemination in this sweep\n", name)
		}
	}
	return b.String()
}

// crossoverNAgainst returns the smallest swept N from which variant a
// stays faster than variant b for every larger N, or 0 if none.
func crossoverNAgainst(r *CrossoverNResult, a, b string) int {
	n := 0
	for _, row := range r.Rows {
		if r.VariantUS(row, a) < r.VariantUS(row, b) {
			if n == 0 {
				n = row.N
			}
		} else {
			n = 0
		}
	}
	return n
}

// FormatMessageCounts renders the analytical message-count check.
func FormatMessageCounts(cs []*MessageCounts) string {
	var b strings.Builder
	b.WriteString("Message complexity of one all-process sync (all-to-all writers)\n")
	fmt.Fprintf(&b, "%8s %16s %16s %14s %14s\n",
		"procs", "old fence-reqs", "expected N(N-1)", "new coll", "exp 2N*log2N")
	for _, c := range cs {
		logN := 0
		for 1<<logN < c.Procs {
			logN++
		}
		fmt.Fprintf(&b, "%8d %16d %16d %14d %14d\n",
			c.Procs, c.OldFenceReqs, c.Procs*(c.Procs-1), c.NewColl, 2*c.Procs*logN)
	}
	return b.String()
}

// CSVFig7 renders the Figure 7 sweep as CSV (plot-ready).
func CSVFig7(r *Fig7Result) string {
	var b strings.Builder
	b.WriteString("procs,current_us,new_us,factor\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%d,%.3f,%.3f,%.4f\n", row.Procs, row.OldUS, row.NewUS, row.Factor)
	}
	return b.String()
}

// CSVLock renders the Figure 8/9/10 sweep as CSV.
func CSVLock(r *LockResult) string {
	var b strings.Builder
	b.WriteString("procs,cur_total_us,new_total_us,factor,cur_acquire_us,new_acquire_us,cur_release_us,new_release_us\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%d,%.3f,%.3f,%.4f,%.3f,%.3f,%.3f,%.3f\n",
			row.Procs, row.Current.TotalUS, row.New.TotalUS, row.Factor,
			row.Current.AcquireUS, row.New.AcquireUS,
			row.Current.ReleaseUS, row.New.ReleaseUS)
	}
	return b.String()
}

// CSVCrossover renders the sparse-writer sweep as CSV.
func CSVCrossover(r *CrossoverResult) string {
	var b strings.Builder
	b.WriteString("targets,old_us,new_us\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%d,%.3f,%.3f\n", row.K, row.OldUS, row.NewUS)
	}
	return b.String()
}

// CSVCrossoverN renders the large-N barrier sweep as CSV.
func CSVCrossoverN(r *CrossoverNResult) string {
	var b strings.Builder
	b.WriteString("procs")
	for _, v := range r.Variants {
		b.WriteString("," + v.Name + "_us")
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%d", row.N)
		for _, t := range row.US {
			fmt.Fprintf(&b, ",%.3f", t)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func fabricName(k armci.FabricKind) string { return k.String() }

func presetName(p armci.CostPreset) string {
	if p == "" {
		return string(armci.PresetZero)
	}
	return string(p)
}
