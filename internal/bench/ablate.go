package bench

import (
	"fmt"
	"strings"

	"armci"
	"armci/ga"
)

// AblationOpts configures the design-choice ablations called out in
// DESIGN.md.
type AblationOpts struct {
	Opts
	// Procs is the cluster size (default 16).
	Procs int
}

// AblationRow compares two configurations of one design choice.
type AblationRow struct {
	Name   string
	A, B   string  // configuration labels
	AUS    float64 // mean time of configuration A, microseconds
	BUS    float64
	Metric string // what was measured
}

// AblationResult is the set of ablations.
type AblationResult struct {
	Opts AblationOpts
	Rows []AblationRow
}

// Ablations measures the design alternatives:
//
//   - stage-3 barrier pattern: pairwise binary exchange vs central;
//   - AllFence serialization: the paper's serial round trips vs pipelined;
//   - fence mode: GM-like confirmation requests vs LAPI/VIA-like per-put
//     acks, under the original sync;
//   - queuing-lock release: compare&swap vs the future-work swap-only
//     release, on the uncontended single-process remote case.
func Ablations(opts AblationOpts) (*AblationResult, error) {
	opts.Opts = opts.Opts.withDefaults()
	if opts.Procs <= 0 {
		opts.Procs = 16
	}
	res := &AblationResult{Opts: opts}

	// Barrier stage-3 algorithm.
	pair, err := barrierTime(opts, armci.BarrierPairwise)
	if err != nil {
		return nil, fmt.Errorf("bench: ablate barrier pairwise: %w", err)
	}
	central, err := barrierTime(opts, armci.BarrierCentral)
	if err != nil {
		return nil, fmt.Errorf("bench: ablate barrier central: %w", err)
	}
	res.Rows = append(res.Rows, AblationRow{
		Name: "barrier pattern", A: "binary-exchange", B: "central",
		AUS: pair, BUS: central, Metric: "ARMCI_Barrier time",
	})

	// AllFence serialization.
	serial, err := syncVariantTime(opts, ga.SyncOld, armci.FenceRequest)
	if err != nil {
		return nil, fmt.Errorf("bench: ablate allfence serial: %w", err)
	}
	pipelined, err := syncVariantTime(opts, ga.SyncOldPipelined, armci.FenceRequest)
	if err != nil {
		return nil, fmt.Errorf("bench: ablate allfence pipelined: %w", err)
	}
	res.Rows = append(res.Rows, AblationRow{
		Name: "allfence round trips", A: "serialized (paper)", B: "pipelined",
		AUS: serial, BUS: pipelined, Metric: "GA_Sync(old) time",
	})

	// Fence mode.
	ackMode, err := syncVariantTime(opts, ga.SyncOld, armci.FenceAck)
	if err != nil {
		return nil, fmt.Errorf("bench: ablate fence ack: %w", err)
	}
	res.Rows = append(res.Rows, AblationRow{
		Name: "fence mode", A: "request/confirm (GM)", B: "per-put acks (VIA)",
		AUS: serial, BUS: ackMode, Metric: "GA_Sync(old) time",
	})

	// Queuing-lock release variant, uncontended remote case (the case the
	// CAS round trip hurts).
	lockOpts := LockOpts{Opts: opts.Opts, Iters: 100}
	cas, err := lockRun(lockOpts, 2, 1, armci.LockQueue)
	if err != nil {
		return nil, fmt.Errorf("bench: ablate lock cas: %w", err)
	}
	swapOnly, err := lockRun(lockOpts, 2, 1, armci.LockQueueNoCAS)
	if err != nil {
		return nil, fmt.Errorf("bench: ablate lock nocas: %w", err)
	}
	res.Rows = append(res.Rows, AblationRow{
		Name: "queue-lock release", A: "compare&swap (paper)", B: "swap-only (future work)",
		AUS: cas.ReleaseUS, BUS: swapOnly.ReleaseUS, Metric: "uncontended remote release time",
	})

	// NIC-assisted control traffic (§5 future work): the queuing lock's
	// weak spot — the uncontended release compare&swap round trip —
	// served by the host data server versus a polling NIC agent.
	hostRel, err := lockRunNIC(opts, false)
	if err != nil {
		return nil, fmt.Errorf("bench: ablate host lock: %w", err)
	}
	nicRel, err := lockRunNIC(opts, true)
	if err != nil {
		return nil, fmt.Errorf("bench: ablate nic lock: %w", err)
	}
	res.Rows = append(res.Rows, AblationRow{
		Name: "NIC-assisted atomics", A: "host data server", B: "NIC agent (§5)",
		AUS: hostRel.ReleaseUS, BUS: nicRel.ReleaseUS, Metric: "uncontended remote release time",
	})

	// Non-contiguous transfer: ARMCI's strided put moves a 2-D tile in
	// one message; the naive equivalent sends one put per row.
	strided, err := tileTime(opts, true)
	if err != nil {
		return nil, fmt.Errorf("bench: ablate strided: %w", err)
	}
	rowwise, err := tileTime(opts, false)
	if err != nil {
		return nil, fmt.Errorf("bench: ablate rowwise: %w", err)
	}
	res.Rows = append(res.Rows, AblationRow{
		Name: "tile transfer", A: "strided put (ARMCI)", B: "one put per row",
		AUS: strided, BUS: rowwise, Metric: "32x32-double tile put+fence",
	})

	// SMP co-location: with several ranks per node, the queuing lock's
	// hand-offs between co-located waiters touch no network at all.
	colocated, err := lockRunPPN(opts, 8, 4, armci.LockQueue)
	if err != nil {
		return nil, fmt.Errorf("bench: ablate colocated lock: %w", err)
	}
	spread, err := lockRunPPN(opts, 8, 1, armci.LockQueue)
	if err != nil {
		return nil, fmt.Errorf("bench: ablate spread lock: %w", err)
	}
	res.Rows = append(res.Rows, AblationRow{
		Name: "queue lock on SMP", A: "8 ranks on 2 nodes", B: "8 ranks on 8 nodes",
		AUS: colocated.TotalUS, BUS: spread.TotalUS, Metric: "lock request+release time",
	})
	return res, nil
}

// tileTime measures a 32x32 float64 tile update into a remote 64-wide
// matrix, strided versus row-by-row, fenced.
func tileTime(opts AblationOpts, strided bool) (float64, error) {
	const rows, rowBytes, ld = 32, 32 * 8, 64 * 8
	times := newPerRank(2, opts.Reps)
	_, err := armci.Run(opts.inject(armci.Options{
		Procs:  2,
		Fabric: opts.Fabric,
		Preset: opts.Preset,
	}), func(p *armci.Proc) {
		ptrs := p.Malloc(64 * 64 * 8)
		if p.Rank() == 0 {
			tile := make([]byte, rows*rowBytes)
			for rep := 0; rep < opts.Warmup+opts.Reps; rep++ {
				t0 := p.Now()
				if strided {
					p.PutStrided(ptrs[1], armci.Strided{
						Count:  []int{rowBytes, rows},
						Stride: []int64{ld},
					}, tile)
				} else {
					for r := 0; r < rows; r++ {
						p.Put(ptrs[1].Add(int64(r*ld)), tile[r*rowBytes:(r+1)*rowBytes])
					}
				}
				p.Fence(p.NodeOf(1))
				if rep >= opts.Warmup {
					times.add(0, us(p.Now()-t0))
				}
			}
		}
		p.Barrier()
	})
	if err != nil {
		return 0, err
	}
	return times.meanAll(), nil
}

// lockRunNIC measures the single-contender remote queuing lock with and
// without NIC-assisted control traffic.
func lockRunNIC(opts AblationOpts, nic bool) (LockSample, error) {
	iters := 60
	acq := newPerRank(2, iters)
	rel := newPerRank(2, iters)
	_, err := armci.Run(opts.inject(armci.Options{
		Procs:      2,
		Fabric:     opts.Fabric,
		Preset:     opts.Preset,
		NICAssist:  nic,
		NumMutexes: 1,
		LockHomes:  []int{0},
	}), func(p *armci.Proc) {
		if p.Rank() != 1 {
			return
		}
		mu := p.Mutex(0, armci.LockQueue)
		for i := 0; i < opts.Warmup+iters; i++ {
			t0 := p.Now()
			mu.Lock()
			t1 := p.Now()
			mu.Unlock()
			t2 := p.Now()
			if i >= opts.Warmup {
				acq.add(1, us(t1-t0))
				rel.add(1, us(t2-t1))
			}
		}
	})
	if err != nil {
		return LockSample{}, err
	}
	s := LockSample{AcquireUS: acq.meanAll(), ReleaseUS: rel.meanAll()}
	s.TotalUS = s.AcquireUS + s.ReleaseUS
	return s, nil
}

// lockRunPPN is the lock loop with a chosen processes-per-node packing.
func lockRunPPN(opts AblationOpts, procs, ppn int, alg armci.LockAlg) (LockSample, error) {
	iters := 60
	acq := newPerRank(procs, iters)
	rel := newPerRank(procs, iters)
	_, err := armci.Run(opts.inject(armci.Options{
		Procs:        procs,
		ProcsPerNode: ppn,
		Fabric:       opts.Fabric,
		Preset:       opts.Preset,
		NumMutexes:   1,
		LockHomes:    []int{0},
	}), func(p *armci.Proc) {
		mu := p.Mutex(0, alg)
		p.MPIBarrier()
		for i := 0; i < opts.Warmup+iters; i++ {
			t0 := p.Now()
			mu.Lock()
			t1 := p.Now()
			mu.Unlock()
			t2 := p.Now()
			if i >= opts.Warmup {
				acq.add(p.Rank(), us(t1-t0))
				rel.add(p.Rank(), us(t2-t1))
			}
		}
		p.MPIBarrier()
	})
	if err != nil {
		return LockSample{}, err
	}
	s := LockSample{AcquireUS: acq.meanAll(), ReleaseUS: rel.meanAll()}
	s.TotalUS = s.AcquireUS + s.ReleaseUS
	return s, nil
}

// barrierTime measures the combined barrier with the given stage-3
// pattern under an all-to-all write workload.
func barrierTime(opts AblationOpts, alg armci.BarrierAlg) (float64, error) {
	procs := opts.Procs
	times := newPerRank(procs, opts.Reps)
	_, err := armci.Run(opts.inject(armci.Options{
		Procs:      procs,
		Fabric:     opts.Fabric,
		Preset:     opts.Preset,
		BarrierAlg: alg,
	}), func(p *armci.Proc) {
		me := p.Rank()
		ptrs := p.Malloc(64)
		payload := make([]byte, 64)
		for rep := 0; rep < opts.Warmup+opts.Reps; rep++ {
			for q := 0; q < procs; q++ {
				if q != me {
					p.Put(ptrs[q], payload)
				}
			}
			p.MPIBarrier()
			t0 := p.Now()
			p.Barrier()
			dt := p.Now() - t0
			if rep >= opts.Warmup {
				times.add(me, us(dt))
			}
		}
	})
	if err != nil {
		return 0, err
	}
	return times.meanAll(), nil
}

// syncVariantTime measures a GA_Sync variant under a fence mode with the
// Figure 7 workload.
func syncVariantTime(opts AblationOpts, mode ga.SyncMode, fm armci.FenceMode) (float64, error) {
	procs := opts.Procs
	times := newPerRank(procs, opts.Reps)
	_, err := armci.Run(opts.inject(armci.Options{
		Procs:     procs,
		Fabric:    opts.Fabric,
		Preset:    opts.Preset,
		FenceMode: fm,
	}), func(p *armci.Proc) {
		a, err := ga.Create(p, "ablate", 128, 128)
		if err != nil {
			panic(err)
		}
		a.SetSyncMode(mode)
		me := p.Rank()
		patch := make([]float64, 16)
		for rep := 0; rep < opts.Warmup+opts.Reps; rep++ {
			for q := 0; q < procs; q++ {
				if q == me {
					continue
				}
				rlo, _, clo, _ := a.Distribution(q)
				a.Put(rlo, rlo+4, clo, clo+4, patch)
			}
			p.MPIBarrier()
			t0 := p.Now()
			a.Sync()
			dt := p.Now() - t0
			if rep >= opts.Warmup {
				times.add(me, us(dt))
			}
		}
	})
	if err != nil {
		return 0, err
	}
	return times.meanAll(), nil
}

// FormatAblations renders the ablation table.
func FormatAblations(r *AblationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablations (N=%d, %s fabric, %s model)\n",
		r.Opts.Procs, fabricName(r.Opts.Fabric), presetName(r.Opts.Preset))
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-22s %-24s %10.1f us   %-24s %10.1f us   (%s)\n",
			row.Name, row.A, row.AUS, row.B, row.BUS, row.Metric)
	}
	return b.String()
}
