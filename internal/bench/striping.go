package bench

import (
	"fmt"
	"math/rand"

	"armci"
)

// StripingOpts configures the multi-lock scaling extension: the paper
// evaluates a single hot lock; real Global Arrays applications stripe
// state over many locks, and the two algorithms scale differently —
// every hybrid operation still funnels through the home nodes' servers,
// while queuing-lock hand-offs spread across the whole fabric.
type StripingOpts struct {
	Opts
	// Procs is the cluster size (default 8).
	Procs int
	// LockCounts is the sweep over the number of locks (default 1,2,4,8).
	LockCounts []int
	// Iters is the number of lock/unlock pairs per process (default 100).
	Iters int
}

// StripingRow is one lock-count sample: mean time per lock/unlock pair.
type StripingRow struct {
	Locks            int
	HybridUS, MCSUS  float64
	ThroughputFactor float64 // HybridUS / MCSUS
}

// StripingResult is the sweep.
type StripingResult struct {
	Opts StripingOpts
	Rows []StripingRow
}

// Striping measures lock-striping scalability: each process performs
// Iters lock/unlock pairs on pseudo-randomly chosen locks (same sequence
// for both algorithms), locks homed round-robin across ranks.
func Striping(opts StripingOpts) (*StripingResult, error) {
	opts.Opts = opts.Opts.withDefaults()
	if opts.Procs <= 0 {
		opts.Procs = 8
	}
	if opts.LockCounts == nil {
		opts.LockCounts = []int{1, 2, 4, 8}
	}
	if opts.Iters <= 0 {
		opts.Iters = 100
	}
	res := &StripingResult{Opts: opts}
	for _, nLocks := range opts.LockCounts {
		hy, err := stripingRun(opts, nLocks, armci.LockHybrid)
		if err != nil {
			return nil, fmt.Errorf("bench: striping hybrid locks=%d: %w", nLocks, err)
		}
		mc, err := stripingRun(opts, nLocks, armci.LockQueue)
		if err != nil {
			return nil, fmt.Errorf("bench: striping queue locks=%d: %w", nLocks, err)
		}
		res.Rows = append(res.Rows, StripingRow{
			Locks: nLocks, HybridUS: hy, MCSUS: mc, ThroughputFactor: hy / mc,
		})
	}
	return res, nil
}

func stripingRun(opts StripingOpts, nLocks int, alg armci.LockAlg) (float64, error) {
	procs := opts.Procs
	times := newPerRank(procs, opts.Iters)
	_, err := armci.Run(opts.inject(armci.Options{
		Procs:      procs,
		Fabric:     opts.Fabric,
		Preset:     opts.Preset,
		NumMutexes: nLocks, // homed round-robin by default
	}), func(p *armci.Proc) {
		me := p.Rank()
		rng := rand.New(rand.NewSource(int64(me)*31 + 7))
		locks := make([]armci.Mutex, nLocks)
		for i := range locks {
			locks[i] = p.Mutex(i, alg)
		}
		p.MPIBarrier()
		for i := 0; i < opts.Warmup+opts.Iters; i++ {
			mu := locks[rng.Intn(nLocks)]
			t0 := p.Now()
			mu.Lock()
			mu.Unlock()
			dt := p.Now() - t0
			if i >= opts.Warmup {
				times.add(me, us(dt))
			}
		}
		p.MPIBarrier()
	})
	if err != nil {
		return 0, err
	}
	return times.meanAll(), nil
}

// CSVStriping renders the striping sweep as CSV.
func CSVStriping(r *StripingResult) string {
	out := "locks,hybrid_us,queue_us,factor\n"
	for _, row := range r.Rows {
		out += fmt.Sprintf("%d,%.3f,%.3f,%.4f\n",
			row.Locks, row.HybridUS, row.MCSUS, row.ThroughputFactor)
	}
	return out
}

// FormatStriping renders the extension table.
func FormatStriping(r *StripingResult) string {
	out := fmt.Sprintf("Lock striping (extension): %d procs, %d iters (%s fabric, %s model)\n",
		r.Opts.Procs, r.Opts.Iters, fabricName(r.Opts.Fabric), presetName(r.Opts.Preset))
	out += fmt.Sprintf("%8s %14s %14s %10s\n", "locks", "hybrid (us)", "queue (us)", "factor")
	for _, row := range r.Rows {
		out += fmt.Sprintf("%8d %14.1f %14.1f %10.2f\n",
			row.Locks, row.HybridUS, row.MCSUS, row.ThroughputFactor)
	}
	return out
}
