package bench

import (
	"fmt"

	"armci"
)

// LockOpts configures the lock experiments (Figures 8, 9 and 10).
type LockOpts struct {
	Opts
	// ProcCounts are the competing process counts (default 1,2,4,8,16).
	ProcCounts []int
	// Iters is the number of lock/unlock pairs each process performs
	// per run (default 200; the paper uses 10 000 on hardware).
	Iters int
	// Algorithms compared; default hybrid (current) vs queue (new).
	Current, New armci.LockAlg
}

// LockSample is one algorithm's timing at one process count, all in
// microseconds, averaged over all iterations of all competing processes.
type LockSample struct {
	// AcquireUS is the mean time to request and acquire (Figure 9).
	AcquireUS float64
	// ReleaseUS is the mean time to release (Figure 10).
	ReleaseUS float64
	// TotalUS is the mean request+release time (Figure 8a).
	TotalUS float64
}

// LockRow is one process count of the comparison.
type LockRow struct {
	Procs   int
	Current LockSample
	New     LockSample
	// Factor is Current.TotalUS / New.TotalUS — Figure 8(b).
	Factor float64
}

// LockResult is the full sweep.
type LockResult struct {
	Opts LockOpts
	Rows []LockRow
}

// Lock reproduces the lock evaluation (§4.2): every process repeatedly
// requests and releases a lock located at process 0, the acquire and
// release phases are timed separately, and the times are averaged over
// all iterations and processes. For the single-process point the paper
// averages a local-lock case and a remote-lock case; we do the same by
// running a two-node cluster in which only one process exercises the
// lock, homed first on its own node and then on the other.
func Lock(opts LockOpts) (*LockResult, error) {
	opts.Opts = opts.Opts.withDefaults()
	if opts.ProcCounts == nil {
		opts.ProcCounts = []int{1, 2, 4, 8, 16}
	}
	if opts.Iters <= 0 {
		opts.Iters = 200
	}
	if opts.Current == opts.New {
		opts.Current, opts.New = armci.LockHybrid, armci.LockQueue
	}
	res := &LockResult{Opts: opts}
	for _, n := range opts.ProcCounts {
		cur, err := lockSample(opts, n, opts.Current)
		if err != nil {
			return nil, fmt.Errorf("bench: lock %v N=%d: %w", opts.Current, n, err)
		}
		nw, err := lockSample(opts, n, opts.New)
		if err != nil {
			return nil, fmt.Errorf("bench: lock %v N=%d: %w", opts.New, n, err)
		}
		res.Rows = append(res.Rows, LockRow{
			Procs: n, Current: cur, New: nw, Factor: cur.TotalUS / nw.TotalUS,
		})
	}
	return res, nil
}

// lockSample measures one algorithm at one competing-process count.
func lockSample(opts LockOpts, procs int, alg armci.LockAlg) (LockSample, error) {
	if procs == 1 {
		// Average of the local-lock and remote-lock single-process cases.
		local, err := lockRun(opts, 2, 0, alg) // contender rank 0, lock at 0
		if err != nil {
			return LockSample{}, err
		}
		remote, err := lockRun(opts, 2, 1, alg) // contender rank 1, lock at 0
		if err != nil {
			return LockSample{}, err
		}
		return LockSample{
			AcquireUS: (local.AcquireUS + remote.AcquireUS) / 2,
			ReleaseUS: (local.ReleaseUS + remote.ReleaseUS) / 2,
			TotalUS:   (local.TotalUS + remote.TotalUS) / 2,
		}, nil
	}
	return lockRun(opts, procs, -1, alg)
}

// lockRun executes the loop on a cluster of `procs` ranks. When only ==
// -1 every rank contends; otherwise only that rank does. The lock is
// always homed at rank 0.
func lockRun(opts LockOpts, procs, only int, alg armci.LockAlg) (LockSample, error) {
	acq := newPerRank(procs, opts.Iters)
	rel := newPerRank(procs, opts.Iters)
	_, err := armci.Run(opts.inject(armci.Options{
		Procs:      procs,
		Fabric:     opts.Fabric,
		Preset:     opts.Preset,
		NumMutexes: 1,
		LockHomes:  []int{0},
	}), func(p *armci.Proc) {
		me := p.Rank()
		mu := p.Mutex(0, alg)
		participate := only == -1 || me == only
		p.MPIBarrier()
		if participate {
			for i := 0; i < opts.Warmup+opts.Iters; i++ {
				t0 := p.Now()
				mu.Lock()
				t1 := p.Now()
				mu.Unlock()
				t2 := p.Now()
				if i >= opts.Warmup {
					acq.add(me, us(t1-t0))
					rel.add(me, us(t2-t1))
				}
			}
		}
		p.MPIBarrier()
	})
	if err != nil {
		return LockSample{}, err
	}
	s := LockSample{AcquireUS: acq.meanAll(), ReleaseUS: rel.meanAll()}
	s.TotalUS = s.AcquireUS + s.ReleaseUS
	return s, nil
}
