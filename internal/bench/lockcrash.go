package bench

import (
	"fmt"
	"time"

	"armci"
	"armci/internal/trace"
)

// LockCrashOpts configures the holder-crash recovery experiment: a
// cluster of ranks contends on one lease lock, one rank fail-stops
// while holding it, and the survivors' lease-expiry repair puts the
// lock back in service. The experiment reports the steady-state
// hand-off latency next to the crash-recovery latency, so the cost of
// surviving a holder crash is a number, not a claim.
type LockCrashOpts struct {
	Opts
	// Procs is the number of competing ranks (default 64).
	Procs int
	// PPN is how many consecutive ranks share a node (default 8).
	PPN int
	// Iters is the number of critical sections each rank runs
	// (default 3).
	Iters int
	// TTL is the lease TTL (default 2ms). It must comfortably exceed a
	// congested critical section at this contention level, or waiters
	// depose live holders and the run is rejected (repairs != 1).
	TTL time.Duration
	// Victim is the rank that fail-stops (default 1).
	Victim int
	// CrashAcquire is the victim's fatal acquire, 1-based (default 1).
	CrashAcquire int
}

// LockCrashResult is the outcome of one recovery run.
type LockCrashResult struct {
	Opts LockCrashOpts
	// HandoffUS is the mean crash-free release-to-next-acquire gap in
	// microseconds, measured over Handoffs hand-offs (the window
	// spanning the crash and its repair is excluded).
	HandoffUS float64
	Handoffs  int
	// RecoveryUS is the gap from the victim's fail-stop to the first
	// post-repair acquire: TTL expiry, the depose CAS, and the grant.
	RecoveryUS float64
	// Repairs counts OpRepair events; the run is rejected unless it is
	// exactly 1 (one crash, one winning depose).
	Repairs int
}

// LockCrash runs the experiment on the simulated fabric: every rank —
// the victim included — loops lock / increment a counter homed at rank
// 0 / unlock; the victim dies inside its designated acquire while
// holding the lock. The metrics come from the captured op-event
// history, so both numbers are deterministic virtual times.
func LockCrash(opts LockCrashOpts) (*LockCrashResult, error) {
	opts.Opts = opts.Opts.withDefaults()
	if opts.Fabric != armci.FabricSim {
		return nil, fmt.Errorf("bench: lockcrash measures deterministic virtual times; run it on the sim fabric, not %s", opts.Fabric)
	}
	if opts.Procs <= 0 {
		opts.Procs = 64
	}
	if opts.PPN <= 0 {
		opts.PPN = 8
	}
	if opts.Iters <= 0 {
		opts.Iters = 3
	}
	if opts.TTL <= 0 {
		opts.TTL = 2 * time.Millisecond
	}
	if opts.Victim <= 0 {
		opts.Victim = 1
	}
	if opts.CrashAcquire <= 0 {
		opts.CrashAcquire = 1
	}
	if opts.Victim >= opts.Procs {
		return nil, fmt.Errorf("bench: lockcrash victim rank %d out of range for %d procs", opts.Victim, opts.Procs)
	}
	faults := opts.Faults
	faults.CrashHeldRank = opts.Victim
	faults.CrashHeldAcquire = opts.CrashAcquire

	victimIters := opts.Iters
	if opts.CrashAcquire <= opts.Iters {
		victimIters = opts.CrashAcquire - 1
	}
	rep, err := armci.Run(armci.Options{
		Procs:        opts.Procs,
		ProcsPerNode: opts.PPN,
		Fabric:       armci.FabricSim,
		Preset:       opts.Preset,
		NumMutexes:   1,
		ScheduleSeed: 1,
		CaptureTrace: true,
		LeaseTTL:     opts.TTL,
		Faults:       faults,
		Metrics:      opts.Metrics,
	}, func(p *armci.Proc) {
		me, n := p.Rank(), p.Size()
		counter := p.MallocWords(1)[0] // rank 0's cell
		mu := p.Mutex(0, armci.LockLease)
		node0 := p.NodeOf(0)
		for i := 0; i < opts.Iters; i++ {
			mu.Lock() // the victim dies in here at its designated acquire
			p.Store(counter, p.Load(counter)+1)
			if node0 != p.MyNode() {
				p.Fence(node0)
			}
			mu.Unlock()
		}
		if me != 0 {
			return
		}
		// Survivors fence their increments before releasing; wait until
		// the last one lands so the history below is complete.
		want := int64((n-1)*opts.Iters + victimIters)
		p.Env().WaitUntilFor("lockcrash-counter", func() bool {
			return p.Load(counter) >= want
		}, time.Second)
	})
	if err != nil {
		return nil, fmt.Errorf("bench: lockcrash run: %w", err)
	}

	res := &LockCrashResult{Opts: opts}
	var (
		crashAt     time.Duration
		crashSeen   bool
		recovered   bool
		lastRelease time.Duration
		haveRelease bool
		hazard      bool // a crash or repair happened since lastRelease
		handoffSum  float64
	)
	for _, e := range rep.Stats.OpEvents() {
		switch e.Kind {
		case trace.OpCrash:
			crashSeen, crashAt = true, e.Time
			hazard = true
		case trace.OpRepair:
			res.Repairs++
			hazard = true
		case trace.OpRelease:
			if e.Lock == 0 {
				lastRelease, haveRelease, hazard = e.Time, true, false
			}
		case trace.OpAcquire:
			if e.Lock != 0 {
				continue
			}
			if crashSeen && !recovered {
				recovered = true
				res.RecoveryUS = us(e.Time - crashAt)
			} else if haveRelease && !hazard {
				handoffSum += us(e.Time - lastRelease)
				res.Handoffs++
			}
		}
	}
	if !crashSeen {
		return nil, fmt.Errorf("bench: lockcrash run recorded no fail-stop; the crashheld plan did not fire")
	}
	if res.Repairs != 1 {
		return nil, fmt.Errorf("bench: lockcrash run recorded %d repairs, want exactly 1", res.Repairs)
	}
	if !recovered || res.Handoffs == 0 {
		return nil, fmt.Errorf("bench: lockcrash history too sparse (recovered=%v, %d hand-offs)", recovered, res.Handoffs)
	}
	res.HandoffUS = handoffSum / float64(res.Handoffs)
	return res, nil
}
