// Baseline mode: a machine-readable snapshot of the repo's performance
// (BENCH_<n>.json) and the comparison gate that fails the build when a
// tracked metric regresses past its tolerance. The snapshot mixes two
// metric classes:
//
//   - deterministic metrics — simulated virtual times of the paper's
//     figures, allocation counts of the pooled hot paths, the protocol
//     event count of a fixed conformance sweep. These are exactly
//     reproducible, carry the tight default tolerance, and are the only
//     metrics a quick (CI) comparison judges.
//   - noisy metrics — wall-clock ns/op of the hot-path benchmarks and
//     the sweep's wall time. Machine-dependent; recorded for trend
//     analysis and judged only in full mode, with a wide tolerance.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"armci"
	"armci/internal/check"
	"armci/internal/cluster"
	"armci/internal/model"
	"armci/internal/msg"
	"armci/internal/pipeline"
	"armci/internal/sim"
	"armci/internal/trace"
)

// BaselineSchema is the BENCH_*.json schema version.
const BaselineSchema = 1

// Default tolerances: a deterministic metric fails the gate past 15%
// (the repo's regression budget); a noisy one only past 60%, and only
// in full mode. defaultAbs shields near-zero bases (0 allocs/op) from
// meaningless relative math: the delta must also exceed it.
const (
	defaultTol = 0.15
	noisyTol   = 0.60
	defaultAbs = 0.75
)

// Metric is one tracked value in a baseline.
type Metric struct {
	// Value is the measurement (lower is better for every metric).
	Value float64 `json:"value"`
	// Unit is a display unit: "us", "ns/op", "allocs/op", "events",
	// "ms".
	Unit string `json:"unit"`
	// Tol is the relative regression budget (0.15 = +15% fails).
	Tol float64 `json:"tol"`
	// Abs is the absolute slack: a regression must exceed both Tol
	// relatively and Abs absolutely. Keeps 0-alloc budgets comparable.
	Abs float64 `json:"abs"`
	// Noisy marks wall-clock metrics, which only full comparisons judge.
	Noisy bool `json:"noisy,omitempty"`
}

// Baseline is the BENCH_<n>.json document.
type Baseline struct {
	Schema  int               `json:"schema"`
	Created string            `json:"created,omitempty"`
	Commit  string            `json:"commit,omitempty"`
	Go      string            `json:"go"`
	Preset  string            `json:"preset"`
	Metrics map[string]Metric `json:"metrics"`
}

// BaselineOpts configures a collection run.
type BaselineOpts struct {
	// Handicap inflates every time-valued metric by the given fraction
	// (0.2 = +20%) after collection. Test hook: it synthesizes the
	// slowdown the comparison gate exists to catch, proving the gate
	// fails when performance regresses. Also reachable via the
	// ARMCI_BENCH_HANDICAP environment variable in cmd/armci-bench.
	Handicap float64
	// Commit is recorded verbatim in the document (typically the git
	// revision, resolved by the caller).
	Commit string
}

// CollectBaseline measures every tracked metric and assembles the
// document.
func CollectBaseline(opts BaselineOpts) (*Baseline, error) {
	b := &Baseline{
		Schema:  BaselineSchema,
		Created: time.Now().UTC().Format(time.RFC3339),
		Commit:  opts.Commit,
		Go:      runtime.Version(),
		Preset:  string(armci.PresetMyrinet2000),
		Metrics: map[string]Metric{},
	}
	det := func(name string, v float64, unit string) {
		b.Metrics[name] = Metric{Value: v, Unit: unit, Tol: defaultTol, Abs: defaultAbs}
	}
	noisy := func(name string, v float64, unit string) {
		b.Metrics[name] = Metric{Value: v, Unit: unit, Tol: noisyTol, Abs: defaultAbs, Noisy: true}
	}

	// Figure 7: GA_Sync virtual time, old and new, per cluster size.
	f7, err := Fig7(Fig7Opts{ProcCounts: []int{2, 4, 8, 16}})
	if err != nil {
		return nil, fmt.Errorf("bench: baseline fig7: %w", err)
	}
	for _, row := range f7.Rows {
		det(fmt.Sprintf("fig7/old/p%d", row.Procs), row.OldUS, "us")
		det(fmt.Sprintf("fig7/new/p%d", row.Procs), row.NewUS, "us")
	}

	// Figure 8: lock request+release virtual time, hybrid and queue.
	lk, err := Lock(LockOpts{ProcCounts: []int{2, 4, 8}, Iters: 100})
	if err != nil {
		return nil, fmt.Errorf("bench: baseline lock: %w", err)
	}
	for _, row := range lk.Rows {
		det(fmt.Sprintf("fig8/hybrid/p%d", row.Procs), row.Current.TotalUS, "us")
		det(fmt.Sprintf("fig8/queue/p%d", row.Procs), row.New.TotalUS, "us")
	}

	// Sustained small-put throughput, coalescing off and on. The ratio
	// metric is in percent (coalesced time as % of uncoalesced) so the
	// absolute slack defaultAbs=0.75 stays negligible against it; the
	// collection itself enforces the structural >=2x win — a baseline
	// recording a lost speedup must never be writable.
	sp, err := SmallPut(SmallPutOpts{})
	if err != nil {
		return nil, fmt.Errorf("bench: baseline smallput: %w", err)
	}
	det("smallput/uncoalesced/us", sp.UncoalescedUS, "us")
	det("smallput/coalesced/us", sp.CoalescedUS, "us")
	ratioPct := 100 * sp.CoalescedUS / sp.UncoalescedUS
	det("smallput/ratio_pct", ratioPct, "pct")
	if ratioPct > 50 {
		return nil, fmt.Errorf("bench: coalescing speedup degraded to %.2fx (ratio %.1f%%), below the structural 2x floor",
			sp.Factor, ratioPct)
	}

	// Large-N barrier crossover: one combined barrier per algorithm at
	// cluster sizes up to 1024 ranks (the CLI sweep goes to 4096; the
	// 4096 point costs a minute of simulation, too heavy for a gate
	// that also runs under go test). Every point is a deterministic
	// virtual time. The structural floor mirrors the sweep's headline
	// claim: at N >= 1024 the hierarchical barrier with the NIC-offload
	// fence must beat the flat dissemination exchange — a baseline
	// recording a lost topology win must never be writable.
	xn, err := CrossoverN(CrossoverNOpts{NValues: []int{64, 256, 1024}})
	if err != nil {
		return nil, fmt.Errorf("bench: baseline crossover-n: %w", err)
	}
	for _, row := range xn.Rows {
		for i, v := range xn.Variants {
			det(fmt.Sprintf("crossover/%s/n%d/us", v.Name, row.N), row.US[i], "us")
		}
		if row.N >= 1024 {
			hier := xn.VariantUS(row, "hier-nicfence")
			diss := xn.VariantUS(row, "dissemination")
			if hier >= diss {
				return nil, fmt.Errorf("bench: hierarchical+NIC barrier lost to dissemination at N=%d (%.1fus >= %.1fus), below the structural crossover floor",
					row.N, hier, diss)
			}
		}
	}

	// Holder-crash recovery: crash-free hand-off vs crash-recovery
	// latency of the lease lock, both deterministic virtual times.
	lc, err := LockCrash(LockCrashOpts{})
	if err != nil {
		return nil, fmt.Errorf("bench: baseline lockcrash: %w", err)
	}
	det("lockcrash/handoff/us", lc.HandoffUS, "us")
	det("lockcrash/recovery/us", lc.RecoveryUS, "us")

	// Elastic recovery: the kill-one-rank recovery latency and the
	// steady-state replication overhead (percent premium of streaming
	// dirty-page deltas every sync epoch), both deterministic virtual
	// values; the experiment itself rejects any run whose fingerprint
	// diverges from the pure-replay oracle.
	el, err := Elastic(ElasticOpts{})
	if err != nil {
		return nil, fmt.Errorf("bench: baseline elastic: %w", err)
	}
	det("elastic/recovery/us", el.RecoveryUS, "us")
	det("elastic/repl_overhead_pct", el.OverheadPct, "pct")

	// Named workloads: deterministic virtual makespan and wire totals of
	// each scenario kind at its default shape, so a protocol change that
	// slows a whole communication pattern — not just one primitive — is
	// caught.
	wl, err := Workloads(WorkloadsOpts{})
	if err != nil {
		return nil, fmt.Errorf("bench: baseline workloads: %w", err)
	}
	for _, row := range wl.Rows {
		det("workload/"+row.Spec+"/us", row.US, "us")
		det("workload/"+row.Spec+"/sends", float64(row.Sends), "sends")
	}

	// Conformance sweep: a fixed 160-case matrix. The protocol event
	// count is deterministic; the wall time is the throughput trend.
	cases := check.Matrix([]armci.FabricKind{armci.FabricSim}, nil,
		[]string{"queue", "hybrid", "ticket", "queue-nocas", "lease"},
		[]string{"barrier", "sync-old"}, nil, 6, 2, 1, 16)
	start := time.Now()
	sweep := check.RunAllParallel(cases, 0, nil)
	wall := time.Since(start)
	if len(sweep.Violations) > 0 || len(sweep.Errs) > 0 || sweep.Panics > 0 {
		return nil, fmt.Errorf("bench: baseline sweep not clean: %d violations, %d errors, %d panics",
			len(sweep.Violations), len(sweep.Errs), sweep.Panics)
	}
	det("explore/cases", float64(sweep.Cases), "cases")
	det("explore/events", float64(sweep.Events), "events")
	noisy("explore/wall", float64(wall)/float64(time.Millisecond), "ms")

	// Workload sweep: the four named workloads through the harness
	// matrix. The event count pins the generated programs — a grammar or
	// generator change that alters them moves this number.
	wcases := check.Matrix([]armci.FabricKind{armci.FabricSim},
		[]string{"stencil", "paramserver", "prodcons", "mixed"}, nil,
		[]string{"barrier", "sync-old"}, nil, 6, 2, 1, 8)
	wsweep := check.RunAllParallel(wcases, 0, nil)
	if len(wsweep.Violations) > 0 || len(wsweep.Errs) > 0 || wsweep.Panics > 0 {
		return nil, fmt.Errorf("bench: baseline workload sweep not clean: %d violations, %d errors, %d panics",
			len(wsweep.Violations), len(wsweep.Errs), wsweep.Panics)
	}
	det("explore/workloads/cases", float64(wsweep.Cases), "cases")
	det("explore/workloads/events", float64(wsweep.Events), "events")

	// Hot-path micro-benchmarks: ns/op is noisy, allocs/op is exact.
	kernel := testing.Benchmark(benchKernelSchedule)
	noisy("hotpath/kernel_schedule/ns_op", float64(kernel.NsPerOp()), "ns/op")
	det("hotpath/kernel_schedule/allocs_op", float64(kernel.AllocsPerOp()), "allocs/op")

	pipe := testing.Benchmark(benchPipelineSendRecv)
	noisy("hotpath/pipeline_sendrecv/ns_op", float64(pipe.NsPerOp()), "ns/op")
	det("hotpath/pipeline_sendrecv/allocs_op", float64(pipe.AllocsPerOp()), "allocs/op")

	cb := testing.Benchmark(benchExploreCase)
	noisy("hotpath/explore_case/ns_op", float64(cb.NsPerOp()), "ns/op")

	sess := testing.Benchmark(benchSessionSend)
	noisy("hotpath/procnet_send/ns_op", float64(sess.NsPerOp()), "ns/op")

	if opts.Handicap > 0 {
		h := 1 + opts.Handicap
		for name, m := range b.Metrics {
			switch m.Unit {
			case "us", "ms", "ns/op":
				m.Value *= h
				b.Metrics[name] = m
			}
		}
	}
	return b, nil
}

// benchKernelSchedule mirrors sim.BenchmarkKernelSchedule: one Sleep per
// iteration through the pooled event heap.
func benchKernelSchedule(b *testing.B) {
	b.ReportAllocs()
	k := sim.New()
	k.Spawn("sleeper", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	if err := k.Run(0); err != nil {
		b.Fatal(err)
	}
}

// benchPipelineSendRecv mirrors pipeline.BenchmarkPipelineSendRecv: one
// message through SendTo plus Inbound.
func benchPipelineSendRecv(b *testing.B) {
	b.ReportAllocs()
	p := pipeline.New(pipeline.Config{Params: model.Myrinet2000(), ChargeModel: true, Stats: trace.New()})
	src, dst := msg.User(0), msg.User(1)
	var now time.Duration
	clock := func() time.Duration { return now }
	m := &msg.Message{Kind: msg.KindSend}
	emit := func(d pipeline.Delivery) {
		if !p.Inbound(d.Msg, d.At) {
			b.Fatal("delivery suppressed with no faults configured")
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += time.Microsecond
		if err := p.SendTo(src, dst, m, clock, nil, emit); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSessionSend mirrors cluster.BenchmarkSessionSend: the procnet
// hot path — encode one small message into the session's reused frame
// buffer and ship it through the coordinator star to the peer worker.
// Only the noisy ns/op is tracked: allocs/op would also count whatever
// slice the concurrent receive side happens to allocate inside the
// timing window, which is not deterministic.
func benchSessionSend(b *testing.B) {
	const cookie = 1
	co, err := cluster.NewCoordinator(cluster.Config{Procs: 2, Cookie: cookie})
	if err != nil {
		b.Fatalf("NewCoordinator: %v", err)
	}
	defer co.Close()
	env := func(node int) cluster.WorkerEnv {
		return cluster.WorkerEnv{Addr: co.Addr(), Node: node, Procs: 2, ProcsPerNode: 1, Cookie: cookie}
	}
	var received atomic.Int64
	sessions := make([]*cluster.Session, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for node := 0; node < 2; node++ {
		var h cluster.Handlers
		if node == 1 {
			h.Data = func([]byte) { received.Add(1) }
		}
		wg.Add(1)
		go func(node int, h cluster.Handlers) {
			defer wg.Done()
			sessions[node], errs[node] = cluster.Join(env(node), h)
		}(node, h)
	}
	wg.Wait()
	for node, jerr := range errs {
		if jerr != nil {
			b.Fatalf("join node %d: %v", node, jerr)
		}
		defer sessions[node].Close()
	}

	m := &msg.Message{Kind: msg.KindPut, Src: msg.User(0), Dst: msg.User(1), Data: make([]byte, 64)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Seq = uint64(i + 1)
		if serr := sessions[0].SendMsg(m); serr != nil {
			b.Fatalf("SendMsg: %v", serr)
		}
	}
	b.StopTimer()
	// Drain before teardown so the coordinator is not mid-route when the
	// connections drop.
	deadline := time.Now().Add(10 * time.Second)
	for received.Load() < int64(b.N) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
}

// benchExploreCase mirrors check.BenchmarkExploreCase: one full
// conformance case per iteration.
func benchExploreCase(b *testing.B) {
	c := check.Case{Fabric: armci.FabricSim, Alg: "queue", Seed: 1}
	for i := 0; i < b.N; i++ {
		if r := check.RunCase(c); !r.Passed() {
			b.Fatalf("baseline case failed: %+v", r)
		}
	}
}

// Regression is one metric that moved past its budget.
type Regression struct {
	Name string
	// Base and Cur are the baseline and current values.
	Base, Cur float64
	Unit      string
	// Rel is Cur/Base - 1 (meaningless when Base is 0; see Abs).
	Rel float64
}

func (r Regression) String() string {
	if r.Base == 0 {
		return fmt.Sprintf("%s: %.3g -> %.3g %s", r.Name, r.Base, r.Cur, r.Unit)
	}
	return fmt.Sprintf("%s: %.4g -> %.4g %s (%+.1f%%)", r.Name, r.Base, r.Cur, r.Unit, 100*r.Rel)
}

// CompareBaselines judges current against base: every metric tracked by
// base must exist in current and stay within its budget. quick skips
// noisy metrics. missing lists baseline metrics current no longer
// reports — also a gate failure (a silently dropped metric is how
// regressions go unwatched).
func CompareBaselines(base, current *Baseline, quick bool) (regressions []Regression, missing []string) {
	names := make([]string, 0, len(base.Metrics))
	for name := range base.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bm := base.Metrics[name]
		if quick && bm.Noisy {
			continue
		}
		cm, ok := current.Metrics[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		tol, abs := bm.Tol, bm.Abs
		if tol <= 0 {
			tol = defaultTol
		}
		if abs <= 0 {
			abs = defaultAbs
		}
		delta := cm.Value - bm.Value
		if delta <= abs {
			continue
		}
		if bm.Value > 0 && delta <= tol*bm.Value {
			continue
		}
		rel := 0.0
		if bm.Value > 0 {
			rel = delta / bm.Value
		}
		regressions = append(regressions, Regression{
			Name: name, Base: bm.Value, Cur: cm.Value, Unit: bm.Unit, Rel: rel,
		})
	}
	return regressions, missing
}

// WriteBaseline marshals the document to path.
func WriteBaseline(b *Baseline, path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBaseline loads a BENCH_*.json document.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if b.Schema != BaselineSchema {
		return nil, fmt.Errorf("bench: %s has schema %d, this build understands %d", path, b.Schema, BaselineSchema)
	}
	if len(b.Metrics) == 0 {
		return nil, fmt.Errorf("bench: %s tracks no metrics", path)
	}
	return &b, nil
}
