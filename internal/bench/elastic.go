package bench

import (
	"fmt"
	"strings"

	"armci"
	"armci/internal/elastic"
)

// ElasticOpts configures the elastic-recovery experiment: the
// replicated workload of internal/elastic runs three times on the
// simulated fabric — without replication, with replication, and with
// replication plus a mid-epoch crash — so both costs of the subsystem
// are numbers: the steady-state overhead of streaming dirty-page deltas
// every sync epoch, and the latency of turning a rank crash into a
// recovery.
type ElasticOpts struct {
	Opts
	// Procs is the cluster size (default 8).
	Procs int
	// PPN is how many consecutive ranks share a node (default 1 — the
	// shape the real -elastic launch pins).
	PPN int
	// Steps is the number of sync epochs (default 6).
	Steps int
	// Seed varies the operation mix (default 1).
	Seed int64
	// CrashRank/CrashStep select the injected crash for the recovery
	// run (defaults 1 and Steps/2; the base and replication runs are
	// always crash-free).
	CrashRank int
	CrashStep int
}

// ElasticResult is the experiment outcome. All times are deterministic
// virtual microseconds.
type ElasticResult struct {
	Opts ElasticOpts
	// BaseUS is the crash-free makespan without replication.
	BaseUS float64
	// ReplUS is the crash-free makespan with replication; OverheadPct
	// is the replication premium, 100*(ReplUS-BaseUS)/BaseUS.
	ReplUS      float64
	OverheadPct float64
	// RecoveryUS is the slowest rank's span inside the recovery
	// protocol of the crash run: crash detection, rollback or replica
	// restore, and the full re-establish checkpoint.
	RecoveryUS float64
	// Fingerprint is the cluster digest every run converged to — the
	// collection rejects any run that diverges from the pure-replay
	// oracle, so a benchmark over a corrupt recovery cannot exist.
	Fingerprint uint64
}

// Elastic runs the experiment. Every run's cluster fingerprint is
// checked against the pure-replay oracle before any time is reported.
func Elastic(opts ElasticOpts) (*ElasticResult, error) {
	opts.Opts = opts.Opts.withDefaults()
	if opts.Fabric != armci.FabricSim {
		return nil, fmt.Errorf("bench: elastic measures deterministic virtual times; run it on the sim fabric, not %s", opts.Fabric)
	}
	if opts.Procs <= 0 {
		opts.Procs = 8
	}
	if opts.PPN <= 0 {
		opts.PPN = 1
	}
	if opts.Steps <= 0 {
		opts.Steps = 6
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.CrashRank <= 0 {
		opts.CrashRank = 1
	}
	if opts.CrashStep <= 0 {
		opts.CrashStep = (opts.Steps + 1) / 2
	}
	if opts.CrashStep > opts.Steps || opts.CrashRank >= opts.Procs {
		return nil, fmt.Errorf("bench: elastic crash rank %d at epoch %d out of range for %d procs x %d steps",
			opts.CrashRank, opts.CrashStep, opts.Procs, opts.Steps)
	}
	res := &ElasticResult{Opts: opts}
	want := elastic.Oracle(elastic.Config{Steps: opts.Steps, Seed: opts.Seed}, opts.Procs)
	res.Fingerprint = want

	run := func(cfg elastic.Config) (makespanUS, recoveryUS float64, err error) {
		times := newPerRank(opts.Procs, 2)
		_, err = armci.Run(opts.inject(armci.Options{
			Procs:        opts.Procs,
			ProcsPerNode: opts.PPN,
			Fabric:       armci.FabricSim,
			Preset:       opts.Preset,
			ScheduleSeed: opts.Seed,
		}), func(p *armci.Proc) {
			// Absorb start-up skew so the makespan is the workload's own.
			p.MPIBarrier()
			t0 := p.Now()
			r := elastic.Run(p, cfg)
			times.add(p.Rank(), us(p.Now()-t0))
			times.add(p.Rank(), us(r.RecoveryTime))
			if r.Fingerprint != want {
				panic(fmt.Sprintf("bench: elastic rank %d fingerprint 0x%016x diverges from the pure-replay oracle 0x%016x",
					p.Rank(), r.Fingerprint, want))
			}
		})
		if err != nil {
			return 0, 0, err
		}
		for _, row := range times.vals {
			makespanUS = max(makespanUS, row[0])
			recoveryUS = max(recoveryUS, row[1])
		}
		return makespanUS, recoveryUS, nil
	}

	base := elastic.Config{Steps: opts.Steps, Seed: opts.Seed, NoRepl: true}
	var err error
	if res.BaseUS, _, err = run(base); err != nil {
		return nil, fmt.Errorf("bench: elastic base run: %w", err)
	}
	repl := elastic.Config{Steps: opts.Steps, Seed: opts.Seed}
	if res.ReplUS, _, err = run(repl); err != nil {
		return nil, fmt.Errorf("bench: elastic replication run: %w", err)
	}
	crash := elastic.Config{Steps: opts.Steps, Seed: opts.Seed,
		CrashRank: opts.CrashRank, CrashStep: opts.CrashStep}
	if _, res.RecoveryUS, err = run(crash); err != nil {
		return nil, fmt.Errorf("bench: elastic crash run: %w", err)
	}
	if res.RecoveryUS <= 0 {
		return nil, fmt.Errorf("bench: elastic crash run reported no recovery span")
	}
	res.OverheadPct = 100 * (res.ReplUS - res.BaseUS) / res.BaseUS
	return res, nil
}

// FormatElastic renders the experiment table.
func FormatElastic(r *ElasticResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Elastic recovery: replication overhead and crash-recovery latency (%d procs, ppn %d, %d epochs, %s model)\n",
		r.Opts.Procs, r.Opts.PPN, r.Opts.Steps, presetName(r.Opts.Preset))
	fmt.Fprintf(&b, "%-34s %12.1f us\n", "crash-free makespan, no replication", r.BaseUS)
	fmt.Fprintf(&b, "%-34s %12.1f us  (+%.1f%%)\n", "crash-free makespan, replicated", r.ReplUS, r.OverheadPct)
	fmt.Fprintf(&b, "%-34s %12.1f us  (rank %d killed at epoch %d)\n", "crash-recovery span", r.RecoveryUS,
		r.Opts.CrashRank, r.Opts.CrashStep)
	fmt.Fprintf(&b, "cluster fingerprint 0x%016x on every run (matches the pure-replay oracle)\n", r.Fingerprint)
	return b.String()
}
