package bench

import (
	"fmt"
	"strings"

	"armci"
	"armci/internal/workload"
)

// WorkloadsOpts configures the named-workload experiment: each spec from
// the internal/workload grammar runs once on the simulated fabric and
// its virtual makespan is reported, so the cost of a whole communication
// pattern — not just one primitive — is a tracked number.
type WorkloadsOpts struct {
	Opts
	// Specs are the workload spec strings to run (default: the four
	// kinds at their default shapes).
	Specs []string
	// Procs is the cluster size (default 6).
	Procs int
	// PPN is how many consecutive ranks share a node (default 2).
	PPN int
	// Seed is the schedule-shuffle and generator seed (default 1).
	Seed int64
}

// WorkloadRow is one workload's outcome.
type WorkloadRow struct {
	// Spec is the canonical spec string (workload.Format).
	Spec string
	// US is the virtual makespan in microseconds: the slowest rank's
	// time from the opening barrier to body completion, oracle
	// verification included. Deterministic on the sim fabric.
	US float64
	// Sends and Bytes are the run's wire totals.
	Sends int
	Bytes int64
}

// WorkloadsResult is the full experiment.
type WorkloadsResult struct {
	Opts WorkloadsOpts
	Rows []WorkloadRow
}

// Workloads runs each spec on the simulated fabric with the oracle armed
// (a report panics the run — a benchmark over a silently corrupt run
// would be worthless) and measures its virtual makespan and wire totals.
func Workloads(opts WorkloadsOpts) (*WorkloadsResult, error) {
	opts.Opts = opts.Opts.withDefaults()
	if opts.Fabric != armci.FabricSim {
		return nil, fmt.Errorf("bench: workloads measures deterministic virtual times; run it on the sim fabric, not %s", opts.Fabric)
	}
	if opts.Specs == nil {
		opts.Specs = []string{"stencil", "paramserver", "prodcons", "mixed"}
	}
	if opts.Procs <= 0 {
		opts.Procs = 6
	}
	if opts.PPN <= 0 {
		opts.PPN = 2
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	res := &WorkloadsResult{Opts: opts}
	for _, spec := range opts.Specs {
		sp, err := workload.Parse(spec)
		if err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
		if err := sp.ValidateFor(opts.Procs); err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
		body := workload.Build(sp, workload.Config{Seed: opts.Seed})
		times := newPerRank(opts.Procs, 1)
		rep, err := armci.Run(opts.inject(armci.Options{
			Procs:        opts.Procs,
			ProcsPerNode: opts.PPN,
			Fabric:       armci.FabricSim,
			Preset:       opts.Preset,
			ScheduleSeed: opts.Seed,
		}), func(p *armci.Proc) {
			// Absorb start-up skew so the makespan is the workload's own.
			p.MPIBarrier()
			t0 := p.Now()
			body(p)
			times.add(p.Rank(), us(p.Now()-t0))
		})
		if err != nil {
			return nil, fmt.Errorf("bench: workload %q: %w", spec, err)
		}
		var makespan float64
		for _, row := range times.vals {
			for _, v := range row {
				if v > makespan {
					makespan = v
				}
			}
		}
		res.Rows = append(res.Rows, WorkloadRow{
			Spec:  workload.Format(sp),
			US:    makespan,
			Sends: rep.Stats.Sends(),
			Bytes: rep.Stats.Bytes(),
		})
	}
	return res, nil
}

// FormatWorkloads renders the named-workload table.
func FormatWorkloads(r *WorkloadsResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Named workloads: virtual makespan per scenario (%d procs, ppn %d, seed %d, %s model)\n",
		r.Opts.Procs, r.Opts.PPN, r.Opts.Seed, presetName(r.Opts.Preset))
	fmt.Fprintf(&b, "%-32s %14s %10s %12s\n", "workload", "makespan (us)", "sends", "bytes")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-32s %14.1f %10d %12d\n", row.Spec, row.US, row.Sends, row.Bytes)
	}
	return b.String()
}
