package bench

import (
	"fmt"
	"strings"

	"armci"
)

// SmallPutOpts configures the sustained small-put throughput experiment:
// the workload the per-destination coalescer exists to accelerate.
type SmallPutOpts struct {
	Opts
	// Procs is the number of user processes, one per node so every put
	// is remote (default 8).
	Procs int
	// OpsPerRank is how many puts each rank issues per repetition before
	// fencing (default 256).
	OpsPerRank int
	// Bytes is the payload of each put (default 8 — the "many tiny
	// updates" regime).
	Bytes int
}

// SmallPutResult compares the same stream of small puts sent one wire
// message per operation against the coalesced path that packs them into
// batched frames.
type SmallPutResult struct {
	Opts SmallPutOpts
	// UncoalescedUS and CoalescedUS are the mean virtual times, in
	// microseconds, for one rank to issue OpsPerRank puts and fence.
	UncoalescedUS, CoalescedUS float64
	// UncoalescedOps and CoalescedOps are the corresponding sustained
	// rates in operations per second.
	UncoalescedOps, CoalescedOps float64
	// Factor is UncoalescedUS / CoalescedUS — the coalescing speedup.
	Factor float64
}

// SmallPut measures sustained small-put throughput with coalescing off
// and on: every rank streams OpsPerRank puts of Bytes each into its
// right neighbor's buffer and fences. Uncoalesced, each put is one wire
// message and the destination server pays its fixed per-message service
// cost 256 times; coalesced, the same puts arrive as a handful of
// batched frames that pay it once per frame.
func SmallPut(opts SmallPutOpts) (*SmallPutResult, error) {
	opts.Opts = opts.Opts.withDefaults()
	if opts.Procs <= 0 {
		opts.Procs = 8
	}
	if opts.OpsPerRank <= 0 {
		opts.OpsPerRank = 256
	}
	if opts.Bytes <= 0 {
		opts.Bytes = 8
	}
	unco, err := smallPutTime(opts, false)
	if err != nil {
		return nil, fmt.Errorf("bench: smallput uncoalesced: %w", err)
	}
	co, err := smallPutTime(opts, true)
	if err != nil {
		return nil, fmt.Errorf("bench: smallput coalesced: %w", err)
	}
	res := &SmallPutResult{
		Opts:          opts,
		UncoalescedUS: unco,
		CoalescedUS:   co,
	}
	if unco > 0 {
		res.UncoalescedOps = float64(opts.OpsPerRank) / (unco / 1e6)
	}
	if co > 0 {
		res.CoalescedOps = float64(opts.OpsPerRank) / (co / 1e6)
		res.Factor = unco / co
	}
	return res, nil
}

// smallPutTime measures the mean per-rank time for one variant.
func smallPutTime(opts SmallPutOpts, coalesce bool) (float64, error) {
	times := newPerRank(opts.Procs, opts.Reps)
	_, err := armci.Run(opts.inject(armci.Options{
		Procs:        opts.Procs,
		ProcsPerNode: 1,
		Fabric:       opts.Fabric,
		Preset:       opts.Preset,
		Coalesce:     armci.Coalesce{Enabled: coalesce},
	}), func(p *armci.Proc) {
		me, n := p.Rank(), p.Size()
		bufs := p.Malloc(opts.OpsPerRank * opts.Bytes)
		dst := (me + 1) % n
		dstNode := p.NodeOf(dst)
		data := make([]byte, opts.Bytes)
		for i := range data {
			data[i] = byte(me + 1)
		}
		for rep := 0; rep < opts.Warmup+opts.Reps; rep++ {
			// Absorb skew so the timing reflects the put stream alone.
			p.MPIBarrier()
			t0 := p.Now()
			for i := 0; i < opts.OpsPerRank; i++ {
				p.Put(bufs[dst].Add(int64(i*opts.Bytes)), data)
			}
			p.Fence(dstNode)
			dt := p.Now() - t0
			if rep >= opts.Warmup {
				times.add(me, us(dt))
			}
		}
	})
	if err != nil {
		return 0, err
	}
	return times.meanAll(), nil
}

// FormatSmallPut renders the throughput comparison.
func FormatSmallPut(r *SmallPutResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sustained small puts: %d ranks x %d puts of %d bytes (%s fabric, %s model, %d reps)\n",
		r.Opts.Procs, r.Opts.OpsPerRank, r.Opts.Bytes,
		fabricName(r.Opts.Fabric), presetName(r.Opts.Preset), r.Opts.Reps)
	fmt.Fprintf(&b, "%14s %14s %14s\n", "", "time (us)", "ops/sec")
	fmt.Fprintf(&b, "%14s %14.1f %14.0f\n", "uncoalesced", r.UncoalescedUS, r.UncoalescedOps)
	fmt.Fprintf(&b, "%14s %14.1f %14.0f\n", "coalesced", r.CoalescedUS, r.CoalescedOps)
	fmt.Fprintf(&b, "%14s %14.2f\n", "speedup", r.Factor)
	return b.String()
}
