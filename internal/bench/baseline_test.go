package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBaselineRoundTripAndGate is the end-to-end contract of the
// regression gate: a collected baseline survives the JSON round trip,
// compares clean against itself, and a synthetic 20% slowdown injected
// through the Handicap test hook trips the gate — proving the gate
// would catch a real regression of the same size.
func TestBaselineRoundTripAndGate(t *testing.T) {
	if testing.Short() {
		t.Skip("baseline collection skipped in -short")
	}
	base, err := CollectBaseline(BaselineOpts{Commit: "test"})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"fig7/old/p16", "fig7/new/p16", "fig8/hybrid/p8", "fig8/queue/p8",
		"explore/cases", "explore/events", "explore/wall",
		"hotpath/kernel_schedule/ns_op", "hotpath/kernel_schedule/allocs_op",
		"hotpath/pipeline_sendrecv/ns_op", "hotpath/pipeline_sendrecv/allocs_op",
		"hotpath/explore_case/ns_op",
		"smallput/uncoalesced/us", "smallput/coalesced/us", "smallput/ratio_pct",
		"lockcrash/handoff/us", "lockcrash/recovery/us",
		"elastic/recovery/us", "elastic/repl_overhead_pct",
	} {
		if _, ok := base.Metrics[name]; !ok {
			t.Errorf("baseline is missing tracked metric %q", name)
		}
	}
	if got := base.Metrics["hotpath/kernel_schedule/allocs_op"].Value; got > 0 {
		t.Errorf("kernel schedule allocates %v allocs/op at collection time, want 0", got)
	}
	if got := base.Metrics["hotpath/pipeline_sendrecv/allocs_op"].Value; got > 0 {
		t.Errorf("pipeline send/recv allocates %v allocs/op at collection time, want 0", got)
	}

	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := WriteBaseline(base, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	// Self-comparison must be clean: deterministic metrics are exactly
	// equal, and even the noisy ones match because both sides are the
	// same document.
	if regs, missing := CompareBaselines(loaded, base, false); len(regs) > 0 || len(missing) > 0 {
		t.Fatalf("baseline regresses against itself: %v, missing %v", regs, missing)
	}

	// The synthetic slowdown: +20% on every time metric exceeds the 15%
	// deterministic budget, so the quick gate must fail on the figure
	// and small-put times while the alloc and event counts — and the
	// smallput ratio, whose numerator and denominator slow down together
	// — stay clean.
	slow, err := CollectBaseline(BaselineOpts{Handicap: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	regs, _ := CompareBaselines(loaded, slow, true)
	if len(regs) == 0 {
		t.Fatal("a 20% handicap produced no regressions: the gate is blind")
	}
	timeMetric := func(name string) bool {
		return strings.Contains(name, "fig7/") || strings.Contains(name, "fig8/") ||
			strings.HasSuffix(name, "/us")
	}
	for _, r := range regs {
		if !timeMetric(r.Name) {
			t.Errorf("handicap tripped unexpected metric %s", r)
		}
	}
}

// TestCompareBaselinesJudgment covers the gate's decision table without
// any collection: tolerance edges, the absolute slack on zero bases,
// noisy metrics under quick vs full, and missing-metric detection.
func TestCompareBaselinesJudgment(t *testing.T) {
	mk := func(metrics map[string]Metric) *Baseline {
		return &Baseline{Schema: BaselineSchema, Metrics: metrics}
	}
	base := mk(map[string]Metric{
		"det":       {Value: 100, Unit: "us", Tol: 0.15, Abs: 0.75},
		"zero":      {Value: 0, Unit: "allocs/op", Tol: 0.15, Abs: 0.75},
		"wallclock": {Value: 100, Unit: "ns/op", Tol: 0.60, Abs: 0.75, Noisy: true},
	})

	cur := mk(map[string]Metric{
		"det":       {Value: 114}, // +14%: inside the 15% budget
		"zero":      {Value: 0.5}, // below the absolute slack
		"wallclock": {Value: 150}, // +50%: inside the noisy budget
	})
	if regs, missing := CompareBaselines(base, cur, false); len(regs) > 0 || len(missing) > 0 {
		t.Fatalf("within-budget run flagged: %v, missing %v", regs, missing)
	}

	cur = mk(map[string]Metric{
		"det":       {Value: 120}, // +20%: regression
		"zero":      {Value: 2},   // past the absolute slack on a 0 base
		"wallclock": {Value: 170}, // +70%: noisy regression
	})
	regs, _ := CompareBaselines(base, cur, false)
	if len(regs) != 3 {
		t.Fatalf("full comparison found %d regressions, want 3: %v", len(regs), regs)
	}
	if regs, _ := CompareBaselines(base, cur, true); len(regs) != 2 {
		t.Fatalf("quick comparison found %d regressions, want 2 (noisy skipped): %v", len(regs), regs)
	}

	cur = mk(map[string]Metric{"det": {Value: 100}})
	if _, missing := CompareBaselines(base, cur, true); len(missing) != 1 || missing[0] != "zero" {
		t.Fatalf("dropped metric not reported: %v", missing)
	}
}

// TestReadBaselineRejectsBadDocuments covers the loader's validation.
func TestReadBaselineRejectsBadDocuments(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	if _, err := ReadBaseline(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := ReadBaseline(write("garbage.json", "{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ReadBaseline(write("schema.json", `{"schema":99,"metrics":{"x":{"value":1}}}`)); err == nil {
		t.Error("future schema accepted")
	}
	if _, err := ReadBaseline(write("empty.json", `{"schema":1,"metrics":{}}`)); err == nil {
		t.Error("metric-free document accepted")
	}
}
