package bench

import "testing"

// TestElasticExperiment runs the elastic-recovery experiment at its
// default shape and checks the structure of the result: replication
// costs something (the overhead metric is meaningful), recovery has a
// positive span, and determinism holds across a repeat — these are the
// numbers the baseline gate tracks.
func TestElasticExperiment(t *testing.T) {
	r, err := Elastic(ElasticOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if r.BaseUS <= 0 || r.ReplUS <= r.BaseUS {
		t.Errorf("replication must cost something: base %.1fus, replicated %.1fus", r.BaseUS, r.ReplUS)
	}
	if r.OverheadPct <= 0 {
		t.Errorf("overhead = %.2f%%, want positive", r.OverheadPct)
	}
	if r.RecoveryUS <= 0 {
		t.Errorf("recovery span = %.1fus, want positive", r.RecoveryUS)
	}
	again, err := Elastic(ElasticOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if *again != *r {
		t.Errorf("experiment not deterministic:\nfirst  %+v\nsecond %+v", *r, *again)
	}
}
