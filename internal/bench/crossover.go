package bench

import (
	"fmt"

	"armci"
	"armci/internal/msg"
	"armci/internal/trace"
)

// CrossoverOpts configures the sparse-writer crossover experiment of
// §3.1.2: when each process has issued puts to fewer than ~log₂(N)/2
// other processes, the original AllFence — which only contacts servers it
// actually wrote to — can beat the new barrier, whose binary exchange
// always costs 2·log₂(N) latencies.
type CrossoverOpts struct {
	Opts
	// Procs is the cluster size (default 16).
	Procs int
	// KValues are the numbers of distinct remote targets each process
	// writes to before syncing (default 0..5).
	KValues []int
}

// CrossoverRow is one target-count sample.
type CrossoverRow struct {
	K            int
	OldUS, NewUS float64
}

// CrossoverResult is the sweep.
type CrossoverResult struct {
	Opts CrossoverOpts
	Rows []CrossoverRow
}

// Crossover measures sync time versus writer fan-out for both
// implementations.
func Crossover(opts CrossoverOpts) (*CrossoverResult, error) {
	opts.Opts = opts.Opts.withDefaults()
	if opts.Procs <= 0 {
		opts.Procs = 16
	}
	if opts.KValues == nil {
		opts.KValues = []int{0, 1, 2, 3, 4, 5}
	}
	res := &CrossoverResult{Opts: opts}
	for _, k := range opts.KValues {
		if k >= opts.Procs {
			return nil, fmt.Errorf("bench: crossover K=%d needs at least %d processes", k, k+1)
		}
		oldUS, err := crossoverRun(opts, k, true)
		if err != nil {
			return nil, fmt.Errorf("bench: crossover old K=%d: %w", k, err)
		}
		newUS, err := crossoverRun(opts, k, false)
		if err != nil {
			return nil, fmt.Errorf("bench: crossover new K=%d: %w", k, err)
		}
		res.Rows = append(res.Rows, CrossoverRow{K: k, OldUS: oldUS, NewUS: newUS})
	}
	return res, nil
}

func crossoverRun(opts CrossoverOpts, k int, old bool) (float64, error) {
	procs := opts.Procs
	times := newPerRank(procs, opts.Reps)
	_, err := armci.Run(opts.inject(armci.Options{
		Procs:  procs,
		Fabric: opts.Fabric,
		Preset: opts.Preset,
	}), func(p *armci.Proc) {
		me := p.Rank()
		ptrs := p.Malloc(8 * procs)
		payload := make([]byte, 64)
		for rep := 0; rep < opts.Warmup+opts.Reps; rep++ {
			for j := 1; j <= k; j++ {
				p.Put(ptrs[(me+j)%procs], payload)
			}
			p.MPIBarrier()
			t0 := p.Now()
			if old {
				p.SyncOld()
			} else {
				p.Barrier()
			}
			dt := p.Now() - t0
			if rep >= opts.Warmup {
				times.add(me, us(dt))
			}
		}
	})
	if err != nil {
		return 0, err
	}
	return times.meanAll(), nil
}

// MessageCounts verifies the paper's analytical claims by counting, with
// all modeled costs disabled, the messages one collective sync needs.
type MessageCounts struct {
	Procs int
	// OldFenceReqs is the number of fence confirmation requests of one
	// all-process SyncOld — N(N−1) when everyone wrote to everyone.
	OldFenceReqs int
	// OldTotal counts every message of the SyncOld phase.
	OldTotal int
	// NewColl is the number of collective messages of one ARMCI_Barrier
	// — 2·N·log₂(N) for the two binary-exchange stages.
	NewColl int
	// NewTotal counts every message of the Barrier phase.
	NewTotal int
}

// CountSyncMessages measures the message complexity of both sync
// implementations at the given process count (power of two), with every
// process having first written to every other. To isolate the sync phase
// exactly, the deterministic simulation is run twice — with one and with
// two sync calls — and the difference is the per-sync cost.
func CountSyncMessages(procs int) (*MessageCounts, error) {
	if err := checkPow2(procs); err != nil {
		return nil, err
	}
	out := &MessageCounts{Procs: procs}
	for _, old := range []bool{true, false} {
		one, err := countRun(procs, old, 1)
		if err != nil {
			return nil, err
		}
		two, err := countRun(procs, old, 2)
		if err != nil {
			return nil, err
		}
		if old {
			out.OldFenceReqs = two.Count(msg.KindFenceReq) - one.Count(msg.KindFenceReq)
			out.OldTotal = two.Sends() - one.Sends()
		} else {
			out.NewColl = two.Count(msg.KindColl) - one.Count(msg.KindColl)
			out.NewTotal = two.Sends() - one.Sends()
		}
	}
	return out, nil
}

func countRun(procs int, old bool, syncs int) (*trace.Stats, error) {
	rep, err := armci.Run(armci.Options{
		Procs:  procs,
		Fabric: armci.FabricSim,
		Preset: armci.PresetZero,
	}, func(p *armci.Proc) {
		me := p.Rank()
		ptrs := p.Malloc(8)
		payload := make([]byte, 8)
		for q := 0; q < procs; q++ {
			if q != me {
				p.Put(ptrs[q], payload)
			}
		}
		p.MPIBarrier()
		for i := 0; i < syncs; i++ {
			if old {
				p.SyncOld()
			} else {
				p.Barrier()
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return rep.Stats, nil
}
