package bench

import (
	"fmt"
	"strings"

	"armci"
)

// SensitivityOpts configures the network-sensitivity analysis: the same
// Figure 7 workload under cost models spanning an order of magnitude of
// interconnect latency, answering "how much of the paper's 9× depends on
// Myrinet-class latency?".
type SensitivityOpts struct {
	Opts
	// Procs is the cluster size (default 16, the paper's headline point).
	Procs int
	// Presets to sweep (default low-latency, myrinet2000, fast-ethernet).
	Presets []armci.CostPreset
}

// SensitivityRow is one cost model's Figure 7 point.
type SensitivityRow struct {
	Preset       armci.CostPreset
	OldUS, NewUS float64
	Factor       float64
}

// SensitivityResult is the sweep.
type SensitivityResult struct {
	Opts SensitivityOpts
	Rows []SensitivityRow
}

// Sensitivity measures GA_Sync old vs new at one process count under each
// preset.
func Sensitivity(opts SensitivityOpts) (*SensitivityResult, error) {
	opts.Opts = opts.Opts.withDefaults()
	if opts.Procs <= 0 {
		opts.Procs = 16
	}
	if opts.Presets == nil {
		opts.Presets = []armci.CostPreset{
			armci.PresetLowLatency, armci.PresetMyrinet2000, armci.PresetFastEthernet,
		}
	}
	res := &SensitivityResult{Opts: opts}
	for _, preset := range opts.Presets {
		o := opts
		o.Preset = preset
		f7, err := Fig7(Fig7Opts{Opts: o.Opts, ProcCounts: []int{opts.Procs}})
		if err != nil {
			return nil, fmt.Errorf("bench: sensitivity %s: %w", preset, err)
		}
		row := f7.Rows[0]
		res.Rows = append(res.Rows, SensitivityRow{
			Preset: preset, OldUS: row.OldUS, NewUS: row.NewUS, Factor: row.Factor,
		})
	}
	return res, nil
}

// FormatSensitivity renders the sweep.
func FormatSensitivity(r *SensitivityResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Network sensitivity (extension): GA_Sync at %d procs per cost model\n", r.Opts.Procs)
	fmt.Fprintf(&b, "%16s %14s %14s %10s\n", "model", "current (us)", "new (us)", "factor")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%16s %14.1f %14.1f %10.2f\n", row.Preset, row.OldUS, row.NewUS, row.Factor)
	}
	return b.String()
}
