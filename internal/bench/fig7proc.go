package bench

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"armci"
	"armci/ga"
	"armci/internal/cluster"
)

// Fig7ProcResultPrefix tags the machine-readable line rank 0 prints at
// the end of a multi-process Fig. 7 point. The launcher side picks the
// line out of the worker's output stream; everything else the workers
// print is passed through untouched.
const Fig7ProcResultPrefix = "ARMCI_FIG7_RESULT"

// formatFig7ProcResult renders one measured point as the tagged line.
func formatFig7ProcResult(r Fig7Row) string {
	return fmt.Sprintf("%s procs=%d old_us=%.6g new_us=%.6g",
		Fig7ProcResultPrefix, r.Procs, r.OldUS, r.NewUS)
}

// ParseFig7ProcResult recognizes a tagged result line. The factor is
// recomputed from the two means so the line stays minimal.
func ParseFig7ProcResult(line string) (Fig7Row, bool) {
	line = strings.TrimSpace(line)
	if !strings.HasPrefix(line, Fig7ProcResultPrefix) {
		return Fig7Row{}, false
	}
	var r Fig7Row
	for _, field := range strings.Fields(line[len(Fig7ProcResultPrefix):]) {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return Fig7Row{}, false
		}
		var err error
		switch k {
		case "procs":
			r.Procs, err = strconv.Atoi(v)
		case "old_us":
			r.OldUS, err = strconv.ParseFloat(v, 64)
		case "new_us":
			r.NewUS, err = strconv.ParseFloat(v, 64)
		default:
			err = fmt.Errorf("unknown field %q", k)
		}
		if err != nil {
			return Fig7Row{}, false
		}
	}
	if r.Procs <= 0 || r.OldUS <= 0 || r.NewUS <= 0 {
		return Fig7Row{}, false
	}
	r.Factor = r.OldUS / r.NewUS
	return r, true
}

// RunFig7ProcWorker is the worker-side body of one multi-process Fig. 7
// point. It must run in a process launched under armci-run (or any
// cluster.Launch): the proc fabric reads the rendezvous from the
// environment. One launch supports exactly one rendezvous, so — unlike
// the in-process sweep, which runs a fresh fabric per (size, mode)
// point — both sync modes are measured inside a single armci.Run, with
// ga.SetSyncMode switching implementations between the phases.
//
// Per-rank means are combined across the processes with an in-band
// all-reduce; rank 0 prints the tagged result line for the launcher.
func RunFig7ProcWorker(opts Fig7Opts, procs int) error {
	opts.Opts = opts.Opts.withDefaults()
	if opts.BlockDim <= 0 {
		opts.BlockDim = 32
	}
	if opts.PatchDim <= 0 {
		opts.PatchDim = 8
	}
	if opts.PatchDim > opts.BlockDim {
		return fmt.Errorf("bench: patch dim %d exceeds block dim %d", opts.PatchDim, opts.BlockDim)
	}
	// The SMP grouping comes from the launch environment — the launcher
	// decides how many ranks each worker hosts, not the workload.
	we, ok, err := cluster.FromEnv()
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	if !ok {
		return fmt.Errorf("bench: fig7 proc worker needs the cluster environment; start it under armci-run")
	}
	if we.Procs != procs {
		return fmt.Errorf("bench: fig7 worker built for %d procs but launched with %d", procs, we.Procs)
	}
	_, err = armci.Run(opts.inject(armci.Options{
		Procs:        procs,
		ProcsPerNode: we.ProcsPerNode,
		Fabric:       armci.FabricProc,
		Preset:       opts.Preset,
	}), func(p *armci.Proc) {
		pr := gridRows(procs)
		pc := procs / pr
		a, err := ga.Create(p, "fig7", pr*opts.BlockDim, pc*opts.BlockDim)
		if err != nil {
			panic(err)
		}
		me := p.Rank()
		patch := make([]float64, opts.PatchDim*opts.PatchDim)
		for i := range patch {
			patch[i] = float64(me + 1)
		}
		measure := func(mode ga.SyncMode) float64 {
			a.SetSyncMode(mode)
			var sum float64
			for rep := 0; rep < opts.Warmup+opts.Reps; rep++ {
				for q := 0; q < procs; q++ {
					if q == me {
						continue
					}
					rlo, _, clo, _ := a.Distribution(q)
					a.Put(rlo, rlo+opts.PatchDim, clo, clo+opts.PatchDim, patch)
				}
				p.MPIBarrier()
				t0 := p.Now()
				a.Sync()
				dt := p.Now() - t0
				if rep >= opts.Warmup {
					sum += us(dt)
				}
			}
			return sum / float64(opts.Reps)
		}
		vec := []float64{measure(ga.SyncOld), measure(ga.SyncNew)}
		// Every rank contributes its mean; the all-reduce leaves the
		// cluster-wide sums everywhere, and rank 0 reports the average.
		p.AllReduceSumFloat64(vec)
		if me == 0 {
			n := float64(procs)
			fmt.Println(formatFig7ProcResult(Fig7Row{
				Procs: procs, OldUS: vec[0] / n, NewUS: vec[1] / n,
			}))
		}
	})
	return err
}

// Fig7ProcLaunch describes one launcher-side multi-process Fig. 7 point.
type Fig7ProcLaunch struct {
	// Procs is the cluster size (workers are one rank each by default).
	Procs int
	// ProcsPerNode groups ranks into SMP nodes (default 1).
	ProcsPerNode int
	// Command is the worker argv — typically the calling binary
	// re-executed with a hidden worker-dispatch flag.
	Command []string
	// Output receives the workers' prefixed output (nil: os.Stdout,
	// io.Discard to silence them).
	Output io.Writer
	// RunTimeout bounds the whole point (default cluster.Launch's).
	RunTimeout time.Duration
}

// LaunchFig7Proc spawns the point's worker processes, waits for the
// launch to drain and returns the row parsed from rank 0's tagged
// result line. A worker death surfaces as the launch's rank-attributed
// fault error.
func LaunchFig7Proc(l Fig7ProcLaunch) (Fig7Row, error) {
	var (
		mu    sync.Mutex
		row   Fig7Row
		found bool
	)
	out, err := cluster.Launch(cluster.Spec{
		Procs:        l.Procs,
		ProcsPerNode: l.ProcsPerNode,
		Command:      l.Command,
		Output:       l.Output,
		RunTimeout:   l.RunTimeout,
		OnLine: func(node int, line string) {
			if r, ok := ParseFig7ProcResult(line); ok {
				mu.Lock()
				row, found = r, true
				mu.Unlock()
			}
		},
	})
	if err != nil {
		return Fig7Row{}, err
	}
	if out.Err != nil {
		return Fig7Row{}, out.Err
	}
	mu.Lock()
	defer mu.Unlock()
	if !found {
		return Fig7Row{}, fmt.Errorf("bench: fig7 N=%d launch finished without a %s line", l.Procs, Fig7ProcResultPrefix)
	}
	return row, nil
}
