package bench

import (
	"fmt"

	"armci"
	"armci/ga"
)

// Fig7Opts configures the GA_Sync experiment.
type Fig7Opts struct {
	Opts
	// ProcCounts are the cluster sizes to sweep (default 2,4,8,16).
	ProcCounts []int
	// BlockDim is the per-process block edge in elements (default 32).
	BlockDim int
	// PatchDim is the edge of the square patch each process writes into
	// every remote block before syncing (default 8, i.e. 512-byte puts).
	PatchDim int
}

// Fig7Row is one cluster size of the GA_Sync comparison.
type Fig7Row struct {
	Procs int
	// OldUS and NewUS are the mean GA_Sync times in microseconds under
	// the original and the combined implementation.
	OldUS, NewUS float64
	// Factor is OldUS / NewUS — Figure 7(b).
	Factor float64
}

// Fig7Result is the full sweep.
type Fig7Result struct {
	Opts Fig7Opts
	Rows []Fig7Row
}

// Fig7 reproduces Figure 7: a 2-D array distributed uniformly over the
// processes; every process writes patches into the portions owned by
// every other process; an MPI_Barrier absorbs skew; then GA_Sync() is
// timed — once with the original AllFence+MPI_Barrier and once with the
// new combined ARMCI_Barrier.
func Fig7(opts Fig7Opts) (*Fig7Result, error) {
	opts.Opts = opts.Opts.withDefaults()
	if opts.ProcCounts == nil {
		opts.ProcCounts = []int{2, 4, 8, 16}
	}
	if opts.BlockDim <= 0 {
		opts.BlockDim = 32
	}
	if opts.PatchDim <= 0 {
		opts.PatchDim = 8
	}
	if opts.PatchDim > opts.BlockDim {
		return nil, fmt.Errorf("bench: patch dim %d exceeds block dim %d", opts.PatchDim, opts.BlockDim)
	}
	res := &Fig7Result{Opts: opts}
	for _, n := range opts.ProcCounts {
		oldUS, err := gaSyncTime(opts, n, ga.SyncOld)
		if err != nil {
			return nil, fmt.Errorf("bench: fig7 old N=%d: %w", n, err)
		}
		newUS, err := gaSyncTime(opts, n, ga.SyncNew)
		if err != nil {
			return nil, fmt.Errorf("bench: fig7 new N=%d: %w", n, err)
		}
		res.Rows = append(res.Rows, Fig7Row{
			Procs: n, OldUS: oldUS, NewUS: newUS, Factor: oldUS / newUS,
		})
	}
	return res, nil
}

// gaSyncTime measures the mean GA_Sync time for one configuration.
func gaSyncTime(opts Fig7Opts, procs int, mode ga.SyncMode) (float64, error) {
	times := newPerRank(procs, opts.Reps)
	// The array gives every process one BlockDim×BlockDim block, laid
	// out on the near-square grid ga chooses.
	_, err := armci.Run(opts.inject(armci.Options{
		Procs:  procs,
		Fabric: opts.Fabric,
		Preset: opts.Preset,
	}), func(p *armci.Proc) {
		pr := gridRows(procs)
		pc := procs / pr
		a, err := ga.Create(p, "fig7", pr*opts.BlockDim, pc*opts.BlockDim)
		if err != nil {
			panic(err)
		}
		a.SetSyncMode(mode)
		me := p.Rank()
		patch := make([]float64, opts.PatchDim*opts.PatchDim)
		for i := range patch {
			patch[i] = float64(me + 1)
		}
		for rep := 0; rep < opts.Warmup+opts.Reps; rep++ {
			// Write a patch into every remote process's block — the
			// paper's workload guarantees the processes "perform fence
			// operations with each other".
			for q := 0; q < procs; q++ {
				if q == me {
					continue
				}
				rlo, _, clo, _ := a.Distribution(q)
				a.Put(rlo, rlo+opts.PatchDim, clo, clo+opts.PatchDim, patch)
			}
			// Absorb process skew so the timing reflects GA_Sync alone.
			p.MPIBarrier()
			t0 := p.Now()
			a.Sync()
			dt := p.Now() - t0
			if rep >= opts.Warmup {
				times.add(me, us(dt))
			}
		}
	})
	if err != nil {
		return 0, err
	}
	return times.meanAll(), nil
}

// gridRows mirrors ga's near-square grid choice.
func gridRows(n int) int {
	best := 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			best = d
		}
	}
	return best
}
