// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§4):
//
//	Fig. 7(a,b) — GA_Sync() time and factor of improvement, original
//	              (serialized AllFence + MPI_Barrier) vs the new combined
//	              ARMCI_Barrier, as a function of the process count;
//	Fig. 8(a,b) — average time to request AND release a lock, hybrid vs
//	              software queuing lock, plus the factor of improvement;
//	Fig. 9      — the request+acquire component alone;
//	Fig. 10     — the release component alone;
//	§3.1.2      — the sparse-writer crossover between the original
//	              AllFence and the new barrier.
//
// Experiments run by default on the simulated fabric with the calibrated
// Myrinet-2000 cost model, where results are deterministic virtual times;
// they can also run on the concurrent fabrics for wall-clock sanity
// checks of the same shape.
package bench

import (
	"fmt"
	"time"

	"armci"
)

// Opts are the common experiment knobs.
type Opts struct {
	// Fabric is the execution fabric (default FabricSim).
	Fabric armci.FabricKind
	// Preset is the cost model (default PresetMyrinet2000).
	Preset armci.CostPreset
	// Reps is the number of timed repetitions averaged per point
	// (default 10; the paper uses 100 for Fig. 7 and 10 000 for the
	// lock tests — the simulator is deterministic, so fewer suffice).
	Reps int
	// Warmup repetitions run before timing starts (default 2).
	Warmup int
	// Faults is the deterministic fault-injection plan applied to every
	// run of the experiment (zero value: no faults).
	Faults armci.Faults
	// Metrics, if non-nil, aggregates per-kind/per-pair message latency
	// histograms and fault counters across the experiment's runs.
	Metrics *armci.Metrics
}

// inject copies the experiment-wide fault plan and metrics collector
// into one run's options.
func (o Opts) inject(ao armci.Options) armci.Options {
	ao.Faults = o.Faults
	ao.Metrics = o.Metrics
	return ao
}

func (o Opts) withDefaults() Opts {
	if o.Preset == "" {
		o.Preset = armci.PresetMyrinet2000
	}
	if o.Reps <= 0 {
		o.Reps = 10
	}
	if o.Warmup < 0 {
		o.Warmup = 0
	} else if o.Warmup == 0 {
		o.Warmup = 2
	}
	return o
}

// us converts a duration to microseconds.
func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// mean averages a slice.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// perRank collects one value per (rank, rep) without cross-rank sharing
// hazards: every rank writes only its own row.
type perRank struct {
	vals [][]float64 // [rank][rep]
}

func newPerRank(procs, reps int) *perRank {
	v := make([][]float64, procs)
	for i := range v {
		v[i] = make([]float64, 0, reps)
	}
	return &perRank{vals: v}
}

func (p *perRank) add(rank int, v float64) { p.vals[rank] = append(p.vals[rank], v) }

func (p *perRank) meanAll() float64 {
	var all []float64
	for _, row := range p.vals {
		all = append(all, row...)
	}
	return mean(all)
}

// checkPow2 rejects process counts the paper's pairwise algorithms need
// to be powers of two... dissemination handles any N, so this is only a
// guard for experiments explicitly using the pairwise barrier.
func checkPow2(n int) error {
	if n&(n-1) != 0 {
		return fmt.Errorf("bench: process count %d is not a power of two", n)
	}
	return nil
}
