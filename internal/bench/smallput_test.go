package bench

import "testing"

// TestSmallPutCoalescingSpeedup is the structural gate on the tentpole
// win: packing the small-put stream into batched frames must at least
// double sustained throughput on the calibrated network, because the
// destination server's fixed per-message service cost is paid once per
// frame instead of once per put. The measured ratio is also recorded in
// the benchmark baseline (smallput/ratio_pct), so a regression below 2x
// fails both this test and the benchcheck gate.
func TestSmallPutCoalescingSpeedup(t *testing.T) {
	r, err := SmallPut(SmallPutOpts{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("uncoalesced %.1fus (%.0f ops/sec), coalesced %.1fus (%.0f ops/sec), speedup %.2fx",
		r.UncoalescedUS, r.UncoalescedOps, r.CoalescedUS, r.CoalescedOps, r.Factor)
	if r.Factor < 2 {
		t.Fatalf("coalescing speedup %.2fx, want >= 2x", r.Factor)
	}
}

// TestSmallPutDeterministic pins the virtual-time measurement: the sim
// fabric must yield identical numbers across runs, or the baseline
// metrics are not comparable.
func TestSmallPutDeterministic(t *testing.T) {
	a, err := SmallPut(SmallPutOpts{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SmallPut(SmallPutOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if a.UncoalescedUS != b.UncoalescedUS || a.CoalescedUS != b.CoalescedUS {
		t.Fatalf("smallput not deterministic: run 1 (%.3f, %.3f) vs run 2 (%.3f, %.3f)",
			a.UncoalescedUS, a.CoalescedUS, b.UncoalescedUS, b.CoalescedUS)
	}
}
