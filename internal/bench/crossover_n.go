package bench

import (
	"fmt"

	"armci"
)

// CrossoverNOpts configures the large-N barrier crossover sweep: one
// combined ARMCI_Barrier per algorithm as a function of the cluster
// size, on the simulated fabric where every point is a deterministic
// virtual time. The sweep answers the scaling question the paper's
// 16-process testbed could not: at which N does the tree/hierarchical
// structure (and the NIC-offload fence) overtake the flat log-depth
// exchanges?
type CrossoverNOpts struct {
	Opts
	// NValues are the cluster sizes (default 16, 64, 256, 1024, 4096;
	// powers of two so the pairwise variant stays legal).
	NValues []int
	// PPN is the processes-per-node of the synthetic topology
	// (default 8). The hierarchical variants split on it.
	PPN int
}

// CrossoverNVariant is one barrier configuration of the sweep.
type CrossoverNVariant struct {
	Name     string
	Alg      armci.BarrierAlg
	Radix    int  // k-nomial radix (0 = algorithm default)
	NICFence bool // answer fences on the NIC, no host wake-up
}

// CrossoverNVariants returns the swept configurations in display order.
func CrossoverNVariants() []CrossoverNVariant {
	return []CrossoverNVariant{
		{Name: "central", Alg: armci.BarrierCentral},
		{Name: "pairwise", Alg: armci.BarrierPairwise},
		{Name: "dissemination", Alg: armci.BarrierDissemination},
		{Name: "knomial4", Alg: armci.BarrierKnomial, Radix: 4},
		{Name: "hierarchical", Alg: armci.BarrierHierarchical},
		{Name: "hier-nicfence", Alg: armci.BarrierHierarchical, NICFence: true},
	}
}

// CrossoverNRow is one cluster size: US[i] is the mean ARMCI_Barrier
// time of variant i (indexed like the result's Variants).
type CrossoverNRow struct {
	N  int
	US []float64
}

// CrossoverNResult is the sweep.
type CrossoverNResult struct {
	Opts     CrossoverNOpts
	Variants []CrossoverNVariant
	Rows     []CrossoverNRow
}

// VariantUS returns the time of the named variant at row r, or -1 when
// the variant is unknown.
func (res *CrossoverNResult) VariantUS(r CrossoverNRow, name string) float64 {
	for i, v := range res.Variants {
		if v.Name == name {
			return r.US[i]
		}
	}
	return -1
}

// Winner returns the name of the fastest variant of a row.
func (res *CrossoverNResult) Winner(r CrossoverNRow) string {
	best := 0
	for i := range r.US {
		if r.US[i] < r.US[best] {
			best = i
		}
	}
	return res.Variants[best].Name
}

// CrossoverN sweeps one combined barrier across cluster sizes and
// algorithms. Every rank first issues one word-sized put to the
// matching rank of the next node, so the fence stage of the barrier has
// real inter-node traffic to prove complete.
func CrossoverN(opts CrossoverNOpts) (*CrossoverNResult, error) {
	explicitReps := opts.Reps
	opts.Opts = opts.Opts.withDefaults()
	if opts.NValues == nil {
		opts.NValues = []int{16, 64, 256, 1024, 4096}
	}
	if opts.PPN <= 0 {
		opts.PPN = 8
	}
	res := &CrossoverNResult{Opts: opts, Variants: CrossoverNVariants()}
	for _, n := range opts.NValues {
		if err := checkPow2(n); err != nil {
			return nil, fmt.Errorf("bench: crossover-n: %w (the pairwise variant needs powers of two)", err)
		}
		if n%opts.PPN != 0 {
			return nil, fmt.Errorf("bench: crossover-n N=%d is not a multiple of ppn %d", n, opts.PPN)
		}
		row := CrossoverNRow{N: n}
		for _, v := range res.Variants {
			usv, err := crossoverNRun(opts, n, v, explicitReps)
			if err != nil {
				return nil, fmt.Errorf("bench: crossover-n %s N=%d: %w", v.Name, n, err)
			}
			row.US = append(row.US, usv)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// crossoverNReps scales the repetition count down with the cluster
// size: the simulator is deterministic, so large N needs no averaging —
// only the wall clock of the sweep itself is at stake.
func crossoverNReps(explicit, n int) (warmup, reps int) {
	if explicit > 0 {
		return 1, explicit
	}
	switch {
	case n <= 256:
		return 1, 3
	case n <= 1024:
		return 1, 2
	default:
		return 1, 1
	}
}

func crossoverNRun(opts CrossoverNOpts, procs int, v CrossoverNVariant, explicitReps int) (float64, error) {
	warmup, reps := crossoverNReps(explicitReps, procs)
	ppn := opts.PPN
	times := newPerRank(procs, reps)
	_, err := armci.Run(opts.inject(armci.Options{
		Procs:           procs,
		ProcsPerNode:    ppn,
		Fabric:          opts.Fabric,
		Preset:          opts.Preset,
		BarrierAlg:      v.Alg,
		BarrierRadix:    v.Radix,
		NICFenceOffload: v.NICFence,
	}), func(p *armci.Proc) {
		me := p.Rank()
		// Every rank's first allocation lands in segment 1 of its own
		// word space, so the matching slot of any peer is this rank's
		// pointer with the rank swapped. The collective Malloc would
		// buy the same addresses for an O(N·log N) pointer exchange
		// per run — pure setup cost at N=4096.
		mine := p.MallocWordsLocal(1)
		peer := mine
		peer.Rank = int32((me + ppn) % procs)
		for rep := 0; rep < warmup+reps; rep++ {
			p.Store(peer, int64(rep+1))
			p.MPIBarrier()
			t0 := p.Now()
			p.Barrier()
			dt := p.Now() - t0
			if rep >= warmup {
				times.add(me, us(dt))
			}
		}
	})
	if err != nil {
		return 0, err
	}
	return times.meanAll(), nil
}
