package pipeline

import (
	"fmt"
	"sort"

	"armci/internal/msg"
	"armci/internal/wire"
)

// Coalescing defaults: a buffer flushes once it holds DefaultMaxOps
// entries or DefaultMaxBytes of payload, and only operations no larger
// than DefaultMaxEntryBytes are eligible at all (bigger transfers
// amortize their own per-message overhead and go out directly).
const (
	DefaultMaxOps        = 16
	DefaultMaxBytes      = 8192
	DefaultMaxEntryBytes = 1024
)

// CoalesceOpts configures the per-destination small-op coalescing stage
// of the send path. When enabled, eligible small puts, accumulates and
// notify stores bound for the same node are buffered in program order
// and shipped as one msg.KindBatch frame instead of one frame each.
type CoalesceOpts struct {
	// Enabled turns coalescing on. The zero value leaves the send path
	// exactly as it was: one wire frame per operation.
	Enabled bool
	// MaxOps flushes a destination's buffer once it holds this many
	// entries. 0 means DefaultMaxOps.
	MaxOps int
	// MaxBytes flushes a destination's buffer once its payload reaches
	// this many bytes. 0 means DefaultMaxBytes.
	MaxBytes int
	// MaxEntryBytes is the largest single operation that may coalesce;
	// bigger ones bypass the buffer (flushing it first to keep program
	// order). 0 means DefaultMaxEntryBytes.
	MaxEntryBytes int
	// ReorderHazard arms a deliberate bug for the conformance harness:
	// a flushed batch ships its entries in reverse program order, so a
	// notify store overtakes the puts it is meant to cover. Test-only,
	// like transport.Config.EventPoolHazard.
	ReorderHazard bool
}

// Validate rejects malformed option values.
func (o CoalesceOpts) Validate() error {
	if o.MaxOps < 0 || o.MaxBytes < 0 || o.MaxEntryBytes < 0 {
		return fmt.Errorf("pipeline: coalesce limits must be >= 0, got ops=%d bytes=%d entry=%d",
			o.MaxOps, o.MaxBytes, o.MaxEntryBytes)
	}
	if o.ReorderHazard && !o.Enabled {
		return fmt.Errorf("pipeline: ReorderHazard needs Enabled")
	}
	return nil
}

func (o CoalesceOpts) withDefaults() CoalesceOpts {
	if o.MaxOps == 0 {
		o.MaxOps = DefaultMaxOps
	}
	if o.MaxBytes == 0 {
		o.MaxBytes = DefaultMaxBytes
	}
	if o.MaxEntryBytes == 0 {
		o.MaxEntryBytes = DefaultMaxEntryBytes
	}
	return o
}

// Coalescer buffers eligible small operations per destination node and
// packs each buffer into one batched wire frame. It belongs to a single
// actor (one rank's engine) and is not self-synchronizing.
//
// Flushing is driven only by the thresholds and by explicit program
// points (fences, barriers, notify flags, any non-coalescable send to
// the same node) — never by timers — so the resulting message stream is
// a pure function of the program and the trace fingerprint stays
// identical across fabrics and schedule seeds.
type Coalescer struct {
	origin int
	opts   CoalesceOpts
	bufs   map[int]*destBuf
}

type destBuf struct {
	entries []wire.BatchEntry
	bytes   int
}

// Batch is one flushed frame and the node it is bound for.
type Batch struct {
	Node int
	Msg  *msg.Message
}

// NewCoalescer builds a coalescer for one origin rank.
func NewCoalescer(origin int, opts CoalesceOpts) *Coalescer {
	return &Coalescer{origin: origin, opts: opts.withDefaults(), bufs: make(map[int]*destBuf)}
}

// Fits reports whether an operation of n payload bytes is eligible for
// coalescing at all.
func (c *Coalescer) Fits(n int) bool { return n > 0 && n <= c.opts.MaxEntryBytes }

// Add buffers e for node. If the addition fills the buffer (MaxOps
// entries or MaxBytes payload), the packed frame is returned and the
// buffer reset; otherwise Add returns nil.
func (c *Coalescer) Add(node int, e wire.BatchEntry) *msg.Message {
	b := c.bufs[node]
	if b == nil {
		b = &destBuf{}
		c.bufs[node] = b
	}
	b.entries = append(b.entries, e)
	b.bytes += len(e.Data)
	if len(b.entries) >= c.opts.MaxOps || b.bytes >= c.opts.MaxBytes {
		return c.Flush(node)
	}
	return nil
}

// Pending returns the number of buffered entries for node.
func (c *Coalescer) Pending(node int) int {
	if b := c.bufs[node]; b != nil {
		return len(b.entries)
	}
	return 0
}

// Flush packs node's buffered entries into one KindBatch message and
// resets the buffer. Returns nil when the buffer is empty.
func (c *Coalescer) Flush(node int) *msg.Message {
	b := c.bufs[node]
	if b == nil || len(b.entries) == 0 {
		return nil
	}
	entries := b.entries
	b.entries, b.bytes = nil, 0
	if c.opts.ReorderHazard {
		// The armed bug: ship the batch back to front. The wire format
		// still tiles (offsets are assigned at encode time); only the
		// application order is wrong, which is exactly what the
		// notify/wait oracle must catch.
		for i, j := 0, len(entries)-1; i < j; i, j = i+1, j-1 {
			entries[i], entries[j] = entries[j], entries[i]
		}
	}
	return &msg.Message{
		Kind:   msg.KindBatch,
		Origin: c.origin,
		N:      len(entries),
		Data:   wire.EncodeBatch(entries),
	}
}

// FlushAll flushes every non-empty buffer, in ascending node order so
// the emitted message sequence is deterministic.
func (c *Coalescer) FlushAll() []Batch {
	var nodes []int
	for node, b := range c.bufs {
		if len(b.entries) > 0 {
			nodes = append(nodes, node)
		}
	}
	sort.Ints(nodes)
	out := make([]Batch, 0, len(nodes))
	for _, node := range nodes {
		out = append(out, Batch{Node: node, Msg: c.Flush(node)})
	}
	return out
}
