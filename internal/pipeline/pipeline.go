// Package pipeline implements the composable send/receive path every
// transport fabric routes messages through. Historically each fabric
// (simnet, channet, tcpnet) hand-rolled its own delivery path: jitter
// existed only on the channel fabric, TCP arrivals were never stamped
// into trace events, and the cost model was charged in three slightly
// different places. The pipeline factors that hot path into four shared
// stages, applied in order on every Send:
//
//  1. identity — stamp Src/Dst, the per-(src,dst) sequence number and
//     the send time onto the message;
//  2. cost model — charge the sender the modeled send overhead and
//     compute the base arrival time (now + latency + bytes·G), honoring
//     intra-node locality;
//  3. fault injection — seeded, deterministic extra delay (uniform
//     jitter and latency spikes) plus bounded duplicate delivery; the
//     per-pair FIFO stamp keeps arrivals monotonic per pipe throughout;
//  4. reliability — when loss injection is on, replay the ack/retransmit
//     exchange of the message: each transmission copy is dropped with
//     LossProb (plus burst extension), every drop costs one retransmit
//     timeout of exponentially backed-off RTO, and a message that is
//     still undelivered after RetryBudget retransmissions fails the send
//     with a rank-attributed *FaultError instead of hanging the
//     receiver. An injected Crash fault fail-stops a rank at its N-th
//     send the same way;
//  5. trace/metrics — record the send (and any duplicate) in the trace
//     collector and the fault counters (including drops/retransmits).
//
// On the receive side, Inbound applies the mirror stages: duplicate
// suppression by sequence number (the transport stays exactly-once even
// under injected duplication), arrival stamping (so trace.Event.Arrival
// is populated on every fabric, including TCP where the arrival is only
// known at the receiver), trace back-annotation and latency metrics.
// Dedup deliberately sits after the reliability stage: retransmitted
// copies keep their original sequence number and resolve to exactly one
// delivery before the FIFO stamp, so the only copies dedup ever sees are
// genuine injected duplicates — running it earlier would mistake a
// retransmission for a replay and break the exactly-once contract.
//
// Fault decisions — including every per-attempt loss decision of the
// reliability stage — are pure functions of (seed, src, dst, sequence),
// not of wall-clock timing or scheduling order, so the same seed injects
// the identical fault pattern on the deterministic simulated fabric and
// on the concurrent fabrics — that is what makes cross-fabric
// determinism tests possible: identical retransmit counts and trace
// fingerprints for a given seed and workload.
package pipeline

import (
	"fmt"
	"sync"
	"time"

	"armci/internal/model"
	"armci/internal/msg"
	"armci/internal/trace"
)

// Pair identifies one directed (source, destination) message pipe.
type Pair [2]msg.Addr

// Faults configures deterministic fault injection. The zero value
// disables every fault. All decisions derive from hashing (Seed, src,
// dst, seq), so a fault plan replays identically on every fabric and
// across runs.
type Faults struct {
	// Seed selects the fault pattern (0 uses a fixed default).
	Seed int64
	// Jitter adds a uniformly distributed extra delay in [0, Jitter) to
	// every message.
	Jitter time.Duration
	// SpikeProb is the per-message probability of a latency spike. A
	// spiked message is delayed by SpikeDelay, and — because arrivals
	// are FIFO-stamped per pair — drags the whole pipe behind it: a
	// per-pair latency spike.
	SpikeProb float64
	// SpikeDelay is the extra delay of a spiked message.
	SpikeDelay time.Duration
	// DupProb is the per-message probability that the fabric delivers
	// the message twice. The duplicate trails the original and is
	// always suppressed by the receive-side dedup stage, so protocol
	// code still observes exactly-once delivery.
	DupProb float64
	// DupDelay is the extra delay of the duplicate copy. 0 picks a
	// small default.
	DupDelay time.Duration
	// MaxDupsPerPair bounds how many duplicates are injected per
	// directed pair (0 means the default of 8). The bound is per pair
	// rather than global so that it is independent of cross-pair
	// scheduling order.
	MaxDupsPerPair int
	// LossProb is the per-transmission probability that a message copy
	// is dropped on the wire. A dropped copy is recovered by the
	// reliability stage: the sender retransmits after an exponentially
	// backed-off timeout until a copy gets through or RetryBudget is
	// exhausted. Each retransmission re-rolls the loss decision
	// independently, so the effective per-message failure probability is
	// LossProb^(RetryBudget+1).
	LossProb float64
	// LossBurst stretches each loss event over a run of consecutive
	// messages: a loss anchored at sequence s also drops the first copy
	// of the next LossBurst-1 messages on the same pair, modeling a
	// transient outage rather than independent single drops. 0 or 1
	// means single-message losses.
	LossBurst int
	// RetryBudget bounds how many retransmissions the reliability stage
	// attempts per message before the send fails with a
	// FaultRetryExhausted error (0 selects the default of 8).
	RetryBudget int
	// RTO is the initial retransmit timeout; it doubles after every
	// drop up to RTOCap. 0 selects the default of 500µs.
	RTO time.Duration
	// RTOCap caps the exponential backoff. 0 selects 16×RTO.
	RTOCap time.Duration
	// CrashRank selects the user rank fail-stopped by the crash fault
	// (used only when CrashAfterSends > 0).
	CrashRank int
	// CrashAfterSends, when > 0, crashes CrashRank at its
	// CrashAfterSends-th send: that send and every later one from the
	// rank fails with a FaultCrash error. 0 disables the crash fault.
	CrashAfterSends int
	// CrashHeldRank selects the user rank fail-stopped by the
	// crash-while-holding fault (used only when CrashHeldAcquire > 0).
	CrashHeldRank int
	// CrashHeldAcquire, when > 0, crashes CrashHeldRank immediately
	// after its CrashHeldAcquire-th lock acquisition — the rank dies
	// holding the lock. The pipeline cannot see acquisitions, so the
	// lock layer counts them and fail-stops the rank itself; the knob
	// lives here so it rides the same plan/grammar as every other
	// fault. 0 disables the fault.
	CrashHeldAcquire int
	// ElasticCrashRank selects the rank killed by the elastic crash
	// fault (used only when ElasticCrashStep > 0).
	ElasticCrashRank int
	// ElasticCrashStep, when > 0, kills ElasticCrashRank partway
	// through that sync epoch of an elastic-replication workload: a
	// real worker-process exit under armci-run -elastic, a cooperative
	// wipe-and-restore emulation on the in-process fabrics. Like
	// CrashHeldAcquire, the pipeline cannot see sync epochs — the
	// elastic runner reads the knob and injects the crash itself; it
	// lives here to ride the same plan/grammar as every other fault.
	// 0 disables the fault.
	ElasticCrashStep int
}

// Enabled reports whether any fault is configured.
func (f Faults) Enabled() bool {
	return f.Jitter > 0 || (f.SpikeProb > 0 && f.SpikeDelay > 0) || f.DupProb > 0 ||
		f.LossProb > 0 || f.CrashAfterSends > 0 || f.CrashHeldAcquire > 0
}

// Validate rejects nonsensical fault plans with a descriptive error.
// Probability checks are written in the negated form so that NaN (which
// fails every comparison) is rejected too.
func (f Faults) Validate() error {
	switch {
	case f.Jitter < 0:
		return fmt.Errorf("pipeline: Faults.Jitter must be >= 0, got %v", f.Jitter)
	case f.SpikeDelay < 0:
		return fmt.Errorf("pipeline: Faults.SpikeDelay must be >= 0, got %v", f.SpikeDelay)
	case f.DupDelay < 0:
		return fmt.Errorf("pipeline: Faults.DupDelay must be >= 0, got %v", f.DupDelay)
	case !(f.SpikeProb >= 0 && f.SpikeProb <= 1):
		return fmt.Errorf("pipeline: Faults.SpikeProb must be in [0,1], got %g", f.SpikeProb)
	case !(f.DupProb >= 0 && f.DupProb <= 1):
		return fmt.Errorf("pipeline: Faults.DupProb must be in [0,1], got %g", f.DupProb)
	case f.MaxDupsPerPair < 0:
		return fmt.Errorf("pipeline: Faults.MaxDupsPerPair must be >= 0, got %d", f.MaxDupsPerPair)
	case !(f.LossProb >= 0 && f.LossProb <= 1):
		return fmt.Errorf("pipeline: Faults.LossProb must be in [0,1], got %g", f.LossProb)
	case f.LossBurst < 0:
		return fmt.Errorf("pipeline: Faults.LossBurst must be >= 0, got %d", f.LossBurst)
	case f.RetryBudget < 0:
		return fmt.Errorf("pipeline: Faults.RetryBudget must be >= 1 (0 selects the default of %d), got %d", defaultRetryBudget, f.RetryBudget)
	case f.RTO < 0:
		return fmt.Errorf("pipeline: Faults.RTO must be >= 0, got %v", f.RTO)
	case f.RTOCap < 0:
		return fmt.Errorf("pipeline: Faults.RTOCap must be >= 0, got %v", f.RTOCap)
	case f.CrashRank < 0:
		return fmt.Errorf("pipeline: Faults.CrashRank must be >= 0, got %d", f.CrashRank)
	case f.CrashAfterSends < 0:
		return fmt.Errorf("pipeline: Faults.CrashAfterSends must be >= 0, got %d", f.CrashAfterSends)
	case f.CrashHeldRank < 0:
		return fmt.Errorf("pipeline: Faults.CrashHeldRank must be >= 0, got %d", f.CrashHeldRank)
	case f.CrashHeldAcquire < 0:
		return fmt.Errorf("pipeline: Faults.CrashHeldAcquire must be >= 0, got %d", f.CrashHeldAcquire)
	case f.ElasticCrashRank < 0:
		return fmt.Errorf("pipeline: Faults.ElasticCrashRank must be >= 0, got %d", f.ElasticCrashRank)
	case f.ElasticCrashStep < 0:
		return fmt.Errorf("pipeline: Faults.ElasticCrashStep must be >= 0, got %d", f.ElasticCrashStep)
	}
	return nil
}

// FaultKind classifies a structured fault failure.
type FaultKind int

const (
	// FaultCrash: an injected Crash fault fail-stopped the rank.
	FaultCrash FaultKind = iota
	// FaultRetryExhausted: a message stayed lost through the whole
	// retransmission budget.
	FaultRetryExhausted
	// FaultOpTimeout: a single operation exceeded the per-op deadline.
	FaultOpTimeout
	// FaultPeerLost: a multi-process cluster peer died or went silent —
	// its connection to the rendezvous coordinator was lost or its
	// heartbeats stopped. Rank names the dead peer's first rank, so the
	// failure is attributed to the worker that vanished, not to whichever
	// rank happened to be blocked on it.
	FaultPeerLost
)

func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultRetryExhausted:
		return "retry budget exhausted"
	case FaultOpTimeout:
		return "operation deadline exceeded"
	case FaultPeerLost:
		return "cluster peer lost"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// FaultError is the structured, rank-attributed failure a fault produces.
// Runs fail fast with one of these instead of hanging until the global
// deadline.
type FaultError struct {
	// Rank is the user rank the failure is attributed to. When Server
	// is set and the fault happened on a server→user pipe, it is the
	// user rank the server was acting for; for a fault local to a
	// server (e.g. a per-op timeout in its own wait), it is the
	// server/agent index.
	Rank int
	// Server is true when the failing endpoint was a data server acting
	// on behalf of Rank rather than the rank itself.
	Server bool
	// Op names the operation in flight (a message kind, or a wait
	// label for per-op timeouts).
	Op string
	// Kind classifies the failure.
	Kind FaultKind
}

func (e *FaultError) Error() string {
	who := fmt.Sprintf("rank %d", e.Rank)
	if e.Server {
		who += " (server side)"
	}
	return fmt.Sprintf("fault: %s: %s during %s", who, e.Kind, e.Op)
}

// attrRank attributes a fault on the src→dst pipe to a user rank: faults
// at a user endpoint belong to that rank; faults at a server endpoint are
// charged to the user rank it was talking to.
func attrRank(src, dst msg.Addr) (rank int, server bool) {
	if !src.Server {
		return src.ID, false
	}
	if !dst.Server {
		return dst.ID, true
	}
	return src.ID, true
}

// Hash salts, one per independent fault decision.
const (
	saltJitter = 0x9e3779b97f4a7c15
	saltSpike  = 0xbf58476d1ce4e5b9
	saltDup    = 0x94d049bb133111eb
	saltLoss   = 0xd6e8feb86659fd93
	saltRetry  = 0xa0761d6478bd642f
)

const (
	defaultRetryBudget = 8
	defaultRTO         = 500 * time.Microsecond
)

// roll derives a 64-bit pseudo-random value for one decision about one
// message. It depends only on the plan seed, the pair and the sequence
// number — never on timing — so decisions replay across fabrics.
func (f Faults) roll(src, dst msg.Addr, seq, salt uint64) uint64 {
	seed := uint64(f.Seed)
	if seed == 0 {
		seed = 1
	}
	x := seed ^ salt
	x = mix64(x ^ addrBits(src))
	x = mix64(x ^ addrBits(dst))
	x = mix64(x ^ seq)
	return mix64(x)
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func addrBits(a msg.Addr) uint64 {
	b := uint64(uint32(a.ID))
	if a.Server {
		b |= 1 << 32
	}
	return b
}

// hit converts a roll into a probability decision.
func hit(r uint64, prob float64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	return float64(r>>11)/(1<<53) < prob
}

// extra returns the injected extra delay of message seq on the pair and
// whether it includes a spike.
func (f Faults) extra(src, dst msg.Addr, seq uint64) (d time.Duration, spiked bool) {
	if f.Jitter > 0 {
		d += time.Duration(f.roll(src, dst, seq, saltJitter) % uint64(f.Jitter))
	}
	if f.SpikeProb > 0 && f.SpikeDelay > 0 && hit(f.roll(src, dst, seq, saltSpike), f.SpikeProb) {
		d += f.SpikeDelay
		spiked = true
	}
	return d, spiked
}

// dup reports whether message seq should be delivered twice (before the
// per-pair bound is applied).
func (f Faults) dup(src, dst msg.Addr, seq uint64) bool {
	return f.DupProb > 0 && hit(f.roll(src, dst, seq, saltDup), f.DupProb)
}

func (f Faults) dupDelay() time.Duration {
	if f.DupDelay > 0 {
		return f.DupDelay
	}
	if f.Jitter > 0 {
		return f.Jitter
	}
	return time.Microsecond
}

func (f Faults) maxDupsPerPair() int {
	if f.MaxDupsPerPair > 0 {
		return f.MaxDupsPerPair
	}
	return 8
}

func (f Faults) retryBudget() int {
	if f.RetryBudget > 0 {
		return f.RetryBudget
	}
	return defaultRetryBudget
}

func (f Faults) rto() time.Duration {
	if f.RTO > 0 {
		return f.RTO
	}
	return defaultRTO
}

func (f Faults) rtoCap() time.Duration {
	if f.RTOCap > 0 {
		return f.RTOCap
	}
	return 16 * f.rto()
}

func (f Faults) lossBurst() int {
	if f.LossBurst > 1 {
		return f.LossBurst
	}
	return 1
}

// backoff returns the retransmit timeout after the i-th drop of one
// message: RTO doubled i times, capped at RTOCap.
func (f Faults) backoff(i int) time.Duration {
	d, cap := f.rto(), f.rtoCap()
	for ; i > 0 && d < cap; i-- {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	return d
}

// firstCopyLost reports whether the original transmission of message seq
// is dropped. A loss event anchored at sequence s drops the first copy
// of messages s .. s+LossBurst-1 on the pair, so bursts model transient
// outages while remaining a pure function of (seed, pair, seq).
func (f Faults) firstCopyLost(src, dst msg.Addr, seq uint64) bool {
	if f.LossProb <= 0 {
		return false
	}
	for b := 0; b < f.lossBurst(); b++ {
		s := seq - uint64(b)
		if s < 1 || s > seq { // ran past the first message on the pair
			break
		}
		if hit(f.roll(src, dst, s, saltLoss), f.LossProb) {
			return true
		}
	}
	return false
}

// retransLost reports whether retransmission attempt a (1-based) of
// message seq is dropped. Each attempt rolls independently.
func (f Faults) retransLost(src, dst msg.Addr, seq uint64, a int) bool {
	return hit(f.roll(src, dst, seq, saltRetry^mix64(uint64(a))), f.LossProb)
}

// lossAttempts replays the ack/retransmit exchange of message seq
// analytically: it returns how many copies were dropped, the total
// retransmit-timer delay the exchange cost (the sum of the backed-off
// timeouts, folded into the message's arrival), and whether the retry
// budget was exhausted with no copy delivered. Because every per-attempt
// decision is a pure hash of (seed, pair, seq, attempt), the outcome is
// identical on every fabric.
func (f Faults) lossAttempts(src, dst msg.Addr, seq uint64) (drops int, delay time.Duration, exhausted bool) {
	if f.LossProb <= 0 {
		return 0, 0, false
	}
	budget := f.retryBudget()
	for a := 0; a <= budget; a++ {
		var lost bool
		if a == 0 {
			lost = f.firstCopyLost(src, dst, seq)
		} else {
			lost = f.retransLost(src, dst, seq, a)
		}
		if !lost {
			return drops, delay, false
		}
		drops++
		delay += f.backoff(a)
	}
	return drops, delay, true
}

// Config assembles one pipeline.
type Config struct {
	// Params is the cost model.
	Params model.Params
	// ChargeModel selects whether the cost-model stage is active: send
	// and receive overheads are charged and the wire time contributes
	// to arrivals. The simulated fabric always charges; the channel
	// fabric charges only when latency injection is on; the TCP fabric
	// never does (it measures real socket costs).
	ChargeModel bool
	// Faults is the fault-injection plan (zero value: no faults).
	Faults Faults
	// Stats is the trace collector (may be nil).
	Stats *trace.Stats
	// Metrics collects latency histograms and fault counters (may be
	// nil).
	Metrics *Metrics
	// Local reports whether two endpoints share a node, selecting the
	// intra-node latency. nil treats every pair as remote.
	Local func(src, dst msg.Addr) bool
}

// Delivery is one scheduled handoff of a message to the destination
// mailbox: the fabric owes the destination this message at time At.
type Delivery struct {
	Msg *msg.Message
	// At is the fabric time the message becomes available at the
	// destination. Fabrics without a modeled clock (TCP with no
	// faults) receive At equal to the send time.
	At time.Duration
	// Dup marks an injected duplicate copy.
	Dup bool
}

// pairState is the per-directed-pipe sequencing state, consolidated into
// one struct so the send hot path performs a single map lookup instead
// of four and reuses the same cell for every message on the pipe.
type pairState struct {
	fifo time.Duration // last stamped arrival
	seq  uint64        // last assigned sequence number
	seen uint64        // last admitted sequence number (receive side)
	dups int           // duplicates injected
}

// Pipeline is the shared send/receive path of one fabric instance. All
// methods are safe for concurrent use.
type Pipeline struct {
	cfg Config

	mu           sync.Mutex
	pairs        map[Pair]*pairState // sequencing/FIFO/dedup state per pipe
	sends        map[msg.Addr]uint64 // total sends per source (crash fault)
	crashCounted bool                // the crash was counted in metrics
	epoch        uint64              // membership view epoch stamped on sends

	crashMu     sync.Mutex
	crashed     []int  // user ranks that fail-stopped, in crash order
	crashNotify func() // fabric hook, invoked (once per crash) outside crashMu
}

// New builds a pipeline for one fabric instance.
func New(cfg Config) *Pipeline {
	return &Pipeline{
		cfg:   cfg,
		pairs: make(map[Pair]*pairState),
		sends: make(map[msg.Addr]uint64),
	}
}

// pairLocked returns the sequencing state of one directed pipe, creating
// it on first use. Callers hold p.mu.
func (p *Pipeline) pairLocked(pr Pair) *pairState {
	ps := p.pairs[pr]
	if ps == nil {
		ps = &pairState{}
		p.pairs[pr] = ps
	}
	return ps
}

// Faults returns the active fault plan.
func (p *Pipeline) Faults() Faults { return p.cfg.Faults }

// SetEpoch installs the membership view epoch stamped on every
// subsequent send. Elastic fabrics bump it on a view change; messages
// already in flight carry the old epoch and are rejected by Inbound,
// which is what fences out traffic from deposed incarnations.
func (p *Pipeline) SetEpoch(e uint64) {
	p.mu.Lock()
	p.epoch = e
	p.mu.Unlock()
}

// Epoch returns the current membership view epoch.
func (p *Pipeline) Epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// ResetPeer clears the sequencing state of every directed pipe whose
// source or destination endpoint matches. A respawned incarnation
// restarts its sequence numbers at 1, so survivors must forget both the
// receive-side dedup watermark (or every message from the newcomer
// would be suppressed as a duplicate) and the send-side counter (so the
// newcomer's fresh watermark admits them).
func (p *Pipeline) ResetPeer(match func(msg.Addr) bool) {
	p.mu.Lock()
	for pr := range p.pairs {
		if match(pr[0]) || match(pr[1]) {
			delete(p.pairs, pr)
		}
	}
	p.mu.Unlock()
}

// SetCrashNotify installs the fabric's crash broadcast: it is invoked
// once per NoteCrash, outside the pipeline's locks, so the fabric can
// wake blocked waiters (condition variables, kernel re-checks) that
// must now observe the crash instead of spinning on a dead peer.
func (p *Pipeline) SetCrashNotify(fn func()) {
	p.crashMu.Lock()
	p.crashNotify = fn
	p.crashMu.Unlock()
}

// NoteCrash records that a user rank fail-stopped. The crash registry
// is how survivors learn about a dead peer: crash-aware waits consult
// FirstCrashed to convert an otherwise-unbounded spin into a
// rank-attributed FaultCrash, and the lease lock's repair path skips
// registered ranks when splicing the queue. Idempotent per rank.
func (p *Pipeline) NoteCrash(rank int) {
	p.crashMu.Lock()
	for _, r := range p.crashed {
		if r == rank {
			p.crashMu.Unlock()
			return
		}
	}
	p.crashed = append(p.crashed, rank)
	fn := p.crashNotify
	p.crashMu.Unlock()
	if fn != nil {
		fn()
	}
}

// FirstCrashed returns the first rank recorded by NoteCrash, or -1
// when no rank has crashed.
func (p *Pipeline) FirstCrashed() int {
	p.crashMu.Lock()
	defer p.crashMu.Unlock()
	if len(p.crashed) == 0 {
		return -1
	}
	return p.crashed[0]
}

// IsCrashed reports whether rank has been recorded by NoteCrash.
func (p *Pipeline) IsCrashed(rank int) bool {
	p.crashMu.Lock()
	defer p.crashMu.Unlock()
	for _, r := range p.crashed {
		if r == rank {
			return true
		}
	}
	return false
}

// CrashNow builds the fail-stop error for a crash that happens outside
// the send path — the crash-while-holding fault, injected by the lock
// layer after the configured acquisition — counting it in the metrics
// exactly once and registering the rank. The fabric aborts the actor
// with the returned error.
func (p *Pipeline) CrashNow(rank int, op string) *FaultError {
	p.mu.Lock()
	first := !p.crashCounted
	p.crashCounted = true
	p.mu.Unlock()
	p.cfg.Metrics.countCrash(first)
	p.NoteCrash(rank)
	return &FaultError{Rank: rank, Op: op, Kind: FaultCrash}
}

// Send runs the outbound stage chain for m from src to dst: it charges
// the modeled send overhead through charge (when the cost model is
// active), stamps identity, sequence number, send time and arrival,
// replays the reliability stage's ack/retransmit exchange, and records
// the send. clock is read after the overhead charge so arrivals account
// for the time spent injecting. The returned deliveries — the original
// plus any injected duplicate, in arrival order — must each be handed to
// the destination via the fabric's own delivery mechanism and passed
// through Inbound at the destination side.
//
// A non-nil error is always a *FaultError — the sender's rank crashed
// (fail-stop) or the message exhausted its retransmission budget — and
// means no delivery was produced; the fabric must abort the failing
// actor with it rather than hang the destination.
func (p *Pipeline) Send(src, dst msg.Addr, m *msg.Message, clock func() time.Duration, charge func(time.Duration)) ([]Delivery, error) {
	var ds []Delivery
	if err := p.SendTo(src, dst, m, clock, charge, func(d Delivery) { ds = append(ds, d) }); err != nil {
		return nil, err
	}
	return ds, nil
}

// SendTo is the allocation-free form of Send: instead of returning a
// delivery slice it invokes emit once per delivery (the original first,
// then any injected duplicate), in arrival order. The fabrics' hot paths
// call this directly; with no fault injected the whole send performs
// zero heap allocations. emit is called outside the pipeline lock, so it
// may take fabric locks or schedule kernel events freely.
func (p *Pipeline) SendTo(src, dst msg.Addr, m *msg.Message, clock func() time.Duration, charge func(time.Duration), emit func(Delivery)) error {
	if p.cfg.ChargeModel && charge != nil {
		charge(p.cfg.Params.SendOverhead)
	}
	now := clock()

	p.mu.Lock()
	if err := p.crashCheckLocked(src, m); err != nil {
		p.mu.Unlock()
		p.cfg.Metrics.countCrash(err.crashCounted)
		return err.FaultError
	}
	ps := p.pairLocked(Pair{src, dst})
	ps.seq++
	seq := ps.seq
	m.Src, m.Dst = src, dst
	m.Seq, m.Sent = seq, now
	m.Epoch = p.epoch
	m.Dup, m.FaultDelay = false, 0

	drops, retransDelay, exhausted := p.cfg.Faults.lossAttempts(src, dst, seq)
	if exhausted {
		p.mu.Unlock()
		rank, server := attrRank(src, dst)
		p.cfg.Metrics.countRetryExhausted(drops, drops-1)
		return &FaultError{Rank: rank, Server: server, Op: m.Kind.String(), Kind: FaultRetryExhausted}
	}

	var wire time.Duration
	if p.cfg.ChargeModel {
		local := p.cfg.Local != nil && p.cfg.Local(src, dst)
		wire = p.cfg.Params.WireTime(m.PayloadBytes(), local)
	}
	extra, spiked := p.cfg.Faults.extra(src, dst, seq)
	jittered := extra > 0 && p.cfg.Faults.Jitter > 0
	extra += retransDelay
	m.FaultDelay = extra
	at := arrivalLocked(ps, now, wire+extra)
	m.Arrival = at

	var dup *msg.Message
	if p.cfg.Faults.dup(src, dst, seq) && ps.dups < p.cfg.Faults.maxDupsPerPair() {
		ps.dups++
		c := *m // shallow copy; payload is read-only in transit
		c.Dup = true
		c.Arrival = arrivalLocked(ps, now, wire+extra+p.cfg.Faults.dupDelay())
		dup = &c
	}
	p.mu.Unlock()

	p.cfg.Stats.RecordSend(m)
	if dup != nil {
		p.cfg.Stats.RecordSend(dup)
	}
	p.cfg.Metrics.countSend(jittered, spiked, dup != nil, drops)
	emit(Delivery{Msg: m, At: at})
	if dup != nil {
		emit(Delivery{Msg: dup, At: dup.Arrival, Dup: true})
	}
	return nil
}

// crashError pairs the fault with whether this call was the first to
// observe the crash (so metrics count it exactly once).
type crashError struct {
	*FaultError
	crashCounted bool
}

// crashCheckLocked applies the fail-stop crash fault: when src is the
// crash rank, its CrashAfterSends-th send — and every later one — fails.
// Callers hold p.mu.
func (p *Pipeline) crashCheckLocked(src msg.Addr, m *msg.Message) *crashError {
	f := p.cfg.Faults
	if f.CrashAfterSends <= 0 || src.Server || src.ID != f.CrashRank {
		return nil
	}
	p.sends[src]++
	if p.sends[src] < uint64(f.CrashAfterSends) {
		return nil
	}
	first := !p.crashCounted
	p.crashCounted = true
	return &crashError{
		FaultError:   &FaultError{Rank: src.ID, Op: m.Kind.String(), Kind: FaultCrash},
		crashCounted: first,
	}
}

// arrivalLocked computes the delivery time of a message sent at now with
// the given wire time, keeping arrivals monotonic per pipe: a later
// message never arrives before an earlier one, even if it is smaller or
// drew less jitter. Callers hold p.mu.
func arrivalLocked(ps *pairState, now, wire time.Duration) time.Duration {
	at := now + wire
	if at < ps.fifo {
		at = ps.fifo
	}
	ps.fifo = at
	return at
}

// Inbound runs the receive-side stages on a message reaching the
// destination at fabric time now, and reports whether the message may
// enter the mailbox. Duplicates (same pair, non-increasing sequence
// number) are suppressed; admitted messages get their Arrival stamped to
// the actual arrival when the modeled one is earlier or absent — this is
// what populates trace.Event.Arrival on the TCP fabric — and are
// observed by the metrics stage.
// Messages stamped with a membership view epoch older than the current
// one are rejected first: they were in flight when a view change deposed
// their sender's incarnation, and admitting them would let a dead rank's
// writes land after its replacement restored state.
func (p *Pipeline) Inbound(m *msg.Message, now time.Duration) bool {
	if m.Seq != 0 {
		p.mu.Lock()
		if m.Epoch < p.epoch {
			p.mu.Unlock()
			p.cfg.Metrics.countStaleEpoch()
			return false
		}
		ps := p.pairLocked(Pair{m.Src, m.Dst})
		if m.Seq <= ps.seen {
			p.mu.Unlock()
			p.cfg.Metrics.countDupSuppressed()
			return false
		}
		ps.seen = m.Seq
		p.mu.Unlock()
	}
	if m.Arrival < now {
		m.Arrival = now
	}
	p.cfg.Stats.RecordArrival(m)
	p.cfg.Stats.RecordDelivery(m, now)
	p.cfg.Metrics.observe(m)
	return true
}

// RecvCharge charges the modeled receive overhead through charge when
// the cost-model stage is active.
func (p *Pipeline) RecvCharge(charge func(time.Duration)) {
	if p.cfg.ChargeModel && charge != nil {
		charge(p.cfg.Params.RecvOverhead)
	}
}
