package pipeline

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"armci/internal/model"
	"armci/internal/msg"
)

// virtual clock helper: a settable fabric time.
type vclock struct{ t time.Duration }

func (c *vclock) now() time.Duration { return c.t }

func TestArrivalMonotonicPerPair(t *testing.T) {
	p := New(Config{Params: model.Myrinet2000(), ChargeModel: true})
	a, b := msg.User(0), msg.User(1)
	clk := &vclock{}
	// A big message followed by a small one: the small one's raw arrival
	// would be earlier; the FIFO stamp must push it after the big one.
	big := &msg.Message{Kind: msg.KindSend, Data: make([]byte, 64<<10)}
	small := &msg.Message{Kind: msg.KindSend}
	d1, _ := p.Send(a, b, big, clk.now, nil)
	d2, _ := p.Send(a, b, small, clk.now, nil)
	if d2[0].At < d1[0].At {
		t.Fatalf("pipe reordered: %v then %v", d1[0].At, d2[0].At)
	}
	// A different pair is independent of the loaded one.
	d3, _ := p.Send(b, a, &msg.Message{Kind: msg.KindSend}, clk.now, nil)
	if d3[0].At >= d1[0].At {
		t.Fatalf("independent pair delayed behind big transfer: %v >= %v", d3[0].At, d1[0].At)
	}
}

func TestSendStampsIdentity(t *testing.T) {
	p := New(Config{Params: model.Myrinet2000(), ChargeModel: true})
	a, b := msg.User(0), msg.User(1)
	clk := &vclock{t: 5 * time.Microsecond}
	var charged time.Duration
	m := &msg.Message{Kind: msg.KindSend}
	p.Send(a, b, m, clk.now, func(d time.Duration) { charged += d })
	if charged != model.Myrinet2000().SendOverhead {
		t.Fatalf("send overhead charged %v", charged)
	}
	if m.Src != a || m.Dst != b || m.Seq != 1 || m.Sent != 5*time.Microsecond {
		t.Fatalf("identity stamp wrong: %+v", m)
	}
	m2 := &msg.Message{Kind: msg.KindSend}
	p.Send(a, b, m2, clk.now, nil)
	if m2.Seq != 2 {
		t.Fatalf("sequence did not advance: %d", m2.Seq)
	}
}

func TestFaultDecisionsAreDeterministic(t *testing.T) {
	f := Faults{Seed: 7, Jitter: time.Millisecond, SpikeProb: 0.3, SpikeDelay: 5 * time.Millisecond, DupProb: 0.3}
	g := Faults{Seed: 8, Jitter: time.Millisecond, SpikeProb: 0.3, SpikeDelay: 5 * time.Millisecond, DupProb: 0.3}
	a, b := msg.User(0), msg.User(1)
	diverged := false
	for seq := uint64(1); seq <= 200; seq++ {
		d1, s1 := f.extra(a, b, seq)
		d2, s2 := f.extra(a, b, seq)
		if d1 != d2 || s1 != s2 {
			t.Fatalf("same plan, same message, different decision at seq %d", seq)
		}
		if f.dup(a, b, seq) != f.dup(a, b, seq) {
			t.Fatalf("dup decision unstable at seq %d", seq)
		}
		og, sg := g.extra(a, b, seq)
		if d1 != og || s1 != sg || f.dup(a, b, seq) != g.dup(a, b, seq) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("two different seeds produced identical fault patterns over 200 messages")
	}
}

func TestFaultRatesRoughlyMatchProbabilities(t *testing.T) {
	f := Faults{Seed: 1, SpikeProb: 0.25, SpikeDelay: time.Millisecond, DupProb: 0.25}
	a, b := msg.User(0), msg.User(1)
	spikes, dups := 0, 0
	const n = 2000
	for seq := uint64(1); seq <= n; seq++ {
		if _, s := f.extra(a, b, seq); s {
			spikes++
		}
		if f.dup(a, b, seq) {
			dups++
		}
	}
	for name, got := range map[string]int{"spikes": spikes, "dups": dups} {
		if got < n/8 || got > n/2 {
			t.Fatalf("%s rate badly off: %d of %d at prob 0.25", name, got, n)
		}
	}
}

func TestInboundSuppressesDuplicates(t *testing.T) {
	mx := NewMetrics()
	p := New(Config{Metrics: mx})
	a, b := msg.User(0), msg.User(1)
	m := &msg.Message{Kind: msg.KindSend, Src: a, Dst: b, Seq: 1}
	if !p.Inbound(m, 0) {
		t.Fatal("first delivery rejected")
	}
	c := *m
	c.Dup = true
	if p.Inbound(&c, time.Microsecond) {
		t.Fatal("duplicate admitted")
	}
	if got := mx.Faults().DupsSuppressed; got != 1 {
		t.Fatalf("DupsSuppressed = %d", got)
	}
	// A later sequence number on the pair is admitted.
	if !p.Inbound(&msg.Message{Kind: msg.KindSend, Src: a, Dst: b, Seq: 2}, 0) {
		t.Fatal("next message rejected")
	}
	// Unsequenced messages (no pipeline on the send side) always pass.
	if !p.Inbound(&msg.Message{Kind: msg.KindSend, Src: a, Dst: b}, 0) {
		t.Fatal("unsequenced message rejected")
	}
}

func TestInboundStampsArrival(t *testing.T) {
	p := New(Config{})
	m := &msg.Message{Kind: msg.KindSend, Src: msg.User(0), Dst: msg.User(1), Seq: 1}
	p.Inbound(m, 42*time.Microsecond)
	if m.Arrival != 42*time.Microsecond {
		t.Fatalf("arrival not stamped: %v", m.Arrival)
	}
	// A modeled future arrival is preserved.
	m2 := &msg.Message{Kind: msg.KindSend, Src: msg.User(0), Dst: msg.User(1), Seq: 2,
		Arrival: time.Second}
	p.Inbound(m2, 42*time.Microsecond)
	if m2.Arrival != time.Second {
		t.Fatalf("modeled arrival clobbered: %v", m2.Arrival)
	}
}

func TestDuplicateInjectionBoundedPerPair(t *testing.T) {
	p := New(Config{Faults: Faults{Seed: 3, DupProb: 1, MaxDupsPerPair: 2}})
	a, b := msg.User(0), msg.User(1)
	clk := &vclock{}
	total := 0
	for i := 0; i < 20; i++ {
		ds, _ := p.Send(a, b, &msg.Message{Kind: msg.KindSend}, clk.now, nil)
		for _, d := range ds {
			if d.Dup {
				total++
				if !d.Msg.Dup {
					t.Fatal("duplicate delivery not marked on the message")
				}
				if d.At < ds[0].At {
					t.Fatalf("duplicate before original: %v < %v", d.At, ds[0].At)
				}
			}
		}
	}
	if total != 2 {
		t.Fatalf("injected %d duplicates, want the per-pair bound 2", total)
	}
	// The bound is per pair: a different pipe gets its own allowance.
	ds, _ := p.Send(b, a, &msg.Message{Kind: msg.KindSend}, clk.now, nil)
	if len(ds) != 2 {
		t.Fatalf("fresh pair got %d deliveries, want original+dup", len(ds))
	}
}

func TestFaultsValidate(t *testing.T) {
	cases := []struct {
		name string
		f    Faults
		ok   bool
	}{
		{"zero", Faults{}, true},
		{"full plan", Faults{Seed: 1, Jitter: time.Millisecond, SpikeProb: 0.1, SpikeDelay: time.Millisecond, DupProb: 0.1}, true},
		{"negative jitter", Faults{Jitter: -1}, false},
		{"negative spike delay", Faults{SpikeDelay: -1}, false},
		{"negative dup delay", Faults{DupDelay: -1}, false},
		{"spike prob below 0", Faults{SpikeProb: -0.5}, false},
		{"spike prob above 1", Faults{SpikeProb: 1.5}, false},
		{"dup prob above 1", Faults{DupProb: 2}, false},
		{"negative dup cap", Faults{MaxDupsPerPair: -3}, false},
		{"loss plan", Faults{Seed: 2, LossProb: 0.1, LossBurst: 3, RetryBudget: 4, RTO: time.Millisecond, RTOCap: 8 * time.Millisecond}, true},
		{"crash plan", Faults{CrashRank: 1, CrashAfterSends: 5}, true},
		{"loss prob below 0", Faults{LossProb: -0.1}, false},
		{"loss prob above 1", Faults{LossProb: 1.5}, false},
		{"loss prob NaN", Faults{LossProb: math.NaN()}, false},
		{"negative loss burst", Faults{LossBurst: -1}, false},
		{"negative retry budget", Faults{RetryBudget: -1}, false},
		{"negative rto", Faults{RTO: -1}, false},
		{"negative rto cap", Faults{RTOCap: -1}, false},
		{"negative crash rank", Faults{CrashRank: -1}, false},
		{"negative crash send count", Faults{CrashAfterSends: -2}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.f.Validate()
			if tc.ok && err != nil {
				t.Fatalf("valid plan rejected: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("invalid plan %+v accepted", tc.f)
			}
		})
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{100, 200, 400, 800, 100_000} {
		h.add(d)
	}
	if h.Count != 5 || h.Min != 100 || h.Max != 100_000 {
		t.Fatalf("stats wrong: %+v", h)
	}
	if m := h.Mean(); m != (100+200+400+800+100_000)/5 {
		t.Fatalf("mean = %v", m)
	}
	if q := h.Quantile(0.5); q < 200 || q > 1024 {
		t.Fatalf("p50 = %v", q)
	}
	if q := h.Quantile(1); q != 100_000 {
		t.Fatalf("p100 = %v, want clamped to max", q)
	}
	var empty Histogram
	if empty.Mean() != 0 || empty.Quantile(0.99) != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestMetricsObserveAndExport(t *testing.T) {
	mx := NewMetrics()
	mx.SetTimeline(true)
	p := New(Config{Params: model.Myrinet2000(), ChargeModel: true, Metrics: mx})
	a, b := msg.User(0), msg.User(1)
	clk := &vclock{}
	for i := 0; i < 4; i++ {
		ds, _ := p.Send(a, b, &msg.Message{Kind: msg.KindSend, Tag: i}, clk.now, nil)
		for _, d := range ds {
			p.Inbound(d.Msg, d.At)
		}
		clk.t += 100 * time.Microsecond
	}
	if got := mx.Observed(); got != 4 {
		t.Fatalf("observed %d deliveries", got)
	}
	h := mx.KindHistogram(msg.KindSend)
	if h.Count != 4 || h.Mean() <= 0 {
		t.Fatalf("kind histogram: %+v", h)
	}
	if hp := mx.PairHistogram(a, b); hp.Count != 4 {
		t.Fatalf("pair histogram: %+v", hp)
	}
	tl := mx.Timeline()
	if len(tl) != 4 || tl[0].PairSeq != 1 || tl[3].PairSeq != 4 {
		t.Fatalf("timeline: %+v", tl)
	}
	csv := mx.TimelineCSV()
	if !strings.HasPrefix(csv, "seq,kind,src,dst,pair_seq,bytes,sent_us,arrival_us,latency_us\n") {
		t.Fatalf("timeline CSV header: %q", csv)
	}
	if lines := strings.Count(csv, "\n"); lines != 5 {
		t.Fatalf("timeline CSV has %d lines", lines)
	}
	if hcsv := mx.HistogramCSV(); !strings.Contains(hcsv, "kind,bucket_lo_ns") {
		t.Fatalf("histogram CSV: %q", hcsv)
	}
	if s := mx.String(); !strings.Contains(s, "message latency by kind (4 deliveries") {
		t.Fatalf("report: %q", s)
	}
}

func TestNilMetricsAndStatsAreSafe(t *testing.T) {
	p := New(Config{Faults: Faults{Seed: 1, Jitter: time.Microsecond, DupProb: 1}})
	clk := &vclock{}
	ds, _ := p.Send(msg.User(0), msg.User(1), &msg.Message{Kind: msg.KindSend}, clk.now, nil)
	for _, d := range ds {
		p.Inbound(d.Msg, d.At)
	}
}

func TestLossAttemptsDeterministicAndBackedOff(t *testing.T) {
	f := Faults{Seed: 11, LossProb: 0.5, RTO: 100 * time.Microsecond, RTOCap: 400 * time.Microsecond, RetryBudget: 6}
	a, b := msg.User(0), msg.User(1)
	sawDrop := false
	for seq := uint64(1); seq <= 500; seq++ {
		d1, t1, e1 := f.lossAttempts(a, b, seq)
		d2, t2, e2 := f.lossAttempts(a, b, seq)
		if d1 != d2 || t1 != t2 || e1 != e2 {
			t.Fatalf("loss replay unstable at seq %d", seq)
		}
		if e1 {
			continue
		}
		if d1 > 0 {
			sawDrop = true
			// The delay is the sum of the exponentially backed-off,
			// capped timeouts of each drop.
			var want time.Duration
			for i := 0; i < d1; i++ {
				want += f.backoff(i)
			}
			if t1 != want {
				t.Fatalf("seq %d: %d drops delayed %v, want %v", seq, d1, t1, want)
			}
		}
	}
	if !sawDrop {
		t.Fatal("500 messages at 50% loss produced no recovered drop")
	}
	if got := f.backoff(10); got != f.RTOCap {
		t.Fatalf("backoff not capped: %v", got)
	}
	if f.backoff(0) != f.RTO || f.backoff(1) != 2*f.RTO {
		t.Fatalf("backoff base/doubling wrong: %v, %v", f.backoff(0), f.backoff(1))
	}
}

func TestLossBurstExtendsDrops(t *testing.T) {
	a, b := msg.User(0), msg.User(1)
	single := Faults{Seed: 5, LossProb: 0.1}
	burst := Faults{Seed: 5, LossProb: 0.1, LossBurst: 4}
	const n = 2000
	count := func(f Faults) int {
		c := 0
		for seq := uint64(1); seq <= n; seq++ {
			if f.firstCopyLost(a, b, seq) {
				c++
			}
		}
		return c
	}
	ns, nb := count(single), count(burst)
	if nb <= ns {
		t.Fatalf("burst plan dropped %d first copies, single-loss plan %d; burst should drop more", nb, ns)
	}
	// Every single-loss drop anchors a run of burst consecutive drops.
	for seq := uint64(1); seq <= n-4; seq++ {
		if single.firstCopyLost(a, b, seq) {
			for off := uint64(0); off < 4; off++ {
				if !burst.firstCopyLost(a, b, seq+off) {
					t.Fatalf("burst hole: anchor %d, offset %d not dropped", seq, off)
				}
			}
		}
	}
}

func TestRetryExhaustionFailsSendWithCounters(t *testing.T) {
	mx := NewMetrics()
	p := New(Config{
		Faults:  Faults{Seed: 1, LossProb: 1, RetryBudget: 2},
		Metrics: mx,
	})
	clk := &vclock{}
	ds, err := p.Send(msg.User(3), msg.ServerOf(0), &msg.Message{Kind: msg.KindPut}, clk.now, nil)
	if ds != nil {
		t.Fatalf("exhausted send still produced deliveries: %v", ds)
	}
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("error %v is not a *FaultError", err)
	}
	if fe.Kind != FaultRetryExhausted || fe.Rank != 3 || fe.Server || fe.Op != msg.KindPut.String() {
		t.Fatalf("wrong attribution: %+v", fe)
	}
	f := mx.Faults()
	// Budget 2: original + 2 retransmissions all dropped.
	if f.Dropped != 3 || f.Retransmits != 2 || f.RetryExhausted != 1 {
		t.Fatalf("counters: %+v", f)
	}
}

func TestRetryExhaustionAttributesServerSends(t *testing.T) {
	p := New(Config{Faults: Faults{Seed: 1, LossProb: 1, RetryBudget: 1}})
	clk := &vclock{}
	_, err := p.Send(msg.ServerOf(0), msg.User(2), &msg.Message{Kind: msg.KindGetResp}, clk.now, nil)
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("error %v is not a *FaultError", err)
	}
	if fe.Rank != 2 || !fe.Server {
		t.Fatalf("server reply fault not attributed to destination rank: %+v", fe)
	}
}

func TestRecoveredLossDelaysArrivalAndCounts(t *testing.T) {
	mx := NewMetrics()
	base := Faults{Seed: 11, LossProb: 0.25, RTO: 100 * time.Microsecond, RetryBudget: 8}
	p := New(Config{Faults: base, Metrics: mx})
	clean := New(Config{})
	a, b := msg.User(0), msg.User(1)
	clk := &vclock{}
	for seq := uint64(1); seq <= 200; seq++ {
		drops, delay, exhausted := base.lossAttempts(a, b, seq)
		if exhausted {
			t.Fatalf("seq %d exhausted at budget 8", seq)
		}
		ds, err := p.Send(a, b, &msg.Message{Kind: msg.KindSend}, clk.now, nil)
		if err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
		ref, _ := clean.Send(a, b, &msg.Message{Kind: msg.KindSend}, clk.now, nil)
		if drops > 0 {
			if ds[0].Msg.FaultDelay < delay {
				t.Fatalf("seq %d: retransmit delay %v not folded into FaultDelay %v", seq, delay, ds[0].Msg.FaultDelay)
			}
			if ds[0].At < ref[0].At+delay {
				t.Fatalf("seq %d: arrival %v not delayed by %v", seq, ds[0].At, delay)
			}
		}
	}
	f := mx.Faults()
	if f.Dropped == 0 || f.Retransmits == 0 {
		t.Fatalf("no retransmit activity recorded: %+v", f)
	}
	if f.Dropped != f.Retransmits {
		t.Fatalf("without exhaustion every drop is one retransmit: %+v", f)
	}
	if f.RetryExhausted != 0 || f.Crashes != 0 {
		t.Fatalf("spurious failures: %+v", f)
	}
}

func TestCrashFailsNthSend(t *testing.T) {
	mx := NewMetrics()
	p := New(Config{
		Faults:  Faults{CrashRank: 2, CrashAfterSends: 3},
		Metrics: mx,
	})
	clk := &vclock{}
	crasher, other := msg.User(2), msg.User(0)
	dst := msg.ServerOf(0)
	for i := 1; i <= 2; i++ {
		if _, err := p.Send(crasher, dst, &msg.Message{Kind: msg.KindPut}, clk.now, nil); err != nil {
			t.Fatalf("send %d before crash failed: %v", i, err)
		}
	}
	_, err := p.Send(crasher, dst, &msg.Message{Kind: msg.KindLockReq}, clk.now, nil)
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("3rd send error %v is not a *FaultError", err)
	}
	if fe.Kind != FaultCrash || fe.Rank != 2 || fe.Server || fe.Op != msg.KindLockReq.String() {
		t.Fatalf("wrong crash attribution: %+v", fe)
	}
	// The crashed rank stays dead; other ranks are unaffected.
	if _, err := p.Send(crasher, dst, &msg.Message{Kind: msg.KindPut}, clk.now, nil); err == nil {
		t.Fatal("crashed rank sent again")
	}
	if _, err := p.Send(other, dst, &msg.Message{Kind: msg.KindPut}, clk.now, nil); err != nil {
		t.Fatalf("unrelated rank affected by crash: %v", err)
	}
	if got := mx.Faults().Crashes; got != 1 {
		t.Fatalf("Crashes = %d, want exactly 1", got)
	}
}

func TestFaultErrorStrings(t *testing.T) {
	e := &FaultError{Rank: 4, Op: "put", Kind: FaultRetryExhausted}
	if s := e.Error(); !strings.Contains(s, "rank 4") || !strings.Contains(s, "retry budget exhausted") || !strings.Contains(s, "put") {
		t.Fatalf("error text: %q", s)
	}
	se := &FaultError{Rank: 1, Server: true, Op: "get-resp", Kind: FaultCrash}
	if s := se.Error(); !strings.Contains(s, "server side") {
		t.Fatalf("server-side error text: %q", s)
	}
	if FaultOpTimeout.String() != "operation deadline exceeded" {
		t.Fatalf("FaultOpTimeout.String() = %q", FaultOpTimeout.String())
	}
}

// TestInboundRejectsStaleEpoch pins the elastic fencing rule: once the
// view epoch advances, in-flight messages stamped with the old epoch are
// rejected (and counted), current-epoch traffic still flows, and sends
// pick up the new stamp.
func TestInboundRejectsStaleEpoch(t *testing.T) {
	mx := NewMetrics()
	p := New(Config{Metrics: mx})
	a, b := msg.User(0), msg.User(1)
	clk := &vclock{}

	old := &msg.Message{Kind: msg.KindSend}
	p.Send(a, b, old, clk.now, nil)
	if old.Epoch != 0 {
		t.Fatalf("initial epoch stamp = %d", old.Epoch)
	}

	p.SetEpoch(3)
	if p.Inbound(old, 0) {
		t.Fatal("stale-epoch message admitted")
	}
	if got := mx.Faults().StaleEpochs; got != 1 {
		t.Fatalf("StaleEpochs = %d", got)
	}

	cur := &msg.Message{Kind: msg.KindSend}
	p.Send(a, b, cur, clk.now, nil)
	if cur.Epoch != 3 {
		t.Fatalf("send not stamped with new epoch: %d", cur.Epoch)
	}
	if !p.Inbound(cur, 0) {
		t.Fatal("current-epoch message rejected")
	}
	// A future epoch (receiver lagging behind a view change) is let
	// through; the receiver is about to install that view itself.
	if !p.Inbound(&msg.Message{Kind: msg.KindSend, Src: a, Dst: b, Seq: 9, Epoch: 4}, 0) {
		t.Fatal("future-epoch message rejected")
	}
}

// TestResetPeerForgetsPairState pins the respawn handshake: after the
// pair state toward a dead node is reset, a fresh incarnation's sequence
// numbers (restarting at 1) are admitted, while unrelated pairs keep
// their dedup watermarks.
func TestResetPeerForgetsPairState(t *testing.T) {
	p := New(Config{})
	a, b, c := msg.User(0), msg.User(1), msg.User(2)
	for seq := uint64(1); seq <= 3; seq++ {
		p.Inbound(&msg.Message{Kind: msg.KindSend, Src: b, Dst: a, Seq: seq}, 0)
		p.Inbound(&msg.Message{Kind: msg.KindSend, Src: c, Dst: a, Seq: seq}, 0)
	}
	// Without a reset, the old watermark suppresses a restarted peer.
	if p.Inbound(&msg.Message{Kind: msg.KindSend, Src: b, Dst: a, Seq: 1}, 0) {
		t.Fatal("restarted sequence admitted without reset")
	}
	p.ResetPeer(func(ad msg.Addr) bool { return ad == b })
	if !p.Inbound(&msg.Message{Kind: msg.KindSend, Src: b, Dst: a, Seq: 1}, 0) {
		t.Fatal("fresh incarnation's first message rejected after reset")
	}
	if p.Inbound(&msg.Message{Kind: msg.KindSend, Src: c, Dst: a, Seq: 2}, 0) {
		t.Fatal("unrelated pair lost its dedup watermark")
	}
	// The send-side counter toward the reset peer restarts at 1 too.
	m := &msg.Message{Kind: msg.KindSend}
	clk := &vclock{}
	p.Send(b, a, m, clk.now, nil)
	if m.Seq != 1 {
		t.Fatalf("send counter survived reset: seq %d", m.Seq)
	}
}
