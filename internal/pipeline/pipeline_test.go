package pipeline

import (
	"strings"
	"testing"
	"time"

	"armci/internal/model"
	"armci/internal/msg"
)

// virtual clock helper: a settable fabric time.
type vclock struct{ t time.Duration }

func (c *vclock) now() time.Duration { return c.t }

func TestArrivalMonotonicPerPair(t *testing.T) {
	p := New(Config{Params: model.Myrinet2000(), ChargeModel: true})
	a, b := msg.User(0), msg.User(1)
	clk := &vclock{}
	// A big message followed by a small one: the small one's raw arrival
	// would be earlier; the FIFO stamp must push it after the big one.
	big := &msg.Message{Kind: msg.KindSend, Data: make([]byte, 64<<10)}
	small := &msg.Message{Kind: msg.KindSend}
	d1 := p.Send(a, b, big, clk.now, nil)
	d2 := p.Send(a, b, small, clk.now, nil)
	if d2[0].At < d1[0].At {
		t.Fatalf("pipe reordered: %v then %v", d1[0].At, d2[0].At)
	}
	// A different pair is independent of the loaded one.
	d3 := p.Send(b, a, &msg.Message{Kind: msg.KindSend}, clk.now, nil)
	if d3[0].At >= d1[0].At {
		t.Fatalf("independent pair delayed behind big transfer: %v >= %v", d3[0].At, d1[0].At)
	}
}

func TestSendStampsIdentity(t *testing.T) {
	p := New(Config{Params: model.Myrinet2000(), ChargeModel: true})
	a, b := msg.User(0), msg.User(1)
	clk := &vclock{t: 5 * time.Microsecond}
	var charged time.Duration
	m := &msg.Message{Kind: msg.KindSend}
	p.Send(a, b, m, clk.now, func(d time.Duration) { charged += d })
	if charged != model.Myrinet2000().SendOverhead {
		t.Fatalf("send overhead charged %v", charged)
	}
	if m.Src != a || m.Dst != b || m.Seq != 1 || m.Sent != 5*time.Microsecond {
		t.Fatalf("identity stamp wrong: %+v", m)
	}
	m2 := &msg.Message{Kind: msg.KindSend}
	p.Send(a, b, m2, clk.now, nil)
	if m2.Seq != 2 {
		t.Fatalf("sequence did not advance: %d", m2.Seq)
	}
}

func TestFaultDecisionsAreDeterministic(t *testing.T) {
	f := Faults{Seed: 7, Jitter: time.Millisecond, SpikeProb: 0.3, SpikeDelay: 5 * time.Millisecond, DupProb: 0.3}
	g := Faults{Seed: 8, Jitter: time.Millisecond, SpikeProb: 0.3, SpikeDelay: 5 * time.Millisecond, DupProb: 0.3}
	a, b := msg.User(0), msg.User(1)
	diverged := false
	for seq := uint64(1); seq <= 200; seq++ {
		d1, s1 := f.extra(a, b, seq)
		d2, s2 := f.extra(a, b, seq)
		if d1 != d2 || s1 != s2 {
			t.Fatalf("same plan, same message, different decision at seq %d", seq)
		}
		if f.dup(a, b, seq) != f.dup(a, b, seq) {
			t.Fatalf("dup decision unstable at seq %d", seq)
		}
		og, sg := g.extra(a, b, seq)
		if d1 != og || s1 != sg || f.dup(a, b, seq) != g.dup(a, b, seq) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("two different seeds produced identical fault patterns over 200 messages")
	}
}

func TestFaultRatesRoughlyMatchProbabilities(t *testing.T) {
	f := Faults{Seed: 1, SpikeProb: 0.25, SpikeDelay: time.Millisecond, DupProb: 0.25}
	a, b := msg.User(0), msg.User(1)
	spikes, dups := 0, 0
	const n = 2000
	for seq := uint64(1); seq <= n; seq++ {
		if _, s := f.extra(a, b, seq); s {
			spikes++
		}
		if f.dup(a, b, seq) {
			dups++
		}
	}
	for name, got := range map[string]int{"spikes": spikes, "dups": dups} {
		if got < n/8 || got > n/2 {
			t.Fatalf("%s rate badly off: %d of %d at prob 0.25", name, got, n)
		}
	}
}

func TestInboundSuppressesDuplicates(t *testing.T) {
	mx := NewMetrics()
	p := New(Config{Metrics: mx})
	a, b := msg.User(0), msg.User(1)
	m := &msg.Message{Kind: msg.KindSend, Src: a, Dst: b, Seq: 1}
	if !p.Inbound(m, 0) {
		t.Fatal("first delivery rejected")
	}
	c := *m
	c.Dup = true
	if p.Inbound(&c, time.Microsecond) {
		t.Fatal("duplicate admitted")
	}
	if got := mx.Faults().DupsSuppressed; got != 1 {
		t.Fatalf("DupsSuppressed = %d", got)
	}
	// A later sequence number on the pair is admitted.
	if !p.Inbound(&msg.Message{Kind: msg.KindSend, Src: a, Dst: b, Seq: 2}, 0) {
		t.Fatal("next message rejected")
	}
	// Unsequenced messages (no pipeline on the send side) always pass.
	if !p.Inbound(&msg.Message{Kind: msg.KindSend, Src: a, Dst: b}, 0) {
		t.Fatal("unsequenced message rejected")
	}
}

func TestInboundStampsArrival(t *testing.T) {
	p := New(Config{})
	m := &msg.Message{Kind: msg.KindSend, Src: msg.User(0), Dst: msg.User(1), Seq: 1}
	p.Inbound(m, 42*time.Microsecond)
	if m.Arrival != 42*time.Microsecond {
		t.Fatalf("arrival not stamped: %v", m.Arrival)
	}
	// A modeled future arrival is preserved.
	m2 := &msg.Message{Kind: msg.KindSend, Src: msg.User(0), Dst: msg.User(1), Seq: 2,
		Arrival: time.Second}
	p.Inbound(m2, 42*time.Microsecond)
	if m2.Arrival != time.Second {
		t.Fatalf("modeled arrival clobbered: %v", m2.Arrival)
	}
}

func TestDuplicateInjectionBoundedPerPair(t *testing.T) {
	p := New(Config{Faults: Faults{Seed: 3, DupProb: 1, MaxDupsPerPair: 2}})
	a, b := msg.User(0), msg.User(1)
	clk := &vclock{}
	total := 0
	for i := 0; i < 20; i++ {
		ds := p.Send(a, b, &msg.Message{Kind: msg.KindSend}, clk.now, nil)
		for _, d := range ds {
			if d.Dup {
				total++
				if !d.Msg.Dup {
					t.Fatal("duplicate delivery not marked on the message")
				}
				if d.At < ds[0].At {
					t.Fatalf("duplicate before original: %v < %v", d.At, ds[0].At)
				}
			}
		}
	}
	if total != 2 {
		t.Fatalf("injected %d duplicates, want the per-pair bound 2", total)
	}
	// The bound is per pair: a different pipe gets its own allowance.
	ds := p.Send(b, a, &msg.Message{Kind: msg.KindSend}, clk.now, nil)
	if len(ds) != 2 {
		t.Fatalf("fresh pair got %d deliveries, want original+dup", len(ds))
	}
}

func TestFaultsValidate(t *testing.T) {
	cases := []struct {
		name string
		f    Faults
		ok   bool
	}{
		{"zero", Faults{}, true},
		{"full plan", Faults{Seed: 1, Jitter: time.Millisecond, SpikeProb: 0.1, SpikeDelay: time.Millisecond, DupProb: 0.1}, true},
		{"negative jitter", Faults{Jitter: -1}, false},
		{"negative spike delay", Faults{SpikeDelay: -1}, false},
		{"negative dup delay", Faults{DupDelay: -1}, false},
		{"spike prob below 0", Faults{SpikeProb: -0.5}, false},
		{"spike prob above 1", Faults{SpikeProb: 1.5}, false},
		{"dup prob above 1", Faults{DupProb: 2}, false},
		{"negative dup cap", Faults{MaxDupsPerPair: -3}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.f.Validate()
			if tc.ok && err != nil {
				t.Fatalf("valid plan rejected: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("invalid plan %+v accepted", tc.f)
			}
		})
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{100, 200, 400, 800, 100_000} {
		h.add(d)
	}
	if h.Count != 5 || h.Min != 100 || h.Max != 100_000 {
		t.Fatalf("stats wrong: %+v", h)
	}
	if m := h.Mean(); m != (100+200+400+800+100_000)/5 {
		t.Fatalf("mean = %v", m)
	}
	if q := h.Quantile(0.5); q < 200 || q > 1024 {
		t.Fatalf("p50 = %v", q)
	}
	if q := h.Quantile(1); q != 100_000 {
		t.Fatalf("p100 = %v, want clamped to max", q)
	}
	var empty Histogram
	if empty.Mean() != 0 || empty.Quantile(0.99) != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestMetricsObserveAndExport(t *testing.T) {
	mx := NewMetrics()
	mx.SetTimeline(true)
	p := New(Config{Params: model.Myrinet2000(), ChargeModel: true, Metrics: mx})
	a, b := msg.User(0), msg.User(1)
	clk := &vclock{}
	for i := 0; i < 4; i++ {
		for _, d := range p.Send(a, b, &msg.Message{Kind: msg.KindSend, Tag: i}, clk.now, nil) {
			p.Inbound(d.Msg, d.At)
		}
		clk.t += 100 * time.Microsecond
	}
	if got := mx.Observed(); got != 4 {
		t.Fatalf("observed %d deliveries", got)
	}
	h := mx.KindHistogram(msg.KindSend)
	if h.Count != 4 || h.Mean() <= 0 {
		t.Fatalf("kind histogram: %+v", h)
	}
	if hp := mx.PairHistogram(a, b); hp.Count != 4 {
		t.Fatalf("pair histogram: %+v", hp)
	}
	tl := mx.Timeline()
	if len(tl) != 4 || tl[0].PairSeq != 1 || tl[3].PairSeq != 4 {
		t.Fatalf("timeline: %+v", tl)
	}
	csv := mx.TimelineCSV()
	if !strings.HasPrefix(csv, "seq,kind,src,dst,pair_seq,bytes,sent_us,arrival_us,latency_us\n") {
		t.Fatalf("timeline CSV header: %q", csv)
	}
	if lines := strings.Count(csv, "\n"); lines != 5 {
		t.Fatalf("timeline CSV has %d lines", lines)
	}
	if hcsv := mx.HistogramCSV(); !strings.Contains(hcsv, "kind,bucket_lo_ns") {
		t.Fatalf("histogram CSV: %q", hcsv)
	}
	if s := mx.String(); !strings.Contains(s, "message latency by kind (4 deliveries") {
		t.Fatalf("report: %q", s)
	}
}

func TestNilMetricsAndStatsAreSafe(t *testing.T) {
	p := New(Config{Faults: Faults{Seed: 1, Jitter: time.Microsecond, DupProb: 1}})
	clk := &vclock{}
	for _, d := range p.Send(msg.User(0), msg.User(1), &msg.Message{Kind: msg.KindSend}, clk.now, nil) {
		p.Inbound(d.Msg, d.At)
	}
}
