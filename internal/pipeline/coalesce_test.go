package pipeline_test

import (
	"bytes"
	"fmt"
	"testing"

	"armci/internal/msg"
	"armci/internal/pipeline"
	"armci/internal/shmem"
	"armci/internal/wire"
)

func bput(rank, off, n int) wire.BatchEntry {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(off + i)
	}
	return wire.BatchEntry{
		Op:   wire.BatchPut,
		Ptr:  shmem.Ptr{Rank: int32(rank), Kind: shmem.KindByte, Seg: 1, Off: int64(off)},
		Data: data,
	}
}

func TestCoalesceOptsValidate(t *testing.T) {
	cases := []struct {
		opts pipeline.CoalesceOpts
		ok   bool
	}{
		{pipeline.CoalesceOpts{}, true},
		{pipeline.CoalesceOpts{Enabled: true}, true},
		{pipeline.CoalesceOpts{Enabled: true, MaxOps: 4, MaxBytes: 64, MaxEntryBytes: 16}, true},
		{pipeline.CoalesceOpts{MaxOps: -1}, false},
		{pipeline.CoalesceOpts{MaxBytes: -1}, false},
		{pipeline.CoalesceOpts{MaxEntryBytes: -1}, false},
		{pipeline.CoalesceOpts{ReorderHazard: true}, false}, // hazard needs Enabled
	}
	for i, c := range cases {
		if err := c.opts.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d: Validate(%+v) = %v, want ok=%v", i, c.opts, err, c.ok)
		}
	}
}

func TestCoalescerFits(t *testing.T) {
	c := pipeline.NewCoalescer(0, pipeline.CoalesceOpts{Enabled: true, MaxEntryBytes: 16})
	for n, want := range map[int]bool{0: false, -1: false, 1: true, 16: true, 17: false} {
		if got := c.Fits(n); got != want {
			t.Errorf("Fits(%d) = %v, want %v", n, got, want)
		}
	}
}

// TestCoalescerFlushesAtMaxOps: the buffer ships exactly when the entry
// threshold fills, with all entries in program order.
func TestCoalescerFlushesAtMaxOps(t *testing.T) {
	const maxOps = 4
	c := pipeline.NewCoalescer(2, pipeline.CoalesceOpts{Enabled: true, MaxOps: maxOps})
	for i := 0; i < maxOps-1; i++ {
		if m := c.Add(1, bput(3, i*8, 8)); m != nil {
			t.Fatalf("premature flush after %d entries", i+1)
		}
	}
	if got := c.Pending(1); got != maxOps-1 {
		t.Fatalf("Pending = %d, want %d", got, maxOps-1)
	}
	m := c.Add(1, bput(3, (maxOps-1)*8, 8))
	if m == nil {
		t.Fatal("no flush at MaxOps entries")
	}
	if m.Kind != msg.KindBatch || m.Origin != 2 || m.N != maxOps {
		t.Fatalf("flushed frame = kind %v origin %d n %d, want batch/2/%d", m.Kind, m.Origin, m.N, maxOps)
	}
	entries, err := wire.DecodeBatch(m.Data)
	if err != nil {
		t.Fatalf("decoding flushed frame: %v", err)
	}
	for i, e := range entries {
		if want := bput(3, i*8, 8); e.Ptr != want.Ptr || !bytes.Equal(e.Data, want.Data) {
			t.Fatalf("entry %d out of program order: %+v", i, e)
		}
	}
	if got := c.Pending(1); got != 0 {
		t.Fatalf("Pending = %d after flush, want 0", got)
	}
}

// TestCoalescerFlushesAtMaxBytes: the payload threshold also ships the
// buffer, regardless of entry count.
func TestCoalescerFlushesAtMaxBytes(t *testing.T) {
	c := pipeline.NewCoalescer(0, pipeline.CoalesceOpts{Enabled: true, MaxOps: 100, MaxBytes: 64})
	if m := c.Add(1, bput(1, 0, 32)); m != nil {
		t.Fatal("flushed below MaxBytes")
	}
	m := c.Add(1, bput(1, 32, 32))
	if m == nil {
		t.Fatal("no flush at MaxBytes payload")
	}
	if m.N != 2 {
		t.Fatalf("flushed %d entries, want 2", m.N)
	}
}

// TestCoalescerBuffersPerDestination: entries for different nodes land
// in independent buffers; FlushAll drains them in ascending node order.
func TestCoalescerBuffersPerDestination(t *testing.T) {
	c := pipeline.NewCoalescer(0, pipeline.CoalesceOpts{Enabled: true})
	for _, node := range []int{3, 1, 2, 1, 3} {
		if m := c.Add(node, bput(node, c.Pending(node)*8, 8)); m != nil {
			t.Fatalf("unexpected flush for node %d", node)
		}
	}
	if got := fmt.Sprint(c.Pending(1), c.Pending(2), c.Pending(3)); got != "2 1 2" {
		t.Fatalf("pending per node = %s, want 2 1 2", got)
	}
	batches := c.FlushAll()
	var order []int
	for _, b := range batches {
		order = append(order, b.Node)
		if b.Msg == nil || b.Msg.Kind != msg.KindBatch {
			t.Fatalf("node %d: bad flushed frame %+v", b.Node, b.Msg)
		}
	}
	if fmt.Sprint(order) != "[1 2 3]" {
		t.Fatalf("FlushAll order = %v, want ascending [1 2 3]", order)
	}
	if again := c.FlushAll(); len(again) != 0 {
		t.Fatalf("second FlushAll returned %d batches, want 0", len(again))
	}
	if c.Flush(1) != nil {
		t.Fatal("Flush of an empty buffer returned a frame")
	}
}

// TestCoalescerReorderHazard: the armed bug ships entries back to
// front, and the frame still decodes (offsets are assigned at encode
// time) — the reorder is an application-order bug, which is exactly
// what the conformance harness's state oracle must catch.
func TestCoalescerReorderHazard(t *testing.T) {
	c := pipeline.NewCoalescer(0, pipeline.CoalesceOpts{Enabled: true, ReorderHazard: true})
	for i := 0; i < 3; i++ {
		c.Add(1, bput(1, i*8, 8))
	}
	m := c.Flush(1)
	if m == nil {
		t.Fatal("no frame")
	}
	entries, err := wire.DecodeBatch(m.Data)
	if err != nil {
		t.Fatalf("hazard frame must still decode: %v", err)
	}
	for i, e := range entries {
		if want := int64((2 - i) * 8); e.Ptr.Off != want {
			t.Fatalf("entry %d targets offset %d, want reversed %d", i, e.Ptr.Off, want)
		}
	}
}
