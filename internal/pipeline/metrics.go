package pipeline

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"time"

	"armci/internal/msg"
)

// Histogram is a log₂-bucketed latency distribution. Bucket i counts
// latencies in [2^(i-1), 2^i) nanoseconds (bucket 0 counts <= 1 ns).
type Histogram struct {
	Count   int
	Sum     time.Duration
	Min     time.Duration
	Max     time.Duration
	Buckets [64]int
}

func bucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return bits.Len64(uint64(d))
}

// bucketHi is the exclusive upper bound of bucket i.
func bucketHi(i int) time.Duration {
	if i >= 63 {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(uint64(1) << uint(i))
}

func (h *Histogram) add(d time.Duration) {
	if h.Count == 0 || d < h.Min {
		h.Min = d
	}
	if d > h.Max {
		h.Max = d
	}
	h.Count++
	h.Sum += d
	h.Buckets[bucketOf(d)]++
}

// Mean returns the average latency.
func (h *Histogram) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) as the upper bound of
// the bucket holding it.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	target := int(q * float64(h.Count))
	if target >= h.Count {
		target = h.Count - 1
	}
	cum := 0
	for i, c := range h.Buckets {
		cum += c
		if cum > target {
			hi := bucketHi(i)
			if hi > h.Max {
				hi = h.Max
			}
			return hi
		}
	}
	return h.Max
}

// Sample is one delivered message on the timeline.
type Sample struct {
	Seq     int // admission order
	Kind    msg.Kind
	Src     msg.Addr
	Dst     msg.Addr
	PairSeq uint64
	Size    int
	Sent    time.Duration // fabric time the send was initiated
	Arrival time.Duration // fabric time the message arrived
}

// FaultCounts reports how many faults the injection stage produced.
type FaultCounts struct {
	// Jittered counts messages that drew a non-zero jitter delay.
	Jittered int
	// Spiked counts messages that suffered a latency spike.
	Spiked int
	// DupsInjected counts duplicate copies handed to the fabric.
	DupsInjected int
	// DupsSuppressed counts duplicates dropped by receive-side dedup.
	DupsSuppressed int
	// Dropped counts message copies lost on the wire (including copies
	// of messages that later exhausted their retry budget).
	Dropped int
	// Retransmits counts retransmissions performed by the reliability
	// stage.
	Retransmits int
	// RetryExhausted counts messages that stayed lost through the whole
	// retransmission budget and failed the send.
	RetryExhausted int
	// Crashes counts injected fail-stop crashes (at most one per run).
	Crashes int
	// StaleEpochs counts messages rejected because they carried a
	// membership view epoch older than the receiver's — in-flight
	// traffic from a deposed incarnation fenced out after a respawn.
	StaleEpochs int
}

// Metrics collects per-kind and per-pair latency histograms, fault
// counters and (optionally) a delivery timeline, fed by the pipeline's
// receive stage. Latency is arrival minus send time — virtual on the
// simulated fabric, wall on the concurrent ones. One Metrics may be
// shared across runs to aggregate an experiment. All methods are safe
// for concurrent use and work on a nil receiver (as no-ops for the
// recording side).
type Metrics struct {
	mu       sync.Mutex
	byKind   map[msg.Kind]*Histogram
	byPair   map[Pair]*Histogram
	faults   FaultCounts
	timeline []Sample
	capture  bool
}

// NewMetrics returns an empty collector.
func NewMetrics() *Metrics {
	return &Metrics{byKind: make(map[msg.Kind]*Histogram), byPair: make(map[Pair]*Histogram)}
}

// SetTimeline toggles capture of the per-delivery timeline (off by
// default; histograms and counters are always on).
func (x *Metrics) SetTimeline(on bool) {
	x.mu.Lock()
	x.capture = on
	x.mu.Unlock()
}

func (x *Metrics) observe(m *msg.Message) {
	if x == nil {
		return
	}
	lat := m.Arrival - m.Sent
	x.mu.Lock()
	defer x.mu.Unlock()
	hk := x.byKind[m.Kind]
	if hk == nil {
		hk = &Histogram{}
		x.byKind[m.Kind] = hk
	}
	hk.add(lat)
	pair := Pair{m.Src, m.Dst}
	hp := x.byPair[pair]
	if hp == nil {
		hp = &Histogram{}
		x.byPair[pair] = hp
	}
	hp.add(lat)
	if x.capture {
		x.timeline = append(x.timeline, Sample{
			Seq: len(x.timeline) + 1, Kind: m.Kind, Src: m.Src, Dst: m.Dst,
			PairSeq: m.Seq, Size: m.PayloadBytes(), Sent: m.Sent, Arrival: m.Arrival,
		})
	}
}

func (x *Metrics) countSend(jittered, spiked, dup bool, retransmits int) {
	if x == nil {
		return
	}
	x.mu.Lock()
	if jittered {
		x.faults.Jittered++
	}
	if spiked {
		x.faults.Spiked++
	}
	if dup {
		x.faults.DupsInjected++
	}
	// Every drop of a successfully delivered message triggered exactly
	// one retransmission.
	x.faults.Dropped += retransmits
	x.faults.Retransmits += retransmits
	x.mu.Unlock()
}

func (x *Metrics) countRetryExhausted(dropped, retransmits int) {
	if x == nil {
		return
	}
	x.mu.Lock()
	x.faults.Dropped += dropped
	x.faults.Retransmits += retransmits
	x.faults.RetryExhausted++
	x.mu.Unlock()
}

func (x *Metrics) countCrash(first bool) {
	if x == nil || !first {
		return
	}
	x.mu.Lock()
	x.faults.Crashes++
	x.mu.Unlock()
}

func (x *Metrics) countDupSuppressed() {
	if x == nil {
		return
	}
	x.mu.Lock()
	x.faults.DupsSuppressed++
	x.mu.Unlock()
}

func (x *Metrics) countStaleEpoch() {
	if x == nil {
		return
	}
	x.mu.Lock()
	x.faults.StaleEpochs++
	x.mu.Unlock()
}

// Faults returns the fault counters.
func (x *Metrics) Faults() FaultCounts {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.faults
}

// KindHistogram returns a copy of the histogram of one message kind.
func (x *Metrics) KindHistogram(k msg.Kind) Histogram {
	x.mu.Lock()
	defer x.mu.Unlock()
	if h := x.byKind[k]; h != nil {
		return *h
	}
	return Histogram{}
}

// PairHistogram returns a copy of the histogram of one directed pair.
func (x *Metrics) PairHistogram(src, dst msg.Addr) Histogram {
	x.mu.Lock()
	defer x.mu.Unlock()
	if h := x.byPair[Pair{src, dst}]; h != nil {
		return *h
	}
	return Histogram{}
}

// Observed returns the total number of admitted deliveries.
func (x *Metrics) Observed() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	n := 0
	for _, h := range x.byKind {
		n += h.Count
	}
	return n
}

// Timeline returns a copy of the captured delivery timeline.
func (x *Metrics) Timeline() []Sample {
	x.mu.Lock()
	defer x.mu.Unlock()
	return append([]Sample(nil), x.timeline...)
}

// TimelineCSV renders the captured timeline as CSV (times in
// microseconds — virtual or wall, per the fabric that fed the
// collector).
func (x *Metrics) TimelineCSV() string {
	x.mu.Lock()
	defer x.mu.Unlock()
	var b strings.Builder
	b.WriteString("seq,kind,src,dst,pair_seq,bytes,sent_us,arrival_us,latency_us\n")
	for _, s := range x.timeline {
		fmt.Fprintf(&b, "%d,%s,%v,%v,%d,%d,%.3f,%.3f,%.3f\n",
			s.Seq, s.Kind, s.Src, s.Dst, s.PairSeq, s.Size,
			float64(s.Sent)/1000, float64(s.Arrival)/1000, float64(s.Arrival-s.Sent)/1000)
	}
	return b.String()
}

// HistogramCSV renders the per-kind bucket counts as CSV.
func (x *Metrics) HistogramCSV() string {
	x.mu.Lock()
	defer x.mu.Unlock()
	var b strings.Builder
	b.WriteString("kind,bucket_lo_ns,bucket_hi_ns,count\n")
	for _, k := range x.sortedKindsLocked() {
		h := x.byKind[k]
		for i, c := range h.Buckets {
			if c == 0 {
				continue
			}
			lo := int64(0)
			if i > 0 {
				lo = int64(bucketHi(i - 1))
			}
			fmt.Fprintf(&b, "%s,%d,%d,%d\n", k, lo, int64(bucketHi(i)), c)
		}
	}
	return b.String()
}

func (x *Metrics) sortedKindsLocked() []msg.Kind {
	kinds := make([]msg.Kind, 0, len(x.byKind))
	for k := range x.byKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}

// String renders the per-kind latency histograms and fault counters as
// a human-readable report.
func (x *Metrics) String() string {
	x.mu.Lock()
	defer x.mu.Unlock()
	var b strings.Builder
	total := 0
	for _, h := range x.byKind {
		total += h.Count
	}
	fmt.Fprintf(&b, "message latency by kind (%d deliveries", total)
	f := x.faults
	if f.Jittered+f.Spiked+f.DupsInjected > 0 {
		fmt.Fprintf(&b, "; faults: jittered=%d spiked=%d dups=%d/%d suppressed",
			f.Jittered, f.Spiked, f.DupsSuppressed, f.DupsInjected)
	}
	if f.Dropped+f.Retransmits+f.RetryExhausted+f.Crashes > 0 {
		fmt.Fprintf(&b, "; reliability: dropped=%d retransmits=%d exhausted=%d crashes=%d",
			f.Dropped, f.Retransmits, f.RetryExhausted, f.Crashes)
	}
	b.WriteString("):\n")
	for _, k := range x.sortedKindsLocked() {
		h := x.byKind[k]
		fmt.Fprintf(&b, "  %-10s n=%-6d mean=%-10v p50=%-10v p99=%-10v max=%v\n",
			k, h.Count, h.Mean().Round(time.Nanosecond),
			h.Quantile(0.50), h.Quantile(0.99), h.Max)
		peak := 0
		for _, c := range h.Buckets {
			if c > peak {
				peak = c
			}
		}
		for i, c := range h.Buckets {
			if c == 0 {
				continue
			}
			lo := time.Duration(0)
			if i > 0 {
				lo = bucketHi(i - 1)
			}
			bar := strings.Repeat("#", 1+c*39/peak)
			fmt.Fprintf(&b, "    [%8v, %8v)  %-40s %d\n", lo, bucketHi(i), bar, c)
		}
	}
	return b.String()
}
