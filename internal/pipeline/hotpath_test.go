package pipeline

import (
	"testing"
	"time"

	"armci/internal/model"
	"armci/internal/msg"
	"armci/internal/trace"
)

// BenchmarkPipelineSendRecv measures one message through the full
// pipeline hot path — SendTo (identity, cost, fault, FIFO stages) plus
// Inbound (dedup, arrival stamping, trace, metrics) — the per-message
// cost every fabric pays. With pairState consolidation and the
// emit-based SendTo this is allocation-free in steady state.
func BenchmarkPipelineSendRecv(b *testing.B) {
	b.ReportAllocs()
	p := New(Config{Params: model.Myrinet2000(), ChargeModel: true, Stats: trace.New()})
	a, dst := msg.User(0), msg.User(1)
	clk := &vclock{}
	m := &msg.Message{Kind: msg.KindSend}
	emit := func(d Delivery) {
		if !p.Inbound(d.Msg, d.At) {
			b.Fatal("delivery suppressed with no faults configured")
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.t += time.Microsecond
		if err := p.SendTo(a, dst, m, clk.now, nil, emit); err != nil {
			b.Fatal(err)
		}
	}
}

// TestHotPathAllocBudget pins the pooled send/recv path to zero
// allocations per message once the per-pair state and trace counters
// are warm. A regression back to per-send map churn or delivery-slice
// allocation fails this test directly rather than waiting for someone
// to notice benchmark drift.
func TestHotPathAllocBudget(t *testing.T) {
	p := New(Config{Params: model.Myrinet2000(), ChargeModel: true, Stats: trace.New()})
	a, dst := msg.User(0), msg.User(1)
	clk := &vclock{}
	m := &msg.Message{Kind: msg.KindSend}
	var sendErr error
	suppressed := false
	emit := func(d Delivery) {
		if !p.Inbound(d.Msg, d.At) {
			suppressed = true
		}
	}
	send := func() {
		clk.t += time.Microsecond
		if err := p.SendTo(a, dst, m, clk.now, nil, emit); err != nil {
			sendErr = err
		}
	}
	send() // warm the pair state and trace counter entries
	if avg := testing.AllocsPerRun(200, send); avg > 0 {
		t.Errorf("warm send/recv path allocates %.2f allocs/msg, budget 0", avg)
	}
	if sendErr != nil {
		t.Fatal(sendErr)
	}
	if suppressed {
		t.Fatal("delivery suppressed with no faults configured")
	}
}
