package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	k := New()
	var woke time.Duration
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(42 * time.Millisecond)
		woke = p.Now()
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if woke != 42*time.Millisecond {
		t.Fatalf("woke at %v, want 42ms", woke)
	}
	if k.Now() != 42*time.Millisecond {
		t.Fatalf("kernel finished at %v, want 42ms", k.Now())
	}
}

func TestSleepsInterleave(t *testing.T) {
	k := New()
	var order []string
	mk := func(name string, d time.Duration) {
		k.Spawn(name, func(p *Proc) {
			p.Sleep(d)
			order = append(order, fmt.Sprintf("%s@%v", name, p.Now()))
		})
	}
	mk("c", 30*time.Millisecond)
	mk("a", 10*time.Millisecond)
	mk("b", 20*time.Millisecond)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	want := "a@10ms,b@20ms,c@30ms"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("order %q, want %q", got, want)
	}
}

func TestZeroSleepYields(t *testing.T) {
	k := New()
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for round := 0; round < 2; round++ {
				order = append(order, i)
				p.Sleep(0)
			}
		})
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	// With cooperative round-robin yielding, rounds interleave:
	// 0,1,2,0,1,2 rather than 0,0,1,1,2,2.
	want := []int{0, 1, 2, 0, 1, 2}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	if k.Now() != 0 {
		t.Fatalf("zero sleeps advanced the clock to %v", k.Now())
	}
}

func TestEventsFireInTimeThenSeqOrder(t *testing.T) {
	k := New()
	var fired []string
	k.Spawn("scheduler", func(p *Proc) {
		k.At(20*time.Millisecond, func() { fired = append(fired, "b1") })
		k.At(10*time.Millisecond, func() { fired = append(fired, "a") })
		k.At(20*time.Millisecond, func() { fired = append(fired, "b2") })
		p.Sleep(30 * time.Millisecond)
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(fired, ","); got != "a,b1,b2" {
		t.Fatalf("events fired %q, want a,b1,b2", got)
	}
}

func TestWaitUntilObservesOtherProcess(t *testing.T) {
	k := New()
	flag := false
	var waited time.Duration
	k.Spawn("waiter", func(p *Proc) {
		p.WaitUntil("flag", func() bool { return flag })
		waited = p.Now()
	})
	k.Spawn("setter", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		flag = true
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if waited != 5*time.Millisecond {
		t.Fatalf("waiter resumed at %v, want 5ms", waited)
	}
}

func TestWaitUntilImmediateDoesNotBlock(t *testing.T) {
	k := New()
	ran := false
	k.Spawn("p", func(p *Proc) {
		p.WaitUntil("true", func() bool { return true })
		ran = true
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("process never completed")
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := New()
	k.Spawn("stuck", func(p *Proc) {
		p.WaitUntil("never", func() bool { return false })
	})
	err := k.Run(0)
	if err == nil {
		t.Fatal("want deadlock error, got nil")
	}
	if !strings.Contains(err.Error(), "deadlock") || !strings.Contains(err.Error(), "never") {
		t.Fatalf("error %q should mention deadlock and the block tag", err)
	}
}

func TestDeadlinePropagates(t *testing.T) {
	k := New()
	k.Spawn("slow", func(p *Proc) {
		p.Sleep(time.Hour)
	})
	err := k.Run(time.Second)
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("want deadline error, got %v", err)
	}
}

func TestPanicPropagates(t *testing.T) {
	k := New()
	k.Spawn("boom", func(p *Proc) {
		panic("kaput")
	})
	err := k.Run(0)
	if err == nil || !strings.Contains(err.Error(), "kaput") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("want panic error naming process and value, got %v", err)
	}
}

func TestPanicUnblocksRun(t *testing.T) {
	k := New()
	k.Spawn("boom", func(p *Proc) {
		p.Sleep(time.Millisecond)
		panic("later")
	})
	k.Spawn("other", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
	})
	err := k.Run(0)
	if err == nil || !strings.Contains(err.Error(), "later") {
		t.Fatalf("want propagated panic, got %v", err)
	}
}

func TestDeterministicExecution(t *testing.T) {
	run := func() string {
		k := New()
		var log []string
		for i := 0; i < 4; i++ {
			i := i
			k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Sleep(time.Duration(i+1) * time.Millisecond)
					log = append(log, fmt.Sprintf("%d:%v", i, p.Now()))
				}
			})
		}
		if err := k.Run(0); err != nil {
			t.Fatal(err)
		}
		return strings.Join(log, ",")
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical runs diverged:\n%s\n%s", a, b)
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	k := New()
	var at time.Duration
	k.Spawn("p", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		k.After(5*time.Millisecond, func() { at = k.Now() })
		p.Sleep(20 * time.Millisecond)
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if at != 15*time.Millisecond {
		t.Fatalf("After fired at %v, want 15ms", at)
	}
}

func TestAtClampsToPast(t *testing.T) {
	k := New()
	fired := time.Duration(-1)
	k.Spawn("p", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		k.At(1*time.Millisecond, func() { fired = k.Now() }) // in the past
		p.Sleep(1 * time.Millisecond)
	})
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired != 10*time.Millisecond {
		t.Fatalf("past event fired at %v, want clamped to 10ms", fired)
	}
}

func TestManyProcessesManyEvents(t *testing.T) {
	k := New()
	const procs, rounds = 32, 50
	total := 0
	for i := 0; i < procs; i++ {
		i := i
		k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for j := 0; j < rounds; j++ {
				p.Sleep(time.Duration(1+(i+j)%7) * time.Microsecond)
				total++
			}
		})
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if total != procs*rounds {
		t.Fatalf("completed %d steps, want %d", total, procs*rounds)
	}
}

func TestProcIdentity(t *testing.T) {
	k := New()
	p0 := k.Spawn("alpha", func(p *Proc) {})
	p1 := k.Spawn("beta", func(p *Proc) {})
	if p0.ID() != 0 || p1.ID() != 1 {
		t.Fatalf("IDs %d,%d want 0,1", p0.ID(), p1.ID())
	}
	if p0.Name() != "alpha" || p1.Name() != "beta" {
		t.Fatalf("names %q,%q", p0.Name(), p1.Name())
	}
	if p0.Kernel() != k {
		t.Fatal("Kernel() does not return the owner")
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
}
