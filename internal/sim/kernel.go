// Package sim implements a deterministic discrete-event simulation kernel.
//
// A Kernel owns a virtual clock and a set of cooperating processes. Each
// process runs in its own goroutine, but the kernel guarantees that at most
// one process executes at any instant: a process runs until it calls one of
// the blocking primitives (Sleep, Wait, WaitUntil, Yield), at which point
// control returns to the kernel's scheduler, which advances virtual time
// only when no process is runnable. Execution is therefore fully
// deterministic — the same program produces the same event trace and the
// same virtual-time results on every run — which is what allows the
// benchmark harness to report reproducible "paper figure" numbers.
//
// The design follows the classic cooperative process-based simulation
// style (SimPy, CSIM): a baton is passed between the scheduler and exactly
// one process goroutine at a time.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// ErrDeadlock is wrapped by the error Run returns when no process is
// runnable and no event is pending. Callers that expect a benign drain
// (servers parked after the workload finished) test for it with
// errors.Is.
var ErrDeadlock = errors.New("deadlock")

// Kernel is a discrete-event scheduler with a virtual clock.
type Kernel struct {
	now      time.Duration
	events   eventHeap
	eventSeq uint64

	procs    []*Proc
	runnable []*Proc // FIFO run queue
	live     int     // processes started and not yet finished

	condWaiters []*Proc // processes blocked in WaitUntil

	baton chan *Proc // scheduler -> process hand-off rendezvous

	// shuffle, when non-nil, picks the next runnable process
	// pseudo-randomly instead of FIFO. Still fully deterministic for a
	// given seed: a cheap way to explore alternative interleavings.
	shuffle *rand.Rand

	// hazard enables the deliberately broken event-recycling scheme used
	// by the conformance harness's mutation self-test (see
	// SetEventPoolHazard). Hazard kernels never touch the shared event
	// pool, so their corruption cannot leak into healthy kernels.
	hazard      bool
	hazardStash *event // still-scheduled event queued for unsafe reuse
	hazardCount int

	failure error // first panic propagated out of a process
}

// New returns an empty kernel at virtual time zero.
func New() *Kernel {
	return &Kernel{baton: make(chan *Proc), events: make(eventHeap, 0, initialHeapCap)}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// SetShuffle makes the scheduler pick among simultaneously runnable
// processes pseudo-randomly, seeded (and therefore reproducible), instead
// of strictly FIFO. Event times are unaffected — only the order in which
// equally-ready processes get the CPU changes. Call before Run.
func (k *Kernel) SetShuffle(seed int64) {
	k.shuffle = rand.New(rand.NewSource(seed))
}

// event is a scheduled callback. Events fire in (at, seq) order so that
// simultaneous events fire in scheduling order, keeping runs deterministic.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

// initialHeapCap pre-sizes a kernel's event heap so steady-state
// scheduling never regrows the slice for typical cluster sizes.
const initialHeapCap = 128

// eventPool recycles event structs across kernels: the scheduling hot
// path allocates nothing once the pool is warm. Events are returned with
// fn cleared so the pool never pins a dead closure. The pop order of the
// heap is a strict total order on (at, seq), so pooling cannot perturb
// determinism.
var eventPool = sync.Pool{New: func() any { return new(event) }}

// eventHeap is a hand-rolled binary min-heap on (at, seq). It replaces
// container/heap so pushes and pops stay free of the interface{} boxing
// and indirect calls of the generic implementation — this is the hottest
// structure in the simulator.
type eventHeap []*event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e *event) {
	*h = append(*h, e)
	s := *h
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if !s.less(i, p) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *eventHeap) pop() *event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = nil // release the reference so pooled events are not pinned
	s = s[:n]
	*h = s
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		next := i
		if l < n && s.less(l, next) {
			next = l
		}
		if r < n && s.less(r, next) {
			next = r
		}
		if next == i {
			break
		}
		s[i], s[next] = s[next], s[i]
		i = next
	}
	return top
}

func (h eventHeap) peek() *event { return h[0] }

// At schedules fn to run at absolute virtual time at (clamped to now).
// It may be called from process context or from another event callback.
func (k *Kernel) At(at time.Duration, fn func()) {
	if at < k.now {
		at = k.now
	}
	k.eventSeq++
	e := k.getEvent()
	e.at, e.seq, e.fn = at, k.eventSeq, fn
	k.events.push(e)
	if k.hazard {
		k.hazardCount++
		if k.hazardCount%hazardEvery == 0 {
			// BUG (deliberate): queue the event for reuse while it is
			// still sitting in the heap. The next At overwrites its
			// fields in place, losing this callback and double-firing
			// the new one.
			k.hazardStash = e
		}
	}
}

// getEvent takes an event struct for scheduling. Healthy kernels draw
// from the shared pool; hazard kernels deterministically reuse a
// still-scheduled event instead (and never touch the shared pool, so the
// corruption stays confined to this kernel).
func (k *Kernel) getEvent() *event {
	if k.hazard {
		if e := k.hazardStash; e != nil {
			k.hazardStash = nil
			return e
		}
		return new(event)
	}
	return eventPool.Get().(*event)
}

// putEvent returns a fired event to the pool. Hazard kernels skip the
// pool entirely: their heap can hold the same pointer twice, and a
// double-put would leak the corruption to other kernels in the process.
func (k *Kernel) putEvent(e *event) {
	if k.hazard {
		return
	}
	e.fn = nil
	eventPool.Put(e)
}

// hazardEvery is how often the hazard mode recycles a still-scheduled
// event: every third scheduled event, frequent enough that any non-empty
// heap is corrupted within a few message exchanges.
const hazardEvery = 3

// SetEventPoolHazard enables a deliberately broken event-recycling
// scheme: every hazardEvery-th scheduled event is recycled while still
// scheduled, so a later At clobbers its fire time and callback in place.
// It exists solely as a mutation hook for the conformance harness's
// oracle self-test (the bug class a correct event pool must not have);
// never enable it outside tests. Call before Run.
func (k *Kernel) SetEventPoolHazard(on bool) { k.hazard = on }

// After schedules fn to run d from now.
func (k *Kernel) After(d time.Duration, fn func()) { k.At(k.now+d, fn) }

// procState is the lifecycle of a process goroutine.
type procState int

const (
	stateNew procState = iota
	stateRunnable
	stateRunning
	stateBlocked
	stateDone
)

// Proc is a simulated process. All of its methods except Kernel-side
// bookkeeping must be called from the process's own goroutine while it
// holds the baton.
type Proc struct {
	k     *Kernel
	id    int
	name  string
	state procState
	fn    func(p *Proc)

	resume chan struct{} // scheduler tells the process to run
	cond   func() bool   // predicate when blocked in WaitUntil
	wake   func()        // cached Sleep-timer callback (built once in Spawn)

	wakeAt   time.Duration // diagnostic: time of pending timer, -1 if none
	blockTag string        // diagnostic: what the process is blocked on
}

// Spawn registers a new process executing fn. Processes are started when
// Run is called; fn receives its Proc handle.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		id:     len(k.procs),
		name:   name,
		state:  stateNew,
		fn:     fn,
		resume: make(chan struct{}),
		wakeAt: -1,
	}
	// One wake closure per process, reused by every Sleep: a process can
	// have at most one pending timer, so sharing it is safe and keeps
	// the Sleep hot path allocation-free.
	p.wake = func() {
		p.wakeAt = -1
		k.markRunnable(p)
	}
	k.procs = append(k.procs, p)
	return p
}

// ID returns the process's kernel-assigned index.
func (p *Proc) ID() int { return p.id }

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.k.now }

// markRunnable appends p to the run queue if it is blocked or new.
func (k *Kernel) markRunnable(p *Proc) {
	if p.state == stateRunnable || p.state == stateRunning || p.state == stateDone {
		return
	}
	p.state = stateRunnable
	p.blockTag = ""
	k.runnable = append(k.runnable, p)
}

// Run starts every spawned process and drives the simulation until all
// processes finish, a deadline elapses (0 = none), or a deadlock occurs.
// It returns an error on deadlock, on deadline, or if a process panicked.
func (k *Kernel) Run(deadline time.Duration) error {
	for _, p := range k.procs {
		if p.state == stateNew {
			k.live++
			k.markRunnable(p)
			go k.procMain(p)
		}
	}
	for k.live > 0 {
		if k.failure != nil {
			return k.failure
		}
		if len(k.runnable) > 0 {
			i := 0
			if k.shuffle != nil {
				i = k.shuffle.Intn(len(k.runnable))
			}
			p := k.runnable[i]
			k.runnable = append(k.runnable[:i], k.runnable[i+1:]...)
			k.step(p)
			k.recheckConds()
			continue
		}
		if len(k.events) == 0 {
			return k.deadlockError()
		}
		next := k.events.peek().at
		if deadline > 0 && next > deadline {
			return fmt.Errorf("sim: deadline %v exceeded (next event at %v)", deadline, next)
		}
		k.now = next
		for len(k.events) > 0 && k.events.peek().at == k.now {
			e := k.events.pop()
			fn := e.fn
			k.putEvent(e)
			fn()
		}
		k.recheckConds()
	}
	return k.failure
}

// step hands the baton to p and waits for it to yield or finish.
func (k *Kernel) step(p *Proc) {
	p.state = stateRunning
	p.resume <- struct{}{}
	<-k.baton // p (or its completion path) hands the baton back
}

// Abort is a panic value a process may raise to terminate the whole
// simulation with a structured error: Run returns Err verbatim instead
// of wrapping it in a generic panic message, so callers can inspect it
// with errors.As.
type Abort struct{ Err error }

// Exit is a panic value a process may raise to terminate only itself,
// mid-body, without failing the simulation: the kernel treats it as a
// normal completion of that process. It models a fail-stop — the fabric
// raises it for an injected crash so the victim vanishes while every
// other process keeps running (and may recover, e.g. by lease repair).
type Exit struct{}

// procMain is the goroutine body wrapping a process function.
func (k *Kernel) procMain(p *Proc) {
	<-p.resume
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(Exit); !ok && k.failure == nil {
				if a, ok := r.(Abort); ok && a.Err != nil {
					k.failure = a.Err
				} else {
					k.failure = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
				}
			}
		}
		p.state = stateDone
		k.live--
		k.baton <- p
	}()
	p.fn(p)
}

// yield parks the calling process (whose state has already been set) and
// returns the baton to the scheduler. It returns when the scheduler
// resumes the process.
func (p *Proc) yield() {
	p.k.baton <- p
	<-p.resume
	p.state = stateRunning
}

// Sleep advances the process by d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d <= 0 {
		// Even a zero sleep is a scheduling point, giving other runnable
		// processes a chance to interleave deterministically.
		p.YieldProc()
		return
	}
	p.state = stateBlocked
	p.blockTag = "sleep"
	p.wakeAt = p.k.now + d
	p.k.After(d, p.wake)
	p.yield()
}

// YieldProc re-queues the process at the back of the run queue without
// advancing time, letting equally-runnable processes interleave.
func (p *Proc) YieldProc() {
	p.state = stateBlocked
	p.blockTag = "yield"
	p.k.markRunnable(p)
	p.yield()
}

// WaitUntil blocks the process until pred() reports true. The predicate is
// re-evaluated by the kernel after every process time slice and after every
// fired event, so any state change made by another actor is observed at the
// virtual time it happens.
func (p *Proc) WaitUntil(tag string, pred func() bool) {
	if pred() {
		return
	}
	p.state = stateBlocked
	p.blockTag = tag
	p.cond = pred
	p.k.condWaiters = append(p.k.condWaiters, p)
	p.yield()
}

// recheckConds wakes every cond-blocked process whose predicate has become
// true. Processes are woken in registration order for determinism.
func (k *Kernel) recheckConds() {
	if len(k.condWaiters) == 0 {
		return
	}
	remaining := k.condWaiters[:0]
	for _, p := range k.condWaiters {
		if p.state == stateBlocked && p.cond != nil && p.cond() {
			p.cond = nil
			k.markRunnable(p)
			continue
		}
		remaining = append(remaining, p)
	}
	k.condWaiters = remaining
}

// deadlockError reports every blocked process and what it was waiting for.
func (k *Kernel) deadlockError() error {
	var stuck []string
	for _, p := range k.procs {
		if p.state == stateBlocked || p.state == stateRunnable {
			stuck = append(stuck, fmt.Sprintf("%s(%s)", p.name, p.blockTag))
		}
	}
	sort.Strings(stuck)
	return fmt.Errorf("sim: %w at %v with %d live processes: %v", ErrDeadlock, k.now, k.live, stuck)
}
