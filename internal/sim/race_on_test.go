//go:build race

package sim

// raceEnabled reports whether this test binary was built with the race
// detector. Under -race, sync.Pool deliberately drops a random fraction
// of Puts (to expose reuse races), so allocation-budget tests that rely
// on pooling cannot hold their budgets and are skipped.
const raceEnabled = true
