package sim

import (
	"testing"
	"time"
)

// BenchmarkKernelSchedule measures the event-scheduling hot path: one
// Sleep per iteration is one event pushed, popped and fired plus two
// baton hand-offs. With the pooled-event scheme and the cached per-proc
// wake closure this path is allocation-free in steady state.
func BenchmarkKernelSchedule(b *testing.B) {
	b.ReportAllocs()
	k := New()
	k.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	if err := k.Run(0); err != nil {
		b.Fatal(err)
	}
}

// TestKernelEventAllocBudget pins the pooled scheduling path to its
// allocation budget: the marginal cost of one scheduled-and-fired event
// must stay far below one allocation. A pooling regression (every event
// heap-allocated again) shows up as ~1 alloc/event and fails this test
// rather than waiting for benchmark drift to be noticed.
func TestKernelEventAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop Puts at random; the pooling budget cannot hold")
	}
	const events = 5000
	var runErr error
	avg := testing.AllocsPerRun(5, func() {
		k := New()
		k.Spawn("sleeper", func(p *Proc) {
			for i := 0; i < events; i++ {
				p.Sleep(time.Microsecond)
			}
		})
		if err := k.Run(0); err != nil {
			runErr = err
		}
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	// Fixed setup (kernel, proc, goroutine) amortizes over the events;
	// GC may empty the shared pool mid-run, so allow a small refill
	// margin on top.
	if perEvent := avg / events; perEvent > 0.05 {
		t.Errorf("scheduling hot path allocates %.3f allocs/event, budget 0.05 — event pooling regressed", perEvent)
	}
}

// TestEventPoolReuse proves fired events actually return to the pool:
// two kernels run back to back must not grow the heap beyond its
// pre-sized capacity, and the second run draws its events from the pool
// warmed by the first.
func TestEventPoolReuse(t *testing.T) {
	run := func() *Kernel {
		k := New()
		k.Spawn("p", func(p *Proc) {
			for i := 0; i < 100; i++ {
				p.Sleep(time.Microsecond)
			}
		})
		if err := k.Run(0); err != nil {
			t.Fatal(err)
		}
		return k
	}
	k := run()
	if len(k.events) != 0 {
		t.Fatalf("heap holds %d events after drain, want 0", len(k.events))
	}
	if cap(k.events) > initialHeapCap {
		t.Errorf("heap grew to cap %d for a 1-deep event stream, want <= %d (pre-size defeated)",
			cap(k.events), initialHeapCap)
	}
	run()
}

// TestEventPoolHazardCorrupts proves the mutation hook misbehaves the
// way a real recycle-while-scheduled bug would: with several events in
// flight, recycling a still-scheduled one loses its callback (and
// double-fires the replacement), so the count of observed firings is
// wrong. The conformance harness's self-test relies on this hook
// actually corrupting runs — a hazard kernel that behaved would make
// that self-test vacuous.
func TestEventPoolHazardCorrupts(t *testing.T) {
	fire := func(hazard bool) []int {
		k := New()
		if hazard {
			k.SetEventPoolHazard(true)
		}
		var fired []int
		k.Spawn("scheduler", func(p *Proc) {
			// Keep many events in the heap at once so the hazard's
			// stashed event is still scheduled when it gets reused.
			for i := 0; i < 12; i++ {
				i := i
				k.After(time.Duration(10+i)*time.Microsecond, func() {
					fired = append(fired, i)
				})
			}
			p.Sleep(time.Millisecond)
		})
		if err := k.Run(0); err != nil {
			t.Fatalf("hazard=%v: %v", hazard, err)
		}
		return fired
	}
	clean := fire(false)
	if len(clean) != 12 {
		t.Fatalf("clean kernel fired %d of 12 events", len(clean))
	}
	broken := fire(true)
	if len(broken) == 12 {
		same := true
		for i := range clean {
			if clean[i] != broken[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("hazard kernel fired every event in order — the mutation hook does not corrupt anything")
		}
	}
}
