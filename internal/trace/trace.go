// Package trace collects message and operation statistics from a running
// fabric. The paper's analytical claims (the old AllFence costs ~2(N−1)
// one-way latencies, the new barrier 2·log₂N; MCS lock hand-off takes one
// message where the hybrid lock takes two) are verified by counting
// messages here rather than only by timing.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"armci/internal/msg"
)

// Stats accumulates counters. The zero value is ready to use; all methods
// are safe for concurrent use.
type Stats struct {
	mu       sync.Mutex
	byKind   map[msg.Kind]int
	bytes    int64
	sends    int
	events   []Event
	byKey    map[eventKey]int // (src,dst,pairSeq) -> events index, capture mode
	capture  bool
	perPair  map[pair]int
	disabled bool
}

type pair struct{ src, dst msg.Addr }

type eventKey struct {
	src, dst msg.Addr
	seq      uint64
}

// Event is one recorded message send (capture mode only).
type Event struct {
	Seq  int
	Kind msg.Kind
	Src  msg.Addr
	Dst  msg.Addr
	Size int
	// PairSeq is the per-(Src,Dst) sequence number the transport
	// pipeline stamped on the message.
	PairSeq uint64
	// Sent is the fabric time the send was initiated.
	Sent time.Duration
	// Arrival is the fabric delivery time of the message. The send-side
	// record carries the modeled arrival when the fabric computed one;
	// the receive-side trace stage back-annotates the actual arrival
	// (RecordArrival), so it is populated on every fabric — including
	// TCP, where the arrival is only known at the receiver.
	Arrival time.Duration
	// Dup marks an injected duplicate delivery (fault injection).
	Dup bool
	// FaultDelay is the extra latency fault injection added.
	FaultDelay time.Duration
}

// New returns an empty Stats collector.
func New() *Stats {
	return &Stats{
		byKind:  make(map[msg.Kind]int),
		perPair: make(map[pair]int),
		byKey:   make(map[eventKey]int),
	}
}

// SetCapture toggles recording of individual send events (for determinism
// tests and debugging); counting is always on.
func (s *Stats) SetCapture(on bool) {
	s.mu.Lock()
	s.capture = on
	s.mu.Unlock()
}

// SetDisabled pauses all accounting (used to exclude warm-up phases).
func (s *Stats) SetDisabled(off bool) {
	s.mu.Lock()
	s.disabled = off
	s.mu.Unlock()
}

// RecordSend accounts one message send.
func (s *Stats) RecordSend(m *msg.Message) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disabled {
		return
	}
	s.sends++
	s.byKind[m.Kind]++
	s.bytes += int64(m.PayloadBytes())
	s.perPair[pair{m.Src, m.Dst}]++
	if s.capture {
		s.events = append(s.events, Event{
			Seq: s.sends, Kind: m.Kind, Src: m.Src, Dst: m.Dst,
			Size: m.PayloadBytes(), PairSeq: m.Seq, Sent: m.Sent,
			Arrival: m.Arrival, Dup: m.Dup, FaultDelay: m.FaultDelay,
		})
		if !m.Dup && m.Seq != 0 {
			s.byKey[eventKey{m.Src, m.Dst, m.Seq}] = len(s.events) - 1
		}
	}
}

// RecordArrival back-annotates the captured send event of m with the
// actual arrival time the receive side observed. This is the trace
// stage's receive half: on fabrics where the sender cannot know the
// arrival (TCP), it is what populates Event.Arrival.
func (s *Stats) RecordArrival(m *msg.Message) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disabled || !s.capture {
		return
	}
	if i, ok := s.byKey[eventKey{m.Src, m.Dst, m.Seq}]; ok {
		s.events[i].Arrival = m.Arrival
	}
}

// Sends returns the total number of messages sent.
func (s *Stats) Sends() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sends
}

// Count returns the number of messages of kind k.
func (s *Stats) Count(k msg.Kind) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byKind[k]
}

// Bytes returns the total modeled payload bytes sent.
func (s *Stats) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// PairCount returns the number of messages sent from src to dst.
func (s *Stats) PairCount(src, dst msg.Addr) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.perPair[pair{src, dst}]
}

// Events returns a copy of the captured send events.
func (s *Stats) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Reset clears all counters and captured events.
func (s *Stats) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sends = 0
	s.bytes = 0
	s.byKind = make(map[msg.Kind]int)
	s.perPair = make(map[pair]int)
	s.byKey = make(map[eventKey]int)
	s.events = nil
}

// Summary formats the per-kind counters, sorted by kind, for reports.
func (s *Stats) Summary() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	kinds := make([]msg.Kind, 0, len(s.byKind))
	for k := range s.byKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "%d msgs, %d bytes:", s.sends, s.bytes)
	for _, k := range kinds {
		fmt.Fprintf(&b, " %s=%d", k, s.byKind[k])
	}
	return b.String()
}

// Fingerprint returns a deterministic digest of the captured event
// stream, used by determinism tests to compare two runs. Besides the
// message identity it folds in the per-pair sequence number and the
// fault-injection metadata (injected delay, duplicate marker), so that
// two runs with different fault seeds fingerprint differently even when
// they exchange the same messages — and two runs with the same seed
// fingerprint identically across fabrics when their send order agrees.
// Arrival times are deliberately excluded: they are virtual on the
// simulated fabric and wall-clock on the concurrent ones.
func (s *Stats) Fingerprint() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	for _, e := range s.events {
		fmt.Fprintf(&b, "%d:%s:%v>%v:%d", e.Seq, e.Kind, e.Src, e.Dst, e.Size)
		if e.PairSeq != 0 {
			fmt.Fprintf(&b, ":q%d", e.PairSeq)
		}
		if e.FaultDelay != 0 {
			fmt.Fprintf(&b, ":f%d", e.FaultDelay.Nanoseconds())
		}
		if e.Dup {
			b.WriteString(":dup")
		}
		b.WriteByte(';')
	}
	return b.String()
}
