// Package trace collects message and operation statistics from a running
// fabric. The paper's analytical claims (the old AllFence costs ~2(N−1)
// one-way latencies, the new barrier 2·log₂N; MCS lock hand-off takes one
// message where the hybrid lock takes two) are verified by counting
// messages here rather than only by timing.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"armci/internal/msg"
)

// Stats accumulates counters. The zero value is ready to use; all methods
// are safe for concurrent use.
type Stats struct {
	mu       sync.Mutex
	byKind   map[msg.Kind]int
	bytes    int64
	sends    int
	events   []Event
	byKey    map[eventKey]int // (src,dst,pairSeq) -> events index, capture mode
	opEvents []OpEvent
	capture  bool
	perPair  map[pair]int
	disabled bool
}

type pair struct{ src, dst msg.Addr }

type eventKey struct {
	src, dst msg.Addr
	seq      uint64
}

// Event is one recorded message send (capture mode only).
type Event struct {
	Seq  int
	Kind msg.Kind
	Src  msg.Addr
	Dst  msg.Addr
	Size int
	// PairSeq is the per-(Src,Dst) sequence number the transport
	// pipeline stamped on the message.
	PairSeq uint64
	// Sent is the fabric time the send was initiated.
	Sent time.Duration
	// Arrival is the fabric delivery time of the message. The send-side
	// record carries the modeled arrival when the fabric computed one;
	// the receive-side trace stage back-annotates the actual arrival
	// (RecordArrival), so it is populated on every fabric — including
	// TCP, where the arrival is only known at the receiver.
	Arrival time.Duration
	// Dup marks an injected duplicate delivery (fault injection).
	Dup bool
	// FaultDelay is the extra latency fault injection added.
	FaultDelay time.Duration
}

// OpKind classifies a protocol-level operation event. Unlike message
// Events — which describe the wire — op events describe the *semantic*
// history of a run: lock hand-offs, fence/barrier crossings, the issue
// and completion of fence-counted stores, and post-dedup deliveries.
// They are what the conformance oracles in internal/check consume.
type OpKind uint8

const (
	// OpAcquire: a rank acquired a lock (recorded after the acquire
	// completes, before the critical section begins). Carries Lock,
	// Rank, and — per algorithm — Prev (MCS predecessor rank, -1 when
	// the lock was taken free) or Ticket (hybrid/ticket lock number).
	OpAcquire OpKind = iota + 1
	// OpRelease: a rank began releasing a lock (recorded before the
	// release protocol starts).
	OpRelease
	// OpSyncEnter: a rank entered a combined fence+barrier operation
	// (Sync.Barrier, SyncOld, or a harness-provided variant). Carries
	// Rank and the rank's Epoch (1-based, counted per rank).
	OpSyncEnter
	// OpSyncExit: a rank returned from the fence+barrier of Epoch.
	OpSyncExit
	// OpIssue: a rank issued one fence-counted operation (put,
	// accumulate, fire-and-forget store) to a remote node. Carries Rank
	// (origin) and Node (destination).
	OpIssue
	// OpComplete: a node's server completed one fence-counted operation.
	// Recorded after the memory effect is applied and before the op_done
	// counter is advanced, so in the recorded order a completion always
	// precedes any barrier exit that the fence algorithm justified with
	// it. Carries Rank (origin) and Node.
	OpComplete
	// OpDeliver: the transport pipeline admitted a message into the
	// destination mailbox (after duplicate suppression). Carries Src,
	// Dst and PairSeq; the per-pair FIFO/exactly-once oracle checks that
	// PairSeq is strictly increasing per directed pair.
	OpDeliver
	// OpRepair: a lease-lock waiter deposed an expired holder. Carries
	// Lock, Rank (the repairer), Prev (the deposed rank) and Epoch (the
	// new lease epoch installed by the repair CAS). From this event on,
	// releases by Prev under an older epoch are stale and must not free
	// the lock.
	OpRepair
	// OpStaleRelease: a deposed holder's release lost the epoch check
	// and was rejected. Carries Lock and Rank (the deposed rank). The
	// event witnesses that the release had no effect; an oracle treats
	// it as a no-op in the hand-off order.
	OpStaleRelease
	// OpCrash: a rank fail-stopped by fault injection (crash/crashheld).
	// Carries Rank. Later lock events involving Rank are excused from
	// liveness accounting.
	OpCrash
)

var opKindNames = map[OpKind]string{
	OpAcquire: "acquire", OpRelease: "release",
	OpSyncEnter: "sync-enter", OpSyncExit: "sync-exit",
	OpIssue: "op-issue", OpComplete: "op-complete", OpDeliver: "deliver",
	OpRepair: "repair", OpStaleRelease: "stale-release", OpCrash: "crash",
}

func (k OpKind) String() string {
	if s, ok := opKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// OpEvent is one recorded protocol-level event (capture mode only). All
// op events of a run share one global sequence: because every record
// goes through the collector's mutex at the instant the event happens,
// the recorded order is consistent with the happens-before order of the
// run on every fabric — which is what makes the order usable as a
// linearization witness by the invariant oracles.
type OpEvent struct {
	// Seq is the global record order, 1-based, shared by all op events.
	Seq int
	// Kind classifies the event.
	Kind OpKind
	// Rank is the acting user rank (the origin for OpIssue/OpComplete).
	Rank int
	// Node is the destination node of OpIssue/OpComplete.
	Node int
	// Lock is the lock index of OpAcquire/OpRelease.
	Lock int
	// Prev is the MCS predecessor rank of an OpAcquire (-1: lock was
	// free; also -1 for non-queue algorithms).
	Prev int
	// Ticket is the ticket number of a hybrid/ticket OpAcquire (-1 for
	// other algorithms).
	Ticket int64
	// Epoch is the per-rank sync epoch of OpSyncEnter/OpSyncExit.
	Epoch int
	// Src, Dst and PairSeq identify the delivered message of OpDeliver.
	Src, Dst msg.Addr
	PairSeq  uint64
	// Time is the fabric time at the record (virtual on sim, wall
	// otherwise). Diagnostic only; oracles use Seq.
	Time time.Duration
}

// New returns an empty Stats collector.
func New() *Stats {
	return &Stats{
		byKind:  make(map[msg.Kind]int),
		perPair: make(map[pair]int),
		byKey:   make(map[eventKey]int),
	}
}

// SetCapture toggles recording of individual send events (for determinism
// tests and debugging); counting is always on.
func (s *Stats) SetCapture(on bool) {
	s.mu.Lock()
	s.capture = on
	s.mu.Unlock()
}

// SetDisabled pauses all accounting (used to exclude warm-up phases).
func (s *Stats) SetDisabled(off bool) {
	s.mu.Lock()
	s.disabled = off
	s.mu.Unlock()
}

// RecordSend accounts one message send.
func (s *Stats) RecordSend(m *msg.Message) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disabled {
		return
	}
	s.sends++
	s.byKind[m.Kind]++
	s.bytes += int64(m.PayloadBytes())
	s.perPair[pair{m.Src, m.Dst}]++
	if s.capture {
		s.events = append(s.events, Event{
			Seq: s.sends, Kind: m.Kind, Src: m.Src, Dst: m.Dst,
			Size: m.PayloadBytes(), PairSeq: m.Seq, Sent: m.Sent,
			Arrival: m.Arrival, Dup: m.Dup, FaultDelay: m.FaultDelay,
		})
		if !m.Dup && m.Seq != 0 {
			s.byKey[eventKey{m.Src, m.Dst, m.Seq}] = len(s.events) - 1
		}
	}
}

// RecordArrival back-annotates the captured send event of m with the
// actual arrival time the receive side observed. This is the trace
// stage's receive half: on fabrics where the sender cannot know the
// arrival (TCP), it is what populates Event.Arrival.
func (s *Stats) RecordArrival(m *msg.Message) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disabled || !s.capture {
		return
	}
	if i, ok := s.byKey[eventKey{m.Src, m.Dst, m.Seq}]; ok {
		s.events[i].Arrival = m.Arrival
	}
}

// RecordOp records one protocol-level event (capture mode only; see
// OpEvent). Callers fill every field but Seq, which is assigned here.
// The call must be placed so that the record order witnesses the claim
// being recorded: acquires after the lock is held, releases before the
// hand-off starts, completions before they become observable.
func (s *Stats) RecordOp(e OpEvent) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disabled || !s.capture {
		return
	}
	e.Seq = len(s.opEvents) + 1
	s.opEvents = append(s.opEvents, e)
}

// RecordDelivery records the admission of m into the destination mailbox
// at fabric time now (the pipeline's post-dedup receive stage). Capture
// mode only.
func (s *Stats) RecordDelivery(m *msg.Message, now time.Duration) {
	if s == nil {
		return
	}
	s.RecordOp(OpEvent{
		Kind: OpDeliver, Rank: -1, Prev: -1, Ticket: -1,
		Src: m.Src, Dst: m.Dst, PairSeq: m.Seq, Time: now,
	})
}

// OpEvents returns a copy of the recorded protocol-level events.
func (s *Stats) OpEvents() []OpEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]OpEvent(nil), s.opEvents...)
}

// Sends returns the total number of messages sent.
func (s *Stats) Sends() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sends
}

// Count returns the number of messages of kind k.
func (s *Stats) Count(k msg.Kind) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byKind[k]
}

// Bytes returns the total modeled payload bytes sent.
func (s *Stats) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// PairCount returns the number of messages sent from src to dst.
func (s *Stats) PairCount(src, dst msg.Addr) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.perPair[pair{src, dst}]
}

// Events returns a copy of the captured send events.
func (s *Stats) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Reset clears all counters and captured events.
func (s *Stats) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sends = 0
	s.bytes = 0
	s.byKind = make(map[msg.Kind]int)
	s.perPair = make(map[pair]int)
	s.byKey = make(map[eventKey]int)
	s.events = nil
	s.opEvents = nil
}

// Summary formats the per-kind counters, sorted by kind, for reports.
func (s *Stats) Summary() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	kinds := make([]msg.Kind, 0, len(s.byKind))
	for k := range s.byKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "%d msgs, %d bytes:", s.sends, s.bytes)
	for _, k := range kinds {
		fmt.Fprintf(&b, " %s=%d", k, s.byKind[k])
	}
	return b.String()
}

// Fingerprint returns a deterministic digest of the captured event
// stream, used by determinism tests to compare two runs. Besides the
// message identity it folds in the per-pair sequence number and the
// fault-injection metadata (injected delay, duplicate marker), so that
// two runs with different fault seeds fingerprint differently even when
// they exchange the same messages — and two runs with the same seed
// fingerprint identically across fabrics when their send order agrees.
// Arrival times are deliberately excluded: they are virtual on the
// simulated fabric and wall-clock on the concurrent ones.
//
// Stability guarantee: the fingerprint is a pure function of the global
// send order and, per message, of (kind, src, dst, payload size,
// per-pair sequence number, injected fault delay, duplicate marker).
// It does not depend on the fabric, the clock, the schedule seed, or
// the op-event stream. Two runs that exchange the same messages in the
// same global send order therefore fingerprint identically — across
// fabrics, and across sim schedule seeds for workloads whose message
// order is data-dependent rather than schedule-dependent. Determinism
// and replay tests rely on this; changing the digested fields or their
// encoding is a breaking change to those tests.
func (s *Stats) Fingerprint() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	for _, e := range s.events {
		appendFingerprint(&b, e, e.Seq)
	}
	return b.String()
}

// FingerprintEvents digests an arbitrary event slice with the same
// per-event encoding as Fingerprint, but numbered by position in the
// slice rather than by the recorded Seq. That makes the digest of a
// filtered sub-stream comparable to a capture that only ever saw that
// sub-stream — e.g. a single cluster worker's local trace, whose send
// events are exactly the global stream restricted to sources on its
// node.
func FingerprintEvents(events []Event) string {
	var b strings.Builder
	for i, e := range events {
		appendFingerprint(&b, e, i+1)
	}
	return b.String()
}

// FingerprintOpEvents digests a protocol-level event slice, numbered by
// position like FingerprintEvents. It folds in the fields the lock
// oracles reason about — kind, rank, lock, predecessor, ticket, epoch —
// and deliberately excludes Time (virtual on sim, wall elsewhere) and
// the global Seq (which counts events of every kind, so a filtered lock
// sub-stream would inherit unrelated interleaving). Two runs whose lock
// hand-off history agrees fingerprint identically across fabrics and
// schedule seeds.
func FingerprintOpEvents(events []OpEvent) string {
	var b strings.Builder
	for i, e := range events {
		fmt.Fprintf(&b, "%d:%s:r%d:l%d:p%d:t%d:e%d;",
			i+1, e.Kind, e.Rank, e.Lock, e.Prev, e.Ticket, e.Epoch)
	}
	return b.String()
}

func appendFingerprint(b *strings.Builder, e Event, seq int) {
	fmt.Fprintf(b, "%d:%s:%v>%v:%d", seq, e.Kind, e.Src, e.Dst, e.Size)
	if e.PairSeq != 0 {
		fmt.Fprintf(b, ":q%d", e.PairSeq)
	}
	if e.FaultDelay != 0 {
		fmt.Fprintf(b, ":f%d", e.FaultDelay.Nanoseconds())
	}
	if e.Dup {
		b.WriteString(":dup")
	}
	b.WriteByte(';')
}
