package trace

import (
	"strings"
	"sync"
	"testing"

	"armci/internal/msg"
)

func send(s *Stats, kind msg.Kind, src, dst msg.Addr, n int) {
	s.RecordSend(&msg.Message{Kind: kind, Src: src, Dst: dst, Data: make([]byte, n)})
}

func TestCountsAndBytes(t *testing.T) {
	s := New()
	send(s, msg.KindPut, msg.User(0), msg.ServerOf(1), 100)
	send(s, msg.KindPut, msg.User(0), msg.ServerOf(2), 50)
	send(s, msg.KindFenceReq, msg.User(0), msg.ServerOf(1), 0)
	if s.Sends() != 3 {
		t.Fatalf("sends = %d", s.Sends())
	}
	if s.Count(msg.KindPut) != 2 || s.Count(msg.KindFenceReq) != 1 || s.Count(msg.KindGet) != 0 {
		t.Fatal("per-kind counts wrong")
	}
	wantBytes := int64((&msg.Message{Data: make([]byte, 100)}).PayloadBytes() +
		(&msg.Message{Data: make([]byte, 50)}).PayloadBytes() +
		(&msg.Message{}).PayloadBytes())
	if s.Bytes() != wantBytes {
		t.Fatalf("bytes = %d, want %d", s.Bytes(), wantBytes)
	}
	if s.PairCount(msg.User(0), msg.ServerOf(1)) != 2 {
		t.Fatalf("pair count = %d", s.PairCount(msg.User(0), msg.ServerOf(1)))
	}
}

func TestNilStatsIsSafe(t *testing.T) {
	var s *Stats
	s.RecordSend(&msg.Message{Kind: msg.KindPut}) // must not panic
}

func TestCaptureAndFingerprint(t *testing.T) {
	mk := func() *Stats {
		s := New()
		s.SetCapture(true)
		send(s, msg.KindColl, msg.User(0), msg.User(1), 8)
		send(s, msg.KindColl, msg.User(1), msg.User(0), 8)
		return s
	}
	a, b := mk(), mk()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical streams produced different fingerprints")
	}
	c := New()
	c.SetCapture(true)
	send(c, msg.KindColl, msg.User(1), msg.User(0), 8)
	send(c, msg.KindColl, msg.User(0), msg.User(1), 8)
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("reordered streams produced equal fingerprints")
	}
	if len(a.Events()) != 2 {
		t.Fatalf("captured %d events", len(a.Events()))
	}
}

func TestCaptureOffByDefault(t *testing.T) {
	s := New()
	send(s, msg.KindPut, msg.User(0), msg.ServerOf(0), 1)
	if len(s.Events()) != 0 {
		t.Fatal("events captured without capture mode")
	}
	if s.Sends() != 1 {
		t.Fatal("counting should always be on")
	}
}

func TestDisabledPausesAccounting(t *testing.T) {
	s := New()
	send(s, msg.KindPut, msg.User(0), msg.ServerOf(0), 1)
	s.SetDisabled(true)
	send(s, msg.KindPut, msg.User(0), msg.ServerOf(0), 1)
	s.SetDisabled(false)
	send(s, msg.KindPut, msg.User(0), msg.ServerOf(0), 1)
	if s.Sends() != 2 {
		t.Fatalf("sends = %d, want 2", s.Sends())
	}
}

func TestReset(t *testing.T) {
	s := New()
	s.SetCapture(true)
	send(s, msg.KindPut, msg.User(0), msg.ServerOf(0), 1)
	s.Reset()
	if s.Sends() != 0 || s.Bytes() != 0 || len(s.Events()) != 0 || s.Count(msg.KindPut) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestSummaryFormat(t *testing.T) {
	s := New()
	send(s, msg.KindPut, msg.User(0), msg.ServerOf(0), 1)
	send(s, msg.KindColl, msg.User(0), msg.User(1), 1)
	sum := s.Summary()
	for _, want := range []string{"2 msgs", "put=1", "coll=1"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary %q missing %q", sum, want)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	s := New()
	const workers, each = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				send(s, msg.KindPut, msg.User(0), msg.ServerOf(0), 4)
			}
		}()
	}
	wg.Wait()
	if s.Sends() != workers*each {
		t.Fatalf("sends = %d, want %d", s.Sends(), workers*each)
	}
}
