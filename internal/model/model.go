// Package model defines the communication and CPU cost model used by the
// simulated fabric and, optionally, by the real fabrics for latency
// injection.
//
// The model is LogGP-like: a message of s bytes sent from an idle sender to
// a receiver costs
//
//	SendOverhead (sender CPU)  +  Latency + s*ByteTime (wire)  +
//	RecvOverhead (receiver CPU)
//
// and a server that was idle (blocked in its receive loop, asleep) pays an
// additional WakeUp penalty for the first request of a busy period. Each
// request type additionally charges the server a service time while it is
// being handled; requests queue FIFO behind one another at a server, which
// is how contention at a hot data server emerges in the simulation.
//
// The parameters of the Myrinet2000 preset are calibrated so that the
// simulated experiments of the paper ("Optimizing Synchronization
// Operations for Remote Memory Communication Systems", IPPS 2003) have the
// shape of the published figures: GA_Sync 190 µs (new) vs ~1.7 ms (old) at
// 16 processes, lock hand-off 2 vs 1 message latencies, and so on. The
// absolute values are documented per experiment in EXPERIMENTS.md.
package model

import (
	"fmt"
	"time"
)

// Topology is a synthetic node layout for the in-process fabrics:
// Nodes SMP nodes with PPN consecutive ranks each, mirroring what
// procnet's -ppn gives a real multi-process launch. Endpoints on the
// same node communicate at LocalLatency, distinct nodes at Latency —
// the distinction the hierarchical two-level collectives exploit by
// keeping all member traffic intra-node.
type Topology struct {
	// Nodes is the number of SMP nodes.
	Nodes int
	// PPN is the number of consecutive ranks per node.
	PPN int
}

// Procs returns the total rank count of the layout.
func (t Topology) Procs() int { return t.Nodes * t.PPN }

// NodeOf returns the node hosting rank.
func (t Topology) NodeOf(rank int) int { return rank / t.PPN }

// Leader returns the lowest rank on rank's node — the per-node leader
// of the hierarchical collectives.
func (t Topology) Leader(rank int) int { return (rank / t.PPN) * t.PPN }

// Validate rejects degenerate layouts.
func (t Topology) Validate() error {
	if t.Nodes < 1 || t.PPN < 1 {
		return fmt.Errorf("model: topology %dx%d needs at least one node and one rank per node", t.Nodes, t.PPN)
	}
	return nil
}

// Params is the set of cost-model parameters, all expressed as durations
// (per-byte costs as the duration per single byte).
type Params struct {
	// Name identifies the preset for reports.
	Name string

	// SendOverhead is the CPU time a process spends injecting one message
	// into the network (GM host overhead, PCI programming).
	SendOverhead time.Duration

	// RecvOverhead is the CPU time a process spends draining one message
	// from the network into user space.
	RecvOverhead time.Duration

	// Latency is the one-way wire latency of a zero-byte message between
	// two distinct nodes.
	Latency time.Duration

	// ByteTime is the additional wire time per payload byte (inverse
	// bandwidth).
	ByteTime time.Duration

	// LocalLatency is the one-way latency between two endpoints of the
	// same node (shared-memory hand-off between a user process and its
	// own server thread, or between co-located processes).
	LocalLatency time.Duration

	// ServerWake is the penalty paid by a server that receives a request
	// while idle: the server thread blocks in a receive and sleeps, so
	// the first request of a busy period must wake it (interrupt +
	// scheduler). Subsequent back-to-back requests do not pay it.
	ServerWake time.Duration

	// ServerIdleAfter is how long a server must be without work before it
	// goes back to sleep (and the next request pays ServerWake again).
	ServerIdleAfter time.Duration

	// ServiceSmall is the server CPU time to handle a small control
	// request (lock, unlock, RMW).
	ServiceSmall time.Duration

	// ServiceFence is the extra server time to produce a fence
	// confirmation. On GM there are no per-put completion acks, so the
	// server must synchronize with the NIC DMA engine (a gm_flush-style
	// drain) before it can assert that every prior put from the origin
	// has landed in user memory — expensive through a 32 bit / 33 MHz
	// PCI bus. Only the original AllFence path pays this; the new
	// combined barrier avoids fence confirmations entirely.
	ServiceFence time.Duration

	// ServiceByteTime is the additional server CPU time per payload byte
	// for data requests (put/get/accumulate memory copies).
	ServiceByteTime time.Duration

	// AtomicOp is the CPU time of a local atomic operation
	// (fetch-and-increment, swap, compare&swap) on shared memory.
	AtomicOp time.Duration

	// NICService is the processing time of one request on a NIC agent
	// when NIC-assisted operations are enabled (the paper's §5 future
	// work): the NIC processor polls its request queue, so there is no
	// wake-up penalty and the per-request cost is far below the host
	// server's service time. The NIC-offload fence mode
	// (server.Options.NICFence) charges exactly this — and neither
	// ServerWake nor ServiceFence — for a fence round-trip: the NIC
	// answers from its descriptor queue state without waking the host
	// or draining the DMA engine through the PCI bus, and the server's
	// own busy/idle accounting is untouched.
	NICService time.Duration

	// PollGap is the re-check interval a process spends spinning on a
	// local variable (ticket counter, MCS locked flag, op_done). In the
	// simulator waiting is event driven, so PollGap only models the small
	// detection delay between the memory write and the waiter noticing.
	PollGap time.Duration
}

// Myrinet2000 returns parameters calibrated to the paper's testbed: 1 GHz
// dual Pentium III nodes, 32 bit / 33 MHz PCI, Myrinet-2000 with GM. The
// one-way small-message GM latency of that generation was ~8-12 µs; the
// host overheads and the server wake-up penalty dominate the old AllFence
// path exactly as the paper describes.
func Myrinet2000() Params {
	return Params{
		Name:            "myrinet2000-p3",
		SendOverhead:    2 * time.Microsecond,
		RecvOverhead:    2 * time.Microsecond,
		Latency:         13 * time.Microsecond,
		ByteTime:        8 * time.Nanosecond, // ~125 MB/s effective through 32/33 PCI
		LocalLatency:    1 * time.Microsecond,
		ServerWake:      8 * time.Microsecond,
		ServerIdleAfter: 150 * time.Microsecond,
		ServiceSmall:    8 * time.Microsecond,
		ServiceFence:    25 * time.Microsecond,
		ServiceByteTime: 4 * time.Nanosecond,
		AtomicOp:        150 * time.Nanosecond,
		NICService:      500 * time.Nanosecond,
		PollGap:         3 * time.Microsecond,
	}
}

// LowLatency returns a preset for a hypothetical cut-through interconnect
// an order of magnitude faster than Myrinet-2000 (think Quadrics/QsNet of
// the same era): used by the sensitivity analysis to show how the paper's
// improvement factors depend on the network.
func LowLatency() Params {
	p := Myrinet2000()
	p.Name = "low-latency"
	p.Latency = 3 * time.Microsecond
	p.ByteTime = 2 * time.Nanosecond
	p.SendOverhead = 800 * time.Nanosecond
	p.RecvOverhead = 800 * time.Nanosecond
	p.ServerWake = 4 * time.Microsecond
	p.ServiceFence = 12 * time.Microsecond
	return p
}

// FastEthernet returns a higher-latency preset used by ablation benches to
// show that the improvement factors grow with latency.
func FastEthernet() Params {
	p := Myrinet2000()
	p.Name = "fast-ethernet"
	p.Latency = 60 * time.Microsecond
	p.ByteTime = 80 * time.Nanosecond
	p.ServerWake = 50 * time.Microsecond
	return p
}

// Zero returns a model with all costs zero. Used by correctness tests that
// only care about protocol behaviour, not timing.
func Zero() Params {
	return Params{Name: "zero"}
}

// WireTime returns the wire component of sending n payload bytes between
// the two endpoints: one-way latency plus serialization time. local selects
// the intra-node latency.
func (p Params) WireTime(n int, local bool) time.Duration {
	lat := p.Latency
	if local {
		lat = p.LocalLatency
	}
	return lat + time.Duration(n)*p.ByteTime
}

// ServiceTime returns the server CPU time to execute a request carrying n
// payload bytes.
func (p Params) ServiceTime(n int) time.Duration {
	return p.ServiceSmall + time.Duration(n)*p.ServiceByteTime
}
