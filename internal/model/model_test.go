package model

import (
	"testing"
	"time"
)

func TestWireTime(t *testing.T) {
	p := Params{Latency: 10 * time.Microsecond, LocalLatency: time.Microsecond, ByteTime: 10 * time.Nanosecond}
	if got := p.WireTime(0, false); got != 10*time.Microsecond {
		t.Fatalf("zero-byte remote = %v", got)
	}
	if got := p.WireTime(100, false); got != 11*time.Microsecond {
		t.Fatalf("100-byte remote = %v", got)
	}
	if got := p.WireTime(0, true); got != time.Microsecond {
		t.Fatalf("zero-byte local = %v", got)
	}
}

func TestServiceTime(t *testing.T) {
	p := Params{ServiceSmall: 2 * time.Microsecond, ServiceByteTime: 4 * time.Nanosecond}
	if got := p.ServiceTime(0); got != 2*time.Microsecond {
		t.Fatalf("control service = %v", got)
	}
	if got := p.ServiceTime(1000); got != 6*time.Microsecond {
		t.Fatalf("1000-byte service = %v", got)
	}
}

func TestPresetsAreSane(t *testing.T) {
	for _, p := range []Params{Myrinet2000(), FastEthernet()} {
		if p.Name == "" {
			t.Fatal("preset has no name")
		}
		if p.Latency <= 0 || p.SendOverhead <= 0 || p.RecvOverhead <= 0 {
			t.Fatalf("%s: non-positive base costs", p.Name)
		}
		if p.LocalLatency >= p.Latency {
			t.Fatalf("%s: intra-node latency not cheaper than the wire", p.Name)
		}
		if p.ServerIdleAfter <= 0 || p.ServerWake <= 0 {
			t.Fatalf("%s: wake model unset", p.Name)
		}
	}
}

func TestZeroPresetDisablesEverything(t *testing.T) {
	z := Zero()
	if z.WireTime(1<<20, false) != 0 || z.ServiceTime(1<<20) != 0 {
		t.Fatal("zero preset has costs")
	}
}

// TestCalibrationOrdering pins the relations the reproduction depends on:
// the fence confirmation is the expensive server operation, and the wake
// penalty is smaller than the wire latency (GM's receive spins before
// sleeping, so in the hot lock loops servers rarely sleep).
func TestCalibrationOrdering(t *testing.T) {
	p := Myrinet2000()
	if p.ServiceFence <= p.ServiceSmall {
		t.Fatal("fence confirmation should cost more than a generic control op")
	}
	if p.ServerWake >= p.Latency {
		t.Fatal("wake penalty should be below one wire latency in this calibration")
	}
	if p.PollGap <= 0 {
		t.Fatal("poll detection gap must be positive")
	}
}
