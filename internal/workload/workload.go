// Package workload is the grammar-driven scenario generator of the
// conformance harness: it turns a compact spec string ("stencil",
// "paramserver:hot=2,updates=8", "mixed:skew=hot,nb=75,seed=9") into a
// deterministic per-rank program over the public armci surface, paired
// with a workload-specific invariant oracle. The four kinds stress
// protocol paths the harness's default lock/put/notify workload does
// not:
//
//   - stencil: halo-exchange Jacobi sweeps over ga 2-D block-distributed
//     arrays — strided multi-block gets and puts, with a cell-exact
//     sequential replay plus a global boundary checksum as the oracle;
//   - paramserver: every rank streams Accumulate updates (blocking and
//     NbAcc) into one hot rank's parameter vector — accumulate
//     contention, with exact-sum verification (updates are
//     integer-valued, so float/int accumulation is order-independent
//     and exact);
//   - prodcons: a pipelined producer→consumer chain over PutFlag /
//     WaitFlag with per-item flags — notify ordering, with
//     byte-for-byte no-stale-read verification at every hop;
//   - mixed: an adversarial program sampled from a seeded grammar (op
//     kind × target skew × payload size × nb/blocking), replayed
//     against a local model for state-exact verification.
//
// Every body routes its global synchronization through the case's sync
// variant, so the trace-level fence oracle applies to each workload for
// free, and every payload is a pure function of (round, writer, index):
// a stale or misrouted byte is unambiguous. Hazards carries the
// deliberately broken variants behind the harness's mutation self-test.
package workload

import (
	"encoding/binary"
	"fmt"

	"armci"
	"armci/ga"
)

// Config is the harness-side context a workload body runs under.
type Config struct {
	// Seed is the generator seed used when the spec carries no seed=
	// knob (the mixed workload's program, in particular, is a pure
	// function of it).
	Seed int64
	// Sync selects the global synchronization variant, as in
	// check.Case: "barrier" (default), "sync-old", "sync-old-pipelined".
	Sync string
	// Report receives invariant-oracle failures (printf-style). Nil
	// panics on the first failure — the right default for standalone
	// runs; the harness passes its state collector.
	Report func(format string, args ...any)
	// Hazards arms deliberately broken variants (mutation self-test).
	Hazards Hazards
}

// Hazards are the workload-level deliberately broken variants. Each
// reintroduces a bug class only the workload oracles can catch; the
// harness's mutation self-test (check.Mutations) proves they are.
type Hazards struct {
	// AccLostUpdate replaces the parameter-server's atomic Accumulate
	// with a non-atomic Load / Store read-modify-write, so concurrent
	// updates from different ranks interleave and increments are lost.
	// Caught by the accumulate-sum exactness oracle.
	AccLostUpdate bool
	// FlagBeforeData makes the producer publish its notify flag with a
	// plain word store issued before the data chunks (the store rides
	// the control pipe, the data the server pipe), so the consumer's
	// WaitFlag wakes while the chunks are still in flight. Caught by the
	// no-stale-read byte verification.
	FlagBeforeData bool
}

// Armed reports whether any hazard is enabled.
func (h Hazards) Armed() bool { return h != Hazards{} }

// Build compiles a parsed spec into a per-rank body for armci.Run. The
// spec must come from Parse (or be otherwise valid); an unknown kind
// panics.
func Build(sp Spec, cfg Config) func(*armci.Proc) {
	sp = sp.withDefaults()
	switch sp.Kind {
	case KindStencil:
		return stencilBody(sp, cfg)
	case KindParamServer:
		return paramServerBody(sp, cfg)
	case KindProdCons:
		return prodConsBody(sp, cfg)
	case KindMixed:
		return mixedBody(sp, cfg)
	}
	panic(fmt.Sprintf("workload: Build on spec with unknown kind %q", sp.Kind))
}

// reportf routes an oracle failure to the configured sink.
func (cfg Config) reportf(format string, args ...any) {
	if cfg.Report != nil {
		cfg.Report(format, args...)
		return
	}
	panic(fmt.Sprintf("workload: "+format, args...))
}

// syncFor maps the config's sync-variant name to the proc's collective.
func syncFor(p *armci.Proc, mode string) func() {
	switch mode {
	case "sync-old":
		return p.SyncOld
	case "sync-old-pipelined":
		return p.SyncOldPipelined
	}
	return p.Barrier
}

// gaMode maps the config's sync-variant name to the ga SyncMode.
func gaMode(mode string) ga.SyncMode {
	switch mode {
	case "sync-old":
		return ga.SyncOld
	case "sync-old-pipelined":
		return ga.SyncOldPipelined
	}
	return ga.SyncNew
}

// leWords encodes int64 values little-endian, the wire layout of
// AccInt64 regions.
func leWords(vals []int64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(v))
	}
	return b
}
