package workload

import (
	"encoding/binary"
	"math/rand"

	"armci"
)

// mixedBody is the adversarial workload: a program sampled from the
// seeded grammar — op kind (word store / byte put / accumulate) ×
// target skew (uniform / hot / neighbor) × payload size × non-blocking
// or blocking — and executed round by round. Every rank generates the
// identical global plan from the shared seed, executes its own slice of
// it, and maintains a local model of the whole distributed state by
// replaying the full plan; the plan is conflict-free by construction
// (each writer owns a word slot and a byte segment per target, and
// accumulates are commutative-exact), so the model is schedule-
// independent even though the wire interleaving is not.
//
// Oracle: mixed-mode state replay. After each round's sync, every rank
// compares its own incoming region — word slots, byte segments,
// accumulator cells — against the model byte-for-byte, plus two
// plan-sampled remote reads that exercise the get path against other
// ranks' regions.
func mixedBody(sp Spec, cfg Config) func(*armci.Proc) {
	return func(p *armci.Proc) {
		me, n := p.Rank(), p.Size()
		ops, rounds, maxBytes, nbPct := sp.Ops, sp.Rounds, sp.MaxBytes, sp.NbPct
		wordSlots := p.MallocWords(n)
		byteRegion := p.Malloc(n * maxBytes)
		accRegion := p.Malloc(8 * mixedAccCells)
		syncFn := syncFor(p, cfg.Sync)
		syncFn()

		// Model of the whole distributed state, indexed [owner][writer].
		words := make([]int64, n*n)
		bmodel := make([][]byte, n)
		for o := range bmodel {
			bmodel[o] = make([]byte, n*maxBytes)
		}
		accs := make([]int64, n*mixedAccCells)

		rng := rand.New(rand.NewSource(sp.genSeed(cfg.Seed) + 0x6d697865)) // same stream on every rank
		for round := 0; round < rounds; round++ {
			plan, reads := mixedRound(rng, n, ops, sp.Skew, maxBytes, nbPct, round)
			var hs []*armci.Handle
			for _, op := range plan {
				switch op.kind {
				case opWord:
					words[op.target*n+op.rank] = op.val
				case opBytes:
					copy(bmodel[op.target][op.rank*maxBytes+op.slot:], mixedPayload(op.val, op.size))
				case opAcc:
					accs[op.target*mixedAccCells+op.slot] += op.val
				}
				if op.rank != me {
					continue
				}
				switch op.kind {
				case opWord:
					p.Store(wordSlots[op.target].Add(int64(me)), op.val)
				case opBytes:
					dst := byteRegion[op.target].Add(int64(me*maxBytes + op.slot))
					if op.nb {
						hs = append(hs, p.NbPut(dst, mixedPayload(op.val, op.size)))
					} else {
						p.Put(dst, mixedPayload(op.val, op.size))
					}
				case opAcc:
					cell := accRegion[op.target].Add(int64(8 * op.slot))
					if op.nb {
						hs = append(hs, p.NbAcc(armci.AccInt64, cell, leWords([]int64{op.val}), 1))
					} else {
						p.Accumulate(armci.AccInt64, cell, armci.Contig(8), leWords([]int64{op.val}), 1)
					}
				}
			}
			p.WaitAll(hs...)
			syncFn()

			for w := 0; w < n; w++ {
				if got, want := p.Load(wordSlots[me].Add(int64(w))), words[me*n+w]; got != want {
					cfg.reportf("mixed round %d: rank %d word slot from writer %d = %d, want %d (a store was lost or reordered)",
						round+1, me, w, got, want)
				}
			}
			got := p.Get(byteRegion[me], n*maxBytes)
			for i := range got {
				if got[i] != bmodel[me][i] {
					cfg.reportf("mixed round %d: rank %d byte region diverges from the replay at offset %d (writer %d)",
						round+1, me, i, i/maxBytes)
					break
				}
			}
			ab := p.Get(accRegion[me], 8*mixedAccCells)
			for i := 0; i < mixedAccCells; i++ {
				if got, want := int64(binary.LittleEndian.Uint64(ab[8*i:])), accs[me*mixedAccCells+i]; got != want {
					cfg.reportf("mixed round %d: rank %d accumulator cell %d = %d, want %d (an accumulate was lost)",
						round+1, me, i, got, want)
				}
			}
			for _, rd := range reads {
				if rd.rank != me {
					continue
				}
				if got, want := p.Load(wordSlots[rd.owner].Add(int64(rd.writer))), words[rd.owner*n+rd.writer]; got != want {
					cfg.reportf("mixed round %d: rank %d remote word read (owner %d, writer %d) = %d, want %d",
						round+1, me, rd.owner, rd.writer, got, want)
				}
				gb := p.Get(byteRegion[rd.owner].Add(int64(rd.writer*maxBytes)), maxBytes)
				wb := bmodel[rd.owner][rd.writer*maxBytes : (rd.writer+1)*maxBytes]
				for i := range gb {
					if gb[i] != wb[i] {
						cfg.reportf("mixed round %d: rank %d remote byte read (owner %d, writer %d) stale at offset %d",
							round+1, me, rd.owner, rd.writer, i)
						break
					}
				}
			}
			syncFn()
		}
	}
}

// mixedAccCells is the size of each rank's contended accumulator array.
const mixedAccCells = 4

// mixedOp kinds.
const (
	opWord = iota
	opBytes
	opAcc
)

// mixedOp is one sampled operation of the plan.
type mixedOp struct {
	rank   int // issuing rank
	kind   int
	target int // destination rank
	slot   int // byte offset (opBytes) or accumulator cell (opAcc)
	size   int // payload bytes (opBytes)
	val    int64
	nb     bool
}

// mixedRead is one sampled post-sync verification read.
type mixedRead struct {
	rank, owner, writer int
}

// mixedRound samples one round of the plan: ops operations per rank
// plus two verification reads per rank. Every rank calls this with an
// identically-seeded rng, so the global plan — and therefore the model
// replay — agrees everywhere.
func mixedRound(rng *rand.Rand, n, ops int, skew string, maxBytes, nbPct, round int) ([]mixedOp, []mixedRead) {
	plan := make([]mixedOp, 0, n*ops)
	idx := 0
	for writer := 0; writer < n; writer++ {
		for o := 0; o < ops; o++ {
			op := mixedOp{
				rank:   writer,
				kind:   rng.Intn(3),
				target: mixedTarget(rng, skew, writer, n),
				val:    int64((round+1)*1_000_000 + idx*173 + writer + 1),
				nb:     rng.Intn(100) < nbPct,
			}
			switch op.kind {
			case opBytes:
				op.size = 8 + rng.Intn(maxBytes-7) // [8, maxBytes]
				op.slot = rng.Intn(maxBytes - op.size + 1)
			case opAcc:
				op.slot = rng.Intn(mixedAccCells)
			}
			plan = append(plan, op)
			idx++
		}
	}
	reads := make([]mixedRead, 0, 2*n)
	for rank := 0; rank < n; rank++ {
		for k := 0; k < 2; k++ {
			reads = append(reads, mixedRead{rank: rank, owner: rng.Intn(n), writer: rng.Intn(n)})
		}
	}
	return plan, reads
}

// mixedTarget samples the destination rank under the spec's skew:
// uniform spreads load, hot funnels everything at rank 0, neighbor
// shifts one right (the ALock-style locality pattern).
func mixedTarget(rng *rand.Rand, skew string, writer, n int) int {
	switch skew {
	case "hot":
		return 0
	case "neighbor":
		return (writer + 1) % n
	}
	return rng.Intn(n)
}

// mixedPayload renders the byte pattern of one put — a pure function of
// the op's value so a stale slot is unambiguous.
func mixedPayload(val int64, size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(int(val) + i*13)
	}
	return b
}
