package workload

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"armci"
)

// runWorkload executes one spec on the simulated fabric and returns the
// oracle reports.
func runWorkload(t *testing.T, spec string, seed int64, hz Hazards) []string {
	t.Helper()
	sp, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	var mu sync.Mutex
	var reports []string
	_, err = armci.Run(armci.Options{
		Procs:        6,
		ProcsPerNode: 2,
		Fabric:       armci.FabricSim,
		Preset:       armci.PresetMyrinet2000,
		ScheduleSeed: seed,
	}, Build(sp, Config{
		Seed: seed,
		Report: func(format string, args ...any) {
			mu.Lock()
			reports = append(reports, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
		Hazards: hz,
	}))
	if err != nil {
		t.Fatalf("run %q: %v", spec, err)
	}
	return reports
}

// TestWorkloadsClean: every kind, defaults and a non-default shape,
// runs with its oracle silent across a few schedule seeds.
func TestWorkloadsClean(t *testing.T) {
	specs := []string{
		"stencil",
		"stencil:rows=1,cols=9,halo=2", // 1×N with halo wider than the tile
		"stencil:rows=9,cols=1,halo=3", // N×1
		"paramserver",
		"paramserver:hot=3,updates=6,width=4",
		"prodcons",
		"prodcons:chunks=4,bytes=64,depth=4",
		"mixed",
		"mixed:skew=hot,nb=0",
		"mixed:skew=neighbor,nb=100,ops=8",
	}
	for _, spec := range specs {
		for _, seed := range []int64{0, 1, 7} {
			if reports := runWorkload(t, spec, seed, Hazards{}); len(reports) > 0 {
				t.Errorf("%q seed %d: %d oracle reports, first: %s", spec, seed, len(reports), reports[0])
			}
		}
	}
}

// TestWorkloadSyncVariants: the bodies route synchronization through
// the configured variant; each must keep the oracles silent.
func TestWorkloadSyncVariants(t *testing.T) {
	for _, mode := range []string{"barrier", "sync-old", "sync-old-pipelined"} {
		sp, err := Parse("mixed:ops=6")
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		var reports []string
		_, err = armci.Run(armci.Options{
			Procs: 4, ProcsPerNode: 2, Fabric: armci.FabricSim,
			Preset: armci.PresetMyrinet2000, ScheduleSeed: 1,
		}, Build(sp, Config{Seed: 1, Sync: mode, Report: func(format string, args ...any) {
			mu.Lock()
			reports = append(reports, fmt.Sprintf(format, args...))
			mu.Unlock()
		}}))
		if err != nil {
			t.Fatalf("sync %s: %v", mode, err)
		}
		if len(reports) > 0 {
			t.Errorf("sync %s: %s", mode, reports[0])
		}
	}
}

// TestHazardsAreCaught: each deliberately broken variant must trip its
// workload's oracle — the package-level half of the harness's mutation
// self-test.
func TestHazardsAreCaught(t *testing.T) {
	for _, tc := range []struct {
		spec string
		hz   Hazards
		want string
	}{
		{"paramserver", Hazards{AccLostUpdate: true}, "accumulate was lost"},
		{"prodcons", Hazards{FlagBeforeData: true}, "stale"},
	} {
		caught := false
		for seed := int64(1); seed <= 16 && !caught; seed++ {
			for _, r := range runWorkload(t, tc.spec, seed, tc.hz) {
				if strings.Contains(r, tc.want) {
					caught = true
					break
				}
			}
		}
		if !caught {
			t.Errorf("hazard %+v on %q: no oracle report containing %q in 16 seeds", tc.hz, tc.spec, tc.want)
		}
	}
}
