package workload

import (
	"errors"
	"reflect"
	"testing"
)

// TestParseRoundTrip: every accepted spec round-trips through Format,
// and Format output is a canonical fixed point.
func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{
		"stencil",
		"stencil:rows=12,cols=3,halo=2,steps=4",
		"stencil:halo=5,seed=7",
		"paramserver",
		"paramserver:hot=2,updates=6,width=16",
		"prodcons:chunks=4,bytes=256,depth=3",
		"mixed",
		"mixed:ops=48,skew=hot,maxbytes=512,nb=75,rounds=2,seed=9",
		"mixed:nb=0",
		"mixed:skew=neighbor",
	} {
		sp, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		canon := Format(sp)
		sp2, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(Format(%q)=%q): %v", s, canon, err)
		}
		if !reflect.DeepEqual(sp, sp2) {
			t.Errorf("round trip of %q via %q: %+v != %+v", s, canon, sp, sp2)
		}
		if again := Format(sp2); again != canon {
			t.Errorf("Format not a fixed point for %q: %q -> %q", s, canon, again)
		}
	}
}

// TestParseRejectsWithPosition: invalid specs are rejected with a
// *ParseError pointing at the offending byte.
func TestParseRejectsWithPosition(t *testing.T) {
	for _, tc := range []struct {
		in  string
		pos int
	}{
		{"", 0},
		{"bogus", 0},
		{"stencil2:rows=4", 0},
		{"stencil:", 8},
		{"stencil:rows", 8},
		{"stencil:rows=4,,halo=1", 15},
		{"stencil:rows=4,rows=5", 15},
		{"stencil:rows=x", 13},
		{"stencil:rows=0", 13},
		{"stencil:rows=257", 13},
		{"stencil:hot=2", 8},        // paramserver knob on stencil
		{"paramserver:bogus=1", 12}, // unknown knob
		{"mixed:skew=sideways", 11},
		{"mixed:nb=101", 9},
		{"mixed:seed=-1", 11},
		{"prodcons:chunks=2,seed=zzz", 23},
	} {
		_, err := Parse(tc.in)
		if err == nil {
			t.Errorf("Parse(%q): want error, got none", tc.in)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("Parse(%q): error %v is not a *ParseError", tc.in, err)
			continue
		}
		if pe.Pos != tc.pos {
			t.Errorf("Parse(%q): error at pos %d, want %d (%v)", tc.in, pe.Pos, tc.pos, err)
		}
	}
}

// TestValidateFor covers the shape-dependent checks Parse cannot do.
func TestValidateFor(t *testing.T) {
	sp, err := Parse("paramserver:hot=6")
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.ValidateFor(6); err == nil {
		t.Error("hot=6 with 6 procs: want error, got none")
	}
	if err := sp.ValidateFor(8); err != nil {
		t.Errorf("hot=6 with 8 procs: %v", err)
	}
}

// FuzzWorkloadGrammar mirrors FuzzParseFaults: any input either parses
// — and then must round-trip with Format as a canonical fixed point —
// or is rejected with a *ParseError whose position lies inside the
// input.
func FuzzWorkloadGrammar(f *testing.F) {
	for _, s := range []string{
		"stencil",
		"stencil:rows=12,cols=3,halo=2,steps=4,seed=5",
		"paramserver:hot=2,updates=6,width=16",
		"prodcons:chunks=4,bytes=256,depth=3",
		"mixed:ops=48,skew=hot,maxbytes=512,nb=0,rounds=2,seed=9",
		"mixed:skew=neighbor,nb=100",
		"bogus",
		"stencil:rows=4,rows=5",
		"paramserver:hot=",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := Parse(s)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("Parse(%q): rejection %v is not a *ParseError", s, err)
			}
			if pe.Pos < 0 || pe.Pos > len(s) {
				t.Fatalf("Parse(%q): error position %d outside input of length %d", s, pe.Pos, len(s))
			}
			return
		}
		canon := Format(sp)
		sp2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted %q does not reparse: %v", canon, s, err)
		}
		if !reflect.DeepEqual(sp, sp2) {
			t.Fatalf("round trip of %q via %q: %+v != %+v", s, canon, sp, sp2)
		}
		if again := Format(sp2); again != canon {
			t.Fatalf("Format not a fixed point: %q -> %q", canon, again)
		}
	})
}
