package workload

import (
	"fmt"
	"strconv"
	"strings"
)

// The workload grammar is
//
//	<kind>[:<knob>=<value>,<knob>=<value>,...]
//
// with one kind from Kinds() and kind-specific integer knobs, each
// given at most once and with no whitespace. Every kind accepts a
// seed=<int> knob overriding the case seed as the generator seed.
// Errors carry the byte offset of the offending token (ParseError);
// any accepted spec round-trips through Format, and Format output is a
// canonical fixed point (defaults elided, knobs in a fixed order).

// Workload kinds.
const (
	// KindStencil: halo-exchange Jacobi sweeps over a ga 2-D array.
	// Knobs: rows, cols (grid shape), halo (neighbor distance — may
	// exceed the per-rank tile), steps (sweep count).
	KindStencil = "stencil"
	// KindParamServer: all ranks Accumulate update vectors into one hot
	// rank's parameter vector. Knobs: hot (server rank), updates (per
	// rank), width (vector length in words).
	KindParamServer = "paramserver"
	// KindProdCons: pipelined producer→consumer chain via PutFlag /
	// WaitFlag. Knobs: chunks (per item), bytes (per chunk), depth
	// (items in flight).
	KindProdCons = "prodcons"
	// KindMixed: adversarial program sampled from the seeded grammar.
	// Knobs: ops (per rank per round), rounds, skew
	// (uniform|hot|neighbor), maxbytes (payload cap), nb (percent of
	// eligible ops issued non-blocking).
	KindMixed = "mixed"
)

// Kinds lists the workload kinds in sweep order.
func Kinds() []string {
	return []string{KindStencil, KindParamServer, KindProdCons, KindMixed}
}

// Spec is a parsed workload spec. The zero value of a knob means "use
// the kind's default"; parse ranges exclude zero except where zero is
// meaningful (hot, nb).
type Spec struct {
	// Kind is one of Kinds().
	Kind string

	// stencil
	Rows, Cols, Halo, Steps int
	// paramserver
	Hot, Updates, Width int
	// prodcons
	Chunks, Bytes, Depth int
	// mixed
	Ops, Rounds, MaxBytes int
	Skew                  string
	NbPct                 int
	// nbSet distinguishes an explicit nb=0 (all blocking) from the
	// elided default (50).
	nbSet bool

	// GenSeed overrides the case seed as the generator seed (0 = use
	// the case seed).
	GenSeed int64
}

// ParseError is a workload-grammar syntax error, locating the
// offending token by byte offset in the input.
type ParseError struct {
	Input string
	Pos   int
	Msg   string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("workload %q: pos %d: %s", e.Input, e.Pos, e.Msg)
}

// knobKinds maps each knob to the kinds it applies to.
var knobKinds = map[string][]string{
	"rows":     {KindStencil},
	"cols":     {KindStencil},
	"halo":     {KindStencil},
	"steps":    {KindStencil},
	"hot":      {KindParamServer},
	"updates":  {KindParamServer},
	"width":    {KindParamServer},
	"chunks":   {KindProdCons},
	"bytes":    {KindProdCons},
	"depth":    {KindProdCons},
	"ops":      {KindMixed},
	"rounds":   {KindMixed},
	"skew":     {KindMixed},
	"maxbytes": {KindMixed},
	"nb":       {KindMixed},
	"seed":     {KindStencil, KindParamServer, KindProdCons, KindMixed},
}

// Parse parses a workload spec string. On error the returned error is
// a *ParseError carrying the byte offset of the offending token.
func Parse(s string) (Spec, error) {
	var sp Spec
	if s == "" {
		return sp, &ParseError{Input: s, Pos: 0, Msg: "empty workload spec (want <kind>[:knob=value,...])"}
	}
	kind, rest, hasKnobs := strings.Cut(s, ":")
	switch kind {
	case KindStencil, KindParamServer, KindProdCons, KindMixed:
	default:
		return sp, &ParseError{Input: s, Pos: 0,
			Msg: fmt.Sprintf("unknown workload kind %q (want %s)", kind, strings.Join(Kinds(), ", "))}
	}
	sp.Kind = kind
	if !hasKnobs {
		return sp, nil
	}
	off := len(kind) + 1
	if rest == "" {
		return sp, &ParseError{Input: s, Pos: off, Msg: "empty knob list after ':'"}
	}
	seen := make(map[string]bool)
	for _, part := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(part, "=")
		if !ok || key == "" {
			return sp, &ParseError{Input: s, Pos: off,
				Msg: fmt.Sprintf("bad knob %q (want key=value)", part)}
		}
		if seen[key] {
			return sp, &ParseError{Input: s, Pos: off,
				Msg: fmt.Sprintf("duplicate knob %q: each knob may be given at most once", key)}
		}
		seen[key] = true
		if err := sp.setKnob(s, key, val, off, off+len(key)+1); err != nil {
			return sp, err
		}
		off += len(part) + 1
	}
	return sp, nil
}

// setKnob validates and assigns one knob. keyPos / valPos are the byte
// offsets of the key and value in the full input.
func (sp *Spec) setKnob(input, key, val string, keyPos, valPos int) error {
	kinds, known := knobKinds[key]
	if !known {
		return &ParseError{Input: input, Pos: keyPos,
			Msg: fmt.Sprintf("unknown knob %q (%s knobs: %s)", key, sp.Kind, strings.Join(kindKnobs(sp.Kind), ", "))}
	}
	applies := false
	for _, k := range kinds {
		applies = applies || k == sp.Kind
	}
	if !applies {
		return &ParseError{Input: input, Pos: keyPos,
			Msg: fmt.Sprintf("knob %q does not apply to kind %q (%s knobs: %s)", key, sp.Kind, sp.Kind, strings.Join(kindKnobs(sp.Kind), ", "))}
	}
	intKnob := func(dst *int, lo, hi int) error {
		n, err := strconv.Atoi(val)
		if err != nil {
			return &ParseError{Input: input, Pos: valPos,
				Msg: fmt.Sprintf("bad %s value %q: want an integer", key, val)}
		}
		if n < lo || n > hi {
			return &ParseError{Input: input, Pos: valPos,
				Msg: fmt.Sprintf("%s=%d out of range [%d,%d]", key, n, lo, hi)}
		}
		*dst = n
		return nil
	}
	switch key {
	case "rows":
		return intKnob(&sp.Rows, 1, 256)
	case "cols":
		return intKnob(&sp.Cols, 1, 256)
	case "halo":
		return intKnob(&sp.Halo, 1, 16)
	case "steps":
		return intKnob(&sp.Steps, 1, 32)
	case "hot":
		return intKnob(&sp.Hot, 0, 4095)
	case "updates":
		return intKnob(&sp.Updates, 1, 1024)
	case "width":
		return intKnob(&sp.Width, 1, 512)
	case "chunks":
		return intKnob(&sp.Chunks, 1, 64)
	case "bytes":
		return intKnob(&sp.Bytes, 1, 4096)
	case "depth":
		return intKnob(&sp.Depth, 1, 64)
	case "ops":
		return intKnob(&sp.Ops, 1, 4096)
	case "rounds":
		return intKnob(&sp.Rounds, 1, 64)
	case "maxbytes":
		return intKnob(&sp.MaxBytes, 8, 4096)
	case "skew":
		switch val {
		case "uniform", "hot", "neighbor":
			sp.Skew = val
			return nil
		}
		return &ParseError{Input: input, Pos: valPos,
			Msg: fmt.Sprintf("bad skew %q (want uniform, hot or neighbor)", val)}
	case "nb":
		if err := intKnob(&sp.NbPct, 0, 100); err != nil {
			return err
		}
		sp.nbSet = true
		return nil
	case "seed":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil || n < 0 {
			return &ParseError{Input: input, Pos: valPos,
				Msg: fmt.Sprintf("bad seed %q: want a non-negative integer", val)}
		}
		sp.GenSeed = n
		return nil
	}
	panic("workload: knob table and switch out of sync for " + key)
}

// kindKnobs lists the knobs valid for a kind, in canonical order.
func kindKnobs(kind string) []string {
	switch kind {
	case KindStencil:
		return []string{"rows", "cols", "halo", "steps", "seed"}
	case KindParamServer:
		return []string{"hot", "updates", "width", "seed"}
	case KindProdCons:
		return []string{"chunks", "bytes", "depth", "seed"}
	case KindMixed:
		return []string{"ops", "rounds", "skew", "maxbytes", "nb", "seed"}
	}
	return nil
}

// Format renders the canonical spec string: knobs in fixed order with
// defaults (zero values) elided. Parse(Format(sp)) returns sp for any
// sp produced by Parse, and Format(Parse(Format(sp))) is a fixed
// point.
func Format(sp Spec) string {
	var knobs []string
	addInt := func(key string, v int) {
		if v != 0 {
			knobs = append(knobs, fmt.Sprintf("%s=%d", key, v))
		}
	}
	switch sp.Kind {
	case KindStencil:
		addInt("rows", sp.Rows)
		addInt("cols", sp.Cols)
		addInt("halo", sp.Halo)
		addInt("steps", sp.Steps)
	case KindParamServer:
		addInt("hot", sp.Hot)
		addInt("updates", sp.Updates)
		addInt("width", sp.Width)
	case KindProdCons:
		addInt("chunks", sp.Chunks)
		addInt("bytes", sp.Bytes)
		addInt("depth", sp.Depth)
	case KindMixed:
		addInt("ops", sp.Ops)
		addInt("rounds", sp.Rounds)
		if sp.Skew != "" {
			knobs = append(knobs, "skew="+sp.Skew)
		}
		addInt("maxbytes", sp.MaxBytes)
		if sp.nbSet {
			knobs = append(knobs, fmt.Sprintf("nb=%d", sp.NbPct))
		}
	}
	if sp.GenSeed != 0 {
		knobs = append(knobs, fmt.Sprintf("seed=%d", sp.GenSeed))
	}
	if len(knobs) == 0 {
		return sp.Kind
	}
	return sp.Kind + ":" + strings.Join(knobs, ",")
}

// ValidateFor checks the knobs that depend on the run shape: Parse
// cannot know the process count.
func (sp Spec) ValidateFor(procs int) error {
	if sp.Kind == KindParamServer && sp.Hot >= procs {
		return fmt.Errorf("workload %q: hot rank %d out of range for %d procs", Format(sp), sp.Hot, procs)
	}
	return nil
}

// withDefaults fills unset knobs with the kind's defaults, sized so a
// default case stays fast under a seed sweep while still exercising
// multi-chunk, multi-round geometry.
func (sp Spec) withDefaults() Spec {
	def := func(dst *int, v int) {
		if *dst == 0 {
			*dst = v
		}
	}
	switch sp.Kind {
	case KindStencil:
		def(&sp.Rows, 8)
		def(&sp.Cols, 8)
		def(&sp.Halo, 1)
		def(&sp.Steps, 2)
	case KindParamServer:
		def(&sp.Updates, 4)
		def(&sp.Width, 8)
	case KindProdCons:
		def(&sp.Chunks, 3)
		def(&sp.Bytes, 128)
		def(&sp.Depth, 2)
	case KindMixed:
		def(&sp.Ops, 12)
		def(&sp.Rounds, 2)
		if sp.Skew == "" {
			sp.Skew = "uniform"
		}
		def(&sp.MaxBytes, 256)
		if !sp.nbSet {
			sp.NbPct = 50
			sp.nbSet = true
		}
	}
	return sp
}

// genSeed resolves the effective generator seed: the spec's own, or
// the case seed so a seed sweep also sweeps generated programs.
func (sp Spec) genSeed(caseSeed int64) int64 {
	if sp.GenSeed != 0 {
		return sp.GenSeed
	}
	return caseSeed
}
