package workload

import (
	"encoding/binary"

	"armci"
)

// paramServerBody is the hot-variable accumulate workload (the
// SynCron-style parameter-server shape): every rank streams sp.Updates
// integer update vectors into the hot rank's sp.Width-word parameter
// region — even updates with blocking Accumulate, odd ones with NbAcc
// whose handles are collected by one WaitAll — so the server's atomic
// accumulate path runs under full n-way contention, coalesced or not.
//
// Oracle: accumulate-sum exactness. The deltas are pure functions of
// (update, rank, cell) and integer-valued, so addition is commutative
// and exact regardless of arrival order: after the closing sync, every
// rank fetches the hot region, independently recomputes the expected
// total of every cell, and any interleaving that lost an update is
// unambiguous.
func paramServerBody(sp Spec, cfg Config) func(*armci.Proc) {
	return func(p *armci.Proc) {
		me, n := p.Rank(), p.Size()
		hot, updates, width := sp.Hot, sp.Updates, sp.Width
		if hot >= n {
			hot = 0 // defensive; check.validateCase rejects this earlier
		}
		params := p.Malloc(8 * width)
		syncFn := syncFor(p, cfg.Sync)
		syncFn()

		var hs []*armci.Handle
		for u := 0; u < updates; u++ {
			delta := make([]int64, width)
			for i := range delta {
				delta[i] = psDelta(u, me, i)
			}
			if cfg.Hazards.AccLostUpdate {
				// BUG: a non-atomic read-modify-write instead of the atomic
				// Accumulate — two ranks that interleave their Get/Put pairs
				// on the same cell lose one of the updates.
				for i, d := range delta {
					cell := params[hot].Add(int64(8 * i))
					v := int64(binary.LittleEndian.Uint64(p.Get(cell, 8)))
					p.Put(cell, leWords([]int64{v + d}))
				}
				continue
			}
			data := leWords(delta)
			if u%2 == 1 {
				hs = append(hs, p.NbAcc(armci.AccInt64, params[hot], data, 1))
			} else {
				p.Accumulate(armci.AccInt64, params[hot], armci.Contig(len(data)), data, 1)
			}
		}
		p.WaitAll(hs...)
		syncFn()

		got := p.Get(params[hot], 8*width)
		for i := 0; i < width; i++ {
			var want int64
			for r := 0; r < n; r++ {
				for u := 0; u < updates; u++ {
					want += psDelta(u, r, i)
				}
			}
			if g := int64(binary.LittleEndian.Uint64(got[8*i:])); g != want {
				cfg.reportf("paramserver: rank %d read hot cell %d = %d, want %d (an accumulate was lost)",
					me, i, g, want)
				break
			}
		}
		syncFn()
	}
}

// psDelta is the update rank contributes to cell i on update u — unique
// per (update, rank, cell) so a lost or doubled accumulate is
// unambiguous, and small enough that totals stay far below 2^53.
func psDelta(u, rank, i int) int64 { return int64(u*977 + rank*31 + i + 1) }
