package workload

import (
	"math"

	"armci"
	"armci/ga"
)

// stencilBody is the halo-exchange workload: Jacobi-style sweeps over a
// pair of ga 2-D block-distributed arrays. Each step, every rank pulls
// its block plus a halo of width sp.Halo (clamped at the grid edges —
// the patch legitimately spans neighbor blocks, and with a halo wider
// than the tile it spans several), applies the shared cross-neighbor
// update rule, and puts the result into the other array; the arrays
// swap roles each step and every write round is closed by the case's
// sync variant through ga's SyncMode.
//
// Oracle: the whole computation is replayed sequentially (stencilModel)
// and each rank compares its final block cell-exactly — values are
// integer-valued floats wrapped at 2^20, so float64 arithmetic is exact
// and any halo cell fetched stale or put astray shows up. Rank 0
// additionally checks the global boundary checksum, the classic
// aggregate that catches edge-clamping bugs even when interior cells
// agree.
func stencilBody(sp Spec, cfg Config) func(*armci.Proc) {
	rows, cols, halo, steps := sp.Rows, sp.Cols, sp.Halo, sp.Steps
	return func(p *armci.Proc) {
		me := p.Rank()
		a, err := ga.Create(p, "wl-stencil-a", rows, cols)
		if err != nil {
			cfg.reportf("stencil: create a: %v", err)
			return
		}
		b, err := ga.Create(p, "wl-stencil-b", rows, cols)
		if err != nil {
			cfg.reportf("stencil: create b: %v", err)
			return
		}
		a.SetSyncMode(gaMode(cfg.Sync))
		b.SetSyncMode(gaMode(cfg.Sync))

		rlo, rhi, clo, chi := a.Distribution(me)
		// Degenerate shapes (1×N under a 2-D grid) leave some ranks with
		// empty blocks; they skip compute but join every collective.
		empty := rlo >= rhi || clo >= chi
		bw := chi - clo
		if !empty {
			buf := make([]float64, (rhi-rlo)*bw)
			for r := rlo; r < rhi; r++ {
				for c := clo; c < chi; c++ {
					buf[(r-rlo)*bw+(c-clo)] = stencilInit(r, c, cols)
				}
			}
			a.Put(rlo, rhi, clo, chi, buf)
		}
		a.Sync()

		cur, nxt := a, b
		for s := 0; s < steps; s++ {
			if !empty {
				prlo, prhi := maxInt(0, rlo-halo), minInt(rows, rhi+halo)
				pclo, pchi := maxInt(0, clo-halo), minInt(cols, chi+halo)
				patch := cur.Get(prlo, prhi, pclo, pchi)
				pw := pchi - pclo
				at := func(r, c int) float64 {
					if r < prlo || r >= prhi || c < pclo || c >= pchi {
						return 0
					}
					return patch[(r-prlo)*pw+(c-pclo)]
				}
				out := make([]float64, (rhi-rlo)*bw)
				for r := rlo; r < rhi; r++ {
					for c := clo; c < chi; c++ {
						out[(r-rlo)*bw+(c-clo)] = stencilCell(at, r, c, halo)
					}
				}
				nxt.Put(rlo, rhi, clo, chi, out)
			}
			nxt.Sync()
			cur, nxt = nxt, cur
		}

		model := stencilModel(rows, cols, halo, steps)
		if !empty {
			got := cur.Get(rlo, rhi, clo, chi)
		verify:
			for r := rlo; r < rhi; r++ {
				for c := clo; c < chi; c++ {
					if g, w := got[(r-rlo)*bw+(c-clo)], model[r*cols+c]; g != w {
						cfg.reportf("stencil: rank %d cell (%d,%d) = %v after %d steps, want %v (halo exchange corrupted the block)",
							me, r, c, g, steps, w)
						break verify
					}
				}
			}
		}
		if me == 0 {
			full := cur.Get(0, rows, 0, cols)
			var got, want float64
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					if r == 0 || r == rows-1 || c == 0 || c == cols-1 {
						got += full[r*cols+c]
						want += model[r*cols+c]
					}
				}
			}
			if got != want {
				cfg.reportf("stencil: boundary checksum = %v, want %v (edge clamping or halo width handled wrong)", got, want)
			}
		}
		cur.Sync()
	}
}

// stencilInit is the initial grid value at (r, c): small positive
// integers, so sums stay integer-valued.
func stencilInit(r, c, cols int) float64 { return float64((r*cols+c)%251 + 1) }

// stencilCell is the shared update rule — center plus the four
// cross-neighbor arms out to distance halo, out-of-grid cells reading
// zero. Values wrap at 2^20 (math.Mod is exact on integer-valued
// floats), so any step count stays exactly representable in float64.
// Both the distributed sweep and the sequential replay call this, so a
// mismatch can only come from the communication layer.
func stencilCell(at func(r, c int) float64, r, c, halo int) float64 {
	v := at(r, c)
	for d := 1; d <= halo; d++ {
		v += at(r-d, c) + at(r+d, c) + at(r, c-d) + at(r, c+d)
	}
	return math.Mod(v, 1<<20)
}

// stencilModel replays the whole computation sequentially.
func stencilModel(rows, cols, halo, steps int) []float64 {
	cur := make([]float64, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			cur[r*cols+c] = stencilInit(r, c, cols)
		}
	}
	nxt := make([]float64, rows*cols)
	for s := 0; s < steps; s++ {
		at := func(r, c int) float64 {
			if r < 0 || r >= rows || c < 0 || c >= cols {
				return 0
			}
			return cur[r*cols+c]
		}
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				nxt[r*cols+c] = stencilCell(at, r, c, halo)
			}
		}
		cur, nxt = nxt, cur
	}
	return cur
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
