package workload

import (
	"bytes"

	"armci"
)

// prodConsBody is the notify/wait chain workload: ranks form a pipeline
// 0 → 1 → ... → n-1 with sp.Depth items in flight. For each item, a
// rank first consumes from its left neighbor — WaitFlag on the item's
// own flag cell, then a byte-exact check of every chunk — and then
// produces the item for its right neighbor: sp.Chunks-1 chunks via
// NbPut and the last chunk via PutFlag, which orders the flag strictly
// after the data on the destination's FIFO pipe. Per-item flag cells
// (not one rolling counter) let the head of the chain run arbitrarily
// far ahead without a value being overwritten under a spinning
// consumer. Outstanding NbPut handles are collected by one WaitAll
// before the closing sync.
//
// Oracle: flag-ordering / no-stale-read. The payload expected at rank r
// is a pure function of (item, chunk, r) — each hop adds one to every
// byte, so what a rank forwards equals what it verified plus one — and
// a flag that arrives before its data exposes stale bytes that match no
// hop count.
func prodConsBody(sp Spec, cfg Config) func(*armci.Proc) {
	return func(p *armci.Proc) {
		me, n := p.Rank(), p.Size()
		chunks, nbytes, depth := sp.Chunks, sp.Bytes, sp.Depth
		buf := p.Malloc(depth * chunks * nbytes)
		flags := p.MallocWords(depth)
		syncFn := syncFor(p, cfg.Sync)
		syncFn()

		off := func(t, k int) int64 { return int64((t*chunks + k) * nbytes) }
		var hs []*armci.Handle
		for t := 0; t < depth; t++ {
			if me > 0 {
				p.WaitFlag(flags[me].Add(int64(t)), int64(t+1))
				for k := 0; k < chunks; k++ {
					got := p.Get(buf[me].Add(off(t, k)), nbytes)
					if want := pcChunk(t, k, me, nbytes); !bytes.Equal(got, want) {
						cfg.reportf("prodcons: rank %d item %d chunk %d is stale (notify flag arrived before its data)",
							me, t, k)
						break
					}
				}
			}
			if me < n-1 {
				next := me + 1
				if cfg.Hazards.FlagBeforeData {
					// BUG: the flag is published with a plain word store
					// issued before the data. The store travels the control
					// pipe while the puts travel the server pipe, so the
					// consumer's WaitFlag wakes while the chunks are still in
					// flight and it reads whatever the slot held before.
					p.Store(flags[next].Add(int64(t)), int64(t+1))
					for k := 0; k < chunks; k++ {
						hs = append(hs, p.NbPut(buf[next].Add(off(t, k)), pcChunk(t, k, next, nbytes)))
					}
				} else {
					for k := 0; k < chunks-1; k++ {
						hs = append(hs, p.NbPut(buf[next].Add(off(t, k)), pcChunk(t, k, next, nbytes)))
					}
					p.PutFlag(buf[next].Add(off(t, chunks-1)), pcChunk(t, chunks-1, next, nbytes),
						flags[next].Add(int64(t)), int64(t+1))
				}
			}
		}
		p.WaitAll(hs...)
		syncFn()
	}
}

// pcChunk is the payload expected at rank dst for chunk k of item t:
// the base pattern plus dst, one added per hop of the chain.
func pcChunk(t, k, dst, nbytes int) []byte {
	b := make([]byte, nbytes)
	for i := range b {
		b[i] = byte(t*193 + k*41 + i + dst)
	}
	return b
}
