package msg

import (
	"strings"
	"testing"
)

func TestAddrConstructors(t *testing.T) {
	u := User(3)
	if u.Server || u.ID != 3 {
		t.Fatalf("User(3) = %+v", u)
	}
	s := ServerOf(2)
	if !s.Server || s.ID != 2 {
		t.Fatalf("ServerOf(2) = %+v", s)
	}
	if u.String() != "p3" || s.String() != "srv2" {
		t.Fatalf("strings %q %q", u, s)
	}
}

func TestKindAndRmwNames(t *testing.T) {
	kinds := []Kind{KindPut, KindPutAck, KindGet, KindGetResp, KindAcc, KindRmw,
		KindRmwResp, KindFenceReq, KindFenceAck, KindLockReq, KindLockGrant,
		KindUnlock, KindColl, KindSend}
	seen := map[string]bool{}
	for _, k := range kinds {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "Kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[name] {
			t.Fatalf("duplicate kind name %q", name)
		}
		seen[name] = true
	}
	if Kind(200).String() != "Kind(200)" {
		t.Fatal("unknown kind formatting")
	}
	ops := []RmwOp{RmwFetchAdd, RmwSwap, RmwCAS, RmwSwapPair, RmwCASPair,
		RmwLoadPair, RmwStore, RmwStorePair}
	for _, o := range ops {
		if strings.HasPrefix(o.String(), "RmwOp(") {
			t.Fatalf("rmw op %d has no name", o)
		}
	}
}

func TestQueueFIFOWithinMatch(t *testing.T) {
	var q Queue
	for i := 0; i < 5; i++ {
		q.Put(&Message{Kind: KindColl, Tag: i})
	}
	for i := 0; i < 5; i++ {
		m := q.TryPop(MatchKind(KindColl))
		if m == nil || m.Tag != i {
			t.Fatalf("pop %d returned %+v", i, m)
		}
	}
	if q.TryPop(MatchAny) != nil {
		t.Fatal("queue should be empty")
	}
}

func TestQueueMatchedRemovalSkipsOthers(t *testing.T) {
	var q Queue
	q.Put(&Message{Kind: KindPutAck})
	q.Put(&Message{Kind: KindRmwResp, Token: 9})
	q.Put(&Message{Kind: KindPutAck})

	m := q.TryPop(MatchToken(KindRmwResp, 9))
	if m == nil || m.Kind != KindRmwResp {
		t.Fatalf("matched pop returned %+v", m)
	}
	if q.Len() != 2 {
		t.Fatalf("queue len %d, want 2", q.Len())
	}
	// Both remaining are acks, in order.
	if q.TryPop(MatchKind(KindPutAck)) == nil || q.TryPop(MatchKind(KindPutAck)) == nil {
		t.Fatal("acks lost")
	}
}

func TestMatchToken(t *testing.T) {
	m := &Message{Kind: KindGetResp, Token: 5}
	if !MatchToken(KindGetResp, 5)(m) {
		t.Fatal("should match")
	}
	if MatchToken(KindGetResp, 6)(m) || MatchToken(KindRmwResp, 5)(m) {
		t.Fatal("should not match")
	}
}

func TestMatchSrcTag(t *testing.T) {
	m := &Message{Kind: KindColl, Src: User(2), Tag: 77}
	if !MatchSrcTag(KindColl, User(2), 77)(m) {
		t.Fatal("should match")
	}
	if MatchSrcTag(KindColl, User(3), 77)(m) ||
		MatchSrcTag(KindColl, User(2), 78)(m) ||
		MatchSrcTag(KindSend, User(2), 77)(m) {
		t.Fatal("should not match")
	}
}

func TestPayloadBytesIncludesHeader(t *testing.T) {
	small := &Message{Kind: KindFenceReq}
	big := &Message{Kind: KindPut, Data: make([]byte, 100)}
	if small.PayloadBytes() <= 0 {
		t.Fatal("control message has zero wire size")
	}
	if big.PayloadBytes() != small.PayloadBytes()+100 {
		t.Fatalf("payload accounting: %d vs %d", big.PayloadBytes(), small.PayloadBytes())
	}
}

func TestMessageString(t *testing.T) {
	m := &Message{Kind: KindPut, Src: User(1), Dst: ServerOf(0), Token: 3, Data: []byte{1, 2}}
	s := m.String()
	for _, want := range []string{"put", "p1", "srv0", "tok=3", "data=2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String %q missing %q", s, want)
		}
	}
}
