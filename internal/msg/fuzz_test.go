package msg_test

import (
	"reflect"
	"testing"
	"time"

	"armci/internal/msg"
	"armci/internal/shmem"
	"armci/internal/wire"
)

// FuzzMsgRoundTrip drives the wire codec with fuzzer-chosen field
// values: every protocol message the fuzzer can construct must survive
// encode→decode unchanged. Field widths are clamped to what the format
// carries (e.g. 32-bit counts), mirroring the senders.
func FuzzMsgRoundTrip(f *testing.F) {
	f.Add(uint8(1), false, int32(0), true, int32(1), int32(0), uint64(7), uint64(1),
		int64(-3), int64(64), uint8(3), 2.5, int64(1), int64(-9), []byte{1, 2, 3})
	f.Add(uint8(12), true, int32(-1), false, int32(1<<20), int32(5), uint64(0), uint64(999),
		int64(1<<40), int64(0), uint8(255), -0.0, int64(1<<62), int64(0), []byte{})

	f.Fuzz(func(t *testing.T, kind uint8, srcSrv bool, srcID int32, dstSrv bool, dstID int32,
		origin int32, token, seq uint64, tag, n int64, op uint8, scale float64,
		op0, op1 int64, data []byte) {
		m := &msg.Message{
			Kind:     msg.Kind(kind),
			Src:      msg.Addr{Server: srcSrv, ID: int(srcID)},
			Dst:      msg.Addr{Server: dstSrv, ID: int(dstID)},
			Origin:   int(origin),
			Token:    token,
			Seq:      seq,
			Sent:     time.Duration(tag ^ op0), // arbitrary stamps; must survive
			Arrival:  time.Duration(op1),
			Tag:      int(tag),
			Ptr:      shmem.Ptr{Rank: origin, Kind: shmem.Kind(op % 3), Seg: srcID, Off: op0},
			N:        int(int32(n)),
			Op:       op,
			Scale:    scale,
			Operands: [4]int64{op0, op1, op0 ^ op1, -op0},
		}
		if len(data) > 0 {
			m.Data = data
			m.Stride = shmem.Strided{Count: []int{len(data)}, Stride: []int64{op1}}
			m.Vec = []msg.VecSeg{{Ptr: m.Ptr, N: int(int32(n))}}
		}
		got, err := wire.Decode(wire.Encode(m)[4:])
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v (message %v)", err, m)
		}
		if scale != scale {
			// NaN never compares equal; check the rest by zeroing it.
			got.Scale, m.Scale = 0, 0
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip mutated message:\nsent %#v\ngot  %#v", m, got)
		}
	})
}
